(* Regenerates every experiment row recorded in EXPERIMENTS.md: one
   section per paper item (facts, lemmas, theorems), printing the
   paper's claim next to what this reproduction measures.

   Run with: dune exec bin/experiments.exe            (full report)
             dune exec bin/experiments.exe -- quick   (skip slow rows)  *)

open Shades_graph
open Shades_views
open Shades_election
open Shades_families

let quick = Array.exists (( = ) "quick") Sys.argv

let section id title =
  Printf.printf "\n== %s: %s ==\n" id title

let row fmt = Printf.printf fmt

let check name ok =
  Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name;
  if not ok then exit 1

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)

let e1_hierarchy () =
  section "E1" "Fact 1.1: psi_CPPE >= psi_PPE >= psi_PE >= psi_S";
  let st = Random.State.make [| 41 |] in
  let total = ref 0 and feasible = ref 0 and ok = ref true in
  let gaps = Hashtbl.create 16 in
  for _ = 1 to 300 do
    let n = 3 + Random.State.int st 5 in
    let g = Gen.random st n ~extra_edges:(Random.State.int st 4) in
    incr total;
    match Index.all g with
    | [ (_, Some s); (_, Some pe); (_, Some ppe); (_, Some cppe) ] ->
        incr feasible;
        if not (cppe >= ppe && ppe >= pe && pe >= s) then ok := false;
        let key = (pe - s, ppe - pe, cppe - ppe) in
        Hashtbl.replace gaps key
          (1 + Option.value ~default:0 (Hashtbl.find_opt gaps key))
    | _ -> ()
  done;
  row "  %d random graphs, %d feasible\n" !total !feasible;
  check "hierarchy holds on all feasible graphs" !ok;
  Hashtbl.iter
    (fun (a, b, c) count ->
      row "  gap profile (PE-S=%d, PPE-PE=%d, CPPE-PPE=%d): %d graphs\n" a b
        c count)
    gaps

let e2_named_examples () =
  section "E2" "Section 1 examples";
  let line = Gen.path_with_ports [ (0, 0); (1, 0) ] in
  check "3-node line: psi_S = 0 (unique degree)" (Index.psi_s line = Some 0);
  check "3-node line: psi_CPPE = 1 (paper's example)"
    (Index.psi_cppe line = Some 1);
  check "oriented rings infeasible" (Index.psi_s (Gen.oriented_ring 6) = None);
  check "K2 infeasible"
    (Index.psi_s (Port_graph.of_edges 2 [ ((0, 0), (1, 0)) ]) = None)

let e3_prop_2_1 () =
  section "E3" "Prop 2.1: k-round Selection needs a unique B^k";
  let st = Random.State.make [| 43 |] in
  let ok = ref true in
  for _ = 1 to 200 do
    let n = 3 + Random.State.int st 5 in
    let g = Gen.random st n ~extra_edges:(Random.State.int st 4) in
    match Index.psi_s g with
    | None -> ()
    | Some k ->
        let t = Refinement.compute g ~depth:k in
        if Refinement.singletons t ~depth:k = [] then ok := false;
        if k > 0 then begin
          let t' = Refinement.compute g ~depth:(k - 1) in
          if Refinement.singletons t' ~depth:(k - 1) <> [] then ok := false
        end
  done;
  check "psi_S = first depth with a unique view, on 200 random graphs" !ok

let e4_thm_2_2 () =
  section "E4"
    "Thm 2.2: Selection advice O((delta-1)^psi log delta) — swept on the \
     parallel runtime";
  let open Shades_runtime in
  (* the former hand-rolled loop, now a sweep: every (delta, k) point
     builds G_2, runs the Thm 2.2 scheme through the simulator with
     telemetry, and verifies — fanned across domains by the pool *)
  let points =
    List.map
      (fun (delta, k) -> [ ("delta", delta); ("k", k) ])
      [ (3, 1); (3, 2); (3, 3); (4, 1); (4, 2); (5, 1); (5, 2); (6, 1) ]
  in
  let records = Sweep.run (Sweep.gclass_jobs points) in
  row "  %6s %3s %8s %12s %18s %10s\n" "delta" "k" "n" "advice bits"
    "(d-1)^k*log2(d)" "messages";
  let counter r name =
    match Store.metric r name with
    | Some (Metrics.Counter c) -> c
    | _ -> -1
  in
  let param r name =
    match List.assoc_opt name r.Store.params with
    | Some (Store.Json.Int v) -> v
    | _ -> -1
  in
  let ok = ref true in
  List.iter
    (fun r ->
      let delta = param r "delta" and k = param r "k" in
      let formula =
        (float_of_int (delta - 1) ** float_of_int k)
        *. (log (float_of_int delta) /. log 2.)
      in
      row "  %6d %3d %8d %12d %18.1f %10d\n" delta k (counter r "graph_order")
        r.Store.advice_bits formula r.Store.messages;
      (* correctness + minimum time on the same instances *)
      if counter r "verified" <> 1 then ok := false;
      if r.Store.rounds <> k then ok := false)
    records;
  check "all sweep points present" (List.length records = List.length points);
  check "scheme correct and minimum-time on G-class instances (via sweep)" !ok;
  (* trace companion (the worked example in EXPERIMENTS.md): record one
     G-class election, check the async engine leaves the same footprint
     modulo synchronizer markers, and demonstrate that replay pinpoints
     a single injected mutation *)
  let module Trace = Shades_trace.Trace in
  let module Event = Shades_trace.Event in
  let module Codec = Shades_trace.Codec in
  let module Replay = Shades_trace.Replay in
  let module Tdiff = Shades_trace.Diff in
  let g = (Gclass.build { Gclass.delta = 3; k = 1 } ~i:2).Gclass.graph in
  let capture engine =
    let r = Trace.recorder () in
    let tracer = Trace.emit r in
    (match engine with
    | Trace.Sync -> ignore (Scheme.run ~tracer Select_by_view.scheme g)
    | Trace.Async { seed } ->
        ignore (Scheme.run_async ~seed ~tracer Select_by_view.scheme g));
    Trace.capture r
      {
        Trace.engine;
        graph_order = Port_graph.order g;
        advice_bits = 0;
        label = "s gclass:3,1,2";
      }
  in
  let sync = capture Trace.Sync in
  let s = Trace.stats sync in
  row "  traced G(3,1,i=2): %d events (%d sends, %d delivers) in %d round\n"
    s.Trace.events s.Trace.sends s.Trace.delivers s.Trace.rounds;
  check "sync vs async traces agree modulo sync markers (seeds 0,1,2)"
    (List.for_all
       (fun seed -> Tdiff.divergences sync (capture (Trace.Async { seed })) = [])
       [ 0; 1; 2 ]);
  check "trace codec round-trips" (Codec.decode (Codec.encode sync) = Ok sync);
  let exec tracer = ignore (Scheme.run ~tracer Select_by_view.scheme g) in
  check "replay of the recorded run is clean" (Replay.run sync exec = Ok ());
  let mutated =
    let events = Array.copy sync.Trace.events in
    let idx = ref (-1) in
    Array.iteri
      (fun i e ->
        if !idx < 0 then match e with Event.Send _ -> idx := i | _ -> ())
      events;
    (match events.(!idx) with
    | Event.Send { round; v; port; size } ->
        events.(!idx) <- Event.Send { round; v; port; size = size + 1 }
    | _ -> assert false);
    { sync with Trace.events }
  in
  match Replay.run mutated exec with
  | Error d ->
      let round, vertex = Replay.location d in
      row "  injected mutation caught at %s\n" (Replay.pp_divergence d);
      check "replay locates the mutation's (round, vertex)"
        (round >= 1 && vertex >= 0)
  | Ok () -> check "replay detects an injected single-event mutation" false

let e5_figure_1 () =
  section "E5" "Fig 1: trees T_{X,1} / T_{X,2} for delta=4, k=2, X=(1,2,3,3,2,2)";
  let build variant =
    let proto = Proto.create () in
    let root =
      Blocks.add_t_x_b proto ~delta:4 ~k:2 ~x:[| 1; 2; 3; 3; 2; 2 |] ~variant
    in
    (* close the root's last port so the block validates standalone *)
    let stub = Proto.fresh proto in
    Proto.link proto (root, 3) (stub, 0);
    (Proto.build proto, root)
  in
  let g1, r1 = build 1 and g2, r2 = build 2 in
  row "  T_X,1: %d nodes;  T_X,2: %d nodes\n" (Port_graph.order g1)
    (Port_graph.order g2);
  check "same size" (Port_graph.order g1 = Port_graph.order g2);
  check "structures differ only by the p_k swap"
    (not (Iso.rooted_isomorphic g1 r1 g2 r2));
  (* per Fig 1: |T| = 1 + 2 + 6 = 9, pendants = sum X = 13, path = 3,
     stub = 1 *)
  check "node count matches figure" (Port_graph.order g1 = 9 + 13 + 3 + 1)

let e6_fact_2_3 () =
  section "E6" "Fact 2.3: |G_{delta,k}| = (delta-1)^((delta-2)(delta-1)^(k-1))";
  List.iter
    (fun (delta, k, expect) ->
      let got = Gclass.num_graphs { Gclass.delta; k } in
      row "  delta=%d k=%d: %s (expected %s)\n" delta k
        (match got with Some v -> string_of_int v | None -> "overflow")
        (match expect with Some v -> string_of_int v | None -> "overflow");
      check "matches" (got = expect))
    [
      (3, 1, Some 2); (3, 2, Some 4); (4, 1, Some 9); (4, 2, Some 729);
      (5, 2, Some 16777216); (6, 3, None);
    ]

let e7_to_e9_gclass () =
  section "E7-E9" "G-class lemmas: twin views, unique r_{i,2}, psi_S = k";
  List.iter
    (fun (delta, k, i) ->
      let t = Gclass.build { Gclass.delta; k } ~i in
      let g = t.Gclass.graph in
      let refinement = Refinement.compute g ~depth:k in
      let singles = Refinement.singletons refinement ~depth:k in
      let psi = Refinement.min_unique_depth g in
      row "  delta=%d k=%d i=%d: n=%d psi_S=%s singletons@k=%d\n" delta k i
        (Port_graph.order g)
        (match psi with Some d -> string_of_int d | None -> "inf")
        (List.length singles);
      check "Lemma 2.6: unique view is r_{i,2}"
        (singles = [ t.Gclass.special_root ]);
      check "Lemma 2.7: psi_S = k" (psi = Some k))
    [ (3, 2, 2); (4, 1, 5); (4, 2, 3); (5, 1, 7) ];
  (* the G_1 degeneracy finding *)
  let t = Gclass.build { Gclass.delta = 4; k = 2 } ~i:1 in
  check "finding: psi_S(G_1) = 1 < k (paper's Lemma 2.6 gap)"
    (Refinement.min_unique_depth t.Gclass.graph = Some 1)

let e10_thm_2_9 () =
  section "E10" "Thm 2.9: Selection fooling on G-class";
  List.iter
    (fun (delta, k, alpha, beta) ->
      let a = Gclass.build { Gclass.delta; k } ~i:alpha in
      let b = Gclass.build { Gclass.delta; k } ~i:beta in
      let advice = Select_by_view.scheme.Scheme.oracle a.Gclass.graph in
      let fooled =
        Scheme.run_with_advice Select_by_view.scheme b.Gclass.graph ~advice
      in
      let verdict = Verify.selection b.Gclass.graph fooled.Scheme.outputs in
      row "  delta=%d k=%d advice(G_%d) on G_%d: %s\n" delta k alpha beta
        (match verdict with
        | Ok _ -> "accepted (UNEXPECTED)"
        | Error e -> "rejected: " ^ e);
      check "fooling rejected" (Result.is_error verdict))
    [ (3, 2, 2, 3); (4, 1, 2, 7); (4, 2, 2, 3) ]

let e11_fact_3_1 () =
  section "E11" "Fact 3.1: |U_{delta,k}| = (delta-1)^|T_{delta,k}|";
  List.iter
    (fun (delta, k) ->
      let p = { Uclass.delta; k } in
      row "  delta=%d k=%d: y=%s log2|U|=%.1f\n" delta k
        (match Uclass.num_trees p with
        | Some y -> string_of_int y
        | None -> "overflow")
        (Uclass.num_graphs_log2 p))
    [ (4, 1); (4, 2); (5, 1); (6, 1) ]

let e12_to_e14_uclass () =
  section "E12-E14" "U-class: psi_S = psi_PE = k; Lemma 3.9 PE algorithm";
  let run delta k sigma_val =
    let p = { Uclass.delta; k } in
    let t = Uclass.build p ~sigma:(Uclass.uniform_sigma p sigma_val) in
    let g = t.Uclass.graph in
    let (psi, dt_psi) = time (fun () -> Refinement.min_unique_depth g) in
    let (r, dt_run) = time (fun () -> Scheme.run Uclass.pe_scheme g) in
    let verdict = Verify.port_election g r.Scheme.outputs in
    row
      "  delta=%d k=%d: n=%d psi_S=%s (%.1fs) PE rounds=%d advice=%d bits \
       (%.1fs) verdict=%s\n"
      delta k (Port_graph.order g)
      (match psi with Some d -> string_of_int d | None -> "inf")
      dt_psi r.Scheme.rounds r.Scheme.advice_bits dt_run
      (match verdict with
      | Ok l -> Printf.sprintf "Ok(leader=%d)" l
      | Error e -> "Error: " ^ e);
    check "psi_S = k" (psi = Some k);
    check "PE verified in k rounds"
      (Result.is_ok verdict && r.Scheme.rounds = k);
    check "leader is rmin" (verdict = Ok (Uclass.rmin t))
  in
  run 4 1 2;
  run 5 1 3;
  if not quick then run 4 2 3

let e15_thm_3_11 () =
  section "E15" "Thm 3.11: PE fooling on U-class";
  let p = { Uclass.delta = 4; k = 1 } in
  List.iter
    (fun j ->
      let sa = Uclass.uniform_sigma p 1 in
      let sb = Uclass.uniform_sigma p 1 in
      sb.(j) <- 2;
      let a = Uclass.build p ~sigma:sa and b = Uclass.build p ~sigma:sb in
      let advice = Uclass.pe_scheme.Scheme.oracle a.Uclass.graph in
      let fooled =
        Scheme.run_with_advice Uclass.pe_scheme b.Uclass.graph ~advice
      in
      let verdict = Verify.port_election b.Uclass.graph fooled.Scheme.outputs in
      row "  sigma flip at tree %d: %s\n" (j + 1)
        (match verdict with
        | Ok _ -> "accepted (UNEXPECTED)"
        | Error e -> "rejected: " ^ e);
      check "fooling rejected" (Result.is_error verdict))
    [ 0; 4; 8 ]

let e16_fact_4_1 () =
  section "E16" "Fact 4.1: layer graph sizes (and diameter j)";
  List.iter
    (fun mu ->
      row "  mu=%d sizes L_0..L_6:" mu;
      List.iter (fun m -> row " %d" (Layers.size ~mu ~m)) [ 0; 1; 2; 3; 4; 5; 6 ];
      row "\n")
    [ 2; 3; 4 ];
  let ok = ref true in
  List.iter
    (fun mu ->
      List.iter
        (fun m ->
          let proto = Proto.create () in
          let _ = Layers.add proto ~mu ~m in
          let g = Proto.build proto in
          if Port_graph.order g <> Layers.size ~mu ~m then ok := false;
          if m >= 1 && Paths.diameter g <> m then ok := false)
        [ 1; 2; 3; 4; 5 ])
    [ 2; 3 ];
  check "built sizes match the formula; diameter L_j = j" !ok

let e17_component () =
  section "E17" "Figs 5-7: component H wiring; Lemma 4.3";
  List.iter
    (fun (mu, k) ->
      let g, c = Component.standalone ~mu ~k in
      let lemma43 = ref true and either = ref true in
      List.iter
        (fun v ->
          let d = Paths.bfs_distances g v in
          let misses = ref false in
          Array.iter
            (fun (w1, w2) ->
              if d.(w1) >= k && d.(w2) >= k then misses := true;
              if min d.(w1) d.(w2) > k then either := false)
            c.Component.w;
          if not !misses then lemma43 := false)
        (Port_graph.vertices g);
      row "  H(mu=%d,k=%d): n=%d diam=%d z=%d\n" mu k (Port_graph.order g)
        (Paths.diameter g) (Array.length c.Component.w);
      check "Lemma 4.3: every node misses a pair" !lemma43;
      check "finding: one of each pair always within k" !either;
      check "finding: diameter k+1 (not k as claimed informally)"
        (Paths.diameter g = k + 1))
    [ (2, 4); (3, 4); (3, 5) ]

let e18_e19_template () =
  section "E18-E19" "Gadget, template chaining, W encoding, Fact 4.2";
  let p = { Jclass.mu = 3; k = 4; z_eff = 4 } in
  let y = Jclass.y_zero p in
  y.(1) <- true;
  let t = Jclass.build p ~y in
  let g = t.Jclass.graph in
  row "  scaled J(3,4) with 2^%d gadgets: n=%d m=%d\n" p.Jclass.z_eff
    (Port_graph.order g) (Port_graph.size g);
  check "rho degree = 4mu"
    (Array.for_all
       (fun gd -> Port_graph.degree g gd.Jclass.rho = 12)
       t.Jclass.gadgets);
  let last = Array.length t.Jclass.gadgets - 1 in
  let ok = ref true in
  Array.iteri
    (fun gi _ ->
      let w = Jclass.w_values t ~gadget:gi in
      let expect_r = if gi = last then 0 else gi + 1 in
      if not (w.(0) = gi && w.(1) = gi && w.(2) = expect_r && w.(3) = expect_r)
      then ok := false)
    t.Jclass.gadgets;
  check "W: L=T=index, R=B=successor (ends read 0)" !ok;
  row "  Fact 4.2: z(3,4)=%d z(4,4)=%d z(3,5)=%d; |J| = 2^(2^(z-1))\n"
    (Jclass.z ~mu:3 ~k:4) (Jclass.z ~mu:4 ~k:4) (Jclass.z ~mu:3 ~k:5)

let e20_to_e22_jclass () =
  section "E20-E22" "Prop 4.4, twins, Lemma 4.8/4.9 CPPE";
  let p = { Jclass.mu = 3; k = 4; z_eff = (if quick then 3 else 4) } in
  let y = Jclass.y_zero p in
  y.(0) <- true;
  let t = Jclass.build p ~y in
  let g = t.Jclass.graph in
  let refinement = Refinement.compute g ~depth:3 in
  let c0 = Refinement.class_of refinement ~depth:3 t.Jclass.gadgets.(0).Jclass.rho in
  check "Prop 4.4: all rho views equal at k-1"
    (Array.for_all
       (fun gd -> Refinement.class_of refinement ~depth:3 gd.Jclass.rho = c0)
       t.Jclass.gadgets);
  let psi = Refinement.min_unique_depth g in
  row "  scaled psi_S = %s (full template: exactly k = 4 by Lemma 4.7)\n"
    (match psi with Some d -> string_of_int d | None -> "inf");
  check "scaled psi_S within one of k"
    (match psi with Some d -> d >= 3 && d <= 4 | None -> false);
  let answers = Jclass.cppe_assignment t in
  check "Lemma 4.8 assignment verifies"
    (Verify.complete_port_path_election g answers
    = Ok t.Jclass.gadgets.(0).Jclass.rho);
  let scheme = Jclass.cppe_scheme t in
  let (r, dt) = time (fun () -> Scheme.run scheme g) in
  row "  CPPE simulated: rounds=%d advice=%d bits (%.1fs)\n" r.Scheme.rounds
    r.Scheme.advice_bits dt;
  check "CPPE in k rounds through the simulator"
    (r.Scheme.rounds = 4
    && Verify.complete_port_path_election g r.Scheme.outputs
       = Ok t.Jclass.gadgets.(0).Jclass.rho)

let e23_thm_4_11 () =
  section "E23" "Lemma 4.10 + Thm 4.11/4.12: CPPE fooling on J-class";
  let p = { Jclass.mu = 3; k = 4; z_eff = 3 } in
  let ya = Jclass.y_zero p in
  let yb = Jclass.y_zero p in
  yb.(1) <- true;
  let a = Jclass.build p ~y:ya and b = Jclass.build p ~y:yb in
  let border t =
    fst t.Jclass.gadgets.(0).Jclass.components.(0).Component.w.(0)
  in
  check "Lemma 4.10(1): border views equal across J_Y"
    (Refinement.equal_views_cross a.Jclass.graph (border a) b.Jclass.graph
       (border b) ~depth:4);
  let scheme = Jclass.cppe_scheme a in
  let advice = scheme.Scheme.oracle a.Jclass.graph in
  let fooled = Scheme.run_with_advice scheme b.Jclass.graph ~advice in
  let verdict =
    Verify.complete_port_path_election b.Jclass.graph fooled.Scheme.outputs
  in
  row "  advice(J_a) on J_b: %s\n"
    (match verdict with
    | Ok _ -> "accepted (UNEXPECTED)"
    | Error e -> "rejected: " ^ e);
  check "fooling rejected" (Result.is_error verdict)

let e24_separation () =
  section "E24" "Headline separation: information floors (bits of advice)";
  row "  %6s %20s %24s\n" "delta" "S floor" "PE floor";
  List.iter
    (fun delta ->
      row "  %6d %20.1f %24.1f\n" delta
        (Gclass.num_graphs_log2 { Gclass.delta; k = 1 })
        (Uclass.num_graphs_log2 { Uclass.delta; k = 1 }))
    [ 4; 5; 6; 8; 10; 12; 16 ];
  row "  PPE/CPPE floor on J: 2^(z-1) with z = |L_k| >= mu^(k/2)\n";
  check "S floor polynomial vs PE floor exponential (ratio grows)"
    (let r d =
       Uclass.num_graphs_log2 { Uclass.delta = d; k = 1 }
       /. Gclass.num_graphs_log2 { Gclass.delta = d; k = 1 }
     in
     r 5 > r 4 && r 6 > r 5 && r 8 > r 6)

let e25_tradeoff () =
  section "E25"
    "Extension (open question, Section 5): time vs advice tradeoff";
  row
    "  with 2(n-1) rounds instead of the minimum, gamma(n) advice bits \
     suffice for every shade:\n";
  row "  %-22s %6s | %13s %12s | %13s %12s\n" "instance" "n" "min rounds"
    "advice bits" "2(n-1) rounds" "advice bits";
  (* Selection on a G-class member: Thm 2.2 vs size advice. *)
  let g_i = Gclass.build { Gclass.delta = 4; k = 1 } ~i:3 in
  let min_run = Scheme.run Select_by_view.scheme g_i.Gclass.graph in
  let relaxed = Size_advice.run Size_advice.selection g_i.Gclass.graph in
  check "both S runs verify"
    (Result.is_ok (Verify.selection g_i.Gclass.graph min_run.Scheme.outputs)
    && Result.is_ok
         (Verify.selection g_i.Gclass.graph relaxed.Size_advice.outputs));
  row "  %-22s %6d | %13d %12d | %13d %12d\n" "S on G(4,1,i=3)"
    (Port_graph.order g_i.Gclass.graph)
    min_run.Scheme.rounds min_run.Scheme.advice_bits
    relaxed.Size_advice.rounds relaxed.Size_advice.advice_bits;
  (* Port Election on a U-class member: Lemma 3.9 (map advice) vs size
     advice — the exponential-vs-logarithmic collapse. *)
  if not quick then begin
    let p = { Uclass.delta = 4; k = 1 } in
    let u = Uclass.build p ~sigma:(Uclass.uniform_sigma p 2) in
    let min_run = Scheme.run Uclass.pe_scheme u.Uclass.graph in
    let (relaxed, dt) =
      time (fun () -> Size_advice.run Size_advice.port_election u.Uclass.graph)
    in
    check "both PE runs verify"
      (Result.is_ok
         (Verify.port_election u.Uclass.graph min_run.Scheme.outputs)
      && Result.is_ok
           (Verify.port_election u.Uclass.graph relaxed.Size_advice.outputs));
    row "  %-22s %6d | %13d %12d | %13d %12d   (%.1fs)\n" "PE on U(4,1)"
      (Port_graph.order u.Uclass.graph)
      min_run.Scheme.rounds min_run.Scheme.advice_bits
      relaxed.Size_advice.rounds relaxed.Size_advice.advice_bits dt;
    check "advice collapses by >100x"
      (min_run.Scheme.advice_bits > 100 * relaxed.Size_advice.advice_bits)
  end;
  (* CPPE on random graphs. *)
  let st = Random.State.make [| 77 |] in
  let done_ = ref 0 in
  while !done_ < 3 do
    let g = Gen.random st (5 + Random.State.int st 5) ~extra_edges:3 in
    match Index.psi_cppe g with
    | None -> ()
    | Some k ->
        incr done_;
        let min_run = Scheme.run Map_advice.complete_port_path_election g in
        let relaxed =
          Size_advice.run Size_advice.complete_port_path_election g
        in
        check "both CPPE runs verify"
          (Result.is_ok
             (Verify.complete_port_path_election g min_run.Scheme.outputs)
          && Result.is_ok
               (Verify.complete_port_path_election g
                  relaxed.Size_advice.outputs));
        row "  %-22s %6d | %13d %12d | %13d %12d\n"
          (Printf.sprintf "CPPE random (psi=%d)" k)
          (Port_graph.order g) min_run.Scheme.rounds
          min_run.Scheme.advice_bits relaxed.Size_advice.rounds
          relaxed.Size_advice.advice_bits
  done

let e26_exact_min_advice () =
  section "E26"
    "Extension: exact minimum advice for minimum-time Selection on G";
  row
    "  the Thm 2.9 pigeonhole is tight: every class member needs its own \
     string\n";
  List.iter
    (fun (delta, k) ->
      let p = { Gclass.delta; k } in
      let count = Option.get (Gclass.num_graphs p) in
      let graphs =
        List.init count (fun i -> (Gclass.build p ~i:(i + 1)).Gclass.graph)
      in
      let min_strings = Min_advice.min_advice_strings ~depth:k graphs in
      row "  G(%d,%d): %d graphs -> min advice strings = %d (>= %d bits)\n"
        delta k count min_strings
        (Min_advice.bits_for min_strings);
      check "every graph needs its own advice" (min_strings = count))
    [ (3, 1); (3, 2); (4, 1) ];
  (* Control: graphs with disjoint distinguishing views can share. *)
  check "control: star and path share one string"
    (Min_advice.sharable ~depth:0 [ Gen.star 4; Gen.path 3 ])

let e27_labeling_sensitivity () =
  section "E27"
    "Extension: election indexes depend on the port labeling, not just \
     the topology";
  let path n = List.init (n - 1) (fun i -> (i, i + 1)) in
  let cycle n = List.init n (fun i -> (i, (i + 1) mod n)) in
  let star n = List.init (n - 1) (fun i -> (0, i + 1)) in
  row "  %-10s %10s %9s %12s %12s\n" "skeleton" "labelings" "feasible"
    "psi_S range" "psi_CPPE rng";
  List.iter
    (fun (name, n, edges) ->
      let labelings = Gen.all_labelings n edges in
      let feas = ref 0 in
      let s_lo = ref max_int and s_hi = ref min_int in
      let c_lo = ref max_int and c_hi = ref min_int in
      List.iter
        (fun g ->
          match (Index.psi_s g, Index.psi_cppe g) with
          | Some s, Some c ->
              incr feas;
              s_lo := min !s_lo s;
              s_hi := max !s_hi s;
              c_lo := min !c_lo c;
              c_hi := max !c_hi c
          | _ -> ())
        labelings;
      let range lo hi =
        if !feas = 0 then "-" else Printf.sprintf "%d..%d" lo hi
      in
      row "  %-10s %10d %9d %12s %12s\n" name (List.length labelings) !feas
        (range !s_lo !s_hi) (range !c_lo !c_hi))
    [
      ("path-4", 4, path 4); ("path-5", 5, path 5); ("cycle-4", 4, cycle 4);
      ("cycle-5", 5, cycle 5); ("star-4", 4, star 4);
    ];
  (* Specific contrast: the same 4-path skeleton admits both an
     infeasible (mirror) labeling and psi_S in {0..}-style variation. *)
  let labelings = Gen.all_labelings 4 (path 4) in
  let statuses = List.map Index.psi_s labelings in
  check "4-path: some labeling infeasible" (List.mem None statuses);
  check "4-path: some labeling feasible"
    (List.exists Option.is_some statuses)

let e28_async () =
  section "E28"
    "Extension: asynchrony with time-stamps (Section 1 remark)";
  let g = (Gclass.build { Gclass.delta = 4; k = 1 } ~i:3).Gclass.graph in
  let sync = Scheme.run Select_by_view.scheme g in
  let ok = ref true in
  List.iter
    (fun seed ->
      let async = Scheme.run_async ~seed Select_by_view.scheme g in
      if async.Scheme.outputs <> sync.Scheme.outputs then ok := false;
      if async.Scheme.rounds <> sync.Scheme.rounds then ok := false)
    [ 0; 1; 2; 3; 4 ];
  check
    "Thm 2.2 scheme under 5 adversarial delay schedules = synchronous run"
    !ok;
  row "  rounds = %d, leader identical across all schedules\n"
    sync.Scheme.rounds

let e29_pe_pairwise () =
  section "E29"
    "Extension: exact PE-sharability on U (the Thm 3.11 engine, verified \
     pairwise)";
  let p = { Uclass.delta = 4; k = 1 } in
  let graph sigma = (Uclass.build p ~sigma).Uclass.graph in
  (* several sigma pairs differing in one or more entries *)
  let base = Uclass.uniform_sigma p 1 in
  let variants =
    List.map
      (fun changes ->
        let s = Array.copy base in
        List.iter (fun (j, v) -> s.(j) <- v) changes;
        (changes, graph s))
      [ [ (0, 2) ]; [ (4, 3) ]; [ (8, 2) ]; [ (2, 2); (6, 3) ] ]
  in
  let a = graph base in
  List.iter
    (fun (changes, b) ->
      let sharable = Min_advice.pe_sharable ~depth:1 a b in
      row "  sigma flips %s: sharable = %b\n"
        (String.concat ","
           (List.map (fun (j, v) -> Printf.sprintf "%d->%d" (j + 1) v) changes))
        sharable;
      check "different sigma unsharable" (not sharable))
    variants;
  check "identical sigma sharable (control)"
    (Min_advice.pe_sharable ~depth:1 a (graph base));
  row
    "  => pairwise conflicts force (delta-1)^y distinct strings: the \
     Thm 3.11 bound is the exact count\n"

let e30_labeled_baselines () =
  section "E30"
    "Related-work baselines: labeled ring election message complexity";
  row
    "  [28]/[19]/[40]: comparison-based rings take Θ(n log n) messages; \
     naive circulation is Θ(n²)\n";
  row "  %6s %12s %12s %12s %12s\n" "n" "LCR worst" "LCR random" "HS"
    "Peterson";
  let module L = Shades_labeled.Model in
  List.iter
    (fun n ->
      let g = Gen.oriented_ring n in
      let desc = Array.init n (fun i -> n - i) in
      let rand =
        let st = Random.State.make [| n |] in
        let a = Array.init n (fun i -> i + 1) in
        for i = n - 1 downto 1 do
          let j = Random.State.int st (i + 1) in
          let t = a.(i) in
          a.(i) <- a.(j);
          a.(j) <- t
        done;
        a
      in
      let msgs labels alg = (L.run g ~labels alg).L.messages in
      row "  %6d %12d %12d %12d %12d\n" n
        (msgs desc Shades_labeled.Chang_roberts.algorithm)
        (msgs rand Shades_labeled.Chang_roberts.algorithm)
        (msgs desc Shades_labeled.Hirschberg_sinclair.algorithm)
        (msgs desc Shades_labeled.Peterson.algorithm))
    [ 16; 32; 64; 128; 256 ];
  let g = Gen.oriented_ring 256 in
  let desc = Array.init 256 (fun i -> 256 - i) in
  let lcr =
    (L.run g ~labels:desc Shades_labeled.Chang_roberts.algorithm).L.messages
  in
  let hs =
    (L.run g ~labels:desc Shades_labeled.Hirschberg_sinclair.algorithm)
      .L.messages
  in
  check "quadratic vs n log n separation at n=256" (lcr > 10 * hs);
  (* Section 1's remark: labeled strong election is easy — flooding the
     max label solves it on any graph. *)
  let g = Gen.random (Random.State.make [| 12 |]) 40 ~extra_edges:30 in
  let labels = Array.init 40 (fun i -> (i * 13) mod 41) in
  let r = L.run g ~labels (Shades_labeled.Flood_max.algorithm ~n:40) in
  let ok =
    Array.for_all
      (function
        | Task.Leader -> true
        | Task.Follower l -> l = Array.fold_left max min_int labels)
      r.L.outputs
  in
  check "flood-max: strong election on an arbitrary labeled graph" ok;
  row "  flood-max on n=40 random graph: %d rounds, %d messages\n" r.L.rounds
    r.L.messages

let () =
  Printf.printf "Four Shades of Deterministic Leader Election — experiments%s\n"
    (if quick then " (quick)" else "");
  e1_hierarchy ();
  e2_named_examples ();
  e3_prop_2_1 ();
  e4_thm_2_2 ();
  e5_figure_1 ();
  e6_fact_2_3 ();
  e7_to_e9_gclass ();
  e10_thm_2_9 ();
  e11_fact_3_1 ();
  e12_to_e14_uclass ();
  e15_thm_3_11 ();
  e16_fact_4_1 ();
  e17_component ();
  e18_e19_template ();
  e20_to_e22_jclass ();
  e23_thm_4_11 ();
  e24_separation ();
  e25_tradeoff ();
  e26_exact_min_advice ();
  e27_labeling_sensitivity ();
  e28_async ();
  e29_pe_pairwise ();
  e30_labeled_baselines ();
  Printf.printf "\nAll experiments PASS.\n"
