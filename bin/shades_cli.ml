(* Command-line interface: inspect port-labeled graphs, views, election
   indexes, run advice schemes, and build the paper's graph families.

   Examples:
     shades_cli index -g path:5
     shades_cli views -g ring:6 -v 0 -d 2
     shades_cli elect -g star:5 -t cppe
     shades_cli family-g --delta 4 -k 2 -i 3
     shades_cli family-u --delta 4 -k 1 --sigma 2
     shades_cli family-j --mu 3 -k 4 --zeff 3 *)

open Cmdliner
open Shades_graph
module Json = Shades_json.Json
open Shades_views
open Shades_election
open Shades_families

(* The spec grammar lives in the server library so the CLI and the
   daemon's wire protocol accept exactly the same strings. *)
let parse_graph = Shades_server.Spec.parse_exn

let graph_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "g"; "graph" ] ~docv:"SPEC" ~doc:"Graph to operate on.")

let pp_psi = function Some k -> string_of_int k | None -> "infinite"

(* --- execution-engine flags (shared by elect, sweep, trace) ---

   Sharding is an execution strategy: results, telemetry and traces are
   identical to the sequential engine for every domain count, so these
   flags never change what a command measures — only how fast. *)

let strategy_of_flags ~engine ~domains =
  match String.lowercase_ascii engine with
  | "sequential" | "seq" -> None
  | "sharded" -> Some (Shades_runtime.Sweep.Sharded { domains })
  | e -> failwith ("unknown engine: " ^ e ^ " (expected sequential or sharded)")

let engine_flag_arg =
  Arg.(
    value & opt string "sequential"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Execution engine for synchronous runs: $(b,sequential), or \
           $(b,sharded) — the vertex-sharded parallel engine, which \
           produces identical outputs, telemetry and traces on any \
           domain count.")

let engine_domains_arg =
  Arg.(
    value & opt (some int) None
    & info [ "engine-domains" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,--engine sharded) (default: recommended \
           domain count minus one).")

(* --- index --- *)

let index_cmd =
  let run spec =
    let g = parse_graph spec in
    Printf.printf "n=%d m=%d max-degree=%d feasible=%b\n" (Port_graph.order g)
      (Port_graph.size g) (Port_graph.max_degree g) (Refinement.feasible g);
    List.iter
      (fun (kind, psi) ->
        Printf.printf "psi_%-4s = %s\n" (Task.kind_to_string kind) (pp_psi psi))
      (Index.all g)
  in
  Cmd.v
    (Cmd.info "index" ~doc:"Compute the four election indexes of a graph.")
    Term.(const run $ graph_arg)

(* --- views --- *)

let views_cmd =
  let run spec v depth =
    let g = parse_graph spec in
    let view = View_tree.of_graph g v ~depth in
    Format.printf "B^%d(%d) = %a@." depth v View_tree.pp view;
    Format.printf "nodes in view: %d; encoded: %d bits@."
      (View_tree.node_count view)
      (Shades_bits.Bitstring.length (View_tree.encode view));
    let t = Refinement.compute g ~depth in
    Format.printf "view classes at depth %d: %d; unique nodes: %s@." depth
      (Refinement.class_count t ~depth)
      (String.concat ","
         (List.map string_of_int (Refinement.singletons t ~depth)))
  in
  let v_arg =
    Arg.(value & opt int 0 & info [ "v"; "vertex" ] ~docv:"V" ~doc:"Vertex.")
  in
  let d_arg =
    Arg.(value & opt int 1 & info [ "d"; "depth" ] ~docv:"D" ~doc:"Depth.")
  in
  Cmd.v
    (Cmd.info "views" ~doc:"Print a node's augmented truncated view.")
    Term.(const run $ graph_arg $ v_arg $ d_arg)

(* --- elect --- *)

let elect_cmd =
  let run spec task engine domains =
    let g = parse_graph spec in
    let run_scheme scheme =
      match strategy_of_flags ~engine ~domains with
      | None | Some Shades_runtime.Sweep.Sequential -> Scheme.run scheme g
      | Some (Shades_runtime.Sweep.Sharded { domains }) ->
          Scheme.run_sharded ?domains scheme g
    in
    let report verify pp r =
      match verify g r.Scheme.outputs with
      | Ok leader ->
          Printf.printf "leader: node %d (%d rounds, %d advice bits)\n" leader
            r.Scheme.rounds r.Scheme.advice_bits;
          Array.iteri
            (fun v o -> Printf.printf "  node %d -> %s\n" v (pp o))
            r.Scheme.outputs
      | Error e -> Printf.printf "FAILED: %s\n" e
    in
    let pp_pairs pairs =
      "["
      ^ String.concat ";"
          (List.map (fun (p, q) -> Printf.sprintf "(%d,%d)" p q) pairs)
      ^ "]"
    in
    let pp_answer pp_payload = function
      | Task.Leader -> "leader"
      | Task.Follower x -> pp_payload x
    in
    match String.lowercase_ascii task with
    | "s" ->
        report Verify.selection
          (pp_answer (fun () -> "non-leader"))
          (run_scheme Select_by_view.scheme)
    | "pe" ->
        report Verify.port_election
          (pp_answer string_of_int)
          (run_scheme Map_advice.port_election)
    | "ppe" ->
        report Verify.port_path_election
          (pp_answer (fun ps ->
               "[" ^ String.concat ";" (List.map string_of_int ps) ^ "]"))
          (run_scheme Map_advice.port_path_election)
    | "cppe" ->
        report Verify.complete_port_path_election (pp_answer pp_pairs)
          (run_scheme Map_advice.complete_port_path_election)
    | t -> failwith ("unknown task: " ^ t)
  in
  let task_arg =
    Arg.(
      value & opt string "s"
      & info [ "t"; "task" ] ~docv:"TASK" ~doc:"One of s, pe, ppe, cppe.")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for $(b,--engine sharded) (default: recommended \
             domain count minus one).")
  in
  Cmd.v
    (Cmd.info "elect"
       ~doc:
         "Run a minimum-time leader election scheme through the LOCAL \
          simulator.")
    Term.(const run $ graph_arg $ task_arg $ engine_flag_arg $ domains_arg)

(* --- dot --- *)

let dot_cmd =
  let run spec =
    let g = parse_graph spec in
    print_string (Port_graph.to_dot g)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the graph in Graphviz DOT format.")
    Term.(const run $ graph_arg)

(* --- quotient --- *)

let quotient_cmd =
  let run spec =
    let g = parse_graph spec in
    Format.printf "%a@." Quotient.pp (Quotient.of_graph g);
    Format.printf "feasible: %b@."
      (Quotient.is_trivial (Quotient.of_graph g))
  in
  Cmd.v
    (Cmd.info "quotient"
       ~doc:"Print the quotient (minimal base) of an anonymous network.")
    Term.(const run $ graph_arg)

(* --- tradeoff --- *)

let tradeoff_cmd =
  let run spec =
    let g = parse_graph spec in
    Printf.printf "n=%d; comparing minimum-time vs 2(n-1)-round schemes:\n"
      (Port_graph.order g);
    let report name rounds bits ok =
      Printf.printf "  %-28s %6d rounds %10d advice bits  %s\n" name rounds
        bits
        (if ok then "ok" else "FAILED")
    in
    let s_min = Scheme.run Select_by_view.scheme g in
    report "S (Thm 2.2, min time)" s_min.Scheme.rounds s_min.Scheme.advice_bits
      (Result.is_ok (Verify.selection g s_min.Scheme.outputs));
    let s_rel = Size_advice.run Size_advice.selection g in
    report "S (size advice)" s_rel.Size_advice.rounds
      s_rel.Size_advice.advice_bits
      (Result.is_ok (Verify.selection g s_rel.Size_advice.outputs));
    let c_min = Scheme.run Map_advice.complete_port_path_election g in
    report "CPPE (map advice, min time)" c_min.Scheme.rounds
      c_min.Scheme.advice_bits
      (Result.is_ok (Verify.complete_port_path_election g c_min.Scheme.outputs));
    let c_rel = Size_advice.run Size_advice.complete_port_path_election g in
    report "CPPE (size advice)" c_rel.Size_advice.rounds
      c_rel.Size_advice.advice_bits
      (Result.is_ok
         (Verify.complete_port_path_election g c_rel.Size_advice.outputs))
  in
  Cmd.v
    (Cmd.info "tradeoff"
       ~doc:"Compare minimum-time advice against the 2(n-1)-round schemes.")
    Term.(const run $ graph_arg)

(* --- labelings --- *)

let labelings_cmd =
  let run skeleton =
    let n, edges =
      match String.split_on_char ':' skeleton with
      | [ "path"; n ] ->
          let n = int_of_string n in
          (n, List.init (n - 1) (fun i -> (i, i + 1)))
      | [ "cycle"; n ] ->
          let n = int_of_string n in
          (n, List.init n (fun i -> (i, (i + 1) mod n)))
      | [ "star"; n ] ->
          let n = int_of_string n in
          (n, List.init (n - 1) (fun i -> (0, i + 1)))
      | _ -> failwith "skeleton: path:<n> | cycle:<n> | star:<n>"
    in
    let labelings = Gen.all_labelings n edges in
    let feas = ref 0 in
    let tally = Hashtbl.create 8 in
    List.iter
      (fun g ->
        match (Index.psi_s g, Index.psi_cppe g) with
        | Some s, Some c ->
            incr feas;
            Hashtbl.replace tally (s, c)
              (1 + Option.value ~default:0 (Hashtbl.find_opt tally (s, c)))
        | _ -> ())
      labelings;
    Printf.printf "%s: %d labelings, %d feasible\n" skeleton
      (List.length labelings) !feas;
    Hashtbl.iter
      (fun (s, c) count ->
        Printf.printf "  psi_S=%d psi_CPPE=%d: %d labelings\n" s c count)
      tally
  in
  let skel_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "skeleton" ] ~docv:"SKEL"
          ~doc:"Unlabeled skeleton: path:<n>, cycle:<n>, or star:<n>.")
  in
  Cmd.v
    (Cmd.info "labelings"
       ~doc:
         "Sweep every port labeling of a skeleton and tally feasibility \
          and indexes.")
    Term.(const run $ skel_arg)

(* --- sweep --- *)

let sweep_cmd =
  let open Shades_runtime in
  let run family delta_lo delta_hi k_lo k_hi sigmas is mus zeffs max_order
      domains out sharded tiny compare_with strict trace_out engine
      engine_domains dry_run =
    let domains =
      match domains with Some d -> d | None -> Pool.default_domains ()
    in
    let strategy = strategy_of_flags ~engine ~domains:engine_domains in
    (* Sweep-level registry: J-class points skipped by the node budget
       are tallied here — the grid shrinking must never be silent. *)
    let sweep_metrics = Metrics.create () in
    let jobs, label =
      if tiny then
        (* the smallest honest grid — the CI smoke test and the grid
           `make check` gates against the committed baseline *)
        (Sweep.tiny_jobs ?strategy (), "tiny grid")
      else begin
        let delta = Sweep.range "delta" ~lo:delta_lo ~hi:delta_hi in
        let k = Sweep.range "k" ~lo:k_lo ~hi:k_hi in
        let g_jobs () =
          Sweep.gclass_jobs ?strategy
            (Sweep.cross [ delta; k; Sweep.axis "i" is ])
        in
        let u_jobs () =
          Sweep.uclass_jobs ?strategy
            (Sweep.cross [ delta; k; Sweep.axis "sigma" sigmas ])
        in
        let j_jobs () =
          Sweep.jclass_jobs ?strategy ~max_order ~metrics:sweep_metrics
            (Sweep.cross [ Sweep.axis "mu" mus; k; Sweep.axis "z_eff" zeffs ])
        in
        let jobs =
          match family with
          | "g" -> g_jobs ()
          | "u" -> u_jobs ()
          | "j" -> j_jobs ()
          | "both" -> g_jobs () @ u_jobs ()
          | "all" -> g_jobs () @ u_jobs () @ j_jobs ()
          | f ->
              failwith
                ("unknown family: " ^ f ^ " (expected g, u, j, both or all)")
        in
        ( jobs,
          Printf.sprintf "family=%s delta=%d..%d k=%d..%d" family delta_lo
            delta_hi k_lo k_hi )
      end
    in
    let jclass_skipped =
      List.fold_left
        (fun acc (name, v) ->
          match v with
          | Metrics.Counter c when name = "jclass_skipped_max_order" -> acc + c
          | _ -> acc)
        0
        (Metrics.snapshot sweep_metrics)
    in
    if jclass_skipped > 0 then
      Printf.printf
        "note: %d j-class point%s over the %d-node budget skipped (raise \
         --max-order to include)\n"
        jclass_skipped
        (if jclass_skipped = 1 then "" else "s")
        max_order;
    if jobs = [] then failwith "sweep: empty grid (all points invalid)";
    if dry_run then begin
      (* the resolved schedule, nothing executed: the same job list and
         the same largest-cost-first pickup order a real run would use *)
      let arr = Array.of_list jobs in
      let rank = Array.make (Array.length arr) 0 in
      List.iteri
        (fun pos idx -> rank.(idx) <- pos + 1)
        (Sweep.schedule_order jobs);
      Printf.printf "dry run (%s): %d job%s, %d domain%s, nothing executed\n"
        label (Array.length arr)
        (if Array.length arr = 1 then "" else "s")
        domains
        (if domains = 1 then "" else "s");
      Printf.printf "%-32s %-8s %-12s %10s %5s\n" "label" "family" "engine"
        "cost" "lpt";
      Array.iteri
        (fun i (job : Sweep.job) ->
          Printf.printf "%-32s %-8s %-12s %10d %5d\n" (Sweep.label_of_job job)
            job.Sweep.family
            (Shades_trace.Trace.engine_to_string job.Sweep.engine)
            job.Sweep.cost rank.(i))
        arr;
      Printf.printf "total projected cost: %d nodes\n"
        (Array.fold_left (fun acc (j : Sweep.job) -> acc + j.Sweep.cost) 0 arr)
    end
    else begin
    let t0 = Unix.gettimeofday () in
    let records =
      match trace_out with
      | None -> Sweep.run ~domains jobs
      | Some dir ->
          let traced, _ = Sweep.run_traced ~domains jobs in
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          List.iteri
            (fun idx (_, tr) ->
              let name =
                String.map
                  (fun c -> if c = '/' || c = ' ' then '_' else c)
                  tr.Shades_trace.Trace.meta.Shades_trace.Trace.label
              in
              Shades_trace.Codec.write
                ~path:
                  (Filename.concat dir (Printf.sprintf "%02d-%s.trace" idx name))
                tr)
            traced;
          Printf.printf "wrote %d trace%s to %s/\n" (List.length traced)
            (if List.length traced = 1 then "" else "s")
            dir;
          List.map fst traced
    in
    let dt = Unix.gettimeofday () -. t0 in
    let store = Store.make ~label records in
    if sharded then ignore (Store.Sharded.save ~dir:out store)
    else Store.save ~path:out store;
    Printf.printf "%-28s %8s %7s %10s %12s %10s %9s\n" "point" "n" "rounds"
      "messages" "advice bits" "verified" "wall";
    List.iter
      (fun r ->
        let param_str =
          String.concat " "
            (List.map
               (fun (name, v) ->
                 match v with
                 | Store.Json.String s -> s
                 | v -> name ^ "=" ^ Store.Json.to_string v)
               r.Store.params)
        in
        let counter name =
          match Store.metric r name with
          | Some (Metrics.Counter c) -> c
          | _ -> 0
        in
        Printf.printf "%-28s %8d %7d %10d %12d %10s %8.2fs\n" param_str
          (counter "graph_order") r.Store.rounds r.Store.messages
          r.Store.advice_bits
          (if counter "verified" = 1 then "ok" else "FAILED")
          (float_of_int r.Store.wall_ns /. 1e9))
      records;
    Printf.printf "wrote %s%s: %d records, %.2fs wall, %d domain%s\n" out
      (if sharded then " (sharded)" else "")
      (List.length records) dt domains
      (if domains = 1 then "" else "s");
    if
      List.exists
        (fun r ->
          match Store.metric r "verified" with
          | Some (Metrics.Counter 1) -> false
          | _ -> true)
        records
    then failwith "sweep: some runs failed verification";
    match compare_with with
    | None -> ()
    | Some path -> (
        let changes =
          if Sys.file_exists path && Sys.is_directory path then
            match Store.Sharded.diff ~baseline_dir:path store with
            | Error e -> failwith ("cannot load baseline " ^ path ^ ": " ^ e)
            | Ok changes -> changes
          else
            match Store.load ~path with
            | Error e -> failwith ("cannot load baseline " ^ path ^ ": " ^ e)
            | Ok baseline ->
                List.map
                  (fun c -> ("", c))
                  (Store.diff_changes ~baseline ~current:store)
        in
        match changes with
        | [] -> Printf.printf "no drift against %s\n" path
        | changes ->
            Printf.printf "drift against %s:\n" path;
            List.iter
              (fun (shard, c) ->
                Printf.printf "  %s%s\n"
                  (if shard = "" then "" else "[" ^ shard ^ "] ")
                  (Store.pp_change c))
              changes;
            let n_changed =
              List.length
                (List.filter (fun (_, c) -> Store.is_changed c) changes)
            in
            (* changed measurements always fail; under --strict any
               drift — including grid-shape changes — fails *)
            if strict || n_changed > 0 then begin
              Printf.eprintf
                "sweep: FAILED, %d drifting point%s (%d with changed \
                 measurements) against %s%s\n"
                (List.length changes)
                (if List.length changes = 1 then "" else "s")
                n_changed path
                (if strict then " [strict]" else "");
              exit 1
            end)
    end
  in
  let family_arg =
    Arg.(
      value & opt string "g"
      & info [ "family" ] ~docv:"FAM"
          ~doc:"Family to sweep: g (Selection on G), u (Port Election on U), \
                j (Complete Port-Position Election on scaled J), both (g and \
                u), or all.")
  in
  let range_arg name default_lo default_hi =
    ( Arg.(
        value & opt int default_lo
        & info [ name ^ "-min" ] ~docv:"N" ~doc:("Smallest " ^ name ^ ".")),
      Arg.(
        value & opt int default_hi
        & info [ name ^ "-max" ] ~docv:"N" ~doc:("Largest " ^ name ^ ".")) )
  in
  let delta_lo, delta_hi = range_arg "delta" 4 6 in
  let k_lo, k_hi = range_arg "k" 1 2 in
  let sigmas_arg =
    Arg.(
      value & opt (list int) [ 1 ]
      & info [ "sigma" ] ~docv:"S,..."
          ~doc:"Uniform sigma values for the U family axis.")
  in
  let is_arg =
    Arg.(
      value & opt (list int) [ 2; 3 ]
      & info [ "i" ] ~docv:"I,..." ~doc:"Graph indexes for the G family axis.")
  in
  let mus_arg =
    Arg.(
      value & opt (list int) [ 3 ]
      & info [ "mu" ] ~docv:"MU,..." ~doc:"Arities for the J family axis.")
  in
  let zeffs_arg =
    Arg.(
      value & opt (list int) [ 1; 2; 3 ]
      & info [ "zeff" ] ~docv:"Z,..."
          ~doc:"Scaled chain exponents for the J family axis (2^zeff \
                gadgets); J points also need $(b,--k-min) >= 4.")
  in
  let max_order_arg =
    Arg.(
      value & opt int Shades_runtime.Sweep.default_max_order
      & info [ "max-order" ] ~docv:"N"
          ~doc:"Node budget for J-class points: points whose exact instance \
                order exceeds N are skipped (and reported, never silently).")
  in
  let domains_arg =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains (default: recommended count minus one).")
  in
  let out_arg =
    Arg.(
      value & opt string "BENCH_sweep.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Results file to write.")
  in
  let sharded_arg =
    Arg.(
      value & flag
      & info [ "sharded" ]
          ~doc:"Write a sharded store: treat $(b,--output) as a directory \
                holding one shard file per (family, delta) slice plus a \
                digest manifest.")
  in
  let tiny_arg =
    Arg.(
      value & flag
      & info [ "tiny" ]
          ~doc:"Smoke-test grid (overrides family/range flags) — used by \
                'make check'.")
  in
  let compare_arg =
    Arg.(
      value & opt (some string) None
      & info [ "compare" ] ~docv:"PATH"
          ~doc:"Diff the results against a previously saved store (timing \
                fields ignored): a single-file store, or a sharded store \
                directory — then unchanged shards are skipped by digest. \
                Changed measurements exit nonzero.")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"With $(b,--compare): exit nonzero on any drift at all, \
                including added or removed sweep points (grid-shape \
                changes), not just changed measurements.")
  in
  let dry_run_arg =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Resolve the grid and print the job list — label, family, \
                engine, projected node cost, and the LPT pickup order a \
                real run would use — without executing anything or \
                writing any file.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"DIR"
          ~doc:"Record every job's event stream and write one trace file \
                per record into DIR (created if missing).  Tracing never \
                changes the records, so $(b,--compare) still applies.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a parameter grid over the lower-bound families in parallel and \
          write a schema-versioned results store.")
    Term.(
      const run $ family_arg $ delta_lo $ delta_hi $ k_lo $ k_hi $ sigmas_arg
      $ is_arg $ mus_arg $ zeffs_arg $ max_order_arg $ domains_arg $ out_arg
      $ sharded_arg $ tiny_arg $ compare_arg $ strict_arg $ trace_out_arg
      $ engine_flag_arg $ engine_domains_arg $ dry_run_arg)

(* --- trace --- *)

module Trace = Shades_trace.Trace
module Codec = Shades_trace.Codec
module Replay = Shades_trace.Replay
module Tdiff = Shades_trace.Diff
module Event = Shades_trace.Event
module Baseline = Shades_trace.Baseline

let plural n = if n = 1 then "" else "s"

(* The trace subcommands' exit codes are part of their contract (the
   Makefile and CI distinguish divergence from decode failure): 0 =
   identical / success, 1 = divergent, 2 = a trace, manifest or
   baseline file could not be read or decoded. *)
let trace_exits =
  [
    Cmdliner.Cmd.Exit.info 0 ~doc:"on success (traces agree / gate clean).";
    Cmdliner.Cmd.Exit.info 1 ~doc:"on divergence (including grid-shape drift).";
    Cmdliner.Cmd.Exit.info 2
      ~doc:"when a trace, manifest or baseline file cannot be read or decoded.";
    Cmdliner.Cmd.Exit.info 124 ~doc:"on command line parsing errors.";
    Cmdliner.Cmd.Exit.info 125 ~doc:"on unexpected internal errors (bugs).";
  ]

(* One execution of [task] on [g] under [engine], as the thunk shape
   {!Replay.run} consumes.  `trace record` stores "task graph-spec" in
   the label, so `trace replay` can rebuild exactly this thunk. *)
let trace_exec ~task ~engine g =
  let go scheme emit =
    match engine with
    | Trace.Sync -> ignore (Scheme.run ~tracer:emit scheme g)
    | Trace.Async { seed } ->
        ignore (Scheme.run_async ~seed ~tracer:emit scheme g)
  in
  match String.lowercase_ascii task with
  | "s" -> go Select_by_view.scheme
  | "pe" -> go Map_advice.port_election
  | "ppe" -> go Map_advice.port_path_election
  | "cppe" -> go Map_advice.complete_port_path_election
  | t -> failwith ("unknown task: " ^ t ^ " (expected s, pe, ppe, cppe)")

let load_trace path =
  match Codec.read ~path with
  | Ok t -> t
  | Error e ->
      (* decode failures exit 2, distinct from divergence's 1 *)
      Printf.eprintf "%s: %s\n" path e;
      exit 2

let trace_file_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "f"; "file" ] ~docv:"FILE" ~doc:"Trace file.")

let trace_record_cmd =
  let run spec task async seed capacity out =
    let g = parse_graph spec in
    let engine = if async then Trace.Async { seed } else Trace.Sync in
    let r = Trace.recorder ?capacity () in
    trace_exec ~task ~engine g (Trace.emit r);
    let draft =
      Trace.capture r
        {
          Trace.engine;
          graph_order = Port_graph.order g;
          advice_bits = 0;
          label = String.lowercase_ascii task ^ " " ^ spec;
        }
    in
    let advice_bits =
      Array.fold_left
        (fun acc e ->
          match e with
          | Event.Advice_read { bits; _ } -> max acc bits
          | _ -> acc)
        0 draft.Trace.events
    in
    let trace =
      { draft with Trace.meta = { draft.Trace.meta with Trace.advice_bits } }
    in
    Codec.write ~path:out trace;
    let s = Trace.stats trace in
    Printf.printf
      "wrote %s: %s, n=%d, %d advice bits, %d events (%d dropped), %d \
       round%s, %d sends, %d sync markers\n"
      out
      (Trace.engine_to_string engine)
      trace.Trace.meta.Trace.graph_order advice_bits s.Trace.events
      s.Trace.dropped s.Trace.rounds (plural s.Trace.rounds) s.Trace.sends
      s.Trace.sync_markers
  in
  let async_arg =
    Arg.(
      value & flag
      & info [ "async" ]
          ~doc:"Execute through the α-synchronizer (seeded delays) instead \
                of the synchronous engine.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Delay PRNG seed (with $(b,--async)).")
  in
  let capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Recorder ring-buffer capacity (default 1048576 events); \
                beyond it the oldest events are evicted and counted.")
  in
  let task_arg =
    Arg.(
      value & opt string "s"
      & info [ "t"; "task" ] ~docv:"TASK" ~doc:"One of s, pe, ppe, cppe.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace file to write.")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Run an election scheme through the simulator and record its \
          event stream to a versioned binary trace.")
    Term.(
      const run $ graph_arg $ task_arg $ async_arg $ seed_arg $ capacity_arg
      $ out_arg)

let trace_replay_cmd =
  let run file =
    let trace = load_trace file in
    let label = trace.Trace.meta.Trace.label in
    let task, spec =
      match String.index_opt label ' ' with
      | Some i ->
          ( String.sub label 0 i,
            String.sub label (i + 1) (String.length label - i - 1) )
      | None ->
          failwith
            ("trace label is not \"task graph-spec\" (was it recorded by \
              `trace record`?): " ^ label)
    in
    let g = parse_graph spec in
    match
      Replay.run trace (trace_exec ~task ~engine:trace.Trace.meta.Trace.engine g)
    with
    | Ok () ->
        Printf.printf "replay ok: %d events reproduced (%s on %s, %s)\n"
          (Array.length trace.Trace.events)
          task spec
          (Trace.engine_to_string trace.Trace.meta.Trace.engine)
    | Error d ->
        Printf.printf "replay DIVERGED at %s\n" (Replay.pp_divergence d);
        exit 1
  in
  Cmd.v
    (Cmd.info "replay" ~exits:trace_exits
       ~doc:
         "Re-execute a recorded run and fail on the first event that \
          differs from the trace.")
    Term.(const run $ trace_file_arg)

let trace_diff_cmd =
  let run left right limit =
    let l = load_trace left and r = load_trace right in
    match Tdiff.divergences ~limit l r with
    | [] ->
        Printf.printf "traces agree modulo synchronizer markers (%s vs %s)\n"
          (Trace.engine_to_string l.Trace.meta.Trace.engine)
          (Trace.engine_to_string r.Trace.meta.Trace.engine)
    | ds ->
        List.iter (fun d -> print_endline (Tdiff.pp_divergence d)) ds;
        Printf.printf "%d divergence(s)%s\n" (List.length ds)
          (if List.length ds >= limit then " (capped)" else "");
        exit 1
  in
  let left_arg =
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"LEFT" ~doc:"Trace.")
  in
  let right_arg =
    Arg.(
      required & pos 1 (some string) None & info [] ~docv:"RIGHT" ~doc:"Trace.")
  in
  let limit_arg =
    Arg.(
      value & opt int 100
      & info [ "limit" ] ~docv:"N" ~doc:"Report at most N divergences.")
  in
  Cmd.v
    (Cmd.info "diff" ~exits:trace_exits
       ~doc:
         "Align two traces (synchronizer markers modulo'd out) and report \
          the earliest divergences as (round, vertex, event).  Exits 0 when \
          the traces agree, 1 on divergence, 2 when a file cannot be \
          decoded.")
    Term.(const run $ left_arg $ right_arg $ limit_arg)

let trace_stats_cmd =
  let run file =
    let t = load_trace file in
    let s = Trace.stats t in
    Printf.printf "label:        %s\n" t.Trace.meta.Trace.label;
    Printf.printf "engine:       %s\n"
      (Trace.engine_to_string t.Trace.meta.Trace.engine);
    Printf.printf "graph order:  %d\n" t.Trace.meta.Trace.graph_order;
    Printf.printf "advice bits:  %d\n" t.Trace.meta.Trace.advice_bits;
    Printf.printf "events:       %d (+%d dropped)\n" s.Trace.events
      s.Trace.dropped;
    Printf.printf "rounds:       %d (max round %d)\n" s.Trace.rounds
      s.Trace.max_round;
    Printf.printf "sends:        %d (total size %d)\n" s.Trace.sends
      s.Trace.send_size_total;
    Printf.printf "delivers:     %d\n" s.Trace.delivers;
    Printf.printf "decides:      %d\n" s.Trace.decides;
    Printf.printf "halts:        %d\n" s.Trace.halts;
    Printf.printf "advice reads: %d\n" s.Trace.advice_reads;
    Printf.printf "sync markers: %d\n" s.Trace.sync_markers;
    if s.Trace.crashes > 0 then
      Printf.printf "crashes:      %d\n" s.Trace.crashes;
    match Trace.per_round_sends t with
    | [] -> ()
    | per_round ->
        Printf.printf "sends by round:%s\n"
          (String.concat ""
             (List.map
                (fun (r, c) -> Printf.sprintf " %d:%d" r c)
                per_round))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Summarize a recorded trace.")
    Term.(const run $ trace_file_arg)

(* bless/gate share the tiny-grid runner: both re-record the grid with
   the same job keys, so what `gate` compares is exactly what `bless`
   committed. *)
let baseline_dir_arg =
  Arg.(
    value & opt string "BENCH_tiny/traces"
    & info [ "b"; "baseline" ] ~docv:"DIR"
        ~doc:"Blessed-trace store directory (one .shtr file per tiny-grid \
              job plus a digest manifest).")

let trace_domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains (default: recommended count minus one).  The \
              traces carry no wall-clock data, so the domain count never \
              changes what gets blessed or gated.")

let trace_bless_cmd =
  let run dir domains engine engine_domains =
    let open Shades_runtime in
    let domains =
      match domains with Some d -> d | None -> Pool.default_domains ()
    in
    let jobs =
      Sweep.tiny_jobs
        ?strategy:(strategy_of_flags ~engine ~domains:engine_domains)
        ()
    in
    let traced, _ = Sweep.run_traced ~domains jobs in
    let keyed =
      List.map2 (fun job (_, tr) -> (Sweep.key_of_job job, tr)) jobs traced
    in
    let m = Baseline.save ~dir keyed in
    Printf.printf "blessed %d baseline trace%s into %s/ (format v%d)\n"
      (List.length m.Baseline.entries)
      (plural (List.length m.Baseline.entries))
      dir m.Baseline.version;
    List.iter
      (fun e ->
        Printf.printf "  %s  %s (%d event%s)\n" e.Baseline.digest
          e.Baseline.key e.Baseline.events (plural e.Baseline.events))
      m.Baseline.entries
  in
  Cmd.v
    (Cmd.info "bless"
       ~doc:
         "Re-record the tiny grid and commit its traces as the blessed \
          baselines that $(b,trace gate) (and 'make check') compare \
          against.  Unchanged traces are left untouched on disk.")
    Term.(
      const run $ baseline_dir_arg $ trace_domains_arg $ engine_flag_arg
      $ engine_domains_arg)

let trace_gate_cmd =
  let run dir json_out domains engine engine_domains =
    let open Shades_runtime in
    let domains =
      match domains with Some d -> d | None -> Pool.default_domains ()
    in
    let jobs =
      Sweep.tiny_jobs
        ?strategy:(strategy_of_flags ~engine ~domains:engine_domains)
        ()
    in
    let _, report = Sweep.run_traced ~domains ~baseline:dir jobs in
    match report with
    | None | Some (Error _) ->
        (match report with
        | Some (Error e) -> Printf.eprintf "trace gate: %s\n" e
        | _ -> Printf.eprintf "trace gate: no report produced\n");
        exit 2
    | Some (Ok r) -> (
        Option.iter
          (fun path ->
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Shades_json.Json.to_string (Baseline.report_to_json r));
                output_char oc '\n');
            Printf.printf "wrote divergence report to %s\n" path)
          json_out;
        if Baseline.clean r then
          Printf.printf
            "trace gate: %d job%s identical to the blessed baselines in %s/\n"
            (List.length r.Baseline.jobs)
            (plural (List.length r.Baseline.jobs))
            dir
        else begin
          List.iter prerr_endline (Baseline.pp_report r);
          Printf.eprintf "trace gate: FAILED against %s/\n" dir;
          (* unreadable baselines are an infrastructure failure (2),
             not a behavioural divergence (1) *)
          exit (if Baseline.has_corrupt r then 2 else 1)
        end)
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the full report as JSON to FILE (the CI \
                divergence artifact).")
  in
  Cmd.v
    (Cmd.info "gate" ~exits:trace_exits
       ~doc:
         "Re-record the tiny grid and compare every trace against the \
          blessed baselines, failing with the first divergent (round, \
          vertex, event) per drifted job.  Unchanged traces are skipped by \
          digest without decoding.")
    Term.(
      const run $ baseline_dir_arg $ json_arg $ trace_domains_arg
      $ engine_flag_arg $ engine_domains_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Record, replay, diff and summarize execution traces of the LOCAL \
          simulator — and bless/gate the tiny grid's baseline traces.")
    [
      trace_record_cmd;
      trace_replay_cmd;
      trace_diff_cmd;
      trace_stats_cmd;
      trace_bless_cmd;
      trace_gate_cmd;
    ]

(* --- lint --- *)

let lint_cmd =
  let open Shades_analysis in
  (* the --rules vocabulary and help text are generated from the
     registry, so they cannot drift from the rules that actually run *)
  let rules_doc =
    "Comma-separated subset of rules to run.  Available: "
    ^ String.concat "; "
        (List.map
           (fun (name, doc) -> Printf.sprintf "$(b,%s) (%s)" name doc)
           (Lint.describe ()))
    ^ "."
  in
  let lint_exits =
    [
      Cmdliner.Cmd.Exit.info 0 ~doc:"when the tree lints clean.";
      Cmdliner.Cmd.Exit.info 1 ~doc:"on unsuppressed error findings.";
      Cmdliner.Cmd.Exit.info 2
        ~doc:
          "when the typed ASTs (.cmt) cannot be discovered or decoded — \
           build first.";
      Cmdliner.Cmd.Exit.info 124 ~doc:"on command line parsing errors.";
      Cmdliner.Cmd.Exit.info 125 ~doc:"on unexpected internal errors (bugs).";
    ]
  in
  let run json sarif rules root paths =
    let rules = match rules with [] -> None | rs -> Some rs in
    let paths = match paths with [] -> [ "lib" ] | ps -> ps in
    let result = Lint.run ?rules ~root ~paths () in
    (match result with
    | Error e -> Printf.eprintf "lint: %s\n" e
    | Ok report ->
        Option.iter
          (fun path ->
            Report.write_json ~path report;
            Printf.printf "wrote lint report to %s\n" path)
          json;
        Option.iter
          (fun path ->
            (* selection cannot fail here: Lint.run already resolved it *)
            let selected =
              match Lint.select rules with Ok rs -> rs | Error _ -> Lint.rules
            in
            Report.write_sarif ~path ~rules:selected report;
            Printf.printf "wrote SARIF log to %s\n" path)
          sarif;
        Format.printf "%a@?" Report.pp report);
    exit (Lint.exit_code result)
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Also write the report as JSON to FILE (the CI artifact).")
  in
  let sarif_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:
            "Also write the report as a SARIF 2.1.0 log to FILE (the \
             dialect GitHub code scanning ingests).")
  in
  let rules_arg =
    Arg.(value & opt (list string) [] & info [ "rules" ] ~docv:"R1,R2" ~doc:rules_doc)
  in
  let root_arg =
    Arg.(
      value & opt string "."
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Project root; .cmt files are read from its _build/default \
             mirror when one exists.")
  in
  let paths_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATHS"
          ~doc:"Source directories to lint (default: lib).")
  in
  Cmd.v
    (Cmd.info "lint" ~exits:lint_exits
       ~doc:
         "Run the shadescheck determinism & locality rules over the \
          project's typed ASTs.  Exits 0 clean, 1 on findings, 2 when \
          the .cmt files cannot be loaded.")
    Term.(const run $ json_arg $ sarif_arg $ rules_arg $ root_arg $ paths_arg)

(* --- families --- *)

let delta_arg =
  Arg.(value & opt int 4 & info [ "delta" ] ~docv:"DELTA" ~doc:"Max degree.")

let k_arg =
  Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Election index.")

let family_g_cmd =
  let run delta k i =
    let t = Gclass.build { Gclass.delta; k } ~i in
    let g = t.Gclass.graph in
    Printf.printf "G_%d of G_{%d,%d}: n=%d m=%d\n" i delta k
      (Port_graph.order g) (Port_graph.size g);
    Printf.printf "class size: %s graphs\n"
      (match Gclass.num_graphs { Gclass.delta; k } with
      | Some c -> string_of_int c
      | None ->
          Printf.sprintf "2^%.1f" (Gclass.num_graphs_log2 { Gclass.delta; k }));
    Printf.printf "psi_S = %s (expected %d)\n"
      (pp_psi (Refinement.min_unique_depth g))
      k;
    let r = Scheme.run Select_by_view.scheme g in
    Printf.printf "Thm 2.2 scheme: %d rounds, %d advice bits, leader %s\n"
      r.Scheme.rounds r.Scheme.advice_bits
      (match Verify.selection g r.Scheme.outputs with
      | Ok l -> Printf.sprintf "%d (r_{%d,2}=%d)" l i t.Gclass.special_root
      | Error e -> "FAILED: " ^ e)
  in
  let i_arg =
    Arg.(value & opt int 2 & info [ "i" ] ~docv:"I" ~doc:"Graph index.")
  in
  Cmd.v
    (Cmd.info "family-g" ~doc:"Build a graph of the class G (Section 2.2).")
    Term.(const run $ delta_arg $ k_arg $ i_arg)

let family_u_cmd =
  let run delta k s =
    let p = { Uclass.delta; k } in
    let t = Uclass.build p ~sigma:(Uclass.uniform_sigma p s) in
    let g = t.Uclass.graph in
    Printf.printf "G_sigma of U_{%d,%d} (sigma=%d uniform): n=%d m=%d\n" delta
      k s (Port_graph.order g) (Port_graph.size g);
    Printf.printf "psi_S = %s (expected %d)\n"
      (pp_psi (Refinement.min_unique_depth g))
      k;
    let r = Scheme.run Uclass.pe_scheme g in
    Printf.printf "Lemma 3.9 PE scheme: %d rounds, %d advice bits, %s\n"
      r.Scheme.rounds r.Scheme.advice_bits
      (match Verify.port_election g r.Scheme.outputs with
      | Ok l -> Printf.sprintf "leader %d" l
      | Error e -> "FAILED: " ^ e)
  in
  let s_arg =
    Arg.(value & opt int 1 & info [ "sigma" ] ~docv:"S" ~doc:"Uniform sigma.")
  in
  Cmd.v
    (Cmd.info "family-u" ~doc:"Build a graph of the class U (Section 3).")
    Term.(const run $ delta_arg $ k_arg $ s_arg)

let family_j_cmd =
  let run mu k z_eff =
    let p = { Jclass.mu; k; z_eff } in
    let t = Jclass.build p ~y:(Jclass.y_zero p) in
    let g = t.Jclass.graph in
    Printf.printf "scaled J_{%d,%d} with 2^%d gadgets: n=%d m=%d (full z=%d)\n"
      mu k z_eff (Port_graph.order g) (Port_graph.size g) (Jclass.z ~mu ~k);
    let answers = Jclass.cppe_assignment t in
    Printf.printf "Lemma 4.8 CPPE assignment: %s\n"
      (match Verify.complete_port_path_election g answers with
      | Ok l -> Printf.sprintf "verified, leader = rho_0 = %d" l
      | Error e -> "FAILED: " ^ e)
  in
  let mu_arg =
    Arg.(value & opt int 3 & info [ "mu" ] ~docv:"MU" ~doc:"Arity (>= 3).")
  in
  let k4_arg =
    Arg.(
      value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Election index (>= 4).")
  in
  let z_arg =
    Arg.(
      value & opt int 3
      & info [ "zeff" ] ~docv:"Z"
          ~doc:"Chain 2^zeff gadgets (scaled template).")
  in
  Cmd.v
    (Cmd.info "family-j"
       ~doc:"Build a (scaled) graph of the class J (Section 4).")
    Term.(const run $ mu_arg $ k4_arg $ z_arg)

(* --- serve / client --- *)

(* The daemon subcommands' exit codes are part of their contract
   (scripts/serve_smoke.sh and CI distinguish a server-side rejection
   from an unreachable endpoint): 0 = success, 1 = the server answered
   with an error or an invalid verification verdict, 2 = the endpoint
   could not be bound or reached. *)
let server_exits =
  [
    Cmdliner.Cmd.Exit.info 0 ~doc:"on success (clean shutdown / ok reply).";
    Cmdliner.Cmd.Exit.info 1
      ~doc:
        "when the server answers with an error reply or an invalid \
         verification verdict.";
    Cmdliner.Cmd.Exit.info 2
      ~doc:"when the endpoint cannot be bound or reached.";
    Cmdliner.Cmd.Exit.info 124 ~doc:"on command line parsing errors.";
    Cmdliner.Cmd.Exit.info 125 ~doc:"on unexpected internal errors (bugs).";
  ]

let endpoint_conv =
  let parse s =
    match Shades_server.Protocol.endpoint_of_string s with
    | Ok e -> Ok e
    | Error msg -> Error (`Msg msg)
  in
  let print ppf e =
    Format.pp_print_string ppf (Shades_server.Protocol.endpoint_to_string e)
  in
  Arg.conv (parse, print) ~docv:"ENDPOINT"

let default_endpoint = "unix:/tmp/shades.sock"

let serve_cmd =
  let open Shades_server in
  let run listen http domains cache_capacity cache_dir cache_max_bytes
      max_frame metrics_out quiet =
    let service =
      Service.create ~cache_capacity ?cache_dir ?cache_max_bytes ()
    in
    let log =
      if quiet then fun _ -> ()
      else fun m -> Printf.eprintf "shades-serve: %s\n%!" m
    in
    let write_metrics () =
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc (Json.to_string (Service.stats_json service));
          output_char oc '\n';
          close_out oc;
          log ("metrics written to " ^ path))
        metrics_out
    in
    (match http with
    | Some h when h = listen ->
        Printf.eprintf
          "shades-serve: --http must differ from --listen (%s)\n"
          (Protocol.endpoint_to_string listen);
        exit 124
    | _ -> ());
    match Daemon.run ?domains ~max_frame ~log ?http listen service with
    | () -> write_metrics ()
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "shades-serve: cannot serve on %s: %s\n"
          (Protocol.endpoint_to_string listen)
          (Unix.error_message e);
        write_metrics ();
        exit 2
    | exception Failure msg ->
        Printf.eprintf "shades-serve: %s\n" msg;
        write_metrics ();
        exit 2
  in
  let listen_arg =
    Arg.(
      value
      & opt endpoint_conv
          (Result.get_ok (Protocol.endpoint_of_string default_endpoint))
      & info [ "l"; "listen" ] ~docv:"ENDPOINT"
          ~doc:
            "Endpoint to listen on: $(b,unix:<path>), $(b,tcp:<port>) or \
             $(b,tcp:<host>:<port>).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Connection-handler domains (default: the machine's recommended \
             domain count).")
  in
  let http_arg =
    Arg.(
      value
      & opt (some endpoint_conv) None
      & info [ "http" ] ~docv:"ENDPOINT"
          ~doc:
            "Also serve an HTTP observability plane on ENDPOINT \
             ($(b,unix:<path>) or $(b,tcp:...)): $(b,GET /metrics) \
             (Prometheus text format) and $(b,GET /healthz).  Must differ \
             from $(b,--listen).")
  in
  let capacity_arg =
    Arg.(
      value
      & opt int Service.default_cache_capacity
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:
            "Memory-tier entries per cache (advice and results) before LRU \
             eviction.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:
            "Persist the advice and result caches under DIR (created if \
             missing): one file per content address, written atomically, \
             reloaded on restart so a daemon restarted on the same DIR \
             answers previously seen requests with zero recomputation.")
  in
  let cache_max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-bytes" ] ~docv:"BYTES"
          ~doc:
            "Byte budget for each persistent cache tier directory (advice \
             and results separately).  A write that pushes a tier past the \
             budget evicts its oldest files (by mtime) until it fits; \
             evictions are counted as $(b,*_disk_evictions) in \
             $(b,GET /metrics).  Default: unbounded.")
  in
  let max_frame_arg =
    Arg.(
      value
      & opt int Protocol.default_max_frame
      & info [ "max-frame" ] ~docv:"BYTES" ~doc:"Largest accepted frame.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the final stats snapshot (the $(b,stats) payload) to FILE \
             on exit — the CI smoke-test artifact.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "q"; "quiet" ] ~doc:"Suppress operational log lines (stderr).")
  in
  Cmd.v
    (Cmd.info "serve" ~exits:server_exits
       ~doc:
         "Run the election-as-a-service daemon: advise / elect / verify / \
          verify-trace / stats / batch over a framed JSONL protocol, with \
          content-addressed advice and result caches shared across \
          connections (optionally persisted with $(b,--cache-dir)) and an \
          optional HTTP metrics plane ($(b,--http)).  Blocks until a client \
          sends $(b,shutdown).")
    Term.(
      const run $ listen_arg $ http_arg $ domains_arg $ capacity_arg
      $ cache_dir_arg $ cache_max_bytes_arg $ max_frame_arg $ metrics_out_arg
      $ quiet_arg)

let client_cmd =
  let open Shades_server in
  let usage_failure msg =
    Printf.eprintf "shades-client: %s\n" msg;
    exit 124
  in
  let run connect connect_timeout connect_retries op spec task engine seed
      domains outputs trace_file requests =
    (* --outputs and --requests both accept inline JSON or @FILE *)
    let read_inline_or_file s =
      if String.length s > 0 && s.[0] = '@' then
        let path = String.sub s 1 (String.length s - 1) in
        match In_channel.with_open_bin path In_channel.input_all with
        | text -> text
        | exception Sys_error e -> usage_failure e
      else s
    in
    let graph_members () =
      match spec with
      | Some s -> [ ("graph", Json.String s); ("task", Json.String task) ]
      | None -> usage_failure ("op " ^ op ^ " needs --graph")
    in
    let req =
      match op with
      | "stats" | "shutdown" -> Json.Obj [ ("op", Json.String op) ]
      | "advise" -> Json.Obj (("op", Json.String op) :: graph_members ())
      | "elect" ->
          Json.Obj
            ((("op", Json.String op) :: graph_members ())
            @ [ ("engine", Json.String engine) ]
            @ (if engine = "async" then [ ("seed", Json.Int seed) ] else [])
            @
            match domains with
            | Some d when engine = "sharded" -> [ ("domains", Json.Int d) ]
            | _ -> [])
      | "verify" ->
          let text =
            match outputs with
            | Some s -> read_inline_or_file s
            | None ->
                usage_failure
                  "op verify needs --outputs (a JSON list, or @FILE)"
          in
          let outputs_json =
            match Json.of_string text with
            | Ok j -> j
            | Error e -> usage_failure ("--outputs is not JSON: " ^ e)
          in
          Json.Obj
            ((("op", Json.String op) :: graph_members ())
            @ [ ("outputs", outputs_json) ])
      | "batch" ->
          let text =
            match requests with
            | Some s -> read_inline_or_file s
            | None ->
                usage_failure
                  "op batch needs --requests (a JSON list of request \
                   objects, or @FILE)"
          in
          let requests_json =
            match Json.of_string text with
            | Ok (Json.List _ as j) -> j
            | Ok _ -> usage_failure "--requests must be a JSON list"
            | Error e -> usage_failure ("--requests is not JSON: " ^ e)
          in
          Json.Obj
            [ ("op", Json.String op); ("requests", requests_json) ]
      | "verify-trace" ->
          let path =
            match trace_file with
            | Some p -> p
            | None -> usage_failure "op verify-trace needs --trace FILE"
          in
          let blob =
            match In_channel.with_open_bin path In_channel.input_all with
            | blob -> blob
            | exception Sys_error e -> usage_failure e
          in
          Json.Obj
            [
              ("op", Json.String op);
              ("trace", Json.String (Protocol.hex_encode blob));
            ]
      | other ->
          usage_failure
            ("unknown op: " ^ other
           ^ " (expected advise, elect, verify, verify-trace, stats, batch, \
              shutdown)")
    in
    match
      Client.with_connection ?timeout:connect_timeout
        ~attempts:(1 + max 0 connect_retries) connect (fun c ->
          Client.request c req)
    with
    | Error e | Ok (Error e) ->
        Printf.eprintf "shades-client: %s\n" e;
        exit 2
    | Ok (Ok reply) ->
        print_endline (Json.to_string reply);
        let ok =
          match Json.member "ok" reply with
          | Some (Json.Bool b) -> b
          | _ -> false
        in
        (* a well-formed reply to verify / verify-trace carries a
           verdict; an invalid one exits 1 like a server error, so
           scripts need no JSON parsing to gate on it.  A batch reply
           gates on every item: one failed or invalid item fails the
           whole command (the per-item replies are still printed). *)
        let reply_clean reply =
          let ok =
            match Json.member "ok" reply with
            | Some (Json.Bool b) -> b
            | _ -> false
          in
          let valid =
            match Json.member "result" reply with
            | Some r -> (
                match Json.member "valid" r with
                | Some (Json.Bool false) -> false
                | _ -> true)
            | None -> true
          in
          ok && valid
        in
        let batch_clean =
          match Json.member "result" reply with
          | Some r -> (
              match Json.member "replies" r with
              | Some (Json.List items) -> List.for_all reply_clean items
              | _ -> true)
          | None -> true
        in
        if not (ok && reply_clean reply && batch_clean) then exit 1
  in
  let connect_arg =
    Arg.(
      value
      & opt endpoint_conv
          (Result.get_ok (Protocol.endpoint_of_string default_endpoint))
      & info [ "c"; "connect" ] ~docv:"ENDPOINT"
          ~doc:
            "Endpoint to connect to: $(b,unix:<path>), $(b,tcp:<port>) or \
             $(b,tcp:<host>:<port>).")
  in
  let connect_timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Bound each connection attempt to SECONDS (fractional values \
             allowed) instead of the kernel's SYN-retry horizon — a \
             black-holed TCP host then fails fast with a timeout error.")
  in
  let connect_retries_arg =
    Arg.(
      value & opt int 0
      & info [ "connect-retries" ] ~docv:"N"
          ~doc:
            "Retry a failed $(b,tcp:) connect up to N more times with \
             exponential backoff (50ms doubling, capped at 1s) — for \
             racing a daemon that is still binding its port.  Unix-socket \
             connects never retry.")
  in
  let op_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OP"
          ~doc:
            "One of $(b,advise), $(b,elect), $(b,verify), $(b,verify-trace), \
             $(b,stats), $(b,batch), $(b,shutdown).")
  in
  let spec_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "g"; "graph" ] ~docv:"SPEC"
          ~doc:"Graph spec (same grammar as every other subcommand).")
  in
  let task_arg =
    Arg.(
      value & opt string "s"
      & info [ "t"; "task" ] ~docv:"TASK" ~doc:"Task: s, pe, ppe or cppe.")
  in
  let engine_arg =
    Arg.(
      value & opt string "sync"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Election engine for $(b,elect): sync, sharded (vertex-sharded \
             parallel execution, identical results) or async.")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Adversary schedule seed for $(b,--engine async).")
  in
  let client_domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:"Worker domains for $(b,--engine sharded).")
  in
  let outputs_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "outputs" ] ~docv:"JSON"
          ~doc:
            "Claimed per-node outputs for $(b,verify): a JSON list (the \
             $(b,elect) reply's \"outputs\" field), or $(b,@FILE) to read \
             it from FILE.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"SHTR trace file to upload for $(b,verify-trace).")
  in
  let requests_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "requests" ] ~docv:"JSON"
          ~doc:
            "Request objects for $(b,batch): a JSON list of ordinary \
             request payloads (each with its own \"op\"), or $(b,@FILE) to \
             read it from FILE.  The daemon answers them in one frame, in \
             order.")
  in
  Cmd.v
    (Cmd.info "client" ~exits:server_exits
       ~doc:
         "Send one request to a running $(b,serve) daemon and print the \
          JSON reply.  Exits 0 on an ok reply, 1 on a server error, an \
          invalid verdict, or any failed item in a $(b,batch) reply, 2 \
          when the endpoint is unreachable.")
    Term.(
      const run $ connect_arg $ connect_timeout_arg $ connect_retries_arg
      $ op_arg $ spec_arg $ task_arg $ engine_arg $ seed_arg
      $ client_domains_arg $ outputs_arg $ trace_arg $ requests_arg)

(* --- adversary --- *)

(* Same contract family as the trace gates: 0 = the adversary lost (or
   a gate is clean), 1 = the adversary won (a crash plan defeated the
   scheme, a mutant fooled a shade, a campaign verdict or baseline
   gate failed), 2 = an instance or baseline could not be used. *)
let adversary_exits =
  [
    Cmdliner.Cmd.Exit.info 0
      ~doc:"on success (scheme resilient / campaign verdict and gate clean).";
    Cmdliner.Cmd.Exit.info 1
      ~doc:
        "when the adversary wins: a crash plan aborts or stalls the scheme, \
         a corruption fools a shade, or a campaign fails its verdict or \
         drifts from the blessed baseline.";
    Cmdliner.Cmd.Exit.info 2
      ~doc:"when an instance is infeasible or a baseline cannot be read.";
    Cmdliner.Cmd.Exit.info 124 ~doc:"on command line parsing errors.";
    Cmdliner.Cmd.Exit.info 125 ~doc:"on unexpected internal errors (bugs).";
  ]

let adversary_cmd =
  let open Shades_adversary in
  let shade_of_task task =
    let wanted = String.lowercase_ascii task in
    match
      List.find_opt
        (fun s ->
          String.lowercase_ascii (Task.kind_to_string (Corrupt.task_of s))
          = wanted)
        Corrupt.map_shades
    with
    | Some s -> s
    | None ->
        failwith ("unknown task: " ^ task ^ " (expected s, pe, ppe, cppe)")
  in
  let task_arg =
    Arg.(
      value & opt string "s"
      & info [ "t"; "task" ] ~docv:"TASK" ~doc:"One of s, pe, ppe, cppe.")
  in
  let schedule_search_cmd =
    let run spec task seeds beam passes =
      let g = parse_graph spec in
      match shade_of_task task with
      | Corrupt.Shade { scheme; _ } ->
          let sweeps = Schedule.sweep_seeds scheme g ~seeds in
          Printf.printf "seeded delay plans on %s (task %s):\n" spec
            (String.uppercase_ascii task);
          List.iter
            (fun (seed, m) ->
              Printf.printf "  seed %4d  makespan %8.3f\n" seed m)
            sweeps;
          let best_seed =
            List.fold_left (fun acc (_, m) -> Float.max acc m) 0. sweeps
          in
          let r =
            Schedule.search ~beam ~passes scheme g
              ~init:(Schedule.uniform g 0.05)
          in
          Printf.printf
            "search (beam=%d, passes=%d): makespan %.3f after %d evaluations\n"
            beam passes r.Schedule.makespan r.Schedule.evaluations;
          Printf.printf "adversarial gain over the best swept seed: %+.3f\n"
            (r.Schedule.makespan -. best_seed)
    in
    let seeds_arg =
      Arg.(
        value
        & opt (list int) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        & info [ "seeds" ] ~docv:"S,..."
            ~doc:"Seeds of the swept per-edge delay distribution.")
    in
    let beam_arg =
      Arg.(
        value & opt int 2
        & info [ "beam" ] ~docv:"N" ~doc:"Beam width (1 = greedy ascent).")
    in
    let passes_arg =
      Arg.(
        value & opt int 2
        & info [ "passes" ] ~docv:"N"
            ~doc:
              "Full coordinate-ascent sweeps over the directed edges \
               (early exit when a pass stops improving).")
    in
    Cmd.v
      (Cmd.info "schedule-search" ~exits:adversary_exits
         ~doc:
           "Sweep seeded \xce\xb1-synchronizer delay plans, then \
            beam-search the per-edge delay space for the plan maximizing \
            the virtual completion time (makespan).  Outputs and round \
            counts are plan-invariant — asynchrony only surrenders \
            completion time to the adversary — so this prints makespans, \
            never election results.")
      Term.(
        const run $ graph_arg $ task_arg $ seeds_arg $ beam_arg $ passes_arg)
  in
  let crash_cmd =
    let run spec task crashes max_rounds =
      let g = parse_graph spec in
      let faults =
        List.map
          (fun (victim, at_round) ->
            { Shades_localsim.Engine.victim; at_round })
          crashes
      in
      match shade_of_task task with
      | Corrupt.Shade { scheme; _ } ->
          let plan = Fault.normalize ~n:(Port_graph.order g) faults in
          Printf.printf "plan: %s\n"
            (if plan = [] then "(no faults)"
             else
               String.concat ", "
                 (List.map
                    (fun { Shades_localsim.Engine.victim; at_round } ->
                      Printf.sprintf "%d@%d" victim at_round)
                    plan));
          let outcome = Fault.run ?max_rounds scheme g ~faults in
          print_endline (Fault.describe outcome);
          (match outcome with
          | Fault.Survived _ -> ()
          | Fault.Stalled _ | Fault.Aborted _ -> exit 1)
    in
    let crash_arg =
      Arg.(
        value
        & opt_all (pair ~sep:'@' int int) []
        & info [ "crash" ] ~docv:"V@R"
            ~doc:
              "Crash vertex V at the start of round R (repeatable; the \
               earliest round wins per victim).  A node crashing at round \
               0 never acts; one crashing at round r sends nothing from \
               round r on.")
    in
    let max_rounds_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-rounds" ] ~docv:"N"
            ~doc:
              "Round budget: live nodes still undecided at N classify the \
               run as stalled.")
    in
    Cmd.v
      (Cmd.info "crash" ~exits:adversary_exits
         ~doc:
           "Run an election scheme under a crash-stop fault plan and \
            classify the outcome: survived (every live node decided), \
            stalled (round budget), or aborted (the paper's protocols \
            are not fault-tolerant — a crashed neighbour starves a live \
            node's view exchange).  Exits 1 unless the scheme survived.")
      Term.(const run $ graph_arg $ task_arg $ crash_arg $ max_rounds_arg)
  in
  let corrupt_cmd =
    let run spec task flips burst_len bursts truncations no_swap slack =
      let g = parse_graph spec in
      match shade_of_task task with
      | shade ->
          let prepared =
            try Corrupt.prepare ~slack shade g
            with Invalid_argument msg ->
              Printf.eprintf "shades adversary corrupt: %s\n" msg;
              exit 2
          in
          let bits = prepared.Corrupt.advice_bits in
          let n = Port_graph.order g in
          let ops =
            Corrupt.flips ~bits ~count:flips
            @ Corrupt.bursts ~bits ~len:burst_len ~count:bursts
            @ Corrupt.truncations ~bits ~count:truncations
            @
            if no_swap then []
            else
              [
                Corrupt.renumber_swap ~label:"reversal" g (Corrupt.reversal n);
              ]
          in
          Printf.printf
            "reference: leader %d in %d round%s, %d advice bits; %d mutants\n"
            prepared.Corrupt.reference_leader prepared.Corrupt.reference_rounds
            (plural prepared.Corrupt.reference_rounds)
            bits (List.length ops);
          let fooled = ref 0 in
          List.iter
            (fun op ->
              let c = prepared.Corrupt.classify op in
              let detail =
                match c with
                | Corrupt.Detected { reason } -> reason
                | Corrupt.Harmless { leader; rounds } ->
                    Printf.sprintf "leader %d in %d rounds" leader rounds
                | Corrupt.Fooling { leader; reference; rounds } ->
                    incr fooled;
                    Printf.sprintf "leader %d instead of %d in %d rounds"
                      leader reference rounds
              in
              Printf.printf "  %-16s %-9s %s\n" (Corrupt.op_label op)
                (Corrupt.class_label c) detail)
            ops;
          if !fooled > 0 then begin
            Printf.printf "%d fooling corruption%s — the adversary wins\n"
              !fooled (plural !fooled);
            exit 1
          end
    in
    let flips_arg =
      Arg.(
        value & opt int 8
        & info [ "flips" ] ~docv:"N" ~doc:"Evenly spaced single-bit flips.")
    in
    let burst_len_arg =
      Arg.(
        value & opt int 8
        & info [ "burst-len" ] ~docv:"L" ~doc:"Length of each burst flip.")
    in
    let bursts_arg =
      Arg.(
        value & opt int 3
        & info [ "bursts" ] ~docv:"N" ~doc:"Evenly spaced burst flips.")
    in
    let truncations_arg =
      Arg.(
        value & opt int 3
        & info [ "truncations" ] ~docv:"N"
            ~doc:"Evenly spaced truncations (including empty advice).")
    in
    let no_swap_arg =
      Arg.(
        value & flag
        & info [ "no-swap" ]
            ~doc:
              "Skip the cross-instance reversal swap — the guaranteed \
               fooling channel.")
    in
    let slack_arg =
      Arg.(
        value & opt int 2
        & info [ "slack" ] ~docv:"N"
            ~doc:
              "Extra rounds granted to a mutant over the honest reference \
               before the budget detects it.")
    in
    Cmd.v
      (Cmd.info "corrupt" ~exits:adversary_exits
         ~doc:
           "Mutate a scheme's advice (bit flips, bursts, truncations, and \
            a cross-instance renumber swap) and classify every mutant: \
            detected, harmless, or fooling (valid outputs, wrong leader).  \
            Exits 1 if any mutant fools the shade.")
      Term.(
        const run $ graph_arg $ task_arg $ flips_arg $ burst_len_arg
        $ bursts_arg $ truncations_arg $ no_swap_arg $ slack_arg)
  in
  let campaign_cmd =
    let run smoke wide out compare domains =
      if smoke && wide then begin
        Printf.eprintf "shades adversary campaign: --smoke and --wide are \
                        mutually exclusive\n";
        exit 124
      end;
      if wide && compare <> None then begin
        Printf.eprintf "shades adversary campaign: --compare gates the \
                        smoke campaign only\n";
        exit 124
      end;
      let scenarios =
        if wide then Campaign.wide () else [ Campaign.smoke () ]
      in
      let failed = ref false in
      let unreadable = ref false in
      List.iter
        (fun scenario ->
          let report = Campaign.run ?domains scenario in
          Printf.printf "campaign %s on %s: %d classified mutants\n"
            report.Campaign.label report.Campaign.graph_label
            (List.length report.Campaign.cells);
          List.iter
            (fun (s : Campaign.shade_summary) ->
              if not s.Campaign.feasible then
                Printf.printf "  %-4s infeasible on this instance\n"
                  (Task.kind_to_string s.Campaign.task)
              else
                Printf.printf
                  "  %-4s ref leader %d (%d round%s, %d bits): %d detected, \
                   %d harmless, %d fooling\n"
                  (Task.kind_to_string s.Campaign.task)
                  s.Campaign.reference_leader s.Campaign.reference_rounds
                  (plural s.Campaign.reference_rounds)
                  s.Campaign.advice_bits s.Campaign.detected
                  s.Campaign.harmless s.Campaign.fooling)
            report.Campaign.summaries;
          (match out with
          | None -> ()
          | Some dir ->
              if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
              let base = Filename.concat dir report.Campaign.label in
              Out_channel.with_open_bin (base ^ ".md") (fun oc ->
                  Out_channel.output_string oc
                    (Campaign.markdown_of_report report));
              Out_channel.with_open_bin (base ^ ".json") (fun oc ->
                  Out_channel.output_string oc
                    (Json.to_string (Campaign.json_of_report report) ^ "\n"));
              Campaign.save ~dir:(base ^ ".store") report;
              Printf.printf "  wrote %s.{md,json,store/}\n" base);
          let outcome, what =
            match compare with
            | Some baseline_dir ->
                (Campaign.gate ~baseline_dir report, "gate")
            | None -> (Campaign.verdict report, "verdict")
          in
          match outcome with
          | Ok () -> Printf.printf "  %s: clean\n" what
          | Error problems ->
              failed := true;
              List.iter
                (fun p ->
                  if String.length p >= 9 && String.sub p 0 9 = "baseline:"
                  then unreadable := true;
                  Printf.eprintf "  %s %s: %s\n" report.Campaign.label what p)
                problems)
        scenarios;
      if !unreadable then exit 2;
      if !failed then begin
        Printf.eprintf "adversary campaign: FAILED\n";
        exit 1
      end
    in
    let smoke_arg =
      Arg.(
        value & flag
        & info [ "smoke" ]
            ~doc:
              "The committed CI campaign (the default): all four shades \
               on path:4 under the default mutation grid.")
    in
    let wide_arg =
      Arg.(
        value & flag
        & info [ "wide" ]
            ~doc:
              "The nightly extension: the same hypothesis over more \
               instances and a denser mutation grid; never gated.")
    in
    let out_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "out" ] ~docv:"DIR"
            ~doc:
              "Write each campaign's markdown report, JSON report, and \
               blessable sharded store under DIR (created if missing) as \
               <label>.md, <label>.json, <label>.store/.")
    in
    let compare_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "compare" ] ~docv:"STOREDIR"
            ~doc:
              "Gate against a blessed campaign store: the verdict must \
               pass and the classifications must match STOREDIR exactly \
               (any drift exits 1).  Smoke campaign only.")
    in
    let domains_arg =
      Arg.(
        value
        & opt (some int) None
        & info [ "domains" ] ~docv:"N"
            ~doc:
              "Worker domains for classifying mutants (default: \
               recommended count minus one).  Results are identical at \
               every domain count.")
    in
    Cmd.v
      (Cmd.info "campaign" ~exits:adversary_exits
         ~doc:
           "Run a hypothesis-driven corruption campaign: honest reference \
            runs per shade, then the whole mutation grid fanned onto the \
            domain pool, classified, tallied, and persisted (markdown + \
            JSON + sharded store).  The verdict demands at least one \
            fooling corruption per feasible shade and zero undetected \
            corruptions; $(b,--compare) additionally pins every \
            classification to a blessed baseline.")
      Term.(
        const run $ smoke_arg $ wide_arg $ out_arg $ compare_arg
        $ domains_arg)
  in
  Cmd.group
    (Cmd.info "adversary" ~exits:adversary_exits
       ~doc:
         "Adversarial campaigns against the election schemes: slow \
          \xce\xb1-synchronizer delay plans, crash-stop fault plans, and \
          advice-corruption campaigns with a gated classification \
          baseline.")
    [ schedule_search_cmd; crash_cmd; corrupt_cmd; campaign_cmd ]

let () =
  let doc =
    "Four shades of deterministic leader election in anonymous networks"
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "shades_cli" ~doc)
          [
            index_cmd; views_cmd; elect_cmd; dot_cmd; quotient_cmd;
            tradeoff_cmd; labelings_cmd; family_g_cmd; family_u_cmd;
            family_j_cmd; sweep_cmd; trace_cmd; lint_cmd; serve_cmd;
            client_cmd; adversary_cmd;
          ]))
