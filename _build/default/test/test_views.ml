(* Tests for view trees and refinement-based view equivalence. *)

open Shades_graph
open Shades_views

let view = Alcotest.testable View_tree.pp View_tree.equal

let three_node_line () = Gen.path_with_ports [ (0, 0); (1, 0) ]

let test_explicit_views () =
  let g = three_node_line () in
  let b0 = View_tree.of_graph g 1 ~depth:0 in
  Alcotest.(check int) "B0 degree" 2 b0.View_tree.degree;
  Alcotest.(check int) "B0 nodes" 1 (View_tree.node_count b0);
  let b1 = View_tree.of_graph g 1 ~depth:1 in
  Alcotest.(check int) "B1 height" 1 (View_tree.height b1);
  Alcotest.(check int) "B1 nodes" 3 (View_tree.node_count b1);
  (* port 0 of the middle node leads to the left leaf, arriving on 0 *)
  let q, sub = b1.View_tree.children.(0) in
  Alcotest.(check int) "arrival port" 0 q;
  Alcotest.(check int) "leaf degree" 1 sub.View_tree.degree

let test_view_includes_backtracking () =
  (* Views are trees of all paths, including non-simple ones: at depth 2
     the left leaf sees the middle node and then both of its neighbours,
     one of which is the leaf itself. *)
  let g = three_node_line () in
  let b2 = View_tree.of_graph g 0 ~depth:2 in
  Alcotest.(check int) "nodes" 4 (View_tree.node_count b2)

let test_truncate () =
  let g = Gen.oriented_ring 5 in
  let b3 = View_tree.of_graph g 0 ~depth:3 in
  Alcotest.check view "truncate = shallow build"
    (View_tree.of_graph g 0 ~depth:1)
    (View_tree.truncate b3 ~depth:1)

let test_compare_order () =
  let g = Gen.path 4 in
  let a = View_tree.of_graph g 0 ~depth:1 in
  let b = View_tree.of_graph g 1 ~depth:1 in
  Alcotest.(check bool) "degree-first order" true (View_tree.compare a b < 0);
  Alcotest.(check int) "self" 0 (View_tree.compare a a)

let test_contains_degree () =
  let g = Gen.star 5 in
  let b1 = View_tree.of_graph g 1 ~depth:1 in
  Alcotest.(check bool) "sees center" true (View_tree.contains_degree b1 4);
  Alcotest.(check bool) "no degree 3" false (View_tree.contains_degree b1 3)

let test_encode_decode () =
  let g = Gen.oriented_ring 5 in
  let b = View_tree.of_graph g 2 ~depth:3 in
  Alcotest.check view "roundtrip" b (View_tree.decode (View_tree.encode b))

let test_ring_symmetric () =
  (* The oriented ring is vertex-transitive: a single class forever. *)
  let g = Gen.oriented_ring 7 in
  let t = Refinement.fixpoint g in
  Alcotest.(check int) "one class" 1
    (Refinement.class_count t ~depth:(Refinement.depth t));
  Alcotest.(check bool) "infeasible" false (Refinement.feasible g)

let test_path_classes () =
  (* Gen.path's convention (port 0 rightwards) breaks the mirror symmetry:
     the two leaves arrive on different far ports, so depth 1 is already
     discrete. *)
  let g = Gen.path 4 in
  let t = Refinement.compute g ~depth:2 in
  Alcotest.(check int) "depth0: leaves vs interior" 2
    (Refinement.class_count t ~depth:0);
  Alcotest.(check int) "depth1 discrete" 4 (Refinement.class_count t ~depth:1);
  Alcotest.(check (list int)) "depth1 singletons" [ 0; 1; 2; 3 ]
    (List.sort Int.compare (Refinement.singletons t ~depth:1));
  Alcotest.(check (option int)) "min unique depth" (Some 1)
    (Refinement.min_unique_depth g);
  Alcotest.(check bool) "feasible" true (Refinement.feasible g)

let test_k2_infeasible () =
  let g = Port_graph.of_edges 2 [ ((0, 0), (1, 0)) ] in
  Alcotest.(check bool) "K2 infeasible" false (Refinement.feasible g);
  Alcotest.(check (option int)) "no unique depth" None
    (Refinement.min_unique_depth g)

let test_mirror_path_infeasible () =
  (* Mirror-symmetric port labeling admits the end-swapping automorphism,
     so no node ever has a unique view. *)
  let g = Gen.path_with_ports [ (0, 0); (1, 1); (0, 0) ] in
  Alcotest.(check bool) "mirror path infeasible" false (Refinement.feasible g);
  (* ... while the sorted-port clique is rigid, hence feasible. *)
  Alcotest.(check bool) "sorted clique feasible" true
    (Refinement.feasible (Gen.clique 4))

let test_cross_graph () =
  (* Oriented rings of any two sizes share the same universal cover (the
     bi-infinite oriented path), so their views agree at EVERY depth:
     this is why no map-less algorithm can distinguish them. *)
  let a = Gen.oriented_ring 5 and b = Gen.oriented_ring 9 in
  Alcotest.(check bool) "rings equal at depth 2" true
    (Refinement.equal_views_cross a 0 b 0 ~depth:2);
  Alcotest.(check bool) "rings equal at depth 7" true
    (Refinement.equal_views_cross a 0 b 0 ~depth:7);
  (* A ring and a path differ as soon as a leaf enters the view. *)
  let p = Gen.path 9 in
  Alcotest.(check bool) "ring vs path centre" false
    (Refinement.equal_views_cross a 0 p 4 ~depth:7)

let test_star_min_depth_zero () =
  Alcotest.(check (option int)) "center unique at depth 0" (Some 0)
    (Refinement.min_unique_depth (Gen.star 5))

let test_quotient () =
  (* Oriented ring: one class, the whole ring is one fiber. *)
  let q = Quotient.of_graph (Gen.oriented_ring 6) in
  Alcotest.(check int) "ring classes" 1 q.Quotient.classes;
  Alcotest.(check int) "ring fiber" 6 q.Quotient.fiber_size;
  Alcotest.(check (array (pair int int)))
    "ring port map loops" [| (0, 1); (0, 0) |] q.Quotient.port_map.(0);
  Alcotest.(check bool) "nontrivial" false (Quotient.is_trivial q);
  (* Mirror path: the end-swapping automorphism gives fibers of 2. *)
  let q = Quotient.of_graph (Gen.path_with_ports [ (0, 0); (1, 1); (0, 0) ]) in
  Alcotest.(check int) "mirror classes" 2 q.Quotient.classes;
  Alcotest.(check int) "mirror fiber" 2 q.Quotient.fiber_size;
  (* Feasible graph: trivial quotient. *)
  let q = Quotient.of_graph (Gen.path 4) in
  Alcotest.(check bool) "path trivial" true (Quotient.is_trivial q);
  Alcotest.(check int) "path classes" 4 q.Quotient.classes

(* Property tests: refinement agrees with explicit view trees. *)

let rand_graph =
  QCheck.make
    ~print:(fun (seed, n, e, d) ->
      Printf.sprintf "seed=%d n=%d extra=%d depth=%d" seed n e d)
    QCheck.Gen.(
      quad (int_bound 10_000) (int_range 2 12) (int_bound 6) (int_range 0 3))

let build (seed, n, extra, _) =
  Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra

let prop_refinement_matches_trees =
  QCheck.Test.make ~name:"refinement classes = explicit view equality"
    ~count:100 rand_graph (fun ((_, n, _, depth) as params) ->
      let g = build params in
      let t = Refinement.compute g ~depth in
      let views =
        Array.init n (fun v -> View_tree.of_graph g v ~depth)
      in
      let ok = ref true in
      for v = 0 to n - 1 do
        for u = 0 to n - 1 do
          let by_tree = View_tree.equal views.(v) views.(u) in
          let by_ref = Refinement.equal_views t ~depth v u in
          if by_tree <> by_ref then ok := false
        done
      done;
      !ok)

let prop_refinement_monotone =
  QCheck.Test.make ~name:"deeper views refine shallower" ~count:100 rand_graph
    (fun ((_, n, _, _) as params) ->
      let g = build params in
      let t = Refinement.fixpoint g in
      let d = Refinement.depth t in
      let ok = ref true in
      for depth = 1 to d do
        for v = 0 to n - 1 do
          for u = 0 to n - 1 do
            if
              Refinement.equal_views t ~depth v u
              && not (Refinement.equal_views t ~depth:(depth - 1) v u)
            then ok := false
          done
        done
      done;
      !ok)

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"view encode/decode roundtrip" ~count:100 rand_graph
    (fun ((_, _, _, depth) as params) ->
      let g = build params in
      let b = View_tree.of_graph g 0 ~depth in
      View_tree.equal b (View_tree.decode (View_tree.encode b)))

let prop_truncate_consistent =
  QCheck.Test.make ~name:"truncate agrees with direct build" ~count:100
    rand_graph (fun ((_, _, _, depth) as params) ->
      let g = build params in
      let deep = View_tree.of_graph g 0 ~depth in
      List.for_all
        (fun d ->
          View_tree.equal
            (View_tree.truncate deep ~depth:d)
            (View_tree.of_graph g 0 ~depth:d))
        (List.init (depth + 1) Fun.id))

let prop_compare_total =
  QCheck.Test.make ~name:"view compare is antisymmetric" ~count:100 rand_graph
    (fun ((_, n, _, depth) as params) ->
      let g = build params in
      let vs = Array.init n (fun v -> View_tree.of_graph g v ~depth) in
      let ok = ref true in
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              if View_tree.compare a b <> -View_tree.compare b a then
                ok := false)
            vs)
        vs;
      !ok)

let prop_quotient_covering =
  (* The graph covers its quotient: classes divide n evenly and the
     quotient port map is consistent with every member. *)
  QCheck.Test.make ~name:"quotient is a well-defined covering" ~count:100
    rand_graph (fun ((_, n, _, _) as params) ->
      let g = build params in
      let q = Quotient.of_graph g in
      q.Quotient.classes * q.Quotient.fiber_size = n
      && List.for_all
           (fun v ->
             let c = q.Quotient.class_of.(v) in
             q.Quotient.degree.(c) = Port_graph.degree g v
             && List.for_all
                  (fun p ->
                    let u, arr = Port_graph.neighbor g v p in
                    q.Quotient.port_map.(c).(p)
                    = (q.Quotient.class_of.(u), arr))
                  (List.init (Port_graph.degree g v) Fun.id))
           (Port_graph.vertices g))

let prop_class_sizes_equal =
  (* Yamashita–Kameda: at the fixpoint all classes of a connected graph
     have the same cardinality. *)
  QCheck.Test.make ~name:"fixpoint classes have equal size" ~count:100
    rand_graph (fun params ->
      let g = build params in
      let t = Refinement.fixpoint g in
      let classes = Refinement.classes t ~depth:(Refinement.depth t) in
      let sizes = Array.map List.length classes in
      Array.for_all (fun s -> s = sizes.(0)) sizes)

let () =
  Alcotest.run "shades_views"
    [
      ( "view_tree",
        [
          Alcotest.test_case "explicit views" `Quick test_explicit_views;
          Alcotest.test_case "backtracking paths" `Quick
            test_view_includes_backtracking;
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "compare" `Quick test_compare_order;
          Alcotest.test_case "contains degree" `Quick test_contains_degree;
          Alcotest.test_case "encode/decode" `Quick test_encode_decode;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "ring symmetric" `Quick test_ring_symmetric;
          Alcotest.test_case "path classes" `Quick test_path_classes;
          Alcotest.test_case "K2 infeasible" `Quick test_k2_infeasible;
          Alcotest.test_case "mirror path infeasible" `Quick
            test_mirror_path_infeasible;
          Alcotest.test_case "cross graph" `Quick test_cross_graph;
          Alcotest.test_case "star depth 0" `Quick test_star_min_depth_zero;
          Alcotest.test_case "quotient" `Quick test_quotient;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_refinement_matches_trees;
            prop_refinement_monotone;
            prop_encode_roundtrip;
            prop_truncate_consistent;
            prop_compare_total;
            prop_quotient_covering;
            prop_class_sizes_equal;
          ] );
    ]
