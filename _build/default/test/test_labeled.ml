(* Tests for the classical labeled-network election baselines. *)

open Shades_graph
open Shades_labeled
open Shades_election

let shuffled n seed =
  let st = Random.State.make [| seed |] in
  let a = Array.init n (fun i -> (i * 7) + 3) in
  for i = n - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(* A strong labeled election is correct when exactly one node outputs
   Leader and every follower announces the same value; for LCR/HS that
   value is the maximum label and the leader owns it. *)
let check_election ?expect_max outputs labels =
  let leaders = ref [] in
  let announcements = ref [] in
  Array.iteri
    (fun v -> function
      | Task.Leader -> leaders := v :: !leaders
      | Task.Follower l -> announcements := l :: !announcements)
    outputs;
  match !leaders with
  | [ leader ] ->
      let same =
        match !announcements with
        | [] -> true
        | l :: rest -> List.for_all (( = ) l) rest
      in
      let max_ok =
        match expect_max with
        | Some true ->
            labels.(leader) = Array.fold_left max min_int labels
            && List.for_all
                 (( = ) labels.(leader))
                 !announcements
        | _ -> true
      in
      same && max_ok
  | _ -> false

let test_duplicate_labels_rejected () =
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Labeled.run: duplicate labels") (fun () ->
      ignore
        (Model.run (Gen.oriented_ring 3) ~labels:[| 1; 1; 2 |]
           (Flood_max.algorithm ~n:3)))

let test_ring_only_guard () =
  Alcotest.check_raises "LCR on star"
    (Invalid_argument "Chang_roberts: ring only") (fun () ->
      ignore
        (Model.run (Gen.star 4) ~labels:[| 4; 1; 2; 3 |]
           Chang_roberts.algorithm))

let prop_ring_algorithms_correct =
  QCheck.Test.make ~name:"LCR/HS/Peterson elect exactly one leader"
    ~count:60
    QCheck.(pair (int_range 3 40) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Gen.oriented_ring n in
      let labels = shuffled n seed in
      let lcr = Model.run g ~labels Chang_roberts.algorithm in
      let hs = Model.run g ~labels Hirschberg_sinclair.algorithm in
      let pet = Model.run g ~labels Peterson.algorithm in
      check_election ~expect_max:true lcr.Model.outputs labels
      && check_election ~expect_max:true hs.Model.outputs labels
      && check_election pet.Model.outputs labels)

let prop_flood_max_correct =
  QCheck.Test.make ~name:"flood-max elects the maximum label on any graph"
    ~count:60
    QCheck.(triple (int_range 2 30) (int_bound 8) (int_bound 10_000))
    (fun (n, extra, seed) ->
      let g = Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra in
      let labels = shuffled n (seed + 1) in
      let r = Model.run g ~labels (Flood_max.algorithm ~n) in
      check_election ~expect_max:true r.Model.outputs labels)

let prop_message_complexity_shapes =
  (* Worst-case LCR is quadratic; HS and Peterson stay O(n log n). *)
  QCheck.Test.make ~name:"message complexity: LCR quadratic, HS/Peterson not"
    ~count:8
    QCheck.(int_range 32 100)
    (fun n ->
      let g = Gen.oriented_ring n in
      let desc = Array.init n (fun i -> n - i) in
      let lcr = Model.run g ~labels:desc Chang_roberts.algorithm in
      let hs = Model.run g ~labels:desc Hirschberg_sinclair.algorithm in
      let pet = Model.run g ~labels:desc Peterson.algorithm in
      let fn = float_of_int n in
      let log2n = log fn /. log 2.0 in
      (* LCR on a descending ring does Θ(n²)/2 token hops *)
      float_of_int lcr.Model.messages >= (fn *. fn /. 2.0) -. (3.0 *. fn)
      && float_of_int hs.Model.messages <= 16.0 *. fn *. (log2n +. 2.0)
      && float_of_int pet.Model.messages <= 16.0 *. fn *. (log2n +. 2.0))

let test_known_counts () =
  (* Pin down exact counts on a small instance so regressions surface. *)
  let g = Gen.oriented_ring 4 in
  let labels = [| 2; 4; 1; 3 |] in
  let lcr = Model.run g ~labels Chang_roberts.algorithm in
  Alcotest.(check bool) "LCR ok" true
    (check_election ~expect_max:true lcr.Model.outputs labels);
  Alcotest.(check int) "LCR messages" 11 lcr.Model.messages;
  let hs = Model.run g ~labels Hirschberg_sinclair.algorithm in
  Alcotest.(check bool) "HS ok" true
    (check_election ~expect_max:true hs.Model.outputs labels)

let () =
  Alcotest.run "shades_labeled"
    [
      ( "model",
        [
          Alcotest.test_case "duplicate labels" `Quick
            test_duplicate_labels_rejected;
          Alcotest.test_case "ring guard" `Quick test_ring_only_guard;
          Alcotest.test_case "known counts" `Quick test_known_counts;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ring_algorithms_correct;
            prop_flood_max_correct;
            prop_message_complexity_shapes;
          ] );
    ]
