(* Tests for the class G_{∆,k} (Section 2.2): structure, Lemmas 2.5-2.8,
   minimum election time, and the Theorem 2.9 fooling mechanism. *)

open Shades_graph
open Shades_views
open Shades_election
open Shades_families

let build delta k i = Gclass.build { Gclass.delta; k } ~i

let test_fact_2_3 () =
  (* |G_{∆,k}| = (∆−1)^{(∆−2)(∆−1)^{k−1}} *)
  let count d k = Gclass.num_graphs { Gclass.delta = d; k } in
  Alcotest.(check (option int)) "3,1" (Some 2) (count 3 1);
  Alcotest.(check (option int)) "3,2" (Some 4) (count 3 2);
  Alcotest.(check (option int)) "4,1" (Some 9) (count 4 1);
  Alcotest.(check (option int)) "4,2" (Some 729) (count 4 2);
  Alcotest.(check (option int)) "5,2" (Some 16777216) (count 5 2);
  (* ∆=6, k=3: (5)^(4·25)=5^100 overflows — the formula still has a log. *)
  Alcotest.(check (option int)) "6,3 overflows" None
    (count 6 3);
  let log2 = Gclass.num_graphs_log2 { Gclass.delta = 6; k = 3 } in
  Alcotest.(check bool) "log2 5^100" true (abs_float (log2 -. 232.19) < 0.1)

let test_structure () =
  let { Gclass.graph = g; cycle; trees; special_root; _ } = build 4 2 3 in
  (* cycle: 4i−1 = 11 nodes of degree 3 with the tree on port 2 *)
  Alcotest.(check int) "cycle length" 11 (Array.length cycle);
  Array.iter
    (fun c -> Alcotest.(check int) "cycle degree" 3 (Port_graph.degree g c))
    cycle;
  (* 11 hanging trees: two copies of T_{j,1} for j<=3, two of T_{j,2}
     for j<3, one T_{3,2} *)
  Alcotest.(check int) "tree count" 11 (List.length trees);
  List.iter
    (fun { Gclass.root; _ } ->
      Alcotest.(check int) "root degree = delta" 4 (Port_graph.degree g root))
    trees;
  Alcotest.(check bool) "special root is a tree root" true
    (List.exists (fun t -> t.Gclass.root = special_root) trees);
  Alcotest.(check bool) "connected" true (Paths.is_connected g);
  Alcotest.(check int) "max degree = delta" 4 (Port_graph.max_degree g)

let test_prop_2_4_roots_equal_below_k () =
  (* All tree roots share the same view at depth k−1 (and hence below). *)
  let { Gclass.graph = g; trees; _ } = build 4 2 2 in
  let t = Refinement.compute g ~depth:1 in
  let roots = List.map (fun m -> m.Gclass.root) trees in
  let c0 = Refinement.class_of t ~depth:1 (List.hd roots) in
  List.iter
    (fun r ->
      Alcotest.(check int) "root class at k-1" c0
        (Refinement.class_of t ~depth:1 r))
    roots

let test_lemma_2_5_cycle_uniform () =
  (* All cycle nodes share one view class at every depth up to k. *)
  let { Gclass.graph = g; cycle; _ } = build 4 2 2 in
  let t = Refinement.compute g ~depth:2 in
  let c0 = Refinement.class_of t ~depth:2 cycle.(0) in
  Array.iter
    (fun c ->
      Alcotest.(check int) "cycle class at k" c0
        (Refinement.class_of t ~depth:2 c))
    cycle

let test_lemma_2_6_unique_view () =
  (* r_{i,2} is the only node with a unique B^k. *)
  List.iter
    (fun (delta, k, i) ->
      let { Gclass.graph = g; special_root; _ } = build delta k i in
      let t = Refinement.compute g ~depth:k in
      Alcotest.(check (list int))
        (Printf.sprintf "singletons at k (delta=%d k=%d i=%d)" delta k i)
        [ special_root ]
        (Refinement.singletons t ~depth:k))
    [ (3, 1, 2); (3, 2, 2); (4, 1, 5); (4, 2, 3); (5, 1, 7) ]

let test_lemma_2_7_selection_index () =
  (* ψ_S(G_i) = k: no unique view at depth k−1, one at depth k. *)
  List.iter
    (fun (delta, k, i) ->
      let { Gclass.graph = g; _ } = build delta k i in
      Alcotest.(check (option int))
        (Printf.sprintf "psi_S (delta=%d k=%d i=%d)" delta k i)
        (Some k)
        (Refinement.min_unique_depth g))
    [ (3, 1, 2); (3, 2, 2); (4, 1, 5); (4, 2, 3); (5, 1, 7) ]

let test_g1_degenerate () =
  (* Reproduction finding: the paper's Lemma 2.6 fails on G_1 — without a
     duplicated variant-2 tree, the appended-path nodes of T_{1,2} see
     the port swap at p_k within k−1 rounds, so ψ_S(G_1) = 1 < k. *)
  List.iter
    (fun (delta, k) ->
      let { Gclass.graph = g; Gclass.special_root; _ } = build delta k 1 in
      Alcotest.(check (option int))
        (Printf.sprintf "psi_S(G_1) (delta=%d k=%d)" delta k)
        (Some 1)
        (Refinement.min_unique_depth g);
      let t = Refinement.compute g ~depth:k in
      let singletons = Refinement.singletons t ~depth:k in
      Alcotest.(check bool) "extra unique views beyond r_{1,2}" true
        (List.length singletons > 1);
      Alcotest.(check bool) "r_{1,2} still unique" true
        (List.mem special_root singletons))
    [ (3, 2); (3, 3); (4, 2) ]

let test_lemma_2_8_cross_graph_roots () =
  (* B^k(r_{j,b}) is the same in G_alpha and G_beta. *)
  let delta = 4 and k = 1 in
  let a = build delta k 2 and b = build delta k 5 in
  let find_root t j bb copy =
    (List.find
       (fun m -> m.Gclass.j = j && m.Gclass.b = bb && m.Gclass.copy = copy)
       t.Gclass.trees)
      .Gclass.root
  in
  List.iter
    (fun (j, bb) ->
      Alcotest.(check bool)
        (Printf.sprintf "T_%d,%d root views match across graphs" j bb)
        true
        (Refinement.equal_views_cross a.Gclass.graph (find_root a j bb 1)
           b.Gclass.graph (find_root b j bb 1) ~depth:k))
    [ (1, 1); (1, 2); (2, 1); (2, 2) ]

let test_thm_2_2_on_g () =
  (* The universal Selection scheme elects r_{i,2} in exactly k rounds. *)
  List.iter
    (fun (delta, k, i) ->
      let { Gclass.graph = g; special_root; _ } = build delta k i in
      let { Scheme.outputs; rounds; advice_bits } =
        Scheme.run Select_by_view.scheme g
      in
      Alcotest.(check (result int string))
        "elects the special root" (Ok special_root)
        (Verify.selection g outputs);
      Alcotest.(check int) "rounds = k" k rounds;
      Alcotest.(check bool) "nonempty advice" true (advice_bits > 0))
    [ (3, 1, 2); (3, 2, 2); (4, 1, 4); (4, 2, 2) ]

let test_thm_2_9_fooling () =
  (* Same advice on G_alpha and G_beta (alpha < beta): because G_beta
     contains two copies of T_{alpha,2}, both of their roots match the
     advice view and Selection fails with two leaders. *)
  List.iter
    (fun (delta, k, alpha, beta) ->
      let a = build delta k alpha and b = build delta k beta in
      let advice = Select_by_view.scheme.Scheme.oracle a.Gclass.graph in
      let honest =
        Scheme.run_with_advice Select_by_view.scheme a.Gclass.graph ~advice
      in
      Alcotest.(check bool) "honest run elects" true
        (Result.is_ok (Verify.selection a.Gclass.graph honest.Scheme.outputs));
      let fooled =
        Scheme.run_with_advice Select_by_view.scheme b.Gclass.graph ~advice
      in
      Alcotest.(check (result int string))
        (Printf.sprintf "fooled (delta=%d k=%d %d->%d)" delta k alpha beta)
        (Error "2 nodes output leader")
        (Verify.selection b.Gclass.graph fooled.Scheme.outputs))
    [ (3, 2, 2, 3); (3, 2, 2, 4); (4, 1, 2, 7); (4, 2, 2, 3) ]

let test_advice_growth_shape () =
  (* Theorem 2.2 vs 2.9: the per-graph advice length grows roughly like
     (∆−1)^k log ∆ — doubling k roughly squares the dominant factor. *)
  let bits delta k =
    let { Gclass.graph = g; _ } = build delta k 2 in
    Select_by_view.advice_bits g
  in
  let b1 = bits 4 1 and b2 = bits 4 2 in
  Alcotest.(check bool) "monotone in k" true (b2 > b1);
  let b5 = bits 5 1 in
  Alcotest.(check bool) "monotone in delta" true (b5 > b1)

let test_sequence_of_index () =
  (* The tree enumeration is the lexicographic bijection the paper
     assumes: index 1 is all-ones, the last index is all-(∆−1), and
     consecutive indexes are lexicographically increasing. *)
  let delta = 4 and k = 1 in
  let count = Option.get (Gclass.num_graphs { Gclass.delta; k }) in
  let seqs =
    List.init count (fun i ->
        Array.to_list (Blocks.sequence_of_index ~delta ~k (i + 1)))
  in
  Alcotest.(check (list int)) "first" [ 1; 1 ] (List.hd seqs);
  Alcotest.(check (list int)) "last" [ 3; 3 ] (List.nth seqs (count - 1));
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly increasing" true (increasing seqs);
  Alcotest.check_raises "index 0 rejected"
    (Invalid_argument "Blocks.sequence_of_index") (fun () ->
      ignore (Blocks.sequence_of_index ~delta ~k 0))

(* Property: the lemma-level guarantees hold across randomly sampled
   class members (i >= 2), not just the hand-picked ones. *)
let prop_random_members =
  QCheck.Test.make ~name:"random G_i members: psi_S = k, unique r_{i,2}"
    ~count:25
    QCheck.(
      make
        ~print:(fun (d, k, x) -> Printf.sprintf "delta=%d k=%d x=%d" d k x)
        Gen.(triple (int_range 3 4) (int_range 1 2) (int_bound 1000)))
    (fun (delta, k, x) ->
      let params = { Gclass.delta; k } in
      let count = Option.get (Gclass.num_graphs params) in
      QCheck.assume (count > 2);
      let i = 2 + (x mod (count - 1)) in
      let t = Gclass.build params ~i in
      let refinement = Refinement.compute t.Gclass.graph ~depth:k in
      Refinement.min_unique_depth t.Gclass.graph = Some k
      && Refinement.singletons refinement ~depth:k = [ t.Gclass.special_root ])

let () =
  Alcotest.run "shades_families_g"
    [
      ( "construction",
        [
          Alcotest.test_case "Fact 2.3 class size" `Quick test_fact_2_3;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "tree enumeration order" `Quick
            test_sequence_of_index;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "Prop 2.4 roots equal below k" `Quick
            test_prop_2_4_roots_equal_below_k;
          Alcotest.test_case "Lemma 2.5 cycle uniform" `Quick
            test_lemma_2_5_cycle_uniform;
          Alcotest.test_case "Lemma 2.6 unique view" `Quick
            test_lemma_2_6_unique_view;
          Alcotest.test_case "Lemma 2.7 psi_S = k" `Quick
            test_lemma_2_7_selection_index;
          Alcotest.test_case "Lemma 2.8 cross-graph roots" `Quick
            test_lemma_2_8_cross_graph_roots;
          Alcotest.test_case "finding: G_1 degenerate" `Quick
            test_g1_degenerate;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "Thm 2.2 scheme on G_i" `Quick test_thm_2_2_on_g;
          Alcotest.test_case "Thm 2.9 fooling" `Quick test_thm_2_9_fooling;
          Alcotest.test_case "advice growth shape" `Quick
            test_advice_growth_shape;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_random_members ]);
    ]
