(* Tests for the bit-level advice substrate. *)

open Shades_bits

let bitstring_testable =
  Alcotest.testable Bitstring.pp Bitstring.equal

let check_bits = Alcotest.check bitstring_testable

let test_empty () =
  Alcotest.(check int) "empty length" 0 (Bitstring.length Bitstring.empty);
  check_bits "empty of_string" Bitstring.empty (Bitstring.of_string "")

let test_of_to_string () =
  let s = "0110100111000101" in
  Alcotest.(check string) "round trip" s
    Bitstring.(to_string (of_string s));
  Alcotest.check Alcotest.bool "bit 1" true
    (Bitstring.get (Bitstring.of_string s) 1);
  Alcotest.check Alcotest.bool "bit 0" false
    (Bitstring.get (Bitstring.of_string s) 0)

let test_append () =
  check_bits "append"
    (Bitstring.of_string "01101")
    (Bitstring.append (Bitstring.of_string "011") (Bitstring.of_string "01"));
  check_bits "append empty right"
    (Bitstring.of_string "011")
    (Bitstring.append (Bitstring.of_string "011") Bitstring.empty);
  check_bits "concat"
    (Bitstring.of_string "101001")
    (Bitstring.concat
       [ Bitstring.of_string "10"; Bitstring.of_string "100";
         Bitstring.of_string "1" ])

let test_sub () =
  let b = Bitstring.of_string "011010011" in
  check_bits "sub middle" (Bitstring.of_string "1101") (Bitstring.sub b 1 4);
  check_bits "sub all" b (Bitstring.sub b 0 9);
  check_bits "sub empty" Bitstring.empty (Bitstring.sub b 4 0);
  Alcotest.check_raises "sub out of range"
    (Invalid_argument "Bitstring.sub") (fun () ->
      ignore (Bitstring.sub b 5 5))

let test_compare () =
  let b s = Bitstring.of_string s in
  Alcotest.(check bool) "prefix smaller" true
    (Bitstring.compare (b "01") (b "011") < 0);
  Alcotest.(check bool) "lex" true (Bitstring.compare (b "001") (b "010") < 0);
  Alcotest.(check int) "equal" 0 (Bitstring.compare (b "0101") (b "0101"))

let test_writer_fixed () =
  let w = Writer.create () in
  Writer.fixed w ~width:5 11;
  check_bits "fixed 11/5" (Bitstring.of_string "01011") (Writer.contents w);
  Alcotest.(check int) "length" 5 (Writer.length w);
  Alcotest.check_raises "too big"
    (Invalid_argument "Writer.fixed: value does not fit") (fun () ->
      Writer.fixed w ~width:3 8)

let test_writer_unary_gamma () =
  let w = Writer.create () in
  Writer.unary w 3;
  check_bits "unary 3" (Bitstring.of_string "1110") (Writer.contents w);
  let w = Writer.create () in
  Writer.gamma w 0;
  check_bits "gamma 0" (Bitstring.of_string "0") (Writer.contents w)

let test_reader_roundtrip () =
  let w = Writer.create () in
  Writer.gamma w 41;
  Writer.fixed w ~width:7 99;
  Writer.unary w 5;
  Writer.bit w true;
  let r = Reader.of_bitstring (Writer.contents w) in
  Alcotest.(check int) "gamma" 41 (Reader.gamma r);
  Alcotest.(check int) "fixed" 99 (Reader.fixed r ~width:7);
  Alcotest.(check int) "unary" 5 (Reader.unary r);
  Alcotest.(check bool) "bit" true (Reader.bit r);
  Alcotest.(check bool) "at end" true (Reader.at_end r)

let test_reader_out_of_bits () =
  let r = Reader.of_bitstring (Bitstring.of_string "1") in
  Alcotest.check_raises "unary runs out" Reader.Out_of_bits (fun () ->
      ignore (Reader.unary r))

(* Property tests *)

let gen_bools = QCheck.(small_list bool)

let prop_bools_roundtrip =
  QCheck.Test.make ~name:"of_bools/to_bools roundtrip" ~count:500 gen_bools
    (fun l -> Bitstring.to_bools (Bitstring.of_bools l) = l)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"of_string/to_string roundtrip" ~count:500
    QCheck.(string_gen_of_size Gen.small_nat (Gen.oneofl [ '0'; '1' ]))
    (fun s -> Bitstring.(to_string (of_string s)) = s)

let prop_append_length =
  QCheck.Test.make ~name:"append adds lengths" ~count:300
    QCheck.(pair gen_bools gen_bools) (fun (a, b) ->
      Bitstring.(
        length (append (of_bools a) (of_bools b)))
      = List.length a + List.length b)

let prop_gamma_roundtrip =
  QCheck.Test.make ~name:"gamma roundtrip" ~count:1000
    QCheck.(int_bound 1_000_000) (fun v ->
      let w = Writer.create () in
      Writer.gamma w v;
      let r = Reader.of_bitstring (Writer.contents w) in
      Reader.gamma r = v && Reader.at_end r)

let prop_fixed_roundtrip =
  QCheck.Test.make ~name:"fixed roundtrip" ~count:1000
    QCheck.(pair (int_bound 30) (int_bound 1_000_000)) (fun (extra, v) ->
      (* width large enough for v plus some slack *)
      let rec bits n = if n = 0 then 0 else 1 + bits (n lsr 1) in
      let width = max 1 (bits v) + (extra mod 5) in
      let w = Writer.create () in
      Writer.fixed w ~width v;
      let r = Reader.of_bitstring (Writer.contents w) in
      Reader.fixed r ~width = v)

let prop_compare_total_order =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    QCheck.(pair gen_bools gen_bools) (fun (a, b) ->
      let x = Bitstring.of_bools a and y = Bitstring.of_bools b in
      Bitstring.compare x y = -Bitstring.compare y x
      && (Bitstring.compare x y <> 0 || Bitstring.equal x y))

let prop_sub_append =
  QCheck.Test.make ~name:"sub recomposes append" ~count:500
    QCheck.(pair gen_bools gen_bools) (fun (a, b) ->
      let x = Bitstring.of_bools a and y = Bitstring.of_bools b in
      let z = Bitstring.append x y in
      Bitstring.equal (Bitstring.sub z 0 (Bitstring.length x)) x
      && Bitstring.equal
           (Bitstring.sub z (Bitstring.length x) (Bitstring.length y))
           y)

let () =
  Alcotest.run "shades_bits"
    [
      ( "bitstring",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "of/to string" `Quick test_of_to_string;
          Alcotest.test_case "append/concat" `Quick test_append;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "compare" `Quick test_compare;
        ] );
      ( "writer-reader",
        [
          Alcotest.test_case "fixed" `Quick test_writer_fixed;
          Alcotest.test_case "unary/gamma" `Quick test_writer_unary_gamma;
          Alcotest.test_case "roundtrip" `Quick test_reader_roundtrip;
          Alcotest.test_case "out of bits" `Quick test_reader_out_of_bits;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_bools_roundtrip;
            prop_string_roundtrip;
            prop_append_length;
            prop_gamma_roundtrip;
            prop_fixed_roundtrip;
            prop_compare_total_order;
            prop_sub_append;
          ] );
    ]
