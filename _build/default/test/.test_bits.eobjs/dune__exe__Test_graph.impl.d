test/test_graph.ml: Alcotest Array Fun Gen Iso List Option Paths Port_graph Printf QCheck QCheck_alcotest Random Shades_graph String
