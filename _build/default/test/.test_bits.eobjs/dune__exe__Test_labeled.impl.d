test/test_labeled.ml: Alcotest Array Chang_roberts Flood_max Gen Hirschberg_sinclair List Model Peterson QCheck QCheck_alcotest Random Shades_election Shades_graph Shades_labeled Task
