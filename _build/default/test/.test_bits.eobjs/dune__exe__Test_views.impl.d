test/test_views.ml: Alcotest Array Fun Gen Int List Port_graph Printf QCheck QCheck_alcotest Quotient Random Refinement Shades_graph Shades_views View_tree
