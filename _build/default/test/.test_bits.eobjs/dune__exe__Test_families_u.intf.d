test/test_families_u.mli:
