test/test_localsim.mli:
