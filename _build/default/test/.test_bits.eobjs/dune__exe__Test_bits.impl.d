test/test_bits.ml: Alcotest Bitstring Gen List QCheck QCheck_alcotest Reader Shades_bits Writer
