test/test_labeled.mli:
