test/test_localsim.ml: Alcotest Array Async_engine Engine Full_info Gen List Port_graph Printf QCheck QCheck_alcotest Random Shades_bits Shades_graph Shades_localsim Shades_views View_tree
