test/test_families_j.mli:
