test/test_families_g.mli:
