(* Tests for tasks, verifiers, election indexes and advice schemes. *)

open Shades_graph
open Shades_election

let result_t = Alcotest.(result int string)

let three_node_line () = Gen.path_with_ports [ (0, 0); (1, 0) ]

(* --- verifiers --- *)

let test_verify_selection () =
  let g = three_node_line () in
  Alcotest.check result_t "ok" (Ok 1)
    (Verify.selection g
       Task.[| Follower (); Leader; Follower () |]);
  Alcotest.check result_t "no leader"
    (Error "no node output leader")
    (Verify.selection g Task.[| Follower (); Follower (); Follower () |]);
  Alcotest.check result_t "two leaders" (Error "2 nodes output leader")
    (Verify.selection g Task.[| Leader; Leader; Follower () |])

let test_verify_port_election () =
  let g = three_node_line () in
  Alcotest.check result_t "ok towards middle" (Ok 1)
    (Verify.port_election g Task.[| Follower 0; Leader; Follower 0 |]);
  (* Middle's port 0 leads to v0; with v0 as leader that is fine, but
     port 1 points away, and removing the middle disconnects the line. *)
  Alcotest.check result_t "middle towards leader ok" (Ok 0)
    (Verify.port_election g Task.[| Leader; Follower 0; Follower 0 |]);
  (match
     Verify.port_election g Task.[| Leader; Follower 1; Follower 0 |]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "middle pointing away from leader must fail");
  (* On a ring, both directions reach the leader. *)
  let ring = Gen.oriented_ring 4 in
  Alcotest.check result_t "ring any direction" (Ok 0)
    (Verify.port_election ring
       Task.[| Leader; Follower 0; Follower 1; Follower 0 |])

let test_verify_ppe () =
  let g = Gen.path 4 in
  Alcotest.check result_t "routes to 0" (Ok 0)
    (Verify.port_path_election g
       Task.[| Leader; Follower [ 1 ]; Follower [ 1; 1 ]; Follower [ 0; 1; 1 ] |]);
  (match
     Verify.port_path_election g
       Task.[| Leader; Follower [ 1 ]; Follower [ 1; 1 ]; Follower [ 0; 0 ] |]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "dangling route must fail");
  (match
     Verify.port_path_election g
       Task.[| Leader; Follower []; Follower [ 1; 1 ]; Follower [ 0; 1; 1 ] |]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty route must fail");
  (* Non-simple walk: 1 -> 2 -> 1 -> 0 revisits node 1. *)
  match
    Verify.port_path_election g
      Task.[| Leader; Follower [ 0; 1; 1 ]; Follower [ 1; 1 ]; Follower [ 0; 1; 1 ] |]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-simple route must fail"

let test_verify_cppe () =
  let g = three_node_line () in
  Alcotest.check result_t "ok" (Ok 1)
    (Verify.complete_port_path_election g
       Task.[| Follower [ (0, 0) ]; Leader; Follower [ (0, 1) ] |]);
  match
    Verify.complete_port_path_election g
      Task.[| Follower [ (0, 1) ]; Leader; Follower [ (0, 1) ] |]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong arrival port must fail"

(* --- election indexes on named graphs --- *)

let opt_int = Alcotest.(option int)

let test_index_three_node_line () =
  (* The paper's example: ψ_S = 0 (unique degree) and ψ_CPPE = 1 (the
     two leaves must learn their distinct arrival ports). *)
  let g = three_node_line () in
  Alcotest.check opt_int "psi_s" (Some 0) (Index.psi_s g);
  Alcotest.check opt_int "psi_pe" (Some 0) (Index.psi_pe g);
  Alcotest.check opt_int "psi_ppe" (Some 0) (Index.psi_ppe g);
  Alcotest.check opt_int "psi_cppe" (Some 1) (Index.psi_cppe g)

let test_index_star () =
  (* Star: unique-degree center elects at time 0; CPPE needs one round
     for each leaf to learn which center port it hangs from. *)
  let g = Gen.star 5 in
  Alcotest.check opt_int "psi_s" (Some 0) (Index.psi_s g);
  Alcotest.check opt_int "psi_pe" (Some 0) (Index.psi_pe g);
  Alcotest.check opt_int "psi_ppe" (Some 0) (Index.psi_ppe g);
  Alcotest.check opt_int "psi_cppe" (Some 1) (Index.psi_cppe g)

let test_index_ring_infeasible () =
  let g = Gen.oriented_ring 6 in
  List.iter
    (fun (kind, v) ->
      Alcotest.check opt_int (Task.kind_to_string kind) None v)
    (Index.all g)

let test_index_single_node () =
  let g = Port_graph.Builder.finish (Port_graph.Builder.create 1) in
  List.iter
    (fun (kind, v) ->
      Alcotest.check opt_int (Task.kind_to_string kind) (Some 0) v)
    (Index.all g)

let test_solve_rejects_small_depth () =
  let g = three_node_line () in
  Alcotest.(check bool) "cppe not 0-solvable" true
    (Index.solve_cppe g ~depth:0 = None);
  Alcotest.(check bool) "cppe 1-solvable" true
    (Index.solve_cppe g ~depth:1 <> None)

(* --- schemes through the simulator --- *)

let test_select_by_view_line () =
  let g = three_node_line () in
  let { Scheme.outputs; rounds; advice_bits } =
    Scheme.run Select_by_view.scheme g
  in
  Alcotest.check result_t "elects" (Ok 1) (Verify.selection g outputs);
  Alcotest.(check int) "rounds = psi_s" 0 rounds;
  Alcotest.(check bool) "some advice" true (advice_bits > 0)

let test_map_advice_line () =
  let g = three_node_line () in
  let { Scheme.outputs; rounds; _ } =
    Scheme.run Map_advice.complete_port_path_election g
  in
  (* At depth 1 every class is a singleton, so any node may be elected;
     the deterministic solver picks the lowest-index one. *)
  Alcotest.(check bool) "elects" true
    (Result.is_ok (Verify.complete_port_path_election g outputs));
  Alcotest.(check int) "rounds = psi_cppe" 1 rounds

(* --- properties on random graphs --- *)

let rand_graph =
  QCheck.make
    ~print:(fun (seed, n, e) -> Printf.sprintf "seed=%d n=%d extra=%d" seed n e)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 2 7) (int_bound 6))

let build (seed, n, extra) =
  Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra

let prop_hierarchy =
  (* Fact 1.1: ψ_CPPE >= ψ_PPE >= ψ_PE >= ψ_S. *)
  QCheck.Test.make ~name:"Fact 1.1 index hierarchy" ~count:200 rand_graph
    (fun params ->
      let g = build params in
      match Index.all g with
      | [ (Task.S, s); (Task.PE, pe); (Task.PPE, ppe); (Task.CPPE, cppe) ]
        -> (
          match (s, pe, ppe, cppe) with
          | Some s, Some pe, Some ppe, Some cppe ->
              cppe >= ppe && ppe >= pe && pe >= s
          | None, None, None, None -> true
          | _ -> false (* feasibility is task-independent *))
      | _ -> false)

let prop_solutions_verify =
  QCheck.Test.make ~name:"solve_* answers satisfy the verifiers" ~count:100
    rand_graph (fun params ->
      let g = build params in
      match Index.psi_s g with
      | None -> QCheck.assume_fail ()
      | Some _ ->
          let ok_s =
            match Index.psi_s g with
            | Some k ->
                Result.is_ok
                  (Verify.selection g
                     (Option.get (Index.solve_s g ~depth:k)))
            | None -> false
          in
          let ok_pe =
            match Index.psi_pe g with
            | Some k ->
                Result.is_ok
                  (Verify.port_election g
                     (Option.get (Index.solve_pe g ~depth:k)))
            | None -> false
          in
          let ok_ppe =
            match Index.psi_ppe g with
            | Some k ->
                Result.is_ok
                  (Verify.port_path_election g
                     (Option.get (Index.solve_ppe g ~depth:k)))
            | None -> false
          in
          let ok_cppe =
            match Index.psi_cppe g with
            | Some k ->
                Result.is_ok
                  (Verify.complete_port_path_election g
                     (Option.get (Index.solve_cppe g ~depth:k)))
            | None -> false
          in
          ok_s && ok_pe && ok_ppe && ok_cppe)

let prop_select_by_view =
  QCheck.Test.make ~name:"Thm 2.2 scheme: correct, minimum time" ~count:100
    rand_graph (fun params ->
      let g = build params in
      match Index.psi_s g with
      | None -> QCheck.assume_fail ()
      | Some k ->
          let { Scheme.outputs; rounds; _ } =
            Scheme.run Select_by_view.scheme g
          in
          Result.is_ok (Verify.selection g outputs) && rounds = k)

let prop_map_advice_all =
  QCheck.Test.make ~name:"map-advice schemes: correct, minimum time"
    ~count:50 rand_graph (fun params ->
      let g = build params in
      match Index.psi_s g with
      | None -> QCheck.assume_fail ()
      | Some _ ->
          let ok_s =
            let r = Scheme.run Map_advice.selection g in
            Result.is_ok (Verify.selection g r.Scheme.outputs)
            && Some r.Scheme.rounds = Index.psi_s g
          in
          let ok_pe =
            let r = Scheme.run Map_advice.port_election g in
            Result.is_ok (Verify.port_election g r.Scheme.outputs)
            && Some r.Scheme.rounds = Index.psi_pe g
          in
          let ok_ppe =
            let r = Scheme.run Map_advice.port_path_election g in
            Result.is_ok (Verify.port_path_election g r.Scheme.outputs)
            && Some r.Scheme.rounds = Index.psi_ppe g
          in
          let ok_cppe =
            let r = Scheme.run Map_advice.complete_port_path_election g in
            Result.is_ok
              (Verify.complete_port_path_election g r.Scheme.outputs)
            && Some r.Scheme.rounds = Index.psi_cppe g
          in
          ok_s && ok_pe && ok_ppe && ok_cppe)

let prop_selection_advice_poly =
  (* Theorem 2.2's bound: advice <= c * ∆^ψ_S * log ∆ bits for a
     generous constant (our gamma code is within a small factor). *)
  QCheck.Test.make ~name:"selection advice is O(Delta^psi log Delta)"
    ~count:100 rand_graph (fun params ->
      let g = build params in
      match Index.psi_s g with
      | None -> QCheck.assume_fail ()
      | Some k ->
          let delta = max 2 (Port_graph.max_degree g) in
          let rec pow b e = if e = 0 then 1.0 else float_of_int b *. pow b (e - 1) in
          let bound =
            32.0 *. pow delta (k + 1) *. (1.0 +. log (float_of_int delta))
          in
          float_of_int (Select_by_view.advice_bits g) <= bound)

let prop_solvability_monotone =
  (* More time never hurts: a task solvable in k rounds is solvable in
     k+1 (classes only shrink, so per-class constraints only weaken). *)
  QCheck.Test.make ~name:"solvability is monotone in depth" ~count:60
    rand_graph (fun params ->
      let g = build params in
      let mono psi solve =
        match psi g with
        | None -> true
        | Some k -> Option.is_some (solve g ~depth:(k + 1))
      in
      mono Index.psi_s (fun g ~depth -> Index.solve_s g ~depth)
      && mono Index.psi_pe (fun g ~depth -> Index.solve_pe g ~depth)
      && mono Index.psi_ppe (fun g ~depth -> Index.solve_ppe g ~depth)
      && mono Index.psi_cppe (fun g ~depth -> Index.solve_cppe g ~depth))

(* --- verifier robustness: guaranteed-invalid corruptions rejected --- *)

let prop_verifiers_reject_corruptions =
  QCheck.Test.make ~name:"verifiers reject corrupted outputs" ~count:100
    rand_graph (fun params ->
      let g = build params in
      match Index.psi_cppe g with
      | None -> QCheck.assume_fail ()
      | Some k ->
          let answers = Option.get (Index.solve_cppe g ~depth:k) in
          let leader =
            match Verify.complete_port_path_election g answers with
            | Ok l -> l
            | Error _ -> -1
          in
          QCheck.assume (leader >= 0);
          let n = Port_graph.order g in
          QCheck.assume (n >= 2);
          let some_follower =
            List.find (fun v -> v <> leader) (Port_graph.vertices g)
          in
          (* 1: a second leader *)
          let two = Array.copy answers in
          two.(some_follower) <- Task.Leader;
          (* 2: no leader *)
          let zero = Array.copy answers in
          zero.(leader) <- Task.Follower [];
          (* 3: empty route for a non-leader *)
          let empty = Array.copy answers in
          empty.(some_follower) <- Task.Follower [];
          (* 4: out-of-range port *)
          let bad_port = Array.copy answers in
          bad_port.(some_follower) <- Task.Follower [ (99, 0) ];
          (* 5: broken arrival port on the first hop *)
          let bad_arrival = Array.copy answers in
          (match answers.(some_follower) with
          | Task.Follower ((p, q) :: rest) ->
              bad_arrival.(some_follower) <-
                Task.Follower ((p, q + 1) :: rest)
          | _ -> ());
          List.for_all
            (fun mutated ->
              Result.is_error (Verify.complete_port_path_election g mutated))
            [ two; zero; empty; bad_port; bad_arrival ])

let prop_pe_rejects_disconnecting_port =
  (* On a path, an interior node pointing away from the leader must be
     rejected: removing it disconnects the graph. *)
  QCheck.Test.make ~name:"PE rejects ports pointing away on a path"
    ~count:50
    QCheck.(int_range 4 10)
    (fun n ->
      let g = Gen.path n in
      (* leader = node 0; node 1 points right (port 0), away from 0 *)
      let answers =
        Array.init n (fun v ->
            if v = 0 then Task.Leader
            else if v = 1 then Task.Follower 0
            else Task.Follower (if v = n - 1 then 0 else 1))
      in
      Result.is_error (Verify.port_election g answers))

let prop_broadcast_after_selection =
  (* Section 1: Selection suffices for leader broadcast — the flood
     reaches everyone in exactly the leader's eccentricity. *)
  QCheck.Test.make ~name:"broadcast after selection reaches everyone"
    ~count:60 rand_graph (fun params ->
      let g = build params in
      match Index.psi_s g with
      | None -> QCheck.assume_fail ()
      | Some _ ->
          let r = Scheme.run Select_by_view.scheme g in
          let leader =
            match Verify.selection g r.Scheme.outputs with
            | Ok l -> l
            | Error _ -> -1
          in
          let b =
            Broadcast.run g ~selection:r.Scheme.outputs ~payload:42
          in
          let ecc =
            Array.fold_left max 0 (Paths.bfs_distances g leader)
          in
          Array.for_all Fun.id b.Broadcast.received
          && b.Broadcast.rounds = ecc)

(* --- exact minimum advice (Min_advice) --- *)

let test_min_advice_g_classes () =
  (* Tightness of Theorem 2.9: every member of G_{delta,k} needs its own
     advice string. *)
  List.iter
    (fun (delta, k) ->
      let p = { Shades_families.Gclass.delta; k } in
      let count = Option.get (Shades_families.Gclass.num_graphs p) in
      let graphs =
        List.init count (fun i ->
            (Shades_families.Gclass.build p ~i:(i + 1))
              .Shades_families.Gclass.graph)
      in
      Alcotest.(check int)
        (Printf.sprintf "min strings G(%d,%d)" delta k)
        count
        (Min_advice.min_advice_strings ~depth:k graphs))
    [ (3, 1); (3, 2) ]

let test_min_advice_sharable_control () =
  (* Distinguishing views with disjoint supports can share one string. *)
  Alcotest.(check bool) "star+path share" true
    (Min_advice.sharable ~depth:0 [ Gen.star 4; Gen.path 3 ]);
  (* ... but two copies of the same graph trivially share too. *)
  Alcotest.(check bool) "identical graphs share" true
    (Min_advice.sharable ~depth:1 [ Gen.path 4; Gen.path 4 ]);
  Alcotest.(check int) "two distinct families need 1 string" 1
    (Min_advice.min_advice_strings ~depth:0 [ Gen.star 4; Gen.path 3 ])

let test_min_advice_bits () =
  Alcotest.(check (list int)) "bits_for" [ 0; 1; 1; 2; 2; 3 ]
    (List.map Min_advice.bits_for [ 1; 2; 3; 4; 7; 9 ])

let test_pe_sharable () =
  (* Thm 3.11 pairwise: different sigma on U-class members conflicts. *)
  let p = { Shades_families.Uclass.delta = 4; k = 1 } in
  let graph sigma =
    (Shades_families.Uclass.build p ~sigma).Shades_families.Uclass.graph
  in
  let sa = Shades_families.Uclass.uniform_sigma p 1 in
  let sb = Shades_families.Uclass.uniform_sigma p 1 in
  sb.(3) <- 3;
  Alcotest.(check bool) "different sigma unsharable" false
    (Min_advice.pe_sharable ~depth:1 (graph sa) (graph sb));
  Alcotest.(check bool) "same sigma sharable" true
    (Min_advice.pe_sharable ~depth:1 (graph sa)
       (graph (Shades_families.Uclass.uniform_sigma p 1)));
  Alcotest.(check bool) "small controls sharable" true
    (Min_advice.pe_sharable ~depth:0 (Gen.star 4) (Gen.path 3))

let () =
  Alcotest.run "shades_election"
    [
      ( "verify",
        [
          Alcotest.test_case "selection" `Quick test_verify_selection;
          Alcotest.test_case "port election" `Quick test_verify_port_election;
          Alcotest.test_case "port path election" `Quick test_verify_ppe;
          Alcotest.test_case "complete port path" `Quick test_verify_cppe;
        ] );
      ( "index",
        [
          Alcotest.test_case "3-node line (paper ex.)" `Quick
            test_index_three_node_line;
          Alcotest.test_case "star" `Quick test_index_star;
          Alcotest.test_case "ring infeasible" `Quick test_index_ring_infeasible;
          Alcotest.test_case "single node" `Quick test_index_single_node;
          Alcotest.test_case "depth gating" `Quick test_solve_rejects_small_depth;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "select-by-view on line" `Quick
            test_select_by_view_line;
          Alcotest.test_case "map advice on line" `Quick test_map_advice_line;
        ] );
      ( "min_advice",
        [
          Alcotest.test_case "tight on G classes" `Quick
            test_min_advice_g_classes;
          Alcotest.test_case "sharable controls" `Quick
            test_min_advice_sharable_control;
          Alcotest.test_case "bits_for" `Quick test_min_advice_bits;
          Alcotest.test_case "PE sharability" `Quick test_pe_sharable;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_hierarchy;
            prop_solutions_verify;
            prop_select_by_view;
            prop_map_advice_all;
            prop_selection_advice_poly;
            prop_verifiers_reject_corruptions;
            prop_pe_rejects_disconnecting_port;
            prop_solvability_monotone;
            prop_broadcast_after_selection;
          ] );
    ]
