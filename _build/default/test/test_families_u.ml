(* Tests for the class U_{∆,k} (Section 3): structure, Propositions
   3.2/3.3/3.5, Lemmas 3.6-3.9, and the Theorem 3.11 fooling mechanism. *)

open Shades_graph
open Shades_views
open Shades_election
open Shades_families

let params = { Uclass.delta = 4; k = 1 }

let build_uniform s = Uclass.build params ~sigma:(Uclass.uniform_sigma params s)

let test_fact_3_1 () =
  Alcotest.(check (option int)) "y(4,1)" (Some 9) (Uclass.num_trees params);
  Alcotest.(check (option int)) "y(5,1)" (Some 64)
    (Uclass.num_trees { Uclass.delta = 5; k = 1 });
  Alcotest.(check (option int)) "y(4,2)" (Some 729)
    (Uclass.num_trees { Uclass.delta = 4; k = 2 });
  (* |U_{4,1}| = 3^9, so log2 = 9 log2 3 = 14.26. *)
  let log2 = Uclass.num_graphs_log2 params in
  Alcotest.(check bool) "log2 3^9" true (abs_float (log2 -. 14.265) < 0.01)

let test_structure () =
  let t = build_uniform 1 in
  let g = t.Uclass.graph in
  let delta = params.Uclass.delta in
  Alcotest.(check bool) "connected" true (Paths.is_connected g);
  Alcotest.(check int) "max degree 2∆−1" ((2 * delta) - 1)
    (Port_graph.max_degree g);
  Array.iter
    (fun pair ->
      Array.iter
        (fun r ->
          Alcotest.(check int) "cycle root degree ∆+2" (delta + 2)
            (Port_graph.degree g r))
        pair)
    t.Uclass.cycle_roots;
  Array.iter
    (fun pair ->
      Array.iter
        (fun h ->
          Alcotest.(check int) "heavy degree 2∆−1" ((2 * delta) - 1)
            (Port_graph.degree g h))
        pair)
    t.Uclass.heavy;
  (* Only the 2y cycle roots have degree ∆+2 and only the 2y heavy nodes
     have degree 2∆−1. *)
  let count d =
    List.length
      (List.filter (fun v -> Port_graph.degree g v = d) (Port_graph.vertices g))
  in
  let y = Option.get (Uclass.num_trees params) in
  Alcotest.(check int) "medium count" (2 * y) (count (delta + 2));
  Alcotest.(check int) "heavy count" (2 * y) (count ((2 * delta) - 1))

let test_sigma_changes_graph () =
  let a = build_uniform 1 and b = build_uniform 2 in
  Alcotest.(check bool) "different sigma, different graph" false
    (Port_graph.equal a.Uclass.graph b.Uclass.graph);
  Alcotest.(check int) "same order" (Port_graph.order a.Uclass.graph)
    (Port_graph.order b.Uclass.graph)

let test_prop_3_2_roots_uniform_below_k () =
  let t = build_uniform 2 in
  let r = Refinement.compute t.Uclass.graph ~depth:(params.Uclass.k - 1) in
  let d = params.Uclass.k - 1 in
  let c0 = Refinement.class_of r ~depth:d t.Uclass.cycle_roots.(0).(0) in
  Array.iter
    (fun pair ->
      Array.iter
        (fun root ->
          Alcotest.(check int) "root class at k-1" c0
            (Refinement.class_of r ~depth:d root))
        pair)
    t.Uclass.cycle_roots

let test_lemma_3_6_psi_s () =
  (* No node is unique at depth k−1; ψ_S = k. *)
  List.iter
    (fun s ->
      let t = build_uniform s in
      Alcotest.(check (option int))
        (Printf.sprintf "psi_S (sigma=%d)" s)
        (Some params.Uclass.k)
        (Refinement.min_unique_depth t.Uclass.graph))
    [ 1; 2; 3 ]

let test_lemma_3_8_cycle_roots_unique_at_k () =
  let t = build_uniform 2 in
  let r = Refinement.compute t.Uclass.graph ~depth:params.Uclass.k in
  let groups = Refinement.classes r ~depth:params.Uclass.k in
  Array.iter
    (fun pair ->
      Array.iter
        (fun root ->
          let c = Refinement.class_of r ~depth:params.Uclass.k root in
          Alcotest.(check (list int)) "cycle root singleton" [ root ]
            groups.(c))
        pair)
    t.Uclass.cycle_roots

let test_prop_3_5_heavy_twins () =
  (* B^k(r_{j,1,1}) = B^k(r_{j,1,2}), and non-root nodes pair up too, so
     the only singletons at depth k are the cycle roots. *)
  let t = build_uniform 3 in
  let r = Refinement.compute t.Uclass.graph ~depth:params.Uclass.k in
  Array.iter
    (fun pair ->
      Alcotest.(check bool) "heavy twins share view" true
        (Refinement.equal_views r ~depth:params.Uclass.k pair.(0) pair.(1)))
    t.Uclass.heavy;
  let singles = Refinement.singletons r ~depth:params.Uclass.k in
  let roots =
    Array.to_list t.Uclass.cycle_roots
    |> List.concat_map Array.to_list
    |> List.sort Int.compare
  in
  Alcotest.(check (list int)) "singletons = cycle roots" roots
    (List.sort Int.compare singles)

let test_heavy_view_sigma_independent () =
  (* Theorem 3.11's key indistinguishability: a heavy node's B^k is the
     same in G_alpha and G_beta even when sigma_j differs. *)
  let a = build_uniform 1 and b = build_uniform 3 in
  Array.iteri
    (fun j0 pair ->
      Alcotest.(check bool)
        (Printf.sprintf "heavy %d view independent of sigma" (j0 + 1))
        true
        (Refinement.equal_views_cross a.Uclass.graph pair.(0) b.Uclass.graph
           b.Uclass.heavy.(j0).(0) ~depth:params.Uclass.k))
    a.Uclass.heavy

let test_lemma_3_9_pe_scheme () =
  List.iter
    (fun sigma ->
      let t = Uclass.build params ~sigma in
      let g = t.Uclass.graph in
      let { Scheme.outputs; rounds; advice_bits } =
        Scheme.run Uclass.pe_scheme g
      in
      Alcotest.(check int) "rounds = k" params.Uclass.k rounds;
      Alcotest.(check bool) "nonempty advice" true (advice_bits > 0);
      Alcotest.(check (result int string)) "PE verified, leader = rmin"
        (Ok (Uclass.rmin t))
        (Verify.port_election g outputs))
    [
      Uclass.uniform_sigma params 1;
      Uclass.uniform_sigma params 3;
      [| 1; 2; 3; 1; 2; 3; 1; 2; 3 |];
    ]

let test_thm_3_11_fooling () =
  (* Same advice on G_alpha and G_beta with sigma differing at j': the
     heavy nodes of j' cannot see the swap and output G_alpha's port,
     which in G_beta leads into a decoy path. *)
  let a = build_uniform 1 in
  let sigma_b = Uclass.uniform_sigma params 1 in
  sigma_b.(4) <- 3;
  let b = Uclass.build params ~sigma:sigma_b in
  let advice = Uclass.pe_scheme.Scheme.oracle a.Uclass.graph in
  let honest = Scheme.run_with_advice Uclass.pe_scheme a.Uclass.graph ~advice in
  Alcotest.(check bool) "honest run elects" true
    (Result.is_ok (Verify.port_election a.Uclass.graph honest.Scheme.outputs));
  let fooled = Scheme.run_with_advice Uclass.pe_scheme b.Uclass.graph ~advice in
  match Verify.port_election b.Uclass.graph fooled.Scheme.outputs with
  | Ok _ -> Alcotest.fail "fooled run must not satisfy PE"
  | Error e ->
      Alcotest.(check bool) "failure is a bad port" true
        (String.length e > 0)

let test_fooling_requires_difference () =
  (* Control: the same advice on a graph with identical sigma works. *)
  let a = build_uniform 2 in
  let a' = build_uniform 2 in
  let advice = Uclass.pe_scheme.Scheme.oracle a.Uclass.graph in
  let run = Scheme.run_with_advice Uclass.pe_scheme a'.Uclass.graph ~advice in
  Alcotest.(check bool) "same sigma verifies" true
    (Result.is_ok (Verify.port_election a'.Uclass.graph run.Scheme.outputs))

(* Property: PE works for arbitrary sigma, not just uniform ones. *)
let prop_random_sigma =
  QCheck.Test.make ~name:"random sigma: PE elects rmin in k rounds" ~count:15
    QCheck.(make ~print:string_of_int Gen.(int_bound 100_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let y = Option.get (Uclass.num_trees params) in
      let sigma = Array.init y (fun _ -> 1 + Random.State.int st 3) in
      let t = Uclass.build params ~sigma in
      let g = t.Uclass.graph in
      let r = Scheme.run Uclass.pe_scheme g in
      r.Scheme.rounds = params.Uclass.k
      && Verify.port_election g r.Scheme.outputs = Ok (Uclass.rmin t)
      && Refinement.min_unique_depth g = Some params.Uclass.k)

let () =
  Alcotest.run "shades_families_u"
    [
      ( "construction",
        [
          Alcotest.test_case "Fact 3.1 class size" `Quick test_fact_3_1;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "sigma changes graph" `Quick
            test_sigma_changes_graph;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "Prop 3.2 roots uniform below k" `Quick
            test_prop_3_2_roots_uniform_below_k;
          Alcotest.test_case "Lemma 3.6 psi_S = k" `Quick test_lemma_3_6_psi_s;
          Alcotest.test_case "Lemma 3.8 cycle roots unique" `Quick
            test_lemma_3_8_cycle_roots_unique_at_k;
          Alcotest.test_case "Prop 3.5 heavy twins" `Quick
            test_prop_3_5_heavy_twins;
          Alcotest.test_case "heavy view sigma-independent" `Quick
            test_heavy_view_sigma_independent;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "Lemma 3.9 PE scheme" `Quick
            test_lemma_3_9_pe_scheme;
          Alcotest.test_case "Thm 3.11 fooling" `Quick test_thm_3_11_fooling;
          Alcotest.test_case "control: same sigma ok" `Quick
            test_fooling_requires_difference;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_random_sigma ]);
    ]
