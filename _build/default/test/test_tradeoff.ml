(* Tests for the time-vs-advice tradeoff layer: hash-consed views,
   graph reconstruction from one deep view, canonical ordering, and the
   O(log n)-advice schemes at time 2(n-1). *)

open Shades_graph
open Shades_views
open Shades_election

let rand_graph =
  QCheck.make
    ~print:(fun (seed, n, e) -> Printf.sprintf "seed=%d n=%d extra=%d" seed n e)
    QCheck.Gen.(triple (int_bound 10_000) (int_range 2 9) (int_bound 6))

let build (seed, n, extra) =
  Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra

(* --- Cview --- *)

let test_cview_basics () =
  let g = Gen.path 4 in
  let ctx = Cview.create_ctx () in
  let a = Cview.of_graph ctx g 0 ~depth:3 in
  let b = Cview.of_graph ctx g 0 ~depth:3 in
  Alcotest.(check bool) "interned equal" true (Cview.equal a b);
  Alcotest.(check int) "height" 3 a.Cview.height;
  let c = Cview.of_graph ctx g 3 ~depth:3 in
  Alcotest.(check bool) "distinct nodes differ" false (Cview.equal a c);
  (* sharing: a deep view on a large graph stays small *)
  let big = Gen.oriented_ring 50 in
  let ctx2 = Cview.create_ctx () in
  let deep = Cview.of_graph ctx2 big 0 ~depth:98 in
  Alcotest.(check int) "deep height" 98 deep.Cview.height

let prop_cview_matches_tree =
  QCheck.Test.make ~name:"Cview.to_tree = View_tree.of_graph" ~count:100
    rand_graph (fun params ->
      let g = build params in
      let ctx = Cview.create_ctx () in
      List.for_all
        (fun depth ->
          List.for_all
            (fun v ->
              View_tree.equal
                (Cview.to_tree (Cview.of_graph ctx g v ~depth))
                (View_tree.of_graph g v ~depth))
            (Port_graph.vertices g))
        [ 0; 1; 2; 3 ])

let prop_cview_equal_iff_views_equal =
  QCheck.Test.make ~name:"Cview ids decide view equality" ~count:100
    rand_graph (fun params ->
      let g = build params in
      let depth = 2 in
      let ctx = Cview.create_ctx () in
      let t = Refinement.compute g ~depth in
      List.for_all
        (fun v ->
          List.for_all
            (fun u ->
              Cview.equal
                (Cview.of_graph ctx g v ~depth)
                (Cview.of_graph ctx g u ~depth)
              = Refinement.equal_views t ~depth v u)
            (Port_graph.vertices g))
        (Port_graph.vertices g))

let prop_cview_truncate =
  QCheck.Test.make ~name:"Cview.truncate = shallow build" ~count:100 rand_graph
    (fun params ->
      let g = build params in
      let ctx = Cview.create_ctx () in
      let deep = Cview.of_graph ctx g 0 ~depth:4 in
      List.for_all
        (fun d ->
          Cview.equal
            (Cview.truncate ctx deep ~depth:d)
            (Cview.of_graph ctx g 0 ~depth:d))
        [ 0; 1; 2; 3; 4 ])

(* --- reconstruction --- *)

let prop_reconstruct_isomorphic =
  QCheck.Test.make ~name:"graph_of_cview rebuilds the graph (up to iso)"
    ~count:150 rand_graph (fun params ->
      let g = build params in
      QCheck.assume (Refinement.feasible g);
      let n = Port_graph.order g in
      let ctx = Cview.create_ctx () in
      List.for_all
        (fun v ->
          let view =
            Cview.of_graph ctx g v ~depth:(Reconstruct.rounds_needed ~n)
          in
          let local, me = Reconstruct.graph_of_cview ctx view ~n in
          Iso.rooted_isomorphic g v local me)
        (Port_graph.vertices g))

let test_reconstruct_too_shallow () =
  let g = Gen.path 5 in
  let ctx = Cview.create_ctx () in
  let view = Cview.of_graph ctx g 0 ~depth:3 in
  Alcotest.check_raises "too shallow"
    (Invalid_argument "Reconstruct: view too shallow for claimed n")
    (fun () -> ignore (Reconstruct.graph_of_cview ctx view ~n:5))

let test_reconstruct_explicit_wrapper () =
  let g = Gen.star 5 in
  let tree = View_tree.of_graph g 2 ~depth:(Reconstruct.rounds_needed ~n:5) in
  let local = Reconstruct.graph_of_view tree ~n:5 in
  Alcotest.(check bool) "star rebuilt" true (Iso.isomorphic g local)

(* --- canonical order and canonical form --- *)

let prop_canonical_order_invariant =
  QCheck.Test.make ~name:"canonical_order independent of numbering"
    ~count:100 rand_graph (fun params ->
      let g = build params in
      QCheck.assume (Refinement.feasible g);
      let n = Port_graph.order g in
      (* shuffle the vertex numbering and check the canonical graphs agree *)
      let st = Random.State.make [| 99 |] in
      let shuffle = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = shuffle.(i) in
        shuffle.(i) <- shuffle.(j);
        shuffle.(j) <- t
      done;
      let g' = Port_graph.renumber g shuffle in
      match
        (Refinement.canonical_order g, Refinement.canonical_order g')
      with
      | Some p, Some p' ->
          Port_graph.equal
            (Port_graph.renumber g p)
            (Port_graph.renumber g' p')
      | _ -> false)

let prop_canonical_matches_bfs_canonical =
  QCheck.Test.make ~name:"Port_graph.canonical invariant too" ~count:50
    rand_graph (fun params ->
      let g = build params in
      let n = Port_graph.order g in
      let st = Random.State.make [| 7 |] in
      let shuffle = Array.init n Fun.id in
      for i = n - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = shuffle.(i) in
        shuffle.(i) <- shuffle.(j);
        shuffle.(j) <- t
      done;
      let g' = Port_graph.renumber g shuffle in
      QCheck.assume (Refinement.feasible g);
      Port_graph.equal
        (fst (Port_graph.canonical g))
        (fst (Port_graph.canonical g')))

let test_canonical_order_infeasible () =
  Alcotest.(check bool) "ring has no canonical order" true
    (Refinement.canonical_order (Gen.oriented_ring 5) = None)

(* --- compact runner --- *)

let prop_compact_runner_views =
  QCheck.Test.make ~name:"compact protocol gathers exactly B^r" ~count:80
    rand_graph (fun params ->
      let g = build params in
      let rounds = 3 in
      let views =
        Shades_localsim.Compact_info.run g ~rounds
          ~advice:Shades_bits.Bitstring.empty
          ~decide:(fun ~advice:_ _ctx view -> Cview.to_tree view)
      in
      List.for_all
        (fun v ->
          View_tree.equal views.(v) (View_tree.of_graph g v ~depth:rounds))
        (Port_graph.vertices g))

(* --- size-advice schemes --- *)

let check_scheme scheme verify params =
  let g = build params in
  QCheck.assume (Refinement.feasible g);
  let n = Port_graph.order g in
  let r = Size_advice.run scheme g in
  Result.is_ok (verify g r.Size_advice.outputs)
  && r.Size_advice.rounds = Reconstruct.rounds_needed ~n
  && r.Size_advice.advice_bits <= (2 * 30) + 1

let prop_size_advice_s =
  QCheck.Test.make ~name:"size-advice S correct at time 2(n-1)" ~count:80
    rand_graph
    (check_scheme Size_advice.selection Verify.selection)

let prop_size_advice_pe =
  QCheck.Test.make ~name:"size-advice PE correct" ~count:80 rand_graph
    (check_scheme Size_advice.port_election Verify.port_election)

let prop_size_advice_ppe =
  QCheck.Test.make ~name:"size-advice PPE correct" ~count:80 rand_graph
    (check_scheme Size_advice.port_path_election Verify.port_path_election)

let prop_size_advice_cppe =
  QCheck.Test.make ~name:"size-advice CPPE correct" ~count:80 rand_graph
    (check_scheme Size_advice.complete_port_path_election
       Verify.complete_port_path_election)

let test_size_advice_on_gclass () =
  (* The tradeoff in action: minimum time needs view-sized advice; time
     2(n-1) needs only gamma(n) bits. *)
  let t = Shades_families.Gclass.build { Shades_families.Gclass.delta = 4; k = 1 } ~i:3 in
  let g = t.Shades_families.Gclass.graph in
  let min_time = Scheme.run Select_by_view.scheme g in
  let relaxed = Size_advice.run Size_advice.selection g in
  Alcotest.(check bool) "both correct" true
    (Result.is_ok (Verify.selection g min_time.Scheme.outputs)
    && Result.is_ok (Verify.selection g relaxed.Size_advice.outputs));
  Alcotest.(check bool) "relaxed time is larger" true
    (relaxed.Size_advice.rounds > min_time.Scheme.rounds);
  Alcotest.(check bool) "relaxed advice is smaller" true
    (relaxed.Size_advice.advice_bits < min_time.Scheme.advice_bits)

let test_size_advice_single_node () =
  let g = Port_graph.Builder.finish (Port_graph.Builder.create 1) in
  let r = Size_advice.run Size_advice.selection g in
  Alcotest.(check bool) "single node leads" true
    (r.Size_advice.outputs = [| Task.Leader |])

let () =
  Alcotest.run "shades_tradeoff"
    [
      ( "cview",
        Alcotest.test_case "basics" `Quick test_cview_basics
        :: List.map QCheck_alcotest.to_alcotest
             [
               prop_cview_matches_tree;
               prop_cview_equal_iff_views_equal;
               prop_cview_truncate;
             ] );
      ( "reconstruct",
        Alcotest.test_case "too shallow" `Quick test_reconstruct_too_shallow
        :: Alcotest.test_case "explicit wrapper" `Quick
             test_reconstruct_explicit_wrapper
        :: List.map QCheck_alcotest.to_alcotest [ prop_reconstruct_isomorphic ]
      );
      ( "canonical",
        Alcotest.test_case "infeasible" `Quick test_canonical_order_infeasible
        :: List.map QCheck_alcotest.to_alcotest
             [
               prop_canonical_order_invariant;
               prop_canonical_matches_bfs_canonical;
             ] );
      ( "schemes",
        Alcotest.test_case "tradeoff on G-class" `Quick
          test_size_advice_on_gclass
        :: Alcotest.test_case "single node" `Quick
             test_size_advice_single_node
        :: List.map QCheck_alcotest.to_alcotest
             [
               prop_compact_runner_views;
               prop_size_advice_s;
               prop_size_advice_pe;
               prop_size_advice_ppe;
               prop_size_advice_cppe;
             ] );
    ]
