(* Tests for the class J_{µ,k} (Section 4): layer graphs, component H,
   gadgets, template chaining, the Lemma 4.8 CPPE algorithm, and the
   Theorem 4.11/4.12 fooling mechanism. *)

open Shades_graph
open Shades_views
open Shades_election
open Shades_families

(* --- Part 1: layer graphs --- *)

let build_layer mu m =
  let proto = Proto.create () in
  let l = Layers.add proto ~mu ~m in
  (Proto.build proto, l)

let test_fact_4_1_sizes () =
  (* Formula vs. actually built node count. *)
  List.iter
    (fun mu ->
      List.iter
        (fun m ->
          let g, _ = build_layer mu m in
          Alcotest.(check int)
            (Printf.sprintf "|L_%d| mu=%d" m mu)
            (Layers.size ~mu ~m)
            (Port_graph.order g))
        [ 0; 1; 2; 3; 4; 5; 6 ])
    [ 2; 3; 4 ];
  (* The paper's running example µ=3 (Figure 4). *)
  Alcotest.(check (list int)) "mu=3 sizes" [ 1; 3; 5; 8; 17; 26 ]
    (List.map (fun m -> Layers.size ~mu:3 ~m) [ 0; 1; 2; 3; 4; 5 ])

let test_layer_diameter () =
  (* "the graph L_j in this set has diameter j" *)
  List.iter
    (fun mu ->
      List.iter
        (fun m ->
          let g, _ = build_layer mu m in
          if m > 0 then
            Alcotest.(check int)
              (Printf.sprintf "diam L_%d mu=%d" m mu)
              m (Paths.diameter g))
        [ 1; 2; 3; 4; 5 ])
    [ 2; 3 ]

let test_even_layer_middles_glued () =
  let _, l = build_layer 3 4 in
  List.iter
    (fun sigma ->
      Alcotest.(check int) "merged addresses"
        (l.Layers.node 0 sigma)
        (l.Layers.node 1 sigma))
    (Layers.sigmas 3 2)

let test_w_order () =
  let _, l = build_layer 2 4 in
  let order = Layers.w_order l in
  Alcotest.(check int) "z entries" (Layers.size ~mu:2 ~m:4)
    (Array.length order);
  (* Lexicographic on b :: σ, starting from the b = 0 root. *)
  Alcotest.(check (pair int (list int))) "first" (0, []) order.(0);
  Alcotest.(check (pair int (list int))) "second" (0, [ 0 ]) order.(1)

(* --- Part 2: component H --- *)

let test_component_size () =
  List.iter
    (fun (mu, k) ->
      let g, c = Component.standalone ~mu ~k in
      Alcotest.(check int)
        (Printf.sprintf "|H| mu=%d k=%d" mu k)
        (Component.size ~mu ~k)
        (Port_graph.order g);
      Alcotest.(check bool) "connected" true (Paths.is_connected g);
      Alcotest.(check int) "z pairs" (Component.z ~mu ~k)
        (Array.length c.Component.w))
    [ (2, 4); (3, 4); (3, 5); (4, 4) ]

let test_lemma_4_3 () =
  (* Every node has some pair (w_{l,1}, w_{l,2}) entirely at distance >= k. *)
  List.iter
    (fun (mu, k) ->
      let g, c = Component.standalone ~mu ~k in
      let ok = ref true in
      List.iter
        (fun v ->
          let d = Paths.bfs_distances g v in
          let misses =
            Array.exists
              (fun (w1, w2) -> d.(w1) >= k && d.(w2) >= k)
              c.Component.w
          in
          if not misses then ok := false)
        (Port_graph.vertices g);
      Alcotest.(check bool)
        (Printf.sprintf "Lemma 4.3 mu=%d k=%d" mu k)
        true !ok)
    [ (2, 4); (3, 4); (3, 5) ]

let test_finding_distance_k_plus_1 () =
  (* Reproduction finding: the informal "everything within distance k"
     claim fails — opposite-side layer-k nodes of the two copies sit at
     distance k+1 — but every node sees at least one member of every
     pair within k, which is what the W-decoding needs. *)
  let g, c = Component.standalone ~mu:3 ~k:4 in
  let k = 4 in
  let far_pair_exists = ref false in
  let either_ok = ref true in
  List.iter
    (fun v ->
      let d = Paths.bfs_distances g v in
      Array.iter
        (fun (w1, w2) ->
          if d.(w1) > k || d.(w2) > k then far_pair_exists := true;
          if min d.(w1) d.(w2) > k then either_ok := false)
        c.Component.w)
    (Port_graph.vertices g);
  Alcotest.(check bool) "some node >k away from a w-node" true
    !far_pair_exists;
  Alcotest.(check bool) "but one of each pair always within k" true !either_ok

let test_finding_mu2_degrees () =
  (* Reproduction finding: for µ = 2 the doubly-connected L_{k−1}
     middles out-degree ρ (4µ = 8): degree 9 when k is even. *)
  let g, c = Component.standalone ~mu:2 ~k:4 in
  let max_nonroot =
    List.fold_left
      (fun acc v ->
        if v = c.Component.root then acc else max acc (Port_graph.degree g v))
      0 (Port_graph.vertices g)
  in
  Alcotest.(check int) "L_3 middles reach degree 9" 9 max_nonroot;
  Alcotest.(check bool) "9 > 4*mu = 8" true (max_nonroot > 8);
  (* ... while for µ = 3 the gadget centre ρ = 4µ = 12 dominates. *)
  let g3, c3 = Component.standalone ~mu:3 ~k:4 in
  let max3 =
    List.fold_left
      (fun acc v ->
        if v = c3.Component.root then acc
        else max acc (Port_graph.degree g3 v))
      0 (Port_graph.vertices g3)
  in
  Alcotest.(check bool) "mu=3 non-root degrees < 12" true (max3 < 12)

(* --- Parts 3-5: gadgets, template, class --- *)

let params = { Jclass.mu = 3; k = 4; z_eff = 3 }

let build_j y_setter =
  let y = Jclass.y_zero params in
  y_setter y;
  Jclass.build params ~y

let test_gadget_structure () =
  let t = build_j (fun _ -> ()) in
  let g = t.Jclass.graph in
  Alcotest.(check int) "num gadgets" 8 (Array.length t.Jclass.gadgets);
  Alcotest.(check bool) "connected" true (Paths.is_connected g);
  Array.iter
    (fun gd ->
      Alcotest.(check int) "rho degree 4mu" 12
        (Port_graph.degree g gd.Jclass.rho))
    t.Jclass.gadgets;
  (* vertex ranges partition the graph *)
  List.iter
    (fun v ->
      let gi = Jclass.gadget_of_vertex t v in
      let gd = t.Jclass.gadgets.(gi) in
      Alcotest.(check bool) "in range" true
        (v >= gd.Jclass.first_vertex && v <= gd.Jclass.last_vertex))
    (Port_graph.vertices g)

let test_w_encoding () =
  (* L and T encode the gadget index, R and B its successor; the chain
     ends read 0 on the missing side. *)
  let t = build_j (fun y -> y.(1) <- true) in
  let last = Array.length t.Jclass.gadgets - 1 in
  Array.iteri
    (fun gi _ ->
      let w = Jclass.w_values t ~gadget:gi in
      let expect_l = gi and expect_r = if gi = last then 0 else gi + 1 in
      Alcotest.(check (list int))
        (Printf.sprintf "W of gadget %d" gi)
        [ expect_l; expect_l; expect_r; expect_r ]
        (Array.to_list w))
    t.Jclass.gadgets

let test_prop_4_4_rho_views () =
  (* All ρ views agree at depth k−1, swaps or not. *)
  let t = build_j (fun y -> y.(0) <- true; y.(2) <- true) in
  let r = Refinement.compute t.Jclass.graph ~depth:3 in
  let c0 = Refinement.class_of r ~depth:3 t.Jclass.gadgets.(0).Jclass.rho in
  Array.iter
    (fun gd ->
      Alcotest.(check int) "rho class at k-1" c0
        (Refinement.class_of r ~depth:3 gd.Jclass.rho))
    t.Jclass.gadgets

let test_lemma_4_6_twins () =
  (* Adaptive twin check: for sampled nodes v in gadget i, find a bit l
     such that the pair (w_{l,1}, w_{l,2}) of v's component is out of
     B^{k−1}(v) and the flipped index i' is in range; the corresponding
     node of gadget i' must share v's view at depth k−1. *)
  let t = build_j (fun _ -> ()) in
  let g = t.Jclass.graph in
  let k = 4 in
  let checked = ref 0 in
  (* Scan every node of a middle gadget: whenever some usable bit l
     (l < z_eff, so the flipped index is in the scaled chain) has its
     pair out of B^{k−1}(v), the twin in the flipped gadget must share
     v's view. *)
  List.iter
    (fun gi ->
      let gd = t.Jclass.gadgets.(gi) in
      for v = gd.Jclass.first_vertex to gd.Jclass.last_vertex do
        if v <> gd.Jclass.rho then begin
          let comp =
            (* v's component: the one whose vertex range contains it *)
            let rec find c =
              if c = 3 then 3
              else begin
                let next = gd.Jclass.components.(c + 1) in
                (* component roots interleave; use layer-1 first vertex *)
                if v < next.Component.layers.(1).Layers.roots.(0) then c
                else find (c + 1)
              end
            in
            find 0
          in
          let c = gd.Jclass.components.(comp) in
          let d = Paths.bfs_distances g v in
          (* The L/T components encode x_i but R/B encode x_{i+1}, so
             the twin flips the corresponding index. *)
          let flip q =
            if comp <= 1 then gi lxor (1 lsl q)
            else ((gi + 1) lxor (1 lsl q)) - 1
          in
          let in_range i' = i' >= 0 && i' < Array.length t.Jclass.gadgets in
          let rec find_l q =
            if q >= params.Jclass.z_eff then None
            else begin
              let w1, w2 = c.Component.w.(q) in
              if d.(w1) >= k && d.(w2) >= k && in_range (flip q) then
                Some (flip q)
              else find_l (q + 1)
            end
          in
          match find_l 0 with
          | None -> ()
          | Some i' ->
              let offset = v - gd.Jclass.first_vertex in
              let v' = t.Jclass.gadgets.(i').Jclass.first_vertex + offset in
              incr checked;
              if not (Refinement.equal_views_cross g v g v' ~depth:(k - 1))
              then
                Alcotest.failf "twin mismatch: %d (gadget %d -> %d)" v gi i'
        end
      done)
    [ 2 ];
  Alcotest.(check bool)
    (Printf.sprintf "twins checked (%d)" !checked)
    true (!checked > 50)

let test_scaled_psi_s () =
  (* Scaling artifact (documented): the 2^{z_eff}-gadget chain leaves
     some layer-k node unique one round early; the full 2^z template
     would give exactly k (Lemma 4.7). *)
  let t = build_j (fun _ -> ()) in
  match Refinement.min_unique_depth t.Jclass.graph with
  | Some d ->
      Alcotest.(check bool) "k-1 <= psi_S <= k" true (d >= 3 && d <= 4)
  | None -> Alcotest.fail "scaled J infeasible?"

let test_lemma_4_8_cppe () =
  let t = build_j (fun y -> y.(1) <- true) in
  let g = t.Jclass.graph in
  (* oracle-side assignment *)
  let answers = Jclass.cppe_assignment t in
  Alcotest.(check (result int string)) "assignment verifies"
    (Ok t.Jclass.gadgets.(0).Jclass.rho)
    (Verify.complete_port_path_election g answers);
  (* full run through the LOCAL simulator; the oracle raises if the
     assignment is not constant on depth-k view classes *)
  let scheme = Jclass.cppe_scheme t in
  let r = Scheme.run scheme g in
  Alcotest.(check int) "rounds = k" 4 r.Scheme.rounds;
  Alcotest.(check (result int string)) "simulated run verifies"
    (Ok t.Jclass.gadgets.(0).Jclass.rho)
    (Verify.complete_port_path_election g r.Scheme.outputs)

let test_lemma_4_10_border_views () =
  let a = build_j (fun _ -> ()) in
  let b = build_j (fun y -> y.(1) <- true) in
  let border t =
    fst t.Jclass.gadgets.(0).Jclass.components.(0).Component.w.(0)
  in
  Alcotest.(check bool) "w_{1,1} of HL of gadget 0: same B^k" true
    (Refinement.equal_views_cross a.Jclass.graph (border a) b.Jclass.graph
       (border b) ~depth:4)

let test_thm_4_11_fooling () =
  let a = build_j (fun _ -> ()) in
  let b = build_j (fun y -> y.(1) <- true) in
  let scheme = Jclass.cppe_scheme a in
  let advice = scheme.Scheme.oracle a.Jclass.graph in
  let honest = Scheme.run_with_advice scheme a.Jclass.graph ~advice in
  Alcotest.(check bool) "honest ok" true
    (Result.is_ok
       (Verify.complete_port_path_election a.Jclass.graph
          honest.Scheme.outputs));
  let fooled = Scheme.run_with_advice scheme b.Jclass.graph ~advice in
  (match
     Verify.complete_port_path_election b.Jclass.graph fooled.Scheme.outputs
   with
  | Ok _ -> Alcotest.fail "fooled run must not satisfy CPPE"
  | Error _ -> ());
  (* Control: an equal-Y rebuild accepts the same advice. *)
  let a' = build_j (fun _ -> ()) in
  let control = Scheme.run_with_advice scheme a'.Jclass.graph ~advice in
  Alcotest.(check bool) "control ok" true
    (Result.is_ok
       (Verify.complete_port_path_election a'.Jclass.graph
          control.Scheme.outputs))

let test_fact_4_2_bounds () =
  (* µ^{k/2} <= z <= 4µ^{k/2} and |J| = 2^{2^{z-1}}. *)
  List.iter
    (fun (mu, k) ->
      let z = Jclass.z ~mu ~k in
      let base = float_of_int mu ** float_of_int (k / 2) in
      Alcotest.(check bool)
        (Printf.sprintf "z bounds mu=%d k=%d" mu k)
        true
        (float_of_int z >= base && float_of_int z <= 4.0 *. base);
      Alcotest.(check (float 0.001))
        "log2 |J|"
        (2.0 ** float_of_int (z - 1))
        (Jclass.class_size_log2 ~mu ~k))
    [ (3, 4); (4, 4); (3, 5) ]

let test_odd_k_instance () =
  (* k = 5 exercises the other parity throughout: odd L_k copies joined
     by leaf edges, and the doubled L_4 -> L_5 connection through even
     middles (Case 1 with a port shift). *)
  let p5 = { Jclass.mu = 3; k = 5; z_eff = 3 } in
  let y = Jclass.y_zero p5 in
  y.(2) <- true;
  let t = Jclass.build p5 ~y in
  let g = t.Jclass.graph in
  Alcotest.(check bool) "connected" true (Paths.is_connected g);
  Alcotest.(check bool) "rho degree 4mu" true
    (Array.for_all
       (fun gd -> Port_graph.degree g gd.Jclass.rho = 12)
       t.Jclass.gadgets);
  (* W encoding unchanged by the parity *)
  let last = Array.length t.Jclass.gadgets - 1 in
  Array.iteri
    (fun gi _ ->
      let w = Jclass.w_values t ~gadget:gi in
      let expect_r = if gi = last then 0 else gi + 1 in
      Alcotest.(check (list int))
        (Printf.sprintf "W gadget %d (k=5)" gi)
        [ gi; gi; expect_r; expect_r ]
        (Array.to_list w))
    t.Jclass.gadgets;
  (* Prop 4.4 at k-1 = 4 *)
  let r = Refinement.compute g ~depth:4 in
  let c0 = Refinement.class_of r ~depth:4 t.Jclass.gadgets.(0).Jclass.rho in
  Alcotest.(check bool) "rho views equal at k-1" true
    (Array.for_all
       (fun gd -> Refinement.class_of r ~depth:4 gd.Jclass.rho = c0)
       t.Jclass.gadgets);
  (* the Lemma 4.8 assignment still verifies *)
  Alcotest.(check (result int string))
    "CPPE assignment verifies (k=5)"
    (Ok t.Jclass.gadgets.(0).Jclass.rho)
    (Verify.complete_port_path_election g (Jclass.cppe_assignment t))

(* Property: the CPPE assignment verifies for arbitrary Y. *)
let prop_random_y =
  QCheck.Test.make ~name:"random Y: CPPE assignment verifies" ~count:10
    QCheck.(make ~print:string_of_int Gen.(int_bound 100_000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let y = Jclass.y_zero params in
      Array.iteri (fun i _ -> y.(i) <- Random.State.bool st) y;
      let t = Jclass.build params ~y in
      let answers = Jclass.cppe_assignment t in
      Verify.complete_port_path_election t.Jclass.graph answers
      = Ok t.Jclass.gadgets.(0).Jclass.rho)

let () =
  Alcotest.run "shades_families_j"
    [
      ( "layers",
        [
          Alcotest.test_case "Fact 4.1 sizes" `Quick test_fact_4_1_sizes;
          Alcotest.test_case "diameter = m" `Quick test_layer_diameter;
          Alcotest.test_case "even middles glued" `Quick
            test_even_layer_middles_glued;
          Alcotest.test_case "w order" `Quick test_w_order;
        ] );
      ( "component",
        [
          Alcotest.test_case "size and connectivity" `Quick
            test_component_size;
          Alcotest.test_case "Lemma 4.3" `Quick test_lemma_4_3;
          Alcotest.test_case "finding: distance k+1 pairs" `Quick
            test_finding_distance_k_plus_1;
          Alcotest.test_case "finding: mu=2 degree clash" `Quick
            test_finding_mu2_degrees;
        ] );
      ( "template",
        [
          Alcotest.test_case "gadget structure" `Quick test_gadget_structure;
          Alcotest.test_case "W encoding" `Quick test_w_encoding;
          Alcotest.test_case "Prop 4.4 rho views" `Quick
            test_prop_4_4_rho_views;
          Alcotest.test_case "Lemma 4.6 twins" `Quick test_lemma_4_6_twins;
          Alcotest.test_case "scaled psi_S" `Quick test_scaled_psi_s;
          Alcotest.test_case "Fact 4.2 bounds" `Quick test_fact_4_2_bounds;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "Lemma 4.8 CPPE" `Slow test_lemma_4_8_cppe;
          Alcotest.test_case "Lemma 4.10 border views" `Quick
            test_lemma_4_10_border_views;
          Alcotest.test_case "Thm 4.11 fooling" `Slow test_thm_4_11_fooling;
        ] );
      ( "odd-k",
        [ Alcotest.test_case "J(3,5) instance" `Quick test_odd_k_instance ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_random_y ]);
    ]
