(* Benchmark harness: one Bechamel test per experiment in EXPERIMENTS.md.

   The paper is a theory paper, so its "tables and figures" are
   constructions and bounds; each bench regenerates one of them —
   building the lower-bound families, computing view refinements and
   election indexes, producing oracle advice, and running the
   minimum-time algorithms through the LOCAL simulator.

   Run with: dune exec bench/main.exe *)

open Bechamel
open Toolkit
open Shades_graph
open Shades_views
open Shades_election
open Shades_families

let stage = Staged.stage

(* --- E1: index hierarchy on random graphs --- *)

let bench_index =
  let g = Gen.random (Random.State.make [| 7 |]) 7 ~extra_edges:3 in
  Test.make_grouped ~name:"index"
    [
      Test.make ~name:"hierarchy_n7" (stage (fun () -> Index.all g));
      Test.make ~name:"psi_s_n7" (stage (fun () -> Index.psi_s g));
    ]

(* --- views and refinement (machinery behind every experiment) --- *)

let bench_views =
  let g = Gen.random (Random.State.make [| 11 |]) 200 ~extra_edges:100 in
  let u41 =
    let p = { Uclass.delta = 4; k = 1 } in
    (Uclass.build p ~sigma:(Uclass.uniform_sigma p 1)).Uclass.graph
  in
  Test.make_grouped ~name:"views"
    [
      Test.make ~name:"refine_fixpoint_n200"
        (stage (fun () -> Refinement.fixpoint g));
      Test.make ~name:"refine_fixpoint_u41"
        (stage (fun () -> Refinement.fixpoint u41));
      Test.make ~name:"tree_depth3_n200"
        (stage (fun () -> View_tree.of_graph g 0 ~depth:3));
      Test.make ~name:"canonical_key_depth3"
        (let t = View_tree.of_graph g 0 ~depth:3 in
         stage (fun () -> View_tree.canonical_key t));
    ]

(* --- E4/E6: class G constructions and Thm 2.2 advice --- *)

let bench_gclass =
  let g42 = (Gclass.build { Gclass.delta = 4; k = 2 } ~i:3).Gclass.graph in
  Test.make_grouped ~name:"g_class"
    [
      Test.make ~name:"build_d4k2_i3"
        (stage (fun () -> Gclass.build { Gclass.delta = 4; k = 2 } ~i:3));
      Test.make ~name:"build_d5k1_i7"
        (stage (fun () -> Gclass.build { Gclass.delta = 5; k = 1 } ~i:7));
      Test.make ~name:"thm22_oracle_d4k2"
        (stage (fun () -> Select_by_view.scheme.Scheme.oracle g42));
      Test.make ~name:"thm22_full_run_d4k2"
        (stage (fun () -> Scheme.run Select_by_view.scheme g42));
    ]

(* --- E11/E14: class U constructions and Lemma 3.9 PE runs --- *)

let bench_uclass =
  let p = { Uclass.delta = 4; k = 1 } in
  let u = Uclass.build p ~sigma:(Uclass.uniform_sigma p 2) in
  let advice = Uclass.pe_scheme.Scheme.oracle u.Uclass.graph in
  Test.make_grouped ~name:"u_class"
    [
      Test.make ~name:"build_d4k1"
        (stage (fun () -> Uclass.build p ~sigma:(Uclass.uniform_sigma p 2)));
      Test.make ~name:"pe_oracle_d4k1"
        (stage (fun () -> Uclass.pe_scheme.Scheme.oracle u.Uclass.graph));
      Test.make ~name:"pe_run_d4k1"
        (stage (fun () ->
             Scheme.run_with_advice Uclass.pe_scheme u.Uclass.graph ~advice));
      Test.make ~name:"pe_verify_d4k1"
        (let r =
           Scheme.run_with_advice Uclass.pe_scheme u.Uclass.graph ~advice
         in
         stage (fun () -> Verify.port_election u.Uclass.graph r.Scheme.outputs));
    ]

(* --- E16-E22: layers, component H, class J --- *)

let bench_jclass =
  let p = { Jclass.mu = 3; k = 4; z_eff = 3 } in
  let j = Jclass.build p ~y:(Jclass.y_zero p) in
  Test.make_grouped ~name:"j_class"
    [
      Test.make ~name:"layer_l5_mu3"
        (stage (fun () ->
             let proto = Proto.create () in
             let _ = Layers.add proto ~mu:3 ~m:5 in
             Proto.build proto));
      Test.make ~name:"component_h_mu3_k4"
        (stage (fun () -> Component.standalone ~mu:3 ~k:4));
      Test.make ~name:"build_j_mu3_k4_z3"
        (stage (fun () -> Jclass.build p ~y:(Jclass.y_zero p)));
      Test.make ~name:"cppe_assignment"
        (stage (fun () -> Jclass.cppe_assignment j));
      Test.make ~name:"cppe_verify"
        (let answers = Jclass.cppe_assignment j in
         stage (fun () ->
             Verify.complete_port_path_election j.Jclass.graph answers));
    ]

(* --- E10/E15: fooling runs --- *)

let bench_fooling =
  let ga = Gclass.build { Gclass.delta = 4; k = 1 } ~i:2 in
  let gb = Gclass.build { Gclass.delta = 4; k = 1 } ~i:7 in
  let advice_g = Select_by_view.scheme.Scheme.oracle ga.Gclass.graph in
  Test.make_grouped ~name:"fooling"
    [
      Test.make ~name:"selection_fooled_run"
        (stage (fun () ->
             Scheme.run_with_advice Select_by_view.scheme gb.Gclass.graph
               ~advice:advice_g));
    ]

(* --- simulator throughput --- *)

let bench_sim =
  let g = Gen.random (Random.State.make [| 13 |]) 500 ~extra_edges:250 in
  Test.make_grouped ~name:"sim"
    [
      Test.make ~name:"full_info_3rounds_n500"
        (stage (fun () ->
             Shades_localsim.Full_info.run g ~rounds:3
               ~advice:Shades_bits.Bitstring.empty
               ~decide:(fun ~advice:_ v -> v.View_tree.degree)));
    ]

(* --- E25-E29 extensions: reconstruction, tradeoff, exact advice --- *)

let bench_extensions =
  let g = Gen.random (Random.State.make [| 21 |]) 40 ~extra_edges:20 in
  let n = Port_graph.order g in
  let ctx = Cview.create_ctx () in
  let deep = Cview.of_graph ctx g 0 ~depth:(Reconstruct.rounds_needed ~n) in
  let g_small = Gen.random (Random.State.make [| 22 |]) 10 ~extra_edges:5 in
  let p = { Uclass.delta = 4; k = 1 } in
  let ua = (Uclass.build p ~sigma:(Uclass.uniform_sigma p 1)).Uclass.graph in
  let ub = (Uclass.build p ~sigma:(Uclass.uniform_sigma p 2)).Uclass.graph in
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"cview_deep_n40"
        (stage (fun () ->
             let ctx = Cview.create_ctx () in
             Cview.of_graph ctx g 0 ~depth:(Reconstruct.rounds_needed ~n)));
      Test.make ~name:"reconstruct_n40"
        (stage (fun () -> Reconstruct.graph_of_cview ctx deep ~n));
      Test.make ~name:"canonical_order_n40"
        (stage (fun () -> Refinement.canonical_order g));
      Test.make ~name:"canonical_bfs_n40"
        (stage (fun () -> Port_graph.canonical g));
      Test.make ~name:"size_advice_cppe_n10"
        (stage (fun () ->
             Size_advice.run Size_advice.complete_port_path_election g_small));
      Test.make ~name:"async_flooding_n40"
        (stage (fun () ->
             Shades_localsim.Async_engine.run g
               ~advice:Shades_bits.Bitstring.empty
               {
                 Shades_localsim.Engine.init =
                   (fun ~degree ~advice:_ -> (degree, 3));
                 send = (fun (_, l) ~port:_ -> if l > 0 then Some () else None);
                 step = (fun (d, l) _ -> (d, l - 1));
                 output = (fun (d, l) -> if l <= 0 then Some d else None);
               }));
      Test.make ~name:"pe_sharable_u41"
        (stage (fun () -> Min_advice.pe_sharable ~depth:1 ua ub));
      Test.make ~name:"labelings_path5"
        (stage (fun () ->
             Gen.all_labelings 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]));
    ]

(* --- E30: labeled baselines --- *)

let bench_labeled =
  let module L = Shades_labeled.Model in
  let g = Gen.oriented_ring 64 in
  let desc = Array.init 64 (fun i -> 64 - i) in
  Test.make_grouped ~name:"labeled"
    [
      Test.make ~name:"lcr_worst_n64"
        (stage (fun () ->
             L.run g ~labels:desc Shades_labeled.Chang_roberts.algorithm));
      Test.make ~name:"hs_n64"
        (stage (fun () ->
             L.run g ~labels:desc
               Shades_labeled.Hirschberg_sinclair.algorithm));
      Test.make ~name:"peterson_n64"
        (stage (fun () ->
             L.run g ~labels:desc Shades_labeled.Peterson.algorithm));
    ]

let all_tests =
  Test.make_grouped ~name:"shades"
    [
      bench_index; bench_views; bench_gclass; bench_uclass; bench_jclass;
      bench_fooling; bench_sim; bench_extensions; bench_labeled;
    ]

let () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let results = Analyze.merge ols instances results in
  (* Plain-text report: time per run, by test. *)
  Printf.printf "%-48s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 66 '-');
  let clock = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) clock []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ols) ->
      let ns =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | _ -> nan
      in
      let pretty =
        if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Printf.printf "%-48s %16s\n" name pretty)
    rows
