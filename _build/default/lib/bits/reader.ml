type t = { src : Bitstring.t; mutable pos : int }

exception Out_of_bits

let of_bitstring src = { src; pos = 0 }

let remaining r = Bitstring.length r.src - r.pos

let bit r =
  if r.pos >= Bitstring.length r.src then raise Out_of_bits;
  let b = Bitstring.get r.src r.pos in
  r.pos <- r.pos + 1;
  b

let fixed r ~width =
  let v = ref 0 in
  for _ = 1 to width do
    v := (!v lsl 1) lor (if bit r then 1 else 0)
  done;
  !v

let unary r =
  let n = ref 0 in
  while bit r do
    incr n
  done;
  !n

let gamma r =
  let k = unary r + 1 in
  let tail = fixed r ~width:(k - 1) in
  (1 lsl (k - 1)) + tail - 1

let at_end r = remaining r = 0
