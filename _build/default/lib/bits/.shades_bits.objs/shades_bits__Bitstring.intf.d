lib/bits/bitstring.mli: Bytes Format
