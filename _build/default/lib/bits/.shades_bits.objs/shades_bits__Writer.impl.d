lib/bits/writer.ml: Bitstring Bytes Char
