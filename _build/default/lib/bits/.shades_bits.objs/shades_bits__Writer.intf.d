lib/bits/writer.mli: Bitstring
