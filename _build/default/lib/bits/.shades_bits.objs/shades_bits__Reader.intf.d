lib/bits/reader.mli: Bitstring
