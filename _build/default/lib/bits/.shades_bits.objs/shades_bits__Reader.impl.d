lib/bits/reader.ml: Bitstring
