lib/bits/bitstring.ml: Array Bytes Char Format List Stdlib String
