(** Append-only bit writer used by oracles to assemble advice strings. *)

type t

(** A fresh, empty writer. *)
val create : unit -> t

(** Bits written so far. *)
val length : t -> int

val bit : t -> bool -> unit

(** [fixed w ~width v] writes [v] in exactly [width] bits, MSB first.
    @raise Invalid_argument if [v < 0], [width < 0], or [v] does not fit. *)
val fixed : t -> width:int -> int -> unit

(** [unary w v] writes [v] ones followed by a zero. [v >= 0]. *)
val unary : t -> int -> unit

(** [gamma w v] writes [v >= 0] in Elias-gamma style
    (unary length of the binary form, then its bits), a self-delimiting code
    of 2⌊log2(v+1)⌋+1 bits. *)
val gamma : t -> int -> unit

(** Append a whole bitstring. *)
val bits : t -> Bitstring.t -> unit

(** The accumulated bitstring. The writer remains usable. *)
val contents : t -> Bitstring.t
