(** Sequential bit reader; the decoding counterpart of {!Writer}. *)

type t

(** Raised when a read runs past the end of the bitstring. *)
exception Out_of_bits

(** Start reading at bit 0. *)
val of_bitstring : Bitstring.t -> t

(** Bits not yet consumed. *)
val remaining : t -> int

val bit : t -> bool

(** [fixed r ~width] reads a [width]-bit MSB-first integer. *)
val fixed : t -> width:int -> int

(** Reads a {!Writer.unary}-coded integer. *)
val unary : t -> int

(** Reads a {!Writer.gamma}-coded integer. *)
val gamma : t -> int

(** True iff every bit has been consumed. *)
val at_end : t -> bool
