(* Bits are accumulated MSB-first directly into a growable byte buffer,
   mirroring Bitstring's packing, so [contents] is a cheap copy. *)

type t = { mutable bytes : Bytes.t; mutable len : int }

let create () = { bytes = Bytes.make 64 '\000'; len = 0 }

let length w = w.len

let ensure w bits =
  let needed = (w.len + bits + 7) / 8 in
  if needed > Bytes.length w.bytes then begin
    let grown = Bytes.make (max needed (2 * Bytes.length w.bytes)) '\000' in
    Bytes.blit w.bytes 0 grown 0 ((w.len + 7) / 8);
    w.bytes <- grown
  end

let bit w b =
  ensure w 1;
  if b then begin
    let i = w.len in
    let j = i / 8 in
    Bytes.set w.bytes j
      (Char.chr (Char.code (Bytes.get w.bytes j) lor (0x80 lsr (i mod 8))))
  end;
  w.len <- w.len + 1

let fixed w ~width v =
  if width < 0 then invalid_arg "Writer.fixed: negative width";
  if v < 0 then invalid_arg "Writer.fixed: negative value";
  if width < 63 && v lsr width <> 0 then
    invalid_arg "Writer.fixed: value does not fit";
  for i = width - 1 downto 0 do
    bit w (v lsr i land 1 = 1)
  done

let unary w v =
  if v < 0 then invalid_arg "Writer.unary";
  for _ = 1 to v do
    bit w true
  done;
  bit w false

let width_of v =
  (* Number of bits in the binary representation of [v + 1]. *)
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 (v + 1)

let gamma w v =
  if v < 0 then invalid_arg "Writer.gamma";
  let k = width_of v in
  unary w (k - 1);
  fixed w ~width:(k - 1) (v + 1 - (1 lsl (k - 1)))

let bits w b =
  for i = 0 to Bitstring.length b - 1 do
    bit w (Bitstring.get b i)
  done

let contents w = Bitstring.of_packed w.bytes w.len
