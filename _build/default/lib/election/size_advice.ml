module Port_graph = Shades_graph.Port_graph
module Paths = Shades_graph.Paths
module Reconstruct = Shades_views.Reconstruct
module Refinement = Shades_views.Refinement

type 'o t = {
  name : string;
  oracle : Port_graph.t -> Shades_bits.Bitstring.t;
  rounds_of : advice:Shades_bits.Bitstring.t -> degree:int -> int;
  decide :
    advice:Shades_bits.Bitstring.t -> Shades_views.Cview.ctx ->
    Shades_views.Cview.t -> 'o;
}

type 'o run = { outputs : 'o array; rounds : int; advice_bits : int }

let run_with_advice scheme g ~advice =
  let outputs, rounds =
    Shades_localsim.Compact_info.run_adaptive g ~advice
      ~rounds_of:scheme.rounds_of ~decide:scheme.decide
  in
  { outputs; rounds; advice_bits = Shades_bits.Bitstring.length advice }

let run scheme g = run_with_advice scheme g ~advice:(scheme.oracle g)

let oracle g =
  if not (Refinement.feasible g) then
    invalid_arg "Size_advice: infeasible graph";
  let w = Shades_bits.Writer.create () in
  Shades_bits.Writer.gamma w (Port_graph.order g);
  Shades_bits.Writer.contents w

let n_of advice =
  Shades_bits.Reader.gamma (Shades_bits.Reader.of_bitstring advice)

let rounds_of ~advice ~degree:_ = Reconstruct.rounds_needed ~n:(n_of advice)

(* Rebuild the map from my own deep view and canonicalize.  Feasible
   graphs are rigid (all views distinct, so no nontrivial
   automorphism), hence the canonical map and my position in it are the
   same no matter which node computes them. *)
let locate ~advice ctx view =
  let n = n_of advice in
  let local, me = Reconstruct.graph_of_cview ctx view ~n in
  match Refinement.canonical_order local with
  | Some perm -> (Port_graph.renumber local perm, perm.(me))
  | None -> invalid_arg "Size_advice: infeasible graph (advice cannot help)"

(* The canonical vertex 0 is the leader; everyone else routes to it by
   a BFS shortest path, which is simple. *)
let make name payload =
  {
    name;
    oracle;
    rounds_of;
    decide =
      (fun ~advice ctx view ->
        let map, me = locate ~advice ctx view in
        if me = 0 then Task.Leader
        else begin
          let walk = Option.get (Paths.shortest_path map me 0) in
          Task.Follower (payload map walk)
        end);
  }

let selection = make "size-advice S (time 2(n-1))" (fun _ _ -> ())

let port_election =
  make "size-advice PE (time 2(n-1))" (fun map walk ->
      List.hd (Paths.ports_of_walk map walk))

let port_path_election =
  make "size-advice PPE (time 2(n-1))" (fun map walk ->
      Paths.ports_of_walk map walk)

let complete_port_path_election =
  make "size-advice CPPE (time 2(n-1))" (fun map walk ->
      let rec group = function
        | [] -> []
        | p :: q :: rest -> (p, q) :: group rest
        | [ _ ] -> assert false
      in
      group (Paths.full_ports_of_walk map walk))
