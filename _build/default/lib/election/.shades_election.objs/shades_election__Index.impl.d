lib/election/index.ml: Array Int List Option Shades_graph Shades_views Task
