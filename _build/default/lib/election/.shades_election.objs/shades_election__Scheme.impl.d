lib/election/scheme.ml: Shades_bits Shades_graph Shades_localsim Shades_views
