lib/election/task.ml: Format
