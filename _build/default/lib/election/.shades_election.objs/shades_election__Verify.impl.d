lib/election/verify.ml: Array List Printf Result Shades_graph Task
