lib/election/map_advice.mli: Scheme Task
