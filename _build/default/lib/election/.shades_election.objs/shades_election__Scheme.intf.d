lib/election/scheme.mli: Shades_bits Shades_graph Shades_views
