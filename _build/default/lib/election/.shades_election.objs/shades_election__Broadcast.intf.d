lib/election/broadcast.mli: Shades_graph Task
