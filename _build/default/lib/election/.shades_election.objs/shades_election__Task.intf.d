lib/election/task.mli: Format
