lib/election/size_advice.mli: Shades_bits Shades_graph Shades_views Task
