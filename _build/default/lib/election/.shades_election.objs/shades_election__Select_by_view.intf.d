lib/election/select_by_view.mli: Scheme Shades_graph Task
