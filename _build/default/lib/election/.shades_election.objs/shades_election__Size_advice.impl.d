lib/election/size_advice.ml: Array List Option Shades_bits Shades_graph Shades_localsim Shades_views Task
