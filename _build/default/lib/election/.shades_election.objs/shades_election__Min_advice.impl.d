lib/election/min_advice.ml: Array Hashtbl List Option Shades_graph Shades_views String
