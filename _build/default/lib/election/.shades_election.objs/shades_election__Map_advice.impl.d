lib/election/map_advice.ml: Array Index Scheme Shades_graph Shades_views
