lib/election/verify.mli: Shades_graph Stdlib Task
