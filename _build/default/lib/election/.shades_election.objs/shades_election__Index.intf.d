lib/election/index.mli: Shades_graph Task
