lib/election/select_by_view.ml: List Scheme Shades_bits Shades_views Task
