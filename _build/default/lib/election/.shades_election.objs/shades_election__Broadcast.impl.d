lib/election/broadcast.ml: Array List Shades_graph Task
