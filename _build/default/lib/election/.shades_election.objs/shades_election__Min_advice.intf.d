lib/election/min_advice.mli: Shades_graph
