type kind = S | PE | PPE | CPPE

let all = [ S; PE; PPE; CPPE ]

let kind_to_string = function
  | S -> "S"
  | PE -> "PE"
  | PPE -> "PPE"
  | CPPE -> "CPPE"

type 'a answer = Leader | Follower of 'a

let answer_equal eq a b =
  match (a, b) with
  | Leader, Leader -> true
  | Follower x, Follower y -> eq x y
  | Leader, Follower _ | Follower _, Leader -> false

let pp_answer pp_payload fmt = function
  | Leader -> Format.pp_print_string fmt "leader"
  | Follower x -> pp_payload fmt x
