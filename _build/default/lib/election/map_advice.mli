(** Minimum-time schemes whose advice is the full map of the network.

    These realize the "knowing the map" algorithms that define the
    election indexes: the oracle encodes the whole port-labeled graph;
    each node recomputes, from the map alone, the depth k = ψ_Z and the
    same deterministic class-to-output assignment as {!Index.solve_s}
    (etc.), gathers [B^k], locates its own class among the map's
    vertices, and outputs that class's answer.

    Advice is Θ(m log n) bits — the expensive but task-agnostic
    baseline, against which Theorem 2.2's tiny Selection advice and the
    families' exponential lower bounds are contrasted. *)

(** @raise Invalid_argument (inside the oracle or decide) on infeasible
    graphs. *)
val selection : unit Task.answer Scheme.t

val port_election : int Task.answer Scheme.t
val port_path_election : int list Task.answer Scheme.t
val complete_port_path_election : (int * int) list Task.answer Scheme.t
