(** Anonymous broadcast from an elected leader.

    Section 1 argues that Selection — the weakest shade — already
    suffices "if the leader has to broadcast a message to all other
    nodes": the leader floods, and no node needs to know where the
    leader is.  This module runs that flood through the LOCAL engine on
    top of any Selection output and reports when every node received
    the payload. *)

type result = {
  received : bool array;  (** all true on success *)
  rounds : int;  (** = eccentricity of the leader *)
  messages : int;
}

(** [run g ~selection ~payload] floods [payload] from the node that
    answered [Leader] in [selection]; each node outputs once the flood
    reaches it (so the round count is exactly the leader's
    eccentricity).
    @raise Invalid_argument if [selection] does not contain exactly one
    leader. *)
val run :
  Shades_graph.Port_graph.t ->
  selection:unit Task.answer array ->
  payload:int ->
  result
