(** Exact election indexes ψ_Z(G) (Section 1 of the paper).

    For a feasible graph [G] and task [Z], ψ_Z(G) is the minimum number
    of rounds in which [Z] can be solved when nodes know the map of [G].
    After [k] rounds a node's knowledge is exactly [B^k], so a [k]-round
    algorithm is precisely a function from view classes to outputs; a
    task is [k]-solvable iff some node with a unique [B^k] can be chosen
    as leader and every other class admits a single output valid for
    {e all} of its members simultaneously.  The [solve_*] functions
    search for such an assignment (deterministically, smallest-first) and
    the [psi_*] functions scan depths for the least solvable one.

    The joint-path search for PPE/CPPE is exponential in class size; use
    these on small graphs (the paper's families have dedicated
    algorithms in [Shades_families]). *)

type vertex = Shades_graph.Port_graph.vertex

(** {1 Fixed-depth solvers}

    Each returns per-vertex answers of a correct [depth]-round algorithm
    (constant on view classes at that depth), or [None] if the task is
    not [depth]-solvable. *)

val solve_s :
  Shades_graph.Port_graph.t -> depth:int -> unit Task.answer array option

val solve_pe :
  Shades_graph.Port_graph.t -> depth:int -> int Task.answer array option

val solve_ppe :
  Shades_graph.Port_graph.t -> depth:int -> int list Task.answer array option

val solve_cppe :
  Shades_graph.Port_graph.t -> depth:int ->
  (int * int) list Task.answer array option

(** {1 Election indexes}

    [None] when the graph is infeasible (some views coincide forever). *)

val psi_s : Shades_graph.Port_graph.t -> int option
val psi_pe : Shades_graph.Port_graph.t -> int option
val psi_ppe : Shades_graph.Port_graph.t -> int option
val psi_cppe : Shades_graph.Port_graph.t -> int option

val psi : Task.kind -> Shades_graph.Port_graph.t -> int option

(** All four indexes at once (sharing the refinement). *)
val all : Shades_graph.Port_graph.t -> (Task.kind * int option) list
