module Port_graph = Shades_graph.Port_graph
module View_tree = Shades_views.View_tree

(* Each node independently recomputes the same deterministic solution
   from the map; anonymity is respected because a node locates itself in
   the map only up to view equivalence, and the solution is constant on
   view classes by construction. *)
let make name psi solve =
  let plan advice =
    let map = Port_graph.decode advice in
    match psi map with
    | None -> invalid_arg "Map_advice: infeasible graph"
    | Some k -> (map, k)
  in
  {
    Scheme.name;
    oracle = Port_graph.encode;
    rounds_of = (fun ~advice ~degree:_ -> snd (plan advice));
    decide =
      (fun ~advice view ->
        let map, k = plan advice in
        let answers =
          match solve map ~depth:k with
          | Some a -> a
          | None -> assert false (* k = ψ is solvable by definition *)
        in
        let rec find v =
          if v >= Port_graph.order map then
            invalid_arg "Map_advice: view not found in map"
          else if View_tree.equal (View_tree.of_graph map v ~depth:k) view
          then v
          else find (v + 1)
        in
        answers.(find 0));
  }

let selection = make "map-advice S" Index.psi_s Index.solve_s
let port_election = make "map-advice PE" Index.psi_pe Index.solve_pe

let port_path_election =
  make "map-advice PPE" Index.psi_ppe Index.solve_ppe

let complete_port_path_election =
  make "map-advice CPPE" Index.psi_cppe Index.solve_cppe
