(** The universal minimum-time Selection scheme of Theorem 2.2.

    Oracle: among the nodes whose augmented truncated view at depth
    ψ_S(G) is unique, pick the one with the lexicographically smallest
    view and encode that view as the advice.

    Algorithm: decode the view, read off its height [h] (= ψ_S(G)),
    gather [B^h] in [h] rounds, output leader iff it equals the advice.

    Advice size is O((∆-1)^{ψ_S} · log ∆) bits — polynomial in ∆: the
    cheap side of every separation in the paper. *)

(** The scheme. The oracle
    @raise Invalid_argument on an infeasible graph. *)
val scheme : unit Task.answer Scheme.t

(** [advice_bits g] is the advice length without running the algorithm. *)
val advice_bits : Shades_graph.Port_graph.t -> int
