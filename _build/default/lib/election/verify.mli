(** Oracle-side correctness checkers for the four tasks.

    Each checker takes a graph and the vertex-indexed answers of all
    nodes and returns the elected leader on success, or a human-readable
    reason on failure.  These are the referees for every algorithm and
    every fooling experiment in the repository. *)

type vertex = Shades_graph.Port_graph.vertex

type 'a result := (vertex, string) Stdlib.result

(** Exactly one node answers [Leader]. *)
val selection : Shades_graph.Port_graph.t -> unit Task.answer array -> 'a result

(** One leader; every other node outputs a port [p] such that the edge
    at [p] is the first edge of some simple path from it to the leader
    (equivalently, the far endpoint is the leader or reaches the leader
    in [G - v]). *)
val port_election : Shades_graph.Port_graph.t -> int Task.answer array -> 'a result

(** One leader; every other node's outgoing-port sequence traces a
    simple path in the graph ending at the leader. *)
val port_path_election :
  Shades_graph.Port_graph.t -> int list Task.answer array -> 'a result

(** One leader; every other node's [(p, q)] sequence traces a simple
    path whose arrival ports match [q] at every hop, ending at the
    leader. *)
val complete_port_path_election :
  Shades_graph.Port_graph.t -> (int * int) list Task.answer array -> 'a result
