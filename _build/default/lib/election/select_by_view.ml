module Refinement = Shades_views.Refinement
module View_tree = Shades_views.View_tree

let chosen_view g =
  match Refinement.min_unique_depth g with
  | None -> invalid_arg "Select_by_view: infeasible graph"
  | Some k ->
      let refinement = Refinement.compute g ~depth:k in
      let candidates = Refinement.singletons refinement ~depth:k in
      let views = List.map (fun v -> View_tree.of_graph g v ~depth:k) candidates in
      List.fold_left
        (fun best view ->
          if View_tree.compare view best < 0 then view else best)
        (List.hd views) (List.tl views)

let oracle g = View_tree.encode (chosen_view g)

let scheme =
  {
    Scheme.name = "select-by-view (Thm 2.2)";
    oracle;
    rounds_of =
      (fun ~advice ~degree:_ -> View_tree.height (View_tree.decode advice));
    decide =
      (fun ~advice view ->
        if View_tree.equal (View_tree.decode advice) view then Task.Leader
        else Task.Follower ());
  }

let advice_bits g = Shades_bits.Bitstring.length (oracle g)
