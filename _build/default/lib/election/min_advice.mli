(** Exact minimum advice for fixed-time Selection over a finite class.

    A [k]-round Selection algorithm is a function [f(advice, B^k)] into
    {leader, non-leader}; on a graph [G] it is correct iff the set of
    views it maps to "leader" intersects the view multiset of [G] in
    exactly one occurrence.  Two graphs can share an advice string iff a
    single such view set works for both, so the minimum number of
    distinct advice strings over a class is the minimum number of parts
    in a partition into "sharable" groups — computable exactly for the
    small instances of the paper's classes, and the tightness check for
    Theorem 2.9's pigeonhole: on G_{∆,k} every pair of class members
    conflicts, so all |G_{∆,k}| strings are needed. *)

(** [sharable ~depth graphs]: can one advice string serve a [depth]-round
    Selection algorithm on all of [graphs]?  Decided by choosing, per
    graph, a view that occurs exactly once in it, such that the chosen
    set intersects every graph's view multiset exactly once. *)
val sharable : depth:int -> Shades_graph.Port_graph.t list -> bool

(** [min_advice_strings ~depth graphs] is the minimum number of distinct
    advice strings any [depth]-round Selection scheme needs to cover all
    of [graphs] (exact set-partition DP over subsets; intended for at
    most ~15 graphs). *)
val min_advice_strings : depth:int -> Shades_graph.Port_graph.t list -> int

(** [bits_for count] is the minimum worst-case advice length (in bits)
    able to address [count] distinct strings, counting every string of
    length at most L: [2^{L+1} - 1] of them. *)
val bits_for : int -> int

(** [pe_sharable ~depth g1 g2]: can one advice string serve a
    [depth]-round Port Election algorithm on both graphs?  A PE
    algorithm maps each view to "leader" or a port; sharing requires a
    leader choice hitting each graph's view census exactly once and, for
    every other view, one port that starts a simple path to the chosen
    leader at {e every} occurrence of that view in {e both} graphs.
    Decided exactly (enumerating leader pairs, then intersecting valid
    port sets per view).  This is the engine of Theorem 3.11: any two
    U_{∆,k} members with different σ turn out unsharable, so the class
    needs as many strings as it has members. *)
val pe_sharable :
  depth:int -> Shades_graph.Port_graph.t -> Shades_graph.Port_graph.t -> bool
