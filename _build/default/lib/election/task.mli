(** The four formulations of leader election (Section 1 of the paper).

    - Selection (S): one node outputs leader, the rest non-leader.
    - Port Election (PE): each non-leader outputs the first port on a
      simple path from it to the leader.
    - Port Path Election (PPE): each non-leader outputs the sequence of
      outgoing ports along a simple path to the leader.
    - Complete Port Path Election (CPPE): each non-leader outputs the
      full sequence (p1, q1, ..., pk, qk) of both ports per edge. *)

type kind = S | PE | PPE | CPPE

(** All four, in increasing order of strength. *)
val all : kind list

val kind_to_string : kind -> string

(** A node's answer for a task whose non-leader payload has type ['a]:
    [unit] for S, [int] for PE, [int list] for PPE and
    [(int * int) list] for CPPE. *)
type 'a answer = Leader | Follower of 'a

val answer_equal : ('a -> 'a -> bool) -> 'a answer -> 'a answer -> bool

val pp_answer :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a answer -> unit
