(** The time-vs-advice tradeoff: all four shades with O(log n) advice.

    Sections 2-4 show that {e minimum-time} strong election needs advice
    exponential in ∆.  The paper's closing open question asks what
    happens when more time is allowed; these schemes give the classical
    upper-bound answer: with [2(n-1)] rounds, [gamma n] bits of advice
    (just the network size) suffice for {e every} shade.  Each node
    gathers [B^{2(n-1)}], rebuilds the whole map from its own view
    ({!Shades_views.Reconstruct}), canonicalizes it (feasible graphs are
    rigid, so every node obtains the same map and locates itself
    uniquely), and routes to the canonical vertex 0.

    Contrast: on U_{∆,k} at minimum time k, PE needs
    Ω((∆−1)^{(∆−2)(∆−1)^{k−1}} log ∆) advice bits; at time 2(n−1) it
    needs ⌈log n⌉ + O(1).

    Schemes run through {!Shades_localsim.Compact_info} (hash-consed
    views), so deep exchanges stay polynomial. *)

type 'o t = {
  name : string;
  oracle : Shades_graph.Port_graph.t -> Shades_bits.Bitstring.t;
  rounds_of : advice:Shades_bits.Bitstring.t -> degree:int -> int;
  decide :
    advice:Shades_bits.Bitstring.t -> Shades_views.Cview.ctx ->
    Shades_views.Cview.t -> 'o;
}

type 'o run = { outputs : 'o array; rounds : int; advice_bits : int }

val run : 'o t -> Shades_graph.Port_graph.t -> 'o run

val run_with_advice :
  'o t -> Shades_graph.Port_graph.t -> advice:Shades_bits.Bitstring.t -> 'o run

(** The four schemes.  The oracle raises [Invalid_argument] on
    infeasible graphs (no advice can help those). *)
val selection : unit Task.answer t

val port_election : int Task.answer t
val port_path_election : int list Task.answer t
val complete_port_path_election : (int * int) list Task.answer t
