type t = {
  mutable n : int;
  mutable edges :
    ((Shades_graph.Port_graph.vertex * int)
    * (Shades_graph.Port_graph.vertex * int))
    list;
}

let create () = { n = 0; edges = [] }

let fresh t =
  let v = t.n in
  t.n <- t.n + 1;
  v

let fresh_many t n = Array.init n (fun _ -> fresh t)

let link t e1 e2 = t.edges <- (e1, e2) :: t.edges

let order t = t.n

let build t = Shades_graph.Port_graph.of_edges t.n (List.rev t.edges)
