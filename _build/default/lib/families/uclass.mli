(** The class U_{∆,k} of Section 3: the Port Election lower bound.

    A template graph [U] hangs all trees [T_{j,b}] ([j] in [1..y] where
    [y = |T_{∆,k}| = (∆−1)^z], [b] in [{1,2}]) on a cycle of their
    roots, and attaches to each [r_{j,1}] and [r_{j,2}] (via a path of
    length [k+1] on port ∆) a "heavy" copy of [T_{j,1}] — the nodes
    [r_{j,1,1}], [r_{j,1,2}] of degree 2∆−1 — which also carries ∆−1
    decoy paths of length [k+1] on ports ∆..2∆−2.  A graph [G_σ] is
    obtained by swapping ports ∆−1 and ∆−1+σ_j at both heavy nodes of
    each [j]: the heavy node's first port towards the cycle becomes
    σ-dependent, but its view at depth [k] does not, so Port Election in
    minimum time ψ_PE = ψ_S = k (Lemma 3.9) needs the oracle to reveal
    essentially all of σ — advice Ω((∆−1)^{|T_{∆,k}|} log ∆)
    (Theorem 3.11). *)

type vertex = Shades_graph.Port_graph.vertex

type params = { delta : int; k : int }
(** Requires [delta >= 4] and [k >= 1]. *)

(** [y = |T_{∆,k}| = (∆−1)^{(∆−2)(∆−1)^{k−1}}]; [None] on overflow. *)
val num_trees : params -> int option

(** [log2 |U_{∆,k}|] where [|U_{∆,k}| = (∆−1)^y] (Fact 3.1). *)
val num_graphs_log2 : params -> float

type t = {
  params : params;
  sigma : int array;  (** σ, one entry in [1..∆−1] per tree index *)
  graph : Shades_graph.Port_graph.t;
  cycle_roots : vertex array array;
      (** [cycle_roots.(j-1).(b-1)] is [r_{j,b}] *)
  heavy : vertex array array;
      (** [heavy.(j-1).(c-1)] is [r_{j,1,c}] *)
}

(** [build params ~sigma] constructs [G_σ].
    @raise Invalid_argument if [|sigma| <> y] or entries leave
    [1..∆−1]. *)
val build : params -> sigma:int array -> t

(** [uniform_sigma params s] is the all-[s] sequence (σ with every
    [σ_j = s]), a convenient class member. *)
val uniform_sigma : params -> int -> int array

(** The node [r_min]: the cycle root whose [B^k] is lexicographically
    smallest — the leader that the Lemma 3.9 algorithm elects. *)
val rmin : t -> vertex

(** The minimum-time Port Election scheme of Lemma 3.9.  Advice is the
    full map; every node classifies itself by degree (light / cycle /
    heavy) and outputs its first port towards the leader.  Runs in
    exactly [k] rounds. *)
val pe_scheme : int Shades_election.Task.answer Shades_election.Scheme.t
