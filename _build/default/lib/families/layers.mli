(** Layer graphs L_0, ..., L_k of Section 4.1 (Part 1).

    [L_0] is a point, [L_1] a µ-clique, [L_{2j}] two full µ-ary trees of
    height [j] glued along their leaves (the "middle" nodes), and
    [L_{2j+1}] two such trees with corresponding leaves joined by an
    edge.  [L_j] has diameter [j].

    Nodes are addressed as [v^m_b σ]: starting from root [b] of layer
    [m] and following outgoing ports [σ].  In even layers the two
    addresses [(0, σ)] and [(1, σ)] of a middle node resolve to the same
    vertex. *)

type vertex = Shades_graph.Port_graph.vertex

type t = {
  mu : int;
  m : int;  (** layer index *)
  roots : vertex array;
      (** [r^m_0; r^m_1] for [m >= 2]; the µ clique nodes for [m = 1]
          (indexed by the port at [r^0_0] that will lead to them); the
          single node for [m = 0]. *)
  node : int -> int list -> vertex;
      (** [node b sigma] is [v^m_b σ].
          @raise Not_found for invalid addresses. *)
  middles : int list array;
      (** the middle-node addresses [σ] (empty for [m <= 1]) *)
}

(** Number of nodes of [L_m] (Fact 4.1). *)
val size : mu:int -> m:int -> int

(** [sigmas mu len]: all sequences over [0..µ−1] of length [len], in
    lexicographic order. *)
val sigmas : int -> int -> int list list

(** [add proto ~mu ~m] builds [L_m] into [proto].
    @raise Invalid_argument if [mu < 2] or [m < 0]. *)
val add : Proto.t -> mu:int -> m:int -> t

(** All valid [(b, σ)] addresses with [|σ| <= ⌊m/2⌋], deduplicated (for
    even-layer middles only the [b = 0] address is kept), sorted by the
    lexicographic order of [b :: σ] — the [w_1, ..., w_z] order used in
    Part 4 of the construction. *)
val w_order : t -> (int * int list) array
