(** Building blocks of Section 2.2.1, shared by the G and U classes.

    - Building Block 1: rooted tree [T] of height [k]; the root has
      ∆−2 children on ports 1..∆−2, internal nodes have ∆−1 children on
      ports 1..∆−1 and port 0 to the parent.
    - Building Block 2: augmented trees [T_X]: attach [x_i] pendant
      nodes (ports 1..x_i) to the i-th leaf, leaves ordered by the
      lexicographic order of root-to-leaf port sequences.
    - Building Block 3: [T_{X,1}] and [T_{X,2}]: append a path
      [r, p_1, ..., p_{k+1}] to the root (port 0 at [r] and at
      [p_{k+1}]; each interior [p_i] points to the next node with port 0
      and to the previous with port 1), variant 2 swapping the two ports
      at [p_k].

    Roots are left with ports [{0, ..., ∆−2}] used; the caller must
    attach exactly one more edge at port ∆−1 to reach degree ∆. *)

type vertex = Shades_graph.Port_graph.vertex

(** [z delta k = (∆−2)·(∆−1)^(k−1)], the number of leaves of [T]. *)
val z : delta:int -> k:int -> int

(** [sequence_of_index ~delta ~k j] is the sequence [X] of the [j]-th
    ([1]-based) augmented tree in lexicographic order; entries lie in
    [1..∆−1].
    @raise Invalid_argument if [j] is out of range [1..(∆−1)^z]. *)
val sequence_of_index : delta:int -> k:int -> int -> int array

(** [add_tree_t proto ~delta ~k] builds [T]; returns the root and the
    leaves in lexicographic order. *)
val add_tree_t : Proto.t -> delta:int -> k:int -> vertex * vertex array

(** [add_augmented proto ~delta ~k ~x] builds [T_X]; returns the root.
    @raise Invalid_argument if some [x.(i)] is outside [1..∆−1] or [x]
    has length other than [z]. *)
val add_augmented : Proto.t -> delta:int -> k:int -> x:int array -> vertex

(** [add_appended_path proto ~root ~k ~variant] appends the
    Building-Block-3 path at [root] (variant [1] or [2]). *)
val add_appended_path : Proto.t -> root:vertex -> k:int -> variant:int -> unit

(** [T_{X,variant}] in one call; returns the root [r_{X,variant}]. *)
val add_t_x_b :
  Proto.t -> delta:int -> k:int -> x:int array -> variant:int -> vertex
