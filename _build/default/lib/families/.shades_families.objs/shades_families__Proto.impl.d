lib/families/proto.ml: Array List Shades_graph
