lib/families/jclass.ml: Array Char Component Float Hashtbl List Option Proto Queue Shades_bits Shades_election Shades_graph Shades_views String
