lib/families/proto.mli: Shades_graph
