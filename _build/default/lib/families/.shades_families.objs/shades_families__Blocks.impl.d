lib/families/blocks.ml: Array List Proto Shades_graph
