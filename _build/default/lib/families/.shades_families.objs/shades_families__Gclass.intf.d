lib/families/gclass.mli: Shades_graph
