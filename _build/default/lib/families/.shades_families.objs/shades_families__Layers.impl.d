lib/families/layers.ml: Array Hashtbl List Proto Shades_graph Stdlib
