lib/families/layers.mli: Proto Shades_graph
