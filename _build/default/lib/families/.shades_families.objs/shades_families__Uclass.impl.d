lib/families/uclass.ml: Array Blocks Hashtbl List Option Proto Queue Shades_bits Shades_election Shades_graph Shades_views String
