lib/families/uclass.mli: Shades_election Shades_graph
