lib/families/component.mli: Layers Proto Shades_graph
