lib/families/component.ml: Array Layers List Proto Shades_graph
