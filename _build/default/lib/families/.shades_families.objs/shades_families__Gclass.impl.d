lib/families/gclass.ml: Array Blocks List Proto Shades_graph
