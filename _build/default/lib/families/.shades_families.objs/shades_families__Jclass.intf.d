lib/families/jclass.mli: Component Shades_election Shades_graph
