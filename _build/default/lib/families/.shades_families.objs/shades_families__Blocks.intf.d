lib/families/blocks.mli: Proto Shades_graph
