(** The component graph H of Section 4.1 (Part 2): layer graphs
    L_0, ..., L_{k−1} plus two copies of L_k (L_{k,1} and L_{k,2}),
    wired so that every node of H lies within distance [k] of every
    other, yet some layer-[k] pair [w_{ℓ,1}, w_{ℓ,2}] is at distance
    exactly [k] from any given node (Lemma 4.3) — which is where the
    gadget index is encoded in Part 4.

    The component's layer-0 node is supplied by the caller (in a gadget
    the four components share it as ρ), with a port offset so the four
    copies coexist. *)

type vertex = Shades_graph.Port_graph.vertex

type t = {
  mu : int;
  k : int;
  root : vertex;  (** the layer-0 node (ρ, within a gadget) *)
  layers : Layers.t array;  (** [layers.(m)] is L_m for m in 1..k−1 *)
  lk : Layers.t array;  (** [lk.(0)] = L_{k,1}, [lk.(1)] = L_{k,2} *)
  w : (vertex * vertex) array;
      (** [w.(q-1) = (w_{q,1}, w_{q,2})], the q-th layer-k node in each
          copy, in the Part 4 lexicographic order *)
  w_base_degree : int array;
      (** degree of [w_q] within H (before Part 4 adds edges) *)
}

(** Number of nodes of H including the shared root. *)
val size : mu:int -> k:int -> int

(** [z ~mu ~k] is |L_k|, the number of [w] pairs. *)
val z : mu:int -> k:int -> int

(** [add proto ~mu ~k ~root ~port_offset] builds the component, joining
    layer 1 to [root] on ports [port_offset .. port_offset+µ−1].
    Requires [mu >= 2] and [k >= 4]. *)
val add : Proto.t -> mu:int -> k:int -> root:vertex -> port_offset:int -> t

(** [standalone ~mu ~k] builds H alone (root port offset 0) — used to
    test Lemma 4.3 and Fact 4.1 directly. *)
val standalone : mu:int -> k:int -> Shades_graph.Port_graph.t * t
