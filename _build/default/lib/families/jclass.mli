(** The class J_{µ,k} of Section 4: the PPE/CPPE lower bound.

    A gadget Ĥ is four components H (called L, T, R, B) sharing their
    layer-0 node ρ (degree 4µ).  2^z gadgets (z = |L_k|) are chained:
    the binary representation of the gadget index is encoded by
    degree-raising edges at the layer-k pairs (w_{q,1}, w_{q,2}) of the
    T/L components (and of the successor index in B/R), and consecutive
    gadgets are joined by crossing edges between their R and L layer-k
    nodes.  A class member J_Y swaps, per bit of Y, the R/B port groups
    at a left-half ρ and the L/T groups at the mirrored right-half ρ.

    ψ_S = ψ_PPE = ψ_CPPE = k (Lemmas 4.7-4.9), yet advice
    Ω(2^{∆^{k/6}}) is needed for PPE/CPPE in minimum time
    (Theorems 4.11/4.12): a border node's k-view is Y-independent, so
    its port-path output cannot adapt to the swaps it must route
    through.

    {b Scaling substitution}: the full template has 2^z gadgets (2^17
    already at µ=3, k=4), so [build] takes [z_eff <= z] and chains
    2^[z_eff] gadgets, encoding indices in the first [z_eff] pairs
    (bit q of an index i < 2^{z_eff} is zero for q > z_eff, so this is
    the paper's rule verbatim on a shorter chain).  Properties local to
    gadgets and their neighbours are unaffected; only claims requiring
    the full index space (exact ψ_S = k for every node) need the full
    chain, and are tested on interior samples instead.

    {b Reproduction findings}: (1) the informal claim that every node of
    H sees all of H within distance [k] is false — layer-k nodes on
    opposite tree sides of the two L_k copies are at distance k+1; the
    W-decoding survives because each added edge raises the degrees of
    both [w_{q,1}] and [w_{q,2}] and every node sees at least one of
    each pair within [k] (verified computationally).  (2) For µ = 2 the
    ρ nodes are not the strict maximum-degree nodes (doubly-connected
    L_{k−1} middles reach degree 2µ+5 > 4µ when k is even, and tie at
    4µ = 8 when k is odd), so Lemma 4.8's first step needs µ >= 3 —
    consistent with Theorem 4.11's µ = ⌈∆/4⌉ >= 4. *)

type vertex = Shades_graph.Port_graph.vertex

type params = { mu : int; k : int; z_eff : int }
(** Requires [mu >= 3], [k >= 4], [1 <= z_eff <= z(mu, k)]. *)

(** [z ~mu ~k = |L_k|], the number of w-pairs per component. *)
val z : mu:int -> k:int -> int

(** Number of gadgets in the (possibly scaled) chain: 2^[z_eff]. *)
val num_gadgets : params -> int

(** log2 of the full class size: |J_{µ,k}| = 2^{2^{z−1}} (Fact 4.2), so
    this returns 2^{z−1} as a float. *)
val class_size_log2 : mu:int -> k:int -> float

type gadget = {
  rho : vertex;
  components : Component.t array;
      (** logical L, T, R, B at indices 0..3 (port groups at ρ reflect
          the Y swaps) *)
  first_vertex : vertex;
  last_vertex : vertex;
}

type t = {
  params : params;
  y : bool array;  (** length 2^{z_eff − 1} *)
  graph : Shades_graph.Port_graph.t;
  gadgets : gadget array;
}

(** [build params ~y] constructs J_Y (scaled to 2^{z_eff} gadgets).
    @raise Invalid_argument if [|y| <> 2^{z_eff − 1}]. *)
val build : params -> y:bool array -> t

(** The all-zeros Y (the template itself). *)
val y_zero : params -> bool array

(** Which gadget a vertex belongs to. *)
val gadget_of_vertex : t -> vertex -> int

(** [w_values t ~gadget] decodes, for each logical component (L, T, R,
    B), the integer written in its layer-k degrees, reading bit [q] from
    whichever of [w_{q,1}], [w_{q,2}] is convenient.  Expected: L and T
    encode the gadget index, R and B its successor (0 at the chain
    ends). *)
val w_values : t -> gadget:int -> int array

(** The Lemma 4.8 assignment: ρ of gadget 0 is the leader and every
    other node outputs the complete port path (its shortest path to its
    own ρ, merged into the inter-ρ chain).  Constant on depth-k view
    classes — checked by {!cppe_scheme}'s oracle. *)
val cppe_assignment : t -> (int * int) list Shades_election.Task.answer array

(** Minimum-time CPPE scheme for this instance: the advice is a table
    from canonical depth-k view keys to outputs (built from
    {!cppe_assignment}; the oracle raises if the assignment is not
    class-constant).  [decide] looks its own view up; unknown views
    (possible only under forced foreign advice in fooling experiments)
    yield the invalid empty route. *)
val cppe_scheme :
  t -> (int * int) list Shades_election.Task.answer Shades_election.Scheme.t
