(** Incremental graph construction with vertex allocation.

    The paper's families are assembled from building blocks whose nodes
    only reach their final, port-contiguous degree once every block is
    wired up; this helper accumulates vertices and port-labeled edges
    freely and validates once at {!build}. *)

type t

val create : unit -> t

(** Allocate a fresh vertex. *)
val fresh : t -> Shades_graph.Port_graph.vertex

(** Allocate [n] fresh vertices, returned in order. *)
val fresh_many : t -> int -> Shades_graph.Port_graph.vertex array

(** [link t (v, p) (u, q)] records the edge; duplicates and port clashes
    are caught at {!build}. *)
val link :
  t -> Shades_graph.Port_graph.vertex * int ->
  Shades_graph.Port_graph.vertex * int -> unit

(** Vertices allocated so far. *)
val order : t -> int

(** Validate and produce the graph.
    @raise Invalid_argument on port clashes, duplicate edges, or
    non-contiguous ports. *)
val build : t -> Shades_graph.Port_graph.t
