type vertex = Shades_graph.Port_graph.vertex

type params = { delta : int; k : int }

let check { delta; k } =
  if delta < 3 || k < 1 then
    invalid_arg "Gclass: need delta >= 3 and k >= 1"

let leaves_z p =
  check p;
  Blocks.z ~delta:p.delta ~k:p.k

let num_graphs p =
  let z = leaves_z p in
  let base = p.delta - 1 in
  (* (∆−1)^z with overflow detection. *)
  let rec go acc e =
    if e = 0 then Some acc
    else if acc > max_int / base then None
    else go (acc * base) (e - 1)
  in
  go 1 z

let num_graphs_log2 p =
  let z = leaves_z p in
  float_of_int z *. (log (float_of_int (p.delta - 1)) /. log 2.0)

type tree_meta = { j : int; b : int; copy : int; root : vertex }

type t = {
  params : params;
  i : int;
  graph : Shades_graph.Port_graph.t;
  cycle : vertex array;
  trees : tree_meta list;
  special_root : vertex;
}

let build ({ delta; k } as params) ~i =
  check params;
  (match num_graphs params with
  | Some count when i >= 1 && i <= count -> ()
  | Some _ -> invalid_arg "Gclass.build: i out of range"
  | None ->
      if i < 1 then invalid_arg "Gclass.build: i out of range");
  let proto = Proto.create () in
  let add_tree j b =
    let x = Blocks.sequence_of_index ~delta ~k j in
    Blocks.add_t_x_b proto ~delta ~k ~x ~variant:b
  in
  (* Hanging trees in cycle order: c_{4j−3} and c_{4j−2} carry the two
     copies of T_{j,1}; c_{4j−1} carries (the first copy of) T_{j,2};
     c_{4j'} carries the second copy of T_{j',2} for j' < i only, so the
     cycle has 4i−1 nodes and T_{i,2} is unique. *)
  let trees = ref [] in
  let attach_order = ref [] in
  for j = 1 to i do
    let r1 = add_tree j 1 in
    trees := { j; b = 1; copy = 1; root = r1 } :: !trees;
    let r2 = add_tree j 1 in
    trees := { j; b = 1; copy = 2; root = r2 } :: !trees;
    let r3 = add_tree j 2 in
    trees := { j; b = 2; copy = 1; root = r3 } :: !trees;
    if j < i then begin
      let r4 = add_tree j 2 in
      trees := { j; b = 2; copy = 2; root = r4 } :: !trees;
      attach_order := r4 :: r3 :: r2 :: r1 :: !attach_order
    end
    else attach_order := r3 :: r2 :: r1 :: !attach_order
  done;
  let attach_order = Array.of_list (List.rev !attach_order) in
  let m = (4 * i) - 1 in
  assert (Array.length attach_order = m);
  let cycle = Proto.fresh_many proto m in
  for idx = 0 to m - 1 do
    (* Cycle edge c_m -- c_{m+1}: 0 at c_m, 1 at c_{m+1}. *)
    Proto.link proto (cycle.(idx), 0) (cycle.((idx + 1) mod m), 1);
    (* Tree edge: port 2 at the cycle node, ∆−1 at the root. *)
    Proto.link proto (cycle.(idx), 2) (attach_order.(idx), delta - 1)
  done;
  let special_root =
    (List.find (fun t -> t.j = i && t.b = 2) !trees).root
  in
  {
    params;
    i;
    graph = Proto.build proto;
    cycle;
    trees = List.rev !trees;
    special_root;
  }
