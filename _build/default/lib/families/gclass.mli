(** The class G_{∆,k} of Section 2.2: the Selection lower bound.

    Each graph [G_i] (for [i] in [1..(∆−1)^z]) is a cycle [C_i] of
    [4i−1] nodes, each cycle node carrying one hanging tree: two copies
    of [T_{j,1}] and two of [T_{j,2}] for the smaller indices, but only
    {e one} copy of [T_{i,2}] — whose root [r_{i,2}] is therefore the
    unique node with a unique view at depth [k] (Lemma 2.6), making
    ψ_S(G_i) = k (Lemma 2.7) while distinguishing the graphs requires
    advice Ω((∆−1)^k log ∆) (Theorem 2.9).

    {b Reproduction finding}: the paper's Lemma 2.6 case analysis omits
    the non-root nodes of [T_{i,2}].  For [i >= 2] they have twins (the
    augmented-tree part in the copies of [T_{i,1}], the appended path in
    the duplicated [T_{j,2}] with [j < i]), so the lemma holds; but in
    the degenerate [G_1] no other variant-2 tree exists and the
    appended-path nodes of [T_{1,2}] can see the port swap at [p_k]
    within distance [k−1], giving ψ_S(G_1) = 1 for every [k].  We
    verified this computationally; all lemma-level guarantees therefore
    apply to [i >= 2] only (which leaves (∆−1)^z − 1 graphs and does not
    affect the asymptotic lower bound). *)

type vertex = Shades_graph.Port_graph.vertex

type params = { delta : int; k : int }
(** Requires [delta >= 3] and [k >= 1]. *)

(** Number of leaves [z = (∆−2)(∆−1)^{k−1}] of the underlying tree. *)
val leaves_z : params -> int

(** [|T_{∆,k}| = |G_{∆,k}| = (∆−1)^z] (Fact 2.3); [None] when it
    overflows the native integer range. *)
val num_graphs : params -> int option

(** [log2 |G_{∆,k}|], always computable. *)
val num_graphs_log2 : params -> float

(** Metadata of one hanging tree instance inside a built [G_i]. *)
type tree_meta = {
  j : int;  (** tree index, 1-based *)
  b : int;  (** variant: 1 or 2 *)
  copy : int;  (** 1 or 2 (the sole [T_{i,2}] is copy 1) *)
  root : vertex;  (** the node [r_{j,b}] of this instance *)
}

type t = {
  params : params;
  i : int;
  graph : Shades_graph.Port_graph.t;
  cycle : vertex array;  (** [cycle.(m-1)] is [c_m], [m] in [1..4i−1] *)
  trees : tree_meta list;
  special_root : vertex;  (** [r_{i,2}]: the unique-view node *)
}

(** [build params ~i] constructs [G_i].
    @raise Invalid_argument if [i] is outside [1..(∆−1)^z]. *)
val build : params -> i:int -> t
