type vertex = Shades_graph.Port_graph.vertex

type t = {
  mu : int;
  k : int;
  root : vertex;
  layers : Layers.t array;
  lk : Layers.t array;
  w : (vertex * vertex) array;
  w_base_degree : int array;
}

let z ~mu ~k = Layers.size ~mu ~m:k

let size ~mu ~k =
  let rec sum m acc =
    if m = k then acc else sum (m + 1) (acc + Layers.size ~mu ~m)
  in
  sum 0 0 + (2 * Layers.size ~mu ~m:k)

(* Inter-layer edges from L_m to L_{m+1} for 2 <= m <= k-1 (Part 2).
   [t] selects the copy when L_m is the top inner layer feeding the two
   copies of L_k: the second copy's ports at L_m nodes are shifted past
   those of the first so they do not clash. *)
let connect proto ~mu ~m (lower : Layers.t) (upper : Layers.t) ~t =
  assert (m >= 2);
  (* Roots. *)
  for b = 0 to 1 do
    Proto.link proto
      (lower.Layers.node b [], mu + 1 + t)
      (upper.Layers.node b [], mu)
  done;
  (* Interior (non-root, non-middle) nodes. *)
  let interior_len = (m / 2) - 1 in
  for b = 0 to 1 do
    for len = 1 to interior_len do
      List.iter
        (fun sigma ->
          Proto.link proto
            (lower.Layers.node b sigma, mu + 2 + t)
            (upper.Layers.node b sigma, mu + 1))
        (Layers.sigmas mu len)
    done
  done;
  (* Middles. *)
  if m mod 2 = 0 then begin
    (* Case 1: each glued middle reaches both trees of L_{m+1}. *)
    let base = if m = 2 then 3 else 4 in
    Array.iter
      (fun sigma ->
        let v = lower.Layers.node 0 sigma in
        Proto.link proto
          (v, base + (2 * t))
          (upper.Layers.node 0 sigma, 2);
        Proto.link proto
          (v, base + (2 * t) + 1)
          (upper.Layers.node 1 sigma, 2))
      lower.Layers.middles
  end
  else begin
    (* Case 2: each leaf reaches its copy and fans out to the µ middles
       of L_{m+1} below it. *)
    let shift = t * (mu + 1) in
    Array.iter
      (fun sigma ->
        for b = 0 to 1 do
          let v = lower.Layers.node b sigma in
          Proto.link proto (v, 3 + shift)
            (upper.Layers.node b sigma, mu + 1);
          for i = 0 to mu - 1 do
            Proto.link proto
              (v, 4 + shift + i)
              (upper.Layers.node b (sigma @ [ i ]), if b = 0 then 2 else 3)
          done
        done)
      lower.Layers.middles
  end

let add proto ~mu ~k ~root ~port_offset =
  if mu < 2 || k < 4 then invalid_arg "Component.add: need mu >= 2, k >= 4";
  let layers =
    Array.init k (fun m ->
        if m = 0 then
          {
            Layers.mu;
            m = 0;
            roots = [| root |];
            node = (fun _ _ -> root);
            middles = [||];
          }
        else Layers.add proto ~mu ~m)
  in
  let lk = Array.init 2 (fun _ -> Layers.add proto ~mu ~m:k) in
  (* L_0 -- L_1: the root fans out to the clique. *)
  Array.iteri
    (fun i u -> Proto.link proto (root, port_offset + i) (u, mu - 1))
    layers.(1).Layers.roots;
  (* L_1 -- L_2: clique node i to middle (i); the extreme clique nodes
     also reach the two roots of L_2. *)
  let u = layers.(1).Layers.roots in
  for i = 0 to mu - 1 do
    Proto.link proto (u.(i), mu) (layers.(2).Layers.node 0 [ i ], 2)
  done;
  Proto.link proto (u.(0), mu + 1) (layers.(2).Layers.node 0 [], mu);
  Proto.link proto (u.(mu - 1), mu + 1) (layers.(2).Layers.node 1 [], mu);
  (* Inner layers. *)
  for m = 2 to k - 2 do
    connect proto ~mu ~m layers.(m) layers.(m + 1) ~t:0
  done;
  (* L_{k-1} feeds both copies of L_k. *)
  connect proto ~mu ~m:(k - 1) layers.(k - 1) lk.(0) ~t:0;
  connect proto ~mu ~m:(k - 1) layers.(k - 1) lk.(1) ~t:1;
  (* The w_1, ..., w_z order over layer-k nodes. *)
  let order = Layers.w_order lk.(0) in
  let w =
    Array.map
      (fun (b, sigma) ->
        (lk.(0).Layers.node b sigma, lk.(1).Layers.node b sigma))
      order
  in
  let max_len = k / 2 in
  let w_base_degree =
    Array.map
      (fun (_, sigma) ->
        let len = List.length sigma in
        if len = 0 then mu + 1
        else if len < max_len then mu + 2
        else if k mod 2 = 0 then 4
        else 3)
      order
  in
  { mu; k; root; layers; lk; w; w_base_degree }

let standalone ~mu ~k =
  let proto = Proto.create () in
  let root = Proto.fresh proto in
  let c = add proto ~mu ~k ~root ~port_offset:0 in
  (Proto.build proto, c)
