type vertex = Shades_graph.Port_graph.vertex

let ipow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  if e < 0 then invalid_arg "Blocks.ipow" else go 1 e

let z ~delta ~k =
  if delta < 3 || k < 1 then invalid_arg "Blocks.z: need delta >= 3, k >= 1";
  (delta - 2) * ipow (delta - 1) (k - 1)

let sequence_of_index ~delta ~k j =
  let z = z ~delta ~k in
  let base = delta - 1 in
  let count = ipow base z in
  if j < 1 || j > count then invalid_arg "Blocks.sequence_of_index";
  (* Lexicographic order on sequences over 1..∆−1 is numeric order of
     (x_i - 1) read as a base-(∆−1) numeral, most significant first. *)
  let x = Array.make z 1 in
  let rec fill rem i =
    if i >= 0 then begin
      x.(i) <- (rem mod base) + 1;
      fill (rem / base) (i - 1)
    end
  in
  fill (j - 1) (z - 1);
  x

let add_tree_t proto ~delta ~k =
  if delta < 3 || k < 1 then invalid_arg "Blocks.add_tree_t";
  let leaves = ref [] in
  let root = Proto.fresh proto in
  (* DFS in increasing port order enumerates leaves lexicographically. *)
  let rec grow v depth ports =
    if depth = k then leaves := v :: !leaves
    else
      List.iter
        (fun p ->
          let c = Proto.fresh proto in
          Proto.link proto (v, p) (c, 0);
          grow c (depth + 1) (List.init (delta - 1) (fun i -> i + 1)))
        ports
  in
  grow root 0 (List.init (delta - 2) (fun i -> i + 1));
  (root, Array.of_list (List.rev !leaves))

let add_augmented proto ~delta ~k ~x =
  let root, leaves = add_tree_t proto ~delta ~k in
  if Array.length x <> Array.length leaves then
    invalid_arg "Blocks.add_augmented: |x| <> z";
  Array.iteri
    (fun i xi ->
      if xi < 1 || xi > delta - 1 then
        invalid_arg "Blocks.add_augmented: x_i out of range";
      for p = 1 to xi do
        let pendant = Proto.fresh proto in
        Proto.link proto (leaves.(i), p) (pendant, 0)
      done)
    x;
  root

let add_appended_path proto ~root ~k ~variant =
  if variant <> 1 && variant <> 2 then
    invalid_arg "Blocks.add_appended_path: variant must be 1 or 2";
  let path = Proto.fresh_many proto (k + 1) in
  (* path.(i-1) is p_i for i in 1..k+1. *)
  let p i = if i = 0 then root else path.(i - 1) in
  for i = 0 to k do
    (* Edge p_i -- p_{i+1}.  Default: 0 towards the next node, 1 towards
       the previous; the two path endpoints (root side handled by the
       caller's numbering, far side p_{k+1}) use port 0; variant 2 swaps
       the two ports at p_k. *)
    let port_at_src =
      (* port at p_i on the edge towards p_{i+1} *)
      if i = 0 then 0 (* port 0 at the root *)
      else if variant = 2 && i = k then 1 (* swapped at p_k *)
      else 0
    in
    let port_at_dst =
      (* port at p_{i+1} on the edge towards p_i *)
      if i = k then 0 (* p_{k+1} has degree 1, port 0 *)
      else if variant = 2 && i = k - 1 then 0 (* swapped at p_k *)
      else 1
    in
    Proto.link proto (p i, port_at_src) (p (i + 1), port_at_dst)
  done

let add_t_x_b proto ~delta ~k ~x ~variant =
  let root = add_augmented proto ~delta ~k ~x in
  add_appended_path proto ~root ~k ~variant;
  root
