type vertex = Shades_graph.Port_graph.vertex

type t = {
  mu : int;
  m : int;
  roots : vertex array;
  node : int -> int list -> vertex;
  middles : int list array;
}

let ipow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let size ~mu ~m =
  if mu < 2 || m < 0 then invalid_arg "Layers.size";
  if m = 0 then 1
  else if m = 1 then mu
  else begin
    let j = m / 2 in
    if m mod 2 = 0 then (ipow mu (j + 1) + ipow mu j - 2) / (mu - 1)
    else 2 * (ipow mu (j + 1) - 1) / (mu - 1)
  end

(* All σ over {0..µ−1} with |σ| = len, in lexicographic order. *)
let sigmas mu len =
  let rec go len =
    if len = 0 then [ [] ]
    else
      List.concat_map
        (fun sigma -> List.init mu (fun c -> sigma @ [ c ]))
        (go (len - 1))
  in
  go len

let add proto ~mu ~m =
  if mu < 2 || m < 0 then invalid_arg "Layers.add";
  let tbl : (int * int list, vertex) Hashtbl.t = Hashtbl.create 64 in
  let register b sigma v = Hashtbl.replace tbl (b, sigma) v in
  let node b sigma = Hashtbl.find tbl (b, sigma) in
  let middles = ref [] in
  let roots =
    if m = 0 then begin
      let v = Proto.fresh proto in
      register 0 [] v;
      register 1 [] v;
      [| v |]
    end
    else if m = 1 then begin
      (* µ-clique; at node i the port towards node i' is the index of i'
         among the others, using ports 0..µ−2. *)
      let us = Proto.fresh_many proto mu in
      let port i i' = if i' < i then i' else i' - 1 in
      for i = 0 to mu - 1 do
        register 0 [ i ] us.(i);
        register 1 [ i ] us.(i);
        for i' = i + 1 to mu - 1 do
          Proto.link proto (us.(i), port i i') (us.(i'), port i' i)
        done
      done;
      us
    end
    else begin
      let j = m / 2 in
      let even = m mod 2 = 0 in
      let leaf_len = if even then j else (m - 1) / 2 in
      (* Internal tree nodes (|σ| < leaf_len) exist separately in both
         trees; build them top-down. *)
      let r0 = Proto.fresh proto and r1 = Proto.fresh proto in
      register 0 [] r0;
      register 1 [] r1;
      for b = 0 to 1 do
        for len = 1 to leaf_len - 1 do
          List.iter
            (fun sigma -> register b sigma (Proto.fresh proto))
            (sigmas mu len)
        done
      done;
      (* Leaf/middle nodes. *)
      List.iter
        (fun sigma ->
          if even then begin
            (* one merged node for both trees *)
            let v = Proto.fresh proto in
            register 0 sigma v;
            register 1 sigma v
          end
          else begin
            register 0 sigma (Proto.fresh proto);
            register 1 sigma (Proto.fresh proto)
          end;
          middles := sigma :: !middles)
        (sigmas mu leaf_len);
      (* Tree edges: parent (b,σ) -- child (b,σ+[c]) on port c at the
         parent; at the child, port µ if internal, else port 0 for a
         plain leaf, or port b for a glued middle. *)
      for b = 0 to 1 do
        for len = 0 to leaf_len - 1 do
          List.iter
            (fun sigma ->
              let parent = node b sigma in
              for c = 0 to mu - 1 do
                let child_sigma = sigma @ [ c ] in
                let child = node b child_sigma in
                let child_port =
                  if List.length child_sigma < leaf_len then mu
                  else if even then b
                  else 0
                in
                Proto.link proto (parent, c) (child, child_port)
              done)
            (sigmas mu len)
        done
      done;
      (* Odd layers: join corresponding leaves, both ports 1. *)
      if not even then
        List.iter
          (fun sigma ->
            Proto.link proto (node 0 sigma, 1) (node 1 sigma, 1))
          (sigmas mu leaf_len);
      [| r0; r1 |]
    end
  in
  { mu; m; roots; node; middles = Array.of_list (List.rev !middles) }

let w_order t =
  if t.m < 2 then invalid_arg "Layers.w_order: need m >= 2";
  let max_len = t.m / 2 in
  let even = t.m mod 2 = 0 in
  let addrs = ref [] in
  for b = 0 to 1 do
    for len = 0 to max_len do
      (* An even-layer middle has two addresses; keep only (0, σ). *)
      if not (even && b = 1 && len = max_len) then
        List.iter
          (fun sigma -> addrs := (b, sigma) :: !addrs)
          (sigmas t.mu len)
    done
  done;
  let arr = Array.of_list !addrs in
  Array.sort
    (fun (b1, s1) (b2, s2) -> Stdlib.compare (b1 :: s1) (b2 :: s2))
    arr;
  arr
