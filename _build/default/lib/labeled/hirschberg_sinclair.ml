module Task = Shades_election.Task

type msg =
  | Probe of { label : int; phase : int; ttl : int }
  | Reply of { label : int; phase : int }
  | Won of int

type candidate = { phase : int; got_cw : bool; got_ccw : bool }

type mode = Candidate of candidate | Lost | Leader

type state = {
  label : int;
  mode : mode;
  outq : msg list array; (* per-port FIFO outboxes *)
  answer : int Task.answer option;
}

(* A message that arrived on port [p] continues in the same direction by
   leaving on the other port, and reverses by leaving on [p] itself. *)
let forward st ~port m =
  st.outq.(1 - port) <- st.outq.(1 - port) @ [ m ];
  st

let reverse st ~port m =
  st.outq.(port) <- st.outq.(port) @ [ m ];
  st

let launch_probes st ~phase =
  let probe = Probe { label = st.label; phase; ttl = 1 lsl phase } in
  st.outq.(0) <- st.outq.(0) @ [ probe ];
  st.outq.(1) <- st.outq.(1) @ [ probe ];
  st

let algorithm =
  {
    Model.init =
      (fun ~label ~degree ->
        if degree <> 2 then invalid_arg "Hirschberg_sinclair: ring only";
        launch_probes
          {
            label;
            mode = Candidate { phase = 0; got_cw = false; got_ccw = false };
            outq = [| []; [] |];
            answer = None;
          }
          ~phase:0);
    send =
      (fun st ~port ->
        match st.outq.(port) with m :: _ -> Some m | [] -> None);
    step =
      (fun st inbox ->
        (* pop the heads that were just sent (outq is mutable state
           shared across rounds: copy first) *)
        let st =
          {
            st with
            outq =
              Array.map
                (function [] -> [] | _ :: t -> t)
                st.outq;
          }
        in
        List.fold_left
          (fun st (port, m) ->
            match m with
            | Won l ->
                if st.answer = Some Task.Leader then st
                else
                  forward
                    { st with answer = Some (Task.Follower l) }
                    ~port (Won l)
            | Probe { label = l; phase; ttl } ->
                if l = st.label then begin
                  (* my probe went the whole way around *)
                  forward
                    { st with mode = Leader; answer = Some Task.Leader }
                    ~port (Won st.label)
                end
                else if l > st.label then begin
                  let st = { st with mode = Lost } in
                  if ttl > 1 then
                    forward st ~port (Probe { label = l; phase; ttl = ttl - 1 })
                  else reverse st ~port (Reply { label = l; phase })
                end
                else st (* swallow *)
            | Reply { label = l; phase } -> (
                if l <> st.label then forward st ~port (Reply { label = l; phase })
                else
                  match st.mode with
                  | Candidate c ->
                      (* the reply to my clockwise probe returns on port 0 *)
                      let c =
                        if port = 0 then { c with got_cw = true }
                        else { c with got_ccw = true }
                      in
                      if c.got_cw && c.got_ccw && phase = c.phase then
                        launch_probes
                          {
                            st with
                            mode =
                              Candidate
                                {
                                  phase = c.phase + 1;
                                  got_cw = false;
                                  got_ccw = false;
                                };
                          }
                          ~phase:(c.phase + 1)
                      else { st with mode = Candidate c }
                  | Lost | Leader -> st))
          st inbox);
    output = (fun st -> st.answer);
  }
