module Task = Shades_election.Task

type msg = One of int | Two of int | Won of int

type mode =
  | Active of { tid : int; first : int option }
  | Relay

type state = {
  label : int;
  mode : mode;
  queue : msg list; (* FIFO clockwise outbox (port 0) *)
  answer : int Task.answer option;
}

let enqueue st m = { st with queue = st.queue @ [ m ] }

let algorithm =
  {
    Model.init =
      (fun ~label ~degree ->
        if degree <> 2 then invalid_arg "Peterson: ring only";
        {
          label;
          mode = Active { tid = label; first = None };
          queue = [ One label ];
          answer = None;
        });
    send =
      (fun st ~port ->
        if port = 0 then
          match st.queue with m :: _ -> Some m | [] -> None
        else None);
    step =
      (fun st inbox ->
        let st =
          { st with queue = (match st.queue with [] -> [] | _ :: t -> t) }
        in
        List.fold_left
          (fun st (port, m) ->
            if port <> 1 then st
            else begin
              match (st.mode, m) with
              | _, Won l ->
                  if st.answer = Some Task.Leader then st (* full circle *)
                  else
                    enqueue
                      { st with answer = Some (Task.Follower l) }
                      (Won l)
              | Active a, One t ->
                  if t = a.tid then
                    (* my id survived the whole circle: leader; announce
                       my original label *)
                    enqueue { st with answer = Some Task.Leader }
                      (Won st.label)
                  else
                    enqueue
                      { st with mode = Active { a with first = Some t } }
                      (Two t)
              | Active { tid; first = Some t1 }, Two t2 ->
                  if t1 > tid && t1 > t2 then
                    enqueue
                      { st with mode = Active { tid = t1; first = None } }
                      (One t1)
                  else { st with mode = Relay }
              | Active { first = None; _ }, Two _ ->
                  invalid_arg "Peterson: Two before One"
              | Relay, m -> enqueue st m
            end)
          st inbox);
    output = (fun st -> st.answer);
  }
