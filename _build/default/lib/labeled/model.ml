module Port_graph = Shades_graph.Port_graph

type ('state, 'msg, 'output) algorithm = {
  init : label:int -> degree:int -> 'state;
  send : 'state -> port:int -> 'msg option;
  step : 'state -> (int * 'msg) list -> 'state;
  output : 'state -> 'output option;
}

type 'output result = { outputs : 'output array; rounds : int; messages : int }

exception Did_not_terminate of int

let run ?max_rounds g ~labels alg =
  let n = Port_graph.order g in
  if Array.length labels <> n then invalid_arg "Labeled.run: wrong label count";
  let seen = Hashtbl.create n in
  Array.iter
    (fun l ->
      if Hashtbl.mem seen l then invalid_arg "Labeled.run: duplicate labels";
      Hashtbl.add seen l ())
    labels;
  let max_rounds =
    match max_rounds with
    | Some m -> m
    | None ->
        let rec log2 x = if x <= 1 then 0 else 1 + log2 (x / 2) in
        (4 * n * (log2 n + 2)) + 16
  in
  let states =
    Array.init n (fun v ->
        alg.init ~label:labels.(v) ~degree:(Port_graph.degree g v))
  in
  let outputs = Array.map alg.output states in
  let all_decided () = Array.for_all Option.is_some outputs in
  let rounds = ref 0 in
  let messages = ref 0 in
  while (not (all_decided ())) && !rounds < max_rounds do
    incr rounds;
    let inboxes = Array.make n [] in
    for v = 0 to n - 1 do
      for p = 0 to Port_graph.degree g v - 1 do
        match alg.send states.(v) ~port:p with
        | None -> ()
        | Some m ->
            incr messages;
            let u, q = Port_graph.neighbor g v p in
            inboxes.(u) <- (q, m) :: inboxes.(u)
      done
    done;
    for v = 0 to n - 1 do
      let inbox =
        List.sort (fun (p, _) (q, _) -> Int.compare p q) inboxes.(v)
      in
      states.(v) <- alg.step states.(v) inbox;
      outputs.(v) <- alg.output states.(v)
    done
  done;
  if not (all_decided ()) then raise (Did_not_terminate !rounds);
  {
    outputs = Array.map Option.get outputs;
    rounds = !rounds;
    messages = !messages;
  }
