(** Hirschberg–Sinclair bidirectional ring election — O(n log n)
    messages.

    In phase k, every still-candidate node probes 2^k hops in both
    directions; probes are swallowed by larger labels and otherwise
    reflected back as replies, and a candidate enters phase k+1 only
    after both replies return.  A probe completing the full circle
    identifies the leader (the maximum label), which then circulates the
    announcement.  This is the classical O(n log n) comparison-based
    algorithm of [28] whose optimality [19] proves (paper, Related
    Work).

    Ring convention as in {!Chang_roberts} (port 0 = successor). *)

type state
type msg

val algorithm : (state, msg, int Shades_election.Task.answer) Model.algorithm
