(** Flooding maximum-label election on arbitrary labeled networks.

    Every node repeatedly broadcasts the largest label it has heard;
    after n rounds (n given — standard knowledge for this algorithm) the
    maximum has flooded everywhere and its owner becomes the leader.
    This realizes Section 1's remark that in labeled networks the strong
    version costs little more than the weak one: the announcement {e is}
    the elected label.

    Messages: O(m) per improvement wave, O(m·diameter) total —
    linear-ish in practice, against the anonymous world where strong
    election needs structural advice. *)

type state
type msg

(** [algorithm ~n] for an [n]-node network. *)
val algorithm :
  n:int -> (state, msg, int Shades_election.Task.answer) Model.algorithm
