(** Synchronous execution for {e labeled} networks.

    The paper's Section 1 contrasts anonymous election with the labeled
    case, where "once a node knows that it is a leader, it can simply
    broadcast its identifier", and its Related Work surveys the classic
    ring algorithms with their O(n log n) message bounds.  This engine
    is the anonymous {!Shades_localsim.Engine} with one change: [init]
    receives the node's distinct label.  Message complexity — the
    measure of those classic results — is reported per run. *)

type ('state, 'msg, 'output) algorithm = {
  init : label:int -> degree:int -> 'state;
  send : 'state -> port:int -> 'msg option;
  step : 'state -> (int * 'msg) list -> 'state;
  output : 'state -> 'output option;
}

type 'output result = { outputs : 'output array; rounds : int; messages : int }

exception Did_not_terminate of int

(** [run g ~labels alg] executes [alg]; [labels.(v)] must be distinct.
    [max_rounds] defaults to [4·n·(⌈log2 n⌉ + 2) + 16] — phase-based
    ring algorithms relayed around the whole cycle need up to
    Θ(n log n) rounds.
    @raise Invalid_argument on duplicate labels. *)
val run :
  ?max_rounds:int ->
  Shades_graph.Port_graph.t ->
  labels:int array ->
  ('state, 'msg, 'output) algorithm ->
  'output result
