module Task = Shades_election.Task

type msg = int

type state = {
  label : int;
  best : int;
  fresh : bool; (* did [best] improve last round? then broadcast *)
  rounds_left : int;
}

let algorithm ~n =
  {
    Model.init =
      (fun ~label ~degree:_ ->
        { label; best = label; fresh = true; rounds_left = n });
    send = (fun st ~port:_ -> if st.fresh then Some st.best else None);
    step =
      (fun st inbox ->
        let incoming =
          List.fold_left (fun acc (_, l) -> max acc l) st.best inbox
        in
        {
          st with
          best = incoming;
          fresh = incoming > st.best;
          rounds_left = st.rounds_left - 1;
        });
    output =
      (fun st ->
        if st.rounds_left > 0 then None
        else if st.best = st.label then Some Task.Leader
        else Some (Task.Follower st.best));
  }
