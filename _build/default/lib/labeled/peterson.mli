(** Peterson's unidirectional ring election — O(n log n) messages.

    Active nodes compare temporary ids with their two nearest active
    upstream neighbours and survive a phase only when the nearer
    upstream id beats both; at least half of the active nodes become
    relays each phase, giving ⌈log n⌉ phases of ≤ 2n messages.  The
    survivor detects its own id completing a full circle, then
    announces its {e original} label.

    Paper context: [40]'s O(n log n) unidirectional algorithm cited in
    Related Work.  Ring convention as in {!Chang_roberts}. *)

type state
type msg

val algorithm : (state, msg, int Shades_election.Task.answer) Model.algorithm
