module Task = Shades_election.Task

type msg = Tok of int | Won of int

type state = {
  label : int;
  pending : msg option; (* clockwise outbox (port 0) *)
  answer : int Task.answer option;
}

let algorithm =
  {
    Model.init =
      (fun ~label ~degree ->
        if degree <> 2 then invalid_arg "Chang_roberts: ring only";
        { label; pending = Some (Tok label); answer = None });
    send = (fun st ~port -> if port = 0 then st.pending else None);
    step =
      (fun st inbox ->
        (* the outbox was sent this round (if any); arrivals come from
           the predecessor on port 1 *)
        let st = { st with pending = None } in
        List.fold_left
          (fun st (port, m) ->
            if port <> 1 then st
            else begin
              match m with
              | Tok l ->
                  if l > st.label then { st with pending = Some (Tok l) }
                  else if l = st.label then
                    (* my token survived the whole circle *)
                    {
                      st with
                      answer = Some Task.Leader;
                      pending = Some (Won st.label);
                    }
                  else st (* swallow *)
              | Won l ->
                  if st.answer = Some Task.Leader then st (* full circle *)
                  else
                    {
                      st with
                      answer = Some (Task.Follower l);
                      pending = Some (Won l);
                    }
            end)
          st inbox);
    output = (fun st -> st.answer);
  }
