lib/labeled/chang_roberts.ml: List Model Shades_election
