lib/labeled/peterson.mli: Model Shades_election
