lib/labeled/hirschberg_sinclair.ml: Array List Model Shades_election
