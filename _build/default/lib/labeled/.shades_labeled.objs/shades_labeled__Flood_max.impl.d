lib/labeled/flood_max.ml: List Model Shades_election
