lib/labeled/model.mli: Shades_graph
