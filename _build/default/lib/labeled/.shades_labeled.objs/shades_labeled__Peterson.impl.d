lib/labeled/peterson.ml: List Model Shades_election
