lib/labeled/chang_roberts.mli: Model Shades_election
