lib/labeled/flood_max.mli: Model Shades_election
