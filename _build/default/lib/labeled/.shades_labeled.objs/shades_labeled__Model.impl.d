lib/labeled/model.ml: Array Hashtbl Int List Option Shades_graph
