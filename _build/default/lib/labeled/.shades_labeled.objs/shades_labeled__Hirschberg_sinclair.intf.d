lib/labeled/hirschberg_sinclair.mli: Model Shades_election
