(** Chang–Roberts unidirectional ring election.

    Every node launches its label clockwise; a token is swallowed by any
    node with a larger label, so only the maximum returns to its owner,
    which becomes the leader and circulates the announcement.  Θ(n²)
    messages in the worst case — the baseline that the O(n log n)
    algorithms of [28]/[40] improve on (paper, Related Work).

    Runs on {!Shades_graph.Gen.oriented_ring}-style rings (port 0 =
    successor, port 1 = predecessor).  Strong election: the leader
    outputs [Leader]; everyone else outputs [Follower l] with the
    leader's label [l]. *)

type state
type msg

val algorithm : (state, msg, int Shades_election.Task.answer) Model.algorithm
