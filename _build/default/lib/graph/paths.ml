type vertex = Port_graph.vertex

let bfs_distances g v =
  let n = Port_graph.order g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(v) <- 0;
  Queue.add v queue;
  while not (Queue.is_empty queue) do
    let x = Queue.take queue in
    for p = 0 to Port_graph.degree g x - 1 do
      let u = Port_graph.neighbor_vertex g x p in
      if dist.(u) = max_int then begin
        dist.(u) <- dist.(x) + 1;
        Queue.add u queue
      end
    done
  done;
  dist

let is_connected g =
  let dist = bfs_distances g 0 in
  Array.for_all (fun d -> d < max_int) dist

let diameter g =
  if not (is_connected g) then invalid_arg "Paths.diameter: disconnected";
  let n = Port_graph.order g in
  let best = ref 0 in
  for v = 0 to n - 1 do
    Array.iter (fun d -> if d > !best then best := d) (bfs_distances g v)
  done;
  !best

let shortest_path g v u =
  let n = Port_graph.order g in
  let parent = Array.make n (-1) in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  dist.(v) <- 0;
  Queue.add v queue;
  while not (Queue.is_empty queue) do
    let x = Queue.take queue in
    (* Scanning ports in increasing order makes parents deterministic. *)
    for p = 0 to Port_graph.degree g x - 1 do
      let y = Port_graph.neighbor_vertex g x p in
      if dist.(y) = max_int then begin
        dist.(y) <- dist.(x) + 1;
        parent.(y) <- x;
        Queue.add y queue
      end
    done
  done;
  if dist.(u) = max_int then None
  else begin
    let rec build acc x = if x = v then v :: acc else build (x :: acc) parent.(x) in
    Some (build [] u)
  end

let ports_of_walk g vs =
  let rec go = function
    | [] | [ _ ] -> []
    | v :: (u :: _ as rest) -> (
        match Port_graph.port_to g v u with
        | Some p -> p :: go rest
        | None -> invalid_arg "Paths.ports_of_walk: not adjacent")
  in
  go vs

let full_ports_of_walk g vs =
  let rec go = function
    | [] | [ _ ] -> []
    | v :: (u :: _ as rest) -> (
        match Port_graph.port_to g v u with
        | Some p ->
            let _, q = Port_graph.neighbor g v p in
            p :: q :: go rest
        | None -> invalid_arg "Paths.full_ports_of_walk: not adjacent")
  in
  go vs

let walk_of_ports g v ps =
  let rec go acc x = function
    | [] -> Some (List.rev (x :: acc))
    | p :: rest ->
        if p < 0 || p >= Port_graph.degree g x then None
        else go (x :: acc) (Port_graph.neighbor_vertex g x p) rest
  in
  go [] v ps

let is_simple vs =
  let tbl = Hashtbl.create 16 in
  List.for_all
    (fun v ->
      if Hashtbl.mem tbl v then false
      else begin
        Hashtbl.add tbl v ();
        true
      end)
    vs

let connected_avoiding g ~avoid v u =
  if v = avoid || u = avoid then
    invalid_arg "Paths.connected_avoiding: endpoint is the avoided vertex";
  if v = u then true
  else begin
    let n = Port_graph.order g in
    let seen = Array.make n false in
    seen.(avoid) <- true;
    seen.(v) <- true;
    let queue = Queue.create () in
    Queue.add v queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let x = Queue.take queue in
      for p = 0 to Port_graph.degree g x - 1 do
        let y = Port_graph.neighbor_vertex g x p in
        if not seen.(y) then begin
          seen.(y) <- true;
          if y = u then found := true else Queue.add y queue
        end
      done
    done;
    !found
  end

let simple_path_ports g v u =
  (* A BFS shortest path is simple. *)
  match shortest_path g v u with
  | None -> None
  | Some vs -> Some (ports_of_walk g vs)
