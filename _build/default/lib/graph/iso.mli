(** Port-preserving isomorphism for small graphs (oracle-side testing
    aid).  Two port-labeled graphs are isomorphic when a bijection of
    vertices preserves adjacency and both port numbers of every edge. *)

(** [isomorphic a b] decides port-preserving isomorphism by backtracking;
    intended for graphs up to a few hundred vertices (connected graphs
    are cheap: fixing one image propagates deterministically). *)
val isomorphic : Port_graph.t -> Port_graph.t -> bool

(** [rooted_isomorphic a va b vb] additionally requires the bijection to
    send [va] to [vb].  For connected graphs this is decidable in linear
    time because ports make the unfolding deterministic. *)
val rooted_isomorphic :
  Port_graph.t -> Port_graph.vertex -> Port_graph.t -> Port_graph.vertex -> bool
