let rooted_isomorphic a va b vb =
  let n = Port_graph.order a in
  if n <> Port_graph.order b then false
  else begin
    (* Ports make the pairing propagate deterministically from the root:
       matched vertices must agree on degree and, per port, on the far
       port and the far vertices' pairing. *)
    let fwd = Array.make n (-1) and bwd = Array.make n (-1) in
    let queue = Queue.create () in
    let ok = ref true in
    let match_pair x y =
      if fwd.(x) = -1 && bwd.(y) = -1 then begin
        fwd.(x) <- y;
        bwd.(y) <- x;
        Queue.add (x, y) queue
      end
      else if fwd.(x) <> y then ok := false
    in
    match_pair va vb;
    while !ok && not (Queue.is_empty queue) do
      let x, y = Queue.take queue in
      let d = Port_graph.degree a x in
      if d <> Port_graph.degree b y then ok := false
      else
        for p = 0 to d - 1 do
          if !ok then begin
            let x', q = Port_graph.neighbor a x p in
            let y', q' = Port_graph.neighbor b y p in
            if q <> q' then ok := false else match_pair x' y'
          end
        done
    done;
    (* Connectivity of [a] guarantees everything got matched. *)
    !ok && Array.for_all (fun v -> v >= 0) fwd
  end

let isomorphic a b =
  let n = Port_graph.order a in
  if n <> Port_graph.order b then false
  else
    let rec try_root vb =
      vb < n && (rooted_isomorphic a 0 b vb || try_root (vb + 1))
    in
    try_root 0
