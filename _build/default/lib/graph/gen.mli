(** Generators for common port-labeled graphs. *)

(** [path_with_ports spec] builds a path [v0 - v1 - ... - vk] where
    [spec = [(p1, q1); ...; (pk, qk)]] gives the port at the left and
    right endpoint of each successive edge.  The paper's 3-node line with
    ports 0,0,1,0 is [path_with_ports [(0, 0); (1, 0)]]. *)
val path_with_ports : (int * int) list -> Port_graph.t

(** [path n] is the path on [n >= 2] vertices where port 0 leads towards
    higher indices and port 1 towards lower indices. *)
val path : int -> Port_graph.t

(** [oriented_ring n] is the cycle [c0, ..., c_{n-1}] ([n >= 3]) where at
    every node port 0 leads to the successor and port 1 to the
    predecessor (the paper's "ports alternately labeled 0 and 1"). *)
val oriented_ring : int -> Port_graph.t

(** [clique n] is the complete graph: at [v], ports enumerate the other
    vertices in increasing index order. *)
val clique : int -> Port_graph.t

(** [star n] has center 0 joined to [n - 1] leaves; leaf ports are 0. *)
val star : int -> Port_graph.t

(** [random st n ~extra_edges] is a connected random graph: a random
    spanning tree plus [extra_edges] random additional edges (skipping
    duplicates), with ports assigned in random order per vertex. *)
val random : Random.State.t -> int -> extra_edges:int -> Port_graph.t

(** [hypercube d] is the [d]-dimensional hypercube on [2^d] vertices
    with the natural dimensional port labeling (port [i] flips bit [i]
    at both endpoints) — a highly symmetric, infeasible network. *)
val hypercube : int -> Port_graph.t

(** [all_labelings n edges] enumerates {e every} port labeling of the
    simple connected graph given by its unordered [edges]: the product
    over vertices of all permutations of their incident edges.  The
    election index of an anonymous network depends on the labeling, not
    just the topology; this drives the labeling-sensitivity experiments.
    @raise Invalid_argument if there are more than 200_000 labelings. *)
val all_labelings : int -> (int * int) list -> Port_graph.t list
