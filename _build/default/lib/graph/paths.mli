(** Traversal and path queries on port-labeled graphs.

    All functions are oracle-side: they use vertex indices, which anonymous
    nodes do not have.  The task verifiers and the minimum-time algorithms
    with a full map both rely on them. *)

type vertex = Port_graph.vertex

(** [bfs_distances g v] maps each vertex to its hop distance from [v]
    ([max_int] if unreachable). *)
val bfs_distances : Port_graph.t -> vertex -> int array

val is_connected : Port_graph.t -> bool

(** Maximum eccentricity. @raise Invalid_argument if disconnected. *)
val diameter : Port_graph.t -> int

(** [shortest_path g v u] is the vertex sequence of a BFS shortest path
    from [v] to [u] (inclusive), [None] if unreachable.  Ties are broken
    towards the lowest-port parent, so the result is deterministic. *)
val shortest_path : Port_graph.t -> vertex -> vertex -> vertex list option

(** [ports_of_walk g vs] turns a vertex walk into the list of outgoing
    ports along it. @raise Invalid_argument if consecutive vertices are
    not adjacent. *)
val ports_of_walk : Port_graph.t -> vertex list -> int list

(** [full_ports_of_walk g vs] is the complete port sequence
    [(p1, q1, ..., pk, qk)] along the walk, flattened. *)
val full_ports_of_walk : Port_graph.t -> vertex list -> int list

(** [walk_of_ports g v ps] follows outgoing ports [ps] from [v]; returns
    the visited vertices (including [v]); [None] if some port is out of
    range at the node reached. *)
val walk_of_ports : Port_graph.t -> vertex -> int list -> vertex list option

(** [is_simple vs] holds iff the walk repeats no vertex. *)
val is_simple : vertex list -> bool

(** [connected_avoiding g ~avoid v u]: is there a [v]-[u] path in
    [g - avoid]?  Requires [v <> avoid] and [u <> avoid]. *)
val connected_avoiding : Port_graph.t -> avoid:vertex -> vertex -> vertex -> bool

(** [simple_path_ports g v u] finds some simple path from [v] to [u] and
    returns its outgoing-port sequence ([Some []] when [v = u]). *)
val simple_path_ports : Port_graph.t -> vertex -> vertex -> int list option
