let path_with_ports spec =
  let n = List.length spec + 1 in
  if n < 2 then invalid_arg "Gen.path_with_ports: need at least one edge";
  Port_graph.of_edges n
    (List.mapi (fun i (p, q) -> ((i, p), (i + 1, q))) spec)

let path n =
  if n < 2 then invalid_arg "Gen.path";
  (* Port 0 always leads right; an interior vertex's port 1 leads left. *)
  path_with_ports
    (List.init (n - 1) (fun i -> (0, if i = n - 2 then 0 else 1)))

let oriented_ring n =
  if n < 3 then invalid_arg "Gen.oriented_ring";
  Port_graph.of_edges n
    (List.init n (fun i -> ((i, 0), ((i + 1) mod n, 1))))

let clique n =
  if n < 2 then invalid_arg "Gen.clique";
  let port v u = if u < v then u else u - 1 in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for u = v + 1 to n - 1 do
      edges := ((v, port v u), (u, port u v)) :: !edges
    done
  done;
  Port_graph.of_edges n !edges

let star n =
  if n < 2 then invalid_arg "Gen.star";
  Port_graph.of_edges n (List.init (n - 1) (fun i -> ((0, i), (i + 1, 0))))

let hypercube d =
  if d < 1 then invalid_arg "Gen.hypercube";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for i = 0 to d - 1 do
      let u = v lxor (1 lsl i) in
      if v < u then edges := ((v, i), (u, i)) :: !edges
    done
  done;
  Port_graph.of_edges n !edges

let all_labelings n edges =
  let adj = Array.make n [] in
  List.iter
    (fun (v, u) ->
      adj.(v) <- u :: adj.(v);
      adj.(u) <- v :: adj.(u))
    edges;
  let nbrs = Array.map (fun l -> Array.of_list (List.sort Int.compare l)) adj in
  let rec factorial k = if k <= 1 then 1 else k * factorial (k - 1) in
  let total =
    Array.fold_left (fun acc a -> acc * factorial (Array.length a)) 1 nbrs
  in
  if total > 200_000 then
    invalid_arg "Gen.all_labelings: too many labelings";
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            List.map
              (fun rest -> x :: rest)
              (permutations (List.filter (( <> ) x) l)))
          l
  in
  let perms_of v =
    permutations (List.init (Array.length nbrs.(v)) Fun.id)
    |> List.map Array.of_list
  in
  (* cartesian product of per-vertex permutations *)
  let rec assignments v =
    if v = n then [ [||] ]
    else begin
      let rest = assignments (v + 1) in
      List.concat_map
        (fun perm -> List.map (fun a -> Array.append [| perm |] a) rest)
        (perms_of v)
    end
  in
  List.map
    (fun assignment ->
      (* port of u at v: position of u among v's sorted neighbours,
         permuted by v's assignment *)
      let port v u =
        let rec index i = if nbrs.(v).(i) = u then i else index (i + 1) in
        assignment.(v).(index 0)
      in
      Port_graph.of_edges n
        (List.map (fun (v, u) -> ((v, port v u), (u, port u v))) edges))
    (assignments 0)

let random st n ~extra_edges =
  if n < 2 then invalid_arg "Gen.random";
  (* Random spanning tree: attach each vertex to a uniformly random
     earlier one, then sprinkle extra edges, then shuffle ports. *)
  let adj = Array.make n [] in
  let add v u =
    adj.(v) <- u :: adj.(v);
    adj.(u) <- v :: adj.(u)
  in
  for v = 1 to n - 1 do
    add v (Random.State.int st v)
  done;
  let attempts = ref 0 in
  let added = ref 0 in
  while !added < extra_edges && !attempts < 20 * (extra_edges + 1) do
    incr attempts;
    let v = Random.State.int st n and u = Random.State.int st n in
    if v <> u && not (List.mem u adj.(v)) then begin
      add v u;
      incr added
    end
  done;
  let shuffle a =
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done
  in
  (* Assign random ports: for each vertex a random permutation of its
     incident edges. *)
  let next_port = Array.make n 0 in
  let perms =
    Array.init n (fun v ->
        let a = Array.of_list adj.(v) in
        shuffle a;
        a)
  in
  let port_of = Hashtbl.create (2 * n) in
  Array.iteri
    (fun v nbrs ->
      Array.iter
        (fun u ->
          Hashtbl.replace port_of (v, u) next_port.(v);
          next_port.(v) <- next_port.(v) + 1)
        nbrs)
    perms;
  let edges = ref [] in
  for v = 0 to n - 1 do
    List.iter
      (fun u ->
        if v < u then
          edges :=
            ( (v, Hashtbl.find port_of (v, u)),
              (u, Hashtbl.find port_of (u, v)) )
            :: !edges)
      adj.(v)
  done;
  Port_graph.of_edges n !edges
