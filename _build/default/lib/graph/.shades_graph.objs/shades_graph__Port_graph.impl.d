lib/graph/port_graph.ml: Array Buffer Format Fun Hashtbl List Option Printf Queue Shades_bits
