lib/graph/gen.ml: Array Fun Hashtbl Int List Port_graph Random
