lib/graph/iso.mli: Port_graph
