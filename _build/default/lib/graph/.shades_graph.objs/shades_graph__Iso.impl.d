lib/graph/iso.ml: Array Port_graph Queue
