lib/graph/gen.mli: Port_graph Random
