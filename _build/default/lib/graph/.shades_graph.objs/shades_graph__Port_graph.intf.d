lib/graph/port_graph.mli: Format Shades_bits
