lib/graph/paths.mli: Port_graph
