lib/graph/paths.ml: Array Hashtbl List Port_graph Queue
