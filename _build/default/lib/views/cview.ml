module Port_graph = Shades_graph.Port_graph

type t = { id : int; degree : int; children : (int * t) array; height : int }

(* Interning key: degree plus the (arrival port, child id) skeleton. *)
type key = int * (int * int) array

type ctx = {
  intern : (key, t) Hashtbl.t;
  mutable fresh : int;
  truncs : (int * int, t) Hashtbl.t; (* (id, depth) -> truncation *)
}

let create_ctx () =
  { intern = Hashtbl.create 256; fresh = 0; truncs = Hashtbl.create 256 }

let make ctx ~degree ~children =
  if Array.length children <> 0 && Array.length children <> degree then
    invalid_arg "Cview.make: child count must be 0 or the degree";
  let key = (degree, Array.map (fun (q, c) -> (q, c.id)) children) in
  match Hashtbl.find_opt ctx.intern key with
  | Some node -> node
  | None ->
      let height =
        Array.fold_left (fun acc (_, c) -> max acc (c.height + 1)) 0 children
      in
      let node = { id = ctx.fresh; degree; children; height } in
      ctx.fresh <- ctx.fresh + 1;
      Hashtbl.add ctx.intern key node;
      node

let of_graph ctx g v ~depth =
  if depth < 0 then invalid_arg "Cview.of_graph";
  (* Memoize on (vertex, depth) for this call: hash-consing already
     unifies across calls, this just avoids re-walking. *)
  let memo = Hashtbl.create 64 in
  let rec go v depth =
    match Hashtbl.find_opt memo (v, depth) with
    | Some node -> node
    | None ->
        let d = Port_graph.degree g v in
        let node =
          if depth = 0 then make ctx ~degree:d ~children:[||]
          else
            make ctx ~degree:d
              ~children:
                (Array.init d (fun p ->
                     let u, q = Port_graph.neighbor g v p in
                     (q, go u (depth - 1))))
        in
        Hashtbl.add memo (v, depth) node;
        node
  in
  go v depth

let equal a b = a.id = b.id

let truncate ctx t ~depth =
  if depth < 0 then invalid_arg "Cview.truncate";
  let rec go t depth =
    if t.height <= depth then t
    else begin
      match Hashtbl.find_opt ctx.truncs (t.id, depth) with
      | Some node -> node
      | None ->
          let node =
            if depth = 0 then make ctx ~degree:t.degree ~children:[||]
            else
              make ctx ~degree:t.degree
                ~children:
                  (Array.map (fun (q, c) -> (q, go c (depth - 1))) t.children)
          in
          Hashtbl.add ctx.truncs (t.id, depth) node;
          node
    end
  in
  go t depth

let rec to_tree t =
  {
    View_tree.degree = t.degree;
    children = Array.map (fun (q, c) -> (q, to_tree c)) t.children;
  }

let rec of_tree ctx (t : View_tree.t) =
  make ctx ~degree:t.View_tree.degree
    ~children:(Array.map (fun (q, c) -> (q, of_tree ctx c)) t.View_tree.children)
