lib/views/view_tree.mli: Format Shades_bits Shades_graph
