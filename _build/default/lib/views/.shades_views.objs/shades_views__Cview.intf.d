lib/views/cview.mli: Shades_graph View_tree
