lib/views/quotient.mli: Format Shades_graph
