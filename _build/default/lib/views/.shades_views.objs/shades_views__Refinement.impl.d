lib/views/refinement.ml: Array Hashtbl List Shades_graph
