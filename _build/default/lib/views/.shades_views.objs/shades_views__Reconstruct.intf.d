lib/views/reconstruct.mli: Cview Shades_graph View_tree
