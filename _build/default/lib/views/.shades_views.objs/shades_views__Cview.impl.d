lib/views/cview.ml: Array Hashtbl Shades_graph View_tree
