lib/views/refinement.mli: Shades_graph
