lib/views/reconstruct.ml: Array Cview Hashtbl List Printf Shades_graph
