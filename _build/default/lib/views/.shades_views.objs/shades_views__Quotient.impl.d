lib/views/quotient.ml: Array Format List Refinement Shades_graph
