lib/views/view_tree.ml: Array Buffer Char Format Int Option Shades_bits Shades_graph
