(** Explicit augmented truncated views.

    The view [V(v)] from node [v] is the infinite tree of all finite
    paths of [G] starting at [v], coded by port-number pairs.  The
    augmented truncated view [B^h(v)] is its truncation to depth [h] with
    every node labeled by its degree in [G] (the paper labels only the
    leaves, but every internal node's degree is already forced by its
    child count, so the two conventions carry the same information).

    [B^h(v)] is exactly what a deterministic node can know after [h]
    rounds of the LOCAL model, so every minimum-time algorithm in this
    library is a function of it.

    Explicit trees grow like [degree^h]; use them for small depths,
    codecs and lexicographic choices, and {!Refinement} for bulk
    equivalence queries. *)

type t = {
  degree : int;  (** degree of this node in the underlying graph *)
  children : (int * t) array;
      (** [children.(p) = (q, sub)]: following out-port [p] arrives on
          port [q] of the subtree root.  Empty at truncation depth. *)
}

(** [of_graph g v ~depth] computes [B^depth(v)].
    @raise Invalid_argument if [depth < 0]. *)
val of_graph : Shades_graph.Port_graph.t -> Shades_graph.Port_graph.vertex ->
  depth:int -> t

(** Depth at which the tree was truncated (length of the longest
    root-to-leaf path). *)
val height : t -> int

(** Number of tree nodes. *)
val node_count : t -> int

val equal : t -> t -> bool

(** Total order: degree, then child count, then children pairwise by
    (arrival port, subtree), in port order.  Used wherever the paper
    breaks ties by "lexicographically smallest view". *)
val compare : t -> t -> int

(** [truncate t ~depth] forgets everything below [depth]. *)
val truncate : t -> depth:int -> t

(** [contains_degree t d] holds iff some node of the tree has degree [d]
    (used by algorithms that look for "a node of degree X in my view"). *)
val contains_degree : t -> int -> bool

(** [depth_of_degree t d] is the least depth of a node of degree [d] in
    the tree, if any.  Because a view is the unfolding of the graph, the
    least depth equals the graph distance to the nearest such node, and
    the minimal root-to-it path in the view is a shortest — hence simple
    — path in the graph. *)
val depth_of_degree : t -> int -> int option

(** [port_towards_degree t d] is the root port of the subtree containing
    a degree-[d] node at minimal depth (smallest port on ties): "the
    first port on a simple path towards the closest degree-[d] node", as
    used by the Port Election algorithm of Lemma 3.9. *)
val port_towards_degree : t -> int -> int option

(** Fast canonical string key: equal trees produce equal keys and
    vice versa.  Not bit-optimal (unlike {!encode}); meant for hash
    tables matching a gathered view against map views on large graphs. *)
val canonical_key : t -> string

(** Self-delimiting binary code, the advice format of Theorem 2.2. *)
val encode : t -> Shades_bits.Bitstring.t

(** Inverse of {!encode}. *)
val decode : Shades_bits.Bitstring.t -> t

(** Decode from a reader positioned at a view code (allows embedding). *)
val read : Shades_bits.Reader.t -> t

(** Append the code of [t] to a writer (allows embedding). *)
val write : Shades_bits.Writer.t -> t -> unit

val pp : Format.formatter -> t -> unit
