(** Hash-consed views: the scalable representation of deep views.

    An explicit {!View_tree} of depth [h] has up to [deg^h] nodes, but
    as a labeled tree it has few distinct subtrees — at most one per
    (vertex, depth) pair of the underlying graph.  Hash-consing shares
    equal subtrees, so a depth-[2n] view occupies O(n²) cells and
    equality is a constant-time id comparison.  This is what makes the
    time-vs-advice tradeoff experiments (gather [B^{2(n-1)}], rebuild
    the whole map) feasible.

    All values must be created through the same {!ctx} to compare. *)

type t = private {
  id : int;  (** unique per structure within a context *)
  degree : int;
  children : (int * t) array;  (** [(arrival port, subtree)] per port *)
  height : int;
}

type ctx

val create_ctx : unit -> ctx

(** [make ctx ~degree ~children] interns a view node.
    @raise Invalid_argument if [children] is non-empty and its length
    differs from [degree]. *)
val make : ctx -> degree:int -> children:(int * t) array -> t

(** [of_graph ctx g v ~depth] is [B^depth(v)], shared: cost O(n·depth)
    new cells regardless of the explicit tree's size. *)
val of_graph :
  ctx -> Shades_graph.Port_graph.t -> Shades_graph.Port_graph.vertex ->
  depth:int -> t

(** Structural equality — O(1) within one context. *)
val equal : t -> t -> bool

(** [truncate ctx t ~depth] forgets everything below [depth] (memoized
    per context). *)
val truncate : ctx -> t -> depth:int -> t

(** Expand to an explicit tree (exponential; for small views/tests). *)
val to_tree : t -> View_tree.t

(** Intern an explicit tree. *)
val of_tree : ctx -> View_tree.t -> t
