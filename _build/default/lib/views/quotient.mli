(** The quotient of an anonymous network (Yamashita–Kameda).

    View-equivalent nodes behave identically under every deterministic
    algorithm, so the network acts like its {e quotient}: one vertex per
    fixpoint view class, with each class's common port map.  The
    original graph is a covering of the quotient (all classes have equal
    size — the fibers), which is exactly why leader election fails on
    infeasible graphs: whatever one member of a class outputs, all its
    siblings output too.

    The quotient of a feasible graph is the graph itself; the quotient
    of an oriented ring is a single vertex with a loop — represented
    here as a port map, since quotients are generally multigraphs with
    loops and fall outside {!Shades_graph.Port_graph}'s simple-graph
    invariants. *)

type t = {
  classes : int;  (** number of view classes at the fixpoint *)
  fiber_size : int;  (** common size of every class *)
  degree : int array;  (** degree of each class, indexed by class id *)
  port_map : (int * int) array array;
      (** [port_map.(c).(p) = (c', q)]: following port [p] from any
          member of class [c] reaches a member of [c'], arriving on its
          port [q] *)
  class_of : int array;  (** original vertex -> class id *)
}

(** [of_graph g] computes the quotient at the refinement fixpoint. *)
val of_graph : Shades_graph.Port_graph.t -> t

(** A trivial quotient (every class a singleton) means the graph is
    feasible. *)
val is_trivial : t -> bool

val pp : Format.formatter -> t -> unit
