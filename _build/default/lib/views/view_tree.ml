module Port_graph = Shades_graph.Port_graph

type t = { degree : int; children : (int * t) array }

let rec of_graph g v ~depth =
  if depth < 0 then invalid_arg "View_tree.of_graph";
  let d = Port_graph.degree g v in
  if depth = 0 then { degree = d; children = [||] }
  else
    {
      degree = d;
      children =
        Array.init d (fun p ->
            let u, q = Port_graph.neighbor g v p in
            (q, of_graph g u ~depth:(depth - 1)));
    }

let rec height t =
  Array.fold_left (fun acc (_, sub) -> max acc (1 + height sub)) 0 t.children

let rec node_count t =
  Array.fold_left (fun acc (_, sub) -> acc + node_count sub) 1 t.children

let rec compare a b =
  let c = Int.compare a.degree b.degree in
  if c <> 0 then c
  else
    let c = Int.compare (Array.length a.children) (Array.length b.children) in
    if c <> 0 then c
    else begin
      let n = Array.length a.children in
      let rec go p =
        if p = n then 0
        else
          let qa, sa = a.children.(p) and qb, sb = b.children.(p) in
          let c = Int.compare qa qb in
          if c <> 0 then c
          else
            let c = compare sa sb in
            if c <> 0 then c else go (p + 1)
      in
      go 0
    end

let equal a b = compare a b = 0

let rec truncate t ~depth =
  if depth < 0 then invalid_arg "View_tree.truncate";
  if depth = 0 then { degree = t.degree; children = [||] }
  else
    {
      degree = t.degree;
      children =
        Array.map (fun (q, sub) -> (q, truncate sub ~depth:(depth - 1)))
          t.children;
    }

let rec contains_degree t d =
  t.degree = d
  || Array.exists (fun (_, sub) -> contains_degree sub d) t.children

let rec depth_of_degree t d =
  if t.degree = d then Some 0
  else
    Array.fold_left
      (fun acc (_, sub) ->
        match depth_of_degree sub d with
        | None -> acc
        | Some h -> (
            match acc with
            | None -> Some (h + 1)
            | Some best -> Some (min best (h + 1))))
      None t.children

let port_towards_degree t d =
  let best = ref None in
  Array.iteri
    (fun p (_, sub) ->
      match depth_of_degree sub d with
      | None -> ()
      | Some h -> (
          match !best with
          | Some (_, bh) when bh <= h -> ()
          | _ -> best := Some (p, h)))
    t.children;
  Option.map fst !best

(* Each integer is two bytes (degrees and ports < 65536 in any graph we
   handle); one marker byte distinguishes truncation leaves from
   expanded nodes, making the code prefix-free and hence injective. *)
let canonical_key t =
  let buf = Buffer.create 256 in
  let int16 v =
    assert (v >= 0 && v < 0x10000);
    Buffer.add_char buf (Char.chr (v lsr 8));
    Buffer.add_char buf (Char.chr (v land 0xff))
  in
  let rec go t =
    int16 t.degree;
    if Array.length t.children = 0 then Buffer.add_char buf '.'
    else begin
      Buffer.add_char buf '!';
      Array.iter
        (fun (q, sub) ->
          int16 q;
          go sub)
        t.children
    end
  in
  go t;
  Buffer.contents buf

let rec write w t =
  Shades_bits.Writer.gamma w t.degree;
  (* One bit distinguishes a truncation leaf from an expanded node; an
     expanded node's child count equals its degree. *)
  if Array.length t.children = 0 then Shades_bits.Writer.bit w false
  else begin
    Shades_bits.Writer.bit w true;
    Array.iter
      (fun (q, sub) ->
        Shades_bits.Writer.gamma w q;
        write w sub)
      t.children
  end

let encode t =
  let w = Shades_bits.Writer.create () in
  write w t;
  Shades_bits.Writer.contents w

let rec read r =
  let degree = Shades_bits.Reader.gamma r in
  let expanded = Shades_bits.Reader.bit r in
  if not expanded then { degree; children = [||] }
  else
    {
      degree;
      children =
        Array.init degree (fun _ ->
            let q = Shades_bits.Reader.gamma r in
            let sub = read r in
            (q, sub));
    }

let decode bits = read (Shades_bits.Reader.of_bitstring bits)

let rec pp fmt t =
  if Array.length t.children = 0 then Format.fprintf fmt "%d" t.degree
  else begin
    Format.fprintf fmt "@[<hov 1>%d(" t.degree;
    Array.iteri
      (fun p (q, sub) ->
        if p > 0 then Format.fprintf fmt "@ ";
        Format.fprintf fmt "%d:%d->%a" p q pp sub)
      t.children;
    Format.fprintf fmt ")@]"
  end
