module Port_graph = Shades_graph.Port_graph

type t = {
  graph : Port_graph.t;
  levels : int array array; (* levels.(d).(v) = class id of v at depth d *)
  counts : int array; (* counts.(d) = number of classes at depth d *)
}

(* One refinement step: the new color of [v] is a dense id for the
   signature (old color of v, [(q_p, old color of neighbor_p)]).
   Including the old color is redundant (it is determined by degree and
   children) but harmless and keeps signatures short-lived. *)
let refine_step g prev =
  let n = Port_graph.order g in
  let table = Hashtbl.create (2 * n) in
  let next = Array.make n 0 in
  let fresh = ref 0 in
  for v = 0 to n - 1 do
    let d = Port_graph.degree g v in
    let sig_v =
      ( prev.(v),
        Array.init d (fun p ->
            let u, q = Port_graph.neighbor g v p in
            (q, prev.(u))) )
    in
    let id =
      match Hashtbl.find_opt table sig_v with
      | Some id -> id
      | None ->
          let id = !fresh in
          incr fresh;
          Hashtbl.add table sig_v id;
          id
    in
    next.(v) <- id
  done;
  (next, !fresh)

let level0 g =
  let n = Port_graph.order g in
  let table = Hashtbl.create 16 in
  let colors = Array.make n 0 in
  let fresh = ref 0 in
  for v = 0 to n - 1 do
    let d = Port_graph.degree g v in
    let id =
      match Hashtbl.find_opt table d with
      | Some id -> id
      | None ->
          let id = !fresh in
          incr fresh;
          Hashtbl.add table d id;
          id
    in
    colors.(v) <- id
  done;
  (colors, !fresh)

let compute g ~depth =
  if depth < 0 then invalid_arg "Refinement.compute";
  let l0, c0 = level0 g in
  let levels = Array.make (depth + 1) l0 in
  let counts = Array.make (depth + 1) c0 in
  for d = 1 to depth do
    let next, count = refine_step g levels.(d - 1) in
    levels.(d) <- next;
    counts.(d) <- count
  done;
  { graph = g; levels; counts }

let fixpoint g =
  let rec go levels counts prev prev_count d =
    let next, count = refine_step g prev in
    if count = prev_count then
      (* Partition at depth d-1 is stable: deeper partitions refine it and
         have the same size, hence are equal to it. *)
      {
        graph = g;
        levels = Array.of_list (List.rev levels);
        counts = Array.of_list (List.rev counts);
      }
    else go (next :: levels) (count :: counts) next count (d + 1)
  in
  let l0, c0 = level0 g in
  go [ l0 ] [ c0 ] l0 c0 1

let depth t = Array.length t.levels - 1

let check_depth t d =
  if d < 0 || d > depth t then invalid_arg "Refinement: depth out of range"

let class_of t ~depth v =
  check_depth t depth;
  t.levels.(depth).(v)

let class_count t ~depth =
  check_depth t depth;
  t.counts.(depth)

let classes t ~depth:d =
  check_depth t d;
  let groups = Array.make t.counts.(d) [] in
  let lev = t.levels.(d) in
  for v = Port_graph.order t.graph - 1 downto 0 do
    groups.(lev.(v)) <- v :: groups.(lev.(v))
  done;
  groups

let singletons t ~depth:d =
  let groups = classes t ~depth:d in
  Array.to_list groups
  |> List.filter_map (function [ v ] -> Some v | _ -> None)

let equal_views t ~depth v u =
  check_depth t depth;
  t.levels.(depth).(v) = t.levels.(depth).(u)

let equal_views_cross ga va gb vb ~depth =
  let union, off = Port_graph.disjoint_union [ ga; gb ] in
  let t = compute union ~depth in
  equal_views t ~depth (off.(0) + va) (off.(1) + vb)

let min_unique_depth g =
  let t = fixpoint g in
  let rec go d =
    if d > depth t then None
    else if singletons t ~depth:d <> [] then Some d
    else go (d + 1)
  in
  go 0

let feasible g =
  let t = fixpoint g in
  class_count t ~depth:(depth t) = Port_graph.order g

let canonical_order g =
  let n = Port_graph.order g in
  (* Like [fixpoint], but new color ids are the sorted ranks of the
     round's signatures rather than first-encounter ids, which makes
     them isomorphism-invariant. *)
  let rank_by signatures =
    let sorted = List.sort_uniq compare (Array.to_list signatures) in
    let ranks = Hashtbl.create (2 * n) in
    List.iteri (fun i s -> Hashtbl.replace ranks s i) sorted;
    (Array.map (Hashtbl.find ranks) signatures, List.length sorted)
  in
  let step prev =
    rank_by
      (Array.init n (fun v ->
           ( prev.(v),
             Array.init (Port_graph.degree g v) (fun p ->
                 let u, q = Port_graph.neighbor g v p in
                 (q, prev.(u))) )))
  in
  let rec go prev prev_count =
    let next, count = step prev in
    if count = prev_count then
      if count = n then Some next else None
    else go next count
  in
  let colors0, count0 =
    rank_by (Array.init n (fun v -> (0, [| (Port_graph.degree g v, 0) |])))
  in
  go colors0 count0
