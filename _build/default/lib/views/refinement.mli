(** Scalable view-equivalence classes via port-aware color refinement.

    [B^h(u) = B^h(v)] iff iterated refinement assigns [u] and [v] the
    same color at round [h], where the round-0 color is the degree and
    the round-[d] color is determined by
    [(deg v, [(q_p, color_{d-1}(neighbor_p v))]_p)] — the children of a
    view node are totally ordered by out-port, so the unfolding is
    determined by this signature.  Computing all classes at all depths up
    to [h] costs [O(h * edges)] with hash-consing, against the
    exponential cost of explicit view trees.

    Colors refine monotonically with depth (equality of [B^{d+1}] implies
    equality of [B^d]), so once two consecutive depths induce the same
    number of classes the partition is stable forever. *)

type t

(** [compute g ~depth] computes classes at depths [0 .. depth]. *)
val compute : Shades_graph.Port_graph.t -> depth:int -> t

(** [fixpoint g] refines until the partition stabilizes.  {!depth} of the
    result is the first depth whose partition equals the next one (so
    every depth [>= depth t] has the same partition). *)
val fixpoint : Shades_graph.Port_graph.t -> t

(** Largest depth stored. *)
val depth : t -> int

(** [class_of t ~depth v] is the class id of [v]; ids are dense in
    [0 .. class_count - 1] per depth but not comparable across depths.
    @raise Invalid_argument if [depth] exceeds {!depth}. *)
val class_of : t -> depth:int -> Shades_graph.Port_graph.vertex -> int

(** Number of classes at [depth]. *)
val class_count : t -> depth:int -> int

(** Vertices grouped by class at [depth]; index by class id. *)
val classes : t -> depth:int -> Shades_graph.Port_graph.vertex list array

(** Vertices whose class at [depth] is a singleton, i.e. nodes whose
    [B^depth] is unique in the graph — the candidates of Prop 2.1. *)
val singletons : t -> depth:int -> Shades_graph.Port_graph.vertex list

(** [equal_views t ~depth u v]: [B^depth(u) = B^depth(v)]. *)
val equal_views :
  t -> depth:int -> Shades_graph.Port_graph.vertex ->
  Shades_graph.Port_graph.vertex -> bool

(** [equal_views_cross ga va gb vb ~depth]: compare views across two
    graphs by refining their disjoint union. *)
val equal_views_cross :
  Shades_graph.Port_graph.t -> Shades_graph.Port_graph.vertex ->
  Shades_graph.Port_graph.t -> Shades_graph.Port_graph.vertex ->
  depth:int -> bool

(** Minimum depth (≤ the stabilization depth) at which some vertex has a
    unique view, or [None] if none exists even at the fixpoint.  By
    Proposition 2.1 this is exactly the Selection index ψ_S when the
    graph is feasible. *)
val min_unique_depth : Shades_graph.Port_graph.t -> int option

(** A graph is feasible for leader election iff all views are distinct
    (Yamashita–Kameda); equivalently the fixpoint partition is discrete. *)
val feasible : Shades_graph.Port_graph.t -> bool

(** [canonical_order g] is a canonical total order of the vertices of a
    feasible graph: round-0 colors are degree {e ranks}, and each
    round's new colors are the {e sorted} ranks of the refinement
    signatures, so color values are isomorphism-invariant (unlike
    {!class_of} ids, which depend on scan order).  When the fixpoint is
    discrete the final colors are a bijection; returns
    [Some perm] with [perm.(v)] the canonical rank of [v], or [None]
    for infeasible graphs.  Two port-preserving-isomorphic graphs get
    compatible orders: the isomorphism maps rank i to rank i. *)
val canonical_order : Shades_graph.Port_graph.t -> int array option
