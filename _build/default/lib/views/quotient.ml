module Port_graph = Shades_graph.Port_graph

type t = {
  classes : int;
  fiber_size : int;
  degree : int array;
  port_map : (int * int) array array;
  class_of : int array;
}

let of_graph g =
  let n = Port_graph.order g in
  let r = Refinement.fixpoint g in
  let depth = Refinement.depth r in
  let classes = Refinement.class_count r ~depth in
  let class_of = Array.init n (fun v -> Refinement.class_of r ~depth v) in
  let degree = Array.make classes 0 in
  let port_map = Array.make classes [||] in
  let groups = Refinement.classes r ~depth in
  Array.iteri
    (fun c members ->
      let v = List.hd members in
      let d = Port_graph.degree g v in
      degree.(c) <- d;
      port_map.(c) <-
        Array.init d (fun p ->
            let u, q = Port_graph.neighbor g v p in
            (class_of.(u), q));
      (* Well-definedness: every member induces the same port map — this
         is the fixpoint property, asserted here as a sanity check. *)
      List.iter
        (fun w ->
          for p = 0 to d - 1 do
            let u, q = Port_graph.neighbor g w p in
            assert (port_map.(c).(p) = (class_of.(u), q))
          done)
        members)
    groups;
  let fiber_size = n / classes in
  assert (
    Array.for_all (fun members -> List.length members = fiber_size) groups);
  { classes; fiber_size; degree; port_map; class_of }

let is_trivial t = t.fiber_size = 1

let pp fmt t =
  Format.fprintf fmt "@[<v>quotient: %d classes, fiber %d" t.classes
    t.fiber_size;
  Array.iteri
    (fun c ports ->
      Format.fprintf fmt "@,  class %d (deg %d):" c t.degree.(c);
      Array.iteri
        (fun p (c', q) -> Format.fprintf fmt " %d->%d:%d" p c' q)
        ports)
    t.port_map;
  Format.fprintf fmt "@]"
