(** Reconstructing the network from one node's view.

    A feasible graph (all views distinct) is fully determined, up to
    isomorphism, by any single sufficiently deep view: vertices can be
    identified with their depth-(n−1) view signatures, and the signature
    of every neighbour is visible one level deeper.  Concretely,
    [B^{2(n-1)}(v)] suffices: every vertex occurs within depth n−1 of
    the root, and each such occurrence still carries a full depth-(n−1)
    subtree.

    This powers the time-vs-advice tradeoff experiments: with ~2n rounds
    and only [gamma n] bits of advice (the size of the network), every
    node can rebuild the whole map and solve any of the four shades —
    the exponential minimum-time advice of Sections 3-4 collapses when
    the time budget is relaxed (the paper's closing open question). *)

(** [graph_of_cview ctx view ~n] rebuilds the port-labeled graph from a
    hash-consed view of depth at least [2*(n-1)], where [n] is the
    number of vertices of the underlying graph.  Returns the graph and
    the vertex corresponding to the view's root (the numbering follows
    signature discovery order, root = 0; canonicalize with
    [Port_graph.canonical] when distinct nodes must agree on it).
    @raise Invalid_argument if the view is too shallow or the signature
    structure is inconsistent (e.g. [n] is wrong, or the underlying
    graph is infeasible so distinct vertices collide). *)
val graph_of_cview :
  Cview.ctx -> Cview.t -> n:int ->
  Shades_graph.Port_graph.t * Shades_graph.Port_graph.vertex

(** Explicit-tree convenience wrapper around {!graph_of_cview} (the
    input tree is exponential in depth; use for small [n]). *)
val graph_of_view : View_tree.t -> n:int -> Shades_graph.Port_graph.t

(** [rounds_needed ~n] is the view depth the reconstruction requires,
    [2*(n-1)]. *)
val rounds_needed : n:int -> int
