(** The full-information protocol with hash-consed views.

    Identical semantics to {!Full_info} — after [r] rounds each node
    holds exactly [B^r] — but views are interned in one shared
    {!Shades_views.Cview.ctx}, so deep exchanges (e.g. the
    [2(n-1)]-round runs of the time-vs-advice tradeoff) stay polynomial.
    Sharing the interning table across nodes is an implementation
    optimization only: message {e content} is unchanged. *)

(** [run g ~rounds ~advice ~decide] gathers [B^rounds] at every node and
    applies [decide ~advice ctx view]. *)
val run :
  Shades_graph.Port_graph.t ->
  rounds:int ->
  advice:Shades_bits.Bitstring.t ->
  decide:
    (advice:Shades_bits.Bitstring.t -> Shades_views.Cview.ctx ->
     Shades_views.Cview.t -> 'o) ->
  'o array

(** Like {!run} with the round count derived from the advice (asserted
    equal across nodes); returns decisions and the round count. *)
val run_adaptive :
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  rounds_of:(advice:Shades_bits.Bitstring.t -> degree:int -> int) ->
  decide:
    (advice:Shades_bits.Bitstring.t -> Shades_views.Cview.ctx ->
     Shades_views.Cview.t -> 'o) ->
  'o array * int
