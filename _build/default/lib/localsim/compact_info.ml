module Cview = Shades_views.Cview

type state = { target : int; view : Cview.t }

type msg = { from_port : int; view : Cview.t }

let algorithm ctx ~rounds_of ~decide =
  {
    Engine.init =
      (fun ~degree ~advice ->
        {
          target = rounds_of ~advice ~degree;
          view = Cview.make ctx ~degree ~children:[||];
        });
    send =
      (fun st ~port ->
        if st.target = 0 then None
        else Some { from_port = port; view = st.view });
    step =
      (fun st inbox ->
        if st.target = 0 then st
        else begin
          let degree = st.view.Cview.degree in
          assert (List.length inbox = degree);
          let children = Array.make degree (0, st.view) in
          List.iter (fun (p, m) -> children.(p) <- (m.from_port, m.view)) inbox;
          { target = st.target - 1; view = Cview.make ctx ~degree ~children }
        end);
    output =
      (fun st -> if st.target = 0 then Some (decide st.view) else None);
  }

let run_adaptive g ~advice ~rounds_of ~decide =
  let ctx = Cview.create_ctx () in
  let decided = ref None in
  let rounds_of ~advice ~degree =
    let r = rounds_of ~advice ~degree in
    (match !decided with
    | None -> decided := Some r
    | Some r' -> assert (r = r'));
    r
  in
  let result =
    Engine.run g ~advice
      (algorithm ctx ~rounds_of ~decide:(fun view -> decide ~advice ctx view))
  in
  (result.Engine.outputs, result.Engine.rounds)

let run g ~rounds ~advice ~decide =
  if rounds < 0 then invalid_arg "Compact_info.run";
  let outputs, used =
    run_adaptive g ~advice
      ~rounds_of:(fun ~advice:_ ~degree:_ -> rounds)
      ~decide
  in
  assert (used = rounds);
  outputs
