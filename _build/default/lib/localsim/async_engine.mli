(** Asynchronous execution of LOCAL algorithms via time-stamps.

    The paper notes that "the synchronous process of the LOCAL model can
    be simulated in an asynchronous network using time-stamps"
    (Section 1).  This module realizes that remark: messages suffer
    arbitrary (adversarially random, seeded) delays, every node tags its
    traffic with its round number and additionally emits an explicit
    end-of-round marker on every port, and a node advances to round
    [r+1] only after collecting the round-[r] traffic of all its
    neighbours — the classical α-synchronizer.

    Running any {!Engine.algorithm} through this executor produces
    exactly the outputs of the synchronous {!Engine.run}; a property
    test enforces this for every delay schedule tried. *)

(** [run ?max_rounds ?seed g ~advice alg] executes [alg] asynchronously;
    message delays are drawn from a PRNG seeded with [seed] (default 0),
    so runs are reproducible.  The reported [rounds] is the number of
    synchronizer rounds executed — identical to the synchronous round
    count.
    @raise Engine.Did_not_terminate like {!Engine.run}. *)
val run :
  ?max_rounds:int ->
  ?seed:int ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  ('state, 'msg, 'output) Engine.algorithm ->
  'output Engine.result
