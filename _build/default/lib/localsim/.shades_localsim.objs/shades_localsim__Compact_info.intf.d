lib/localsim/compact_info.mli: Shades_bits Shades_graph Shades_views
