lib/localsim/compact_info.ml: Array Engine List Shades_views
