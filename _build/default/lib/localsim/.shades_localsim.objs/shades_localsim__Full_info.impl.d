lib/localsim/full_info.ml: Array Async_engine Engine List Shades_views
