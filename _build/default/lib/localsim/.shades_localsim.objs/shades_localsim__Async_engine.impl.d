lib/localsim/async_engine.ml: Array Engine Hashtbl Int List Map Option Random Shades_graph
