lib/localsim/async_engine.mli: Engine Shades_bits Shades_graph
