lib/localsim/engine.ml: Array Int List Option Shades_bits Shades_graph
