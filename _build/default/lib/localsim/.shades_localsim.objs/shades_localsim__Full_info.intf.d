lib/localsim/full_info.mli: Shades_bits Shades_graph Shades_views
