lib/localsim/engine.mli: Shades_bits Shades_graph
