bin/shades_cli.mli:
