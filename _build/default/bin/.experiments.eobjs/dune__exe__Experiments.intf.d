bin/experiments.mli:
