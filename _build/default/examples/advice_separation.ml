(* Advice separation: the paper's headline result, measured.

   On the class G_{∆,k}, minimum-time Selection needs only the view of
   one node — advice polynomial in ∆.  On the class U_{∆,k}, where
   ψ_S = ψ_PE = k, minimum-time Port Election must essentially reveal
   the σ-sequence hidden behind the heavy nodes' swapped ports: the
   number of distinguishable inputs is (∆−1)^{(∆−1)^z}, so any scheme
   needs advice exponential in ∆.  We print both the information-
   theoretic floors (log2 of the class sizes) and what our concrete
   schemes actually emit.

   Run with: dune exec examples/advice_separation.exe *)

open Shades_election
open Shades_families

let () =
  Printf.printf "Selection on G_{delta,k} (Thm 2.2 scheme):\n";
  Printf.printf "%6s %3s %10s %14s %22s\n" "delta" "k" "n" "advice bits"
    "log2 |class| (floor)";
  List.iter
    (fun (delta, k) ->
      let params = { Gclass.delta; k } in
      let i = 2 in
      let g = (Gclass.build params ~i).Gclass.graph in
      let bits = Select_by_view.advice_bits g in
      Printf.printf "%6d %3d %10d %14d %22.1f\n" delta k
        (Shades_graph.Port_graph.order g)
        bits
        (Gclass.num_graphs_log2 params))
    [ (3, 1); (3, 2); (4, 1); (4, 2); (5, 1); (5, 2); (6, 1) ];

  Printf.printf
    "\nPort Election on U_{delta,k} (Lemma 3.9 scheme, advice = map):\n";
  Printf.printf "%6s %3s %10s %14s %22s\n" "delta" "k" "n" "advice bits"
    "log2 |class| (floor)";
  List.iter
    (fun (delta, k) ->
      let params = { Uclass.delta; k } in
      let t = Uclass.build params ~sigma:(Uclass.uniform_sigma params 1) in
      let g = t.Uclass.graph in
      let advice = Uclass.pe_scheme.Scheme.oracle g in
      Printf.printf "%6d %3d %10d %14d %22.1f\n" delta k
        (Shades_graph.Port_graph.order g)
        (Shades_bits.Bitstring.length advice)
        (Uclass.num_graphs_log2 params))
    [ (4, 1); (5, 1); (6, 1) ];

  (* The shape of the separation: with the time budget pinned to the
     common index k, the Selection floor grows like (∆−1)^k log ∆ —
     polynomial in ∆ — while the PE floor grows like
     (∆−1)^{(∆−2)(∆−1)^{k−1}} log ∆ — exponential in ∆. *)
  Printf.printf "\nInformation floors as functions of delta (k = 1):\n";
  Printf.printf "%6s %20s %24s %10s\n" "delta" "S floor (bits)"
    "PE floor (bits)" "ratio";
  List.iter
    (fun delta ->
      let s = Gclass.num_graphs_log2 { Gclass.delta; k = 1 } in
      let pe = Uclass.num_graphs_log2 { Uclass.delta; k = 1 } in
      Printf.printf "%6d %20.1f %24.1f %10.1f\n" delta s pe (pe /. s))
    [ 4; 5; 6; 7; 8; 10; 12 ];

  Printf.printf
    "\nPPE/CPPE on J_{mu,k}: |class| = 2^(2^(z-1)), z = |L_k|:\n";
  Printf.printf "%4s %3s %8s %28s\n" "mu" "k" "z" "log2 |class| (floor)";
  List.iter
    (fun (mu, k) ->
      Printf.printf "%4d %3d %8d %28.3e\n" mu k (Jclass.z ~mu ~k)
        (Jclass.class_size_log2 ~mu ~k))
    [ (3, 4); (4, 4); (3, 5); (4, 6) ]
