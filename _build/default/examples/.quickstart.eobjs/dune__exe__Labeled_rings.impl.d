examples/labeled_rings.ml: Array Chang_roberts Gen Hirschberg_sinclair List Model Peterson Printf Random Refinement Shades_graph Shades_labeled Shades_views
