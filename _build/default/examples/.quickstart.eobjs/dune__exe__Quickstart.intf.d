examples/quickstart.mli:
