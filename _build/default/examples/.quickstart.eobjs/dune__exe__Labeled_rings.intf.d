examples/labeled_rings.mli:
