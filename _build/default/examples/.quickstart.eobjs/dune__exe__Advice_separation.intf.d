examples/advice_separation.mli:
