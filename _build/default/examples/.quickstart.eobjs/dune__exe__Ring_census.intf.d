examples/ring_census.mli:
