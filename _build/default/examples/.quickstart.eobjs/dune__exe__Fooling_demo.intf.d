examples/fooling_demo.mli:
