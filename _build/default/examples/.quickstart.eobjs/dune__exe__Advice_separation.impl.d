examples/advice_separation.ml: Gclass Jclass List Printf Scheme Select_by_view Shades_bits Shades_election Shades_families Shades_graph Uclass
