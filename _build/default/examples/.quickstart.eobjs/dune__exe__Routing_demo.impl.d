examples/routing_demo.ml: Array Gen List Map_advice Port_graph Printf Random Scheme Shades_election Shades_graph Task Verify
