examples/fooling_demo.ml: Array Gclass Jclass Printf Scheme Select_by_view Shades_election Shades_families Uclass Verify
