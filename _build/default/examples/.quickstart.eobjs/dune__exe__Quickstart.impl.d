examples/quickstart.ml: Array Format Gen Index List Map_advice Port_graph Printf Refinement Scheme Select_by_view Shades_election Shades_graph Shades_views String Task Verify View_tree
