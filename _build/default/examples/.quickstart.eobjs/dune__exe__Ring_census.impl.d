examples/ring_census.ml: Gen Index List Port_graph Printf Random Refinement Shades_election Shades_graph Shades_views String
