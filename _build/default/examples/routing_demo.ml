(* Routing demo: the Section 1 motivation for the strong shades.

   After Port Election, packets reach the leader hop-by-hop: every relay
   must cooperate by looking up its own stored port.  After (Complete)
   Port Path Election, the originator writes the whole route into the
   packet header and relays only pop ports — no per-relay state, and with
   CPPE the relay can even verify the arrival port defensively.

   We elect a leader on a random anonymous network with all three output
   conventions, then deliver one packet from every node and report the
   hop counts and relay-state requirements.

   Run with: dune exec examples/routing_demo.exe *)

open Shades_graph
open Shades_election

(* Hop-by-hop forwarding using PE outputs: the packet consults the
   stored port of every relay it visits. *)
let route_hop_by_hop g outputs ~leader start =
  let rec go v hops relays =
    if v = leader then (hops, relays)
    else
      match outputs.(v) with
      | Task.Leader -> (hops, relays)
      | Task.Follower p ->
          go (Port_graph.neighbor_vertex g v p) (hops + 1) (relays + 1)
  in
  go start 0 (-1) (* the originator is not a relay *)

(* Source routing using PPE/CPPE outputs: the header carries the ports;
   relays keep no state.  With CPPE we also check each arrival port. *)
let route_source g pairs ~leader ~check_arrival start =
  let rec go v hops = function
    | [] ->
        if v <> leader then failwith "route did not reach the leader";
        hops
    | (p, q) :: rest ->
        let u, q' = Port_graph.neighbor g v p in
        if check_arrival && q' <> q then failwith "arrival port mismatch";
        go u (hops + 1) rest
  in
  go start 0 pairs

let () =
  let g = Gen.random (Random.State.make [| 2021 |]) 12 ~extra_edges:6 in
  Printf.printf "network: n=%d m=%d\n" (Port_graph.order g) (Port_graph.size g);

  (* Port Election: every node stores one port. *)
  let pe = Scheme.run Map_advice.port_election g in
  let leader =
    match Verify.port_election g pe.Scheme.outputs with
    | Ok l -> l
    | Error e -> failwith e
  in
  Printf.printf "\nPE (rounds=%d): leader is node %d\n" pe.Scheme.rounds leader;
  let total_hops = ref 0 and total_relays = ref 0 in
  Array.iteri
    (fun v _ ->
      if v <> leader then begin
        let hops, relays = route_hop_by_hop g pe.Scheme.outputs ~leader v in
        total_hops := !total_hops + hops;
        total_relays := !total_relays + relays
      end)
    pe.Scheme.outputs;
  Printf.printf
    "  hop-by-hop delivery from all %d nodes: %d hops, %d cooperating \
     relay lookups\n"
    (Port_graph.order g - 1)
    !total_hops !total_relays;

  (* Complete Port Path Election: self-contained headers. *)
  let cppe = Scheme.run Map_advice.complete_port_path_election g in
  let leader' =
    match Verify.complete_port_path_election g cppe.Scheme.outputs with
    | Ok l -> l
    | Error e -> failwith e
  in
  Printf.printf "\nCPPE (rounds=%d): leader is node %d\n" cppe.Scheme.rounds
    leader';
  let total = ref 0 in
  Array.iteri
    (fun v answer ->
      match answer with
      | Task.Leader -> ()
      | Task.Follower pairs ->
          total :=
            !total
            + route_source g pairs ~leader:leader' ~check_arrival:true v)
    cppe.Scheme.outputs;
  Printf.printf
    "  source-routed delivery from all nodes: %d hops, 0 relay lookups, \
     every arrival port verified\n"
    !total;

  (* The leaders may differ (each scheme picks its own minimum-time
     solution); both are legitimate. *)
  Printf.printf
    "\nheader sizes: PE stores 1 port per node; CPPE headers average %.1f \
     port pairs\n"
    (let sum = ref 0 and cnt = ref 0 in
     Array.iter
       (function
         | Task.Leader -> ()
         | Task.Follower pairs ->
             sum := !sum + List.length pairs;
             incr cnt)
       cppe.Scheme.outputs;
     float_of_int !sum /. float_of_int !cnt)
