(* Fooling demo: the lower-bound mechanism of Theorems 2.9, 3.11 and
   4.11, executed.

   Each lower bound is a pigeonhole argument: with too few advice bits,
   two different class members receive the same string; nodes that
   cannot distinguish the two networks within k rounds then produce the
   same output in both, and in one of them that output is wrong.  Here
   we force exactly that: run each scheme on graph B with the advice the
   oracle produced for graph A, and watch the verifier reject.

   Run with: dune exec examples/fooling_demo.exe *)

open Shades_election
open Shades_families

let show name result =
  Printf.printf "  %-12s %s\n" name
    (match result with
    | Ok leader -> Printf.sprintf "accepted (leader = node %d)" leader
    | Error e -> "REJECTED: " ^ e)

let () =
  (* --- Selection on G_{4,2} (Theorem 2.9) --- *)
  Printf.printf "Selection on G_{4,2}: advice of G_2 forced onto G_3\n";
  let p = { Gclass.delta = 4; k = 2 } in
  let a = Gclass.build p ~i:2 and b = Gclass.build p ~i:3 in
  let advice = Select_by_view.scheme.Scheme.oracle a.Gclass.graph in
  let honest =
    Scheme.run_with_advice Select_by_view.scheme a.Gclass.graph ~advice
  in
  show "honest:" (Verify.selection a.Gclass.graph honest.Scheme.outputs);
  let fooled =
    Scheme.run_with_advice Select_by_view.scheme b.Gclass.graph ~advice
  in
  show "fooled:" (Verify.selection b.Gclass.graph fooled.Scheme.outputs);
  Printf.printf
    "  (G_3 contains two copies of the tree that is unique in G_2, so\n\
    \   both of their roots matched the advice view)\n\n";

  (* --- Port Election on U_{4,1} (Theorem 3.11) --- *)
  Printf.printf "Port Election on U_{4,1}: sigma differs at one tree\n";
  let p = { Uclass.delta = 4; k = 1 } in
  let sa = Uclass.uniform_sigma p 1 in
  let sb = Uclass.uniform_sigma p 1 in
  sb.(4) <- 3;
  let a = Uclass.build p ~sigma:sa and b = Uclass.build p ~sigma:sb in
  let advice = Uclass.pe_scheme.Scheme.oracle a.Uclass.graph in
  let honest = Scheme.run_with_advice Uclass.pe_scheme a.Uclass.graph ~advice in
  show "honest:" (Verify.port_election a.Uclass.graph honest.Scheme.outputs);
  let fooled = Scheme.run_with_advice Uclass.pe_scheme b.Uclass.graph ~advice in
  show "fooled:" (Verify.port_election b.Uclass.graph fooled.Scheme.outputs);
  Printf.printf
    "  (the heavy node's k-round view is identical in both graphs, so it\n\
    \   output the old first port, which now leads into a decoy path)\n\n";

  (* --- CPPE on J_{3,4} (Theorem 4.11/4.12) --- *)
  Printf.printf "CPPE on scaled J_{3,4}: Y differs at one gadget\n";
  let p = { Jclass.mu = 3; k = 4; z_eff = 3 } in
  let ya = Jclass.y_zero p in
  let yb = Jclass.y_zero p in
  yb.(1) <- true;
  let a = Jclass.build p ~y:ya and b = Jclass.build p ~y:yb in
  let scheme = Jclass.cppe_scheme a in
  let advice = scheme.Scheme.oracle a.Jclass.graph in
  let honest = Scheme.run_with_advice scheme a.Jclass.graph ~advice in
  show "honest:"
    (Verify.complete_port_path_election a.Jclass.graph honest.Scheme.outputs);
  let fooled = Scheme.run_with_advice scheme b.Jclass.graph ~advice in
  show "fooled:"
    (Verify.complete_port_path_election b.Jclass.graph fooled.Scheme.outputs);
  Printf.printf
    "  (right-half nodes cannot see the swapped ports at the flipped\n\
    \   gadget's centre; their advice-dictated port paths derail there)\n"
