(* Quickstart: build a small anonymous network, inspect views, compute
   the four election indexes, and elect a leader with advice through the
   LOCAL simulator.

   Run with: dune exec examples/quickstart.exe *)

open Shades_graph
open Shades_views
open Shades_election

let () =
  (* The paper's running example: a 3-node line whose ports read
     0,0,1,0 from left to right. *)
  let g = Gen.path_with_ports [ (0, 0); (1, 0) ] in
  Format.printf "network: %a@." Port_graph.pp g;

  (* Views: what a node can learn in r rounds. *)
  let b1 = View_tree.of_graph g 0 ~depth:1 in
  Format.printf "B^1(left leaf) = %a@." View_tree.pp b1;
  Format.printf "left and right leaves share B^0: %b@."
    (View_tree.equal
       (View_tree.of_graph g 0 ~depth:0)
       (View_tree.of_graph g 2 ~depth:0));
  Format.printf "...but differ at B^1: %b@."
    (not
       (View_tree.equal
          (View_tree.of_graph g 0 ~depth:1)
          (View_tree.of_graph g 2 ~depth:1)));

  (* Election indexes: the minimum rounds for each task shade. *)
  Format.printf "feasible: %b@." (Refinement.feasible g);
  List.iter
    (fun (kind, psi) ->
      Format.printf "psi_%s = %s@."
        (Task.kind_to_string kind)
        (match psi with Some k -> string_of_int k | None -> "infinite"))
    (Index.all g);

  (* Elect a leader in minimum time with the Theorem 2.2 scheme: the
     oracle hands every node the same advice string; the nodes exchange
     views over the simulated network and decide. *)
  let { Scheme.outputs; rounds; advice_bits } =
    Scheme.run Select_by_view.scheme g
  in
  (match Verify.selection g outputs with
  | Ok leader ->
      Format.printf
        "selection: node %d elected in %d rounds with %d advice bits@."
        leader rounds advice_bits
  | Error e -> Format.printf "selection failed: %s@." e);

  (* The strongest shade: every node outputs a complete port path to the
     leader. *)
  let r = Scheme.run Map_advice.complete_port_path_election g in
  match Verify.complete_port_path_election g r.Scheme.outputs with
  | Ok leader ->
      Format.printf "CPPE: leader %d, %d rounds; outputs:@." leader
        r.Scheme.rounds;
      Array.iteri
        (fun v answer ->
          Format.printf "  node %d -> %a@." v
            (Task.pp_answer (fun fmt pairs ->
                 Format.fprintf fmt "[%s]"
                   (String.concat "; "
                      (List.map
                         (fun (p, q) -> Printf.sprintf "(%d,%d)" p q)
                         pairs))))
            answer)
        r.Scheme.outputs
  | Error e -> Format.printf "CPPE failed: %s@." e
