(* Labeled rings: the world the paper leaves behind.

   With distinct identifiers, leader election is about message
   complexity, not information: the classical ring algorithms the
   paper's Related Work cites trade simplicity for messages.  This
   example reproduces their shapes — Chang-Roberts collapses to Θ(n²)
   on adversarial label placements while Hirschberg-Sinclair and
   Peterson stay Θ(n log n) — and contrasts them with the anonymous
   world, where the oriented ring does not admit election at all.

   Run with: dune exec examples/labeled_rings.exe *)

open Shades_graph
open Shades_labeled
open Shades_views

let () =
  Printf.printf "%6s %12s %12s %12s %12s\n" "n" "LCR worst" "LCR avg"
    "HS worst" "Peterson";
  List.iter
    (fun n ->
      let g = Gen.oriented_ring n in
      let msgs labels alg = (Model.run g ~labels alg).Model.messages in
      let desc = Array.init n (fun i -> n - i) in
      (* average LCR over a few random placements *)
      let avg =
        let total = ref 0 in
        for seed = 1 to 5 do
          let st = Random.State.make [| seed |] in
          let a = Array.init n (fun i -> i + 1) in
          for i = n - 1 downto 1 do
            let j = Random.State.int st (i + 1) in
            let t = a.(i) in
            a.(i) <- a.(j);
            a.(j) <- t
          done;
          total := !total + msgs a Chang_roberts.algorithm
        done;
        !total / 5
      in
      Printf.printf "%6d %12d %12d %12d %12d\n" n
        (msgs desc Chang_roberts.algorithm)
        avg
        (msgs desc Hirschberg_sinclair.algorithm)
        (msgs desc Peterson.algorithm))
    [ 8; 16; 32; 64; 128; 256 ];

  (* The same ring, stripped of labels, admits no leader at all. *)
  Printf.printf
    "\nanonymous contrast: the oriented ring with no labels is infeasible\n";
  List.iter
    (fun n ->
      Printf.printf "  ring %3d: feasible = %b\n" n
        (Refinement.feasible (Gen.oriented_ring n)))
    [ 8; 64 ];
  Printf.printf
    "no amount of time or advice elects a leader there - symmetry, not\n\
     information, is the obstacle the paper's framework quantifies.\n"
