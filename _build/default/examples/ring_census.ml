(* Ring census: a survey of feasibility and election indexes over small
   anonymous networks — oriented rings (where election is impossible no
   matter how much time or advice is allowed), paths, stars, cliques,
   and random port-labeled graphs.

   This illustrates the paper's framing: leader election in anonymous
   networks hinges on the graph's view structure, not on identifiers.

   Run with: dune exec examples/ring_census.exe *)

open Shades_graph
open Shades_views
open Shades_election

let describe name g =
  let feasible = Refinement.feasible g in
  let indexes = Index.all g in
  let cell (_, psi) =
    match psi with Some k -> string_of_int k | None -> "-"
  in
  Printf.printf "%-24s %5d %5d %8s %4s %4s %4s %4s\n" name
    (Port_graph.order g) (Port_graph.size g)
    (if feasible then "yes" else "no")
    (cell (List.nth indexes 0))
    (cell (List.nth indexes 1))
    (cell (List.nth indexes 2))
    (cell (List.nth indexes 3))

let () =
  Printf.printf "%-24s %5s %5s %8s %4s %4s %4s %4s\n" "graph" "n" "m"
    "feasible" "S" "PE" "PPE" "CPPE";
  Printf.printf "%s\n" (String.make 64 '-');
  (* Oriented rings: vertex-transitive, hence infeasible at any size. *)
  List.iter
    (fun n -> describe (Printf.sprintf "oriented ring %d" n) (Gen.oriented_ring n))
    [ 3; 5; 8 ];
  (* Paths: port orientation breaks the mirror symmetry. *)
  List.iter
    (fun n -> describe (Printf.sprintf "path %d" n) (Gen.path n))
    [ 2; 3; 5; 8 ];
  (* A mirror-labeled path restores the symmetry: infeasible. *)
  describe "mirror path 4"
    (Gen.path_with_ports [ (0, 0); (1, 1); (0, 0) ]);
  (* Stars and cliques. *)
  List.iter
    (fun n -> describe (Printf.sprintf "star %d" n) (Gen.star n))
    [ 4; 7 ];
  List.iter
    (fun n -> describe (Printf.sprintf "clique %d (sorted ports)" n) (Gen.clique n))
    [ 3; 5 ];
  (* Random connected graphs: how often is minimum-time CPPE strictly
     harder (larger index) than S? *)
  Printf.printf "%s\n" (String.make 64 '-');
  let st = Random.State.make [| 2026 |] in
  let total = ref 0 and feasible = ref 0 and strict = ref 0 in
  for _ = 1 to 200 do
    let n = 3 + Random.State.int st 5 in
    let g = Gen.random st n ~extra_edges:(Random.State.int st 4) in
    incr total;
    match (Index.psi_s g, Index.psi_cppe g) with
    | Some s, Some c ->
        incr feasible;
        if c > s then incr strict
    | _ -> ()
  done;
  Printf.printf
    "random census: %d graphs, %d feasible, %d with psi_CPPE > psi_S\n"
    !total !feasible !strict
