(* Benchmark harness: one Bechamel test per experiment in EXPERIMENTS.md,
   plus the speed-gate plumbing around it.

   The paper is a theory paper, so its "tables and figures" are
   constructions and bounds; each bench regenerates one of them —
   building the lower-bound families, computing view refinements and
   election indexes, producing oracle advice, and running the
   minimum-time algorithms through the LOCAL simulator (sequential and
   vertex-sharded).

   Beyond the classic table (dune exec bench/main.exe), the harness
   reads and writes BENCH_micro baselines: per-kernel median wall time
   and mean allocation words, blessed with --out (make bless) and gated with
   --compare (make check / CI), with tolerance bands wide enough to
   survive machine noise — time medians travel badly across hosts, so
   the time band is generous and the nearly machine-independent
   allocation bands carry most of the regression-catching weight. *)

open Bechamel
open Toolkit
open Shades_graph
open Shades_views
open Shades_election
open Shades_families
module Json = Shades_json.Json

let stage = Staged.stage

(* --- E1: index hierarchy on random graphs --- *)

let bench_index =
  let g = Gen.random (Random.State.make [| 7 |]) 7 ~extra_edges:3 in
  Test.make_grouped ~name:"index"
    [
      Test.make ~name:"hierarchy_n7" (stage (fun () -> Index.all g));
      Test.make ~name:"psi_s_n7" (stage (fun () -> Index.psi_s g));
    ]

(* --- views and refinement (machinery behind every experiment) --- *)

let bench_views =
  let g = Gen.random (Random.State.make [| 11 |]) 200 ~extra_edges:100 in
  let u41 =
    let p = { Uclass.delta = 4; k = 1 } in
    (Uclass.build p ~sigma:(Uclass.uniform_sigma p 1)).Uclass.graph
  in
  Test.make_grouped ~name:"views"
    [
      Test.make ~name:"refine_fixpoint_n200"
        (stage (fun () -> Refinement.fixpoint g));
      Test.make ~name:"refine_fixpoint_u41"
        (stage (fun () -> Refinement.fixpoint u41));
      Test.make ~name:"tree_depth3_n200"
        (stage (fun () -> View_tree.of_graph g 0 ~depth:3));
      Test.make ~name:"canonical_key_depth3"
        (let t = View_tree.of_graph g 0 ~depth:3 in
         stage (fun () -> View_tree.canonical_key t));
    ]

(* --- E4/E6: class G constructions and Thm 2.2 advice --- *)

let bench_gclass =
  let g42 = (Gclass.build { Gclass.delta = 4; k = 2 } ~i:3).Gclass.graph in
  Test.make_grouped ~name:"g_class"
    [
      Test.make ~name:"build_d4k2_i3"
        (stage (fun () -> Gclass.build { Gclass.delta = 4; k = 2 } ~i:3));
      Test.make ~name:"build_d5k1_i7"
        (stage (fun () -> Gclass.build { Gclass.delta = 5; k = 1 } ~i:7));
      Test.make ~name:"thm22_oracle_d4k2"
        (stage (fun () -> Select_by_view.scheme.Scheme.oracle g42));
      Test.make ~name:"thm22_full_run_d4k2"
        (stage (fun () -> Scheme.run Select_by_view.scheme g42));
    ]

(* --- E11/E14: class U constructions and Lemma 3.9 PE runs --- *)

let bench_uclass =
  let p = { Uclass.delta = 4; k = 1 } in
  let u = Uclass.build p ~sigma:(Uclass.uniform_sigma p 2) in
  let advice = Uclass.pe_scheme.Scheme.oracle u.Uclass.graph in
  Test.make_grouped ~name:"u_class"
    [
      Test.make ~name:"build_d4k1"
        (stage (fun () -> Uclass.build p ~sigma:(Uclass.uniform_sigma p 2)));
      Test.make ~name:"pe_oracle_d4k1"
        (stage (fun () -> Uclass.pe_scheme.Scheme.oracle u.Uclass.graph));
      Test.make ~name:"pe_run_d4k1"
        (stage (fun () ->
             Scheme.run_with_advice Uclass.pe_scheme u.Uclass.graph ~advice));
      Test.make ~name:"pe_verify_d4k1"
        (let r =
           Scheme.run_with_advice Uclass.pe_scheme u.Uclass.graph ~advice
         in
         stage (fun () -> Verify.port_election u.Uclass.graph r.Scheme.outputs));
    ]

(* --- E16-E22: layers, component H, class J --- *)

let bench_jclass =
  let p = { Jclass.mu = 3; k = 4; z_eff = 3 } in
  let j = Jclass.build p ~y:(Jclass.y_zero p) in
  Test.make_grouped ~name:"j_class"
    [
      Test.make ~name:"layer_l5_mu3"
        (stage (fun () ->
             let proto = Proto.create () in
             let _ = Layers.add proto ~mu:3 ~m:5 in
             Proto.build proto));
      Test.make ~name:"component_h_mu3_k4"
        (stage (fun () -> Component.standalone ~mu:3 ~k:4));
      Test.make ~name:"build_j_mu3_k4_z3"
        (stage (fun () -> Jclass.build p ~y:(Jclass.y_zero p)));
      Test.make ~name:"cppe_assignment"
        (stage (fun () -> Jclass.cppe_assignment j));
      Test.make ~name:"cppe_verify"
        (let answers = Jclass.cppe_assignment j in
         stage (fun () ->
             Verify.complete_port_path_election j.Jclass.graph answers));
    ]

(* --- E10/E15: fooling runs --- *)

let bench_fooling =
  let ga = Gclass.build { Gclass.delta = 4; k = 1 } ~i:2 in
  let gb = Gclass.build { Gclass.delta = 4; k = 1 } ~i:7 in
  let advice_g = Select_by_view.scheme.Scheme.oracle ga.Gclass.graph in
  Test.make_grouped ~name:"fooling"
    [
      Test.make ~name:"selection_fooled_run"
        (stage (fun () ->
             Scheme.run_with_advice Select_by_view.scheme gb.Gclass.graph
               ~advice:advice_g));
    ]

(* --- simulator throughput --- *)

let bench_sim =
  let g = Gen.random (Random.State.make [| 13 |]) 500 ~extra_edges:250 in
  Test.make_grouped ~name:"sim"
    [
      Test.make ~name:"full_info_3rounds_n500"
        (stage (fun () ->
             Shades_localsim.Full_info.run g ~rounds:3
               ~advice:Shades_bits.Bitstring.empty
               ~decide:(fun ~advice:_ v -> v.View_tree.degree)));
    ]

(* --- engine hot path: CSR adjacency and the sharded executor --- *)

(* A cheap constant-size-message algorithm, so these kernels time the
   engines themselves (adjacency walks, inbox plumbing, barriers), not
   view-tree construction. *)
let countdown r =
  {
    Shades_localsim.Engine.init = (fun ~degree ~advice:_ -> (degree, r));
    send = (fun (_, left) ~port:_ -> if left > 0 then Some () else None);
    step = (fun (d, left) _ -> (d, left - 1));
    output = (fun (d, left) -> if left <= 0 then Some d else None);
  }

let bench_engine =
  let g = Gen.random (Random.State.make [| 31 |]) 2_000 ~extra_edges:1_000 in
  let csr = Port_graph.Csr.of_graph g in
  let no_advice = Shades_bits.Bitstring.empty in
  Test.make_grouped ~name:"engine"
    [
      Test.make ~name:"csr_build_n2000"
        (stage (fun () -> Port_graph.Csr.of_graph g));
      (* the same every-port sweep the engines run each round, on the
         two adjacency representations the repo has *)
      Test.make ~name:"csr_walk_n2000"
        (stage (fun () ->
             let acc = ref 0 in
             for v = 0 to Port_graph.Csr.order csr - 1 do
               for p = 0 to Port_graph.Csr.degree csr v - 1 do
                 acc :=
                   !acc
                   + Port_graph.Csr.neighbor_vertex csr v p
                   + Port_graph.Csr.neighbor_port csr v p
               done
             done;
             !acc));
      Test.make ~name:"adj_walk_n2000"
        (stage (fun () ->
             let acc = ref 0 in
             for v = 0 to Port_graph.order g - 1 do
               for p = 0 to Port_graph.degree g v - 1 do
                 let u, q = Port_graph.neighbor g v p in
                 acc := !acc + u + q
               done
             done;
             !acc));
      Test.make ~name:"seq_countdown_n2000"
        (stage (fun () ->
             Shades_localsim.Engine.run g ~advice:no_advice (countdown 3)));
      Test.make ~name:"sharded_countdown_d2_n2000"
        (stage (fun () ->
             Shades_localsim.Sharded_engine.run ~domains:2 g
               ~advice:no_advice (countdown 3)));
    ]

(* --- E25-E29 extensions: reconstruction, tradeoff, exact advice --- *)

let bench_extensions =
  let g = Gen.random (Random.State.make [| 21 |]) 40 ~extra_edges:20 in
  let n = Port_graph.order g in
  let ctx = Cview.create_ctx () in
  let deep = Cview.of_graph ctx g 0 ~depth:(Reconstruct.rounds_needed ~n) in
  let g_small = Gen.random (Random.State.make [| 22 |]) 10 ~extra_edges:5 in
  let p = { Uclass.delta = 4; k = 1 } in
  let ua = (Uclass.build p ~sigma:(Uclass.uniform_sigma p 1)).Uclass.graph in
  let ub = (Uclass.build p ~sigma:(Uclass.uniform_sigma p 2)).Uclass.graph in
  Test.make_grouped ~name:"extensions"
    [
      Test.make ~name:"cview_deep_n40"
        (stage (fun () ->
             let ctx = Cview.create_ctx () in
             Cview.of_graph ctx g 0 ~depth:(Reconstruct.rounds_needed ~n)));
      Test.make ~name:"reconstruct_n40"
        (stage (fun () -> Reconstruct.graph_of_cview ctx deep ~n));
      Test.make ~name:"canonical_order_n40"
        (stage (fun () -> Refinement.canonical_order g));
      Test.make ~name:"canonical_bfs_n40"
        (stage (fun () -> Port_graph.canonical g));
      Test.make ~name:"size_advice_cppe_n10"
        (stage (fun () ->
             Size_advice.run Size_advice.complete_port_path_election g_small));
      Test.make ~name:"async_flooding_n40"
        (stage (fun () ->
             Shades_localsim.Async_engine.run g
               ~advice:Shades_bits.Bitstring.empty (countdown 3)));
      Test.make ~name:"pe_sharable_u41"
        (stage (fun () -> Min_advice.pe_sharable ~depth:1 ua ub));
      Test.make ~name:"labelings_path5"
        (stage (fun () ->
             Gen.all_labelings 5 [ (0, 1); (1, 2); (2, 3); (3, 4) ]));
    ]

(* --- E30: labeled baselines --- *)

let bench_labeled =
  let module L = Shades_labeled.Model in
  let g = Gen.oriented_ring 64 in
  let desc = Array.init 64 (fun i -> 64 - i) in
  Test.make_grouped ~name:"labeled"
    [
      Test.make ~name:"lcr_worst_n64"
        (stage (fun () ->
             L.run g ~labels:desc Shades_labeled.Chang_roberts.algorithm));
      Test.make ~name:"hs_n64"
        (stage (fun () ->
             L.run g ~labels:desc
               Shades_labeled.Hirschberg_sinclair.algorithm));
      Test.make ~name:"peterson_n64"
        (stage (fun () ->
             L.run g ~labels:desc Shades_labeled.Peterson.algorithm));
    ]

let all_tests =
  Test.make_grouped ~name:"shades"
    [
      bench_index; bench_views; bench_gclass; bench_uclass; bench_jclass;
      bench_fooling; bench_sim; bench_engine; bench_extensions; bench_labeled;
    ]

(* --- measurement: per-kernel figures over the raw samples ---

   OLS slopes are great locally but fold sampling noise into the
   estimate in ways that vary across machines; for a gate we want a
   robust location statistic, so wall time is the median of the
   per-run values over all raw samples.

   Allocation needs its own measures: bechamel's stock instances read
   [Gc.quick_stat], whose allocation fields on the OCaml 5 runtime
   only advance when the GC merges a stats sample — between merges the
   counter is frozen, so a whole benchmark can read 0 words no matter
   what it allocates, and the gate flaps with prior heap state.
   [Gc.minor_words] and [Gc.counters] compute from the live allocation
   pointer instead, so the custom instances below are exact.  The
   per-run figure is total-words-over-total-runs, which also amortizes
   the boxing overhead of the counter reads themselves. *)

module Live_minor_words = struct
  type witness = unit

  let load () = ()
  let unload () = ()
  let make () = ()
  let get () = Gc.minor_words ()
  let label () = "live-minor-words"
  let unit () = "mnw"
end

module Live_major_words = struct
  type witness = unit

  let load () = ()
  let unload () = ()
  let make () = ()

  let get () =
    let _minor, _promoted, major = Gc.counters () in
    major

  let label () = "live-major-words"
  let unit () = "mjw"
end

let live_minor_ext = Measure.register (module Live_minor_words)
let live_major_ext = Measure.register (module Live_major_words)

let live_minor_instance =
  Measure.instance (module Live_minor_words) live_minor_ext

let live_major_instance =
  Measure.instance (module Live_major_words) live_major_ext

type figures = {
  time_ns : float;  (** median wall time per run *)
  minor_words : float;  (** mean minor-heap words allocated per run *)
  major_words : float;  (** mean major-heap words allocated per run *)
}

let median a =
  let a = Array.copy a in
  Array.sort Float.compare a;
  let n = Array.length a in
  if n = 0 then nan
  else if n land 1 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let label_clock = Measure.label Instance.monotonic_clock
let label_minor = Measure.label live_minor_instance
let label_major = Measure.label live_major_instance

let figures_of_benchmark (b : Benchmark.t) =
  let median_per_run label =
    median
      (Array.map
         (fun m -> Measurement_raw.get ~label m /. Measurement_raw.run m)
         b.Benchmark.lr)
  in
  let mean_per_run label =
    let words, runs =
      Array.fold_left
        (fun (words, runs) m ->
          (words +. Measurement_raw.get ~label m,
           runs +. Measurement_raw.run m))
        (0.0, 0.0) b.Benchmark.lr
    in
    if runs = 0.0 then nan else words /. runs
  in
  {
    time_ns = median_per_run label_clock;
    minor_words = mean_per_run label_minor;
    major_words = mean_per_run label_major;
  }

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  nl = 0
  ||
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let measure ~quota ~filter () =
  let instances =
    [ Instance.monotonic_clock; live_minor_instance; live_major_instance ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  Test.elements all_tests
  |> List.filter (fun elt ->
         match filter with
         | None -> true
         | Some needle -> contains ~needle (Test.Elt.name elt))
  |> List.map (fun elt ->
         (Test.Elt.name elt, figures_of_benchmark (Benchmark.run cfg instances elt)))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- baseline file I/O (BENCH_micro/baseline.json) --- *)

let baseline_version = 1

let figures_to_json f =
  Json.Obj
    [
      ("time_ns", Json.Float f.time_ns);
      ("minor_words", Json.Float f.minor_words);
      ("major_words", Json.Float f.major_words);
    ]

let number name j =
  match Json.member name j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> failwith ("baseline: kernel entry needs a numeric " ^ name)

let baseline_to_json ~quota results =
  Json.Obj
    [
      ("version", Json.Int baseline_version);
      ("quota_s", Json.Float quota);
      ( "kernels",
        Json.Obj (List.map (fun (n, f) -> (n, figures_to_json f)) results) );
    ]

let baseline_of_json j =
  (match Json.member "version" j with
  | Some (Json.Int v) when v = baseline_version -> ()
  | Some (Json.Int v) ->
      failwith (Printf.sprintf "baseline: format v%d, expected v%d" v
                  baseline_version)
  | _ -> failwith "baseline: missing version");
  match Json.member "kernels" j with
  | Some (Json.Obj kernels) ->
      List.map
        (fun (name, entry) ->
          ( name,
            {
              time_ns = number "time_ns" entry;
              minor_words = number "minor_words" entry;
              major_words = number "major_words" entry;
            } ))
        kernels
  | _ -> failwith "baseline: missing kernels object"

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents; output_char oc '\n')

let read_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> failwith e
  | text -> (
      match Json.of_string text with
      | Ok j -> j
      | Error e -> failwith (path ^ ": " ^ e))

(* --- comparison with tolerance bands ---

   A kernel regresses when the current median exceeds baseline *
   tolerance AND the absolute excess clears a floor — the floor keeps
   nanosecond-scale kernels and allocation-free loops from flapping on
   scheduler or GC jitter.  Improvements never fail the gate (they are
   reported, with a nudge to re-bless). *)

let time_floor_ns = 1_000.0
let alloc_floor_words = 256.0

type verdict = {
  kernel : string;
  metric : string;
  base_v : float;
  cur_v : float;
  tolerance : float;
}

let compare_results ~time_tolerance ~alloc_tolerance ~baseline ~current =
  let regressions = ref [] in
  let missing = ref [] in
  let improved = ref 0 in
  List.iter
    (fun (name, cur) ->
      match List.assoc_opt name baseline with
      | None -> missing := name :: !missing
      | Some base ->
          let check metric base_v cur_v tolerance floor =
            if cur_v > (base_v *. tolerance) +. epsilon_float
               && cur_v -. base_v > floor
            then
              regressions :=
                { kernel = name; metric; base_v; cur_v; tolerance }
                :: !regressions
            else if cur_v *. tolerance < base_v && base_v -. cur_v > floor
            then incr improved
          in
          check "time_ns" base.time_ns cur.time_ns time_tolerance
            time_floor_ns;
          check "minor_words" base.minor_words cur.minor_words
            alloc_tolerance alloc_floor_words;
          check "major_words" base.major_words cur.major_words
            alloc_tolerance alloc_floor_words)
    current;
  (List.rev !regressions, List.rev !missing, !improved)

(* --- reporting --- *)

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let print_table results =
  Printf.printf "%-48s %12s %14s %14s\n" "benchmark" "time/run"
    "minor w/run" "major w/run";
  Printf.printf "%s\n" (String.make 92 '-');
  List.iter
    (fun (name, f) ->
      Printf.printf "%-48s %12s %14.0f %14.0f\n" name (pretty_ns f.time_ns)
        f.minor_words f.major_words)
    results

(* --- CLI --- *)

let run out compare_with time_tolerance alloc_tolerance json_out quota filter
    =
  let results = measure ~quota ~filter () in
  if results = [] then failwith "bench: no kernels match the filter";
  print_table results;
  Option.iter
    (fun path ->
      write_file path (Json.to_string (baseline_to_json ~quota results));
      Printf.printf "wrote %d kernel baseline%s to %s\n" (List.length results)
        (if List.length results = 1 then "" else "s")
        path)
    json_out;
  Option.iter
    (fun path ->
      write_file path (Json.to_string (baseline_to_json ~quota results));
      Printf.printf "blessed %d kernel%s into %s\n" (List.length results)
        (if List.length results = 1 then "" else "s")
        path)
    out;
  match compare_with with
  | None -> ()
  | Some path ->
      let baseline = baseline_of_json (read_json path) in
      let regressions, missing, improved =
        compare_results ~time_tolerance ~alloc_tolerance ~baseline
          ~current:results
      in
      List.iter
        (fun name ->
          Printf.printf "note: %s has no blessed baseline (new kernel — run \
                         'make bless')\n"
            name)
        missing;
      if improved > 0 then
        Printf.printf
          "note: %d metric%s improved beyond the tolerance band — consider \
           're-blessing' to tighten the gate\n"
          improved
          (if improved = 1 then "" else "s");
      if regressions = [] then
        Printf.printf
          "bench gate: %d kernel%s within tolerance of %s (time x%.1f, \
           alloc x%.1f)\n"
          (List.length results)
          (if List.length results = 1 then "" else "s")
          path time_tolerance alloc_tolerance
      else begin
        List.iter
          (fun v ->
            Printf.eprintf
              "bench gate: %s %s regressed: %.0f -> %.0f (x%.2f, tolerance \
               x%.1f)\n"
              v.kernel v.metric v.base_v v.cur_v (v.cur_v /. v.base_v)
              v.tolerance)
          regressions;
        Printf.eprintf "bench gate: FAILED, %d regression%s against %s\n"
          (List.length regressions)
          (if List.length regressions = 1 then "" else "s")
          path;
        exit 1
      end

let () =
  let open Cmdliner in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:
            "Bless: write the measured per-kernel medians as the new \
             baseline FILE (the BENCH_micro store 'make bless' commits).")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"FILE"
          ~doc:
            "Gate: compare the measured medians against the blessed \
             baseline FILE and exit 1 on any metric outside its tolerance \
             band.")
  in
  let time_tol_arg =
    Arg.(
      value & opt float 3.0
      & info [ "time-tolerance" ] ~docv:"X"
          ~doc:
            "Time band for $(b,--compare): fail when a kernel's median wall \
             time exceeds X times its baseline.  Generous by design — \
             medians travel badly across machines; CI uses a wider band \
             than local runs.")
  in
  let alloc_tol_arg =
    Arg.(
      value & opt float 1.5
      & info [ "alloc-tolerance" ] ~docv:"X"
          ~doc:
            "Allocation band for $(b,--compare): fail when a kernel's \
             median minor- or major-heap words exceed X times the \
             baseline.  Tight by design — allocation counts are nearly \
             machine-independent, so this band catches real hot-path \
             regressions the time band would forgive.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also dump the measured medians as JSON to FILE (the CI \
             artifact uploaded when the gate fails).")
  in
  let quota_arg =
    Arg.(
      value & opt float 0.5
      & info [ "quota" ] ~docv:"SECS"
          ~doc:"Bechamel time quota per kernel, in seconds.")
  in
  let filter_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~docv:"SUBSTR"
          ~doc:"Only run kernels whose full name contains SUBSTR.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "shades_bench"
         ~doc:
           "Micro-benchmarks over the paper's kernels, with a blessable \
            speed baseline (median ns and allocation words per kernel).")
      Term.(
        const run $ out_arg $ compare_arg $ time_tol_arg $ alloc_tol_arg
        $ json_arg $ quota_arg $ filter_arg)
  in
  exit (Cmd.eval cmd)
