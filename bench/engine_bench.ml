(* Wall-clock shootout: sequential vs vertex-sharded LOCAL engine.

   The micro-benchmark gate (main.ml) answers "did a kernel get
   slower"; this harness answers the ISSUE's scaling question: on a
   graph big enough to amortise the barriers (n >= 50k), does the
   sharded engine beat the sequential one when real cores are
   available?

   With --assert the answer is enforced: exit 1 if sharded fails to
   win.  The assertion is honest about hardware — parallel speedup on
   a single-core box is not a thing, so with fewer than 4 recommended
   domains it prints SKIP and exits 0.  Nightly CI runs on multi-core
   runners where the assertion is live. *)

open Shades_graph
module Engine = Shades_localsim.Engine
module Sharded = Shades_localsim.Sharded_engine

(* Constant-size messages: times the executor (adjacency walk, inbox
   plumbing, barriers), not view construction. *)
let countdown r =
  {
    Engine.init = (fun ~degree ~advice:_ -> (degree, r));
    send = (fun (_, left) ~port:_ -> if left > 0 then Some () else None);
    step = (fun (d, left) _ -> (d, left - 1));
    output = (fun (d, left) -> if left <= 0 then Some d else None);
  }

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, t1 -. t0)

let best_of reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let r, dt = wall f in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let run n rounds domains reps enforce =
  let g = Gen.random (Random.State.make [| 97 |]) n ~extra_edges:(n / 2) in
  let advice = Shades_bits.Bitstring.empty in
  let alg = countdown rounds in
  let domains =
    match domains with Some d -> d | None -> Sharded.default_domains ()
  in
  Printf.printf
    "engine shootout: n=%d rounds=%d domains=%d reps=%d (recommended \
     domains on this machine: %d)\n%!"
    n rounds domains reps
    (Domain.recommended_domain_count ());
  let seq, t_seq = best_of reps (fun () -> Engine.run g ~advice alg) in
  Printf.printf "  sequential: %8.1f ms\n%!" (t_seq *. 1e3);
  let shd, t_shd =
    best_of reps (fun () -> Sharded.run ~domains g ~advice alg)
  in
  Printf.printf "  sharded:    %8.1f ms  (x%.2f vs sequential)\n%!"
    (t_shd *. 1e3) (t_seq /. t_shd);
  if seq.Engine.outputs <> shd.Engine.outputs
     || seq.Engine.rounds <> shd.Engine.rounds
     || seq.Engine.messages <> shd.Engine.messages
  then begin
    prerr_endline "engine shootout: FAILED — sharded result diverges from \
                   sequential";
    exit 1
  end;
  if enforce then
    if Domain.recommended_domain_count () < 4 then
      Printf.printf
        "engine shootout: SKIP — only %d recommended domain(s) on this \
         machine; the speedup assertion needs >= 4 real cores\n"
        (Domain.recommended_domain_count ())
    else if t_shd < t_seq then
      Printf.printf "engine shootout: PASS — sharded wins by x%.2f\n"
        (t_seq /. t_shd)
    else begin
      Printf.eprintf
        "engine shootout: FAILED — sharded (%.1f ms) did not beat \
         sequential (%.1f ms) with %d domains on a %d-core-class machine\n"
        (t_shd *. 1e3) (t_seq *. 1e3) domains
        (Domain.recommended_domain_count ());
      exit 1
    end

let () =
  let open Cmdliner in
  let n_arg =
    Arg.(
      value & opt int 50_000
      & info [ "n" ] ~docv:"N" ~doc:"Number of vertices in the random graph.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 8
      & info [ "rounds" ] ~docv:"R" ~doc:"Synchronous rounds to simulate.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"D"
          ~doc:
            "Worker domains for the sharded engine (default: the \
             machine's recommended domain count).")
  in
  let reps_arg =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~docv:"K"
          ~doc:"Repetitions per engine; the best wall time is reported.")
  in
  let assert_arg =
    Arg.(
      value & flag
      & info [ "assert" ]
          ~doc:
            "Enforce the scaling claim: exit 1 unless the sharded engine \
             beats the sequential one.  On machines with fewer than 4 \
             recommended domains the assertion is skipped (exit 0) — \
             there is no parallelism to measure.")
  in
  let cmd =
    Cmd.v
      (Cmd.info "engine_bench"
         ~doc:
           "Wall-clock comparison of the sequential and vertex-sharded \
            LOCAL engines on a large random graph.")
      Term.(
        const run $ n_arg $ rounds_arg $ domains_arg $ reps_arg $ assert_arg)
  in
  exit (Cmd.eval cmd)
