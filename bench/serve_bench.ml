(* Cold / warm / restart-warm load generator for the election daemon.

   Starts a daemon in-process on a private Unix socket with a private
   persistent cache directory, then measures per-request advise latency
   in three phases:

     cold:         N distinct topologies, every request a cache miss —
                   each pays spec parsing + canonicalization + the
                   oracle (elections additionally pay the engine);
     warm:         N repeats of one topology, every request after the
                   first a memo hit — each pays spec parsing + one
                   O(n+m) digest;
     restart-warm: the daemon is shut down and a NEW daemon is started
                   on the same cache directory; the cold phase's whole
                   request mix is replayed and must be answered
                   entirely from the disk tier — zero oracle runs,
                   zero engine runs.

   Prints the three medians and the daemon's own counters.  With
   --assert the exit code enforces the PR's acceptance bar: warm
   median >= 10x below cold, zero warm-phase oracle runs, and zero
   advise/elect recomputation in the restart-warm phase. *)

module Json = Shades_json.Json
module Server = Shades_server

let usage = "serve_bench [--requests N] [--order N] [--assert]"

let requests = ref 40
let order = ref 80
let enforce = ref false

let () =
  Arg.parse
    [
      ("--requests", Arg.Set_int requests, "requests per phase (default 40)");
      ("--order", Arg.Set_int order, "smallest benched path order (default 80)");
      ( "--assert",
        Arg.Set enforce,
        "exit 1 unless warm is >= 10x faster and restart-warm recomputes \
         nothing" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage

let median samples =
  let a = Array.copy samples in
  Array.sort compare a;
  a.(Array.length a / 2)

let counter stats name =
  match Json.member "counters" stats with
  | Some counters -> (
      match Json.member name counters with
      | Some v -> (
          match Json.member "value" v with Some (Json.Int n) -> n | _ -> 0)
      | None -> 0)
  | _ -> 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* one daemon generation: spawn, run [body conn], shut down, join *)
let with_daemon ~endpoint ~cache_dir body =
  let service = Server.Service.create ~cache_dir () in
  let daemon =
    Domain.spawn (fun () -> Server.Daemon.run ~domains:2 endpoint service)
  in
  let conn =
    let rec retry n =
      match Server.Client.connect endpoint with
      | Ok c -> c
      | Error e ->
          if n = 0 then failwith ("daemon never came up: " ^ e)
          else (
            Unix.sleepf 0.05;
            retry (n - 1))
    in
    retry 100
  in
  let result = body conn in
  ignore
    (Server.Client.request conn (Json.Obj [ ("op", Json.String "shutdown") ]));
  Server.Client.close conn;
  Domain.join daemon;
  result

let advise conn spec =
  let req =
    Json.Obj
      [
        ("op", Json.String "advise");
        ("graph", Json.String spec);
        ("task", Json.String "pe");
      ]
  in
  let t0 = Unix.gettimeofday () in
  (match Server.Client.request conn req with
  | Ok (Json.Obj _ as r) when Json.member "error" r = None -> ()
  | Ok r -> failwith ("advise failed: " ^ Json.to_string r)
  | Error e -> failwith ("advise failed: " ^ e));
  Unix.gettimeofday () -. t0

let elect conn spec =
  let req =
    Json.Obj
      [
        ("op", Json.String "elect");
        ("graph", Json.String spec);
        ("task", Json.String "pe");
        ("engine", Json.String "sync");
      ]
  in
  match Server.Client.request conn req with
  | Ok (Json.Obj _ as r) when Json.member "error" r = None -> ()
  | Ok r -> failwith ("elect failed: " ^ Json.to_string r)
  | Error e -> failwith ("elect failed: " ^ e)

let request_stats conn =
  match
    Server.Client.request conn (Json.Obj [ ("op", Json.String "stats") ])
  with
  | Ok r -> (
      match Json.member "result" r with
      | Some s -> s
      | None -> failwith "stats reply has no result")
  | Error e -> failwith ("stats failed: " ^ e)

let () =
  let tmp = Filename.get_temp_dir_name () in
  let socket =
    Filename.concat tmp (Printf.sprintf "shades-bench-%d.sock" (Unix.getpid ()))
  in
  let cache_dir =
    Filename.concat tmp
      (Printf.sprintf "shades-bench-cache-%d" (Unix.getpid ()))
  in
  let endpoint = Server.Protocol.Unix_path socket in
  let n = !requests in
  let cold_spec i = Printf.sprintf "path:%d" (!order + (2 * (i + 1))) in
  let warm_spec = Printf.sprintf "path:%d" !order in
  (* generation 1: cold + warm *)
  let cold, warm, computes_cold, computes_warm, hits =
    with_daemon ~endpoint ~cache_dir (fun conn ->
        (* cold: every topology distinct (distinct orders => distinct
           digests), plus one election that restart-warm must replay *)
        let cold = Array.init n (fun i -> advise conn (cold_spec i)) in
        elect conn warm_spec;
        let stats_after_cold = request_stats conn in
        (* warm: one topology, repeated — the cold-phase election on
           [warm_spec] already computed (and cached) its advice, so
           every warm advise must be a hit *)
        let warm = Array.init n (fun _ -> advise conn warm_spec) in
        let stats_after_warm = request_stats conn in
        let computes_cold = counter stats_after_cold "advise_computes" in
        let computes_warm =
          counter stats_after_warm "advise_computes" - computes_cold
        in
        ( cold,
          warm,
          computes_cold,
          computes_warm,
          counter stats_after_warm "advice_cache_hits" ))
  in
  (* generation 2: a fresh daemon on the same cache directory replays
     the cold mix; every answer must come from the disk tier *)
  let restart, restart_advises, restart_elects, disk_hits =
    with_daemon ~endpoint ~cache_dir (fun conn ->
        let restart = Array.init n (fun i -> advise conn (cold_spec i)) in
        elect conn warm_spec;
        let stats = request_stats conn in
        ( restart,
          counter stats "advise_computes",
          counter stats "elect_computes",
          counter stats "advice_cache_disk_hits"
          + counter stats "result_cache_disk_hits" ))
  in
  rm_rf cache_dir;
  let cold_ms = 1000. *. median cold
  and warm_ms = 1000. *. median warm
  and restart_ms = 1000. *. median restart in
  let ratio = cold_ms /. warm_ms in
  Printf.printf "advise over unix socket, path graphs, %d requests per phase\n"
    n;
  Printf.printf "  cold (distinct topologies)  median: %8.3f ms\n" cold_ms;
  Printf.printf "  warm (repeated topology)    median: %8.3f ms\n" warm_ms;
  Printf.printf "  restart-warm (disk tier)    median: %8.3f ms\n" restart_ms;
  Printf.printf "  cold/warm ratio:                    %8.1fx\n" ratio;
  Printf.printf "  oracle runs: %d cold phase, %d warm phase (cache hits: %d)\n"
    computes_cold computes_warm hits;
  Printf.printf
    "  restart-warm: %d oracle runs, %d engine runs (disk hits: %d)\n"
    restart_advises restart_elects disk_hits;
  if !enforce then
    if ratio < 10. then (
      Printf.printf "FAIL: warm advise is not >= 10x faster than cold\n";
      exit 1)
    else if computes_warm > 0 then (
      Printf.printf "FAIL: the warm phase recomputed advice %d times\n"
        computes_warm;
      exit 1)
    else if restart_advises > 0 || restart_elects > 0 then (
      Printf.printf
        "FAIL: the restart-warm phase recomputed (%d advise, %d elect)\n"
        restart_advises restart_elects;
      exit 1)
    else
      Printf.printf
        "PASS: warm >= 10x faster, zero warm recomputation, zero \
         restart-warm recomputation\n"
