(* Cold-vs-warm load generator for the election daemon.

   Starts a daemon in-process on a private Unix socket, then measures
   per-request advise latency in two phases:

     cold: N distinct topologies, every request a cache miss — each
           pays spec parsing + canonicalization + the oracle;
     warm: N repeats of one topology, every request after the first a
           memo hit — each pays spec parsing + one O(n+m) digest.

   Prints both medians and their ratio, plus the daemon's own counters
   (advise_computes must not move during the warm phase).  With
   --assert the exit code enforces the PR's acceptance bar: warm
   median >= 10x below cold, zero warm-phase oracle runs. *)

module Json = Shades_json.Json
module Server = Shades_server

let usage = "serve_bench [--requests N] [--order N] [--assert]"

let requests = ref 40
let order = ref 80
let enforce = ref false

let () =
  Arg.parse
    [
      ("--requests", Arg.Set_int requests, "requests per phase (default 40)");
      ("--order", Arg.Set_int order, "smallest benched path order (default 80)");
      ("--assert", Arg.Set enforce, "exit 1 unless warm is >= 10x faster");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage

let median samples =
  let a = Array.copy samples in
  Array.sort compare a;
  a.(Array.length a / 2)

let counter stats name =
  match Json.member "counters" stats with
  | Some counters -> (
      match Json.member name counters with
      | Some v -> (
          match Json.member "value" v with Some (Json.Int n) -> n | _ -> 0)
      | None -> 0)
  | _ -> 0

let () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shades-bench-%d.sock" (Unix.getpid ()))
  in
  let endpoint = Server.Protocol.Unix_path socket in
  let service = Server.Service.create () in
  let daemon =
    Domain.spawn (fun () -> Server.Daemon.run ~domains:2 endpoint service)
  in
  (* wait for the listener to come up *)
  let conn =
    let rec retry n =
      match Server.Client.connect endpoint with
      | Ok c -> c
      | Error e ->
          if n = 0 then failwith ("daemon never came up: " ^ e)
          else (
            Unix.sleepf 0.05;
            retry (n - 1))
    in
    retry 100
  in
  let advise spec =
    let req =
      Json.Obj
        [
          ("op", Json.String "advise");
          ("graph", Json.String spec);
          ("task", Json.String "pe");
        ]
    in
    let t0 = Unix.gettimeofday () in
    (match Server.Client.request conn req with
    | Ok (Json.Obj _ as r) when Json.member "error" r = None -> ()
    | Ok r -> failwith ("advise failed: " ^ Json.to_string r)
    | Error e -> failwith ("advise failed: " ^ e));
    Unix.gettimeofday () -. t0
  in
  let request_stats () =
    match Server.Client.request conn (Json.Obj [ ("op", Json.String "stats") ]) with
    | Ok r -> (
        match Json.member "result" r with
        | Some s -> s
        | None -> failwith "stats reply has no result")
    | Error e -> failwith ("stats failed: " ^ e)
  in
  let n = !requests in
  (* cold: every topology distinct (distinct orders => distinct digests) *)
  let cold =
    Array.init n (fun i -> advise (Printf.sprintf "path:%d" (!order + (2 * (i + 1)))))
  in
  let stats_after_cold = request_stats () in
  (* warm: one topology, repeated — first request primes it *)
  let warm_spec = Printf.sprintf "path:%d" !order in
  ignore (advise warm_spec);
  let warm = Array.init n (fun _ -> advise warm_spec) in
  let stats_after_warm = request_stats () in
  ignore
    (Server.Client.request conn (Json.Obj [ ("op", Json.String "shutdown") ]));
  Server.Client.close conn;
  Domain.join daemon;
  let cold_ms = 1000. *. median cold and warm_ms = 1000. *. median warm in
  let ratio = cold_ms /. warm_ms in
  let computes_cold = counter stats_after_cold "advise_computes" in
  let computes_warm =
    counter stats_after_warm "advise_computes" - computes_cold - 1
    (* the priming request legitimately computes once *)
  in
  let hits = counter stats_after_warm "advice_cache_hits" in
  Printf.printf "advise over unix socket, path graphs, %d requests per phase\n"
    n;
  Printf.printf "  cold (distinct topologies) median: %8.3f ms\n" cold_ms;
  Printf.printf "  warm (repeated topology)   median: %8.3f ms\n" warm_ms;
  Printf.printf "  cold/warm ratio:                   %8.1fx\n" ratio;
  Printf.printf "  oracle runs: %d cold phase, %d warm phase (cache hits: %d)\n"
    computes_cold computes_warm hits;
  if !enforce then
    if ratio < 10. then (
      Printf.printf "FAIL: warm advise is not >= 10x faster than cold\n";
      exit 1)
    else if computes_warm > 0 then (
      Printf.printf "FAIL: the warm phase recomputed advice %d times\n"
        computes_warm;
      exit 1)
    else Printf.printf "PASS: warm >= 10x faster, zero warm recomputation\n"
