(* The vertex-sharded engine is an execution strategy, not a model
   change: for every algorithm, graph, advice string and domain count it
   must reproduce the sequential engine bit for bit — outputs, round
   count, message count, per-round telemetry, and the traced event
   stream.  These tests pin that equivalence, plus the fork-join
   barrier (Crew.run_all) the engine is built on. *)

open Shades_graph
open Shades_localsim
module Crew = Shades_pool.Crew
module Scheme = Shades_election.Scheme
module Gclass = Shades_families.Gclass
module Uclass = Shades_families.Uclass
module Jclass = Shades_families.Jclass

let no_advice = Shades_bits.Bitstring.empty

let domain_counts = [ 1; 2; 3; 4 ]

(* --- Crew.run_all: the fork-join barrier --- *)

let test_run_all_runs_everything () =
  let crew = Crew.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Crew.shutdown crew)
    (fun () ->
      let hits = Array.make 20 0 in
      Crew.run_all crew
        (Array.init 20 (fun i () -> hits.(i) <- hits.(i) + 1));
      (* run_all returned: every write is visible to the caller *)
      Alcotest.(check (array int)) "each thunk ran exactly once"
        (Array.make 20 1) hits)

let test_run_all_empty () =
  let crew = Crew.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Crew.shutdown crew)
    (fun () -> Crew.run_all crew [||])

let test_run_all_single_domain () =
  let crew = Crew.create ~domains:1 () in
  Fun.protect
    ~finally:(fun () -> Crew.shutdown crew)
    (fun () ->
      let sum = ref 0 in
      Crew.run_all crew (Array.init 5 (fun i () -> sum := !sum + i));
      Alcotest.(check int) "all ran on one worker" 10 !sum)

exception Boom of int

let test_run_all_exception () =
  let crew = Crew.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Crew.shutdown crew)
    (fun () ->
      let survivors = ref 0 in
      let m = Mutex.create () in
      (* Thunks 1 and 3 fail; the smallest failing index is re-raised,
         and the non-failing thunks still all ran (the barrier waits for
         every thunk before raising). *)
      (match
         Crew.run_all crew
           (Array.init 6 (fun i () ->
                if i = 1 || i = 3 then raise (Boom i)
                else begin
                  Mutex.lock m;
                  incr survivors;
                  Mutex.unlock m
                end))
       with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "smallest index" 1 i);
      Alcotest.(check int) "other thunks still ran" 4 !survivors;
      (* the crew survives a failing batch *)
      let ok = ref false in
      Crew.run_all crew [| (fun () -> ok := true) |];
      Alcotest.(check bool) "crew usable after failure" true !ok)

let test_run_all_phase_visibility () =
  (* Writes from batch 1 must be visible to batch 2's thunks, whichever
     worker they land on — the happens-before edge the engine's
     send-barrier-deliver rounds rely on. *)
  let crew = Crew.create ~domains:4 () in
  Fun.protect
    ~finally:(fun () -> Crew.shutdown crew)
    (fun () ->
      let a = Array.make 64 0 in
      let b = Array.make 64 0 in
      for round = 1 to 50 do
        Crew.run_all crew
          (Array.init 8 (fun s () ->
               for i = 8 * s to (8 * s) + 7 do
                 a.(i) <- round
               done));
        Crew.run_all crew
          (Array.init 8 (fun s () ->
               (* read cells written by *other* shards in phase 1 *)
               let j = (s + 3) mod 8 in
               for i = 8 * j to (8 * j) + 7 do
                 b.(i) <- a.(i)
               done))
      done;
      Alcotest.(check (array int)) "phase-1 writes seen in phase 2"
        (Array.make 64 50) b)

let test_run_all_after_shutdown () =
  let crew = Crew.create ~domains:2 () in
  Crew.shutdown crew;
  match Crew.run_all crew [| (fun () -> ()) |] with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* --- Sharded_engine vs Engine on ad-hoc algorithms --- *)

let countdown r =
  {
    Engine.init = (fun ~degree ~advice:_ -> (degree, r));
    send = (fun (_, left) ~port:_ -> if left > 0 then Some () else None);
    step = (fun (d, left) _ -> (d, left - 1));
    output = (fun (d, left) -> if left <= 0 then Some d else None);
  }

let flooding =
  {
    Engine.init =
      (fun ~degree ~advice:_ ->
        if degree = 1 then `Heard (0, true) else `Waiting 0);
    send =
      (fun st ~port:_ ->
        match st with `Heard (_, true) -> Some () | _ -> None);
    step =
      (fun st inbox ->
        match st with
        | `Heard (r, _) -> `Heard (r, false)
        | `Waiting r ->
            if inbox <> [] then `Heard (r + 1, true) else `Waiting (r + 1));
    output = (fun st -> match st with `Heard (r, false) -> Some r | _ -> None);
  }

(* Run both engines with full instrumentation and compare everything. *)
let check_equiv ?(msg_size = fun _ -> 0) name g ~advice alg =
  let capture run =
    let events = ref [] in
    let hooks = ref [] in
    let result =
      run
        ~on_round:(fun ~round ~messages -> hooks := (round, messages) :: !hooks)
        ~tracer:(fun e -> events := e :: !events)
    in
    (result, List.rev !events, List.rev !hooks)
  in
  let seq_r, seq_events, seq_hooks =
    capture (fun ~on_round ~tracer ->
        Engine.run ~on_round ~tracer ~msg_size g ~advice alg)
  in
  List.iter
    (fun domains ->
      let sh_r, sh_events, sh_hooks =
        capture (fun ~on_round ~tracer ->
            Sharded_engine.run ~domains ~on_round ~tracer ~msg_size g ~advice
              alg)
      in
      let tag fmt = Printf.sprintf "%s (domains=%d): %s" name domains fmt in
      Alcotest.(check bool)
        (tag "outputs") true
        (seq_r.Engine.outputs = sh_r.Engine.outputs);
      Alcotest.(check int) (tag "rounds") seq_r.Engine.rounds sh_r.Engine.rounds;
      Alcotest.(check int)
        (tag "messages") seq_r.Engine.messages sh_r.Engine.messages;
      Alcotest.(check (list (pair int int)))
        (tag "on_round telemetry") seq_hooks sh_hooks;
      Alcotest.(check int)
        (tag "event count") (List.length seq_events) (List.length sh_events);
      Alcotest.(check bool)
        (tag "event stream identical") true (seq_events = sh_events))
    domain_counts

let test_countdown_equiv () =
  check_equiv "countdown ring" (Gen.oriented_ring 7) ~advice:no_advice
    (countdown 3);
  check_equiv "countdown path" (Gen.path 5) ~advice:no_advice (countdown 2)

let test_flooding_equiv () =
  check_equiv "flooding" (Gen.path 9) ~advice:no_advice flooding

let test_zero_rounds () =
  List.iter
    (fun domains ->
      let r =
        Sharded_engine.run ~domains (Gen.path 3) ~advice:no_advice
          (countdown 0)
      in
      Alcotest.(check int) "no rounds" 0 r.Engine.rounds;
      Alcotest.(check int) "no messages" 0 r.Engine.messages)
    domain_counts

let test_more_domains_than_vertices () =
  (* shards are clamped to the order; empty shards would divide by
     zero in the range arithmetic if unclamped *)
  let r =
    Sharded_engine.run ~domains:16 (Gen.path 3) ~advice:no_advice
      (countdown 2)
  in
  Alcotest.(check int) "rounds" 2 r.Engine.rounds

let test_nontermination () =
  let never =
    {
      Engine.init = (fun ~degree:_ ~advice:_ -> ());
      send = (fun () ~port:_ -> Some ());
      step = (fun () _ -> ());
      output = (fun () -> None);
    }
  in
  List.iter
    (fun domains ->
      match
        Sharded_engine.run ~domains ~max_rounds:5 (Gen.path 3)
          ~advice:no_advice never
      with
      | _ -> Alcotest.fail "expected Did_not_terminate"
      | exception Engine.Did_not_terminate 5 -> ())
    [ 1; 3 ]

let prop_random_graph_equiv =
  QCheck.Test.make ~name:"sharded = sequential (random graphs, traced)"
    ~count:60
    QCheck.(
      quad (int_bound 10_000) (int_range 2 24) (int_bound 8) (int_range 1 4))
    (fun (seed, n, extra, domains) ->
      let g = Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra in
      let run engine =
        let events = ref [] in
        let (r : _ Engine.result) =
          engine ~tracer:(fun e -> events := e :: !events)
        in
        (r.Engine.outputs, r.Engine.rounds, r.Engine.messages, !events)
      in
      let seq =
        run (fun ~tracer -> Engine.run ~tracer g ~advice:no_advice (countdown 3))
      in
      let sh =
        run (fun ~tracer ->
            Sharded_engine.run ~domains ~tracer g ~advice:no_advice
              (countdown 3))
      in
      seq = sh)

(* --- full runs of the paper's schemes, sequential vs sharded --- *)

let scheme_equiv name scheme g =
  let capture run =
    let events = ref [] in
    let r = run ~tracer:(fun e -> events := e :: !events) in
    (r, List.rev !events)
  in
  let seq, seq_events =
    capture (fun ~tracer -> Scheme.run ~tracer scheme g)
  in
  List.iter
    (fun domains ->
      let sh, sh_events =
        capture (fun ~tracer -> Scheme.run_sharded ~domains ~tracer scheme g)
      in
      let tag fmt = Printf.sprintf "%s (domains=%d): %s" name domains fmt in
      Alcotest.(check bool)
        (tag "outputs") true
        (seq.Scheme.outputs = sh.Scheme.outputs);
      Alcotest.(check int) (tag "rounds") seq.Scheme.rounds sh.Scheme.rounds;
      Alcotest.(check int)
        (tag "advice bits") seq.Scheme.advice_bits sh.Scheme.advice_bits;
      Alcotest.(check bool)
        (tag "trace identical") true (seq_events = sh_events))
    domain_counts

let prop_gclass_equiv =
  QCheck.Test.make ~name:"sharded = sequential (Selection on G)" ~count:8
    QCheck.(pair (int_range 3 5) (int_range 1 2))
    (fun (delta, k) ->
      QCheck.assume (delta = 3 || k = 1);
      let p = { Gclass.delta; k } in
      let t = Gclass.build p ~i:2 in
      scheme_equiv
        (Printf.sprintf "g delta=%d k=%d" delta k)
        Shades_election.Select_by_view.scheme t.Gclass.graph;
      true)

let prop_uclass_equiv =
  QCheck.Test.make ~name:"sharded = sequential (Port Election on U)" ~count:3
    QCheck.(int_range 1 3)
    (fun sigma ->
      let p = { Uclass.delta = 4; k = 1 } in
      let t = Uclass.build p ~sigma:(Uclass.uniform_sigma p sigma) in
      scheme_equiv
        (Printf.sprintf "u sigma=%d" sigma)
        Uclass.pe_scheme t.Uclass.graph;
      true)

let test_jclass_equiv () =
  let p = { Jclass.mu = 3; k = 4; z_eff = 1 } in
  let t = Jclass.build p ~y:(Jclass.y_zero p) in
  scheme_equiv "j mu=3 k=4" (Jclass.cppe_scheme t) t.Jclass.graph

(* --- sweep jobs under the Sharded strategy --- *)

let test_sweep_strategy_records_identical () =
  (* The whole tiny grid, sequential vs sharded at several domain
     counts: records must be byte-identical after strip_timing — this
     is exactly the equivalence `sweep --tiny --engine sharded
     --compare BENCH_tiny --strict` relies on. *)
  let module Sweep = Shades_runtime.Sweep in
  let module Store = Shades_runtime.Store in
  let stripped records =
    Store.strip_timing { Store.version = 0; label = "t"; records }
  in
  let seq = stripped (Sweep.run ~domains:1 (Sweep.tiny_jobs ())) in
  List.iter
    (fun domains ->
      let sh =
        stripped
          (Sweep.run ~domains:1
             (Sweep.tiny_jobs
                ~strategy:(Sweep.Sharded { domains = Some domains })
                ()))
      in
      Alcotest.(check bool)
        (Printf.sprintf "tiny grid records equal (domains=%d)" domains)
        true (seq = sh))
    [ 1; 2; 4 ]

let () =
  Alcotest.run "shades_sharded"
    [
      ( "crew",
        [
          Alcotest.test_case "run_all runs everything" `Quick
            test_run_all_runs_everything;
          Alcotest.test_case "empty batch" `Quick test_run_all_empty;
          Alcotest.test_case "single domain" `Quick test_run_all_single_domain;
          Alcotest.test_case "exception propagation" `Quick
            test_run_all_exception;
          Alcotest.test_case "phase visibility" `Quick
            test_run_all_phase_visibility;
          Alcotest.test_case "after shutdown" `Quick
            test_run_all_after_shutdown;
        ] );
      ( "engine",
        Alcotest.test_case "countdown" `Quick test_countdown_equiv
        :: Alcotest.test_case "flooding" `Quick test_flooding_equiv
        :: Alcotest.test_case "zero rounds" `Quick test_zero_rounds
        :: Alcotest.test_case "domains > order" `Quick
             test_more_domains_than_vertices
        :: Alcotest.test_case "nontermination" `Quick test_nontermination
        :: List.map QCheck_alcotest.to_alcotest [ prop_random_graph_equiv ] );
      ( "schemes",
        Alcotest.test_case "CPPE on J" `Quick test_jclass_equiv
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_gclass_equiv; prop_uclass_equiv ] );
      ( "sweep",
        [
          Alcotest.test_case "strategy-invariant records" `Slow
            test_sweep_strategy_records_identical;
        ] );
    ]
