(* Tests for the port-labeled graph substrate. *)

open Shades_graph

let three_node_line () =
  (* The paper's running example: 3-node line with ports 0,0,1,0. *)
  Gen.path_with_ports [ (0, 0); (1, 0) ]

let test_builder_basic () =
  let g = three_node_line () in
  Alcotest.(check int) "order" 3 (Port_graph.order g);
  Alcotest.(check int) "size" 2 (Port_graph.size g);
  Alcotest.(check int) "deg v0" 1 (Port_graph.degree g 0);
  Alcotest.(check int) "deg v1" 2 (Port_graph.degree g 1);
  Alcotest.(check int) "max degree" 2 (Port_graph.max_degree g);
  Alcotest.(check (pair int int)) "v0 port 0" (1, 0) (Port_graph.neighbor g 0 0);
  Alcotest.(check (pair int int)) "v1 port 1" (2, 0) (Port_graph.neighbor g 1 1)

let test_builder_rejects () =
  let reject reason f =
    Alcotest.check_raises reason (Invalid_argument reason) f
  in
  let b = Port_graph.Builder.create 3 in
  reject "Builder.add_edge: self-loop" (fun () ->
      Port_graph.Builder.add_edge b (0, 0) (0, 1));
  reject "Builder.add_edge: vertex out of range" (fun () ->
      Port_graph.Builder.add_edge b (0, 0) (3, 0));
  Port_graph.Builder.add_edge b (0, 0) (1, 0);
  reject "Builder.add_edge: port in use" (fun () ->
      Port_graph.Builder.add_edge b (0, 0) (2, 0));
  reject "Builder.add_edge: duplicate edge" (fun () ->
      Port_graph.Builder.add_edge b (0, 1) (1, 1));
  Alcotest.(check bool) "can_add ok" true
    (Port_graph.Builder.can_add b (1, 1) (2, 0));
  (* Non-contiguous port: vertex 2 uses port 1 but not port 0. *)
  Port_graph.Builder.add_edge b (1, 1) (2, 1);
  Alcotest.check_raises "non-contiguous"
    (Invalid_argument
       "Builder.finish: vertex 2 has 1 edges but port 0 is unused")
    (fun () -> ignore (Port_graph.Builder.finish b))

let test_port_to () =
  let g = three_node_line () in
  Alcotest.(check (option int)) "port 1->2" (Some 1) (Port_graph.port_to g 1 2);
  Alcotest.(check (option int)) "port 0->2" None (Port_graph.port_to g 0 2)

let test_ring () =
  let g = Gen.oriented_ring 5 in
  Alcotest.(check int) "order" 5 (Port_graph.order g);
  Alcotest.(check int) "size" 5 (Port_graph.size g);
  (* port 0 at c_i leads to c_{i+1}, arriving at port 1 *)
  for i = 0 to 4 do
    Alcotest.(check (pair int int))
      (Printf.sprintf "c%d successor" i)
      ((i + 1) mod 5, 1)
      (Port_graph.neighbor g i 0)
  done

let test_clique () =
  let g = Gen.clique 5 in
  Alcotest.(check int) "size" 10 (Port_graph.size g);
  List.iter
    (fun v -> Alcotest.(check int) "degree" 4 (Port_graph.degree g v))
    (Port_graph.vertices g)

let test_star () =
  let g = Gen.star 6 in
  Alcotest.(check int) "center degree" 5 (Port_graph.degree g 0);
  Alcotest.(check int) "leaf degree" 1 (Port_graph.degree g 3)

let test_hypercube () =
  let g = Gen.hypercube 3 in
  Alcotest.(check int) "order" 8 (Port_graph.order g);
  Alcotest.(check int) "size" 12 (Port_graph.size g);
  List.iter
    (fun v -> Alcotest.(check int) "degree" 3 (Port_graph.degree g v))
    (Port_graph.vertices g);
  (* port i flips bit i at both ends *)
  Alcotest.(check (pair int int)) "port semantics" (5, 2)
    (Port_graph.neighbor g 1 2)

let test_all_labelings () =
  (* path on 3 vertices: the middle vertex has 2! orders, leaves 1 *)
  let ls = Gen.all_labelings 3 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "count" 2 (List.length ls);
  List.iter
    (fun g ->
      Alcotest.(check int) "order" 3 (Port_graph.order g);
      Alcotest.(check bool) "connected" true (Paths.is_connected g))
    ls;
  (* the two labelings differ *)
  (match ls with
  | [ a; b ] -> Alcotest.(check bool) "distinct" false (Port_graph.equal a b)
  | _ -> Alcotest.fail "expected two labelings");
  (* triangle: 2 orders per vertex = 8 labelings *)
  Alcotest.(check int) "triangle" 8
    (List.length (Gen.all_labelings 3 [ (0, 1); (1, 2); (0, 2) ]));
  Alcotest.check_raises "explosion guarded"
    (Invalid_argument "Gen.all_labelings: too many labelings") (fun () ->
      (* a 9-leaf star has 9! = 362880 labelings *)
      ignore
        (Gen.all_labelings 10
           (List.init 9 (fun i -> (0, i + 1)))))

let test_disjoint_union () =
  let a = Gen.path 3 and b = Gen.oriented_ring 4 in
  let u, off = Port_graph.disjoint_union [ a; b ] in
  Alcotest.(check int) "order" 7 (Port_graph.order u);
  Alcotest.(check int) "offsets" 3 off.(1);
  Alcotest.(check (pair int int))
    "ring edge shifted" (off.(1) + 1, 1)
    (Port_graph.neighbor u off.(1) 0);
  Alcotest.(check bool) "union disconnected" false (Paths.is_connected u)

let test_swap_ports () =
  let g = three_node_line () in
  let g' = Port_graph.swap_ports g 1 0 1 in
  Alcotest.(check (pair int int)) "swapped 1:0" (2, 0)
    (Port_graph.neighbor g' 1 0);
  Alcotest.(check (pair int int)) "swapped 1:1" (0, 0)
    (Port_graph.neighbor g' 1 1);
  (* back-pointer at vertex 2 now says port 0 of v1 *)
  Alcotest.(check (pair int int)) "backptr" (1, 0) (Port_graph.neighbor g' 2 0);
  let g'' = Port_graph.swap_ports g' 1 0 1 in
  Alcotest.(check bool) "double swap identity" true (Port_graph.equal g g'')

let test_relabel_ports () =
  let g = Gen.star 4 in
  let g' = Port_graph.relabel_ports g 0 [| 2; 0; 1 |] in
  (* old port 0 (-> vertex 1) becomes port 2 *)
  Alcotest.(check int) "relabel" 1 (Port_graph.neighbor_vertex g' 0 2);
  Alcotest.(check int) "relabel2" 2 (Port_graph.neighbor_vertex g' 0 0);
  Alcotest.check_raises "not perm"
    (Invalid_argument "Port_graph.relabel_ports: not a permutation")
    (fun () -> ignore (Port_graph.relabel_ports g 0 [| 0; 0; 1 |]))

let test_to_dot () =
  let g = three_node_line () in
  let dot = Port_graph.to_dot ~highlight:[ 1 ] g in
  Alcotest.(check bool) "has header" true
    (String.length dot > 0 && String.sub dot 0 7 = "graph G");
  let contains needle =
    let rec go i =
      i + String.length needle <= String.length dot
      && (String.sub dot i (String.length needle) = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "edge rendered" true (contains "0 -- 1");
  Alcotest.(check bool) "highlight rendered" true (contains "fillcolor")

let test_encode_decode () =
  let g = Gen.clique 4 in
  let g' = Port_graph.decode (Port_graph.encode g) in
  Alcotest.(check bool) "roundtrip" true (Port_graph.equal g g')

let test_bfs () =
  let g = Gen.oriented_ring 6 in
  let d = Paths.bfs_distances g 0 in
  Alcotest.(check (list int)) "ring distances" [ 0; 1; 2; 3; 2; 1 ]
    (Array.to_list d);
  Alcotest.(check int) "diameter" 3 (Paths.diameter g)

let test_shortest_path () =
  let g = Gen.oriented_ring 6 in
  Alcotest.(check (option (list int)))
    "path 0->2" (Some [ 0; 1; 2 ])
    (Paths.shortest_path g 0 2);
  let vs = Option.get (Paths.shortest_path g 0 2) in
  Alcotest.(check (list int)) "ports of walk" [ 0; 0 ] (Paths.ports_of_walk g vs);
  Alcotest.(check (list int)) "full ports" [ 0; 1; 0; 1 ]
    (Paths.full_ports_of_walk g vs)

let test_walk_of_ports () =
  let g = three_node_line () in
  Alcotest.(check (option (list int)))
    "walk" (Some [ 0; 1; 2 ])
    (Paths.walk_of_ports g 0 [ 0; 1 ]);
  Alcotest.(check (option (list int)))
    "bad port" None
    (Paths.walk_of_ports g 0 [ 0; 5 ]);
  Alcotest.(check bool) "simple" true (Paths.is_simple [ 0; 1; 2 ]);
  Alcotest.(check bool) "not simple" false (Paths.is_simple [ 0; 1; 0 ])

let test_connected_avoiding () =
  let g = Gen.oriented_ring 5 in
  Alcotest.(check bool) "ring minus node still connects" true
    (Paths.connected_avoiding g ~avoid:1 0 2);
  let p = Gen.path 5 in
  Alcotest.(check bool) "path cut" false
    (Paths.connected_avoiding p ~avoid:2 0 4)

let test_iso () =
  let g = Gen.oriented_ring 5 in
  Alcotest.(check bool) "ring self-iso" true (Iso.isomorphic g g);
  Alcotest.(check bool) "rooted rotations" true (Iso.rooted_isomorphic g 0 g 3);
  let h = Gen.path 5 in
  Alcotest.(check bool) "ring vs path" false (Iso.isomorphic g h);
  (* All 3-node lines are isomorphic (reversal swaps the leaves). *)
  let a = Gen.path_with_ports [ (0, 0); (1, 0) ] in
  let b = Gen.path_with_ports [ (0, 1); (0, 0) ] in
  Alcotest.(check bool) "3-lines isomorphic" true (Iso.isomorphic a b);
  (* Swapping one interior vertex's ports on a 4-path breaks both the
     identity and the reversal, the only candidate bijections. *)
  let p4 = Gen.path 4 in
  let p4' = Port_graph.swap_ports p4 1 0 1 in
  Alcotest.(check bool) "different ports" false (Iso.isomorphic p4 p4')

(* Property tests *)

let rand_graph =
  (* A deterministic family of random connected graphs. *)
  QCheck.make
    ~print:(fun (seed, n, e) -> Printf.sprintf "seed=%d n=%d extra=%d" seed n e)
    QCheck.Gen.(
      triple (int_bound 10_000) (int_range 2 30) (int_bound 20))

let build (seed, n, extra) =
  Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra

let prop_random_valid =
  QCheck.Test.make ~name:"random graphs validate and connect" ~count:200
    rand_graph (fun params ->
      let g = build params in
      Paths.is_connected g
      && Port_graph.order g = (let _, n, _ = params in n))

let prop_symmetry =
  QCheck.Test.make ~name:"neighbor relation is symmetric" ~count:200 rand_graph
    (fun params ->
      let g = build params in
      List.for_all
        (fun v ->
          List.for_all
            (fun p ->
              let u, q = Port_graph.neighbor g v p in
              Port_graph.neighbor g u q = (v, p))
            (List.init (Port_graph.degree g v) Fun.id))
        (Port_graph.vertices g))

let prop_encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:100 rand_graph
    (fun params ->
      let g = build params in
      Port_graph.equal g (Port_graph.decode (Port_graph.encode g)))

let prop_union_preserves =
  QCheck.Test.make ~name:"disjoint union preserves components" ~count:100
    QCheck.(pair rand_graph rand_graph) (fun (pa, pb) ->
      let a = build pa and b = build pb in
      let u, off = Port_graph.disjoint_union [ a; b ] in
      Port_graph.order u = Port_graph.order a + Port_graph.order b
      && Port_graph.size u = Port_graph.size a + Port_graph.size b
      && off.(0) = 0
      && off.(1) = Port_graph.order a)

let prop_swap_involution =
  QCheck.Test.make ~name:"swap_ports is an involution" ~count:200 rand_graph
    (fun params ->
      let g = build params in
      let v = 0 in
      let d = Port_graph.degree g v in
      QCheck.assume (d >= 2);
      let g' = Port_graph.swap_ports g v 0 (d - 1) in
      Port_graph.equal g (Port_graph.swap_ports g' v 0 (d - 1)))

let prop_shortest_path_length =
  QCheck.Test.make ~name:"shortest_path length matches bfs" ~count:100
    rand_graph (fun params ->
      let g = build params in
      let dist = Paths.bfs_distances g 0 in
      List.for_all
        (fun u ->
          match Paths.shortest_path g 0 u with
          | None -> false
          | Some vs ->
              List.length vs = dist.(u) + 1 && Paths.is_simple vs)
        (Port_graph.vertices g))

(* --- digest --- *)

let renumber g shift =
  let n = Port_graph.order g in
  let perm v = (v + shift) mod n in
  Port_graph.of_edges n
    (List.map
       (fun ((v, p), (u, q)) -> ((perm v, p), (perm u, q)))
       (Port_graph.edges g))

let test_digest () =
  let g = Gen.path 7 in
  Alcotest.(check string)
    "deterministic" (Port_graph.digest g) (Port_graph.digest g);
  Alcotest.(check string)
    "invariant under renumbering" (Port_graph.digest g)
    (Port_graph.digest (renumber g 3));
  Alcotest.(check bool)
    "hex md5 shape" true
    (String.length (Port_graph.digest g) = 32
    && String.for_all
         (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
         (Port_graph.digest g));
  (* distinct topologies and distinct port labelings separate *)
  Alcotest.(check bool)
    "path vs ring" true
    (Port_graph.digest g <> Port_graph.digest (Gen.oriented_ring 7));
  Alcotest.(check bool)
    "path:7 vs path:8" true
    (Port_graph.digest g <> Port_graph.digest (Gen.path 8));
  let p4 = Gen.path 4 in
  Alcotest.(check bool)
    "port relabeling separates" true
    (Port_graph.digest p4 <> Port_graph.digest (Port_graph.swap_ports p4 1 0 1))

let prop_digest_iso_agreement =
  (* digest equality must coincide with the isomorphism decision
     procedure on renumbered copies *)
  QCheck.Test.make ~name:"digest invariant under renumbering" ~count:100
    QCheck.(pair rand_graph small_nat) (fun (params, shift) ->
      let g = build params in
      Port_graph.digest g = Port_graph.digest (renumber g (shift mod Port_graph.order g)))

let prop_iso_reflexive =
  QCheck.Test.make ~name:"isomorphism is reflexive" ~count:50 rand_graph
    (fun params ->
      let g = build params in
      Iso.isomorphic g g)

let prop_csr_agrees =
  (* the flat CSR adjacency the engines run on must answer every
     (vertex, port) query exactly like the reference representation *)
  QCheck.Test.make ~name:"csr agrees with neighbor" ~count:200 rand_graph
    (fun params ->
      let g = build params in
      let csr = Port_graph.Csr.of_graph g in
      Port_graph.Csr.order csr = Port_graph.order g
      && List.for_all
           (fun v ->
             Port_graph.Csr.degree csr v = Port_graph.degree g v
             && List.for_all
                  (fun p ->
                    let u, q = Port_graph.neighbor g v p in
                    Port_graph.Csr.neighbor_vertex csr v p = u
                    && Port_graph.Csr.neighbor_port csr v p = q)
                  (List.init (Port_graph.degree g v) Fun.id))
           (Port_graph.vertices g))

let () =
  Alcotest.run "shades_graph"
    [
      ( "builder",
        [
          Alcotest.test_case "basic" `Quick test_builder_basic;
          Alcotest.test_case "rejects invalid" `Quick test_builder_rejects;
          Alcotest.test_case "port_to" `Quick test_port_to;
        ] );
      ( "generators",
        [
          Alcotest.test_case "oriented ring" `Quick test_ring;
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "all labelings" `Quick test_all_labelings;
        ] );
      ( "surgery",
        [
          Alcotest.test_case "disjoint union" `Quick test_disjoint_union;
          Alcotest.test_case "swap ports" `Quick test_swap_ports;
          Alcotest.test_case "relabel ports" `Quick test_relabel_ports;
          Alcotest.test_case "encode/decode" `Quick test_encode_decode;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
        ] );
      ( "paths",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "walk of ports" `Quick test_walk_of_ports;
          Alcotest.test_case "connected avoiding" `Quick test_connected_avoiding;
        ] );
      ("iso", [ Alcotest.test_case "isomorphism" `Quick test_iso ]);
      ("digest", [ Alcotest.test_case "content address" `Quick test_digest ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_valid;
            prop_symmetry;
            prop_encode_roundtrip;
            prop_union_preserves;
            prop_swap_involution;
            prop_shortest_path_length;
            prop_digest_iso_agreement;
            prop_iso_reflexive;
            prop_csr_agrees;
          ] );
    ]
