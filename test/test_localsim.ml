(* Tests for the LOCAL-model simulator. *)

open Shades_graph
open Shades_views
open Shades_localsim

let no_advice = Shades_bits.Bitstring.empty

(* A trivial algorithm that just counts down [r] rounds and then outputs
   its degree. *)
let countdown r =
  {
    Engine.init = (fun ~degree ~advice:_ -> (degree, r));
    send = (fun (_, left) ~port:_ -> if left > 0 then Some () else None);
    step = (fun (d, left) _ -> (d, left - 1));
    output = (fun (d, left) -> if left <= 0 then Some d else None);
  }

let test_round_counting () =
  let g = Gen.oriented_ring 5 in
  let result = Engine.run g ~advice:no_advice (countdown 3) in
  Alcotest.(check int) "rounds" 3 result.Engine.rounds;
  Alcotest.(check (array int)) "outputs" [| 2; 2; 2; 2; 2 |]
    result.Engine.outputs

let test_zero_rounds () =
  let g = Gen.path 3 in
  let result = Engine.run g ~advice:no_advice (countdown 0) in
  Alcotest.(check int) "no rounds" 0 result.Engine.rounds

let test_nontermination () =
  let never =
    {
      Engine.init = (fun ~degree:_ ~advice:_ -> ());
      send = (fun () ~port:_ -> Some ());
      step = (fun () _ -> ());
      output = (fun () -> None);
    }
  in
  let g = Gen.path 3 in
  Alcotest.check_raises "raises" (Engine.Did_not_terminate 5) (fun () ->
      ignore (Engine.run ~max_rounds:5 g ~advice:no_advice never))

let test_advice_delivered () =
  (* Every node must receive the same advice string. *)
  let advice = Shades_bits.Bitstring.of_string "1011" in
  let echo =
    {
      Engine.init =
        (fun ~degree:_ ~advice -> Shades_bits.Bitstring.to_string advice);
      send = (fun _ ~port:_ -> None);
      step = (fun st _ -> st);
      output = (fun st -> Some st);
    }
  in
  let g = Gen.path 3 in
  let result = Engine.run g ~advice echo in
  Alcotest.(check (array string)) "advice" [| "1011"; "1011"; "1011" |]
    result.Engine.outputs

(* Flooding: each node outputs the round at which it first heard from a
   degree-1 node (leaves output 0).  On a path, that is the distance to
   the nearest endpoint — exercises real message propagation.  A node
   announces for one round and only then decides: a decided node has
   halted (it sends nothing), so the announcement must precede the
   output. *)
let flooding =
  let send st ~port:_ =
    match st with `Heard (_, true) -> Some () | _ -> None
  in
  {
    Engine.init =
      (fun ~degree ~advice:_ ->
        if degree = 1 then `Heard (0, true) else `Waiting 0);
    send;
    step =
      (fun st inbox ->
        match st with
        | `Heard (r, _) -> `Heard (r, false)
        | `Waiting r ->
            if inbox <> [] then `Heard (r + 1, true) else `Waiting (r + 1));
    output =
      (fun st ->
        match st with `Heard (r, false) -> Some r | _ -> None);
  }

let test_flooding_distances () =
  let g = Gen.path 7 in
  let result = Engine.run g ~advice:no_advice flooding in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 2; 1; 0 |]
    result.Engine.outputs

(* Decided nodes halt: a node whose output is [Some _] at round 0 must
   never send or step, even while other nodes are still running — the
   same short-circuit as when all nodes decide at round 0.  The
   spammer's send would emit on every port every round; with the
   short-circuit, the only traffic is the middle node's own. *)
let spam_if_alive rounds_for_interior =
  {
    Engine.init =
      (fun ~degree ~advice:_ ->
        if degree = 1 then `Done 0 else `Counting (rounds_for_interior, 0));
    send = (fun _ ~port:_ -> Some ());
    step =
      (fun st inbox ->
        match st with
        | `Done _ -> st
        | `Counting (left, heard) ->
            `Counting (left - 1, heard + List.length inbox));
    output =
      (fun st ->
        match st with
        | `Done h -> Some h
        | `Counting (left, heard) -> if left <= 0 then Some heard else None);
  }

let test_round0_decided_halt () =
  let g = Gen.path 3 in
  let result = Engine.run g ~advice:no_advice (spam_if_alive 2) in
  (* ends decided at round 0: heard nothing, sent nothing; the middle
     node's 2 ports * 2 rounds are the only messages *)
  Alcotest.(check (array int)) "no spam received" [| 0; 0; 0 |]
    result.Engine.outputs;
  Alcotest.(check int) "only the live node sent" 4 result.Engine.messages

let test_async_round0_decided_halt () =
  let g = Gen.path 3 in
  List.iter
    (fun seed ->
      let result = Async_engine.run ~seed g ~advice:no_advice (spam_if_alive 2) in
      Alcotest.(check (array int))
        (Printf.sprintf "no spam received (seed %d)" seed)
        [| 0; 0; 0 |] result.Engine.outputs;
      Alcotest.(check int)
        (Printf.sprintf "only the live node sent (seed %d)" seed)
        4 result.Engine.messages)
    [ 0; 1; 9 ]

let test_on_round_hook () =
  let g = Gen.oriented_ring 5 in
  let seen = ref [] in
  let result =
    Engine.run
      ~on_round:(fun ~round ~messages -> seen := (round, messages) :: !seen)
      g ~advice:no_advice (countdown 3)
  in
  Alcotest.(check (list (pair int int)))
    "hook saw every round with cumulative messages"
    [ (1, 10); (2, 20); (3, 30) ]
    (List.rev !seen);
  Alcotest.(check int) "hook total = result total" result.Engine.messages 30

let test_async_on_round_hook () =
  (* The hook fires on the first undecided step of each round, so the
     reported rounds are exactly the synchronous engine's 1..R — no
     overshoot from decided nodes' marker-only round completions — and
     the cumulative message counts never decrease. *)
  List.iter
    (fun seed ->
      let g = Gen.oriented_ring 5 in
      let seen = ref [] in
      let result =
        Async_engine.run ~seed
          ~on_round:(fun ~round ~messages -> seen := (round, messages) :: !seen)
          g ~advice:no_advice (countdown 3)
      in
      Alcotest.(check int) "rounds" 3 result.Engine.rounds;
      let seen = List.rev !seen in
      Alcotest.(check (list int))
        (Printf.sprintf "rounds exactly 1..3, once each, in order (seed %d)"
           seed)
        [ 1; 2; 3 ] (List.map fst seen);
      let messages = List.map snd seen in
      Alcotest.(check bool)
        (Printf.sprintf "cumulative messages monotone (seed %d)" seed)
        true
        (List.for_all2 ( <= ) messages (List.tl messages @ [ max_int ]));
      Alcotest.(check bool)
        (Printf.sprintf "counts within the run total (seed %d)" seed)
        true
        (List.for_all
           (fun m -> m >= 0 && m <= result.Engine.messages)
           messages))
    [ 0; 1; 2; 17 ]

(* The full-information protocol must reconstruct exactly B^r. *)

let rand_graph =
  QCheck.make
    ~print:(fun (seed, n, e, d) ->
      Printf.sprintf "seed=%d n=%d extra=%d rounds=%d" seed n e d)
    QCheck.Gen.(
      quad (int_bound 10_000) (int_range 2 10) (int_bound 5) (int_range 0 3))

let prop_full_info_views =
  QCheck.Test.make ~name:"full-info protocol gathers exactly B^r" ~count:100
    rand_graph (fun (seed, n, extra, rounds) ->
      let g = Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra in
      let views =
        Full_info.run g ~rounds ~advice:no_advice
          ~decide:(fun ~advice:_ view -> view)
      in
      List.for_all
        (fun v ->
          View_tree.equal views.(v) (View_tree.of_graph g v ~depth:rounds))
        (Port_graph.vertices g))

let prop_adaptive_rounds =
  QCheck.Test.make ~name:"adaptive round count honoured" ~count:50 rand_graph
    (fun (seed, n, extra, rounds) ->
      let g = Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra in
      let _, used =
        Full_info.run_adaptive g ~advice:no_advice
          ~rounds_of:(fun ~advice:_ ~degree:_ -> rounds)
          ~decide:(fun ~advice:_ _ -> ())
      in
      used = rounds)

(* --- asynchronous execution with time-stamps --- *)

let test_async_flooding () =
  (* The α-synchronizer makes asynchronous delays invisible. *)
  let g = Gen.path 7 in
  List.iter
    (fun seed ->
      let result = Async_engine.run ~seed g ~advice:no_advice flooding in
      Alcotest.(check (array int))
        (Printf.sprintf "async distances (seed %d)" seed)
        [| 0; 1; 2; 3; 2; 1; 0 |] result.Engine.outputs)
    [ 0; 1; 2; 17 ]

let test_async_zero_rounds () =
  let g = Gen.path 3 in
  let result = Async_engine.run g ~advice:no_advice (countdown 0) in
  Alcotest.(check int) "no rounds" 0 result.Engine.rounds

let test_async_nontermination () =
  let never =
    {
      Engine.init = (fun ~degree:_ ~advice:_ -> ());
      send = (fun () ~port:_ -> Some ());
      step = (fun () _ -> ());
      output = (fun () -> None);
    }
  in
  let g = Gen.path 3 in
  match Async_engine.run ~max_rounds:5 g ~advice:no_advice never with
  | exception Engine.Did_not_terminate _ -> ()
  | _ -> Alcotest.fail "expected Did_not_terminate"

let prop_async_equals_sync =
  (* Any delay schedule yields the synchronous outputs and round count. *)
  QCheck.Test.make ~name:"async run = sync run (countdown, flooding)"
    ~count:100
    QCheck.(triple (int_bound 10_000) (int_range 2 10) (int_bound 5))
    (fun (seed, n, extra) ->
      let g = Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra in
      (* flooding starts from degree-1 nodes and hangs without one *)
      QCheck.assume
        (List.exists
           (fun v -> Port_graph.degree g v = 1)
           (Port_graph.vertices g));
      let sync_c = Engine.run g ~advice:no_advice (countdown 3) in
      let async_c =
        Async_engine.run ~seed g ~advice:no_advice (countdown 3)
      in
      let sync_f = Engine.run g ~advice:no_advice flooding in
      let async_f = Async_engine.run ~seed g ~advice:no_advice flooding in
      sync_c.Engine.outputs = async_c.Engine.outputs
      && sync_c.Engine.rounds = async_c.Engine.rounds
      && sync_f.Engine.outputs = async_f.Engine.outputs
      && sync_f.Engine.rounds = async_f.Engine.rounds)

let prop_async_full_info =
  (* The view-exchange protocol survives asynchrony: B^r gathered
     exactly, under every delay schedule. *)
  QCheck.Test.make ~name:"async full-info gathers exactly B^r" ~count:50
    rand_graph (fun (seed, n, extra, rounds) ->
      let g = Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra in
      let alg =
        {
          Engine.init =
            (fun ~degree ~advice:_ ->
              (rounds, { View_tree.degree; children = [||] }));
          send =
            (fun (target, view) ~port ->
              if target = 0 then None else Some (port, view));
          step =
            (fun (target, view) inbox ->
              if target = 0 then (target, view)
              else begin
                let degree = view.View_tree.degree in
                let children = Array.make degree (0, view) in
                List.iter
                  (fun (p, (q, sub)) -> children.(p) <- (q, sub))
                  inbox;
                (target - 1, { View_tree.degree; children })
              end);
          output =
            (fun (target, view) -> if target = 0 then Some view else None);
        }
      in
      let result = Async_engine.run ~seed g ~advice:no_advice alg in
      List.for_all
        (fun v ->
          View_tree.equal result.Engine.outputs.(v)
            (View_tree.of_graph g v ~depth:rounds))
        (Port_graph.vertices g))

let () =
  Alcotest.run "shades_localsim"
    [
      ( "engine",
        [
          Alcotest.test_case "round counting" `Quick test_round_counting;
          Alcotest.test_case "zero rounds" `Quick test_zero_rounds;
          Alcotest.test_case "nontermination" `Quick test_nontermination;
          Alcotest.test_case "advice" `Quick test_advice_delivered;
          Alcotest.test_case "flooding" `Quick test_flooding_distances;
          Alcotest.test_case "round-0 deciders halt" `Quick
            test_round0_decided_halt;
          Alcotest.test_case "on_round hook" `Quick test_on_round_hook;
        ] );
      ( "full_info",
        List.map QCheck_alcotest.to_alcotest
          [ prop_full_info_views; prop_adaptive_rounds ] );
      ( "async",
        Alcotest.test_case "flooding" `Quick test_async_flooding
        :: Alcotest.test_case "zero rounds" `Quick test_async_zero_rounds
        :: Alcotest.test_case "nontermination" `Quick test_async_nontermination
        :: Alcotest.test_case "round-0 deciders halt" `Quick
             test_async_round0_decided_halt
        :: Alcotest.test_case "on_round hook" `Quick test_async_on_round_hook
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_async_equals_sync; prop_async_full_info ] );
    ]
