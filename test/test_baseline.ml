(* Tests for the blessed-trace baseline store and the forensics gate:
   manifest round-trips, digest-skip blessing, corrupted-digest failure
   isolation, stale/missing detection, the run_traced ~baseline
   integration, and the headline property — any single-event mutation
   of a recorded tiny-grid trace is caught at exactly the mutated
   (round, vertex). *)

open Shades_trace
module Sweep = Shades_runtime.Sweep

(* One recording of the tiny grid, shared by every test below (the
   grid is deterministic, so recording once is sound). *)
let tiny_traced =
  lazy
    (let jobs = Sweep.tiny_jobs () in
     let traced, report = Sweep.run_traced ~domains:2 jobs in
     assert (report = None);
     List.map2 (fun job (_, tr) -> (Sweep.key_of_job job, tr)) jobs traced)

let in_temp_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shades_baseline_%d" (Unix.getpid ()))
  in
  let rec wipe path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> wipe (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  wipe dir;
  Fun.protect ~finally:(fun () -> wipe dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let test_key_of_label () =
  Alcotest.(check string)
    "grid labels pass through unscathed" "g,delta=3,k=1,i=2"
    (Baseline.key_of_label "g,delta=3,k=1,i=2");
  Alcotest.(check string)
    "hostile bytes sanitized" "u_4,1___=1"
    (Baseline.key_of_label "u 4,1 σ=1");
  Alcotest.(check string)
    "no path separators survive" "a_b_c"
    (Baseline.key_of_label "a/b\\c")

let test_bless_round_trip () =
  in_temp_dir (fun dir ->
      let traces = Lazy.force tiny_traced in
      let m = Baseline.save ~dir traces in
      Alcotest.(check int)
        "one entry per tiny-grid job" (List.length traces)
        (List.length m.Baseline.entries);
      Alcotest.(check int)
        "manifest carries the codec version" Codec.format_version
        m.Baseline.version;
      (* reload and verify every trace decodes back byte-identically *)
      (match Baseline.load_manifest ~dir with
      | Error e -> Alcotest.fail e
      | Ok m' ->
          Alcotest.(check bool) "manifest round-trips" true (m' = m);
          List.iter
            (fun e ->
              match Baseline.load ~dir e with
              | Error err -> Alcotest.fail err
              | Ok t ->
                  Alcotest.(check bool)
                    (e.Baseline.key ^ " loads back equal")
                    true
                    (Some t
                    = List.assoc_opt e.Baseline.key traces))
            m'.Baseline.entries);
      (* a clean gate, straight after blessing *)
      match Baseline.gate ~dir traces with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check bool) "gate is clean" true (Baseline.clean r);
          Alcotest.(check int) "no stale keys" 0 (List.length r.Baseline.stale))

let test_rebless_skips_unchanged () =
  in_temp_dir (fun dir ->
      let traces = Lazy.force tiny_traced in
      ignore (Baseline.save ~dir traces);
      let file =
        Filename.concat dir (Baseline.file_of_key (fst (List.hd traces)))
      in
      let before = (Unix.stat file).Unix.st_mtime in
      (* make a rewrite observable even on coarse-mtime filesystems *)
      Unix.utimes file 1.0 1.0;
      ignore (Baseline.save ~dir traces);
      let after = (Unix.stat file).Unix.st_mtime in
      Alcotest.(check bool)
        "unchanged trace file not rewritten" true
        (after < before))

let test_corrupted_digest_isolated () =
  in_temp_dir (fun dir ->
      let traces = Lazy.force tiny_traced in
      ignore (Baseline.save ~dir traces);
      let victim = fst (List.hd traces) in
      (* corrupt exactly one digest in the manifest *)
      let path = Filename.concat dir Baseline.manifest_file in
      let text = read_file path in
      let entry =
        let m = Option.get (Result.to_option (Baseline.load_manifest ~dir)) in
        List.find (fun e -> e.Baseline.key = victim) m.Baseline.entries
      in
      let corrupted =
        Str.global_replace
          (Str.regexp_string entry.Baseline.digest)
          (String.make 32 '0') text
      in
      Alcotest.(check bool) "digest found in manifest" true (corrupted <> text);
      write_file path corrupted;
      match Baseline.gate ~dir traces with
      | Error e -> Alcotest.fail ("gate refused the manifest: " ^ e)
      | Ok r ->
          Alcotest.(check bool) "gate fails" false (Baseline.clean r);
          Alcotest.(check bool) "corrupt detected" true (Baseline.has_corrupt r);
          List.iter
            (fun (key, v) ->
              if key = victim then
                match v with
                | Baseline.Corrupt _ -> ()
                | _ -> Alcotest.fail (key ^ ": expected Corrupt")
              else
                Alcotest.(check bool)
                  (key ^ ": untouched jobs stay identical")
                  true
                  (v = Baseline.Identical))
            r.Baseline.jobs)

let test_missing_and_stale () =
  in_temp_dir (fun dir ->
      let traces = Lazy.force tiny_traced in
      ignore (Baseline.save ~dir traces);
      let renamed =
        match traces with
        | (_, t) :: rest -> ("g,delta=9,k=9,i=9", t) :: rest
        | [] -> assert false
      in
      match Baseline.gate ~dir renamed with
      | Error e -> Alcotest.fail e
      | Ok r ->
          Alcotest.(check bool) "gate fails" false (Baseline.clean r);
          Alcotest.(check bool)
            "new job reported Missing" true
            (List.assoc "g,delta=9,k=9,i=9" r.Baseline.jobs = Baseline.Missing);
          Alcotest.(check (list string))
            "dropped job reported stale"
            [ fst (List.hd traces) ]
            r.Baseline.stale)

let test_version_mismatch_rejected () =
  in_temp_dir (fun dir ->
      ignore (Baseline.save ~dir (Lazy.force tiny_traced));
      let path = Filename.concat dir Baseline.manifest_file in
      let text = read_file path in
      let bumped =
        Str.replace_first
          (Str.regexp_string
             (Printf.sprintf "\"version\":%d" Codec.format_version))
          (Printf.sprintf "\"version\":%d" (Codec.format_version + 1))
          text
      in
      Alcotest.(check bool) "version found" true (bumped <> text);
      write_file path bumped;
      match Baseline.gate ~dir (Lazy.force tiny_traced) with
      | Error e ->
          Alcotest.(check bool)
            "error says to re-bless" true
            (let needle = "re-bless" in
             let rec contains i =
               i + String.length needle <= String.length e
               && (String.sub e i (String.length needle) = needle
                  || contains (i + 1))
             in
             contains 0)
      | Ok _ -> Alcotest.fail "foreign-version manifest accepted")

let test_run_traced_baseline_integration () =
  in_temp_dir (fun dir ->
      ignore (Baseline.save ~dir (Lazy.force tiny_traced));
      let jobs = Sweep.tiny_jobs () in
      let _, report = Sweep.run_traced ~domains:2 ~baseline:dir jobs in
      (match report with
      | Some (Ok r) ->
          Alcotest.(check bool)
            "re-run gates clean against its own blessing" true
            (Baseline.clean r)
      | Some (Error e) -> Alcotest.fail e
      | None -> Alcotest.fail "~baseline produced no report");
      (* and a missing store directory is an Error, not an exception *)
      let _, report =
        Sweep.run_traced ~domains:2
          ~baseline:(Filename.concat dir "nonexistent")
          jobs
      in
      match report with
      | Some (Error _) -> ()
      | _ -> Alcotest.fail "missing baseline dir should be an Error")

(* --- the headline property --- *)

(* A strictly key-increasing single-event mutation: the canonical diff
   order is (round, kind, vertex, extras) and the bump below raises
   exactly one component, so the mutant sorts strictly after the
   original.  The merge walk therefore reports its first divergence at
   the original event's (round, vertex) with the baseline holding the
   event — which is precisely the forensics contract. *)
let bump = function
  | Event.Round_start { round } -> Event.Round_start { round = round + 1 }
  | Event.Send { round; v; port; size } ->
      Event.Send { round; v; port; size = size + 1 }
  | Event.Deliver { round; v; port; size } ->
      Event.Deliver { round; v; port; size = size + 1 }
  | Event.Decide { v; round } -> Event.Decide { v; round = round + 1 }
  | Event.Halt { v; round } -> Event.Halt { v; round = round + 1 }
  | Event.Advice_read { v; bits } -> Event.Advice_read { v; bits = bits + 1 }
  | Event.Sync_marker { round; v; port } ->
      Event.Sync_marker { round; v; port = port + 1 }
  | Event.Crash { v; round } -> Event.Crash { v; round = round + 1 }

let mutation_property =
  QCheck.Test.make
    ~name:"any single-event mutation is caught at the mutated (round, vertex)"
    ~count:100
    QCheck.(pair (int_bound 1) (int_bound 100_000))
    (fun (job_idx, seed) ->
      let traces = Lazy.force tiny_traced in
      let key, original = List.nth traces job_idx in
      let events = Array.copy original.Trace.events in
      let idx = seed mod Array.length events in
      let target = events.(idx) in
      events.(idx) <- bump target;
      let mutant = { original with Trace.events } in
      in_temp_dir (fun dir ->
          ignore (Baseline.save ~dir traces);
          let current =
            List.map
              (fun (k, t) -> if k = key then (k, mutant) else (k, t))
              traces
          in
          match Baseline.gate ~dir current with
          | Error e -> QCheck.Test.fail_report e
          | Ok r -> (
              if Baseline.clean r then
                QCheck.Test.fail_report "mutation not caught";
              match List.assoc key r.Baseline.jobs with
              | Baseline.Divergent { round; vertex; baseline_event; _ } ->
                  round = Event.round target
                  && vertex = Event.vertex target
                  && baseline_event = Some target
              | _ -> QCheck.Test.fail_report "expected Divergent")))

let () =
  Alcotest.run "shades_baseline"
    [
      ( "store",
        [
          Alcotest.test_case "key sanitization" `Quick test_key_of_label;
          Alcotest.test_case "bless round trip" `Quick test_bless_round_trip;
          Alcotest.test_case "re-bless skips unchanged" `Quick
            test_rebless_skips_unchanged;
          Alcotest.test_case "version mismatch rejected" `Quick
            test_version_mismatch_rejected;
        ] );
      ( "gate",
        [
          Alcotest.test_case "corrupted digest isolated" `Quick
            test_corrupted_digest_isolated;
          Alcotest.test_case "missing and stale" `Quick test_missing_and_stale;
          Alcotest.test_case "run_traced ~baseline" `Quick
            test_run_traced_baseline_integration;
          QCheck_alcotest.to_alcotest mutation_property;
        ] );
    ]
