(* Tests for the election daemon: frame codec, LRU cache semantics
   (including cross-domain hammering), the service's request handling,
   and one real daemon + client conversation over a Unix socket. *)

open Shades_server
module Json = Shades_json.Json
module Metrics = Shades_runtime.Metrics

let counter m name =
  match List.assoc_opt name (Metrics.snapshot m) with
  | Some (Metrics.Counter n) -> n
  | _ -> 0

(* --- protocol framing --- *)

let frame_of_string s =
  let tmp = Filename.temp_file "shades-frame" ".bin" in
  Out_channel.with_open_bin tmp (fun oc -> output_string oc s);
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () -> In_channel.with_open_bin tmp Protocol.read_frame)

let roundtrip json =
  let tmp = Filename.temp_file "shades-frame" ".bin" in
  Out_channel.with_open_bin tmp (fun oc -> Protocol.write_frame oc json);
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () -> In_channel.with_open_bin tmp Protocol.read_frame)

let test_frame_roundtrip () =
  let payload =
    Json.Obj
      [
        ("op", Json.String "advise");
        ("graph", Json.String "ring:6");
        ("n", Json.Int 42);
        ("xs", Json.List [ Json.Bool true; Json.Null ]);
      ]
  in
  match roundtrip payload with
  | Protocol.Payload (Ok got) ->
      Alcotest.(check string)
        "payload survives framing" (Json.to_string payload) (Json.to_string got)
  | _ -> Alcotest.fail "expected a parsed payload"

let test_frame_errors () =
  (match frame_of_string "" with
  | Protocol.Eof -> ()
  | _ -> Alcotest.fail "empty stream should be Eof");
  (match frame_of_string "not-a-length\n{}\n" with
  | Protocol.Malformed _ -> ()
  | _ -> Alcotest.fail "garbage length line should be Malformed");
  (match frame_of_string "100\n{\"op\"" with
  | Protocol.Malformed _ -> ()
  | _ -> Alcotest.fail "truncated payload should be Malformed");
  (match frame_of_string "999999999\nx\n" with
  | Protocol.Malformed _ -> ()
  | _ -> Alcotest.fail "over-limit length should be Malformed");
  (* framing fine, JSON broken: the recoverable case *)
  match frame_of_string "6\n{\"op\":\n" with
  | Protocol.Payload (Error _) -> ()
  | _ -> Alcotest.fail "bad JSON in a good frame should be Payload Error"

let test_hex () =
  let blob = "\x00\x01SHTR\xff\xfe binary\n\x80" in
  Alcotest.(check string)
    "hex roundtrip" blob
    (Result.get_ok (Protocol.hex_decode (Protocol.hex_encode blob)));
  Alcotest.(check bool)
    "odd length rejected" true
    (Result.is_error (Protocol.hex_decode "abc"));
  Alcotest.(check bool)
    "non-hex rejected" true
    (Result.is_error (Protocol.hex_decode "zz"))

let test_endpoints () =
  List.iter
    (fun s ->
      Alcotest.(check string)
        ("roundtrip " ^ s) s
        (Protocol.endpoint_to_string
           (Result.get_ok (Protocol.endpoint_of_string s))))
    [ "unix:/tmp/x.sock"; "tcp:127.0.0.1:9901" ];
  (match Protocol.endpoint_of_string "tcp:9901" with
  | Ok (Protocol.Tcp { host = "127.0.0.1"; port = 9901 }) -> ()
  | _ -> Alcotest.fail "tcp:<port> should default the host");
  Alcotest.(check bool)
    "garbage rejected" true
    (Result.is_error (Protocol.endpoint_of_string "carrier-pigeon:42"))

let test_graph_json () =
  let g = Shades_graph.Gen.path 5 in
  let got = Result.get_ok (Protocol.graph_of_json (Protocol.graph_to_json g)) in
  Alcotest.(check string)
    "explicit form roundtrips"
    (Shades_graph.Port_graph.digest g)
    (Shades_graph.Port_graph.digest got);
  let from_spec =
    Result.get_ok (Protocol.graph_of_json (Json.String "path:5"))
  in
  Alcotest.(check string)
    "spec string accepted"
    (Shades_graph.Port_graph.digest g)
    (Shades_graph.Port_graph.digest from_spec);
  Alcotest.(check bool)
    "bad spec is Error, not exception" true
    (Result.is_error (Protocol.graph_of_json (Json.String "ring:banana")));
  Alcotest.(check bool)
    "bad edges are Error, not exception" true
    (Result.is_error
       (Protocol.graph_of_json
          (Json.Obj
             [
               ("n", Json.Int 2);
               ("edges", Json.List [ Json.List [ Json.Int 0; Json.Int 0; Json.Int 5; Json.Int 0 ] ]);
             ])))

(* --- cache --- *)

let test_cache_lru () =
  let m = Metrics.create () in
  let c = Cache.create ~name:"c" ~capacity:2 ~metrics:m () in
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  Alcotest.(check (option int)) "a present" (Some 1) (Cache.find c "a");
  (* a is now most recent, so inserting c evicts b *)
  Cache.put c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.find c "c");
  Alcotest.(check int) "entries at capacity" 2 (Cache.entries c);
  Alcotest.(check int) "one eviction" 1 (counter m "c_evictions");
  Alcotest.(check int) "hits counted" 3 (counter m "c_hits");
  Alcotest.(check int) "misses counted" 1 (counter m "c_misses");
  Cache.put c "a" 10;
  Alcotest.(check (option int)) "overwrite in place" (Some 10) (Cache.find c "a");
  Alcotest.(check int) "overwrite does not evict" 2 (Cache.entries c)

let test_cache_find_or_compute () =
  let m = Metrics.create () in
  let c = Cache.create ~capacity:4 ~metrics:m () in
  let runs = ref 0 in
  let compute () = incr runs; 7 in
  let v1, hit1 = Cache.find_or_compute c "k" ~compute in
  let v2, hit2 = Cache.find_or_compute c "k" ~compute in
  Alcotest.(check (list int)) "same value" [ 7; 7 ] [ v1; v2 ];
  Alcotest.(check (list bool)) "miss then hit" [ false; true ] [ hit1; hit2 ];
  Alcotest.(check int) "computed once" 1 !runs;
  Alcotest.check_raises "compute exception caches nothing" (Failure "boom")
    (fun () -> ignore (Cache.find_or_compute c "bad" ~compute:(fun () -> failwith "boom")));
  Alcotest.(check (option int)) "nothing cached for bad" None (Cache.find c "bad")

let test_cache_concurrent () =
  let m = Metrics.create () in
  let c = Cache.create ~capacity:16 ~metrics:m () in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 499 do
              let key = "k" ^ string_of_int (i mod 24) in
              let v, _ =
                Cache.find_or_compute c key ~compute:(fun () -> (d * 1000) + i)
              in
              ignore v;
              if i mod 7 = 0 then ignore (Cache.find c key)
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check bool)
    "bounded after hammering" true
    (Cache.entries c <= 16);
  (* every lookup was counted exactly once *)
  let total =
    counter m "cache_hits" + counter m "cache_misses"
  in
  Alcotest.(check bool) "all lookups counted" true (total >= 4 * 500)

(* --- service (no sockets) --- *)

let handle_ok service req =
  match Service.handle service req with
  | Service.Reply r -> r
  | Service.Reply_and_stop r -> r

let result_of reply =
  match Json.member "result" reply with
  | Some r -> r
  | None -> Alcotest.fail ("no result in " ^ Json.to_string reply)

let is_error ?code reply =
  match (Json.member "ok" reply, Json.member "error" reply) with
  | Some (Json.Bool false), Some e -> (
      match code with
      | None -> true
      | Some c -> Json.member "code" e = Some (Json.String c))
  | _ -> false

let advise_req spec =
  Json.Obj
    [
      ("op", Json.String "advise");
      ("graph", Json.String spec);
      ("task", Json.String "pe");
    ]

let test_service_errors () =
  let s = Service.create () in
  Alcotest.(check bool)
    "missing op" true
    (is_error ~code:"bad-request" (handle_ok s (Json.Obj [])));
  Alcotest.(check bool)
    "unknown op" true
    (is_error ~code:"unknown-op"
       (handle_ok s (Json.Obj [ ("op", Json.String "fly") ])));
  Alcotest.(check bool)
    "bad graph spec" true
    (is_error ~code:"request-failed" (handle_ok s (advise_req "ring:banana")));
  (* infeasible topology: the oracle itself refuses; still a reply *)
  Alcotest.(check bool)
    "infeasible graph is a structured error" true
    (is_error ~code:"request-failed"
       (handle_ok s
          (Json.Obj
             [
               ("op", Json.String "advise");
               ("graph", Json.String "ring:6");
               ("task", Json.String "s");
             ])))

let test_service_cache_behaviour () =
  let s = Service.create () in
  let m = Service.metrics s in
  let r1 = result_of (handle_ok s (advise_req "gclass:3,1,2")) in
  let r2 = result_of (handle_ok s (advise_req "gclass:3,1,2")) in
  Alcotest.(check bool)
    "first advise is cold"
    true
    (Json.member "cached" r1 = Some (Json.Bool false));
  Alcotest.(check bool)
    "second advise is warm"
    true
    (Json.member "cached" r2 = Some (Json.Bool true));
  Alcotest.(check string)
    "same advice both times"
    (Json.to_string (Option.get (Json.member "advice" r1)))
    (Json.to_string (Option.get (Json.member "advice" r2)));
  Alcotest.(check int) "one oracle run" 1 (counter m "advise_computes");
  Alcotest.(check int) "one cache hit" 1 (counter m "advice_cache_hits");
  (* an isomorphic renumbering shares the cache entry: same canonical
     digest, no second oracle run *)
  let g = Shades_graph.Gen.path 7 in
  let base = result_of (handle_ok s
    (Json.Obj [ ("op", Json.String "advise");
                ("graph", Protocol.graph_to_json g);
                ("task", Json.String "pe") ])) in
  let renum =
    let n = Shades_graph.Port_graph.order g in
    let perm v = (v + 3) mod n in
    Shades_graph.Port_graph.of_edges n
      (List.map
         (fun ((v, p), (u, q)) -> ((perm v, p), (perm u, q)))
         (Shades_graph.Port_graph.edges g))
  in
  let iso = result_of (handle_ok s
    (Json.Obj [ ("op", Json.String "advise");
                ("graph", Protocol.graph_to_json renum);
                ("task", Json.String "pe") ])) in
  Alcotest.(check bool)
    "isomorphic submission is a cache hit" true
    (Json.member "cached" iso = Some (Json.Bool true));
  Alcotest.(check string)
    "isomorphic submissions share a digest"
    (Json.to_string (Option.get (Json.member "digest" base)))
    (Json.to_string (Option.get (Json.member "digest" iso)))

let test_service_eviction () =
  let s = Service.create ~cache_capacity:1 () in
  let m = Service.metrics s in
  ignore (handle_ok s (advise_req "path:5"));
  ignore (handle_ok s (advise_req "path:6"));
  ignore (handle_ok s (advise_req "path:5"));
  Alcotest.(check int) "capacity 1 evicts" 2 (counter m "advice_cache_evictions");
  Alcotest.(check int) "every advise recomputed" 3 (counter m "advise_computes")

let test_service_elect_and_verify () =
  let s = Service.create () in
  let elect =
    result_of
      (handle_ok s
         (Json.Obj
            [
              ("op", Json.String "elect");
              ("graph", Json.String "path:6");
              ("task", Json.String "pe");
            ]))
  in
  Alcotest.(check bool)
    "elect verified" true
    (Json.member "verified" elect = Some (Json.Bool true));
  let outputs = Option.get (Json.member "outputs" elect) in
  let verify_req outputs =
    Json.Obj
      [
        ("op", Json.String "verify");
        ("graph", Json.String "path:6");
        ("task", Json.String "pe");
        ("outputs", outputs);
      ]
  in
  let verdict = result_of (handle_ok s (verify_req outputs)) in
  Alcotest.(check bool)
    "claimed outputs check out" true
    (Json.member "valid" verdict = Some (Json.Bool true));
  (* corrupt one claim: a second leader must be rejected with a reason *)
  let corrupted =
    match outputs with
    | Json.List (_ :: rest) -> Json.List (Json.String "leader" :: rest)
    | _ -> Alcotest.fail "outputs should be a list"
  in
  let verdict = result_of (handle_ok s (verify_req corrupted)) in
  Alcotest.(check bool)
    "corrupted outputs rejected" true
    (Json.member "valid" verdict = Some (Json.Bool false));
  Alcotest.(check bool)
    "with a reason" true
    (Json.member "reason" verdict <> None)

let test_service_elect_sharded () =
  (* "engine":"sharded" is the sync path on the parallel executor: same
     outputs and counts as "sync", advice served from the same cache
     entry, and the reply names the engine it ran. *)
  let s = Service.create () in
  let m = Service.metrics s in
  let elect_req engine =
    Json.Obj
      ([
         ("op", Json.String "elect");
         ("graph", Json.String "path:6");
         ("task", Json.String "pe");
       ]
      @
      match engine with
      | None -> []
      | Some e -> [ ("engine", Json.String e); ("domains", Json.Int 3) ])
  in
  let sync = result_of (handle_ok s (elect_req None)) in
  let sharded = result_of (handle_ok s (elect_req (Some "sharded"))) in
  let field name r = Json.to_string (Option.get (Json.member name r)) in
  List.iter
    (fun name ->
      Alcotest.(check string)
        (name ^ " matches sync") (field name sync) (field name sharded))
    [ "outputs"; "rounds"; "messages"; "advice_bits"; "leader"; "digest" ];
  Alcotest.(check bool)
    "sharded elect verified" true
    (Json.member "verified" sharded = Some (Json.Bool true));
  Alcotest.(check string) "engine echoed" "\"sharded\"" (field "engine" sharded);
  Alcotest.(check bool)
    "advice reused from the sync run's cache entry" true
    (Json.member "cached" sharded = Some (Json.Bool true));
  Alcotest.(check int) "single oracle run" 1 (counter m "advise_computes");
  (* malformed domains is a structured error, not a crash *)
  let bad =
    handle_ok s
      (Json.Obj
         [
           ("op", Json.String "elect");
           ("graph", Json.String "path:6");
           ("task", Json.String "pe");
           ("engine", Json.String "sharded");
           ("domains", Json.String "three");
         ])
  in
  Alcotest.(check bool) "bad domains rejected" true (is_error bad)

let test_service_verify_trace () =
  let s = Service.create () in
  (* record a trace exactly as `shades trace record` does *)
  let open Shades_trace in
  let g = Shades_graph.Gen.path 6 in
  let r = Trace.recorder () in
  ignore
    (Shades_election.Scheme.run ~tracer:(Trace.emit r)
       Shades_election.Map_advice.port_election g);
  let trace =
    Trace.capture r
      {
        Trace.engine = Trace.Sync;
        graph_order = Shades_graph.Port_graph.order g;
        advice_bits = 0;
        label = "pe path:6";
      }
  in
  let blob = Codec.encode trace in
  let req hex =
    Json.Obj [ ("op", Json.String "verify-trace"); ("trace", Json.String hex) ]
  in
  let verdict = result_of (handle_ok s (req (Protocol.hex_encode blob))) in
  Alcotest.(check bool)
    "genuine trace replays clean" true
    (Json.member "valid" verdict = Some (Json.Bool true));
  (* flip one byte deep in the event stream: decode or replay must fail,
     never accept *)
  let tampered = Bytes.of_string blob in
  let pos = Bytes.length tampered - 3 in
  Bytes.set tampered pos (Char.chr (Char.code (Bytes.get tampered pos) lxor 0xff));
  let reply = handle_ok s (req (Protocol.hex_encode (Bytes.to_string tampered))) in
  let accepted =
    (not (is_error reply))
    && Json.member "valid" (result_of reply) = Some (Json.Bool true)
  in
  Alcotest.(check bool) "tampered trace is not accepted" false accepted

(* --- end to end over a Unix socket --- *)

let test_daemon_end_to_end () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shades-test-%d.sock" (Unix.getpid ()))
  in
  let endpoint = Protocol.Unix_path socket in
  let service = Service.create () in
  let daemon = Domain.spawn (fun () -> Daemon.run ~domains:2 endpoint service) in
  let conn =
    let rec retry n =
      match Client.connect endpoint with
      | Ok c -> c
      | Error e ->
          if n = 0 then Alcotest.fail ("daemon never came up: " ^ e)
          else (
            Unix.sleepf 0.05;
            retry (n - 1))
    in
    retry 100
  in
  Fun.protect
    ~finally:(fun () -> Client.close conn)
    (fun () ->
      let ask req = Result.get_ok (Client.request conn req) in
      let cold = result_of (ask (advise_req "gclass:3,1,2")) in
      let warm = result_of (ask (advise_req "gclass:3,1,2")) in
      Alcotest.(check bool)
        "cold then warm over the wire" true
        (Json.member "cached" cold = Some (Json.Bool false)
        && Json.member "cached" warm = Some (Json.Bool true));
      (* a second concurrent client sees the same shared cache *)
      let other = Result.get_ok (Client.connect endpoint) in
      let from_other =
        Fun.protect
          ~finally:(fun () -> Client.close other)
          (fun () -> result_of (Result.get_ok (Client.request other (advise_req "gclass:3,1,2"))))
      in
      Alcotest.(check bool)
        "cache shared across connections" true
        (Json.member "cached" from_other = Some (Json.Bool true));
      let stats = result_of (ask (Json.Obj [ ("op", Json.String "stats") ])) in
      let computes =
        match Json.member "counters" stats with
        | Some c -> (
            match Json.member "advise_computes" c with
            | Some v -> Json.member "value" v
            | None -> None)
        | None -> None
      in
      Alcotest.(check bool)
        "exactly one oracle run for three advises" true
        (computes = Some (Json.Int 1));
      (* bad JSON in a good frame: this request fails, the next works *)
      let reply = ask (Json.Obj [ ("op", Json.Int 3) ]) in
      Alcotest.(check bool) "non-string op rejected" true (is_error reply);
      let again = ask (advise_req "gclass:3,1,2") in
      Alcotest.(check bool)
        "connection survives a rejected request" true (not (is_error again));
      let bye = ask (Json.Obj [ ("op", Json.String "shutdown") ]) in
      Alcotest.(check bool) "shutdown acknowledged" true (not (is_error bye)));
  Domain.join daemon;
  Alcotest.(check bool)
    "socket file removed on shutdown" false (Sys.file_exists socket)

let () =
  Alcotest.run "shades_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "frame errors" `Quick test_frame_errors;
          Alcotest.test_case "hex codec" `Quick test_hex;
          Alcotest.test_case "endpoints" `Quick test_endpoints;
          Alcotest.test_case "graph json" `Quick test_graph_json;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru semantics" `Quick test_cache_lru;
          Alcotest.test_case "find_or_compute" `Quick test_cache_find_or_compute;
          Alcotest.test_case "concurrent hammering" `Quick test_cache_concurrent;
        ] );
      ( "service",
        [
          Alcotest.test_case "structured errors" `Quick test_service_errors;
          Alcotest.test_case "cache behaviour" `Quick test_service_cache_behaviour;
          Alcotest.test_case "eviction" `Quick test_service_eviction;
          Alcotest.test_case "elect + verify" `Quick test_service_elect_and_verify;
          Alcotest.test_case "elect sharded" `Quick test_service_elect_sharded;
          Alcotest.test_case "verify-trace" `Quick test_service_verify_trace;
        ] );
      ( "daemon",
        [ Alcotest.test_case "end to end" `Quick test_daemon_end_to_end ] );
    ]
