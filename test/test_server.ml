(* Tests for the election daemon: frame codec, LRU cache semantics
   (including cross-domain hammering), the service's request handling,
   and one real daemon + client conversation over a Unix socket. *)

open Shades_server
module Json = Shades_json.Json
module Metrics = Shades_runtime.Metrics

let counter m name =
  match List.assoc_opt name (Metrics.snapshot m) with
  | Some (Metrics.Counter n) -> n
  | _ -> 0

(* --- protocol framing --- *)

let frame_of_string s =
  let tmp = Filename.temp_file "shades-frame" ".bin" in
  Out_channel.with_open_bin tmp (fun oc -> output_string oc s);
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () -> In_channel.with_open_bin tmp Protocol.read_frame)

let roundtrip json =
  let tmp = Filename.temp_file "shades-frame" ".bin" in
  Out_channel.with_open_bin tmp (fun oc -> Protocol.write_frame oc json);
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () -> In_channel.with_open_bin tmp Protocol.read_frame)

let test_frame_roundtrip () =
  let payload =
    Json.Obj
      [
        ("op", Json.String "advise");
        ("graph", Json.String "ring:6");
        ("n", Json.Int 42);
        ("xs", Json.List [ Json.Bool true; Json.Null ]);
      ]
  in
  match roundtrip payload with
  | Protocol.Payload (Ok got) ->
      Alcotest.(check string)
        "payload survives framing" (Json.to_string payload) (Json.to_string got)
  | _ -> Alcotest.fail "expected a parsed payload"

let test_frame_errors () =
  (match frame_of_string "" with
  | Protocol.Eof -> ()
  | _ -> Alcotest.fail "empty stream should be Eof");
  (match frame_of_string "not-a-length\n{}\n" with
  | Protocol.Malformed _ -> ()
  | _ -> Alcotest.fail "garbage length line should be Malformed");
  (match frame_of_string "100\n{\"op\"" with
  | Protocol.Malformed _ -> ()
  | _ -> Alcotest.fail "truncated payload should be Malformed");
  (match frame_of_string "999999999\nx\n" with
  | Protocol.Malformed _ -> ()
  | _ -> Alcotest.fail "over-limit length should be Malformed");
  (* framing fine, JSON broken: the recoverable case *)
  match frame_of_string "6\n{\"op\":\n" with
  | Protocol.Payload (Error _) -> ()
  | _ -> Alcotest.fail "bad JSON in a good frame should be Payload Error"

let test_hex () =
  let blob = "\x00\x01SHTR\xff\xfe binary\n\x80" in
  Alcotest.(check string)
    "hex roundtrip" blob
    (Result.get_ok (Protocol.hex_decode (Protocol.hex_encode blob)));
  Alcotest.(check bool)
    "odd length rejected" true
    (Result.is_error (Protocol.hex_decode "abc"));
  Alcotest.(check bool)
    "non-hex rejected" true
    (Result.is_error (Protocol.hex_decode "zz"))

let test_endpoints () =
  List.iter
    (fun s ->
      Alcotest.(check string)
        ("roundtrip " ^ s) s
        (Protocol.endpoint_to_string
           (Result.get_ok (Protocol.endpoint_of_string s))))
    [ "unix:/tmp/x.sock"; "tcp:127.0.0.1:9901" ];
  (match Protocol.endpoint_of_string "tcp:9901" with
  | Ok (Protocol.Tcp { host = "127.0.0.1"; port = 9901 }) -> ()
  | _ -> Alcotest.fail "tcp:<port> should default the host");
  Alcotest.(check bool)
    "garbage rejected" true
    (Result.is_error (Protocol.endpoint_of_string "carrier-pigeon:42"))

let test_graph_json () =
  let g = Shades_graph.Gen.path 5 in
  let got = Result.get_ok (Protocol.graph_of_json (Protocol.graph_to_json g)) in
  Alcotest.(check string)
    "explicit form roundtrips"
    (Shades_graph.Port_graph.digest g)
    (Shades_graph.Port_graph.digest got);
  let from_spec =
    Result.get_ok (Protocol.graph_of_json (Json.String "path:5"))
  in
  Alcotest.(check string)
    "spec string accepted"
    (Shades_graph.Port_graph.digest g)
    (Shades_graph.Port_graph.digest from_spec);
  Alcotest.(check bool)
    "bad spec is Error, not exception" true
    (Result.is_error (Protocol.graph_of_json (Json.String "ring:banana")));
  Alcotest.(check bool)
    "bad edges are Error, not exception" true
    (Result.is_error
       (Protocol.graph_of_json
          (Json.Obj
             [
               ("n", Json.Int 2);
               ("edges", Json.List [ Json.List [ Json.Int 0; Json.Int 0; Json.Int 5; Json.Int 0 ] ]);
             ])))

(* --- cache --- *)

let test_cache_lru () =
  let m = Metrics.create () in
  let c = Cache.create ~name:"c" ~capacity:2 ~metrics:m () in
  Cache.put c "a" 1;
  Cache.put c "b" 2;
  Alcotest.(check (option int)) "a present" (Some 1) (Cache.find c "a");
  (* a is now most recent, so inserting c evicts b *)
  Cache.put c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Cache.find c "b");
  Alcotest.(check (option int)) "a survived" (Some 1) (Cache.find c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.find c "c");
  Alcotest.(check int) "entries at capacity" 2 (Cache.entries c);
  Alcotest.(check int) "one eviction" 1 (counter m "c_evictions");
  Alcotest.(check int) "hits counted" 3 (counter m "c_hits");
  Alcotest.(check int) "misses counted" 1 (counter m "c_misses");
  Cache.put c "a" 10;
  Alcotest.(check (option int)) "overwrite in place" (Some 10) (Cache.find c "a");
  Alcotest.(check int) "overwrite does not evict" 2 (Cache.entries c)

let test_cache_find_or_compute () =
  let m = Metrics.create () in
  let c = Cache.create ~capacity:4 ~metrics:m () in
  let runs = ref 0 in
  let compute () = incr runs; 7 in
  let v1, hit1 = Cache.find_or_compute c "k" ~compute in
  let v2, hit2 = Cache.find_or_compute c "k" ~compute in
  Alcotest.(check (list int)) "same value" [ 7; 7 ] [ v1; v2 ];
  Alcotest.(check (list bool)) "miss then hit" [ false; true ] [ hit1; hit2 ];
  Alcotest.(check int) "computed once" 1 !runs;
  Alcotest.check_raises "compute exception caches nothing" (Failure "boom")
    (fun () -> ignore (Cache.find_or_compute c "bad" ~compute:(fun () -> failwith "boom")));
  Alcotest.(check (option int)) "nothing cached for bad" None (Cache.find c "bad")

let test_cache_concurrent () =
  let m = Metrics.create () in
  let c = Cache.create ~capacity:16 ~metrics:m () in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 499 do
              let key = "k" ^ string_of_int (i mod 24) in
              let v, _ =
                Cache.find_or_compute c key ~compute:(fun () -> (d * 1000) + i)
              in
              ignore v;
              if i mod 7 = 0 then ignore (Cache.find c key)
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check bool)
    "bounded after hammering" true
    (Cache.entries c <= 16);
  (* every lookup was counted exactly once *)
  let total =
    counter m "cache_hits" + counter m "cache_misses"
  in
  Alcotest.(check bool) "all lookups counted" true (total >= 4 * 500)

(* --- persistence (disk tier) --- *)

let fresh_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let int_persist ?max_bytes dir =
  {
    Cache.max_bytes;
    dir;
    encode = string_of_int;
    decode =
      (fun s ->
        match int_of_string_opt s with
        | Some n -> Ok n
        | None -> Error "not an int");
  }

let test_cache_persistence () =
  let dir = fresh_dir "shades-cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let m = Metrics.create () in
      let c =
        Cache.create ~name:"p" ~persist:(int_persist dir) ~capacity:2
          ~metrics:m ()
      in
      Alcotest.(check bool) "persistent" true (Cache.persistent c);
      Cache.put c "a/slash" 1;
      Cache.put c "b" 2;
      Alcotest.(check int) "two files written" 2 (counter m "p_disk_writes");
      (* eviction trims memory only: "a/slash" falls out of the LRU but
         its file stays, so the next find is a disk hit that promotes *)
      Cache.put c "c" 3;
      Alcotest.(check int) "one eviction" 1 (counter m "p_evictions");
      Alcotest.(check (option int))
        "evicted key served from disk" (Some 1)
        (Cache.find c "a/slash");
      Alcotest.(check int) "disk hit counted" 1 (counter m "p_disk_hits");
      (* a second cache on the same directory — the restart — sees
         everything without recomputation *)
      let m2 = Metrics.create () in
      let c2 =
        Cache.create ~name:"p" ~persist:(int_persist dir) ~capacity:2
          ~metrics:m2 ()
      in
      let v, hit = Cache.find_or_compute c2 "b" ~compute:(fun () -> 99) in
      Alcotest.(check (pair int bool)) "restart finds b on disk" (2, true) (v, hit);
      Alcotest.(check int) "restart hit came from disk" 1
        (counter m2 "p_disk_hits");
      (* write-then-rename leaves no temp litter behind *)
      let has_substring hay needle =
        let n = String.length needle and h = String.length hay in
        let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        "no stray temp files left" true
        (Array.for_all
           (fun f -> not (has_substring f ".tmp."))
           (Sys.readdir dir)))

let test_cache_corrupt_files () =
  let dir = fresh_dir "shades-cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let m = Metrics.create () in
      let c =
        Cache.create ~name:"p" ~persist:(int_persist dir) ~capacity:2
          ~metrics:m ()
      in
      Cache.put c "k" 7;
      let file =
        match Sys.readdir dir with
        | [| f |] -> Filename.concat dir f
        | _ -> Alcotest.fail "expected exactly one cache file"
      in
      (* corrupt the file, then restart: the entry must degrade to a
         miss (counted as invalid), never crash or return garbage *)
      Out_channel.with_open_bin file (fun oc -> output_string oc "zzz");
      let m2 = Metrics.create () in
      let c2 =
        Cache.create ~name:"p" ~persist:(int_persist dir) ~capacity:2
          ~metrics:m2 ()
      in
      Alcotest.(check (option int)) "corrupt file is a miss" None
        (Cache.find c2 "k");
      Alcotest.(check int) "invalid file counted" 1
        (counter m2 "p_disk_invalid");
      Alcotest.(check int) "and it is a miss" 1 (counter m2 "p_misses");
      (* truncated-to-empty is just another corrupt shape *)
      Out_channel.with_open_bin file (fun oc -> ignore oc);
      Alcotest.(check (option int)) "empty file is a miss" None
        (Cache.find c2 "k");
      (* a raising decoder is tolerated too *)
      let raising =
        { (int_persist dir) with Cache.decode = (fun _ -> failwith "boom") }
      in
      Out_channel.with_open_bin file (fun oc -> output_string oc "7");
      let c3 =
        Cache.create ~name:"p" ~persist:raising ~capacity:2
          ~metrics:(Metrics.create ()) ()
      in
      Alcotest.(check (option int)) "raising decoder is a miss" None
        (Cache.find c3 "k"))

let test_cache_disk_budget () =
  let dir = fresh_dir "shades-cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* two one-byte values fit the two-byte budget exactly *)
      let m = Metrics.create () in
      let c =
        Cache.create ~name:"p"
          ~persist:(int_persist ~max_bytes:2 dir)
          ~capacity:8 ~metrics:m ()
      in
      Cache.put c "a" 1;
      Cache.put c "b" 2;
      Alcotest.(check int) "within budget: nothing evicted" 0
        (counter m "p_disk_evictions");
      (* age the files so the eviction order is deterministic even on
         coarse-mtime filesystems *)
      let now = Unix.gettimeofday () in
      Unix.utimes (Filename.concat dir "a") (now -. 100.) (now -. 100.);
      Unix.utimes (Filename.concat dir "b") (now -. 50.) (now -. 50.);
      Cache.put c "c" 3;
      Alcotest.(check int) "oldest file evicted" 1
        (counter m "p_disk_evictions");
      Alcotest.(check bool) "a is gone from disk" false
        (Sys.file_exists (Filename.concat dir "a"));
      Alcotest.(check bool) "b survives" true
        (Sys.file_exists (Filename.concat dir "b"));
      Alcotest.(check bool) "the fresh write is never the victim" true
        (Sys.file_exists (Filename.concat dir "c"));
      (* the memory tier still answers for the trimmed key... *)
      Alcotest.(check (option int)) "memory still has a" (Some 1)
        (Cache.find c "a");
      (* ...but a restart sees only what the budget kept *)
      let m2 = Metrics.create () in
      let c2 =
        Cache.create ~name:"p"
          ~persist:(int_persist ~max_bytes:2 dir)
          ~capacity:8 ~metrics:m2 ()
      in
      Alcotest.(check (option int)) "a is a miss after restart" None
        (Cache.find c2 "a");
      Alcotest.(check (option int)) "b is a disk hit" (Some 2)
        (Cache.find c2 "b"))

(* The stampeding half of the shared --cache-dir test below: the test
   re-executes this binary with SHADES_CACHE_CHILD set (Unix.fork is
   off the table once any test has spawned a domain), and this loop
   hammers the shared keyspace where the value is a pure function of
   the key, re-reading through a cold cache every 25 iterations so the
   disk tier — not the private memory tier — answers.  Any torn or
   wrong read turns into a nonzero exit status. *)
let shared_dir_keys = 17
let shared_dir_value k = (k * 1000) + 7

let shared_dir_child dir seed =
  let ok = ref true in
  (try
     let c =
       Cache.create ~name:"w" ~persist:(int_persist dir) ~capacity:4
         ~metrics:(Metrics.create ()) ()
     in
     for i = 0 to 399 do
       let k = (i + seed) mod shared_dir_keys in
       let key = "k" ^ string_of_int k in
       Cache.put c key (shared_dir_value k);
       (match Cache.find c key with
       | Some v when v <> shared_dir_value k -> ok := false
       | _ -> ());
       if i mod 25 = 0 then begin
         let r =
           Cache.create ~name:"r" ~persist:(int_persist dir) ~capacity:4
             ~metrics:(Metrics.create ()) ()
         in
         for j = 0 to shared_dir_keys - 1 do
           match Cache.find r ("k" ^ string_of_int j) with
           | Some v -> if v <> shared_dir_value j then ok := false
           | None -> () (* not written yet: a miss, never garbage *)
         done
       end
     done
   with _ -> ok := false);
  if !ok then 0 else 1

let test_cache_shared_dir () =
  let dir = fresh_dir "shades-cache" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* two daemons on one --cache-dir: write-then-rename atomicity
         means a reader sees a whole value or nothing, concurrent
         writers never tear each other's files, and no temp litter is
         left behind *)
      let keys = shared_dir_keys in
      let value_of = shared_dir_value in
      let spawn seed =
        let env =
          Array.append (Unix.environment ())
            [|
              "SHADES_CACHE_CHILD=" ^ dir;
              "SHADES_CACHE_SEED=" ^ string_of_int seed;
            |]
        in
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          env Unix.stdin Unix.stdout Unix.stderr
      in
      let pids = [ spawn 0; spawn 9 ] in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, _ -> Alcotest.fail "child saw a torn or wrong cache read")
        pids;
      (* no temp litter survives the stampede *)
      let has_sub hay needle =
        let n = String.length needle and h = String.length hay in
        let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
        at 0
      in
      Array.iter
        (fun f ->
          if has_sub f ".tmp." then
            Alcotest.failf "temp litter left behind: %s" f)
        (Sys.readdir dir);
      (* a fresh cache serves every key from disk, intact *)
      let m = Metrics.create () in
      let c =
        Cache.create ~name:"f" ~persist:(int_persist dir) ~capacity:32
          ~metrics:m ()
      in
      for k = 0 to keys - 1 do
        Alcotest.(check (option int))
          (Printf.sprintf "k%d intact after the stampede" k)
          (Some (value_of k))
          (Cache.find c ("k" ^ string_of_int k))
      done;
      Alcotest.(check int) "every answer came off disk" keys
        (counter m "f_disk_hits");
      Alcotest.(check int) "no invalid files" 0 (counter m "f_disk_invalid"))

(* --- service (no sockets) --- *)

let handle_ok service req =
  match Service.handle service req with
  | Service.Reply r -> r
  | Service.Reply_and_stop r -> r

let result_of reply =
  match Json.member "result" reply with
  | Some r -> r
  | None -> Alcotest.fail ("no result in " ^ Json.to_string reply)

let is_error ?code reply =
  match (Json.member "ok" reply, Json.member "error" reply) with
  | Some (Json.Bool false), Some e -> (
      match code with
      | None -> true
      | Some c -> Json.member "code" e = Some (Json.String c))
  | _ -> false

let advise_req spec =
  Json.Obj
    [
      ("op", Json.String "advise");
      ("graph", Json.String spec);
      ("task", Json.String "pe");
    ]

let test_service_errors () =
  let s = Service.create () in
  Alcotest.(check bool)
    "missing op" true
    (is_error ~code:"bad-request" (handle_ok s (Json.Obj [])));
  Alcotest.(check bool)
    "unknown op" true
    (is_error ~code:"unknown-op"
       (handle_ok s (Json.Obj [ ("op", Json.String "fly") ])));
  Alcotest.(check bool)
    "bad graph spec" true
    (is_error ~code:"request-failed" (handle_ok s (advise_req "ring:banana")));
  (* infeasible topology: the oracle itself refuses; still a reply *)
  Alcotest.(check bool)
    "infeasible graph is a structured error" true
    (is_error ~code:"request-failed"
       (handle_ok s
          (Json.Obj
             [
               ("op", Json.String "advise");
               ("graph", Json.String "ring:6");
               ("task", Json.String "s");
             ])))

let test_service_cache_behaviour () =
  let s = Service.create () in
  let m = Service.metrics s in
  let r1 = result_of (handle_ok s (advise_req "gclass:3,1,2")) in
  let r2 = result_of (handle_ok s (advise_req "gclass:3,1,2")) in
  Alcotest.(check bool)
    "first advise is cold"
    true
    (Json.member "cached" r1 = Some (Json.Bool false));
  Alcotest.(check bool)
    "second advise is warm"
    true
    (Json.member "cached" r2 = Some (Json.Bool true));
  Alcotest.(check string)
    "same advice both times"
    (Json.to_string (Option.get (Json.member "advice" r1)))
    (Json.to_string (Option.get (Json.member "advice" r2)));
  Alcotest.(check int) "one oracle run" 1 (counter m "advise_computes");
  Alcotest.(check int) "one cache hit" 1 (counter m "advice_cache_hits");
  (* an isomorphic renumbering shares the cache entry: same canonical
     digest, no second oracle run *)
  let g = Shades_graph.Gen.path 7 in
  let base = result_of (handle_ok s
    (Json.Obj [ ("op", Json.String "advise");
                ("graph", Protocol.graph_to_json g);
                ("task", Json.String "pe") ])) in
  let renum =
    let n = Shades_graph.Port_graph.order g in
    let perm v = (v + 3) mod n in
    Shades_graph.Port_graph.of_edges n
      (List.map
         (fun ((v, p), (u, q)) -> ((perm v, p), (perm u, q)))
         (Shades_graph.Port_graph.edges g))
  in
  let iso = result_of (handle_ok s
    (Json.Obj [ ("op", Json.String "advise");
                ("graph", Protocol.graph_to_json renum);
                ("task", Json.String "pe") ])) in
  Alcotest.(check bool)
    "isomorphic submission is a cache hit" true
    (Json.member "cached" iso = Some (Json.Bool true));
  Alcotest.(check string)
    "isomorphic submissions share a digest"
    (Json.to_string (Option.get (Json.member "digest" base)))
    (Json.to_string (Option.get (Json.member "digest" iso)))

let test_service_eviction () =
  let s = Service.create ~cache_capacity:1 () in
  let m = Service.metrics s in
  ignore (handle_ok s (advise_req "path:5"));
  ignore (handle_ok s (advise_req "path:6"));
  ignore (handle_ok s (advise_req "path:5"));
  Alcotest.(check int) "capacity 1 evicts" 2 (counter m "advice_cache_evictions");
  Alcotest.(check int) "every advise recomputed" 3 (counter m "advise_computes")

let test_service_elect_and_verify () =
  let s = Service.create () in
  let elect =
    result_of
      (handle_ok s
         (Json.Obj
            [
              ("op", Json.String "elect");
              ("graph", Json.String "path:6");
              ("task", Json.String "pe");
            ]))
  in
  Alcotest.(check bool)
    "elect verified" true
    (Json.member "verified" elect = Some (Json.Bool true));
  let outputs = Option.get (Json.member "outputs" elect) in
  let verify_req outputs =
    Json.Obj
      [
        ("op", Json.String "verify");
        ("graph", Json.String "path:6");
        ("task", Json.String "pe");
        ("outputs", outputs);
      ]
  in
  let verdict = result_of (handle_ok s (verify_req outputs)) in
  Alcotest.(check bool)
    "claimed outputs check out" true
    (Json.member "valid" verdict = Some (Json.Bool true));
  (* corrupt one claim: a second leader must be rejected with a reason *)
  let corrupted =
    match outputs with
    | Json.List (_ :: rest) -> Json.List (Json.String "leader" :: rest)
    | _ -> Alcotest.fail "outputs should be a list"
  in
  let verdict = result_of (handle_ok s (verify_req corrupted)) in
  Alcotest.(check bool)
    "corrupted outputs rejected" true
    (Json.member "valid" verdict = Some (Json.Bool false));
  Alcotest.(check bool)
    "with a reason" true
    (Json.member "reason" verdict <> None)

let test_service_elect_sharded () =
  (* "engine":"sharded" is the sync path on the parallel executor: same
     outputs and counts as "sync", advice served from the same cache
     entry, and the reply names the engine it ran. *)
  let s = Service.create () in
  let m = Service.metrics s in
  let elect_req engine =
    Json.Obj
      ([
         ("op", Json.String "elect");
         ("graph", Json.String "path:6");
         ("task", Json.String "pe");
       ]
      @
      match engine with
      | None -> []
      | Some e -> [ ("engine", Json.String e); ("domains", Json.Int 3) ])
  in
  let sync = result_of (handle_ok s (elect_req None)) in
  let sharded = result_of (handle_ok s (elect_req (Some "sharded"))) in
  let field name r = Json.to_string (Option.get (Json.member name r)) in
  List.iter
    (fun name ->
      Alcotest.(check string)
        (name ^ " matches sync") (field name sync) (field name sharded))
    [ "outputs"; "rounds"; "messages"; "advice_bits"; "leader"; "digest" ];
  Alcotest.(check bool)
    "sharded elect verified" true
    (Json.member "verified" sharded = Some (Json.Bool true));
  Alcotest.(check string) "engine echoed" "\"sharded\"" (field "engine" sharded);
  Alcotest.(check bool)
    "advice reused from the sync run's cache entry" true
    (Json.member "cached" sharded = Some (Json.Bool true));
  Alcotest.(check int) "single oracle run" 1 (counter m "advise_computes");
  (* malformed domains is a structured error, not a crash *)
  let bad =
    handle_ok s
      (Json.Obj
         [
           ("op", Json.String "elect");
           ("graph", Json.String "path:6");
           ("task", Json.String "pe");
           ("engine", Json.String "sharded");
           ("domains", Json.String "three");
         ])
  in
  Alcotest.(check bool) "bad domains rejected" true (is_error bad)

let test_service_verify_trace () =
  let s = Service.create () in
  (* record a trace exactly as `shades trace record` does *)
  let open Shades_trace in
  let g = Shades_graph.Gen.path 6 in
  let r = Trace.recorder () in
  ignore
    (Shades_election.Scheme.run ~tracer:(Trace.emit r)
       Shades_election.Map_advice.port_election g);
  let trace =
    Trace.capture r
      {
        Trace.engine = Trace.Sync;
        graph_order = Shades_graph.Port_graph.order g;
        advice_bits = 0;
        label = "pe path:6";
      }
  in
  let blob = Codec.encode trace in
  let req hex =
    Json.Obj [ ("op", Json.String "verify-trace"); ("trace", Json.String hex) ]
  in
  let verdict = result_of (handle_ok s (req (Protocol.hex_encode blob))) in
  Alcotest.(check bool)
    "genuine trace replays clean" true
    (Json.member "valid" verdict = Some (Json.Bool true));
  (* flip one byte deep in the event stream: decode or replay must fail,
     never accept *)
  let tampered = Bytes.of_string blob in
  let pos = Bytes.length tampered - 3 in
  Bytes.set tampered pos (Char.chr (Char.code (Bytes.get tampered pos) lxor 0xff));
  let reply = handle_ok s (req (Protocol.hex_encode (Bytes.to_string tampered))) in
  let accepted =
    (not (is_error reply))
    && Json.member "valid" (result_of reply) = Some (Json.Bool true)
  in
  Alcotest.(check bool) "tampered trace is not accepted" false accepted

let strip_cache_flags = function
  | Json.Obj ms ->
      Json.Obj
        (List.filter
           (fun (n, _) -> n <> "cached" && n <> "result_cached")
           ms)
  | j -> j

let test_service_restart_recovery () =
  let dir = fresh_dir "shades-service" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let elect_req =
        Json.Obj
          [
            ("op", Json.String "elect");
            ("graph", Json.String "path:6");
            ("task", Json.String "pe");
          ]
      in
      let s1 = Service.create ~cache_dir:dir () in
      let a1 = result_of (handle_ok s1 (advise_req "gclass:3,1,2")) in
      let e1 = result_of (handle_ok s1 elect_req) in
      let outputs = Option.get (Json.member "outputs" e1) in
      let verify_req =
        Json.Obj
          [
            ("op", Json.String "verify");
            ("graph", Json.String "path:6");
            ("task", Json.String "pe");
            ("outputs", outputs);
          ]
      in
      let v1 = result_of (handle_ok s1 verify_req) in
      (* the restart: a second service on the same directory must
         answer all three from the disk tier — zero oracle, engine or
         referee runs — with byte-identical results modulo the
         cache-status flags *)
      let s2 = Service.create ~cache_dir:dir () in
      let m2 = Service.metrics s2 in
      let a2 = result_of (handle_ok s2 (advise_req "gclass:3,1,2")) in
      let e2 = result_of (handle_ok s2 elect_req) in
      let v2 = result_of (handle_ok s2 verify_req) in
      Alcotest.(check int) "no oracle runs after restart" 0
        (counter m2 "advise_computes");
      Alcotest.(check int) "no engine runs after restart" 0
        (counter m2 "elect_computes");
      Alcotest.(check int) "no referee runs after restart" 0
        (counter m2 "verify_computes");
      Alcotest.(check int) "three answers served from cache" 3
        (counter m2 "computes_avoided");
      Alcotest.(check bool)
        "restarted advise says cached" true
        (Json.member "cached" a2 = Some (Json.Bool true));
      Alcotest.(check bool)
        "restarted elect says result_cached" true
        (Json.member "result_cached" e2 = Some (Json.Bool true));
      List.iter
        (fun (what, r1, r2) ->
          Alcotest.(check string)
            (what ^ " reply identical across restart")
            (Json.to_string (strip_cache_flags r1))
            (Json.to_string (strip_cache_flags r2)))
        [ ("advise", a1, a2); ("elect", e1, e2); ("verify", v1, v2) ])

let batch_req items =
  Json.Obj [ ("op", Json.String "batch"); ("requests", Json.List items) ]

let test_service_batch () =
  let s = Service.create () in
  let m = Service.metrics s in
  let reply =
    match
      Service.handle s
        (batch_req
           [
             advise_req "gclass:3,1,2";
             Json.Obj [ ("op", Json.String "stats") ];
             advise_req "ring:banana";
             batch_req [];
             Json.Obj [ ("op", Json.String "shutdown") ];
           ])
    with
    | Service.Reply r -> r
    | Service.Reply_and_stop _ ->
        Alcotest.fail "a batched shutdown must not stop the daemon"
  in
  let result = result_of reply in
  Alcotest.(check bool)
    "count echoed" true
    (Json.member "count" result = Some (Json.Int 5));
  let replies =
    match Json.member "replies" result with
    | Some (Json.List l) -> Array.of_list l
    | _ -> Alcotest.fail "batch reply needs a replies list"
  in
  Alcotest.(check int) "one reply per item" 5 (Array.length replies);
  (* order: slot i answers request i *)
  Alcotest.(check bool)
    "slot 0 is the advise" true
    (Json.member "op" replies.(0) = Some (Json.String "advise"));
  Alcotest.(check bool)
    "slot 1 is the stats" true
    (Json.member "op" replies.(1) = Some (Json.String "stats"));
  (* isolation: the failures each sit in their own slot *)
  Alcotest.(check bool)
    "bad graph isolated" true
    (is_error ~code:"request-failed" replies.(2));
  Alcotest.(check bool)
    "nested batch rejected" true
    (is_error ~code:"bad-request" replies.(3));
  Alcotest.(check bool)
    "batched shutdown rejected" true
    (is_error ~code:"bad-request" replies.(4));
  Alcotest.(check int) "items counted" 5 (counter m "batch_items");
  (* an empty batch is a valid degenerate frame *)
  let empty = result_of (handle_ok s (batch_req [])) in
  Alcotest.(check bool)
    "empty batch" true
    (Json.member "count" empty = Some (Json.Int 0))

let test_service_batch_parallel () =
  (* same semantics with a real crew installed as the fan-out hook:
     replies stay in request order regardless of scheduling *)
  let module Pool = Shades_runtime.Pool in
  let s = Service.create () in
  let crew = Pool.Crew.create ~domains:3 () in
  Service.set_parallel s (Some (Pool.Crew.run_all crew));
  Fun.protect
    ~finally:(fun () ->
      Service.set_parallel s None;
      Pool.Crew.shutdown crew)
    (fun () ->
      let specs = [ "path:5"; "path:6"; "path:7"; "path:8"; "path:9" ] in
      let result =
        result_of (handle_ok s (batch_req (List.map advise_req specs)))
      in
      let replies =
        match Json.member "replies" result with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "batch reply needs a replies list"
      in
      List.iter2
        (fun spec reply ->
          Alcotest.(check bool) (spec ^ " ok") true (not (is_error reply));
          let solo = result_of (handle_ok s (advise_req spec)) in
          Alcotest.(check string)
            (spec ^ " reply in its own slot")
            (Json.to_string (strip_cache_flags solo))
            (Json.to_string (strip_cache_flags (result_of reply))))
        specs replies)

(* --- the HTTP plane --- *)

let prom_value text name =
  let prefix = name ^ " " in
  let rec find = function
    | [] -> None
    | line :: rest ->
        if String.starts_with ~prefix line then
          float_of_string_opt
            (String.sub line (String.length prefix)
               (String.length line - String.length prefix))
        else find rest
  in
  find (String.split_on_char '\n' text)

let test_http_render () =
  let s = Service.create () in
  ignore (handle_ok s (advise_req "gclass:3,1,2"));
  ignore (handle_ok s (advise_req "gclass:3,1,2"));
  let text = Http.render_metrics s in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec at i = i + n <= h && (String.sub text i n = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition has " ^ needle) true (contains needle))
    [
      "# TYPE shades_uptime_seconds gauge";
      "# HELP shades_advice_cache_hits_total ";
      "# TYPE shades_advise_computes_total counter";
      "# TYPE shades_op_advise_seconds_total counter";
    ];
  Alcotest.(check (option (float 0.)))
    "one oracle run" (Some 1.)
    (prom_value text "shades_advise_computes_total");
  Alcotest.(check (option (float 0.)))
    "one cache hit" (Some 1.)
    (prom_value text "shades_advice_cache_hits_total");
  Alcotest.(check (option (float 0.)))
    "per-op request pair" (Some 2.)
    (prom_value text "shades_op_advise_requests_total");
  Alcotest.(check bool)
    "uptime positive" true
    (match prom_value text "shades_uptime_seconds" with
    | Some u -> u >= 0.
    | None -> false);
  (* counters are monotonic between scrapes *)
  ignore (handle_ok s (advise_req "gclass:3,1,2"));
  let text2 = Http.render_metrics s in
  List.iter
    (fun name ->
      match (prom_value text name, prom_value text2 name) with
      | Some before, Some after ->
          Alcotest.(check bool) (name ^ " monotonic") true (after >= before)
      | _ -> Alcotest.fail (name ^ " vanished between scrapes"))
    [
      "shades_requests_total";
      "shades_advice_cache_hits_total";
      "shades_advise_computes_total";
      "shades_op_advise_requests_total";
    ];
  Alcotest.(check (option (float 0.)))
    "hit counted by the second scrape" (Some 2.)
    (prom_value text2 "shades_advice_cache_hits_total")

let http_get path sock_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock_path);
  let oc = Unix.out_channel_of_descr fd in
  output_string oc ("GET " ^ path ^ " HTTP/1.1\r\nHost: test\r\n\r\n");
  flush oc;
  let ic = Unix.in_channel_of_descr fd in
  let response = In_channel.input_all ic in
  Unix.close fd;
  response

(* --- end to end over a Unix socket --- *)

let test_daemon_end_to_end () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shades-test-%d.sock" (Unix.getpid ()))
  in
  let endpoint = Protocol.Unix_path socket in
  let service = Service.create () in
  let daemon = Domain.spawn (fun () -> Daemon.run ~domains:2 endpoint service) in
  let conn =
    let rec retry n =
      match Client.connect endpoint with
      | Ok c -> c
      | Error e ->
          if n = 0 then Alcotest.fail ("daemon never came up: " ^ e)
          else (
            Unix.sleepf 0.05;
            retry (n - 1))
    in
    retry 100
  in
  Fun.protect
    ~finally:(fun () -> Client.close conn)
    (fun () ->
      let ask req = Result.get_ok (Client.request conn req) in
      let cold = result_of (ask (advise_req "gclass:3,1,2")) in
      let warm = result_of (ask (advise_req "gclass:3,1,2")) in
      Alcotest.(check bool)
        "cold then warm over the wire" true
        (Json.member "cached" cold = Some (Json.Bool false)
        && Json.member "cached" warm = Some (Json.Bool true));
      (* a second concurrent client sees the same shared cache *)
      let other = Result.get_ok (Client.connect endpoint) in
      let from_other =
        Fun.protect
          ~finally:(fun () -> Client.close other)
          (fun () -> result_of (Result.get_ok (Client.request other (advise_req "gclass:3,1,2"))))
      in
      Alcotest.(check bool)
        "cache shared across connections" true
        (Json.member "cached" from_other = Some (Json.Bool true));
      let stats = result_of (ask (Json.Obj [ ("op", Json.String "stats") ])) in
      let computes =
        match Json.member "counters" stats with
        | Some c -> (
            match Json.member "advise_computes" c with
            | Some v -> Json.member "value" v
            | None -> None)
        | None -> None
      in
      Alcotest.(check bool)
        "exactly one oracle run for three advises" true
        (computes = Some (Json.Int 1));
      (* bad JSON in a good frame: this request fails, the next works *)
      let reply = ask (Json.Obj [ ("op", Json.Int 3) ]) in
      Alcotest.(check bool) "non-string op rejected" true (is_error reply);
      let again = ask (advise_req "gclass:3,1,2") in
      Alcotest.(check bool)
        "connection survives a rejected request" true (not (is_error again));
      let bye = ask (Json.Obj [ ("op", Json.String "shutdown") ]) in
      Alcotest.(check bool) "shutdown acknowledged" true (not (is_error bye)));
  Domain.join daemon;
  Alcotest.(check bool)
    "socket file removed on shutdown" false (Sys.file_exists socket)

let test_daemon_http_and_batch () =
  let tmp = Filename.get_temp_dir_name () in
  let socket =
    Filename.concat tmp (Printf.sprintf "shades-test-h-%d.sock" (Unix.getpid ()))
  in
  let http_path =
    Filename.concat tmp
      (Printf.sprintf "shades-test-http-%d.sock" (Unix.getpid ()))
  in
  let endpoint = Protocol.Unix_path socket in
  let service = Service.create () in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.run ~domains:2 ~http:(Protocol.Unix_path http_path) endpoint
          service)
  in
  let conn =
    let rec retry n =
      match Client.connect endpoint with
      | Ok c -> c
      | Error e ->
          if n = 0 then Alcotest.fail ("daemon never came up: " ^ e)
          else (
            Unix.sleepf 0.05;
            retry (n - 1))
    in
    retry 100
  in
  Fun.protect
    ~finally:(fun () -> Client.close conn)
    (fun () ->
      let ask req = Result.get_ok (Client.request conn req) in
      (* prime the cache first: two identical items inside one parallel
         batch may legitimately race and both compute *)
      ignore (ask (advise_req "gclass:3,1,2"));
      (* a batch over the wire: ordered, isolated *)
      let reply =
        ask
          (batch_req
             [
               advise_req "gclass:3,1,2";
               advise_req "ring:banana";
               advise_req "gclass:3,1,2";
             ])
      in
      let replies =
        match Json.member "replies" (result_of reply) with
        | Some (Json.List l) -> Array.of_list l
        | _ -> Alcotest.fail "batch reply needs a replies list"
      in
      Alcotest.(check bool)
        "wire batch: slot 0 ok" true
        (not (is_error replies.(0)));
      Alcotest.(check bool)
        "wire batch: slot 1 isolated failure" true
        (is_error replies.(1));
      Alcotest.(check bool)
        "wire batch: slot 2 a cache hit" true
        (Json.member "cached" (result_of replies.(2)) = Some (Json.Bool true));
      (* the HTTP plane answers on its own socket *)
      let health = http_get "/healthz" http_path in
      Alcotest.(check bool)
        "healthz is 200 ok" true
        (String.starts_with ~prefix:"HTTP/1.1 200 OK\r\n" health
        && String.ends_with ~suffix:"ok\n" health);
      let metrics = http_get "/metrics" http_path in
      let contains needle =
        let n = String.length needle and h = String.length metrics in
        let rec at i =
          i + n <= h && (String.sub metrics i n = needle || at (i + 1))
        in
        at 0
      in
      Alcotest.(check bool)
        "metrics is 200" true
        (String.starts_with ~prefix:"HTTP/1.1 200 OK\r\n" metrics);
      Alcotest.(check bool)
        "metrics counts the batch items" true
        (contains "shades_batch_items_total 3");
      Alcotest.(check bool)
        "metrics counts the http plane itself" true
        (contains "shades_http_requests_total");
      let missing = http_get "/nope" http_path in
      Alcotest.(check bool)
        "unknown path is 404" true
        (String.starts_with ~prefix:"HTTP/1.1 404" missing);
      let bye = ask (Json.Obj [ ("op", Json.String "shutdown") ]) in
      Alcotest.(check bool) "shutdown acknowledged" true (not (is_error bye)));
  Domain.join daemon;
  Alcotest.(check bool)
    "both socket files removed on shutdown" false
    (Sys.file_exists socket || Sys.file_exists http_path)

(* child mode: the shared --cache-dir test re-executes this binary
   with SHADES_CACHE_CHILD set; run the stampede and exit before
   Alcotest ever sees argv *)
let () =
  match Sys.getenv_opt "SHADES_CACHE_CHILD" with
  | Some dir ->
      let seed =
        Option.value ~default:0
          (Option.bind (Sys.getenv_opt "SHADES_CACHE_SEED") int_of_string_opt)
      in
      exit (shared_dir_child dir seed)
  | None -> ()

let () =
  Alcotest.run "shades_server"
    [
      ( "protocol",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "frame errors" `Quick test_frame_errors;
          Alcotest.test_case "hex codec" `Quick test_hex;
          Alcotest.test_case "endpoints" `Quick test_endpoints;
          Alcotest.test_case "graph json" `Quick test_graph_json;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru semantics" `Quick test_cache_lru;
          Alcotest.test_case "find_or_compute" `Quick test_cache_find_or_compute;
          Alcotest.test_case "concurrent hammering" `Quick test_cache_concurrent;
          Alcotest.test_case "disk tier" `Quick test_cache_persistence;
          Alcotest.test_case "corrupt files" `Quick test_cache_corrupt_files;
          Alcotest.test_case "disk budget" `Quick test_cache_disk_budget;
          Alcotest.test_case "shared cache dir" `Quick test_cache_shared_dir;
        ] );
      ( "service",
        [
          Alcotest.test_case "structured errors" `Quick test_service_errors;
          Alcotest.test_case "cache behaviour" `Quick test_service_cache_behaviour;
          Alcotest.test_case "eviction" `Quick test_service_eviction;
          Alcotest.test_case "elect + verify" `Quick test_service_elect_and_verify;
          Alcotest.test_case "elect sharded" `Quick test_service_elect_sharded;
          Alcotest.test_case "verify-trace" `Quick test_service_verify_trace;
          Alcotest.test_case "restart recovery" `Quick
            test_service_restart_recovery;
          Alcotest.test_case "batch" `Quick test_service_batch;
          Alcotest.test_case "batch parallel" `Quick test_service_batch_parallel;
        ] );
      ( "http",
        [ Alcotest.test_case "render metrics" `Quick test_http_render ] );
      ( "daemon",
        [
          Alcotest.test_case "end to end" `Quick test_daemon_end_to_end;
          Alcotest.test_case "http + batch" `Quick test_daemon_http_and_batch;
        ] );
    ]
