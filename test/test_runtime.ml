(* Tests for the parallel sweep runtime: pool determinism, metrics,
   the versioned store codec, and byte-identical sweeps across domain
   counts. *)

open Shades_runtime

(* --- Pool --- *)

(* A deliberately uneven pure job so a racy pool would misorder. *)
let job x =
  let rec burn acc = function 0 -> acc | n -> burn ((acc * 31) + n) (n - 1) in
  burn x (1000 + (x mod 7 * 500))

let test_pool_order () =
  let inputs = Array.init 50 (fun i -> i) in
  let sequential = Array.map job inputs in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "%d domains = sequential, input order" domains)
        sequential
        (Pool.map ~domains job inputs))
    [ 1; 2; 4; 8 ]

let test_pool_edge_cases () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~domains:4 job [||]);
  Alcotest.(check (array int)) "singleton" [| job 3 |]
    (Pool.map ~domains:4 job [| 3 |]);
  Alcotest.(check (list int)) "list wrapper" [ job 1; job 2 ]
    (Pool.map_list ~domains:2 job [ 1; 2 ])

let test_pool_exception () =
  Alcotest.check_raises "first failing index wins" (Failure "boom-2")
    (fun () ->
      ignore
        (Pool.map ~domains:4
           (fun x ->
             if x >= 2 then failwith (Printf.sprintf "boom-%d" x) else x)
           (Array.init 10 (fun i -> i))))

(* --- Metrics --- *)

let test_metrics_quantiles () =
  let m = Metrics.create () in
  (* 1..100 inserted out of order: quantiles must not depend on
     insertion order *)
  List.iter
    (fun v -> Metrics.observe m "latency" (float_of_int v))
    (List.init 100 (fun i -> ((i * 37) mod 100) + 1));
  let q p = Option.get (Metrics.quantile m "latency" p) in
  Alcotest.(check (float 0.0)) "p50" 50.0 (q 0.50);
  Alcotest.(check (float 0.0)) "p90" 90.0 (q 0.90);
  Alcotest.(check (float 0.0)) "p99" 99.0 (q 0.99);
  Alcotest.(check (float 0.0)) "p100" 100.0 (q 1.0);
  Alcotest.(check (float 0.0)) "p0+" 1.0 (q 0.001);
  match List.assoc "latency" (Metrics.snapshot m) with
  | Metrics.Histogram h ->
      Alcotest.(check int) "count" 100 h.Metrics.count;
      Alcotest.(check (float 0.0)) "sum" 5050.0 h.Metrics.sum;
      Alcotest.(check (float 0.0)) "min" 1.0 h.Metrics.min;
      Alcotest.(check (float 0.0)) "max" 100.0 h.Metrics.max;
      Alcotest.(check (float 0.0)) "snapshot p90" 90.0 h.Metrics.p90
  | _ -> Alcotest.fail "latency is not a histogram"

let test_metrics_kinds () =
  let m = Metrics.create () in
  Metrics.incr m "jobs";
  Metrics.incr ~by:4 m "jobs";
  Metrics.set_gauge m "load" 0.5;
  Metrics.set_gauge m "load" 0.75;
  Metrics.add_ns m "wall" 1000;
  Metrics.add_ns m "wall" 500;
  let snap = Metrics.snapshot m in
  Alcotest.(check int) "snapshot size" 3 (List.length snap);
  Alcotest.(check bool) "name-sorted" true
    (List.sort compare (List.map fst snap) = List.map fst snap);
  (match List.assoc "jobs" snap with
  | Metrics.Counter 5 -> ()
  | _ -> Alcotest.fail "counter");
  (match List.assoc "load" snap with
  | Metrics.Gauge g -> Alcotest.(check (float 0.0)) "gauge last-write" 0.75 g
  | _ -> Alcotest.fail "gauge");
  match List.assoc "wall" snap with
  | Metrics.Timing { count = 2; total_ns = 1500 } -> ()
  | _ -> Alcotest.fail "timing"

(* --- Store --- *)

let sample_store =
  let r1 =
    {
      Store.params =
        [
          ("family", Store.Json.String "g"); ("delta", Store.Json.Int 4);
          ("k", Store.Json.Int 1);
        ];
      rounds = 1;
      messages = 118;
      advice_bits = 32;
      wall_ns = 123456;
      metrics =
        [
          ("elect", Metrics.Timing { count = 1; total_ns = 99000 });
          ("engine_rounds", Metrics.Counter 1);
          ( "latency",
            Metrics.Histogram
              {
                Metrics.count = 3;
                sum = 6.5;
                min = 0.5;
                max = 4.0;
                p50 = 2.0;
                p90 = 4.0;
                p99 = 4.0;
              } );
          ("load", Metrics.Gauge 0.75);
        ];
    }
  in
  let r2 =
    {
      Store.params = [ ("weird \"name\"\n", Store.Json.Null) ];
      rounds = 0;
      messages = 0;
      advice_bits = 0;
      wall_ns = 0;
      metrics = [];
    }
  in
  Store.make ~label:"unit λ test" [ r1; r2 ]

let test_store_roundtrip () =
  let encoded = Store.encode sample_store in
  match Store.decode encoded with
  | Error e -> Alcotest.fail ("decode failed: " ^ e)
  | Ok decoded ->
      Alcotest.(check bool) "round-trip equal" true (decoded = sample_store);
      Alcotest.(check string) "re-encode byte-identical" encoded
        (Store.encode decoded)

let test_store_rejects_bumped_version () =
  let bumped =
    { sample_store with Store.version = Store.schema_version + 1 }
  in
  match Store.decode (Store.encode bumped) with
  | Ok _ -> Alcotest.fail "bumped schema version must be rejected"
  | Error e ->
      Alcotest.(check bool) "error names the version" true
        (String.length e > 0
        && String.exists (fun c -> c = Char.chr (Char.code '0' + Store.schema_version + 1)) e)

let test_store_rejects_garbage () =
  List.iter
    (fun text ->
      match Store.decode text with
      | Ok _ -> Alcotest.fail ("accepted garbage: " ^ text)
      | Error _ -> ())
    [
      ""; "{"; "[1,2"; "{\"schema\":1}"; "{\"schema\":1,\"label\":3,\"records\":[]}";
      "{\"schema\":1,\"label\":\"x\",\"records\":[{\"params\":{}}]}";
      "{\"schema\":1,\"label\":\"x\",\"records\":[]}trailing";
    ]

let test_json_values () =
  let j =
    Store.Json.Obj
      [
        ("i", Store.Json.Int (-42)); ("f", Store.Json.Float 2.5);
        ("s", Store.Json.String "a\"b\\c\nd");
        ("l", Store.Json.List [ Store.Json.Bool true; Store.Json.Null ]);
        ("nested", Store.Json.Obj [ ("x", Store.Json.Int 1) ]);
      ]
  in
  match Store.Json.of_string (Store.Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "json round-trip" true (j = j')
  | Error e -> Alcotest.fail e

let test_store_diff () =
  let current =
    {
      sample_store with
      Store.records =
        List.map
          (fun r ->
            if r.Store.rounds = 1 then { r with Store.rounds = 2 } else r)
          sample_store.Store.records;
    }
  in
  (match Store.diff ~baseline:sample_store ~current:sample_store with
  | [] -> ()
  | lines -> Alcotest.fail ("self-diff not empty: " ^ String.concat "; " lines));
  match Store.diff ~baseline:sample_store ~current with
  | [ line ] ->
      Alcotest.(check bool) "names the changed field" true
        (String.length line >= 6
        && String.sub line 0 7 = "changed")
  | lines ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one diff line, got %d"
           (List.length lines))

(* --- Sharded store --- *)

let with_tmp_dir f =
  let dir = Filename.temp_file "shades_shards" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name -> Sys.remove (Filename.concat dir name))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Two (family, delta) slices with deterministic measurements and noisy
   timing fields — the shape a sweep store has. *)
let sliced_record ~family ~delta ~k ~rounds ~wall_ns =
  {
    Store.params =
      [
        ("family", Store.Json.String family); ("delta", Store.Json.Int delta);
        ("k", Store.Json.Int k);
      ];
    rounds;
    messages = 100 * delta;
    advice_bits = 10 * delta;
    wall_ns;
    metrics =
      [
        ("build", Metrics.Timing { count = 1; total_ns = wall_ns / 2 });
        ("engine_rounds", Metrics.Counter rounds);
      ];
  }

let sliced_store ?(wall_ns = 1000) ?(d4_rounds = 2) () =
  Store.make ~label:"sharded unit test"
    [
      sliced_record ~family:"g" ~delta:3 ~k:1 ~rounds:1 ~wall_ns;
      sliced_record ~family:"g" ~delta:4 ~k:1 ~rounds:d4_rounds ~wall_ns;
      sliced_record ~family:"g" ~delta:4 ~k:2 ~rounds:d4_rounds ~wall_ns;
    ]

let test_shard_manifest_roundtrip () =
  with_tmp_dir (fun dir ->
      let store = sliced_store () in
      let m = Store.Sharded.save ~dir store in
      Alcotest.(check int) "two slices" 2 (List.length m.Store.Sharded.shards);
      (match Store.Sharded.load_manifest ~dir with
      | Error e -> Alcotest.fail ("manifest load failed: " ^ e)
      | Ok m' ->
          Alcotest.(check bool) "manifest round-trip equal" true (m = m'));
      List.iter
        (fun s ->
          Alcotest.(check int) "digest is hex MD5" 32
            (String.length s.Store.Sharded.digest))
        m.Store.Sharded.shards;
      let d4 =
        List.find
          (fun s ->
            List.assoc_opt "delta" s.Store.Sharded.slice
            = Some (Store.Json.Int 4))
          m.Store.Sharded.shards
      in
      Alcotest.(check int) "delta-4 shard has both k records" 2
        d4.Store.Sharded.records;
      match Store.Sharded.load ~dir with
      | Error e -> Alcotest.fail ("sharded load failed: " ^ e)
      | Ok store' ->
          Alcotest.(check bool)
            "reassembled store equals original (grid order grouped by slice)"
            true (store' = store))

let test_shard_digest_ignores_timing () =
  let a = Store.Sharded.shard (sliced_store ~wall_ns:1000 ()) in
  let b = Store.Sharded.shard (sliced_store ~wall_ns:999_999 ()) in
  let c = Store.Sharded.shard (sliced_store ~d4_rounds:3 ()) in
  let digests shards =
    List.map (fun (s, _) -> s.Store.Sharded.digest) shards
  in
  Alcotest.(check (list string))
    "digests independent of timing fields" (digests a) (digests b);
  Alcotest.(check string) "delta-3 digest unchanged by delta-4 edit"
    (digests a |> List.hd) (digests c |> List.hd);
  Alcotest.(check bool) "changed rounds change the delta-4 digest" false
    (List.nth (digests a) 1 = List.nth (digests c) 1)

(* The tiny CI grid must hash identically whatever the domain count:
   this is exactly what lets `make check` gate against a committed
   manifest regardless of the machine running it. *)
let test_shard_digest_stable_across_domains () =
  let shards domains =
    Store.Sharded.shard (Store.make (Sweep.run ~domains (Sweep.tiny_jobs ())))
  in
  let digests shards =
    List.map (fun (s, _) -> s.Store.Sharded.digest) shards
  in
  Alcotest.(check (list string))
    "tiny-grid shard digests equal across 1 vs 4 domains"
    (digests (shards 1))
    (digests (shards 4))

let test_shard_replacement () =
  with_tmp_dir (fun dir ->
      let m = Store.Sharded.save ~dir (sliced_store ()) in
      let file_of delta =
        (List.find
           (fun s ->
             List.assoc_opt "delta" s.Store.Sharded.slice
             = Some (Store.Json.Int delta))
           m.Store.Sharded.shards)
          .Store.Sharded.file
      in
      let d3_before = read_bytes (Filename.concat dir (file_of 3)) in
      (* re-run of the delta=4 slice: measurements changed there, and
         timing noise changed everywhere *)
      let m' =
        Store.Sharded.save ~dir (sliced_store ~wall_ns:777 ~d4_rounds:9 ())
      in
      let d3_after = read_bytes (Filename.concat dir (file_of 3)) in
      Alcotest.(check string)
        "untouched slice's shard file is byte-identical" d3_before d3_after;
      Alcotest.(check bool) "changed slice's digest moved" false
        (List.nth m.Store.Sharded.shards 1 = List.nth m'.Store.Sharded.shards 1);
      Alcotest.(check bool) "unchanged slice's manifest entry kept" true
        (List.hd m.Store.Sharded.shards = List.hd m'.Store.Sharded.shards))

let test_shard_schema_and_digest_rejection () =
  with_tmp_dir (fun dir ->
      let store = sliced_store () in
      let m = Store.Sharded.save ~dir store in
      let shard0 = List.hd m.Store.Sharded.shards in
      let path = Filename.concat dir shard0.Store.Sharded.file in
      let original = read_bytes path in
      (* a stale shard written by an older build: schema 1 *)
      let stale =
        let this = Printf.sprintf "\"schema\":%d" Store.schema_version in
        let old = "\"schema\":1" in
        let i =
          let rec find i =
            if i + String.length this > String.length original then
              Alcotest.fail "schema field not found"
            else if String.sub original i (String.length this) = this then i
            else find (i + 1)
          in
          find 0
        in
        String.sub original 0 i ^ old
        ^ String.sub original
            (i + String.length this)
            (String.length original - i - String.length this)
      in
      let oc = open_out path in
      output_string oc stale;
      close_out oc;
      (match Store.Sharded.load ~dir with
      | Ok _ -> Alcotest.fail "stale shard schema must be rejected"
      | Error e ->
          Alcotest.(check bool) "error names the schema version" true
            (String.length e > 0));
      (* same bytes count, wrong content: digest mismatch *)
      let tampered =
        String.map (fun c -> if c = '1' then '7' else c) original
      in
      let oc = open_out path in
      output_string oc tampered;
      close_out oc;
      (match Store.Sharded.load ~dir with
      | Ok _ -> Alcotest.fail "tampered shard must be rejected"
      | Error _ -> ());
      (* restore, then break the manifest schema *)
      let oc = open_out path in
      output_string oc original;
      close_out oc;
      let mpath = Filename.concat dir Store.Sharded.manifest_file in
      let mtext = read_bytes mpath in
      let oc = open_out mpath in
      output_string oc
        (Printf.sprintf "{\"schema\":%d,%s" (Store.schema_version + 1)
           (String.sub mtext
              (String.index mtext ',' + 1)
              (String.length mtext - String.index mtext ',' - 1)));
      close_out oc;
      match Store.Sharded.load_manifest ~dir with
      | Ok _ -> Alcotest.fail "bumped manifest schema must be rejected"
      | Error _ -> ())

let test_shard_streaming_diff () =
  with_tmp_dir (fun dir ->
      let baseline = sliced_store () in
      ignore (Store.Sharded.save ~dir baseline);
      (* no drift against itself *)
      (match Store.Sharded.diff ~baseline_dir:dir baseline with
      | Error e -> Alcotest.fail e
      | Ok [] -> ()
      | Ok changes ->
          Alcotest.fail
            (Printf.sprintf "self-diff not empty: %d changes"
               (List.length changes)));
      (* one slice drifts: every reported change is tagged with that
         shard, the clean shard never appears *)
      let current = sliced_store ~wall_ns:31337 ~d4_rounds:5 () in
      match Store.Sharded.diff ~baseline_dir:dir current with
      | Error e -> Alcotest.fail e
      | Ok changes ->
          Alcotest.(check int) "both delta-4 records drifted" 2
            (List.length changes);
          List.iter
            (fun (shard, c) ->
              Alcotest.(check string) "tagged with the drifting shard"
                "shard-family=g,delta=4.json" shard;
              Alcotest.(check bool) "classified as changed" true
                (Store.is_changed c))
            changes)

(* --- Sweep --- *)

let test_cross_order () =
  let points =
    Sweep.cross
      [ Sweep.range "a" ~lo:1 ~hi:2; Sweep.axis "b" [ 10; 20 ] ]
  in
  Alcotest.(check int) "grid size" 4 (List.length points);
  Alcotest.(check bool) "row-major, last axis fastest" true
    (points
    = [
        [ ("a", 1); ("b", 10) ]; [ ("a", 1); ("b", 20) ];
        [ ("a", 2); ("b", 10) ]; [ ("a", 2); ("b", 20) ];
      ])

let test_sweep_filters_invalid () =
  (* delta=3 G-class has only 2 graphs: i=5 is outside; U needs
     delta >= 4; oversized U instances are refused *)
  Alcotest.(check bool) "g: i out of class" true
    (Sweep.gclass_job [ ("delta", 3); ("k", 1); ("i", 5) ] = None);
  Alcotest.(check bool) "u: delta too small" true
    (Sweep.uclass_job [ ("delta", 3); ("k", 1) ] = None);
  Alcotest.(check bool) "u: unbuildably large" true
    (Sweep.uclass_job [ ("delta", 5); ("k", 2) ] = None);
  Alcotest.(check int) "valid points survive" 2
    (List.length
       (Sweep.gclass_jobs
          [
            [ ("delta", 3); ("k", 1); ("i", 5) ]; [ ("delta", 3); ("k", 1) ];
            [ ("delta", 4); ("k", 1) ];
          ]))

(* A 50-point grid over both families: the pool must return the exact
   sequential records, in grid order, for every domain count — and the
   encoded stores must be byte-identical once timing is stripped. *)
let determinism_jobs () =
  let g_jobs =
    Sweep.gclass_jobs
      (Sweep.cross
         [
           Sweep.range "delta" ~lo:3 ~hi:6; Sweep.range "k" ~lo:1 ~hi:2;
           Sweep.axis "i" [ 2; 3; 4 ];
         ])
  in
  let u_jobs =
    Sweep.uclass_jobs
      (Sweep.cross
         [ Sweep.range "delta" ~lo:4 ~hi:4; Sweep.range "k" ~lo:1 ~hi:1;
           Sweep.axis "sigma" [ 1; 2; 3 ] ])
  in
  g_jobs @ u_jobs

let test_sweep_grid_size () =
  (* 4 deltas * 2 ks * 3 is = 24 minus the two out-of-class points of
     G_{3,1} (only 2 graphs, i=3 and i=4 invalid) = 22, plus 3 U points:
     a 25-job grid, 50 timed stages (build+elect per job) *)
  Alcotest.(check int) "grid size" 25 (List.length (determinism_jobs ()))

let canonical store = Store.encode (Store.strip_timing store)

let test_sweep_deterministic_across_domains () =
  let baseline = canonical (Store.make (Sweep.run ~domains:1 (determinism_jobs ()))) in
  List.iter
    (fun domains ->
      let got =
        canonical (Store.make (Sweep.run ~domains (determinism_jobs ())))
      in
      Alcotest.(check string)
        (Printf.sprintf "%d domains byte-identical to 1 domain" domains)
        baseline got)
    [ 2; 5 ]

let test_sweep_records_verified () =
  let records = Sweep.run ~domains:2 (determinism_jobs ()) in
  List.iter
    (fun r ->
      (match Store.metric r "verified" with
      | Some (Metrics.Counter 1) -> ()
      | _ -> Alcotest.fail "a sweep point failed verification");
      Alcotest.(check bool) "messages measured" true (r.Store.messages > 0);
      (match Store.metric r "engine_rounds" with
      | Some (Metrics.Counter c) -> Alcotest.(check int) "hook rounds" r.Store.rounds c
      | _ -> Alcotest.fail "engine_rounds counter missing");
      (* the per-round message histogram is always on: one observation
         per engine round, totalling the run's message count *)
      match Store.metric r "round_messages" with
      | Some (Metrics.Histogram h) ->
          Alcotest.(check int) "one observation per round" r.Store.rounds
            h.Metrics.count;
          Alcotest.(check (float 0.0)) "observations sum to messages"
            (float_of_int r.Store.messages)
            h.Metrics.sum
      | _ -> Alcotest.fail "round_messages histogram missing")
    records

let test_jclass_jobs_guard () =
  let metrics = Metrics.create () in
  let points =
    Sweep.cross
      [
        Sweep.axis "mu" [ 3 ]; Sweep.axis "k" [ 4 ];
        Sweep.axis "z_eff" [ 1; 2; 3 ];
      ]
  in
  (* all three fit the default budget; z_eff doubles the order *)
  let jobs = Sweep.jclass_jobs ~metrics points in
  Alcotest.(check int) "all points within default budget" 3 (List.length jobs);
  Alcotest.(check (list int)) "cost doubles with z_eff"
    [ 2 * List.hd (List.map (fun j -> j.Sweep.cost) jobs);
      2 * List.nth (List.map (fun j -> j.Sweep.cost) jobs) 1 ]
    (List.tl (List.map (fun j -> j.Sweep.cost) jobs));
  let skipped () =
    match List.assoc_opt "jclass_skipped_max_order" (Metrics.snapshot metrics) with
    | Some (Metrics.Counter c) -> c
    | _ -> 0
  in
  Alcotest.(check int) "nothing skipped yet" 0 (skipped ());
  (* a tight budget drops the larger points — tallied, never silent *)
  let tight = Sweep.jclass_jobs ~max_order:500 ~metrics points in
  Alcotest.(check int) "only z_eff=1 fits 500 nodes" 1 (List.length tight);
  Alcotest.(check int) "both skips tallied" 2 (skipped ());
  (* invalid points are rejections, not skips: no tally *)
  Alcotest.(check bool) "mu too small rejected" true
    (Sweep.jclass_job ~metrics [ ("mu", 2); ("k", 4) ] = None);
  Alcotest.(check bool) "k too small rejected" true
    (Sweep.jclass_job ~metrics [ ("mu", 3); ("k", 3) ] = None);
  Alcotest.(check bool) "z_eff beyond z rejected" true
    (Sweep.jclass_job ~metrics [ ("mu", 3); ("k", 4); ("z_eff", 99) ] = None);
  Alcotest.(check int) "rejections never counted as skips" 2 (skipped ())

let test_jclass_job_runs () =
  (* The smallest J point really elects: Lemma 4.8's CPPE scheme passes
     the complete port-path verifier in exactly k rounds. *)
  let metrics = Metrics.create () in
  match Sweep.jclass_job ~metrics [ ("mu", 3); ("k", 4) ] with
  | None -> Alcotest.fail "smallest J point rejected"
  | Some job ->
      Alcotest.(check string) "family" "j" job.Sweep.family;
      let m = Metrics.create () in
      let outcome = job.Sweep.exec ~tracer:None m in
      Alcotest.(check bool) "verified" true outcome.Sweep.verified;
      Alcotest.(check int) "minimum time: k rounds" 4 outcome.Sweep.rounds;
      Alcotest.(check int) "cost is the exact order" outcome.Sweep.graph_order
        job.Sweep.cost

let test_largest_first_is_invisible () =
  (* Scheduling by cost must not leak into results: a job list in
     ascending cost order returns records in that same list order, with
     the same bytes as a single-domain run. *)
  let jobs = determinism_jobs () in
  let ascending = List.sort (fun a b -> compare a.Sweep.cost b.Sweep.cost) jobs in
  let params_of records = List.map (fun r -> r.Store.params) records in
  let seq = Sweep.run ~domains:1 ascending in
  let par = Sweep.run ~domains:4 ascending in
  Alcotest.(check bool) "records in job-list order" true
    (params_of seq = params_of par);
  Alcotest.(check string) "byte-identical modulo timing"
    (canonical (Store.make seq))
    (canonical (Store.make par))

let test_run_traced_neutral () =
  let jobs = Sweep.tiny_jobs () in
  let plain = Sweep.run ~domains:2 jobs in
  let traced, report = Sweep.run_traced ~domains:2 jobs in
  Alcotest.(check bool) "no baseline, no report" true (report = None);
  Alcotest.(check string) "tracing never changes the records"
    (canonical (Store.make plain))
    (canonical (Store.make (List.map fst traced)));
  List.iter2
    (fun (job, r) (_, t) ->
      let s = Shades_trace.Trace.stats t in
      (match job.Sweep.engine with
      | Shades_trace.Trace.Sync ->
          Alcotest.(check int) "trace sends = record messages" r.Store.messages
            s.Shades_trace.Trace.sends;
          Alcotest.(check int) "sync capture" 0 s.Shades_trace.Trace.sync_markers
      | Shades_trace.Trace.Async _ ->
          (* The α-synchronizer's on_round telemetry reports message
             counts at round starts, so the record can undercount the
             trace's Send events — but never the reverse — and the
             synchronizer itself must leave markers in the stream. *)
          Alcotest.(check bool) "async trace sends cover record messages" true
            (s.Shades_trace.Trace.sends >= r.Store.messages);
          Alcotest.(check bool) "async capture has sync markers" true
            (s.Shades_trace.Trace.sync_markers > 0));
      Alcotest.(check bool) "meta engine matches the job" true
        (t.Shades_trace.Trace.meta.Shades_trace.Trace.engine = job.Sweep.engine);
      Alcotest.(check bool) "meta carries the point" true
        (t.Shades_trace.Trace.meta.Shades_trace.Trace.label <> ""))
    (List.combine jobs plain)
    traced

let () =
  Alcotest.run "shades_runtime"
    [
      ( "pool",
        [
          Alcotest.test_case "input order, any domain count" `Quick
            test_pool_order;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "quantiles on known data" `Quick
            test_metrics_quantiles;
          Alcotest.test_case "counter/gauge/timing kinds" `Quick
            test_metrics_kinds;
        ] );
      ( "store",
        [
          Alcotest.test_case "record round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "rejects bumped schema" `Quick
            test_store_rejects_bumped_version;
          Alcotest.test_case "rejects malformed input" `Quick
            test_store_rejects_garbage;
          Alcotest.test_case "json value round-trip" `Quick test_json_values;
          Alcotest.test_case "diff" `Quick test_store_diff;
        ] );
      ( "sharded",
        [
          Alcotest.test_case "manifest round-trip + reassembly" `Quick
            test_shard_manifest_roundtrip;
          Alcotest.test_case "digest ignores timing" `Quick
            test_shard_digest_ignores_timing;
          Alcotest.test_case "digest stable across domain counts" `Quick
            test_shard_digest_stable_across_domains;
          Alcotest.test_case "single-shard replacement" `Quick
            test_shard_replacement;
          Alcotest.test_case "schema + digest rejection" `Quick
            test_shard_schema_and_digest_rejection;
          Alcotest.test_case "streaming diff tags shards" `Quick
            test_shard_streaming_diff;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "cross order" `Quick test_cross_order;
          Alcotest.test_case "invalid points filtered" `Quick
            test_sweep_filters_invalid;
          Alcotest.test_case "grid size" `Quick test_sweep_grid_size;
          Alcotest.test_case "deterministic across domains" `Slow
            test_sweep_deterministic_across_domains;
          Alcotest.test_case "records verified + telemetry" `Slow
            test_sweep_records_verified;
          Alcotest.test_case "jclass budget guard" `Quick
            test_jclass_jobs_guard;
          Alcotest.test_case "jclass point elects" `Slow test_jclass_job_runs;
          Alcotest.test_case "largest-first scheduling invisible" `Slow
            test_largest_first_is_invisible;
          Alcotest.test_case "run_traced metrics-neutral" `Quick
            test_run_traced_neutral;
        ] );
    ]
