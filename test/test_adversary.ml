(* lib/adversary: adversarial schedules, crash-stop faults, and
   advice-corruption campaigns.

   The load-bearing properties:
   - fault plans execute identically on the sequential and sharded
     engines, byte-for-byte in the trace, at every domain count;
   - a round-0 crash is, for every other node, exactly the deletion of
     the victim's outgoing messages;
   - delay-plan search is deterministic and plan-invariant in outputs;
   - the renumber swap fools all four map-advice shades while bit-level
     damage is detected — the smoke campaign's gate contract. *)

open Shades_graph
open Shades_localsim
module Event = Shades_trace.Event
module Trace = Shades_trace.Trace
module Codec = Shades_trace.Codec
module Task = Shades_election.Task
module Map_advice = Shades_election.Map_advice
module Schedule = Shades_adversary.Schedule
module Fault = Shades_adversary.Fault
module Corrupt = Shades_adversary.Corrupt
module Campaign = Shades_adversary.Campaign

let no_advice = Shades_bits.Bitstring.empty

(* Crash-tolerant message counter: run [r] rounds unconditionally,
   output (degree, total messages received).  Inbox-dependent — exactly
   what makes fault equivalences observable. *)
let summing r =
  {
    Engine.init = (fun ~degree ~advice:_ -> (degree, r, 0));
    send = (fun (_, left, _) ~port:_ -> if left > 0 then Some () else None);
    step = (fun (d, left, acc) inbox -> (d, left - 1, acc + List.length inbox));
    output = (fun (d, left, acc) -> if left <= 0 then Some (d, acc) else None);
  }

let random_graph seed n extra =
  Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra

let random_faults seed n =
  let rng = Random.State.make [| seed; 77 |] in
  List.init
    (Random.State.int rng 3)
    (fun _ ->
      {
        Engine.victim = Random.State.int rng n;
        at_round = Random.State.int rng 6 - 1;
      })

(* --- sequential = sharded under any fault plan, traces included --- *)

let faulty_run run =
  let events = ref [] in
  let r = run ~tracer:(fun e -> events := e :: !events) in
  (r.Engine.outputs, r.Engine.rounds, r.Engine.messages, List.rev !events)

let prop_sharded_fault_equiv =
  QCheck.Test.make
    ~name:"sharded = sequential under fault plans (traced, domains 1/2/4)"
    ~count:60
    QCheck.(triple (int_bound 10_000) (int_range 2 16) (int_bound 6))
    (fun (seed, n, extra) ->
      let g = random_graph seed n extra in
      let faults = random_faults seed n in
      let seq =
        faulty_run (fun ~tracer ->
            Engine.run_with_faults ~tracer g ~advice:no_advice ~faults
              (summing 3))
      in
      List.for_all
        (fun domains ->
          seq
          = faulty_run (fun ~tracer ->
                Sharded_engine.run_with_faults ~domains ~tracer g
                  ~advice:no_advice ~faults (summing 3)))
        [ 1; 2; 4 ])

(* --- crash at round 0 = deleting the victim's outgoing messages --- *)

let prop_crash0_is_muted_sends =
  QCheck.Test.make
    ~name:"round-0 crash = victim's outgoing messages deleted" ~count:80
    QCheck.(triple (int_bound 10_000) (int_range 3 16) (int_bound 6))
    (fun (seed, n, extra) ->
      let g = random_graph seed n extra in
      let v = seed mod n in
      let r = 1 + (seed mod 3) in
      let res =
        Engine.run_with_faults g ~advice:no_advice
          ~faults:[ { Engine.victim = v; at_round = 0 } ]
          (summing r)
      in
      (* every node sends on every port each of the r rounds, so with
         only v muted, node u receives r * (deg u - [u ~ v]) messages —
         the closed form of the fault-free run minus v's traffic *)
      let expected u =
        let adjacent =
          Option.is_some (Port_graph.port_to g u v)
        in
        r * (Port_graph.degree g u - if adjacent then 1 else 0)
      in
      let outputs_ok =
        List.for_all
          (fun u ->
            if u = v then res.Engine.outputs.(u) = None
            else
              res.Engine.outputs.(u)
              = Some (Port_graph.degree g u, expected u))
          (Port_graph.vertices g)
      in
      let messages_ok =
        res.Engine.messages
        = r * ((2 * Port_graph.size g) - Port_graph.degree g v)
      in
      outputs_ok && messages_ok && res.Engine.rounds = r)

(* --- fault plan semantics --- *)

let test_crash_schedule () =
  let plan =
    Fault.normalize ~n:5
      [
        { Engine.victim = 3; at_round = 4 };
        { Engine.victim = 1; at_round = -7 };
        { Engine.victim = 3; at_round = 2 };
      ]
  in
  Alcotest.(check bool)
    "earliest wins, negatives clamp, victims ascending" true
    (plan
    = [
        { Engine.victim = 1; at_round = 0 }; { Engine.victim = 3; at_round = 2 };
      ]);
  Alcotest.check_raises "victim out of range"
    (Invalid_argument "Engine: crash victim out of range") (fun () ->
      ignore (Fault.normalize ~n:5 [ { Engine.victim = 5; at_round = 1 } ]))

let test_faultfree_plan_is_run () =
  let g = Gen.path 5 in
  let plain = Engine.run g ~advice:no_advice (summing 2) in
  let faulty = Engine.run_with_faults g ~advice:no_advice ~faults:[] (summing 2) in
  Alcotest.(check bool) "same outputs" true
    (Array.map Option.some plain.Engine.outputs = faulty.Engine.outputs);
  Alcotest.(check int) "same rounds" plain.Engine.rounds faulty.Engine.rounds;
  Alcotest.(check int) "same messages" plain.Engine.messages
    faulty.Engine.messages

let test_scheme_fault_outcomes () =
  let g = Gen.path 4 in
  let scheme = Map_advice.selection in
  let outcome faults = Fault.run scheme g ~faults in
  (match outcome [] with
  | Fault.Survived { decided = 4; crashed = 0; _ } -> ()
  | o -> Alcotest.failf "fault-free: %s" (Fault.describe o));
  (* a mid-execution crash starves a live neighbour's view exchange *)
  (match outcome [ { Engine.victim = 1; at_round = 1 } ] with
  | Fault.Aborted _ -> ()
  | o -> Alcotest.failf "crash at 1: %s" (Fault.describe o));
  (* a crash scheduled after the single exchange round is harmless *)
  match outcome [ { Engine.victim = 0; at_round = 9 } ] with
  | Fault.Survived { decided = 4; crashed = 0; _ } -> ()
  | o -> Alcotest.failf "late crash: %s" (Fault.describe o)

(* --- Crash event: trace stats and codec round-trip --- *)

let test_crash_trace_roundtrip () =
  let g = Gen.path 4 in
  let rec_ = Trace.recorder () in
  let _ =
    Engine.run_with_faults ~tracer:(Trace.emit rec_) g ~advice:no_advice
      ~faults:
        [ { Engine.victim = 0; at_round = 0 }; { Engine.victim = 2; at_round = 2 } ]
      (summing 3)
  in
  let trace =
    Trace.capture rec_
      {
        Trace.engine = Trace.Sync;
        graph_order = 4;
        advice_bits = 0;
        label = "crash-roundtrip";
      }
  in
  let stats = Trace.stats trace in
  Alcotest.(check int) "both crashes recorded" 2 stats.Trace.crashes;
  Alcotest.(check bool) "codec v2 round-trips Crash events" true
    (Codec.decode (Codec.encode trace) = Ok trace);
  (* the round-0 crash precedes round 1; the round-2 crash sits directly
     after its Round_start, before any Send *)
  let events = Array.to_list trace.Trace.events in
  let rec position acc = function
    | [] -> acc
    | Event.Crash { v; _ } :: rest -> position ((v, List.length acc) :: acc) rest
    | _ :: rest -> position acc rest
  in
  ignore (position [] events);
  let rec after_round2 = function
    | Event.Round_start { round = 2 } :: next :: _ ->
        next = Event.Crash { v = 2; round = 2 }
    | _ :: rest -> after_round2 rest
    | [] -> false
  in
  Alcotest.(check bool) "crash directly after Round_start 2" true
    (after_round2 events)

(* --- adversarial schedules --- *)

let test_schedule_invariance_and_search () =
  let g = Gen.path 4 in
  let scheme = Map_advice.selection in
  let reference = Shades_election.Scheme.run scheme g in
  let plan = Schedule.of_seed g ~seed:42 in
  let run, makespan = Shades_election.Scheme.run_plan ~delay:(Schedule.delay_fn plan) scheme g in
  Alcotest.(check bool) "outputs plan-invariant" true
    (run.Shades_election.Scheme.outputs = reference.Shades_election.Scheme.outputs);
  Alcotest.(check int) "rounds plan-invariant"
    reference.Shades_election.Scheme.rounds run.Shades_election.Scheme.rounds;
  Alcotest.(check bool) "positive makespan" true (makespan > 0.0);
  let r1 = Schedule.search ~beam:2 scheme g ~init:(Schedule.uniform g 0.5) in
  let r2 = Schedule.search ~beam:2 scheme g ~init:(Schedule.uniform g 0.5) in
  Alcotest.(check bool) "search deterministic" true
    (r1.Schedule.plan = r2.Schedule.plan
    && r1.Schedule.makespan = r2.Schedule.makespan);
  Alcotest.(check bool) "search does not regress the initial plan" true
    (r1.Schedule.makespan >= Schedule.makespan scheme g (Schedule.uniform g 0.5))

let prop_seeded_plans_deterministic =
  QCheck.Test.make ~name:"of_seed plans and makespans are seed-determined"
    ~count:20
    QCheck.(pair (int_bound 10_000) (int_range 3 8))
    (fun (seed, n) ->
      let g = Gen.path n in
      let p1 = Schedule.of_seed g ~seed and p2 = Schedule.of_seed g ~seed in
      p1 = p2
      && Schedule.makespan Map_advice.selection g p1
         = Schedule.makespan Map_advice.selection g p2)

(* --- corruption: the smoke campaign contract --- *)

let test_renumber_swap_fools_all_shades () =
  let g = Gen.path 4 in
  List.iter
    (fun shade ->
      let p = Corrupt.prepare shade g in
      let op =
        Corrupt.renumber_swap ~label:"reversal" g
          (Corrupt.reversal (Port_graph.order g))
      in
      match p.Corrupt.classify op with
      | Corrupt.Fooling { leader; reference; _ } ->
          Alcotest.(check bool)
            (Task.kind_to_string (Corrupt.task_of shade) ^ " leader moved")
            true (leader <> reference)
      | c ->
          Alcotest.failf "%s: expected fooling, got %s"
            (Task.kind_to_string (Corrupt.task_of shade))
            (Corrupt.class_label c))
    Corrupt.map_shades

let test_bit_damage_detected () =
  let g = Gen.path 4 in
  List.iter
    (fun shade ->
      let p = Corrupt.prepare shade g in
      let bits = p.Corrupt.advice_bits in
      List.iter
        (fun op ->
          match p.Corrupt.classify op with
          | Corrupt.Detected _ -> ()
          | Corrupt.Harmless _ -> () (* possible in principle; not fooling *)
          | Corrupt.Fooling _ ->
              Alcotest.failf "%s/%s: bit damage fooled the scheme"
                (Task.kind_to_string (Corrupt.task_of shade))
                (Corrupt.op_label op))
        (Corrupt.flips ~bits ~count:bits
        @ Corrupt.bursts ~bits ~len:8 ~count:5
        @ Corrupt.truncations ~bits ~count:5))
    Corrupt.map_shades

let test_smoke_campaign_verdict () =
  let report = Campaign.run ~domains:2 (Campaign.smoke ()) in
  (match Campaign.verdict report with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "verdict: %s" (String.concat "; " ps));
  List.iter
    (fun (s : Campaign.shade_summary) ->
      Alcotest.(check bool)
        (Task.kind_to_string s.Campaign.task ^ " feasible with >=1 fooling")
        true
        (s.Campaign.feasible && s.Campaign.fooling >= 1))
    report.Campaign.summaries;
  (* the campaign is deterministic at any domain count: the gate's
     byte-identical-store contract *)
  let report' = Campaign.run ~domains:1 (Campaign.smoke ()) in
  Alcotest.(check bool) "campaign domain-count invariant" true
    (Shades_runtime.Store.encode (Campaign.to_store report)
    = Shades_runtime.Store.encode (Campaign.to_store report'))

let test_campaign_gate_detects_drift () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "adv-gate-test" in
  let report = Campaign.run ~domains:2 (Campaign.smoke ()) in
  Campaign.save ~dir report;
  (match Campaign.gate ~baseline_dir:dir report with
  | Ok () -> ()
  | Error ps -> Alcotest.failf "clean gate failed: %s" (String.concat "; " ps));
  let drifted =
    {
      report with
      Campaign.cells =
        List.map
          (fun (c : Campaign.cell) ->
            match c.Campaign.classification with
            | Corrupt.Fooling f ->
                {
                  c with
                  Campaign.classification =
                    Corrupt.Harmless { leader = f.reference; rounds = f.rounds };
                }
            | _ -> c)
          report.Campaign.cells;
    }
  in
  match Campaign.gate ~baseline_dir:dir drifted with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "gate accepted a drifted classification"

let () =
  Alcotest.run "shades_adversary"
    [
      ( "fault",
        [
          Alcotest.test_case "crash schedule normalization" `Quick
            test_crash_schedule;
          Alcotest.test_case "empty plan = fault-free run" `Quick
            test_faultfree_plan_is_run;
          Alcotest.test_case "scheme-level outcomes" `Quick
            test_scheme_fault_outcomes;
          Alcotest.test_case "Crash events: stats, codec, position" `Quick
            test_crash_trace_roundtrip;
          QCheck_alcotest.to_alcotest prop_sharded_fault_equiv;
          QCheck_alcotest.to_alcotest prop_crash0_is_muted_sends;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "plan invariance + deterministic search" `Quick
            test_schedule_invariance_and_search;
          QCheck_alcotest.to_alcotest prop_seeded_plans_deterministic;
        ] );
      ( "corrupt",
        [
          Alcotest.test_case "renumber swap fools all four shades" `Quick
            test_renumber_swap_fools_all_shades;
          Alcotest.test_case "bit damage never fools" `Quick
            test_bit_damage_detected;
          Alcotest.test_case "smoke campaign verdict" `Quick
            test_smoke_campaign_verdict;
          Alcotest.test_case "gate detects classification drift" `Quick
            test_campaign_gate_detects_drift;
        ] );
    ]
