module Lint = Shades_analysis.Lint
module Report = Shades_analysis.Report
module Finding = Shades_analysis.Finding
module Suppress = Shades_analysis.Suppress
module Json = Shades_json.Json

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Each fixture is a throwaway project: sources written under a temp
   root, compiled with `ocamlc -bin-annot -c` from that root so the
   .cmt records the same root-relative source path dune would, then
   linted in place (discover falls back to the source tree when the
   root has no _build mirror). *)

let fixture_count = ref 0

let with_fixture files =
  incr fixture_count;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shadescheck_fixture_%d_%d" (Unix.getpid ())
         !fixture_count)
  in
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  List.iter
    (fun (path, text) ->
      let abs = Filename.concat root path in
      mkdirs (Filename.dirname abs);
      let oc = open_out abs in
      output_string oc text;
      close_out oc)
    files;
  let cwd = Sys.getcwd () in
  Sys.chdir root;
  Fun.protect
    ~finally:(fun () -> Sys.chdir cwd)
    (fun () ->
      List.iter
        (fun (path, _) ->
          let cmd =
            Printf.sprintf "ocamlc -bin-annot -I %s -c %s"
              (Filename.quote (Filename.dirname path))
              (Filename.quote path)
          in
          if Sys.command cmd <> 0 then
            Alcotest.failf "fixture compilation failed: %s" cmd)
        files);
  root

let lint ?rules ?(paths = [ "lib" ]) files =
  let root = with_fixture files in
  Lint.run ?rules ~root ~paths ()

let report ?rules ?paths files =
  match lint ?rules ?paths files with
  | Ok r -> r
  | Error e -> Alcotest.failf "lint failed: %s" e

let rules_of r = List.map (fun f -> f.Finding.rule) r.Report.findings

(* --- the determinism rules, one violating and one clean fixture each --- *)

let test_hashtbl_order () =
  let bad =
    report
      ~rules:[ "hashtbl-order" ]
      [ ("lib/bad.ml", "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n") ]
  in
  Alcotest.(check (list string)) "fold outside sort flagged"
    [ "hashtbl-order" ] (rules_of bad);
  Alcotest.(check int) "exit 1" 1 (Lint.exit_code (Ok bad));
  let clean =
    report
      ~rules:[ "hashtbl-order" ]
      [
        ( "lib/good.ml",
          "let f h =\n\
          \  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])\n\
           let g h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort \
           compare\n" );
      ]
  in
  Alcotest.(check (list string)) "sorted context not flagged" [] (rules_of clean);
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code (Ok clean))

let test_ambient_randomness () =
  let bad =
    report
      ~rules:[ "ambient-randomness" ]
      [ ("lib/bad.ml", "let roll () = Random.int 6\n") ]
  in
  Alcotest.(check (list string)) "global PRNG flagged"
    [ "ambient-randomness" ] (rules_of bad);
  let clean =
    report
      ~rules:[ "ambient-randomness" ]
      [ ("lib/good.ml", "let roll st = Random.State.int st 6\n") ]
  in
  Alcotest.(check (list string)) "seeded state not flagged" [] (rules_of clean)

let test_wall_clock () =
  let src = "let stamp () = Sys.time ()\n" in
  let bad =
    report ~rules:[ "wall-clock-in-measured-path" ] [ ("lib/bad.ml", src) ]
  in
  Alcotest.(check (list string)) "clock read in lib flagged"
    [ "wall-clock-in-measured-path" ] (rules_of bad);
  let outside =
    report
      ~rules:[ "wall-clock-in-measured-path" ]
      ~paths:[ "app" ]
      [ ("app/ok.ml", src) ]
  in
  Alcotest.(check (list string)) "same read outside lib/ not flagged" []
    (rules_of outside)

let test_direct_stdout () =
  let bad =
    report
      ~rules:[ "direct-stdout-in-lib" ]
      [ ("lib/bad.ml", "let shout () = print_endline \"hi\"\n") ]
  in
  Alcotest.(check (list string)) "print_endline in lib flagged"
    [ "direct-stdout-in-lib" ] (rules_of bad);
  let clean =
    report
      ~rules:[ "direct-stdout-in-lib" ]
      [ ("lib/good.ml", "let shout fmt = Format.fprintf fmt \"hi\"\n") ]
  in
  Alcotest.(check (list string)) "explicit formatter not flagged" []
    (rules_of clean)

(* --- architecture rules --- *)

let test_missing_mli () =
  let bad =
    report ~rules:[ "missing-mli" ] [ ("lib/naked.ml", "let x = 1\n") ]
  in
  Alcotest.(check (list string)) "bare .ml flagged" [ "missing-mli" ]
    (rules_of bad);
  (* interface first, so the .ml compiles against it *)
  let clean =
    report ~rules:[ "missing-mli" ]
      [ ("lib/dressed.mli", "val x : int\n"); ("lib/dressed.ml", "let x = 1\n") ]
  in
  Alcotest.(check (list string)) "paired .ml not flagged" [] (rules_of clean)

let locality_fixture body =
  (* A stand-in Port_graph with the adversary-only oracle; the rule
     matches the path name, so a local stub triggers it exactly like
     the real module does. *)
  ( "lib/election/fixture.ml",
    "module Port_graph = struct\n\
    \  let neighbor_vertex g v p = ignore g; v + p\n\
    \  let degree g v = ignore g; v\n\
     end\n" ^ body )

let test_locality () =
  let bad =
    report
      ~rules:[ "locality" ]
      [ locality_fixture "let peek g v = Port_graph.neighbor_vertex g v 0\n" ]
  in
  Alcotest.(check (list string)) "adjacency read in lib/election flagged"
    [ "locality" ] (rules_of bad);
  let local_facts =
    report
      ~rules:[ "locality" ]
      [ locality_fixture "let deg g v = Port_graph.degree g v\n" ]
  in
  Alcotest.(check (list string)) "port-local facts allowed" []
    (rules_of local_facts);
  let outside =
    report
      ~rules:[ "locality" ]
      [
        ( "lib/families/fixture.ml",
          "module Port_graph = struct\n\
          \  let neighbor_vertex g v p = ignore g; v + p\n\
           end\n\
           let peek g v = Port_graph.neighbor_vertex g v 0\n" );
      ]
  in
  Alcotest.(check (list string)) "same read outside lib/election allowed" []
    (rules_of outside)

(* --- suppression --- *)

let test_suppression () =
  let line =
    report
      ~rules:[ "hashtbl-order" ]
      [
        ( "lib/hushed.ml",
          "(* shadescheck: allow hashtbl-order -- test fixture *)\n\
           let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n" );
      ]
  in
  Alcotest.(check (list string)) "line allow honoured" [] (rules_of line);
  Alcotest.(check int) "suppressed counted" 1 line.Report.suppressed;
  Alcotest.(check int) "suppressed run exits 0" 0 (Lint.exit_code (Ok line));
  let file_wide =
    report
      ~rules:[ "hashtbl-order" ]
      [
        ( "lib/hushed.ml",
          "(* shadescheck: allow-file all -- test fixture *)\n\n\n\
           let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n" );
      ]
  in
  Alcotest.(check (list string)) "allow-file all honoured" []
    (rules_of file_wide);
  let wrong_rule =
    report
      ~rules:[ "hashtbl-order" ]
      [
        ( "lib/loud.ml",
          "(* shadescheck: allow locality *)\n\
           let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n" );
      ]
  in
  Alcotest.(check (list string)) "allow for another rule does not leak"
    [ "hashtbl-order" ] (rules_of wrong_rule)

(* --- driver contract --- *)

let test_rule_selection () =
  let both_src =
    ( "lib/both.ml",
      "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n\
       let roll () = Random.int 6\n" )
  in
  let only =
    report ~rules:[ "ambient-randomness" ] [ both_src ]
  in
  Alcotest.(check (list string)) "--rules restricts the registry"
    [ "ambient-randomness" ] (rules_of only);
  match lint ~rules:[ "no-such-rule" ] [ both_src ] with
  | Ok _ -> Alcotest.fail "unknown rule must be rejected"
  | Error e ->
      Alcotest.(check bool) "error names the rule" true
        (contains_sub e "no-such-rule")

let test_exit_codes () =
  Alcotest.(check int) "load failure is 2" 2
    (Lint.exit_code (Lint.run ~root:"/nonexistent_shadescheck" ~paths:[ "lib" ] ()));
  let clean = report [ ("lib/tidy.mli", "val x : int\n"); ("lib/tidy.ml", "let x = 1\n") ] in
  Alcotest.(check int) "clean tree is 0" 0 (Lint.exit_code (Ok clean))

let test_json_roundtrip () =
  let r =
    report
      ~rules:[ "hashtbl-order"; "missing-mli" ]
      [ ("lib/bad.ml", "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n") ]
  in
  let json = Report.to_json r in
  match Json.of_string (Json.to_string json) with
  | Error e -> Alcotest.failf "report JSON does not reparse: %s" e
  | Ok parsed ->
      Alcotest.(check bool) "deterministic rendering" true (parsed = json);
      Alcotest.(check (option bool)) "clean member" (Some false)
        (match Json.member "clean" parsed with
        | Some (Json.Bool b) -> Some b
        | _ -> None);
      let findings =
        match Json.member "findings" parsed with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "findings member missing"
      in
      Alcotest.(check int) "both rules fired" 2 (List.length findings);
      List.iter
        (fun f ->
          List.iter
            (fun k ->
              if Json.member k f = None then
                Alcotest.failf "finding lacks %S member" k)
            [ "rule"; "severity"; "file"; "line"; "col"; "message" ])
        findings

(* --- the shipped tree itself --- *)

let test_self_check () =
  (* Tests run in _build/default/test, so the parent directory is the
     build tree every .cmt of every library lives in: the lint's own
     acceptance test is that the shipped lib/ is clean under the full
     registry, with every shipped suppression visible in the tally. *)
  let root = Filename.dirname (Sys.getcwd ()) in
  match Lint.run ~root ~paths:[ "lib" ] () with
  | Error e -> Alcotest.failf "self-check could not load the build tree: %s" e
  | Ok r ->
      List.iter
        (fun f -> Printf.printf "unexpected: %s %s:%d\n" f.Finding.rule f.Finding.file f.Finding.line)
        r.Report.findings;
      Alcotest.(check (list string)) "shipped lib/ lints clean" []
        (rules_of r);
      Alcotest.(check bool) "suppressions are tallied, not hidden" true
        (r.Report.suppressed > 0);
      Alcotest.(check bool) "a real population of units" true
        (r.Report.units > 30);
      Alcotest.(check int) "and the tree exits 0" 0 (Lint.exit_code (Ok r))

let () =
  Alcotest.run "shades_analysis"
    [
      ( "rules",
        [
          Alcotest.test_case "hashtbl-order" `Quick test_hashtbl_order;
          Alcotest.test_case "ambient-randomness" `Quick
            test_ambient_randomness;
          Alcotest.test_case "wall-clock-in-measured-path" `Quick
            test_wall_clock;
          Alcotest.test_case "direct-stdout-in-lib" `Quick test_direct_stdout;
          Alcotest.test_case "missing-mli" `Quick test_missing_mli;
          Alcotest.test_case "locality" `Quick test_locality;
        ] );
      ( "suppression",
        [ Alcotest.test_case "allow grammar" `Quick test_suppression ] );
      ( "driver",
        [
          Alcotest.test_case "--rules selection" `Quick test_rule_selection;
          Alcotest.test_case "exit-code contract" `Quick test_exit_codes;
          Alcotest.test_case "JSON report round-trip" `Quick
            test_json_roundtrip;
        ] );
      ( "self",
        [ Alcotest.test_case "shipped lib/ is clean" `Quick test_self_check ] );
    ]
