module Lint = Shades_analysis.Lint
module Report = Shades_analysis.Report
module Finding = Shades_analysis.Finding
module Suppress = Shades_analysis.Suppress
module Json = Shades_json.Json

let contains_sub hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* Each fixture is a throwaway project: sources written under a temp
   root, compiled with `ocamlc -bin-annot -c` from that root so the
   .cmt records the same root-relative source path dune would, then
   linted in place (discover falls back to the source tree when the
   root has no _build mirror). *)

let fixture_count = ref 0

let with_fixture files =
  incr fixture_count;
  let root =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "shadescheck_fixture_%d_%d" (Unix.getpid ())
         !fixture_count)
  in
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  List.iter
    (fun (path, text) ->
      let abs = Filename.concat root path in
      mkdirs (Filename.dirname abs);
      let oc = open_out abs in
      output_string oc text;
      close_out oc)
    files;
  let cwd = Sys.getcwd () in
  Sys.chdir root;
  Fun.protect
    ~finally:(fun () -> Sys.chdir cwd)
    (fun () ->
      List.iter
        (fun (path, _) ->
          let cmd =
            Printf.sprintf "ocamlc -bin-annot -I %s -c %s"
              (Filename.quote (Filename.dirname path))
              (Filename.quote path)
          in
          if Sys.command cmd <> 0 then
            Alcotest.failf "fixture compilation failed: %s" cmd)
        files);
  root

let lint ?rules ?(paths = [ "lib" ]) files =
  let root = with_fixture files in
  Lint.run ?rules ~root ~paths ()

let report ?rules ?paths files =
  match lint ?rules ?paths files with
  | Ok r -> r
  | Error e -> Alcotest.failf "lint failed: %s" e

let rules_of r = List.map (fun f -> f.Finding.rule) r.Report.findings

(* --- the determinism rules, one violating and one clean fixture each --- *)

let test_hashtbl_order () =
  let bad =
    report
      ~rules:[ "hashtbl-order" ]
      [ ("lib/bad.ml", "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n") ]
  in
  Alcotest.(check (list string)) "fold outside sort flagged"
    [ "hashtbl-order" ] (rules_of bad);
  Alcotest.(check int) "exit 1" 1 (Lint.exit_code (Ok bad));
  let clean =
    report
      ~rules:[ "hashtbl-order" ]
      [
        ( "lib/good.ml",
          "let f h =\n\
          \  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) h [])\n\
           let g h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] |> List.sort \
           compare\n" );
      ]
  in
  Alcotest.(check (list string)) "sorted context not flagged" [] (rules_of clean);
  Alcotest.(check int) "exit 0" 0 (Lint.exit_code (Ok clean))

let test_ambient_randomness () =
  let bad =
    report
      ~rules:[ "ambient-randomness" ]
      [ ("lib/bad.ml", "let roll () = Random.int 6\n") ]
  in
  Alcotest.(check (list string)) "global PRNG flagged"
    [ "ambient-randomness" ] (rules_of bad);
  let clean =
    report
      ~rules:[ "ambient-randomness" ]
      [ ("lib/good.ml", "let roll st = Random.State.int st 6\n") ]
  in
  Alcotest.(check (list string)) "seeded state not flagged" [] (rules_of clean)

let test_wall_clock () =
  let src = "let stamp () = Sys.time ()\n" in
  let bad =
    report ~rules:[ "wall-clock-in-measured-path" ] [ ("lib/bad.ml", src) ]
  in
  Alcotest.(check (list string)) "clock read in lib flagged"
    [ "wall-clock-in-measured-path" ] (rules_of bad);
  let outside =
    report
      ~rules:[ "wall-clock-in-measured-path" ]
      ~paths:[ "app" ]
      [ ("app/ok.ml", src) ]
  in
  Alcotest.(check (list string)) "same read outside lib/ not flagged" []
    (rules_of outside)

let test_direct_stdout () =
  let bad =
    report
      ~rules:[ "direct-stdout-in-lib" ]
      [ ("lib/bad.ml", "let shout () = print_endline \"hi\"\n") ]
  in
  Alcotest.(check (list string)) "print_endline in lib flagged"
    [ "direct-stdout-in-lib" ] (rules_of bad);
  let clean =
    report
      ~rules:[ "direct-stdout-in-lib" ]
      [ ("lib/good.ml", "let shout fmt = Format.fprintf fmt \"hi\"\n") ]
  in
  Alcotest.(check (list string)) "explicit formatter not flagged" []
    (rules_of clean)

(* --- architecture rules --- *)

let test_missing_mli () =
  let bad =
    report ~rules:[ "missing-mli" ] [ ("lib/naked.ml", "let x = 1\n") ]
  in
  Alcotest.(check (list string)) "bare .ml flagged" [ "missing-mli" ]
    (rules_of bad);
  (* interface first, so the .ml compiles against it *)
  let clean =
    report ~rules:[ "missing-mli" ]
      [ ("lib/dressed.mli", "val x : int\n"); ("lib/dressed.ml", "let x = 1\n") ]
  in
  Alcotest.(check (list string)) "paired .ml not flagged" [] (rules_of clean)

let locality_fixture body =
  (* A stand-in Port_graph with the adversary-only oracle; the rule
     matches the path name, so a local stub triggers it exactly like
     the real module does. *)
  ( "lib/election/fixture.ml",
    "module Port_graph = struct\n\
    \  let neighbor_vertex g v p = ignore g; v + p\n\
    \  let degree g v = ignore g; v\n\
     end\n" ^ body )

let test_locality () =
  let bad =
    report
      ~rules:[ "locality" ]
      [ locality_fixture "let peek g v = Port_graph.neighbor_vertex g v 0\n" ]
  in
  Alcotest.(check (list string)) "adjacency read in lib/election flagged"
    [ "locality" ] (rules_of bad);
  let local_facts =
    report
      ~rules:[ "locality" ]
      [ locality_fixture "let deg g v = Port_graph.degree g v\n" ]
  in
  Alcotest.(check (list string)) "port-local facts allowed" []
    (rules_of local_facts);
  let outside =
    report
      ~rules:[ "locality" ]
      [
        ( "lib/families/fixture.ml",
          "module Port_graph = struct\n\
          \  let neighbor_vertex g v p = ignore g; v + p\n\
           end\n\
           let peek g v = Port_graph.neighbor_vertex g v 0\n" );
      ]
  in
  Alcotest.(check (list string)) "same read outside lib/election allowed" []
    (rules_of outside)

(* --- suppression --- *)

let test_suppression () =
  let line =
    report
      ~rules:[ "hashtbl-order" ]
      [
        ( "lib/hushed.ml",
          "(* shadescheck: allow hashtbl-order -- test fixture *)\n\
           let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n" );
      ]
  in
  Alcotest.(check (list string)) "line allow honoured" [] (rules_of line);
  Alcotest.(check int) "suppressed counted" 1 line.Report.suppressed;
  Alcotest.(check int) "suppressed run exits 0" 0 (Lint.exit_code (Ok line));
  let file_wide =
    report
      ~rules:[ "hashtbl-order" ]
      [
        ( "lib/hushed.ml",
          "(* shadescheck: allow-file all -- test fixture *)\n\n\n\
           let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n" );
      ]
  in
  Alcotest.(check (list string)) "allow-file all honoured" []
    (rules_of file_wide);
  let wrong_rule =
    report
      ~rules:[ "hashtbl-order" ]
      [
        ( "lib/loud.ml",
          "(* shadescheck: allow locality *)\n\
           let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n" );
      ]
  in
  Alcotest.(check (list string)) "allow for another rule does not leak"
    [ "hashtbl-order" ] (rules_of wrong_rule)

(* --- driver contract --- *)

let test_rule_selection () =
  let both_src =
    ( "lib/both.ml",
      "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n\
       let roll () = Random.int 6\n" )
  in
  let only =
    report ~rules:[ "ambient-randomness" ] [ both_src ]
  in
  Alcotest.(check (list string)) "--rules restricts the registry"
    [ "ambient-randomness" ] (rules_of only);
  match lint ~rules:[ "no-such-rule" ] [ both_src ] with
  | Ok _ -> Alcotest.fail "unknown rule must be rejected"
  | Error e ->
      Alcotest.(check bool) "error names the rule" true
        (contains_sub e "no-such-rule")

let test_exit_codes () =
  Alcotest.(check int) "load failure is 2" 2
    (Lint.exit_code (Lint.run ~root:"/nonexistent_shadescheck" ~paths:[ "lib" ] ()));
  let clean = report [ ("lib/tidy.mli", "val x : int\n"); ("lib/tidy.ml", "let x = 1\n") ] in
  Alcotest.(check int) "clean tree is 0" 0 (Lint.exit_code (Ok clean))

let test_json_roundtrip () =
  let r =
    report
      ~rules:[ "hashtbl-order"; "missing-mli" ]
      [ ("lib/bad.ml", "let f h = Hashtbl.fold (fun k _ acc -> k :: acc) h []\n") ]
  in
  let json = Report.to_json r in
  match Json.of_string (Json.to_string json) with
  | Error e -> Alcotest.failf "report JSON does not reparse: %s" e
  | Ok parsed ->
      Alcotest.(check bool) "deterministic rendering" true (parsed = json);
      Alcotest.(check (option bool)) "clean member" (Some false)
        (match Json.member "clean" parsed with
        | Some (Json.Bool b) -> Some b
        | _ -> None);
      let findings =
        match Json.member "findings" parsed with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "findings member missing"
      in
      Alcotest.(check int) "both rules fired" 2 (List.length findings);
      List.iter
        (fun f ->
          List.iter
            (fun k ->
              if Json.member k f = None then
                Alcotest.failf "finding lacks %S member" k)
            [ "rule"; "severity"; "file"; "line"; "col"; "message" ])
        findings

(* --- domain-safety capture analysis (race-risk / race-smell) --- *)

let race_rules = [ "race-risk"; "race-smell" ]

let spawn_fixture body =
  ( "lib/fix.ml",
    "let m = Mutex.create ()\n\
     let sref = ref 0\n\
     let stbl : (int, int) Hashtbl.t = Hashtbl.create 4\n\
     let _use () = (m, sref, stbl)\n\
     let go () =\n\
    \  let d =\n\
    \    Domain.spawn (fun () ->\n\
    \      let lref = ref 0 in\n\
    \      let ltbl : (int, int) Hashtbl.t = Hashtbl.create 4 in\n\
    \      ignore (lref, ltbl);\n\
    \      " ^ body ^ ")\n\
    \  in\n\
    \  Domain.join d\n" )

let test_race_risk () =
  let bad = report ~rules:race_rules [ spawn_fixture "sref := 1" ] in
  Alcotest.(check (list string)) "unguarded shared write is race-risk"
    [ "race-risk" ] (rules_of bad);
  Alcotest.(check int) "race-risk exits 1" 1 (Lint.exit_code (Ok bad));
  let protected =
    report ~rules:race_rules
      [ spawn_fixture "Mutex.protect m (fun () -> sref := 1)" ]
  in
  Alcotest.(check (list string)) "Mutex.protect mediates" []
    (rules_of protected);
  let locked =
    report ~rules:race_rules
      [ spawn_fixture "Mutex.lock m;\n      sref := 1;\n      Mutex.unlock m" ]
  in
  Alcotest.(check (list string)) "a lock..unlock sequence mediates" []
    (rules_of locked);
  let local = report ~rules:race_rules [ spawn_fixture "lref := 1" ] in
  Alcotest.(check (list string)) "closure-local state is free" []
    (rules_of local)

let test_race_smell () =
  let smell = report ~rules:race_rules [ spawn_fixture "ignore !sref" ] in
  Alcotest.(check (list string)) "unguarded shared read is race-smell"
    [ "race-smell" ] (rules_of smell);
  (* a smell is a warning: surfaced, never blocking *)
  Alcotest.(check int) "race-smell alone exits 0" 0
    (Lint.exit_code (Ok smell));
  let atomic =
    report ~rules:race_rules
      [
        ( "lib/fix.ml",
          "let hits = Atomic.make 0\n\
           let go () =\n\
          \  let d = Domain.spawn (fun () -> Atomic.incr hits) in\n\
          \  Domain.join d\n" );
      ]
  in
  Alcotest.(check (list string)) "Atomic state is mediation" []
    (rules_of atomic)

let test_race_slots () =
  (* the disjoint-slot idiom: writes through a variable index are the
     blessed fan-out pattern; a constant index is a plain shared write *)
  let crew_stub =
    "module Crew = struct\n\
    \  let submit _t f = f ()\n\
    \  let run_all _t fs = Array.iter (fun f -> f ()) fs\n\
     end\n"
  in
  let slots =
    report ~rules:race_rules
      [
        ( "lib/fix.ml",
          crew_stub
          ^ "let fan crew out = Crew.run_all crew (Array.init 4 (fun i () -> \
             out.(i) <- i))\n" );
      ]
  in
  Alcotest.(check (list string)) "variable-index slot write allowed" []
    (rules_of slots);
  let stomp =
    report ~rules:race_rules
      [
        ( "lib/fix.ml",
          crew_stub
          ^ "let first = Array.make 4 0\n\
             let fan crew = Crew.run_all crew (Array.init 4 (fun _ () -> \
             first.(0) <- 7))\n" );
      ]
  in
  Alcotest.(check (list string)) "constant-index write is race-risk"
    [ "race-risk" ] (rules_of stomp)

let test_race_named_helper () =
  (* the sharded-engine shape: the crew argument is only a partial
     application of a named phase function; the analysis resolves the
     name through the unit's binding table and walks its body *)
  let r =
    report ~rules:race_rules
      [
        ( "lib/fix.ml",
          "module Crew = struct\n\
          \  let run_all _t fs = Array.iter (fun f -> f ()) fs\n\
           end\n\
           let seen : (string, int) Hashtbl.t = Hashtbl.create 4\n\
           let note name = Hashtbl.replace seen name 1\n\
           let go crew names =\n\
          \  Crew.run_all crew (Array.map (fun n () -> note n) names)\n" );
      ]
  in
  Alcotest.(check (list string)) "write inside resolved helper flagged"
    [ "race-risk" ] (rules_of r)

(* the same lattice, property-style: every (guard, place, access)
   combination must flag exactly when the access is shared and
   unguarded — write as risk, read as smell *)

let capture_combos =
  List.concat_map
    (fun guard ->
      List.concat_map
        (fun place ->
          List.map (fun access -> (guard, place, access))
            [ `RefWrite; `RefRead; `TblWrite ])
        [ `Shared; `Local ])
    [ `Unguarded; `Protect; `LockSeq ]

let combo_to_string (guard, place, access) =
  Printf.sprintf "(%s, %s, %s)"
    (match guard with
    | `Unguarded -> "unguarded"
    | `Protect -> "protect"
    | `LockSeq -> "lock-seq")
    (match place with `Shared -> "shared" | `Local -> "local")
    (match access with
    | `RefWrite -> "ref-write"
    | `RefRead -> "ref-read"
    | `TblWrite -> "tbl-write")

let capture_fixture (guard, place, access) =
  let rname = match place with `Shared -> "sref" | `Local -> "lref" in
  let tname = match place with `Shared -> "stbl" | `Local -> "ltbl" in
  let acc =
    match access with
    | `RefWrite -> rname ^ " := 1"
    | `RefRead -> "ignore !" ^ rname
    | `TblWrite -> "Hashtbl.replace " ^ tname ^ " 0 1"
  in
  let body =
    match guard with
    | `Unguarded -> acc
    | `Protect -> "Mutex.protect m (fun () -> " ^ acc ^ ")"
    | `LockSeq -> "Mutex.lock m;\n      " ^ acc ^ ";\n      Mutex.unlock m"
  in
  spawn_fixture body

let capture_expected (guard, place, access) =
  match (guard, place) with
  | `Unguarded, `Shared -> (
      match access with
      | `RefWrite | `TblWrite -> [ "race-risk" ]
      | `RefRead -> [ "race-smell" ])
  | _ -> []

let capture_property =
  QCheck.Test.make ~name:"capture lattice: flags iff shared and unguarded"
    ~count:(List.length capture_combos)
    (QCheck.make ~print:combo_to_string
       (QCheck.Gen.oneofl capture_combos))
    (fun combo ->
      let r = report ~rules:race_rules [ capture_fixture combo ] in
      rules_of r = capture_expected combo)

(* --- version-stamp consistency (version-drift) --- *)

let test_version_drift () =
  let pinned =
    report ~rules:[ "version-drift" ]
      [ ("lib/codecish.ml", "let format_version = 3\n") ]
  in
  Alcotest.(check (list string)) "literal stamp outside registry flagged"
    [ "version-drift" ] (rules_of pinned);
  Alcotest.(check int) "drift exits 1" 1 (Lint.exit_code (Ok pinned));
  let aliased =
    report ~rules:[ "version-drift" ]
      [
        ( "lib/codecish.ml",
          "module Registry = struct let trace_format = 3 end\n\
           let format_version = Registry.trace_format\n" );
      ]
  in
  Alcotest.(check (list string)) "registry alias is the blessed spelling" []
    (rules_of aliased);
  (* a hand-rolled cache-key derivation: the acceptance scenario — the
     doctored sprintf must fail naming the rule and the location *)
  let doctored =
    report ~rules:[ "version-drift" ]
      [
        ( "lib/keys.ml",
          "let elect_key d = Printf.sprintf \"%s/elect-seq/v%d\" d 1\n" );
      ]
  in
  (match doctored.Report.findings with
  | [] -> Alcotest.fail "hand-rolled derivation must be flagged"
  | f :: _ ->
      Alcotest.(check string) "rule named" "version-drift" f.Finding.rule;
      Alcotest.(check string) "file named" "lib/keys.ml" f.Finding.file;
      Alcotest.(check int) "location is the literal's line" 1 f.Finding.line;
      Alcotest.(check bool) "message names the marker" true
        (contains_sub f.Finding.message "/elect-"));
  Alcotest.(check int) "doctored derivation exits 1" 1
    (Lint.exit_code (Ok doctored));
  (* the registry itself is exempt: literals are its whole job *)
  let registry =
    report ~rules:[ "version-drift" ]
      [
        ( "lib/versions/versions.ml",
          "let advice_version = 1\n\
           let advice_key d t = Printf.sprintf \"%s/%s/v%d\" d t \
           advice_version\n" );
      ]
  in
  Alcotest.(check (list string)) "lib/versions is exempt" []
    (rules_of registry)

(* --- SARIF emitter --- *)

let test_sarif () =
  let r =
    report ~rules:race_rules
      [ spawn_fixture "sref := 1"; ("lib/fix2.ml", "let x = 1\n") ]
  in
  let selected =
    match Lint.select (Some race_rules) with
    | Ok rs -> rs
    | Error e -> Alcotest.failf "selection failed: %s" e
  in
  let sarif = Report.to_sarif ~rules:selected r in
  match Json.of_string (Json.to_string sarif) with
  | Error e -> Alcotest.failf "SARIF does not reparse: %s" e
  | Ok parsed ->
      Alcotest.(check (option string)) "SARIF version" (Some "2.1.0")
        (match Json.member "version" parsed with
        | Some (Json.String v) -> Some v
        | _ -> None);
      let run =
        match Json.member "runs" parsed with
        | Some (Json.List [ run ]) -> run
        | _ -> Alcotest.fail "exactly one run expected"
      in
      let driver =
        match Json.member "tool" run with
        | Some tool -> (
            match Json.member "driver" tool with
            | Some d -> d
            | None -> Alcotest.fail "driver missing")
        | None -> Alcotest.fail "tool missing"
      in
      Alcotest.(check (option string)) "driver name" (Some "shadescheck")
        (match Json.member "name" driver with
        | Some (Json.String n) -> Some n
        | _ -> None);
      (match Json.member "rules" driver with
      | Some (Json.List rules) ->
          Alcotest.(check int) "selected rules as driver metadata"
            (List.length selected) (List.length rules)
      | _ -> Alcotest.fail "driver rules missing");
      let results =
        match Json.member "results" run with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "results missing"
      in
      Alcotest.(check int) "one result per finding"
        (List.length r.Report.findings)
        (List.length results);
      List.iter
        (fun res ->
          List.iter
            (fun k ->
              if Json.member k res = None then
                Alcotest.failf "result lacks %S member" k)
            [ "ruleId"; "level"; "message"; "locations" ])
        results

(* --- the shipped tree itself --- *)

let test_self_check () =
  (* Tests run in _build/default/test, so the parent directory is the
     build tree every .cmt of every library lives in: the lint's own
     acceptance test is that the shipped lib/ is clean under the full
     registry, with every shipped suppression visible in the tally. *)
  let root = Filename.dirname (Sys.getcwd ()) in
  match Lint.run ~root ~paths:[ "lib" ] () with
  | Error e -> Alcotest.failf "self-check could not load the build tree: %s" e
  | Ok r ->
      List.iter
        (fun f -> Printf.printf "unexpected: %s %s:%d\n" f.Finding.rule f.Finding.file f.Finding.line)
        r.Report.findings;
      Alcotest.(check (list string)) "shipped lib/ lints clean" []
        (rules_of r);
      Alcotest.(check bool) "suppressions are tallied, not hidden" true
        (r.Report.suppressed > 0);
      Alcotest.(check bool) "a real population of units" true
        (r.Report.units > 30);
      Alcotest.(check int) "and the tree exits 0" 0 (Lint.exit_code (Ok r))

let () =
  Alcotest.run "shades_analysis"
    [
      ( "rules",
        [
          Alcotest.test_case "hashtbl-order" `Quick test_hashtbl_order;
          Alcotest.test_case "ambient-randomness" `Quick
            test_ambient_randomness;
          Alcotest.test_case "wall-clock-in-measured-path" `Quick
            test_wall_clock;
          Alcotest.test_case "direct-stdout-in-lib" `Quick test_direct_stdout;
          Alcotest.test_case "missing-mli" `Quick test_missing_mli;
          Alcotest.test_case "locality" `Quick test_locality;
        ] );
      ( "domain-safety",
        [
          Alcotest.test_case "race-risk" `Quick test_race_risk;
          Alcotest.test_case "race-smell" `Quick test_race_smell;
          Alcotest.test_case "disjoint slots" `Quick test_race_slots;
          Alcotest.test_case "named helper" `Quick test_race_named_helper;
          QCheck_alcotest.to_alcotest capture_property;
        ] );
      ( "version-drift",
        [ Alcotest.test_case "stamp consistency" `Quick test_version_drift ] );
      ( "suppression",
        [ Alcotest.test_case "allow grammar" `Quick test_suppression ] );
      ( "driver",
        [
          Alcotest.test_case "--rules selection" `Quick test_rule_selection;
          Alcotest.test_case "exit-code contract" `Quick test_exit_codes;
          Alcotest.test_case "JSON report round-trip" `Quick
            test_json_roundtrip;
          Alcotest.test_case "SARIF emitter" `Quick test_sarif;
        ] );
      ( "self",
        [ Alcotest.test_case "shipped lib/ is clean" `Quick test_self_check ] );
    ]
