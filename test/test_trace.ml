(* Tests for the execution-trace subsystem: codec round-trips and
   rejection, the bounded recorder, sync-vs-async diffing on real
   election runs, and deterministic replay with divergence location. *)

open Shades_trace
open Shades_graph
open Shades_election
open Shades_families

let no_advice = Shades_bits.Bitstring.empty

(* A trace exercising every constructor, extreme field values, an async
   engine with a negative seed, a non-empty dropped count, and a label
   with non-ASCII bytes. *)
let sample_trace =
  {
    Trace.meta =
      {
        Trace.engine = Trace.Async { seed = -3 };
        graph_order = 7;
        advice_bits = 123;
        label = "u 4,1 σ=1";
      };
    dropped = 5;
    events =
      [|
        Event.Round_start { round = 0 };
        Event.Advice_read { v = 0; bits = 0 };
        Event.Send { round = 1; v = 2; port = 0; size = 0 };
        Event.Deliver { round = 1; v = 3; port = 2; size = 99_999 };
        Event.Decide { v = 4; round = 2 };
        Event.Halt { v = 4; round = 2 };
        Event.Sync_marker { round = 3; v = 6; port = 1 };
      |];
  }

let test_codec_round_trip () =
  Alcotest.(check bool)
    "decode (encode t) = t, all constructors" true
    (Codec.decode (Codec.encode sample_trace) = Ok sample_trace);
  let sync_empty =
    {
      Trace.meta =
        { Trace.engine = Trace.Sync; graph_order = 0; advice_bits = 0; label = "" };
      dropped = 0;
      events = [||];
    }
  in
  Alcotest.(check bool)
    "empty sync trace round-trips" true
    (Codec.decode (Codec.encode sync_empty) = Ok sync_empty);
  Alcotest.(check bool)
    "encoding is deterministic" true
    (Codec.encode sample_trace = Codec.encode sample_trace)

let test_codec_rejects () =
  let blob = Codec.encode sample_trace in
  (* no prefix of a valid file is itself valid *)
  let truncation_ok = ref true in
  for len = 0 to String.length blob - 1 do
    match Codec.decode (String.sub blob 0 len) with
    | Ok _ -> truncation_ok := false
    | Error _ -> ()
  done;
  Alcotest.(check bool) "every truncated prefix rejected" true !truncation_ok;
  let expect_error name s =
    Alcotest.(check bool) name true (Result.is_error (Codec.decode s))
  in
  expect_error "trailing junk rejected" (blob ^ "x");
  expect_error "garbage rejected" "this is not a trace file at all";
  expect_error "empty rejected" "";
  let bad_magic = Bytes.of_string blob in
  Bytes.set bad_magic 0 'X';
  expect_error "bad magic rejected" (Bytes.to_string bad_magic);
  let bad_version = Bytes.of_string blob in
  Bytes.set bad_version 4 (Char.chr (Codec.format_version + 1));
  expect_error "foreign format version rejected" (Bytes.to_string bad_version);
  (* corrupting an interior payload byte must never crash the decoder:
     it either reads different events or errors, but stays total *)
  let corrupt = Bytes.of_string blob in
  Bytes.set corrupt (String.length blob - 3) '\xff';
  match Codec.decode (Bytes.to_string corrupt) with
  | Ok _ | Error _ -> ()

let test_recorder_ring () =
  let r = Trace.recorder ~capacity:4 () in
  for i = 1 to 10 do
    Trace.emit r (Event.Round_start { round = i })
  done;
  let meta =
    { Trace.engine = Trace.Sync; graph_order = 1; advice_bits = 0; label = "ring" }
  in
  let t = Trace.capture r meta in
  Alcotest.(check int) "total counts everything" 10 (Trace.total r);
  Alcotest.(check int) "dropped = overflow" 6 t.Trace.dropped;
  Alcotest.(check bool)
    "retained = most recent, oldest first" true
    (t.Trace.events
    = Array.of_list
        (List.map (fun round -> Event.Round_start { round }) [ 7; 8; 9; 10 ]));
  Alcotest.(check bool)
    "capture is repeatable" true
    (Trace.capture r meta = t);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Trace.recorder: capacity must be positive") (fun () ->
      ignore (Trace.recorder ~capacity:0 ()))

(* --- tracing real election runs --- *)

let capture ?(label = "test") scheme g engine =
  let r = Trace.recorder () in
  let tracer = Trace.emit r in
  (match engine with
  | Trace.Sync -> ignore (Scheme.run ~tracer scheme g)
  | Trace.Async { seed } -> ignore (Scheme.run_async ~seed ~tracer scheme g));
  Trace.capture r
    {
      Trace.engine;
      graph_order = Port_graph.order g;
      advice_bits = 0;
      label;
    }

let test_sync_trace_shape () =
  let g = (Gclass.build { Gclass.delta = 3; k = 1 } ~i:2).Gclass.graph in
  let n = Port_graph.order g in
  let t = capture Select_by_view.scheme g Trace.Sync in
  let s = Trace.stats t in
  Alcotest.(check int) "one Advice_read per node" n s.Trace.advice_reads;
  Alcotest.(check int) "every node decides" n s.Trace.decides;
  Alcotest.(check int) "every node halts" n s.Trace.halts;
  Alcotest.(check int) "no markers in a sync trace" 0 s.Trace.sync_markers;
  Alcotest.(check int) "sends = delivers" s.Trace.sends s.Trace.delivers;
  Alcotest.(check int) "k=1: one round" 1 s.Trace.rounds;
  Alcotest.(check (list (pair int int)))
    "per-round sends matches the stats total"
    [ (1, s.Trace.sends) ]
    (Trace.per_round_sends t)

let test_sync_vs_async_diff () =
  (* The acceptance property: on one instance, the async engine's trace
     (any seed) equals the synchronous trace modulo synchronizer
     markers — on G-class and U-class instances alike. *)
  let instances =
    [
      ( "G(3,1,i=2)",
        (Gclass.build { Gclass.delta = 3; k = 1 } ~i:2).Gclass.graph,
        `G );
      ( "G(4,1,i=2)",
        (Gclass.build { Gclass.delta = 4; k = 1 } ~i:2).Gclass.graph,
        `G );
      ( "U(4,1,σ=1)",
        (let p = { Uclass.delta = 4; k = 1 } in
         (Uclass.build p ~sigma:(Uclass.uniform_sigma p 1)).Uclass.graph),
        `U );
    ]
  in
  List.iter
    (fun (name, g, family) ->
      let run engine =
        match family with
        | `G -> capture Select_by_view.scheme g engine
        | `U -> capture Uclass.pe_scheme g engine
      in
      let sync = run Trace.Sync in
      Alcotest.(check int)
        (name ^ ": sync trace has no markers")
        0 (Trace.stats sync).Trace.sync_markers;
      List.iter
        (fun seed ->
          let async = run (Trace.Async { seed }) in
          Alcotest.(check bool)
            (Printf.sprintf "%s: async seed %d has markers" name seed)
            true
            ((Trace.stats async).Trace.sync_markers > 0);
          Alcotest.(check (list string))
            (Printf.sprintf "%s: sync vs async seed %d divergence-free" name
               seed)
            []
            (List.map Diff.pp_divergence (Diff.divergences sync async)))
        [ 0; 1; 2 ])
    instances

let test_diff_reports_divergence () =
  let g = (Gclass.build { Gclass.delta = 3; k = 1 } ~i:2).Gclass.graph in
  let t = capture Select_by_view.scheme g Trace.Sync in
  (* drop one Deliver event from the right-hand trace *)
  let eq = ref None in
  Array.iteri
    (fun i e ->
      if !eq = None then
        match e with Event.Deliver _ -> eq := Some i | _ -> ())
    t.Trace.events;
  let i = Option.get !eq in
  let removed = t.Trace.events.(i) in
  let right =
    {
      t with
      Trace.events =
        Array.of_list
          (List.filteri (fun j _ -> j <> i) (Array.to_list t.Trace.events));
    }
  in
  match Diff.first t right with
  | None -> Alcotest.fail "expected a divergence"
  | Some d ->
      Alcotest.(check bool) "left side holds the event" true (d.Diff.left = Some removed);
      Alcotest.(check bool) "right side is missing it" true (d.Diff.right = None);
      Alcotest.(check int) "round located" (Event.round removed) d.Diff.round;
      Alcotest.(check int) "vertex located" (Event.vertex removed) d.Diff.vertex

(* --- replay --- *)

let test_replay_clean () =
  let g = (Gclass.build { Gclass.delta = 4; k = 1 } ~i:2).Gclass.graph in
  let sync = capture Select_by_view.scheme g Trace.Sync in
  Alcotest.(check bool)
    "sync re-run reproduces the trace" true
    (Replay.run sync (fun tracer ->
         ignore (Scheme.run ~tracer Select_by_view.scheme g))
    = Ok ());
  let async = capture Select_by_view.scheme g (Trace.Async { seed = 2 }) in
  Alcotest.(check bool)
    "same-seed async re-run reproduces the trace verbatim" true
    (Replay.run async (fun tracer ->
         ignore (Scheme.run_async ~seed:2 ~tracer Select_by_view.scheme g))
    = Ok ())

let test_replay_detects_mutation () =
  let g = (Gclass.build { Gclass.delta = 3; k = 1 } ~i:2).Gclass.graph in
  let t = capture Select_by_view.scheme g Trace.Sync in
  let exec tracer = ignore (Scheme.run ~tracer Select_by_view.scheme g) in
  (* mutate one mid-trace Send's port *)
  let idx = ref (-1) in
  Array.iteri
    (fun i e ->
      match e with
      | Event.Send _ when !idx < 0 && i > 50 -> idx := i
      | _ -> ())
    t.Trace.events;
  let events = Array.copy t.Trace.events in
  let round0, vertex0 =
    match events.(!idx) with
    | Event.Send { round; v; port; size } ->
        events.(!idx) <- Event.Send { round; v; port = port + 1; size };
        (round, v)
    | _ -> assert false
  in
  (match Replay.run { t with Trace.events } exec with
  | Ok () -> Alcotest.fail "mutation not detected"
  | Error d ->
      Alcotest.(check int) "at the mutated index" !idx d.Replay.index;
      Alcotest.(check (pair int int))
        "(round, vertex) of the mutation" (round0, vertex0)
        (Replay.location d);
      Alcotest.(check bool)
        "expected = recorded mutant" true
        (d.Replay.expected = Some events.(!idx));
      Alcotest.(check bool)
        "actual = live event" true
        (d.Replay.actual = Some t.Trace.events.(!idx)));
  (* a recorded suffix the live run never emits is caught too *)
  let padded =
    {
      t with
      Trace.events =
        Array.append t.Trace.events [| Event.Round_start { round = 99 } |];
    }
  in
  (match Replay.run padded exec with
  | Ok () -> Alcotest.fail "missing trailing event not detected"
  | Error d ->
      Alcotest.(check bool)
        "execution ended before the recorded tail" true
        (d.Replay.actual = None));
  (* an overflowed trace cannot anchor a replay *)
  let r = Trace.recorder ~capacity:2 () in
  exec (Trace.emit r);
  let overflowed = Trace.capture r t.Trace.meta in
  Alcotest.(check bool) "overflowed" true (overflowed.Trace.dropped > 0);
  match Replay.run overflowed exec with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on dropped > 0"

let test_file_round_trip () =
  let g = (Gclass.build { Gclass.delta = 3; k = 1 } ~i:2).Gclass.graph in
  let t = capture ~label:"file io" Select_by_view.scheme g Trace.Sync in
  let path = Filename.temp_file "shades_trace" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.write ~path t;
      Alcotest.(check bool) "read back equal" true (Codec.read ~path = Ok t));
  Alcotest.(check bool)
    "missing file is an Error, not an exception" true
    (Result.is_error (Codec.read ~path:"/nonexistent/trace.bin"))

(* The trivial algorithms also trace correctly (no scheme layer). *)
let test_engine_tracer_direct () =
  let open Shades_localsim in
  let countdown r =
    {
      Engine.init = (fun ~degree ~advice:_ -> (degree, r));
      send = (fun (_, left) ~port:_ -> if left > 0 then Some () else None);
      step = (fun (d, left) _ -> (d, left - 1));
      output = (fun (d, left) -> if left <= 0 then Some d else None);
    }
  in
  let g = Gen.oriented_ring 4 in
  let r = Trace.recorder () in
  let result =
    Engine.run ~tracer:(Trace.emit r) g ~advice:no_advice (countdown 2)
  in
  let t =
    Trace.capture r
      { Trace.engine = Trace.Sync; graph_order = 4; advice_bits = 0; label = "" }
  in
  let s = Trace.stats t in
  Alcotest.(check int) "sends = engine messages" result.Engine.messages
    s.Trace.sends;
  Alcotest.(check int) "rounds traced" result.Engine.rounds s.Trace.rounds;
  (* default msg_size is 0 *)
  Alcotest.(check int) "sizes default to 0" 0 s.Trace.send_size_total;
  (* emission prefix: advice reads first, then round 1 *)
  Alcotest.(check bool)
    "starts with one Advice_read per node" true
    (Array.for_all
       (fun e -> match e with Event.Advice_read _ -> true | _ -> false)
       (Array.sub t.Trace.events 0 4));
  Alcotest.(check bool)
    "then Round_start 1" true
    (t.Trace.events.(4) = Event.Round_start { round = 1 })

let () =
  Alcotest.run "shades_trace"
    [
      ( "codec",
        [
          Alcotest.test_case "round trip" `Quick test_codec_round_trip;
          Alcotest.test_case "rejection" `Quick test_codec_rejects;
          Alcotest.test_case "file io" `Quick test_file_round_trip;
        ] );
      ( "recorder",
        [ Alcotest.test_case "bounded ring" `Quick test_recorder_ring ] );
      ( "diff",
        [
          Alcotest.test_case "sync trace shape" `Quick test_sync_trace_shape;
          Alcotest.test_case "sync = async modulo markers" `Quick
            test_sync_vs_async_diff;
          Alcotest.test_case "reports (round, vertex, event)" `Quick
            test_diff_reports_divergence;
        ] );
      ( "replay",
        [
          Alcotest.test_case "clean re-run" `Quick test_replay_clean;
          Alcotest.test_case "detects mutation" `Quick
            test_replay_detects_mutation;
          Alcotest.test_case "engine tracer direct" `Quick
            test_engine_tracer_direct;
        ] );
    ]
