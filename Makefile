# Convenience entry points; everything is plain dune underneath.

.PHONY: all check build test smoke sweep bench clean

all: check

build:
	dune build @all

test:
	dune runtest

# The tier-1 gate: full build, full test suite, and a smoke sweep
# through the parallel runtime (writes /tmp/shades_smoke_sweep.json).
check:
	dune build @all
	dune runtest
	dune exec bin/shades_cli.exe -- sweep --tiny -o /tmp/shades_smoke_sweep.json

smoke:
	dune exec bin/shades_cli.exe -- sweep --tiny -o /tmp/shades_smoke_sweep.json

# Regenerate the committed sweep baseline.
sweep:
	dune exec bin/shades_cli.exe -- sweep --family both -o BENCH_sweep.json

bench:
	dune exec bench/main.exe

clean:
	dune clean
