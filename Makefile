# Convenience entry points; everything is plain dune underneath.

# Where the smoke sweep writes its store.  CI overrides this to a
# workspace path so the store can be uploaded as an artifact on failure.
SMOKE_OUT ?= /tmp/shades_smoke_sweep.json
# The smoke sweep also records one execution trace per grid point here:
# when the gate fails, the traces say exactly which (round, vertex,
# event) moved (`shades_cli trace diff` against a known-good run).
SMOKE_TRACES ?= /tmp/shades_smoke_traces
# Where `trace gate` writes its JSON divergence report.  CI overrides
# this to a workspace path so a failing gate uploads the report as an
# artifact.
GATE_REPORT ?= /tmp/shades_gate_report.json
# Where `shades lint` writes its JSON findings report — same CI
# override story as the gate report.
LINT_REPORT ?= /tmp/shades_lint_report.json
# Where `shades lint` writes its SARIF 2.1.0 log; the CI lint job
# uploads it to GitHub code scanning so findings annotate the diff.
LINT_SARIF ?= /tmp/shades_lint.sarif
# The serve smoke test's sockets and final metrics snapshots.  CI
# overrides SERVE_METRICS to a workspace path so a failing smoke run
# uploads the daemon's own counters as an artifact; the Prometheus
# scrape of GET /metrics lands beside it (SERVE_PROM defaults to
# $(SERVE_METRICS:.json=.prom) inside the script).
SERVE_SOCKET ?= /tmp/shades_serve_smoke.sock
SERVE_METRICS ?= /tmp/shades_serve_metrics.json
# Speed gate (BENCH_micro): tolerance bands for the micro-benchmark
# compare, and where the raw measurement JSON lands so a failing gate
# can upload it as a CI artifact.  The time band is generous because
# wall-time medians travel badly across machines (CI widens it
# further); the allocation band is tight because words/run are nearly
# machine-independent and carry the real regression signal.
BENCH_TIME_TOL ?= 3.0
BENCH_ALLOC_TOL ?= 1.5
BENCH_QUOTA ?= 0.5
BENCH_RAW ?= /tmp/shades_bench_raw.json
# Where the adversary smoke campaign writes its report (markdown +
# JSON + sharded store).  CI overrides this to a workspace path so a
# failing gate uploads the report JSON as an artifact.  The blessed
# classification baseline it is gated against lives in
# experiments/adversary-smoke.store/.
ADV_OUT ?= /tmp/shades_adversary

.PHONY: all check build test lint smoke serve-smoke adversary-smoke sweep \
	bless doc bench bench-engine clean

all: check

build:
	dune build @all

test:
	dune runtest

# shadescheck: the determinism & locality lint over the compiled typed
# ASTs (needs a full build so every .cmt is fresh).  Exit 1 on any
# unsuppressed finding, 2 if the .cmts cannot be loaded.
lint:
	dune build @all
	@mkdir -p $(dir $(LINT_REPORT)) $(dir $(LINT_SARIF))
	dune exec bin/shades_cli.exe -- lint --json $(LINT_REPORT) \
	    --sarif $(LINT_SARIF)

# The tier-1 gate: full build, full test suite, the tiny-grid smoke
# sweep compared --strict against the committed sharded baseline
# (BENCH_tiny/) — any changed rounds/messages/advice, or any grid-shape
# change, exits nonzero — and the trace-forensics gate: the same grid's
# execution traces compared against the blessed baselines in
# BENCH_tiny/traces/, failing with the first divergent (round, vertex,
# event) per drifted job (exit 1 divergent, 2 unreadable baseline).
# Intentional changes go through `make bless`.  Tracing is
# metrics-neutral, so recording never perturbs the measurement gate.
# Last comes the speed gate: the micro-benchmarks compared against
# BENCH_micro/baseline.json with the tolerance bands above, so a
# hot-path slowdown or allocation regression also fails check.
# The adversary gate runs the committed corruption smoke campaign and
# pins every mutant classification (detected / harmless / fooling) to
# the blessed store under experiments/ — a scheme or codec change that
# silently alters what the shades detect, or lets a mutant fool a
# shade undetected, fails check even when the honest baselines agree.
# Order: build → lint → tests → measurement gate → forensics gate →
# daemon smoke → adversary gate → speed gate, so a source-hygiene
# regression fails before any baseline is consulted and the slowest
# step runs last.
check:
	dune build @all
	@mkdir -p $(dir $(LINT_REPORT)) $(dir $(LINT_SARIF))
	dune exec bin/shades_cli.exe -- lint --json $(LINT_REPORT) \
	    --sarif $(LINT_SARIF)
	dune runtest
	@mkdir -p $(dir $(SMOKE_OUT))
	dune exec bin/shades_cli.exe -- sweep --tiny -o $(SMOKE_OUT) \
	    --trace-out $(SMOKE_TRACES) --compare BENCH_tiny --strict
	@mkdir -p $(dir $(GATE_REPORT))
	dune exec bin/shades_cli.exe -- trace gate -b BENCH_tiny/traces \
	    --json $(GATE_REPORT)
	@mkdir -p $(dir $(SERVE_METRICS))
	SERVE_SOCKET=$(SERVE_SOCKET) SERVE_METRICS=$(SERVE_METRICS) \
	    sh scripts/serve_smoke.sh
	@mkdir -p $(ADV_OUT)
	dune exec bin/shades_cli.exe -- adversary campaign --smoke \
	    --out $(ADV_OUT) --compare experiments/adversary-smoke.store
	@mkdir -p $(dir $(BENCH_RAW))
	dune exec bench/main.exe -- --quota $(BENCH_QUOTA) \
	    --compare BENCH_micro/baseline.json --json $(BENCH_RAW) \
	    --time-tolerance $(BENCH_TIME_TOL) --alloc-tolerance $(BENCH_ALLOC_TOL)

# Boot the daemon on a Unix socket (with a persistent --cache-dir and
# the HTTP metrics plane), hit every endpoint once through the client —
# batch included — assert a repeated advise is a cache hit (no oracle
# rerun), scrape /healthz and /metrics with curl, then restart the
# daemon on the same cache directory and assert the disk tier answers
# everything with zero recomputation.
serve-smoke:
	dune build @all
	@mkdir -p $(dir $(SERVE_METRICS))
	SERVE_SOCKET=$(SERVE_SOCKET) SERVE_METRICS=$(SERVE_METRICS) \
	    sh scripts/serve_smoke.sh

smoke:
	@mkdir -p $(dir $(SMOKE_OUT))
	dune exec bin/shades_cli.exe -- sweep --tiny -o $(SMOKE_OUT)

# The corruption smoke campaign alone, gated against the blessed
# classification store (exit 0 clean, 1 verdict/drift, 2 bad baseline).
adversary-smoke:
	dune build @all
	@mkdir -p $(ADV_OUT)
	dune exec bin/shades_cli.exe -- adversary campaign --smoke \
	    --out $(ADV_OUT) --compare experiments/adversary-smoke.store

# Regenerate the committed full sweep baseline (sharded).
sweep:
	dune exec bin/shades_cli.exe -- sweep --family both --sharded -o BENCH_sweep

# The explicit policy for intentionally changed numbers or behaviour:
# regenerate every committed baseline in one shot — the full sweep, the
# tiny CI measurement gate, AND the blessed tiny-grid traces — then
# commit the new shards + manifests + .shtr files alongside the change
# that moved them.  Regenerating them together keeps the measurement
# and forensics gates telling the same story; `trace bless` only
# rewrites trace files whose digest actually changed.
bless: sweep
	dune exec bin/shades_cli.exe -- sweep --tiny --sharded -o BENCH_tiny
	dune exec bin/shades_cli.exe -- trace bless -b BENCH_tiny/traces
	dune exec bin/shades_cli.exe -- adversary campaign --smoke --out experiments
	dune exec bench/main.exe -- --quota $(BENCH_QUOTA) -o BENCH_micro/baseline.json

# Build the odoc API reference for the public libraries (landing at
# _build/default/_doc/_html/index.html).  The container used for local
# development may lack odoc; that is a polite skip here, while the CI
# docs job installs odoc and builds @doc with warnings-as-errors for
# lib/trace, lib/runtime and lib/localsim.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	    dune build @doc && \
	    echo "API reference: _build/default/_doc/_html/index.html"; \
	else \
	    echo "odoc not installed — skipping (CI builds the docs; try 'opam install odoc')"; \
	fi

# Print the full micro-benchmark table (medians per kernel).  The
# speed gate itself is the --compare step inside `make check`; the
# wall-clock sequential-vs-sharded shootout is `make bench-engine`.
bench:
	dune exec bench/main.exe

# Wall-clock shootout on a 50k-vertex graph; --assert enforces the
# sharded win on machines with >= 4 cores and SKIPs honestly elsewhere.
bench-engine:
	dune exec bench/engine_bench.exe -- --assert

clean:
	dune clean
