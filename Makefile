# Convenience entry points; everything is plain dune underneath.

# Where the smoke sweep writes its store.  CI overrides this to a
# workspace path so the store can be uploaded as an artifact on failure.
SMOKE_OUT ?= /tmp/shades_smoke_sweep.json
# The smoke sweep also records one execution trace per grid point here:
# when the gate fails, the traces say exactly which (round, vertex,
# event) moved (`shades_cli trace diff` against a known-good run).
SMOKE_TRACES ?= /tmp/shades_smoke_traces

.PHONY: all check build test smoke sweep bless bench clean

all: check

build:
	dune build @all

test:
	dune runtest

# The tier-1 gate: full build, full test suite, and the tiny-grid smoke
# sweep compared --strict against the committed sharded baseline
# (BENCH_tiny/) — any changed rounds/messages/advice, or any grid-shape
# change, exits nonzero.  Intentional changes go through `make bless`.
# Tracing is metrics-neutral, so recording never perturbs the gate.
check:
	dune build @all
	dune runtest
	@mkdir -p $(dir $(SMOKE_OUT))
	dune exec bin/shades_cli.exe -- sweep --tiny -o $(SMOKE_OUT) \
	    --trace-out $(SMOKE_TRACES) --compare BENCH_tiny --strict

smoke:
	@mkdir -p $(dir $(SMOKE_OUT))
	dune exec bin/shades_cli.exe -- sweep --tiny -o $(SMOKE_OUT)

# Regenerate the committed full sweep baseline (sharded).
sweep:
	dune exec bin/shades_cli.exe -- sweep --family both --sharded -o BENCH_sweep

# The explicit policy for intentionally changed numbers: regenerate both
# committed baselines (the full sweep and the tiny CI gate), then commit
# the new shards + manifests alongside the change that moved them.
bless: sweep
	dune exec bin/shades_cli.exe -- sweep --tiny --sharded -o BENCH_tiny

bench:
	dune exec bench/main.exe

clean:
	dune clean
