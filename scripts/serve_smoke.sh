#!/bin/sh
# serve-smoke: boot the daemon, hit every endpoint once through the
# client, and assert that a repeated advise is served from the advice
# cache without recomputation.  Then restart the daemon on the same
# --cache-dir and assert the disk tier answers with zero recomputation,
# and scrape the HTTP plane (/healthz, /metrics) with curl.  The
# daemon's final metrics snapshot is written to SERVE_METRICS (and the
# Prometheus scrape to SERVE_PROM) so CI can upload both as artifacts
# when the smoke test fails.
#
# Expects the tree to be built already (run `dune build @all` first, or
# go through `make serve-smoke`); the binary is invoked directly so no
# dune lock is held while the daemon runs.
#
# Hardened against the two classic smoke-test flakes:
#   - readiness is probed with a real request (`client stats`), not by
#     watching for the socket file — a bound-but-not-yet-accepting
#     daemon, or a stale socket file from a crashed run, both fool the
#     file check;
#   - all scratch lives in a private mktemp dir, and the cleanup trap
#     fires on INT/TERM/HUP as well as normal exit, so an interrupted
#     run never leaves a daemon or a half-written store behind.
set -eu

CLI=${CLI:-./_build/default/bin/shades_cli.exe}
SERVE_SOCKET=${SERVE_SOCKET:-/tmp/shades_serve_smoke.sock}
SERVE_HTTP_SOCKET=${SERVE_HTTP_SOCKET:-/tmp/shades_serve_smoke_http.sock}
SERVE_METRICS=${SERVE_METRICS:-/tmp/shades_serve_metrics.json}
SERVE_PROM=${SERVE_PROM:-${SERVE_METRICS%.json}.prom}

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    exit 1
}

[ -x "$CLI" ] || fail "$CLI not built (run: dune build @all)"

WORK=$(mktemp -d "${TMPDIR:-/tmp}/shades_serve_smoke.XXXXXX") \
    || fail "mktemp failed"
SERVE_PID=

cleanup() {
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    rm -f "$SERVE_SOCKET" "$SERVE_HTTP_SOCKET"
    rm -rf "$WORK"
}
trap cleanup EXIT
trap 'cleanup; exit 130' INT
trap 'cleanup; exit 143' TERM HUP

start_daemon() {
    rm -f "$SERVE_SOCKET" "$SERVE_HTTP_SOCKET"
    "$CLI" serve --listen "unix:$SERVE_SOCKET" \
        --http "unix:$SERVE_HTTP_SOCKET" \
        --cache-dir "$WORK/cache" \
        --metrics-out "$1" -q &
    SERVE_PID=$!
    # Readiness: the daemon is up when it answers a request, and only
    # then.  Bounded poll (~10s) with a liveness check each lap so a
    # daemon that died during startup fails fast instead of timing out.
    i=0
    until client stats > /dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "daemon never answered on $SERVE_SOCKET"
        kill -0 "$SERVE_PID" 2>/dev/null || fail "daemon exited during startup"
        sleep 0.1
    done
}

stop_daemon() {
    client shutdown > /dev/null || fail "shutdown"
    wait "$SERVE_PID" || fail "daemon exited nonzero"
    SERVE_PID=
}

client() {
    "$CLI" client --connect "unix:$SERVE_SOCKET" "$@"
}

HAVE_CURL=
command -v curl > /dev/null 2>&1 && HAVE_CURL=1
[ -n "$HAVE_CURL" ] || echo "serve-smoke: curl not found, skipping HTTP legs" >&2

start_daemon "$SERVE_METRICS"

# advise, twice: the repeat must be answered from the cache
client advise -g gclass:3,1,2 -t pe > "$WORK/cold.json" \
    || fail "cold advise"
grep -q '"cached":false' "$WORK/cold.json" \
    || fail "first advise claims to be cached"
client advise -g gclass:3,1,2 -t pe > "$WORK/warm.json" \
    || fail "warm advise"
grep -q '"cached":true' "$WORK/warm.json" \
    || fail "repeated advise was not served from the cache"

# elect, then feed the claimed outputs back through verify
client elect -g path:6 -t pe > "$WORK/elect.json" || fail "elect"
grep -q '"verified":true' "$WORK/elect.json" || fail "elect verdict"
outputs=$(sed 's/.*"outputs"://; s/,"graph".*//' "$WORK/elect.json")
client verify -g path:6 -t pe --outputs "$outputs" > /dev/null \
    || fail "verify rejected the daemon's own outputs"

# elect again through the vertex-sharded engine: same graph, same
# task, so the advice comes from the cache and the outputs must agree
# with the sequential run byte-for-byte
client elect -g path:6 -t pe --engine sharded --domains 2 \
    > "$WORK/elect_sharded.json" || fail "sharded elect"
grep -q '"engine":"sharded"' "$WORK/elect_sharded.json" \
    || fail "sharded elect did not echo its engine"
grep -q '"verified":true' "$WORK/elect_sharded.json" \
    || fail "sharded elect verdict"
grep -q '"cached":true' "$WORK/elect_sharded.json" \
    || fail "sharded elect did not reuse the cached advice"
sharded_outputs=$(sed 's/.*"outputs"://; s/,"graph".*//' \
    "$WORK/elect_sharded.json")
[ "$outputs" = "$sharded_outputs" ] \
    || fail "sharded elect outputs diverge from sequential"

# batch: three requests in one frame, answered in order, with the
# failing item isolated in its own slot (hence client exit 1)
if client batch --requests \
    '[{"op":"advise","graph":"gclass:3,1,2","task":"pe"},{"op":"stats"},{"op":"nope"}]' \
    > "$WORK/batch.json"
then fail "batch with a failing item should exit 1"
else [ $? -eq 1 ] || fail "batch exit code"; fi
grep -q '"count":3' "$WORK/batch.json" || fail "batch reply count"
grep -q '"unknown-op"' "$WORK/batch.json" \
    || fail "failing batch item was not isolated as unknown-op"
grep -q '"cached":true' "$WORK/batch.json" \
    || fail "batched advise was not served from the cache"

# verify-trace: a freshly recorded SHTR trace must replay clean
"$CLI" trace record -g path:6 -t pe -o "$WORK/smoke.shtr" > /dev/null \
    || fail "trace record"
client verify-trace --trace "$WORK/smoke.shtr" > /dev/null \
    || fail "verify-trace"

# the HTTP plane: /healthz answers ok, /metrics is Prometheus text
# with the documented series (DESIGN §13); keep the scrape as a CI
# artifact next to the JSON snapshot
if [ -n "$HAVE_CURL" ]; then
    [ "$(curl -sf --unix-socket "$SERVE_HTTP_SOCKET" http://daemon/healthz)" \
        = "ok" ] || fail "healthz"
    curl -sf --unix-socket "$SERVE_HTTP_SOCKET" http://daemon/metrics \
        > "$SERVE_PROM" || fail "metrics scrape"
    for series in shades_uptime_seconds shades_advice_cache_hits_total \
        shades_advise_computes_total shades_op_advise_seconds_total \
        shades_batch_items_total shades_result_cache_misses_total; do
        grep -q "^$series " "$SERVE_PROM" \
            || fail "metrics scrape lacks $series"
    done
    grep -q '^# TYPE shades_requests_total counter' "$SERVE_PROM" \
        || fail "metrics scrape lacks TYPE lines"
fi

# stats: of all the advises above, the oracle must have run exactly
# twice (gclass cold + the path:6 inside the first sync elect); the
# warm advise, the sharded elect and the batched advise are cache hits
client stats > "$WORK/stats.json" || fail "stats"
grep -q '"advise_computes":{"kind":"counter","value":2}' "$WORK/stats.json" \
    || { cp "$WORK/stats.json" "${SERVE_METRICS%.json}.stats-on-fail.json" \
             2>/dev/null || true; \
         fail "unexpected oracle-run count"; }

stop_daemon
[ -f "$SERVE_METRICS" ] || fail "daemon wrote no metrics snapshot"

# restart leg: a fresh daemon on the same --cache-dir must answer the
# whole mix above from the disk tier — cached replies, zero oracle or
# engine runs
start_daemon "$WORK/metrics-restart.json"
client advise -g gclass:3,1,2 -t pe > "$WORK/restart_advise.json" \
    || fail "restart advise"
grep -q '"cached":true' "$WORK/restart_advise.json" \
    || fail "restarted daemon recomputed advice the disk tier holds"
client elect -g path:6 -t pe > "$WORK/restart_elect.json" \
    || fail "restart elect"
grep -q '"result_cached":true' "$WORK/restart_elect.json" \
    || fail "restarted daemon recomputed an election the disk tier holds"
client stats > "$WORK/stats-restart.json" || fail "restart stats"
for c in advise_computes elect_computes; do
    if grep -q "\"$c\"" "$WORK/stats-restart.json"; then
        grep -q "\"$c\":{\"kind\":\"counter\",\"value\":0}" \
            "$WORK/stats-restart.json" \
            || { cp "$WORK/stats-restart.json" \
                     "${SERVE_METRICS%.json}.stats-on-fail.json" \
                     2>/dev/null || true; \
                 fail "restarted daemon recomputed ($c nonzero)"; }
    fi
done
stop_daemon

echo "serve-smoke: PASS (metrics: $SERVE_METRICS, prom: $SERVE_PROM)"
