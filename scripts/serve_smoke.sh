#!/bin/sh
# serve-smoke: boot the daemon, hit every endpoint once through the
# client, and assert that a repeated advise is served from the advice
# cache without recomputation.  The daemon's final metrics snapshot is
# written to SERVE_METRICS so CI can upload it as an artifact when the
# smoke test fails.
#
# Expects the tree to be built already (run `dune build @all` first, or
# go through `make serve-smoke`); the binary is invoked directly so no
# dune lock is held while the daemon runs.
set -eu

CLI=${CLI:-./_build/default/bin/shades_cli.exe}
SERVE_SOCKET=${SERVE_SOCKET:-/tmp/shades_serve_smoke.sock}
SERVE_METRICS=${SERVE_METRICS:-/tmp/shades_serve_metrics.json}
TRACE_FILE=${TRACE_FILE:-/tmp/shades_serve_smoke.shtr}

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    exit 1
}

[ -x "$CLI" ] || fail "$CLI not built (run: dune build @all)"

rm -f "$SERVE_SOCKET"
"$CLI" serve --listen "unix:$SERVE_SOCKET" --metrics-out "$SERVE_METRICS" -q &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null; rm -f "$SERVE_SOCKET"' EXIT

i=0
while [ ! -S "$SERVE_SOCKET" ]; do
    i=$((i + 1))
    [ $i -le 100 ] || fail "daemon never bound $SERVE_SOCKET"
    kill -0 $SERVE_PID 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done

client() {
    "$CLI" client --connect "unix:$SERVE_SOCKET" "$@"
}

# advise, twice: the repeat must be answered from the cache
client advise -g gclass:3,1,2 -t pe > /tmp/serve_smoke_cold.json \
    || fail "cold advise"
grep -q '"cached":false' /tmp/serve_smoke_cold.json \
    || fail "first advise claims to be cached"
client advise -g gclass:3,1,2 -t pe > /tmp/serve_smoke_warm.json \
    || fail "warm advise"
grep -q '"cached":true' /tmp/serve_smoke_warm.json \
    || fail "repeated advise was not served from the cache"

# elect, then feed the claimed outputs back through verify
client elect -g path:6 -t pe > /tmp/serve_smoke_elect.json || fail "elect"
grep -q '"verified":true' /tmp/serve_smoke_elect.json || fail "elect verdict"
outputs=$(sed 's/.*"outputs"://; s/,"graph".*//' /tmp/serve_smoke_elect.json)
client verify -g path:6 -t pe --outputs "$outputs" > /dev/null \
    || fail "verify rejected the daemon's own outputs"

# verify-trace: a freshly recorded SHTR trace must replay clean
"$CLI" trace record -g path:6 -t pe -o "$TRACE_FILE" > /dev/null \
    || fail "trace record"
client verify-trace --trace "$TRACE_FILE" > /dev/null || fail "verify-trace"

# stats: three advises above (2 + the one inside sync elect on a
# different graph) must have run the oracle exactly twice
client stats > /tmp/serve_smoke_stats.json || fail "stats"
grep -q '"advise_computes":{"kind":"counter","value":2}' \
    /tmp/serve_smoke_stats.json \
    || fail "unexpected oracle-run count (see /tmp/serve_smoke_stats.json)"

client shutdown > /dev/null || fail "shutdown"
wait $SERVE_PID || fail "daemon exited nonzero"
trap - EXIT
[ -f "$SERVE_METRICS" ] || fail "daemon wrote no metrics snapshot"

echo "serve-smoke: PASS (metrics: $SERVE_METRICS)"
