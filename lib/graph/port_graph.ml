type vertex = int

(* [adj.(v).(p) = (u, q)]: port [p] at [v] leads to [u], arriving at [q].
   Invariants established by [Builder.finish]:
   - symmetry: [adj.(v).(p) = (u, q)] iff [adj.(u).(q) = (v, p)];
   - simplicity: no self-loops, at most one edge between two vertices;
   - ports at [v] are exactly [0 .. Array.length adj.(v) - 1]. *)
type t = { adj : (vertex * int) array array }

module Builder = struct
  type t = {
    n : int;
    ports : (int, vertex * int) Hashtbl.t array; (* port -> endpoint *)
    nbrs : (vertex, unit) Hashtbl.t array; (* neighbour set *)
  }

  let create n =
    if n <= 0 then invalid_arg "Builder.create: need n >= 1";
    {
      n;
      ports = Array.init n (fun _ -> Hashtbl.create 4);
      nbrs = Array.init n (fun _ -> Hashtbl.create 4);
    }

  let check_reason b (v, p) (u, q) =
    if v < 0 || v >= b.n || u < 0 || u >= b.n then Some "vertex out of range"
    else if v = u then Some "self-loop"
    else if p < 0 || q < 0 then Some "negative port"
    else if Hashtbl.mem b.ports.(v) p then Some "port in use"
    else if Hashtbl.mem b.ports.(u) q then Some "port in use"
    else if Hashtbl.mem b.nbrs.(v) u then Some "duplicate edge"
    else None

  let can_add b e1 e2 = check_reason b e1 e2 = None

  let add_edge b ((v, p) as e1) ((u, q) as e2) =
    match check_reason b e1 e2 with
    | Some reason -> invalid_arg ("Builder.add_edge: " ^ reason)
    | None ->
        Hashtbl.replace b.ports.(v) p (u, q);
        Hashtbl.replace b.ports.(u) q (v, p);
        Hashtbl.replace b.nbrs.(v) u ();
        Hashtbl.replace b.nbrs.(u) v ()

  let finish b =
    let adj =
      Array.init b.n (fun v ->
          let d = Hashtbl.length b.ports.(v) in
          if d = 0 && b.n > 1 then
            invalid_arg "Builder.finish: isolated vertex";
          Array.init d (fun p ->
              match Hashtbl.find_opt b.ports.(v) p with
              | Some e -> e
              | None ->
                  invalid_arg
                    (Printf.sprintf
                       "Builder.finish: vertex %d has %d edges but port %d \
                        is unused"
                       v d p)))
    in
    { adj }
end

let of_edges n edges =
  let b = Builder.create n in
  List.iter (fun (e1, e2) -> Builder.add_edge b e1 e2) edges;
  Builder.finish b

let order g = Array.length g.adj

let size g =
  Array.fold_left (fun acc row -> acc + Array.length row) 0 g.adj / 2

let degree g v = Array.length g.adj.(v)

let max_degree g =
  Array.fold_left (fun acc row -> max acc (Array.length row)) 0 g.adj

let neighbor g v p =
  if p < 0 || p >= degree g v then invalid_arg "Port_graph.neighbor";
  g.adj.(v).(p)

let neighbor_vertex g v p = fst (neighbor g v p)

let port_to g v u =
  let d = degree g v in
  let rec go p =
    if p = d then None
    else if fst g.adj.(v).(p) = u then Some p
    else go (p + 1)
  in
  go 0

let edges g =
  let acc = ref [] in
  for v = order g - 1 downto 0 do
    for p = degree g v - 1 downto 0 do
      let u, q = g.adj.(v).(p) in
      if v < u then acc := ((v, p), (u, q)) :: !acc
    done
  done;
  !acc

let vertices g = List.init (order g) Fun.id

let disjoint_union gs =
  let offsets = Array.make (List.length gs) 0 in
  let total =
    List.fold_left
      (fun (i, off) g ->
        offsets.(i) <- off;
        (i + 1, off + order g))
      (0, 0) gs
    |> snd
  in
  let adj = Array.make total [||] in
  List.iteri
    (fun i g ->
      let off = offsets.(i) in
      for v = 0 to order g - 1 do
        adj.(off + v) <- Array.map (fun (u, q) -> (off + u, q)) g.adj.(v)
      done)
    gs;
  ({ adj }, offsets)

let copy g = { adj = Array.map Array.copy g.adj }

let swap_ports g v p1 p2 =
  let d = degree g v in
  if p1 < 0 || p1 >= d || p2 < 0 || p2 >= d then
    invalid_arg "Port_graph.swap_ports";
  if p1 = p2 then g
  else begin
    let g' = copy g in
    let e1 = g'.adj.(v).(p1) and e2 = g'.adj.(v).(p2) in
    g'.adj.(v).(p1) <- e2;
    g'.adj.(v).(p2) <- e1;
    (* Fix the back-pointers at the two far endpoints. *)
    let u1, q1 = e1 and u2, q2 = e2 in
    g'.adj.(u1).(q1) <- (v, p2);
    g'.adj.(u2).(q2) <- (v, p1);
    g'
  end

let relabel_ports g v perm =
  let d = degree g v in
  if Array.length perm <> d then invalid_arg "Port_graph.relabel_ports";
  let seen = Array.make d false in
  Array.iter
    (fun p ->
      if p < 0 || p >= d || seen.(p) then
        invalid_arg "Port_graph.relabel_ports: not a permutation";
      seen.(p) <- true)
    perm;
  let g' = copy g in
  let old_row = g.adj.(v) in
  let row = Array.make d (0, 0) in
  for p = 0 to d - 1 do
    row.(perm.(p)) <- old_row.(p)
  done;
  g'.adj.(v) <- row;
  for p = 0 to d - 1 do
    let u, q = old_row.(p) in
    g'.adj.(u).(q) <- (v, perm.(p))
  done;
  g'

let equal a b =
  order a = order b
  && Array.for_all2 (fun r1 r2 -> r1 = r2) a.adj b.adj

(* BFS renumbering from [start], scanning ports in ascending order:
   deterministic, and independent of the input numbering given the
   start vertex's image. *)
let bfs_perm g start =
  let n = order g in
  let perm = Array.make n (-1) in
  let queue = Queue.create () in
  perm.(start) <- 0;
  let fresh = ref 1 in
  Queue.add start queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    for p = 0 to degree g v - 1 do
      let u = fst g.adj.(v).(p) in
      if perm.(u) < 0 then begin
        perm.(u) <- !fresh;
        incr fresh;
        Queue.add u queue
      end
    done
  done;
  if !fresh <> n then invalid_arg "Port_graph.canonical: disconnected graph";
  perm

let encode g =
  let w = Shades_bits.Writer.create () in
  Shades_bits.Writer.gamma w (order g);
  for v = 0 to order g - 1 do
    Shades_bits.Writer.gamma w (degree g v);
    Array.iter
      (fun (u, q) ->
        Shades_bits.Writer.gamma w u;
        Shades_bits.Writer.gamma w q)
      g.adj.(v)
  done;
  Shades_bits.Writer.contents w

let decode bits =
  let r = Shades_bits.Reader.of_bitstring bits in
  let n = Shades_bits.Reader.gamma r in
  if n <= 0 then invalid_arg "Port_graph.decode";
  let adj =
    Array.init n (fun _ ->
        let d = Shades_bits.Reader.gamma r in
        Array.init d (fun _ ->
            let u = Shades_bits.Reader.gamma r in
            let q = Shades_bits.Reader.gamma r in
            (u, q)))
  in
  let g = { adj } in
  (* Re-validate the decoded structure via the builder. *)
  of_edges n (edges g)

(* Flat integer signature of the renumbered graph, produced directly
   from the permutation (the candidate graph itself is only built for
   the winner): per new vertex, its degree then (far vertex, far port)
   per port. *)
let int_code_of_perm g perm inv =
  let n = order g in
  let size =
    n + Array.fold_left (fun acc row -> acc + (2 * Array.length row)) 0 g.adj
  in
  let code = Array.make size 0 in
  let pos = ref 0 in
  let push v =
    code.(!pos) <- v;
    incr pos
  in
  for v_new = 0 to n - 1 do
    let v = inv.(v_new) in
    push (degree g v);
    Array.iter
      (fun (u, q) ->
        push perm.(u);
        push q)
      g.adj.(v)
  done;
  code

let renumber g perm =
  let n = order g in
  if Array.length perm <> n then invalid_arg "Port_graph.renumber";
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then
        invalid_arg "Port_graph.renumber: not a permutation";
      seen.(v) <- true)
    perm;
  let adj = Array.make n [||] in
  for v = 0 to n - 1 do
    adj.(perm.(v)) <- Array.map (fun (u, q) -> (perm.(u), q)) g.adj.(v)
  done;
  { adj }

let canonical g =
  let n = order g in
  let best = ref None in
  for start = 0 to n - 1 do
    let perm = bfs_perm g start in
    let inv = Array.make n 0 in
    Array.iteri (fun old_v new_v -> inv.(new_v) <- old_v) perm;
    let code = int_code_of_perm g perm inv in
    match !best with
    | Some (_, best_code) when compare best_code code <= 0 -> ()
    | _ -> best := Some (perm, code)
  done;
  let perm, _ = Option.get !best in
  (renumber g perm, perm)

let digest g =
  let canon, _ = canonical g in
  let bits = encode canon in
  let packed = Shades_bits.Bitstring.to_packed bits in
  (* the bit length disambiguates encodings whose padding coincides *)
  let payload =
    string_of_int (Shades_bits.Bitstring.length bits)
    ^ ":"
    ^ Bytes.unsafe_to_string packed
  in
  Digest.to_hex (Digest.string payload)

module Csr = struct
  (* Compressed sparse row: cell [row.(v) + p] holds port [p] of vertex
     [v].  Three flat int arrays instead of an array of (int * int)
     array rows — the hot engine loops touch contiguous unboxed memory
     and never allocate. *)
  type nonrec t = {
    graph : t;
    row : int array; (* length n + 1; row.(v) = first cell of v *)
    nbr : int array; (* cell -> far-end vertex *)
    far : int array; (* cell -> arrival port at the far end *)
  }

  let of_graph g =
    let n = order g in
    let row = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      row.(v + 1) <- row.(v) + Array.length g.adj.(v)
    done;
    let cells = row.(n) in
    let nbr = Array.make cells 0 and far = Array.make cells 0 in
    for v = 0 to n - 1 do
      let base = row.(v) in
      Array.iteri
        (fun p (u, q) ->
          nbr.(base + p) <- u;
          far.(base + p) <- q)
        g.adj.(v)
    done;
    { graph = g; row; nbr; far }

  let graph t = t.graph

  let order t = Array.length t.row - 1

  let degree t v = Array.unsafe_get t.row (v + 1) - Array.unsafe_get t.row v

  let neighbor_vertex t v p =
    Array.unsafe_get t.nbr (Array.unsafe_get t.row v + p)

  let neighbor_port t v p =
    Array.unsafe_get t.far (Array.unsafe_get t.row v + p)
end

let to_dot ?(highlight = []) ?(name = "G") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle];\n";
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "  %d [style=filled, fillcolor=lightblue];\n" v))
    highlight;
  List.iter
    (fun ((v, p), (u, q)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "  %d -- %d [taillabel=\"%d\", headlabel=\"%d\", fontsize=8];\n"
           v u p q))
    (edges g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt g =
  Format.fprintf fmt "@[<v>graph n=%d m=%d" (order g) (size g);
  List.iter
    (fun ((v, p), (u, q)) -> Format.fprintf fmt "@,  %d:%d -- %d:%d" v p u q)
    (edges g);
  Format.fprintf fmt "@]"
