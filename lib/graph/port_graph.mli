(** Simple undirected connected graphs with local port numbers.

    This is the network model of the paper: nodes are anonymous, but at a
    node of degree [d] the incident edges carry distinct ports
    [0 .. d-1]; an edge has one port at each endpoint, with no relation
    between the two.  Vertex indices exist only for the simulator and the
    oracle (which both know the whole network); distributed algorithms
    never see them. *)

type vertex = int

type t

(** {1 Building} *)

module Builder : sig
  type graph := t
  type t

  (** [create n] starts a builder for a graph on vertices [0 .. n-1]. *)
  val create : int -> t

  (** [add_edge b (v, p) (u, q)] adds an edge between [v] (port [p]) and
      [u] (port [q]).
      @raise Invalid_argument on self-loops, vertices out of range, reuse
      of an occupied port, or a duplicate edge. *)
  val add_edge : t -> vertex * int -> vertex * int -> unit

  (** True iff [add_edge] would succeed (same conditions, no exception). *)
  val can_add : t -> vertex * int -> vertex * int -> bool

  (** Validate and freeze. Checks that every vertex of degree [d] uses
      exactly ports [0 .. d-1].
      @raise Invalid_argument if ports are non-contiguous or the graph has
      an isolated vertex while [n > 1]. *)
  val finish : t -> graph
end

(** [of_edges n edges] builds a graph from [(v, p), (u, q)] pairs. *)
val of_edges : int -> ((vertex * int) * (vertex * int)) list -> t

(** {1 Accessors} *)

(** Number of vertices. *)
val order : t -> int

(** Number of edges. *)
val size : t -> int

val degree : t -> vertex -> int

val max_degree : t -> int

(** [neighbor g v p] is [(u, q)]: following port [p] out of [v] reaches
    [u], arriving on [u]'s port [q].
    @raise Invalid_argument if [p >= degree g v]. *)
val neighbor : t -> vertex -> int -> vertex * int

(** [neighbor_vertex g v p] is just the endpoint of {!neighbor}. *)
val neighbor_vertex : t -> vertex -> int -> vertex

(** [port_to g v u] is [Some p] iff port [p] at [v] leads to [u]. *)
val port_to : t -> vertex -> vertex -> int option

(** All edges, each once, as [((v, p), (u, q))] with [v < u]. *)
val edges : t -> ((vertex * int) * (vertex * int)) list

val vertices : t -> vertex list

(** {1 Surgery} *)

(** Disjoint union; the [i]-th component's vertex [v] becomes
    [offset.(i) + v] where [offset] is the returned array. *)
val disjoint_union : t list -> t * int array

(** [swap_ports g v p1 p2] exchanges ports [p1] and [p2] at [v]. *)
val swap_ports : t -> vertex -> int -> int -> t

(** [relabel_ports g v perm] renumbers ports at [v]: old port [p] becomes
    [perm.(p)]. [perm] must be a permutation of [0 .. degree g v - 1]. *)
val relabel_ports : t -> vertex -> int array -> t

(** {1 Comparisons and encoding} *)

(** Structural equality of the vertex-indexed representation (same vertex
    numbering, same ports). *)
val equal : t -> t -> bool

(** [renumber g perm] relabels vertex [v] as [perm.(v)].
    @raise Invalid_argument if [perm] is not a permutation. *)
val renumber : t -> int array -> t

(** [canonical g] renumbers the vertices of a {e connected} graph into a
    canonical form: BFS numbering (port-ascending) is deterministic
    given a start vertex, and the start minimizing the encoded result is
    chosen.  Returns the canonical graph and the permutation
    [perm.(old) = new].  Two port-preserving-isomorphic connected graphs
    have equal canonical forms.
    @raise Invalid_argument if [g] is disconnected. *)
val canonical : t -> t * int array

(** [encode g] is a canonical bitstring for the indexed graph (the "map"
    given as advice in minimum-time algorithms with full knowledge). *)
val encode : t -> Shades_bits.Bitstring.t

(** Inverse of {!encode}.
    @raise Shades_bits.Reader.Out_of_bits or [Invalid_argument] on
    malformed input. *)
val decode : Shades_bits.Bitstring.t -> t

(** [digest g] is a hex digest (MD5) of the {e canonical} map encoding
    — {!encode} of {!canonical}'s result, tagged with its bit length.
    Two connected graphs have equal digests iff they are
    port-preserving isomorphic, so the digest is a content address for
    the anonymous network itself, independent of the vertex numbering
    a caller happened to submit (the advice-cache key of
    [Shades_server]).  Costs one {!canonical} computation.
    @raise Invalid_argument if [g] is disconnected. *)
val digest : t -> string

(** Flat compressed-sparse-row adjacency for hot paths.

    The simulation engines walk every port of every vertex every round;
    the nested [(vertex * port) array array] representation costs a
    pointer chase and a tuple load per step.  [Csr] packs the same
    adjacency into three flat [int array]s (row offsets, far vertices,
    arrival ports), so the inner loops read contiguous unboxed memory
    and allocate nothing.  Building it is [O(n + m)], done once per
    run. *)
module Csr : sig
  type graph := t

  type t

  (** [of_graph g] packs [g]'s adjacency.  [g] is retained (shared, not
      copied) and recoverable via {!graph}. *)
  val of_graph : graph -> t

  val graph : t -> graph

  val order : t -> int

  val degree : t -> vertex -> int

  (** [neighbor_vertex t v p] / [neighbor_port t v p] are the
      components of [neighbor (graph t) v p].  For speed these are
      {e unchecked}: [v] must be a vertex and [p < degree t v], as the
      engines' own loop bounds guarantee. *)
  val neighbor_vertex : t -> vertex -> int -> vertex

  val neighbor_port : t -> vertex -> int -> int
end

val pp : Format.formatter -> t -> unit

(** Graphviz rendering: one undirected edge per link, with both port
    numbers as head/tail labels ([taillabel] = the lower endpoint's
    port).  [highlight] vertices are filled. *)
val to_dot :
  ?highlight:vertex list -> ?name:string -> t -> string
