(* Bits are packed MSB-first into bytes: bit [i] lives in byte [i/8] at
   mask [0x80 lsr (i mod 8)].  All operations preserve the invariant that
   padding bits beyond [len] in the last byte are zero, so [equal] and
   [compare] can work byte-wise after comparing lengths. *)

type t = { bytes : Bytes.t; len : int }

let empty = { bytes = Bytes.empty; len = 0 }

let length b = b.len

let byte_count len = (len + 7) / 8

let get b i =
  if i < 0 || i >= b.len then invalid_arg "Bitstring.get";
  let c = Char.code (Bytes.get b.bytes (i / 8)) in
  c land (0x80 lsr (i mod 8)) <> 0

let make len f =
  let bytes = Bytes.make (byte_count len) '\000' in
  for i = 0 to len - 1 do
    if f i then begin
      let j = i / 8 in
      let c = Char.code (Bytes.get bytes j) in
      Bytes.set bytes j (Char.chr (c lor (0x80 lsr (i mod 8))))
    end
  done;
  { bytes; len }

let of_bools l =
  let arr = Array.of_list l in
  make (Array.length arr) (fun i -> arr.(i))

let of_packed src len =
  if len < 0 || byte_count len > Bytes.length src then
    invalid_arg "Bitstring.of_packed";
  let bytes = Bytes.sub src 0 (byte_count len) in
  (* Clear padding bits so byte-wise equal/compare stay valid. *)
  if len mod 8 <> 0 then begin
    let last = byte_count len - 1 in
    let keep = 0xff lsl (8 - (len mod 8)) land 0xff in
    Bytes.set bytes last (Char.chr (Char.code (Bytes.get bytes last) land keep))
  end;
  { bytes; len }

let to_bools b = List.init b.len (get b)

let to_packed b = Bytes.sub b.bytes 0 (byte_count b.len)

let of_string s =
  make (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | _ -> invalid_arg "Bitstring.of_string")

let to_string b = String.init b.len (fun i -> if get b i then '1' else '0')

let append a b =
  if a.len = 0 then b
  else if b.len = 0 then a
  else
    make (a.len + b.len) (fun i ->
        if i < a.len then get a i else get b (i - a.len))

let concat l = List.fold_left append empty l

let sub b pos len =
  if pos < 0 || len < 0 || pos + len > b.len then invalid_arg "Bitstring.sub";
  make len (fun i -> get b (pos + i))

let equal a b = a.len = b.len && Bytes.equal a.bytes b.bytes

let compare a b =
  (* Lexicographic on bits, with a strict prefix ordered first. *)
  let n = min a.len b.len in
  let rec go i =
    if i = n then Stdlib.compare a.len b.len
    else
      match (get a i, get b i) with
      | false, true -> -1
      | true, false -> 1
      | _ -> go (i + 1)
  in
  go 0

let pp fmt b = Format.pp_print_string fmt (to_string b)
