(** Immutable sequences of bits.

    Advice in the paper is a single binary string given to every node; its
    length is the complexity measure, so this module tracks lengths exactly
    (in bits, not bytes). Bits are indexed from 0; the textual form writes
    bit 0 first. *)

type t

(** The empty bitstring. *)
val empty : t

(** Number of bits. *)
val length : t -> int

(** [get b i] is bit [i]. @raise Invalid_argument if out of range. *)
val get : t -> int -> bool

(** [of_bools l] has the bits of [l] in order. *)
val of_bools : bool list -> t

(** [of_packed bytes len] adopts [len] bits packed MSB-first in [bytes]
    (copied; trailing padding bits beyond [len] are cleared).  The fast
    construction path for {!Writer}. *)
val of_packed : Bytes.t -> int -> t

(** [to_bools b] lists the bits in order. *)
val to_bools : t -> bool list

(** [to_packed b] is the bits packed MSB-first into [⌈length/8⌉] bytes
    (padding bits clear) — the inverse of {!of_packed}, and the fast
    path for binary file codecs. *)
val to_packed : t -> Bytes.t

(** [of_string "0110"] parses a textual bitstring.
    @raise Invalid_argument on characters other than ['0']/['1']. *)
val of_string : string -> t

(** Textual form, e.g. ["0110"]. *)
val to_string : t -> string

(** [append a b] concatenates. *)
val append : t -> t -> t

(** [concat l] concatenates in order. *)
val concat : t list -> t

(** [sub b pos len] is the slice of [len] bits starting at [pos].
    @raise Invalid_argument if the range is invalid. *)
val sub : t -> int -> int -> t

val equal : t -> t -> bool

(** Lexicographic, shorter-prefix-first order. *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
