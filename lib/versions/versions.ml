(* The one place a format stamp or a cache-key derivation may live.

   shadescheck's version-drift rule enforces the boundary: outside
   lib/versions, a value binding named [*_version] (or [version],
   [format_version], [schema_version]) bound to an integer literal, or
   a string literal spelling a key-grammar marker ("/v%d", "/elect-",
   "/verify-"), is an error.  Bumping a stamp here is therefore the
   whole bump: no stale copy of a derivation can survive elsewhere. *)

let trace_format = 2
let store_schema = 2
let wire_protocol = 1
let advice = 1
let result = 1
let lint_report = 1

let shtr_magic = "SHTR"

(* --- cache-key derivations (DESIGN §13) ---

   advice  ::= <canon-digest>/<task>/v<advice>
   elect   ::= <enc-digest>/<task>/elect-<engine>/v<advice>.<result>
   verify  ::= <enc-digest>/<task>/verify-<outputs-md5>/v<result>

   Tasks and engines arrive as their wire spellings; this module knows
   nothing of the election library, so the derivations stay dependency
   free and every layer (daemon, tests, offline tools) can reproduce a
   key byte-for-byte. *)

let advice_key ~digest ~task = Printf.sprintf "%s/%s/v%d" digest task advice

let elect_key ~digest ~task ~engine =
  Printf.sprintf "%s/%s/elect-%s/v%d.%d" digest task engine advice result

let verify_key ~digest ~task ~outputs_digest =
  Printf.sprintf "%s/%s/verify-%s/v%d" digest task outputs_digest result
