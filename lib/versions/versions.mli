(** The declarative registry of every format/version stamp in the
    repository, and of the cache-key derivations that embed them.

    Everything the gating story relies on — byte-identical traces,
    content-addressed caches, versioned stores — ultimately hangs on a
    handful of small integers: bump one without re-deriving every key
    that folds it in and a stale cache entry can be served across a
    behavioural change.  This module is the single source of truth;
    shadescheck's [version-drift] rule rejects any stamp literal or
    key-derivation string spelled outside [lib/versions], so a bump
    here can never silently leave a stale derivation behind.

    {2 Stamps} *)

val trace_format : int
(** SHTR binary trace layout ({!Shades_trace.Codec.format_version} is
    this value re-exported).  Bump on any layout change. *)

val store_schema : int
(** Results-store JSON schema ({!Shades_runtime.Store.schema_version}
    re-exports it).  Bump when the record or manifest shape changes. *)

val wire_protocol : int
(** The daemon's framed-JSONL protocol
    ({!Shades_server.Protocol.version} re-exports it). *)

val advice : int
(** Oracle-output stamp, folded into advice {e and} elect keys: bump
    whenever any scheme's oracle output changes for a fixed graph. *)

val result : int
(** Engine/referee stamp, folded into elect {e and} verify keys: bump
    whenever an engine's execution, a verifier's semantics, or the
    stored result JSON shape changes — cached results are replayed
    verbatim as replies, so their format is part of the contract. *)

val lint_report : int
(** shadescheck's JSON findings-report schema. *)

val shtr_magic : string
(** The four magic bytes opening every SHTR trace file. *)

(** {2 Key derivations}

    The full cache-key grammar (DESIGN §13); [task] and [engine] are
    the wire spellings ([s]/[pe]/[ppe]/[cppe], [sync]/[sharded]/
    [async-s<seed>]).  Every construction of a cache key goes through
    these three functions — the [version-drift] rule flags any
    re-derivation elsewhere. *)

val advice_key : digest:string -> task:string -> string
(** [<canon-digest>/<task>/v<advice>] — keyed on the {e canonical}
    digest, because advice is isomorphism-invariant. *)

val elect_key : digest:string -> task:string -> engine:string -> string
(** [<enc-digest>/<task>/elect-<engine>/v<advice>.<result>] — keyed on
    the digest of the graph {e as submitted}, because per-node outputs
    are indexed by the submitter's vertex numbering. *)

val verify_key : digest:string -> task:string -> outputs_digest:string -> string
(** [<enc-digest>/<task>/verify-<outputs_digest>/v<result>]. *)
