(** Textual graph specifications, shared by the CLI and the daemon.

    One grammar for naming a port-labeled graph from the outside:
    generator specs ([ring:6], [path:5], [star:7], [clique:4],
    [random:<seed>,<n>,<extra>], [line-ports:<p1>,<q1>,...]) and the
    paper's lower-bound families ([gclass:<delta>,<k>,<i>],
    [uclass:<delta>,<k>,<sigma>], [jclass:<mu>,<k>,<zeff>]).  The
    [random] spec is deterministic: the seed is part of the spec, so a
    spec always denotes one graph. *)

val grammar : string
(** Human-readable summary of the accepted forms (for error messages
    and [--help] text). *)

val parse : string -> (Shades_graph.Port_graph.t, string) result
(** Parse and build; [Error] carries the reason (unknown form, bad
    arity, or a family/generator precondition violation). *)

val parse_exn : string -> Shades_graph.Port_graph.t
(** {!parse}, raising [Failure] — the CLI entry point, where cmdliner
    turns the exception into a usage error. *)
