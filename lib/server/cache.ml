module Metrics = Shades_runtime.Metrics

(* Classic LRU: a hash table from key to node, nodes chained in a
   doubly-linked recency list ([first] most-recent, [last]
   least-recent).  No [Hashtbl.iter]/[fold] anywhere, so no unspecified
   iteration order can escape (shadescheck's hashtbl-order rule stays
   clean by construction).

   Behind the memory tier sits an optional *disk tier*: one file per
   key under [persist.dir], written atomically (temp file in the same
   directory, then [Unix.rename]), never evicted.  The memory LRU is a
   recency front; the disk store is the content-addressed ground truth
   that survives restarts.  All disk I/O happens outside the mutex —
   only the memory structures need it. *)

type 'a persist = {
  dir : string;
  encode : 'a -> string;
  decode : string -> ('a, string) result;
  max_bytes : int option;
}

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option;  (** towards [first] *)
  mutable next : 'a node option;  (** towards [last] *)
}

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  mutable first : 'a node option;
  mutable last : 'a node option;
  capacity : int;
  metrics : Metrics.t;
  name : string;
  mutable entries : int;
  persist : 'a persist option;
  tmp_seq : int Atomic.t;  (** uniquifies concurrent temp-file names *)
}

let counter t what = t.name ^ "_" ^ what

(* --- key -> file name ---

   Injective escaping: bytes outside [A-Za-z0-9._-] (and '%' itself)
   become "%XX".  Keys like "<hex>/pe/v1" therefore map to readable
   file names ("<hex>%2Fpe%2Fv1") and no two keys can collide. *)

let safe_char = function
  | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true
  | _ -> false

let file_of_key key =
  let buf = Buffer.create (String.length key + 8) in
  String.iter
    (fun c ->
      if safe_char c then Buffer.add_char buf c
      else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
    key;
  Buffer.contents buf

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    match Unix.mkdir dir 0o755 with
    | () -> ()
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(name = "cache") ?persist ~capacity ~metrics () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  Option.iter (fun p -> mkdir_p p.dir) persist;
  Metrics.set_gauge metrics (name ^ "_capacity") (float_of_int capacity);
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    first = None;
    last = None;
    capacity;
    metrics;
    name;
    entries = 0;
    persist;
    tmp_seq = Atomic.make 0;
  }

let capacity t = t.capacity
let persistent t = Option.is_some t.persist

(* list surgery; all callers hold [t.mutex] *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.first;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* memory-tier insertion; shared by [put] (which also writes through to
   disk) and disk-hit promotion (which must not write back) *)
let put_memory t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some old ->
          unlink t old;
          Hashtbl.remove t.table key;
          t.entries <- t.entries - 1
      | None -> ());
      (if t.entries >= t.capacity then
         (* evict the least-recently-used entry — from memory only; a
            persisted entry stays on disk and can be promoted back *)
         match t.last with
         | Some lru ->
             unlink t lru;
             Hashtbl.remove t.table lru.key;
             t.entries <- t.entries - 1;
             Metrics.incr t.metrics (counter t "evictions")
         | None -> assert false (* entries >= capacity >= 1 *));
      let node = { key; value; prev = None; next = None } in
      push_front t node;
      Hashtbl.replace t.table key node;
      t.entries <- t.entries + 1;
      Metrics.set_gauge t.metrics (counter t "entries") (float_of_int t.entries))

(* --- disk tier; all I/O outside the mutex --- *)

(* in-flight temp files of this or a sibling daemon: never evict them
   (a concurrent rename would fail), never count them (transient) *)
let is_tmp name =
  let rec has_sub i =
    i + 5 <= String.length name
    && (String.sub name i 5 = ".tmp." || has_sub (i + 1))
  in
  has_sub 0

(* Trim the tier directory to [budget] bytes by deleting files in
   oldest-mtime order ((mtime, name) — the name breaks ties
   deterministically), never the file just written.  Best-effort
   throughout: a file another daemon already evicted, or a stat that
   races a rename, is skipped, not an error. *)
let enforce_budget t p ~keep budget =
  match Sys.readdir p.dir with
  | exception Sys_error _ -> ()
  | names ->
      let files =
        List.filter_map
          (fun name ->
            if is_tmp name then None
            else
              let path = Filename.concat p.dir name in
              match Unix.stat path with
              | exception Unix.Unix_error _ -> None
              | st when st.Unix.st_kind = Unix.S_REG ->
                  Some (st.Unix.st_mtime, name, st.Unix.st_size)
              | _ -> None)
          (Array.to_list names)
      in
      let total =
        List.fold_left (fun acc (_, _, size) -> acc + size) 0 files
      in
      let oldest_first =
        List.sort
          (fun (ma, na, _) (mb, nb, _) ->
            match Float.compare ma mb with
            | 0 -> String.compare na nb
            | c -> c)
          files
      in
      ignore
        (List.fold_left
           (fun remaining (_, name, size) ->
             if remaining <= budget || name = keep then remaining
             else
               match Sys.remove (Filename.concat p.dir name) with
               | () ->
                   Metrics.incr t.metrics (counter t "disk_evictions");
                   remaining - size
               | exception Sys_error _ -> remaining)
           total oldest_first)

let disk_write t p key value =
  let name = file_of_key key in
  let file = Filename.concat p.dir name in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" file (Unix.getpid ())
      (Atomic.fetch_and_add t.tmp_seq 1)
  in
  match
    Out_channel.with_open_bin tmp (fun oc -> output_string oc (p.encode value));
    (* write-then-rename: readers see either the old file or the new
       one, never a torn write — even across daemons sharing the dir *)
    Unix.rename tmp file
  with
  | () ->
      Metrics.incr t.metrics (counter t "disk_writes");
      Option.iter (enforce_budget t p ~keep:name) p.max_bytes
  | exception Sys_error _ | exception Unix.Unix_error _ ->
      (* a full or read-only disk degrades to a memory-only cache *)
      (try Sys.remove tmp with Sys_error _ -> ());
      Metrics.incr t.metrics (counter t "disk_errors")

let disk_find t p key =
  let file = Filename.concat p.dir (file_of_key key) in
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error _ -> None
  | data -> (
      match p.decode data with
      | Ok v ->
          Metrics.incr t.metrics (counter t "disk_hits");
          Some v
      | Error _ | (exception _) ->
          (* a corrupted or truncated file (killed writer, bit rot) is
             a miss, never a crash; the next put overwrites it *)
          Metrics.incr t.metrics (counter t "disk_invalid");
          None)

let find t key =
  let from_memory =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some node ->
            unlink t node;
            push_front t node;
            Metrics.incr t.metrics (counter t "hits");
            Some node.value
        | None -> None)
  in
  match (from_memory, t.persist) with
  | (Some _ as hit), _ -> hit
  | None, Some p -> (
      match disk_find t p key with
      | Some v ->
          (* promote without writing back — the file is already there *)
          put_memory t key v;
          Some v
      | None ->
          Metrics.incr t.metrics (counter t "misses");
          None)
  | None, None ->
      Metrics.incr t.metrics (counter t "misses");
      None

let put t key value =
  put_memory t key value;
  Option.iter (fun p -> disk_write t p key value) t.persist

let find_or_compute t key ~compute =
  match find t key with
  | Some v -> (v, true)
  | None ->
      (* computed outside the lock: a slow compute must not serialize
         every other key's lookups.  Two racing misses on one key both
         compute; last [put] wins — harmless because computes are
         deterministic functions of the key. *)
      let v = compute () in
      put t key v;
      (v, false)

let entries t = locked t (fun () -> t.entries)
