module Metrics = Shades_runtime.Metrics

(* Classic LRU: a hash table from key to node, nodes chained in a
   doubly-linked recency list ([first] most-recent, [last]
   least-recent).  No [Hashtbl.iter]/[fold] anywhere, so no unspecified
   iteration order can escape (shadescheck's hashtbl-order rule stays
   clean by construction). *)

type 'a node = {
  key : string;
  value : 'a;
  mutable prev : 'a node option;  (** towards [first] *)
  mutable next : 'a node option;  (** towards [last] *)
}

type 'a t = {
  mutex : Mutex.t;
  table : (string, 'a node) Hashtbl.t;
  mutable first : 'a node option;
  mutable last : 'a node option;
  capacity : int;
  metrics : Metrics.t;
  name : string;
  mutable entries : int;
}

let counter t what = t.name ^ "_" ^ what

let create ?(name = "cache") ~capacity ~metrics () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (2 * capacity);
    first = None;
    last = None;
    capacity;
    metrics;
    name;
    entries = 0;
  }

let capacity t = t.capacity

(* list surgery; all callers hold [t.mutex] *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.first <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.first;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
          unlink t node;
          push_front t node;
          Metrics.incr t.metrics (counter t "hits");
          Some node.value
      | None ->
          Metrics.incr t.metrics (counter t "misses");
          None)

let put t key value =
  locked t (fun () ->
      (match Hashtbl.find_opt t.table key with
      | Some old ->
          unlink t old;
          Hashtbl.remove t.table key;
          t.entries <- t.entries - 1
      | None -> ());
      (if t.entries >= t.capacity then
         (* evict the least-recently-used entry *)
         match t.last with
         | Some lru ->
             unlink t lru;
             Hashtbl.remove t.table lru.key;
             t.entries <- t.entries - 1;
             Metrics.incr t.metrics (counter t "evictions")
         | None -> assert false (* entries >= capacity >= 1 *));
      let node = { key; value; prev = None; next = None } in
      push_front t node;
      Hashtbl.replace t.table key node;
      t.entries <- t.entries + 1;
      Metrics.set_gauge t.metrics (counter t "entries") (float_of_int t.entries))

let find_or_compute t key ~compute =
  match find t key with
  | Some v -> (v, true)
  | None ->
      (* computed outside the lock: a slow compute must not serialize
         every other key's lookups.  Two racing misses on one key both
         compute; last [put] wins — harmless because computes are
         deterministic functions of the key. *)
      let v = compute () in
      put t key v;
      (v, false)

let entries t = locked t (fun () -> t.entries)
