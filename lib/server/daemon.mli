(** The socket front half of the daemon: listen, accept, frame, reply.

    All request semantics live in {!Service}; this module only moves
    frames between sockets and [Service.handle].  Connections are
    served on a persistent {!Shades_runtime.Pool.Crew}, one submitted
    task per accepted connection, so [domains] concurrent clients make
    progress independently while the advice cache (mutex-guarded inside
    the service) is shared between them.

    Error discipline per connection, mirroring {!Protocol.frame}:
    a malformed {e frame} gets a [bad-frame] error reply and the
    connection is closed (the byte stream cannot be resynchronized);
    a well-framed but unparsable {e payload} gets [bad-json] and the
    connection survives; everything else is [Service.handle]'s problem
    and always produces a reply. *)

val socket_of_endpoint : Protocol.endpoint -> Unix.file_descr
(** A bound (not yet listening) socket.  For [Unix_path] a stale socket
    file is removed first; for [Tcp] the address is resolved and
    [SO_REUSEADDR] set.  Raises [Unix.Unix_error] on bind failure and
    [Failure] on resolution failure. *)

val serve_connection :
  max_frame:int ->
  log:(string -> unit) ->
  stop:bool Atomic.t ->
  Service.t ->
  Unix.file_descr ->
  unit
(** Serve one accepted connection to completion (EOF, framing error, or
    a [shutdown] request — which also sets [stop]).  Always closes the
    descriptor; transport errors are logged, never raised.  Exposed for
    tests that want the frame loop without a listener. *)

val run :
  ?domains:int ->
  ?max_frame:int ->
  ?log:(string -> unit) ->
  ?http:Protocol.endpoint ->
  Protocol.endpoint ->
  Service.t ->
  unit
(** Bind, listen and serve until a [shutdown] request arrives.  Blocks
    the calling domain.  [domains] sizes the connection crew (default:
    the machine's recommended domain count), [max_frame] bounds request
    frames (default {!Protocol.default_max_frame}), [log] receives
    one-line operational messages (default: silence — the library never
    writes to stdout).

    [http] opens a second listener — the observability plane — on the
    same select loop: connections accepted there are served by
    {!Http.handle} ([GET /metrics], [GET /healthz]) on the same
    connection crew.  The JSONL endpoint and the HTTP endpoint must
    differ.

    [run] also installs a dedicated batch crew as the service's
    fan-out hook ({!Service.set_parallel}), so one [batch] frame's
    items execute concurrently.  The batch crew is separate from the
    connection crew on purpose: a connection handler blocking in the
    fan-out on its own crew would deadlock at low domain counts.

    On exit both listening sockets are closed, Unix socket files are
    unlinked, the fan-out hook is removed, and both crews are
    joined. *)
