module Json = Shades_json.Json
module Port_graph = Shades_graph.Port_graph
module Bitstring = Shades_bits.Bitstring
module Task = Shades_election.Task
module Scheme = Shades_election.Scheme
module Verify = Shades_election.Verify
module Select_by_view = Shades_election.Select_by_view
module Map_advice = Shades_election.Map_advice
module Metrics = Shades_runtime.Metrics
module Store = Shades_runtime.Store
module Trace = Shades_trace.Trace
module Codec = Shades_trace.Codec
module Replay = Shades_trace.Replay

(* Versions folded into the cache key: bump [advice_version] whenever
   any scheme's oracle output changes for a fixed graph, so stale
   cached advice can never be served across a behavioural change. *)
let advice_version = 1

let default_cache_capacity = 256

let cache_key ~digest ~task =
  Printf.sprintf "%s/%s/v%d" digest (Task.kind_to_string task) advice_version

type advice_entry = { advice : Bitstring.t; rounds : int }

type t = {
  metrics : Metrics.t;
  advice : advice_entry Cache.t;
  memo : string Cache.t;
}

let create ?(cache_capacity = default_cache_capacity) () =
  let metrics = Metrics.create () in
  {
    metrics;
    advice = Cache.create ~name:"advice_cache" ~capacity:cache_capacity ~metrics ();
    memo = Cache.create ~name:"memo" ~capacity:(max cache_capacity 1024) ~metrics ();
  }

let metrics t = t.metrics

(* --- per-task dispatch ---

   One existential record per task bundles the minimum-time scheme with
   its referee and the JSON codec of its payload, so every endpoint
   dispatches through the same four-way table. *)

type impl =
  | Impl : {
      scheme : 'p Task.answer Scheme.t;
      verify :
        Port_graph.t -> 'p Task.answer array -> (Port_graph.vertex, string) result;
      payload_to_json : 'p -> Json.t;
      payload_of_json : Json.t -> ('p, string) result;
    }
      -> impl

let impl_of_task = function
  | Task.S ->
      Impl
        {
          scheme = Select_by_view.scheme;
          verify = Verify.selection;
          payload_to_json = (fun () -> Json.String "follower");
          payload_of_json =
            (function
            | Json.String "follower" -> Ok ()
            | _ -> Error "S output must be \"leader\" or \"follower\"");
        }
  | Task.PE ->
      Impl
        {
          scheme = Map_advice.port_election;
          verify = Verify.port_election;
          payload_to_json = (fun p -> Json.Int p);
          payload_of_json =
            (function
            | Json.Int p -> Ok p
            | _ -> Error "PE output must be \"leader\" or a port number");
        }
  | Task.PPE ->
      Impl
        {
          scheme = Map_advice.port_path_election;
          verify = Verify.port_path_election;
          payload_to_json = (fun ps -> Json.List (List.map (fun p -> Json.Int p) ps));
          payload_of_json =
            (let rec ports acc = function
               | [] -> Ok (List.rev acc)
               | Json.Int p :: rest -> ports (p :: acc) rest
               | _ -> Error "PPE output must be \"leader\" or a port list"
             in
             function
             | Json.List l -> ports [] l
             | _ -> Error "PPE output must be \"leader\" or a port list");
        }
  | Task.CPPE ->
      Impl
        {
          scheme = Map_advice.complete_port_path_election;
          verify = Verify.complete_port_path_election;
          payload_to_json =
            (fun pairs ->
              Json.List
                (List.map
                   (fun (p, q) -> Json.List [ Json.Int p; Json.Int q ])
                   pairs));
          payload_of_json =
            (let rec pairs acc = function
               | [] -> Ok (List.rev acc)
               | Json.List [ Json.Int p; Json.Int q ] :: rest ->
                   pairs ((p, q) :: acc) rest
               | _ -> Error "CPPE output must be \"leader\" or a [p, q] pair list"
             in
             function
             | Json.List l -> pairs [] l
             | _ -> Error "CPPE output must be \"leader\" or a [p, q] pair list");
        }

let answer_to_json payload_to_json = function
  | Task.Leader -> Json.String "leader"
  | Task.Follower p -> payload_to_json p

let answer_of_json payload_of_json = function
  | Json.String "leader" -> Ok Task.Leader
  | j -> Result.map (fun p -> Task.Follower p) (payload_of_json j)

(* --- the advice cache --- *)

(* A cheap digest of the submitted (non-canonical) encoding, used only
   as a memo index in front of the canonical content address: repeated
   queries on byte-identical topologies skip even the canonicalization.
   The cache key itself is always [Port_graph.digest]. *)
let encoding_digest g =
  let bits = Port_graph.encode g in
  let payload =
    string_of_int (Bitstring.length bits)
    ^ ":"
    ^ Bytes.unsafe_to_string (Bitstring.to_packed bits)
  in
  Digest.to_hex (Digest.string payload)

let canonical_digest t g =
  match Cache.find t.memo (encoding_digest g) with
  | Some digest -> digest
  | None ->
      let digest =
        Metrics.time t.metrics "canonicalize" (fun () -> Port_graph.digest g)
      in
      Cache.put t.memo (encoding_digest g) digest;
      digest

(* [advise_entry] is the one path to cached advice: every endpoint that
   needs advice funnels through it, so hit/miss/compute counters tell
   one coherent story. *)
let advise_entry t g task =
  let digest = canonical_digest t g in
  let key = cache_key ~digest ~task in
  let (Impl { scheme; _ }) = impl_of_task task in
  let entry, hit =
    Cache.find_or_compute t.advice key ~compute:(fun () ->
        Metrics.incr t.metrics "advise_computes";
        let canon, _ =
          Metrics.time t.metrics "canonicalize" (fun () -> Port_graph.canonical g)
        in
        let advice =
          Metrics.time t.metrics "oracle" (fun () -> scheme.Scheme.oracle canon)
        in
        let rounds =
          scheme.Scheme.rounds_of ~advice ~degree:(Port_graph.max_degree canon)
        in
        { advice; rounds })
  in
  (digest, entry, hit)

(* --- request plumbing --- *)

let error = Protocol.error_response

let member_exn what req =
  match Json.member what req with
  | Some v -> v
  | None -> failwith (Printf.sprintf "request needs a %S member" what)

let graph_exn req =
  match Protocol.graph_of_json (member_exn "graph" req) with
  | Ok g -> g
  | Error e -> failwith ("bad graph: " ^ e)

let task_exn req =
  match member_exn "task" req with
  | Json.String s -> (
      match Protocol.task_of_string s with
      | Ok k -> k
      | Error e -> failwith e)
  | _ -> failwith "\"task\" must be a string (s, pe, ppe, cppe)"

let graph_info g =
  Json.Obj
    [
      ("order", Json.Int (Port_graph.order g));
      ("size", Json.Int (Port_graph.size g));
      ("max_degree", Json.Int (Port_graph.max_degree g));
    ]

(* --- endpoints --- *)

let advise t req =
  let g = graph_exn req in
  let task = task_exn req in
  let digest, entry, cached = advise_entry t g task in
  Protocol.ok_response ~op:"advise"
    (Json.Obj
       [
         ("digest", Json.String digest);
         ("task", Json.String (Task.kind_to_string task));
         ("advice", Json.String (Bitstring.to_string entry.advice));
         ("advice_bits", Json.Int (Bitstring.length entry.advice));
         ("rounds", Json.Int entry.rounds);
         ("cached", Json.Bool cached);
         ("graph", graph_info g);
       ])

let elect t req =
  let g = graph_exn req in
  let task = task_exn req in
  (* "sharded" is the synchronous engine executed vertex-sharded across
     worker domains — same results, telemetry and traces, so it shares
     the sync path (cached advice included) and only the executor
     differs.  "async" is a semantic variant with its own path. *)
  let engine =
    match Json.member "engine" req with
    | None | Some (Json.String "sync") -> `Sync
    | Some (Json.String "sharded") ->
        let domains =
          match Json.member "domains" req with
          | Some (Json.Int d) when d >= 1 -> Some d
          | None -> None
          | Some _ -> failwith "\"domains\" must be a positive integer"
        in
        `Sharded domains
    | Some (Json.String "async") ->
        let seed =
          match Json.member "seed" req with
          | Some (Json.Int s) -> s
          | None -> 0
          | Some _ -> failwith "\"seed\" must be an integer"
        in
        `Async seed
    | Some _ ->
        failwith "\"engine\" must be \"sync\", \"sharded\" or \"async\""
  in
  let engine_name =
    match engine with
    | `Sync -> "sync"
    | `Sharded _ -> "sharded"
    | `Async seed -> Trace.engine_to_string (Trace.Async { seed })
  in
  let (Impl { scheme; verify; payload_to_json; _ }) = impl_of_task task in
  let messages = ref 0 in
  let on_round ~round:_ ~messages:m = messages := m in
  let digest, run, cached =
    match engine with
    | (`Sync | `Sharded _) as engine ->
        (* the sync path reuses the cached advice end-to-end: a warm
           election never recomputes the oracle *)
        let digest, entry, cached = advise_entry t g task in
        let run =
          Metrics.time t.metrics "elect" (fun () ->
              match engine with
              | `Sync ->
                  Scheme.run_with_advice ~on_round scheme g
                    ~advice:entry.advice
              | `Sharded domains ->
                  Scheme.run_sharded_with_advice ?domains ~on_round scheme g
                    ~advice:entry.advice)
        in
        (digest, run, cached)
    | `Async seed ->
        (* the α-synchronizer path exercises the full scheme (oracle
           included) — it pins schedules, not advice reuse *)
        let digest = canonical_digest t g in
        let run =
          Metrics.time t.metrics "elect" (fun () ->
              Scheme.run_async ~seed ~on_round scheme g)
        in
        (digest, run, false)
  in
  let verdict = verify g run.Scheme.outputs in
  Protocol.ok_response ~op:"elect"
    (Json.Obj
       [
         ("digest", Json.String digest);
         ("task", Json.String (Task.kind_to_string task));
         ("engine", Json.String engine_name);
         ("rounds", Json.Int run.Scheme.rounds);
         ("messages", Json.Int !messages);
         ("advice_bits", Json.Int run.Scheme.advice_bits);
         ("cached", Json.Bool cached);
         ("verified", Json.Bool (Result.is_ok verdict));
         ("leader",
          match verdict with Ok l -> Json.Int l | Error _ -> Json.Null);
         ("outputs",
          Json.List
            (Array.to_list
               (Array.map (answer_to_json payload_to_json) run.Scheme.outputs)));
         ("graph", graph_info g);
       ])

let verify_outputs t req =
  let g = graph_exn req in
  let task = task_exn req in
  let (Impl { verify; payload_of_json; _ }) = impl_of_task task in
  let outputs =
    match member_exn "outputs" req with
    | Json.List l ->
        List.map
          (fun j ->
            match answer_of_json payload_of_json j with
            | Ok a -> a
            | Error e -> failwith ("bad output: " ^ e))
          l
    | _ -> failwith "\"outputs\" must be a list (one answer per vertex)"
  in
  if List.length outputs <> Port_graph.order g then
    failwith
      (Printf.sprintf "expected %d outputs, got %d" (Port_graph.order g)
         (List.length outputs));
  let verdict =
    Metrics.time t.metrics "verify" (fun () -> verify g (Array.of_list outputs))
  in
  let digest = canonical_digest t g in
  Protocol.ok_response ~op:"verify"
    (Json.Obj
       ([
          ("digest", Json.String digest);
          ("task", Json.String (Task.kind_to_string task));
          ("valid", Json.Bool (Result.is_ok verdict));
        ]
       @
       match verdict with
       | Ok leader -> [ ("leader", Json.Int leader) ]
       | Error reason -> [ ("reason", Json.String reason) ]))

(* The incremental path (cf. Belenios's verify-diff): the client
   uploads a full SHTR recording and the server re-executes it through
   the deterministic engines, failing on the first divergent event. *)
let verify_trace t req =
  let blob =
    match member_exn "trace" req with
    | Json.String hex -> (
        match Protocol.hex_decode hex with
        | Ok blob -> blob
        | Error e -> failwith ("bad trace hex: " ^ e))
    | _ -> failwith "\"trace\" must be a hex string of an SHTR file"
  in
  let trace =
    match Codec.decode blob with
    | Ok tr -> tr
    | Error e -> failwith ("bad trace: " ^ e)
  in
  let label = trace.Trace.meta.Trace.label in
  let task_str, spec =
    match String.index_opt label ' ' with
    | Some i ->
        ( String.sub label 0 i,
          String.sub label (i + 1) (String.length label - i - 1) )
    | None ->
        failwith
          ("trace label is not \"task graph-spec\" (was it recorded by `trace \
            record`?): " ^ label)
  in
  let task =
    match Protocol.task_of_string task_str with
    | Ok k -> k
    | Error e -> failwith e
  in
  let g = Spec.parse_exn spec in
  let (Impl { scheme; _ }) = impl_of_task task in
  let exec emit =
    match trace.Trace.meta.Trace.engine with
    | Trace.Sync -> ignore (Scheme.run ~tracer:emit scheme g)
    | Trace.Async { seed } -> ignore (Scheme.run_async ~seed ~tracer:emit scheme g)
  in
  let outcome = Metrics.time t.metrics "replay" (fun () -> Replay.run trace exec) in
  Protocol.ok_response ~op:"verify-trace"
    (Json.Obj
       ([
          ("label", Json.String label);
          ("engine",
           Json.String (Trace.engine_to_string trace.Trace.meta.Trace.engine));
          ("events", Json.Int (Array.length trace.Trace.events));
          ("valid", Json.Bool (Result.is_ok outcome));
        ]
       @
       match outcome with
       | Ok () -> []
       | Error d -> [ ("divergence", Json.String (Replay.pp_divergence d)) ]))

let stats_json t =
  Json.Obj
    [
      ("protocol", Json.Int Protocol.version);
      ("advice_version", Json.Int advice_version);
      ("cache",
       Json.Obj
         [
           ("capacity", Json.Int (Cache.capacity t.advice));
           ("entries", Json.Int (Cache.entries t.advice));
         ]);
      ("counters",
       Json.Obj
         (List.map
            (fun (name, v) -> (name, Store.json_of_metric v))
            (Metrics.snapshot t.metrics)));
    ]

let stats t = Protocol.ok_response ~op:"stats" (stats_json t)

(* --- dispatch --- *)

type reaction = Reply of Json.t | Reply_and_stop of Json.t

let handle t req =
  Metrics.incr t.metrics "requests";
  let op =
    match Json.member "op" req with Some (Json.String op) -> Some op | _ -> None
  in
  match op with
  | None ->
      Reply (error ~code:"bad-request" "request needs a string \"op\" member")
  | Some "shutdown" ->
      Metrics.incr t.metrics "op_shutdown";
      Reply_and_stop
        (Protocol.ok_response ~op:"shutdown"
           (Json.Obj [ ("stopping", Json.Bool true) ]))
  | Some op ->
      let guarded f =
        match Metrics.time t.metrics ("op_" ^ op) f with
        | reply -> reply
        | exception Failure msg -> error ~code:"request-failed" msg
        | exception Invalid_argument msg -> error ~code:"request-failed" msg
      in
      Reply
        (match op with
        | "advise" -> guarded (fun () -> advise t req)
        | "elect" -> guarded (fun () -> elect t req)
        | "verify" -> guarded (fun () -> verify_outputs t req)
        | "verify-trace" -> guarded (fun () -> verify_trace t req)
        | "stats" -> guarded (fun () -> stats t)
        | op -> error ~code:"unknown-op" ("unknown op: " ^ op))
