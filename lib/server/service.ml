module Json = Shades_json.Json
module Port_graph = Shades_graph.Port_graph
module Bitstring = Shades_bits.Bitstring
module Task = Shades_election.Task
module Scheme = Shades_election.Scheme
module Verify = Shades_election.Verify
module Select_by_view = Shades_election.Select_by_view
module Map_advice = Shades_election.Map_advice
module Metrics = Shades_runtime.Metrics
module Store = Shades_runtime.Store
module Trace = Shades_trace.Trace
module Codec = Shades_trace.Codec
module Replay = Shades_trace.Replay

(* Versions folded into the cache keys — defined once in
   [Shades_versions.Versions] (bump [advice] whenever any scheme's
   oracle output changes for a fixed graph, [result] whenever an
   engine's execution, a verifier's semantics, or the stored result
   JSON shape changes; cached elect/verify results are replayed
   verbatim as replies, so their format is part of the contract).  The
   key grammar lives there too: shadescheck's version-drift rule
   rejects any re-derivation outside the registry. *)
module Versions = Shades_versions.Versions

let advice_version = Versions.advice
let result_version = Versions.result

let default_cache_capacity = 256

let cache_key ~digest ~task =
  Versions.advice_key ~digest ~task:(Task.kind_to_string task)

let elect_key ~digest ~task ~engine =
  Versions.elect_key ~digest ~task:(Task.kind_to_string task) ~engine

let verify_key ~digest ~task ~outputs_digest =
  Versions.verify_key ~digest ~task:(Task.kind_to_string task) ~outputs_digest

type advice_entry = { advice : Bitstring.t; rounds : int }

type t = {
  metrics : Metrics.t;
  advice : advice_entry Cache.t;
  results : Json.t Cache.t;
  memo : string Cache.t;
  cache_dir : string option;
  started_ns : int;
  mutable parallel : ((unit -> unit) array -> unit) option;
      (** batch fan-out, installed by the daemon (a crew's [run_all]);
          [None] executes batch items sequentially *)
}

(* --- disk-tier codecs ---

   Values are stored as the same JSON dialect the wire speaks, so a
   cache directory is inspectable with standard tools.  Decoders are
   total: any unreadable file is an [Error] (counted by the cache as
   [disk_invalid]) and behaves as a miss. *)

let advice_persist ?max_bytes dir =
  {
    Cache.max_bytes;
    dir = Filename.concat dir "advice";
    encode =
      (fun { advice; rounds } ->
        Json.to_string
          (Json.Obj
             [
               ("advice", Json.String (Bitstring.to_string advice));
               ("rounds", Json.Int rounds);
             ]));
    decode =
      (fun data ->
        match Json.of_string data with
        | Error e -> Error e
        | Ok j -> (
            match (Json.member "advice" j, Json.member "rounds" j) with
            | Some (Json.String bits), Some (Json.Int rounds) -> (
                match Bitstring.of_string bits with
                | advice -> Ok { advice; rounds }
                | exception Invalid_argument e -> Error e)
            | _ -> Error "advice entry needs \"advice\" and \"rounds\""));
  }

let result_persist ?max_bytes dir =
  {
    Cache.max_bytes;
    dir = Filename.concat dir "results";
    encode = Json.to_string;
    decode = Json.of_string;
  }

let create ?(cache_capacity = default_cache_capacity) ?cache_dir
    ?cache_max_bytes () =
  let metrics = Metrics.create () in
  (* the byte budget bounds each tier directory independently *)
  let persist mk = Option.map (mk ?max_bytes:cache_max_bytes) cache_dir in
  {
    metrics;
    advice =
      Cache.create ~name:"advice_cache" ?persist:(persist advice_persist)
        ~capacity:cache_capacity ~metrics ();
    results =
      Cache.create ~name:"result_cache" ?persist:(persist result_persist)
        ~capacity:cache_capacity ~metrics ();
    memo = Cache.create ~name:"memo" ~capacity:(max cache_capacity 1024) ~metrics ();
    cache_dir;
    started_ns = Metrics.now_ns ();
    parallel = None;
  }

let metrics t = t.metrics
let cache_dir t = t.cache_dir
let set_parallel t parallel = t.parallel <- parallel

let uptime_seconds t =
  float_of_int (Metrics.now_ns () - t.started_ns) /. 1e9

(* --- per-task dispatch ---

   One existential record per task bundles the minimum-time scheme with
   its referee and the JSON codec of its payload, so every endpoint
   dispatches through the same four-way table. *)

type impl =
  | Impl : {
      scheme : 'p Task.answer Scheme.t;
      verify :
        Port_graph.t -> 'p Task.answer array -> (Port_graph.vertex, string) result;
      payload_to_json : 'p -> Json.t;
      payload_of_json : Json.t -> ('p, string) result;
    }
      -> impl

let impl_of_task = function
  | Task.S ->
      Impl
        {
          scheme = Select_by_view.scheme;
          verify = Verify.selection;
          payload_to_json = (fun () -> Json.String "follower");
          payload_of_json =
            (function
            | Json.String "follower" -> Ok ()
            | _ -> Error "S output must be \"leader\" or \"follower\"");
        }
  | Task.PE ->
      Impl
        {
          scheme = Map_advice.port_election;
          verify = Verify.port_election;
          payload_to_json = (fun p -> Json.Int p);
          payload_of_json =
            (function
            | Json.Int p -> Ok p
            | _ -> Error "PE output must be \"leader\" or a port number");
        }
  | Task.PPE ->
      Impl
        {
          scheme = Map_advice.port_path_election;
          verify = Verify.port_path_election;
          payload_to_json = (fun ps -> Json.List (List.map (fun p -> Json.Int p) ps));
          payload_of_json =
            (let rec ports acc = function
               | [] -> Ok (List.rev acc)
               | Json.Int p :: rest -> ports (p :: acc) rest
               | _ -> Error "PPE output must be \"leader\" or a port list"
             in
             function
             | Json.List l -> ports [] l
             | _ -> Error "PPE output must be \"leader\" or a port list");
        }
  | Task.CPPE ->
      Impl
        {
          scheme = Map_advice.complete_port_path_election;
          verify = Verify.complete_port_path_election;
          payload_to_json =
            (fun pairs ->
              Json.List
                (List.map
                   (fun (p, q) -> Json.List [ Json.Int p; Json.Int q ])
                   pairs));
          payload_of_json =
            (let rec pairs acc = function
               | [] -> Ok (List.rev acc)
               | Json.List [ Json.Int p; Json.Int q ] :: rest ->
                   pairs ((p, q) :: acc) rest
               | _ -> Error "CPPE output must be \"leader\" or a [p, q] pair list"
             in
             function
             | Json.List l -> pairs [] l
             | _ -> Error "CPPE output must be \"leader\" or a [p, q] pair list");
        }

let answer_to_json payload_to_json = function
  | Task.Leader -> Json.String "leader"
  | Task.Follower p -> payload_to_json p

let answer_of_json payload_of_json = function
  | Json.String "leader" -> Ok Task.Leader
  | j -> Result.map (fun p -> Task.Follower p) (payload_of_json j)

(* --- the advice cache --- *)

(* A cheap digest of the submitted (non-canonical) encoding, used as a
   memo index in front of the canonical content address (repeated
   queries on byte-identical topologies skip even canonicalization) and
   as the representation-bound half of the elect/verify result keys:
   advice is isomorphism-invariant, but per-node outputs are indexed by
   the vertices of the graph as submitted, so full results must never
   be shared between isomorphic renumberings. *)
let encoding_digest g =
  let bits = Port_graph.encode g in
  let payload =
    string_of_int (Bitstring.length bits)
    ^ ":"
    ^ Bytes.unsafe_to_string (Bitstring.to_packed bits)
  in
  Digest.to_hex (Digest.string payload)

let canonical_digest t g =
  match Cache.find t.memo (encoding_digest g) with
  | Some digest -> digest
  | None ->
      let digest =
        Metrics.time t.metrics "canonicalize" (fun () -> Port_graph.digest g)
      in
      Cache.put t.memo (encoding_digest g) digest;
      digest

(* [advise_entry] is the one path to cached advice: every endpoint that
   needs advice funnels through it, so hit/miss/compute counters tell
   one coherent story. *)
let advise_entry t g task =
  let digest = canonical_digest t g in
  let key = cache_key ~digest ~task in
  let (Impl { scheme; _ }) = impl_of_task task in
  let entry, hit =
    Cache.find_or_compute t.advice key ~compute:(fun () ->
        Metrics.incr t.metrics "advise_computes";
        let canon, _ =
          Metrics.time t.metrics "canonicalize" (fun () -> Port_graph.canonical g)
        in
        let advice =
          Metrics.time t.metrics "oracle" (fun () -> scheme.Scheme.oracle canon)
        in
        let rounds =
          scheme.Scheme.rounds_of ~advice ~degree:(Port_graph.max_degree canon)
        in
        { advice; rounds })
  in
  (digest, entry, hit)

(* --- request plumbing --- *)

let error = Protocol.error_response

let member_exn what req =
  match Json.member what req with
  | Some v -> v
  | None -> failwith (Printf.sprintf "request needs a %S member" what)

let graph_exn req =
  match Protocol.graph_of_json (member_exn "graph" req) with
  | Ok g -> g
  | Error e -> failwith ("bad graph: " ^ e)

let task_exn req =
  match member_exn "task" req with
  | Json.String s -> (
      match Protocol.task_of_string s with
      | Ok k -> k
      | Error e -> failwith e)
  | _ -> failwith "\"task\" must be a string (s, pe, ppe, cppe)"

let graph_info g =
  Json.Obj
    [
      ("order", Json.Int (Port_graph.order g));
      ("size", Json.Int (Port_graph.size g));
      ("max_degree", Json.Int (Port_graph.max_degree g));
    ]

(* replace an existing member in place (order preserved) / append one *)
let with_member name value = function
  | Json.Obj members ->
      Json.Obj
        (List.map (fun (n, v) -> if n = name then (n, value) else (n, v)) members)
  | j -> j

let append_member name value = function
  | Json.Obj members -> Json.Obj (members @ [ (name, value) ])
  | j -> j

(* --- endpoints --- *)

let advise t req =
  let g = graph_exn req in
  let task = task_exn req in
  let digest, entry, cached = advise_entry t g task in
  if cached then Metrics.incr t.metrics "computes_avoided";
  Protocol.ok_response ~op:"advise"
    (Json.Obj
       [
         ("digest", Json.String digest);
         ("task", Json.String (Task.kind_to_string task));
         ("advice", Json.String (Bitstring.to_string entry.advice));
         ("advice_bits", Json.Int (Bitstring.length entry.advice));
         ("rounds", Json.Int entry.rounds);
         ("cached", Json.Bool cached);
         ("graph", graph_info g);
       ])

let elect t req =
  let g = graph_exn req in
  let task = task_exn req in
  (* "sharded" is the synchronous engine executed vertex-sharded across
     worker domains — same results, telemetry and traces, so it shares
     the sync path (cached advice included) and only the executor
     differs.  "async" is a semantic variant with its own path. *)
  let engine =
    match Json.member "engine" req with
    | None | Some (Json.String "sync") -> `Sync
    | Some (Json.String "sharded") ->
        let domains =
          match Json.member "domains" req with
          | Some (Json.Int d) when d >= 1 -> Some d
          | None -> None
          | Some _ -> failwith "\"domains\" must be a positive integer"
        in
        `Sharded domains
    | Some (Json.String "async") ->
        let seed =
          match Json.member "seed" req with
          | Some (Json.Int s) -> s
          | None -> 0
          | Some _ -> failwith "\"seed\" must be an integer"
        in
        `Async seed
    | Some _ ->
        failwith "\"engine\" must be \"sync\", \"sharded\" or \"async\""
  in
  let engine_name =
    match engine with
    | `Sync -> "sync"
    | `Sharded _ -> "sharded"
    | `Async seed -> Trace.engine_to_string (Trace.Async { seed })
  in
  (* The result key: every engine is deterministic (async per seed), so
     the whole reply is a pure function of (submitted encoding, task,
     engine, versions) and can be served from the result cache without
     touching oracle or engine.  The sharded engine is observationally
     identical to sync at any domain count, but echoes a different
     engine name, so it gets its own key; the domain count itself is
     deliberately absent. *)
  let result_engine =
    match engine with
    | `Sync -> "sync"
    | `Sharded _ -> "sharded"
    | `Async seed -> Printf.sprintf "async-s%d" seed
  in
  let key =
    elect_key ~digest:(encoding_digest g) ~task ~engine:result_engine
  in
  let result, result_cached =
    Cache.find_or_compute t.results key ~compute:(fun () ->
        Metrics.incr t.metrics "elect_computes";
        let (Impl { scheme; verify; payload_to_json; _ }) = impl_of_task task in
        let messages = ref 0 in
        let on_round ~round:_ ~messages:m = messages := m in
        let digest, run, cached =
          match engine with
          | (`Sync | `Sharded _) as engine ->
              (* the sync path reuses the cached advice end-to-end: a warm
                 election never recomputes the oracle *)
              let digest, entry, cached = advise_entry t g task in
              let run =
                Metrics.time t.metrics "elect" (fun () ->
                    match engine with
                    | `Sync ->
                        Scheme.run_with_advice ~on_round scheme g
                          ~advice:entry.advice
                    | `Sharded domains ->
                        Scheme.run_sharded_with_advice ?domains ~on_round scheme g
                          ~advice:entry.advice)
              in
              (digest, run, cached)
          | `Async seed ->
              (* the α-synchronizer path exercises the full scheme (oracle
                 included) — it pins schedules, not advice reuse *)
              let digest = canonical_digest t g in
              let run =
                Metrics.time t.metrics "elect" (fun () ->
                    Scheme.run_async ~seed ~on_round scheme g)
              in
              (digest, run, false)
        in
        let verdict = verify g run.Scheme.outputs in
        Json.Obj
          [
            ("digest", Json.String digest);
            ("task", Json.String (Task.kind_to_string task));
            ("engine", Json.String engine_name);
            ("rounds", Json.Int run.Scheme.rounds);
            ("messages", Json.Int !messages);
            ("advice_bits", Json.Int run.Scheme.advice_bits);
            ("cached", Json.Bool cached);
            ("verified", Json.Bool (Result.is_ok verdict));
            ("leader",
             match verdict with Ok l -> Json.Int l | Error _ -> Json.Null);
            ("outputs",
             Json.List
               (Array.to_list
                  (Array.map (answer_to_json payload_to_json) run.Scheme.outputs)));
            ("graph", graph_info g);
          ])
  in
  if result_cached then Metrics.incr t.metrics "computes_avoided";
  (* a stored result carries the advice-cache verdict of its compute
     time; a full-result hit ran nothing at all, so [cached] is
     overridden — and [result_cached] (never stored) says which tier
     answered *)
  let result =
    if result_cached then with_member "cached" (Json.Bool true) result
    else result
  in
  Protocol.ok_response ~op:"elect"
    (append_member "result_cached" (Json.Bool result_cached) result)

let verify_outputs t req =
  let g = graph_exn req in
  let task = task_exn req in
  let outputs_json = member_exn "outputs" req in
  (* keyed on the re-rendered parse tree, so two spellings of the same
     JSON (whitespace, escapes) share an entry *)
  let outputs_digest = Digest.to_hex (Digest.string (Json.to_string outputs_json)) in
  let key =
    verify_key ~digest:(encoding_digest g) ~task ~outputs_digest
  in
  let result, cached =
    Cache.find_or_compute t.results key ~compute:(fun () ->
        Metrics.incr t.metrics "verify_computes";
        let (Impl { verify; payload_of_json; _ }) = impl_of_task task in
        let outputs =
          match outputs_json with
          | Json.List l ->
              List.map
                (fun j ->
                  match answer_of_json payload_of_json j with
                  | Ok a -> a
                  | Error e -> failwith ("bad output: " ^ e))
                l
          | _ -> failwith "\"outputs\" must be a list (one answer per vertex)"
        in
        if List.length outputs <> Port_graph.order g then
          failwith
            (Printf.sprintf "expected %d outputs, got %d" (Port_graph.order g)
               (List.length outputs));
        let verdict =
          Metrics.time t.metrics "verify" (fun () ->
              verify g (Array.of_list outputs))
        in
        let digest = canonical_digest t g in
        Json.Obj
          ([
             ("digest", Json.String digest);
             ("task", Json.String (Task.kind_to_string task));
             ("valid", Json.Bool (Result.is_ok verdict));
           ]
          @
          match verdict with
          | Ok leader -> [ ("leader", Json.Int leader) ]
          | Error reason -> [ ("reason", Json.String reason) ]))
  in
  if cached then Metrics.incr t.metrics "computes_avoided";
  Protocol.ok_response ~op:"verify"
    (append_member "cached" (Json.Bool cached) result)

(* The incremental path (cf. Belenios's verify-diff): the client
   uploads a full SHTR recording and the server re-executes it through
   the deterministic engines, failing on the first divergent event.
   Deliberately uncached: the blob-sized key would bloat the store and
   repeat uploads are rare. *)
let verify_trace t req =
  let blob =
    match member_exn "trace" req with
    | Json.String hex -> (
        match Protocol.hex_decode hex with
        | Ok blob -> blob
        | Error e -> failwith ("bad trace hex: " ^ e))
    | _ -> failwith "\"trace\" must be a hex string of a shades trace (.shtr) file"
  in
  let trace =
    match Codec.decode blob with
    | Ok tr -> tr
    | Error e -> failwith ("bad trace: " ^ e)
  in
  let label = trace.Trace.meta.Trace.label in
  let task_str, spec =
    match String.index_opt label ' ' with
    | Some i ->
        ( String.sub label 0 i,
          String.sub label (i + 1) (String.length label - i - 1) )
    | None ->
        failwith
          ("trace label is not \"task graph-spec\" (was it recorded by `trace \
            record`?): " ^ label)
  in
  let task =
    match Protocol.task_of_string task_str with
    | Ok k -> k
    | Error e -> failwith e
  in
  let g = Spec.parse_exn spec in
  let (Impl { scheme; _ }) = impl_of_task task in
  let exec emit =
    match trace.Trace.meta.Trace.engine with
    | Trace.Sync -> ignore (Scheme.run ~tracer:emit scheme g)
    | Trace.Async { seed } -> ignore (Scheme.run_async ~seed ~tracer:emit scheme g)
  in
  let outcome = Metrics.time t.metrics "replay" (fun () -> Replay.run trace exec) in
  Protocol.ok_response ~op:"verify-trace"
    (Json.Obj
       ([
          ("label", Json.String label);
          ("engine",
           Json.String (Trace.engine_to_string trace.Trace.meta.Trace.engine));
          ("events", Json.Int (Array.length trace.Trace.events));
          ("valid", Json.Bool (Result.is_ok outcome));
        ]
       @
       match outcome with
       | Ok () -> []
       | Error d -> [ ("divergence", Json.String (Replay.pp_divergence d)) ]))

let cache_json name (c : _ Cache.t) =
  ( name,
    Json.Obj
      [
        ("capacity", Json.Int (Cache.capacity c));
        ("entries", Json.Int (Cache.entries c));
        ("persistent", Json.Bool (Cache.persistent c));
      ] )

let stats_json t =
  Json.Obj
    [
      ("protocol", Json.Int Protocol.version);
      ("advice_version", Json.Int advice_version);
      ("result_version", Json.Int result_version);
      ("uptime_seconds", Json.Float (uptime_seconds t));
      ("cache_dir",
       match t.cache_dir with Some d -> Json.String d | None -> Json.Null);
      cache_json "cache" t.advice;
      cache_json "result_cache" t.results;
      ("counters",
       Json.Obj
         (List.map
            (fun (name, v) -> (name, Store.json_of_metric v))
            (Metrics.snapshot t.metrics)));
    ]

let stats t = Protocol.ok_response ~op:"stats" (stats_json t)

(* --- dispatch --- *)

type reaction = Reply of Json.t | Reply_and_stop of Json.t

(* one non-shutdown, non-batch op -> one reply; total *)
let dispatch t op req =
  let guarded f =
    match Metrics.time t.metrics ("op_" ^ op) f with
    | reply -> reply
    | exception Failure msg -> error ~code:"request-failed" msg
    | exception Invalid_argument msg -> error ~code:"request-failed" msg
  in
  match op with
  | "advise" -> guarded (fun () -> advise t req)
  | "elect" -> guarded (fun () -> elect t req)
  | "verify" -> guarded (fun () -> verify_outputs t req)
  | "verify-trace" -> guarded (fun () -> verify_trace t req)
  | "stats" -> guarded (fun () -> stats t)
  | op -> error ~code:"unknown-op" ("unknown op: " ^ op)

let batch_item t req =
  match Json.member "op" req with
  | Some (Json.String (("batch" | "shutdown") as op)) ->
      error ~code:"bad-request" ("op " ^ op ^ " is not allowed inside a batch")
  | Some (Json.String op) -> dispatch t op req
  | _ -> error ~code:"bad-request" "request needs a string \"op\" member"

(* One frame, many requests: items are answered in request order, each
   in isolation (a failing item yields its own error reply and never
   poisons its neighbours).  With a [parallel] hook installed, items
   fan out across the daemon's batch crew; results land in
   position-indexed slots, so the reply order is the request order
   regardless of scheduling. *)
let batch t req =
  let items =
    match member_exn "requests" req with
    | Json.List l -> Array.of_list l
    | _ -> failwith "\"requests\" must be a list of request objects"
  in
  let n = Array.length items in
  Metrics.incr ~by:n t.metrics "batch_items";
  let replies = Array.make n Json.Null in
  let thunks =
    Array.mapi (fun i item () -> replies.(i) <- batch_item t item) items
  in
  (match t.parallel with
  | Some run_all when n > 1 -> run_all thunks
  | _ -> Array.iter (fun f -> f ()) thunks);
  Protocol.ok_response ~op:"batch"
    (Json.Obj
       [
         ("count", Json.Int n);
         ("replies", Json.List (Array.to_list replies));
       ])

let handle t req =
  Metrics.incr t.metrics "requests";
  let op =
    match Json.member "op" req with Some (Json.String op) -> Some op | _ -> None
  in
  match op with
  | None ->
      Reply (error ~code:"bad-request" "request needs a string \"op\" member")
  | Some "shutdown" ->
      Metrics.incr t.metrics "op_shutdown";
      Reply_and_stop
        (Protocol.ok_response ~op:"shutdown"
           (Json.Obj [ ("stopping", Json.Bool true) ]))
  | Some "batch" ->
      Reply
        (match Metrics.time t.metrics "op_batch" (fun () -> batch t req) with
        | reply -> reply
        | exception Failure msg -> error ~code:"request-failed" msg
        | exception Invalid_argument msg -> error ~code:"request-failed" msg)
  | Some op -> Reply (dispatch t op req)
