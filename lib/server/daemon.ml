
module Pool = Shades_runtime.Pool
module Metrics = Shades_runtime.Metrics

let socket_of_endpoint = function
  | Protocol.Unix_path path ->
      if Sys.file_exists path then Sys.remove path;
      let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind sock (Unix.ADDR_UNIX path);
      sock
  | Protocol.Tcp { host; port } ->
      let addr =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> failwith ("cannot resolve host " ^ host))
      in
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (addr, port));
      sock

let cleanup_endpoint = function
  | Protocol.Unix_path path -> if Sys.file_exists path then Sys.remove path
  | Protocol.Tcp _ -> ()

(* One connection: frames in, frames out, until EOF, a framing error,
   or a shutdown request.  Runs on a crew domain; [service] is shared
   and mutex-guarded throughout. *)
let serve_connection ~max_frame ~log ~stop service fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match Protocol.read_frame ~max_frame ic with
    | Protocol.Eof -> ()
    | Protocol.Malformed reason ->
        (* the byte stream cannot be resynchronized: answer and close *)
        log ("closing connection: " ^ reason);
        Protocol.write_frame oc (Protocol.error_response ~code:"bad-frame" reason)
    | Protocol.Payload (Error reason) ->
        Protocol.write_frame oc (Protocol.error_response ~code:"bad-json" reason);
        loop ()
    | Protocol.Payload (Ok request) -> (
        match Service.handle service request with
        | Service.Reply reply ->
            Protocol.write_frame oc reply;
            loop ()
        | Service.Reply_and_stop reply ->
            Protocol.write_frame oc reply;
            Atomic.set stop true)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try loop () with
      | Unix.Unix_error (e, _, _) ->
          log ("connection error: " ^ Unix.error_message e)
      | Sys_error e -> log ("connection error: " ^ e))

let run ?domains ?(max_frame = Protocol.default_max_frame) ?(log = fun _ -> ())
    ?http endpoint service =
  let sock = socket_of_endpoint endpoint in
  Unix.listen sock 64;
  let http_sock =
    Option.map
      (fun e ->
        let s = socket_of_endpoint e in
        Unix.listen s 64;
        s)
      http
  in
  let stop = Atomic.make false in
  let crew =
    Pool.Crew.create ?domains
      ~on_error:(fun e -> log ("handler error: " ^ Printexc.to_string e))
      ()
  in
  (* Batch items fan out on their own crew, never the connection crew:
     a connection handler blocking in [run_all] on the crew that is
     supposed to run its thunks would deadlock at low domain counts. *)
  let batch_crew =
    Pool.Crew.create ?domains
      ~on_error:(fun e -> log ("batch error: " ^ Printexc.to_string e))
      ()
  in
  Service.set_parallel service (Some (Pool.Crew.run_all batch_crew));
  log
    (Printf.sprintf "listening on %s (%d worker domain%s)"
       (Protocol.endpoint_to_string endpoint)
       (Pool.Crew.size crew)
       (if Pool.Crew.size crew = 1 then "" else "s"));
  Option.iter
    (fun e ->
      log
        (Printf.sprintf "http metrics on %s (GET /metrics, /healthz)"
           (Protocol.endpoint_to_string e)))
    http;
  let listeners = sock :: Option.to_list http_sock in
  let accept_on fd =
    match Unix.accept fd with
    | conn, _ ->
        if fd == sock then begin
          Metrics.incr (Service.metrics service) "connections";
          Pool.Crew.submit crew (fun () ->
              serve_connection ~max_frame ~log ~stop service conn)
        end
        else begin
          Metrics.incr (Service.metrics service) "http_connections";
          Pool.Crew.submit crew (fun () -> Http.handle ~log service conn)
        end
    | exception Unix.Unix_error (e, _, _) ->
        log ("accept error: " ^ Unix.error_message e)
  in
  let rec accept_loop () =
    if not (Atomic.get stop) then begin
      (* poll so a shutdown request (flagged by a crew domain) is
         noticed without tricks like self-connection *)
      match Unix.select listeners [] [] 0.1 with
      | [], _, _ -> accept_loop ()
      | ready, _, _ ->
          List.iter accept_on ready;
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Option.iter
        (fun s -> try Unix.close s with Unix.Unix_error _ -> ())
        http_sock;
      cleanup_endpoint endpoint;
      Option.iter cleanup_endpoint http;
      Pool.Crew.shutdown crew;
      Service.set_parallel service None;
      Pool.Crew.shutdown batch_crew;
      log "stopped")
    accept_loop
