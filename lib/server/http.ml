module Metrics = Shades_runtime.Metrics

(* Prometheus metric names: [a-zA-Z0-9_:] only, so internal names like
   "op_verify-trace" sanitize their hyphens away. *)
let sanitize name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') as c -> c | _ -> '_')
    name

(* HELP strings for the documented series (the DESIGN §13 table);
   anything else gets a generic line so the exposition stays valid. *)
let help_of_name name =
  let table =
    [
      ("shades_uptime_seconds", "Seconds since the service was created.");
      ("shades_requests_total", "JSONL frames handled (a batch frame counts once).");
      ("shades_batch_items_total", "Requests carried inside batch frames.");
      ("shades_connections_total", "Accepted JSONL connections.");
      ("shades_http_requests_total", "HTTP requests accepted on the metrics plane.");
      ("shades_advise_computes_total", "Oracle runs (advice actually computed).");
      ("shades_elect_computes_total", "Engine runs (elections actually executed).");
      ("shades_verify_computes_total", "Referee runs (verdicts actually evaluated).");
      ("shades_computes_avoided_total",
       "Requests answered from a cache tier instead of computing.");
      ("shades_advice_cache_hits_total", "Advice-cache memory hits.");
      ("shades_advice_cache_misses_total", "Advice-cache misses (both tiers).");
      ("shades_advice_cache_evictions_total", "Advice-cache LRU evictions (memory only).");
      ("shades_advice_cache_disk_hits_total", "Advice-cache disk-tier hits.");
      ("shades_advice_cache_disk_writes_total", "Advice-cache disk-tier writes.");
      ("shades_advice_cache_disk_invalid_total",
       "Advice-cache disk files unreadable or corrupt (served as misses).");
      ("shades_advice_cache_entries", "Advice-cache memory entries.");
      ("shades_advice_cache_capacity", "Advice-cache memory capacity.");
      ("shades_result_cache_hits_total", "Result-cache memory hits.");
      ("shades_result_cache_misses_total", "Result-cache misses (both tiers).");
      ("shades_result_cache_evictions_total", "Result-cache LRU evictions (memory only).");
      ("shades_result_cache_disk_hits_total", "Result-cache disk-tier hits.");
      ("shades_result_cache_disk_writes_total", "Result-cache disk-tier writes.");
      ("shades_result_cache_disk_invalid_total",
       "Result-cache disk files unreadable or corrupt (served as misses).");
      ("shades_result_cache_entries", "Result-cache memory entries.");
      ("shades_result_cache_capacity", "Result-cache memory capacity.");
      ("shades_memo_hits_total", "Encoding-digest memo hits.");
      ("shades_memo_misses_total", "Encoding-digest memo misses.");
      ("shades_memo_entries", "Encoding-digest memo entries.");
      ("shades_memo_capacity", "Encoding-digest memo capacity.");
      ("shades_http_connections_total",
       "Accepted HTTP connections on the metrics plane.");
      ("shades_http_healthz_total", "GET /healthz requests answered.");
      ("shades_http_not_found_total", "HTTP requests for unknown paths.");
      ("shades_http_bad_request_total",
       "Malformed or non-GET HTTP requests.");
      ("shades_http_metrics_requests_total", "GET /metrics renders.");
      ("shades_http_metrics_seconds_total",
       "Seconds spent rendering GET /metrics.");
      ("shades_canonicalize_requests_total",
       "Graph canonicalizations performed (memo misses).");
      ("shades_canonicalize_seconds_total",
       "Seconds spent canonicalizing graphs.");
    ]
  in
  match List.assoc_opt name table with
  | Some help -> help
  | None -> (
      (* per-op timings are a family: derive their help instead of
         enumerating every op *)
      let op_prefix = "shades_op_" in
      let strip_suffix s suffix =
        if String.ends_with ~suffix s then
          Some (String.sub s 0 (String.length s - String.length suffix))
        else None
      in
      if String.starts_with ~prefix:op_prefix name then
        let rest =
          String.sub name (String.length op_prefix)
            (String.length name - String.length op_prefix)
        in
        match strip_suffix rest "_requests_total" with
        | Some op -> Printf.sprintf "Frames answered for op %s." op
        | None -> (
            match strip_suffix rest "_seconds_total" with
            | Some op -> Printf.sprintf "Seconds spent answering op %s." op
            | None -> "shades internal metric " ^ name)
      else "shades internal metric " ^ name)

let series buf ~typ name value =
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s %s\n# TYPE %s %s\n%s %s\n" name
       (help_of_name name) name typ name value)

let float_repr f =
  (* %.9g keeps counters integral-looking and sums precise enough *)
  Printf.sprintf "%.9g" f

let render_metrics service =
  let buf = Buffer.create 4096 in
  series buf ~typ:"gauge" "shades_uptime_seconds"
    (float_repr (Service.uptime_seconds service));
  List.iter
    (fun (name, value) ->
      let base = "shades_" ^ sanitize name in
      match value with
      | Metrics.Counter n ->
          series buf ~typ:"counter" (base ^ "_total") (string_of_int n)
      | Metrics.Gauge g -> series buf ~typ:"gauge" base (float_repr g)
      | Metrics.Timing { count; total_ns } ->
          (* one timing becomes the per-endpoint pair: how many and how
             long — e.g. op_advise -> shades_op_advise_requests_total +
             shades_op_advise_seconds_total *)
          series buf ~typ:"counter" (base ^ "_requests_total")
            (string_of_int count);
          series buf ~typ:"counter" (base ^ "_seconds_total")
            (float_repr (float_of_int total_ns /. 1e9))
      | Metrics.Histogram h ->
          series buf ~typ:"gauge" (base ^ "_count")
            (string_of_int h.Metrics.count);
          series buf ~typ:"gauge" (base ^ "_sum") (float_repr h.Metrics.sum))
    (Metrics.snapshot (Service.metrics service));
  Buffer.contents buf

(* --- the listener side --- *)

let status_line = function
  | 200 -> "200 OK"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | _ -> "400 Bad Request"

let respond oc ~status ~content_type body =
  output_string oc
    (Printf.sprintf
       "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
        close\r\n\r\n"
       (status_line status) content_type (String.length body));
  output_string oc body;
  flush oc

let trim_cr line =
  if String.length line > 0 && line.[String.length line - 1] = '\r' then
    String.sub line 0 (String.length line - 1)
  else line

(* drain headers until the blank line; we never need their contents *)
let rec drain_headers ic =
  match input_line ic with
  | exception End_of_file -> ()
  | line -> if trim_cr line = "" then () else drain_headers ic

let handle ?(log = fun _ -> ()) service fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let metrics = Service.metrics service in
  let serve () =
    match input_line ic with
    | exception End_of_file -> ()
    | request_line -> (
        Metrics.incr metrics "http_requests";
        let request_line = trim_cr request_line in
        drain_headers ic;
        match String.split_on_char ' ' request_line with
        | [ "GET"; target; _version ] -> (
            (* strip any query string: /metrics?x=y routes like /metrics *)
            let path =
              match String.index_opt target '?' with
              | Some i -> String.sub target 0 i
              | None -> target
            in
            match path with
            | "/metrics" ->
                let body =
                  Metrics.time metrics "http_metrics" (fun () ->
                      render_metrics service)
                in
                respond oc ~status:200
                  ~content_type:"text/plain; version=0.0.4; charset=utf-8" body
            | "/healthz" ->
                Metrics.incr metrics "http_healthz";
                respond oc ~status:200 ~content_type:"text/plain" "ok\n"
            | _ ->
                Metrics.incr metrics "http_not_found";
                respond oc ~status:404 ~content_type:"text/plain"
                  "not found (try /metrics or /healthz)\n")
        | _ :: _ :: _ ->
            Metrics.incr metrics "http_bad_request";
            respond oc ~status:405 ~content_type:"text/plain"
              "only GET is served here\n"
        | _ ->
            Metrics.incr metrics "http_bad_request";
            respond oc ~status:400 ~content_type:"text/plain"
              "malformed request line\n")
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try serve () with
      | Unix.Unix_error (e, _, _) ->
          log ("http connection error: " ^ Unix.error_message e)
      | Sys_error e -> log ("http connection error: " ^ e))
