module Json = Shades_json.Json
module Port_graph = Shades_graph.Port_graph
module Task = Shades_election.Task

let version = Shades_versions.Versions.wire_protocol

let default_max_frame = 16 * 1024 * 1024

(* --- framing --- *)

type frame =
  | Eof
  | Malformed of string
  | Payload of (Json.t, string) result

let write_frame oc json =
  let payload = Json.to_string json in
  output_string oc (string_of_int (String.length payload));
  output_char oc '\n';
  output_string oc payload;
  output_char oc '\n';
  flush oc

let read_frame ?(max_frame = default_max_frame) ic =
  match input_line ic with
  | exception End_of_file -> Eof
  | header -> (
      let header =
        (* tolerate CRLF clients *)
        if String.length header > 0 && header.[String.length header - 1] = '\r'
        then String.sub header 0 (String.length header - 1)
        else header
      in
      match int_of_string_opt header with
      | None -> Malformed ("frame header is not a decimal length: " ^ header)
      | Some len when len < 0 -> Malformed "negative frame length"
      | Some len when len > max_frame ->
          Malformed
            (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" len
               max_frame)
      | Some len -> (
          let buf = Bytes.create len in
          match really_input ic buf 0 len with
          | exception End_of_file -> Malformed "truncated frame payload"
          | () -> (
              match input_char ic with
              | exception End_of_file -> Malformed "missing frame terminator"
              | '\n' -> Payload (Json.of_string (Bytes.unsafe_to_string buf))
              | c ->
                  Malformed
                    (Printf.sprintf "frame terminator is %C, expected newline" c)
              )))

(* --- endpoints --- *)

type endpoint = Unix_path of string | Tcp of { host : string; port : int }

let endpoint_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp { host; port } -> Printf.sprintf "tcp:%s:%d" host port

let endpoint_of_string s =
  match String.index_opt s ':' with
  | Some i when String.sub s 0 i = "unix" ->
      let path = String.sub s (i + 1) (String.length s - i - 1) in
      if path = "" then Error "unix:<path> needs a path" else Ok (Unix_path path)
  | Some i when String.sub s 0 i = "tcp" -> (
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.rindex_opt rest ':' with
      | None -> (
          match int_of_string_opt rest with
          | Some port -> Ok (Tcp { host = "127.0.0.1"; port })
          | None -> Error "tcp:<port> or tcp:<host>:<port>")
      | Some j -> (
          let host = String.sub rest 0 j in
          match int_of_string_opt (String.sub rest (j + 1) (String.length rest - j - 1)) with
          | Some port when host <> "" -> Ok (Tcp { host; port })
          | _ -> Error "tcp:<host>:<port>"))
  | _ -> Error ("endpoint: unix:<path> or tcp:[<host>:]<port>, got " ^ s)

(* --- hex (for uploaded binary trace blobs) --- *)

let hex_encode s =
  let buf = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "hex string has odd length"
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
      | c -> Error (Printf.sprintf "non-hex character %C" c)
    in
    let buf = Bytes.create (n / 2) in
    let rec go i =
      if i = n / 2 then Ok (Bytes.unsafe_to_string buf)
      else
        match (nibble s.[2 * i], nibble s.[(2 * i) + 1]) with
        | Ok hi, Ok lo ->
            Bytes.set buf i (Char.chr ((hi lsl 4) lor lo));
            go (i + 1)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

(* --- requests and responses --- *)

let ok_response ~op result =
  Json.Obj [ ("ok", Json.Bool true); ("op", Json.String op); ("result", result) ]

let error_response ~code message =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ("error",
       Json.Obj [ ("code", Json.String code); ("message", Json.String message) ]);
    ]

(* --- tasks --- *)

let task_of_string s =
  match String.lowercase_ascii s with
  | "s" -> Ok Task.S
  | "pe" -> Ok Task.PE
  | "ppe" -> Ok Task.PPE
  | "cppe" -> Ok Task.CPPE
  | t -> Error ("unknown task: " ^ t ^ " (expected s, pe, ppe, cppe)")

(* --- graphs --- *)

let graph_to_json g =
  Json.Obj
    [
      ("n", Json.Int (Port_graph.order g));
      ("edges",
       Json.List
         (List.map
            (fun ((v, p), (u, q)) ->
              Json.List [ Json.Int v; Json.Int p; Json.Int u; Json.Int q ])
            (Port_graph.edges g)));
    ]

let graph_of_json j =
  match j with
  | Json.String spec -> Spec.parse spec
  | Json.Obj _ -> (
      match (Json.member "n" j, Json.member "edges" j) with
      | Some (Json.Int n), Some (Json.List edges) -> (
          let edge = function
            | Json.List [ Json.Int v; Json.Int p; Json.Int u; Json.Int q ] ->
                Ok ((v, p), (u, q))
            | _ -> Error "edge must be [v, p, u, q] (all integers)"
          in
          let rec collect acc = function
            | [] -> Ok (List.rev acc)
            | e :: rest -> (
                match edge e with
                | Ok e -> collect (e :: acc) rest
                | Error _ as err -> err)
          in
          match collect [] edges with
          | Error _ as err -> err
          | Ok edges -> (
              match Port_graph.of_edges n edges with
              | g -> Ok g
              | exception Invalid_argument msg -> Error msg))
      | _ -> Error "explicit graph needs integer \"n\" and list \"edges\"")
  | _ -> Error "graph must be a spec string or {\"n\": ..., \"edges\": [...]}"
