module Port_graph = Shades_graph.Port_graph
module Gen = Shades_graph.Gen
module Gclass = Shades_families.Gclass
module Uclass = Shades_families.Uclass
module Jclass = Shades_families.Jclass

let grammar =
  "ring:<n> | path:<n> | star:<n> | clique:<n> | \
   random:<seed>,<n>,<extra> | line-ports:<p1>,<q1>,... | \
   gclass:<delta>,<k>,<i> | uclass:<delta>,<k>,<sigma> | \
   jclass:<mu>,<k>,<zeff>"

let parse spec =
  let ints args = String.split_on_char ',' args |> List.map int_of_string in
  try
    match String.split_on_char ':' spec with
    | [ "ring"; n ] -> Ok (Gen.oriented_ring (int_of_string n))
    | [ "path"; n ] -> Ok (Gen.path (int_of_string n))
    | [ "star"; n ] -> Ok (Gen.star (int_of_string n))
    | [ "clique"; n ] -> Ok (Gen.clique (int_of_string n))
    | [ "random"; args ] -> (
        match ints args with
        | [ seed; n; extra ] ->
            Ok (Gen.random (Random.State.make [| seed |]) n ~extra_edges:extra)
        | _ -> Error "random:<seed>,<n>,<extra-edges>")
    | [ "line-ports"; ports ] ->
        let rec pair = function
          | [] -> []
          | p :: q :: rest -> (p, q) :: pair rest
          | [ _ ] -> failwith "line-ports needs an even number of ports"
        in
        Ok (Gen.path_with_ports (pair (ints ports)))
    | [ "gclass"; args ] -> (
        match ints args with
        | [ delta; k; i ] -> Ok (Gclass.build { Gclass.delta; k } ~i).Gclass.graph
        | _ -> Error "gclass:<delta>,<k>,<i>")
    | [ "uclass"; args ] -> (
        match ints args with
        | [ delta; k; sigma ] ->
            let p = { Uclass.delta; k } in
            Ok (Uclass.build p ~sigma:(Uclass.uniform_sigma p sigma)).Uclass.graph
        | _ -> Error "uclass:<delta>,<k>,<sigma>")
    | [ "jclass"; args ] -> (
        match ints args with
        | [ mu; k; z_eff ] ->
            let p = { Jclass.mu; k; z_eff } in
            Ok (Jclass.build p ~y:(Jclass.y_zero p)).Jclass.graph
        | _ -> Error "jclass:<mu>,<k>,<zeff>")
    | _ -> Error ("graph spec: " ^ grammar)
  with
  | Failure msg -> Error msg
  | Invalid_argument msg -> Error msg

let parse_exn spec =
  match parse spec with Ok g -> g | Error e -> failwith e
