module Json = Shades_json.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect endpoint =
  let addr, domain =
    match endpoint with
    | Protocol.Unix_path path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Protocol.Tcp { host; port } ->
        let a =
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
            | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
            | _ -> failwith ("cannot resolve host " ^ host))
        in
        (Unix.ADDR_INET (a, port), Unix.PF_INET)
  in
  match
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  with
  | fd ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s"
           (Protocol.endpoint_to_string endpoint)
           (Unix.error_message e))
  | exception Failure msg -> Error msg

let request ?max_frame t payload =
  match
    Protocol.write_frame t.oc payload;
    Protocol.read_frame ?max_frame t.ic
  with
  | Protocol.Payload (Ok reply) -> Ok reply
  | Protocol.Payload (Error e) -> Error ("unparsable response: " ^ e)
  | Protocol.Eof -> Error "connection closed before a response arrived"
  | Protocol.Malformed e -> Error ("malformed response frame: " ^ e)
  | exception Sys_error e -> Error e
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection endpoint f =
  match connect endpoint with
  | Error _ as e -> e
  | Ok t -> Ok (Fun.protect ~finally:(fun () -> close t) (fun () -> f t))
