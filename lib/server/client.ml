module Json = Shades_json.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let resolve endpoint =
  match endpoint with
  | Protocol.Unix_path path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
  | Protocol.Tcp { host; port } ->
      let a =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
          | _ -> failwith ("cannot resolve host " ^ host))
      in
      (Unix.ADDR_INET (a, port), Unix.PF_INET)

(* A plain [Unix.connect] can hang for the kernel's SYN-retry horizon
   (minutes) on a black-holed host.  With a deadline we connect in
   non-blocking mode, wait for writability at most [timeout] seconds,
   and read the socket-level error to learn the outcome. *)
let connect_fd ?timeout addr domain =
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match
    match timeout with
    | None -> Unix.connect fd addr
    | Some timeout -> (
        Unix.set_nonblock fd;
        match Unix.connect fd addr with
        | () -> Unix.clear_nonblock fd
        | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _)
          -> (
            match Unix.select [] [ fd ] [] timeout with
            | _, [], _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
            | _, _ :: _, _ -> (
                match Unix.getsockopt_error fd with
                | None -> Unix.clear_nonblock fd
                | Some e -> raise (Unix.Unix_error (e, "connect", "")))))
  with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let connect ?timeout ?(attempts = 1) ?(backoff = 0.05) endpoint =
  let attempts = max 1 attempts in
  let try_once () =
    match
      let addr, domain = resolve endpoint in
      connect_fd ?timeout addr domain
    with
    | fd ->
        Ok
          {
            fd;
            ic = Unix.in_channel_of_descr fd;
            oc = Unix.out_channel_of_descr fd;
          }
    | exception Unix.Unix_error (e, _, _) ->
        Error
          (Printf.sprintf "cannot connect to %s: %s"
             (Protocol.endpoint_to_string endpoint)
             (Unix.error_message e))
    | exception Failure msg -> Error msg
  in
  (* bounded retry with exponential backoff — only for tcp endpoints,
     where a refused or timed-out connect is routinely transient (the
     daemon still binding its port); a unix-socket failure is not *)
  let retryable = match endpoint with Protocol.Tcp _ -> true | _ -> false in
  let rec go attempt delay =
    match try_once () with
    | Ok _ as ok -> ok
    | Error _ as err when (not retryable) || attempt >= attempts -> err
    | Error _ ->
        Unix.sleepf delay;
        go (attempt + 1) (Float.min 1.0 (delay *. 2.))
  in
  go 1 (Float.max 0.001 backoff)

let request ?max_frame t payload =
  match
    Protocol.write_frame t.oc payload;
    Protocol.read_frame ?max_frame t.ic
  with
  | Protocol.Payload (Ok reply) -> Ok reply
  | Protocol.Payload (Error e) -> Error ("unparsable response: " ^ e)
  | Protocol.Eof -> Error "connection closed before a response arrived"
  | Protocol.Malformed e -> Error ("malformed response frame: " ^ e)
  | exception Sys_error e -> Error e
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?timeout ?attempts ?backoff endpoint f =
  match connect ?timeout ?attempts ?backoff endpoint with
  | Error _ as e -> e
  | Ok t -> Ok (Fun.protect ~finally:(fun () -> close t) (fun () -> f t))
