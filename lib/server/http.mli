(** The HTTP observability plane: [GET /metrics] and [GET /healthz].

    A deliberately minimal HTTP/1.1 responder — no dependencies, no
    keep-alive, no routing table — just enough for a Prometheus scraper
    or a load balancer's health probe to talk to the daemon.  Each
    accepted connection serves exactly one request and closes
    ([Connection: close] is always sent), which matches how probes and
    scrapers behave and keeps the listener state-free.  The daemon
    accepts these connections on the same select loop as the JSONL
    socket (pass [~http] to [Daemon.run]) and serves them on the same
    connection crew.

    Routes:
    - [GET /metrics] — the full telemetry registry in Prometheus text
      exposition format 0.0.4 (the name/type/help table is DESIGN §13);
    - [GET /healthz] — [200 ok] whenever the daemon answers at all;
    - any other path is [404]; any other method is [405].

    Every request is counted in the service registry ([http_requests],
    [http_healthz], [http_not_found], [http_bad_request] counters and
    the [http_metrics] timing — which themselves appear in the next
    [/metrics] scrape). *)

val render_metrics : Service.t -> string
(** The Prometheus text exposition of the service's registry: one
    [# HELP] / [# TYPE] / value triplet per series, in name-sorted
    order.  Counters render as [shades_<name>_total]; gauges as
    [shades_<name>]; each timing becomes the pair
    [shades_<name>_requests_total] and [shades_<name>_seconds_total];
    [shades_uptime_seconds] is synthesized from
    {!Service.uptime_seconds}.  Metric names are sanitized to
    Prometheus's alphabet (hyphens become underscores:
    [op_verify-trace] → [shades_op_verify_trace_*]). *)

val handle : ?log:(string -> unit) -> Service.t -> Unix.file_descr -> unit
(** Serve one accepted HTTP connection to completion and close the
    descriptor (always, also on error).  Transport errors are logged
    via [log] (default: silence), never raised. *)
