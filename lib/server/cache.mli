(** Bounded LRU cache with telemetry — the daemon's content-addressed
    advice store.

    Keys are strings (content digests); values are whatever the caller
    computes for a key.  The cache is mutex-guarded and safe to share
    across {!Shades_runtime.Pool} domains.  Every lookup outcome is
    counted in the {!Shades_runtime.Metrics} registry given at creation
    under names derived from the cache's [name]: [<name>_hits],
    [<name>_misses], [<name>_evictions] (counters) and [<name>_entries]
    (a gauge) — the numbers the [stats] endpoint and the serve bench
    report. *)

type 'a t

val create :
  ?name:string ->
  capacity:int ->
  metrics:Shades_runtime.Metrics.t ->
  unit ->
  'a t
(** An empty cache holding at most [capacity] entries (≥ 1; raises
    [Invalid_argument] otherwise); beyond that, each insertion evicts
    the least-recently-used entry.  [name] (default ["cache"])
    prefixes the metric names. *)

val capacity : 'a t -> int

val entries : 'a t -> int
(** Current number of entries (≤ {!capacity}). *)

val find : 'a t -> string -> 'a option
(** Look up a key; a hit refreshes its recency and bumps
    [<name>_hits], a miss bumps [<name>_misses]. *)

val put : 'a t -> string -> 'a -> unit
(** Insert (or overwrite) a key at most-recent position, evicting the
    LRU entry when full ([<name>_evictions]). *)

val find_or_compute : 'a t -> string -> compute:(unit -> 'a) -> 'a * bool
(** [find_or_compute t key ~compute] is [(value, was_hit)].  On a miss,
    [compute] runs {e outside} the cache lock (a slow compute never
    serializes other keys' lookups), so two racing misses on the same
    key may both compute; the computes must be deterministic functions
    of the key, making the race harmless.  Exceptions from [compute]
    propagate and cache nothing. *)
