(** Bounded LRU cache with telemetry and an optional disk tier — the
    daemon's content-addressed result store.

    Keys are strings (content addresses); values are whatever the
    caller computes for a key.  The cache is mutex-guarded and safe to
    share across {!Shades_runtime.Pool} domains.

    {2 Tiers}

    The memory tier is a bounded LRU: at most [capacity] entries,
    insertion beyond that evicts the least-recently-used one.  With
    {!persist} given, a {e disk tier} sits behind it: every {!put}
    writes through to one file per key under [persist.dir]
    (write-then-rename, so readers never observe a torn write), and a
    memory miss falls back to reading — and re-promoting — the file.
    The disk tier is never evicted and survives process restarts;
    eviction only trims the memory front.  Because keys are content
    addresses (a value is a pure function of its key), a directory can
    safely be shared by successive daemon runs: whatever is found there
    is as good as freshly computed.

    Key-to-file mapping: bytes outside [A-Za-z0-9._-] are
    percent-escaped ([%XX]), which is injective, so distinct keys can
    never collide on one file.

    {2 Telemetry}

    Every outcome is counted in the {!Shades_runtime.Metrics} registry
    given at creation, under names derived from the cache's [name]:
    [<name>_hits] (memory hits), [<name>_misses] (missed {e both}
    tiers — there is no separate disk-miss counter), [<name>_evictions],
    [<name>_disk_hits], [<name>_disk_writes], [<name>_disk_invalid]
    (unreadable or corrupt files tolerated as misses),
    [<name>_disk_errors] (failed writes — the cache degrades to
    memory-only), [<name>_disk_evictions] (files deleted to keep the
    tier under its [max_bytes] budget), all counters; [<name>_entries]
    and [<name>_capacity] are gauges.  These are the numbers the
    [stats] endpoint and [GET /metrics] report. *)

type 'a persist = {
  dir : string;  (** created (with parents) if missing *)
  encode : 'a -> string;  (** file contents for a value *)
  decode : string -> ('a, string) result;
      (** total inverse: corrupt input must be [Error], though a raising
          decoder is also tolerated (treated as [Error]) *)
  max_bytes : int option;
      (** byte budget for [dir]; [None] leaves the tier unbounded *)
}
(** The disk-tier configuration: where files live, how values
    serialize, and (optionally) how large the tier may grow.
    [decode (encode v)] must be [Ok v].

    With [max_bytes] set, every successful write re-checks the
    directory and deletes entry files in oldest-[mtime] order (file
    name breaks ties) until the tier fits the budget again — the file
    just written is never deleted, and in-flight temp files are
    neither counted nor touched.  Each deletion bumps
    [<name>_disk_evictions].  An evicted entry simply becomes a future
    miss to recompute: keys are content addresses, so nothing is
    lost but time. *)

type 'a t

val create :
  ?name:string ->
  ?persist:'a persist ->
  capacity:int ->
  metrics:Shades_runtime.Metrics.t ->
  unit ->
  'a t
(** An empty cache holding at most [capacity] entries in memory (≥ 1;
    raises [Invalid_argument] otherwise).  [name] (default ["cache"])
    prefixes the metric names.  With [persist], the disk tier under
    [persist.dir] is attached — pre-existing files there are live
    entries (that is the restart-warm path). *)

val capacity : 'a t -> int

val persistent : 'a t -> bool
(** Whether a disk tier is attached. *)

val entries : 'a t -> int
(** Current number of {e memory} entries (≤ {!capacity}); the disk
    tier is uncounted here (unbounded unless [persist.max_bytes]
    caps it). *)

val find : 'a t -> string -> 'a option
(** Look up a key.  A memory hit refreshes its recency and bumps
    [<name>_hits]; a memory miss consults the disk tier (if any),
    promoting a decodable file back into memory ([<name>_disk_hits])
    without rewriting it; only a miss in both tiers bumps
    [<name>_misses].  Unreadable or corrupt files are counted
    ([<name>_disk_invalid]) and treated as misses, never raised. *)

val put : 'a t -> string -> 'a -> unit
(** Insert (or overwrite) a key at most-recent position, evicting the
    memory LRU entry when full ([<name>_evictions]), and write through
    to the disk tier if attached: the value is encoded to a temp file
    in the same directory and [Unix.rename]d over the final path, so a
    concurrent reader (or a daemon killed mid-write) sees the old
    contents or the new, never a prefix.  A failed write
    ([<name>_disk_errors]) degrades that entry to memory-only. *)

val find_or_compute : 'a t -> string -> compute:(unit -> 'a) -> 'a * bool
(** [find_or_compute t key ~compute] is [(value, was_hit)], where
    [was_hit] covers both tiers.  On a miss, [compute] runs {e outside}
    the cache lock (a slow compute never serializes other keys'
    lookups), so two racing misses on the same key may both compute;
    the computes must be deterministic functions of the key, making the
    race harmless.  Exceptions from [compute] propagate and cache
    nothing. *)
