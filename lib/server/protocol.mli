(** The daemon's wire protocol: length-prefixed JSONL frames.

    One frame per message, in both directions:

    {v
    frame    ::= length "\n" payload "\n"
    length   ::= ASCII decimal byte length of payload
    payload  ::= one JSON value (compact, no embedded newlines)
    v}

    Requests are JSON objects with an ["op"] member (["advise"],
    ["elect"], ["verify"], ["verify-trace"], ["stats"], ["batch"],
    ["shutdown"]);
    responses are [{"ok": true, "op": ..., "result": ...}] or
    [{"ok": false, "error": {"code": ..., "message": ...}}].  A frame
    whose {e framing} is broken (bad length line, truncation,
    over-limit size) cannot be resynchronized: the server replies with
    a [bad-frame] error and closes the connection.  A well-framed
    payload that fails to parse as JSON only costs that request
    ([bad-json]); the connection stays open. *)

val version : int
(** Protocol version, [1] — stamped into [stats] responses; the cache
    key derivation ([Service.cache_key]) carries its own versions. *)

val default_max_frame : int
(** 16 MiB — the largest payload either side accepts by default. *)

(** {1 Framing} *)

(** Outcome of reading one frame.  [Eof] is a clean end between frames;
    [Malformed] means the byte stream is unrecoverable (close the
    connection); [Payload (Error _)] is a well-framed but unparsable
    JSON payload (the connection survives). *)
type frame =
  | Eof
  | Malformed of string
  | Payload of (Shades_json.Json.t, string) result

val write_frame : out_channel -> Shades_json.Json.t -> unit
(** Encode, frame, and flush one message. *)

val read_frame : ?max_frame:int -> in_channel -> frame
(** Read one frame (blocking); [max_frame] defaults to
    {!default_max_frame}. *)

(** {1 Endpoints} *)

type endpoint = Unix_path of string | Tcp of { host : string; port : int }

val endpoint_to_string : endpoint -> string
(** [unix:<path>] or [tcp:<host>:<port>]. *)

val endpoint_of_string : string -> (endpoint, string) result
(** Inverse of {!endpoint_to_string}; [tcp:<port>] defaults the host to
    [127.0.0.1]. *)

(** {1 Payload helpers} *)

val ok_response : op:string -> Shades_json.Json.t -> Shades_json.Json.t
val error_response : code:string -> string -> Shades_json.Json.t

val task_of_string : string -> (Shades_election.Task.kind, string) result
(** ["s"], ["pe"], ["ppe"] or ["cppe"] (case-insensitive). *)

val graph_to_json : Shades_graph.Port_graph.t -> Shades_json.Json.t
(** Explicit port-graph form: [{"n": n, "edges": [[v, p, u, q], ...]}]. *)

val graph_of_json :
  Shades_json.Json.t -> (Shades_graph.Port_graph.t, string) result
(** Accepts a {!Spec} string or the explicit form of {!graph_to_json};
    every structural error (bad ports, duplicate edges, ...) is an
    [Error], never an exception. *)

val hex_encode : string -> string
(** Lowercase hex of a byte string — how binary SHTR trace blobs ride
    inside JSON payloads. *)

val hex_decode : string -> (string, string) result
(** Inverse of {!hex_encode} (case-insensitive). *)
