(** The election service: request handlers and the content-addressed
    caches.

    One {!t} lives for the daemon's whole life and is shared by every
    connection handler (all state is mutex-guarded).  {!handle} maps
    one request payload to one response payload — the daemon owns the
    sockets, this module owns the semantics, so the full protocol is
    testable without ever opening a socket.

    {2 The advice cache}

    The paper's model is an all-knowing oracle computing one advice
    string per topology, which every node receives — so a deployment
    serves few distinct topologies to many clients, and advice is
    cached {e per topology}, not per request.  The cache key is
    {!cache_key}: the canonical-form digest of the submitted graph
    ([Shades_graph.Port_graph.digest] — equal for any two
    port-preserving isomorphic submissions) crossed with the task and
    {!advice_version}.  Advice is computed {e on the canonical form},
    so a cached string is a pure function of the key, independent of
    which representative was submitted first; it remains valid advice
    for every isomorphic submission because the schemes locate nodes in
    the advice map only up to view equivalence.  In front of the
    canonical address sits a memo from the digest of the submitted
    (non-canonical) encoding to the canonical digest, so byte-identical
    repeat queries skip canonicalization too — that memo is what makes
    the warm path O(encoding size).

    {2 The result cache}

    [elect] and [verify] results are cached whole, as the stored JSON
    of the reply's [result] member.  Every engine is deterministic
    (async per seed), so an elect reply is a pure function of
    (submitted encoding, task, engine, versions) — see {!elect_key} —
    and a verify verdict of (submitted encoding, task, outputs) — see
    {!verify_key}.  Unlike advice, full results are keyed on the digest
    of the graph {e as submitted}: per-node outputs are indexed by the
    submitter's vertex numbering, so two isomorphic renumberings must
    never share an entry even though they share advice.

    {2 Persistence}

    With [cache_dir] given to {!create}, both caches gain a
    {!Cache.persist} disk tier: [<dir>/advice/] and [<dir>/results/],
    one JSON file per content address, written atomically
    (write-then-rename) and never evicted.  A daemon restarted on the
    same directory serves every previously computed advice string and
    elect/verify result from disk — zero recomputation — which is what
    [bench/serve_bench --assert]'s restart-warm phase enforces.

    Counters (in {!metrics}, reported by the [stats] endpoint and
    rendered by {!Http} as [GET /metrics]):
    [advice_cache_hits] / [_misses] / [_evictions] / [_entries] /
    [_disk_hits] / [_disk_writes] / [_disk_invalid], the same family
    under [result_cache_*], [memo_hits] / [_misses], [advise_computes]
    / [elect_computes] / [verify_computes] (real oracle / engine /
    referee runs — cache hits of any tier bump [computes_avoided]
    instead), [requests], [batch_items], and per-op [op_<name>]
    timings. *)

type t

val default_cache_capacity : int
(** 256 entries (memory tier, per cache). *)

val create :
  ?cache_capacity:int -> ?cache_dir:string -> ?cache_max_bytes:int -> unit -> t
(** A fresh service with empty advice and result caches of
    [cache_capacity] (default {!default_cache_capacity}) memory
    entries each.  [cache_dir] attaches the persistent disk tier
    (created if missing, reused — including its contents — if not):
    advice under [<cache_dir>/advice], elect/verify results under
    [<cache_dir>/results].  [cache_max_bytes] bounds {e each} tier
    directory: a write that pushes a tier past the budget deletes its
    oldest files (by mtime) until it fits, counting
    [*_disk_evictions] — see {!Cache.persist}. *)

val metrics : t -> Shades_runtime.Metrics.t
(** The service's telemetry registry (live; snapshot at will). *)

val cache_dir : t -> string option
(** The persistence root given to {!create}, if any. *)

val uptime_seconds : t -> float
(** Seconds since {!create} — the [shades_uptime_seconds] gauge of
    [GET /metrics]. *)

val set_parallel : t -> ((unit -> unit) array -> unit) option -> unit
(** Install (or remove) the batch fan-out hook.  The daemon points this
    at a dedicated crew's [run_all] so one [batch] frame's items run
    concurrently; without a hook items run sequentially in the calling
    domain (the in-process test configuration).  The hook must run
    every thunk to completion before returning and must not re-enter
    {!handle}. *)

val advice_version : int
(** Version stamp folded into every advice and elect key — bump when
    any scheme's oracle output changes for a fixed graph, so stale
    advice can never survive a behavioural change. *)

val result_version : int
(** Version stamp folded into every elect and verify result key — bump
    when an engine's execution, a verifier's semantics, or the stored
    result JSON shape changes (cached results are replayed verbatim as
    replies, so their format is part of the contract). *)

val cache_key : digest:string -> task:Shades_election.Task.kind -> string
(** ["<digest>/<task>/v<advice_version>"] — the content address of one
    topology × task's advice ([digest] is the {e canonical} digest). *)

val elect_key :
  digest:string -> task:Shades_election.Task.kind -> engine:string -> string
(** ["<digest>/<task>/elect-<engine>/v<advice_version>.<result_version>"]
    — the content address of one elect result.  [digest] is the digest
    of the {e submitted} encoding (results are representation-bound);
    [engine] is ["sync"], ["sharded"] or ["async-s<seed>"] (the domain
    count is deliberately absent — sharded execution is observationally
    identical at every count). *)

val verify_key :
  digest:string ->
  task:Shades_election.Task.kind ->
  outputs_digest:string ->
  string
(** ["<digest>/<task>/verify-<outputs_digest>/v<result_version>"] — the
    content address of one verify verdict; [outputs_digest] is the MD5
    of the claimed outputs' canonical JSON rendering. *)

(** {1 Handling} *)

(** [Reply_and_stop] is the [shutdown] op: send the reply, then stop
    the daemon. *)
type reaction = Reply of Shades_json.Json.t | Reply_and_stop of Shades_json.Json.t

val handle : t -> Shades_json.Json.t -> reaction
(** Dispatch one request.  Total: every failure (missing member, bad
    graph, infeasible topology, malformed trace, ...) becomes an
    [{"ok": false, "error": ...}] reply with code [bad-request],
    [request-failed] or [unknown-op]; exceptions never escape to the
    connection loop.

    The [batch] op carries [{"requests": [...]}], an array of ordinary
    request objects, and answers [{"count": n, "replies": [...]}] with
    one reply per item {e in request order}.  Items are isolated: a
    failing item yields its own error reply in its slot and the rest of
    the batch is unaffected.  [batch] and [shutdown] are rejected
    per-item inside a batch (no nesting, no side-channel stops). *)

val stats_json : t -> Shades_json.Json.t
(** The [stats] result payload (protocol/advice/result versions,
    uptime, cache-dir, per-cache occupancy and persistence, full
    counter snapshot) — also what [shades serve --metrics-out] writes
    at exit. *)
