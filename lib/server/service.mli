(** The election service: request handlers and the content-addressed
    advice cache.

    One {!t} lives for the daemon's whole life and is shared by every
    connection handler (all state is mutex-guarded).  {!handle} maps
    one request payload to one response payload — the daemon owns the
    sockets, this module owns the semantics, so the full protocol is
    testable without ever opening a socket.

    {2 The advice cache}

    The paper's model is an all-knowing oracle computing one advice
    string per topology, which every node receives — so a deployment
    serves few distinct topologies to many clients, and advice is
    cached {e per topology}, not per request.  The cache key is
    {!cache_key}: the canonical-form digest of the submitted graph
    ([Shades_graph.Port_graph.digest] — equal for any two
    port-preserving isomorphic submissions) crossed with the task and
    {!advice_version}.  Advice is computed {e on the canonical form},
    so a cached string is a pure function of the key, independent of
    which representative was submitted first; it remains valid advice
    for every isomorphic submission because the schemes locate nodes in
    the advice map only up to view equivalence.  In front of the
    canonical address sits a memo from the digest of the submitted
    (non-canonical) encoding to the canonical digest, so byte-identical
    repeat queries skip canonicalization too — that memo is what makes
    the warm path O(encoding size).

    Counters (in {!metrics}, reported by the [stats] endpoint):
    [advice_cache_hits] / [_misses] / [_evictions] / [_entries],
    [memo_hits] / [_misses], [advise_computes] (oracle runs — a
    repeated identical [advise] bumps the hit counter and {e not} this
    one), [requests], and per-op [op_<name>] timings. *)

type t

val default_cache_capacity : int
(** 256 advice entries. *)

val create : ?cache_capacity:int -> unit -> t
(** A fresh service with an empty cache of [cache_capacity] (default
    {!default_cache_capacity}) advice entries. *)

val metrics : t -> Shades_runtime.Metrics.t
(** The service's telemetry registry (live; snapshot at will). *)

val advice_version : int
(** Version stamp folded into every cache key — bump when any scheme's
    oracle output changes for a fixed graph, so stale advice can never
    survive a behavioural change. *)

val cache_key : digest:string -> task:Shades_election.Task.kind -> string
(** ["<digest>/<task>/v<advice_version>"] — the content address of one
    topology × task's advice. *)

(** {1 Handling} *)

(** [Reply_and_stop] is the [shutdown] op: send the reply, then stop
    the daemon. *)
type reaction = Reply of Shades_json.Json.t | Reply_and_stop of Shades_json.Json.t

val handle : t -> Shades_json.Json.t -> reaction
(** Dispatch one request.  Total: every failure (missing member, bad
    graph, infeasible topology, malformed trace, ...) becomes an
    [{"ok": false, "error": ...}] reply with code [bad-request],
    [request-failed] or [unknown-op]; exceptions never escape to the
    connection loop. *)

val stats_json : t -> Shades_json.Json.t
(** The [stats] result payload (protocol/advice versions, cache
    occupancy, full counter snapshot) — also what [shades serve
    --metrics-out] writes at exit. *)
