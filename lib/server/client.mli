(** Blocking client for the daemon's frame protocol.

    A {!t} is one open connection; requests and replies are matched by
    strict alternation (send one frame, read one frame), which is all
    the protocol offers — the daemon never pushes unsolicited frames.

    Everything surfaces as [result]: connection refusal, resolution
    failure, mid-request disconnects and malformed response frames all
    come back as [Error message], never as exceptions, so the CLI can
    map them straight onto its exit-code contract. *)

type t
(** One open connection. *)

val connect : Protocol.endpoint -> (t, string) result

val request :
  ?max_frame:int -> t -> Shades_json.Json.t -> (Shades_json.Json.t, string) result
(** Send one request payload, block for the one response frame.
    [max_frame] bounds the {e response} size (default
    {!Protocol.default_max_frame}).  After an [Error] the stream
    position is unknown — close the connection. *)

val close : t -> unit
(** Idempotent; safe after a transport error. *)

val with_connection :
  Protocol.endpoint -> (t -> 'a) -> ('a, string) result
(** Connect, run, always close.  [Error] only for connection failure;
    exceptions from the callback propagate (after closing). *)
