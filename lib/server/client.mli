(** Blocking client for the daemon's frame protocol.

    A {!t} is one open connection; requests and replies are matched by
    strict alternation (send one frame, read one frame), which is all
    the protocol offers — the daemon never pushes unsolicited frames.

    Everything surfaces as [result]: connection refusal, resolution
    failure, mid-request disconnects and malformed response frames all
    come back as [Error message], never as exceptions, so the CLI can
    map them straight onto its exit-code contract. *)

type t
(** One open connection. *)

val connect :
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:float ->
  Protocol.endpoint ->
  (t, string) result
(** [timeout] (seconds) bounds each connection attempt: the socket is
    connected in non-blocking mode and abandoned with [ETIMEDOUT] if
    not writable within the deadline — without it a black-holed TCP
    host can stall for the kernel's SYN-retry horizon.  [attempts]
    (default 1) bounds retries on [tcp:] endpoints only, where a
    refused connect is routinely transient (a daemon still binding);
    failed attempts back off exponentially from [backoff] seconds
    (default 0.05, doubling, capped at 1s).  Unix-socket failures
    never retry. *)

val request :
  ?max_frame:int -> t -> Shades_json.Json.t -> (Shades_json.Json.t, string) result
(** Send one request payload, block for the one response frame.
    [max_frame] bounds the {e response} size (default
    {!Protocol.default_max_frame}).  After an [Error] the stream
    position is unknown — close the connection. *)

val close : t -> unit
(** Idempotent; safe after a transport error. *)

val with_connection :
  ?timeout:float ->
  ?attempts:int ->
  ?backoff:float ->
  Protocol.endpoint ->
  (t -> 'a) ->
  ('a, string) result
(** Connect (with {!connect}'s timeout/retry policy), run, always
    close.  [Error] only for connection failure; exceptions from the
    callback propagate (after closing). *)
