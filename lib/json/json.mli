(** Minimal JSON tree with a deterministic printer and a strict parser.

    Exactly what this repository's on-disk formats need, nothing more:
    the results store ([Shades_runtime.Store]), its sharded manifest,
    the blessed-trace manifest ([Shades_trace.Baseline]), and the
    machine-readable gate reports all speak through this module, so the
    three formats stay mutually consistent by construction.

    The printer is deterministic — object members keep their given
    order and equal trees render byte-identically — which is what lets
    every store digest be computed over a canonical encoding. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** member order is preserved *)

val to_string : t -> string
(** Compact rendering; object members keep their given order, so equal
    trees render byte-identically.
    @raise Invalid_argument on a non-finite [Float] — such values have
    no JSON spelling and never arise from the data we store. *)

val of_string : string -> (t, string) result
(** Parse one JSON value ([Error] carries a position message).
    Numbers without [./e/E] decode as [Int], others as [Float]; integer
    syntax overflowing the native [int] range falls back to [Float].
    Trailing garbage after the value is an error. *)

val member : string -> t -> t option
(** Object member lookup ([None] on absent key or non-object). *)
