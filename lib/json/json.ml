type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest float rendering that round-trips; "%.17g" only when the
   12-digit form loses precision.  Non-finite values have no JSON
   spelling and never arise from the data we store. *)
let float_to_string f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite float";
  let short = Printf.sprintf "%.12g" f in
  if float_of_string short = f then short else Printf.sprintf "%.17g" f

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj members ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf name;
          Buffer.add_char buf ':';
          write buf item)
        members;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

exception Parse_error of string

let of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < len && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let keyword word value =
    if
      !pos + String.length word <= len
      && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let utf8_of_code buf u =
    (* enough for the BMP, which is all \uXXXX can express *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= len then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= len then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
             if !pos + 4 > len then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let u =
               try int_of_string ("0x" ^ hex)
               with _ -> fail "bad \\u escape"
             in
             utf8_of_code buf u
         | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let is_float =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* integer syntax overflowing the native int range *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_list ()
    | Some '"' -> String (parse_string ())
    | Some 't' -> keyword "true" (Bool true)
    | Some 'f' -> keyword "false" (Bool false)
    | Some 'n' -> keyword "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "value expected"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let members = ref [] in
      let rec member () =
        skip_ws ();
        let name = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        members := (name, v) :: !members;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            member ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      member ();
      Obj (List.rev !members)
    end
  and parse_list () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      List []
    end
    else begin
      let items = ref [] in
      let rec item () =
        let v = parse_value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            item ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      item ();
      List (List.rev !items)
    end
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member name = function
  | Obj members -> List.assoc_opt name members
  | _ -> None
