module Port_graph = Shades_graph.Port_graph
module Paths = Shades_graph.Paths
module View_tree = Shades_views.View_tree
module Task = Shades_election.Task
module Scheme = Shades_election.Scheme
module Writer = Shades_bits.Writer
module Reader = Shades_bits.Reader

type vertex = Port_graph.vertex

type params = { mu : int; k : int; z_eff : int }

let z ~mu ~k = Component.z ~mu ~k

let check ({ mu; k; z_eff } as params) =
  if mu < 3 then invalid_arg "Jclass: need mu >= 3 (see Lemma 4.8 finding)";
  if k < 4 then invalid_arg "Jclass: need k >= 4";
  if z_eff < 1 || z_eff > z ~mu ~k then invalid_arg "Jclass: z_eff out of range";
  params

let num_gadgets p = 1 lsl p.z_eff

let class_size_log2 ~mu ~k = Float.of_int (1 lsl (z ~mu ~k - 1))

type gadget = {
  rho : vertex;
  components : Component.t array;
  first_vertex : vertex;
  last_vertex : vertex;
}

type t = {
  params : params;
  y : bool array;
  graph : Port_graph.t;
  gadgets : gadget array;
}

let y_zero p = Array.make (1 lsl (p.z_eff - 1)) false

let build ({ mu; k; z_eff } as params) ~y =
  let params = check params in
  let g_count = num_gadgets params in
  let half = g_count / 2 in
  if Array.length y <> half then invalid_arg "Jclass.build: |y| <> 2^{z_eff-1}";
  let proto = Proto.create () in
  let gadgets =
    Array.init g_count (fun g ->
        let first_vertex = Proto.order proto in
        let rho = Proto.fresh proto in
        (* Port groups at ρ: L, T, R, B at offsets 0, µ, 2µ, 3µ — except
           that y swaps R/B on the left half and (mirrored) L/T on the
           right half (Part 5). *)
        let swap_rb = g < half && y.(g) in
        let swap_lt = g >= half && y.(g_count - 1 - g) in
        let offsets =
          [|
            (if swap_lt then mu else 0);
            (if swap_lt then 0 else mu);
            (if swap_rb then 3 * mu else 2 * mu);
            (if swap_rb then 2 * mu else 3 * mu);
          |]
        in
        let components =
          Array.map
            (fun off -> Component.add proto ~mu ~k ~root:rho ~port_offset:off)
            offsets
        in
        { rho; components; first_vertex; last_vertex = Proto.order proto - 1 })
  in
  (* Part 4: encode each gadget index (bit q of i = bit q−1, LSB first)
     at the layer-k pairs, and cross-link consecutive gadgets. *)
  let link_pair c q =
    let w1, w2 = c.Component.w.(q) in
    let d = c.Component.w_base_degree.(q) in
    Proto.link proto (w1, d) (w2, d)
  in
  let cross r l q =
    let r1, r2 = r.Component.w.(q) in
    let l1, l2 = l.Component.w.(q) in
    let dr = r.Component.w_base_degree.(q)
    and dl = l.Component.w_base_degree.(q) in
    Proto.link proto (r1, dr) (l2, dl);
    Proto.link proto (r2, dr) (l1, dl)
  in
  for i = 1 to g_count - 1 do
    for q = 0 to z_eff - 1 do
      if (i lsr q) land 1 = 1 then begin
        link_pair gadgets.(i - 1).components.(3) q (* HB of Ĥ_{i−1} *);
        link_pair gadgets.(i).components.(1) q (* HT of Ĥ_i *);
        cross gadgets.(i - 1).components.(2) gadgets.(i).components.(0) q
      end
    done
  done;
  { params; y; graph = Proto.build proto; gadgets }

let gadget_of_vertex t v =
  let rec search lo hi =
    if lo > hi then invalid_arg "Jclass.gadget_of_vertex"
    else begin
      let mid = (lo + hi) / 2 in
      let g = t.gadgets.(mid) in
      if v < g.first_vertex then search lo (mid - 1)
      else if v > g.last_vertex then search (mid + 1) hi
      else mid
    end
  in
  search 0 (Array.length t.gadgets - 1)

let w_values t ~gadget =
  let g = t.gadgets.(gadget) in
  Array.map
    (fun c ->
      let value = ref 0 in
      Array.iteri
        (fun q (w1, _) ->
          (* Both pair members gain the extra edge together; read the
             first one. *)
          if Port_graph.degree t.graph w1 > c.Component.w_base_degree.(q)
          then value := !value lor (1 lsl q))
        c.Component.w;
      !value)
    g.components

let cppe_assignment t =
  let g_count = Array.length t.gadgets in
  let rhos = Array.map (fun g -> g.rho) t.gadgets in
  (* P_i: a shortest ρ_i → ρ_{i−1} path, as vertices. *)
  let p_paths =
    Array.init g_count (fun i ->
        if i = 0 then [||]
        else
          Array.of_list
            (Option.get (Paths.shortest_path t.graph rhos.(i) rhos.(i - 1))))
  in
  let pairs_of_walk vs = Paths.full_ports_of_walk t.graph vs in
  let pairs_as_list vs =
    let rec group = function
      | [] -> []
      | p :: q :: rest -> (p, q) :: group rest
      | [ _ ] -> assert false
    in
    group (pairs_of_walk vs)
  in
  (* tails.(i): full port pairs of ρ_i → ρ_{i−1} → ... → ρ_0. *)
  let tails = Array.make g_count [] in
  for i = 1 to g_count - 1 do
    tails.(i) <- pairs_as_list (Array.to_list p_paths.(i)) @ tails.(i - 1)
  done;
  (* Per-gadget BFS from ρ gives every node its shortest path to ρ. *)
  let n = Port_graph.order t.graph in
  let answers = Array.make n (Task.Follower []) in
  Array.iteri
    (fun gi gadget ->
      let parent = Array.make n (-1) in
      (* in-gadget BFS from ρ, port-ascending for determinism *)
      let queue = Queue.create () in
      parent.(gadget.rho) <- gadget.rho;
      Queue.add gadget.rho queue;
      while not (Queue.is_empty queue) do
        let x = Queue.take queue in
        for p = 0 to Port_graph.degree t.graph x - 1 do
          let u = Port_graph.neighbor_vertex t.graph x p in
          if
            u >= gadget.first_vertex && u <= gadget.last_vertex
            && parent.(u) < 0
          then begin
            parent.(u) <- x;
            Queue.add u queue
          end
        done
      done;
      let on_p = Hashtbl.create 64 in
      Array.iteri (fun idx v -> Hashtbl.replace on_p v idx) p_paths.(gi);
      for v = gadget.first_vertex to gadget.last_vertex do
        if v = gadget.rho then
          answers.(v) <-
            (if gi = 0 then Task.Leader else Task.Follower tails.(gi))
        else begin
          (* Q: v → ρ via BFS parents. *)
          let rec climb acc x =
            if x = gadget.rho then List.rev (x :: acc)
            else climb (x :: acc) parent.(x)
          in
          let q_path = climb [] v in
          if gi = 0 then
            answers.(v) <- Task.Follower (pairs_as_list q_path)
          else begin
            (* u: first node of Q lying on P_{gi}; splice Q's prefix
               with P's suffix (Lemma 4.8's correction for nodes in the
               L component, whose way down shares vertices with P). *)
            let rec split acc = function
              | [] -> assert false
              | x :: rest -> (
                  match Hashtbl.find_opt on_p x with
                  | Some idx -> (List.rev (x :: acc), idx)
                  | None -> split (x :: acc) rest)
            in
            let prefix, idx = split [] q_path in
            let suffix =
              Array.to_list
                (Array.sub p_paths.(gi) idx
                   (Array.length p_paths.(gi) - idx))
            in
            let whole = prefix @ List.tl suffix in
            answers.(v) <-
              Task.Follower (pairs_as_list whole @ tails.(gi - 1))
          end
        end
      done)
    t.gadgets;
  answers

(* --- keyed-advice scheme --- *)

let encode_table ~k entries =
  let w = Writer.create () in
  Writer.gamma w k;
  Writer.gamma w (List.length entries);
  List.iter
    (fun (key, answer) ->
      Writer.gamma w (String.length key);
      String.iter (fun ch -> Writer.fixed w ~width:8 (Char.code ch)) key;
      match answer with
      | Task.Leader -> Writer.bit w true
      | Task.Follower pairs ->
          Writer.bit w false;
          Writer.gamma w (List.length pairs);
          List.iter
            (fun (p, q) ->
              Writer.gamma w p;
              Writer.gamma w q)
            pairs)
    entries;
  Writer.contents w

type plan = { k : int; table : (string, (int * int) list Task.answer) Hashtbl.t }

let decode_table advice =
  let r = Reader.of_bitstring advice in
  let k = Reader.gamma r in
  let count = Reader.gamma r in
  let table = Hashtbl.create (2 * count) in
  for _ = 1 to count do
    let len = Reader.gamma r in
    let key = String.init len (fun _ -> Char.chr (Reader.fixed r ~width:8)) in
    let answer =
      if Reader.bit r then Task.Leader
      else begin
        let plen = Reader.gamma r in
        Task.Follower
          (List.init plen (fun _ ->
               let p = Reader.gamma r in
               let q = Reader.gamma r in
               (p, q)))
      end
    in
    Hashtbl.replace table key answer
  done;
  { k; table }

(* Domain-local single-slot cache: concurrent sweeps
   (Shades_runtime.Pool) must not race or thrash each other's slot. *)
let plan_cache = Domain.DLS.new_key (fun () -> None)

let plan_of advice =
  match Domain.DLS.get plan_cache with
  | Some (a, p) when a == advice -> p
  | _ ->
      let p = decode_table advice in
      Domain.DLS.set plan_cache (Some (advice, p));
      p

let cppe_scheme t =
  let oracle _g =
    let answers = cppe_assignment t in
    let tbl = Hashtbl.create (2 * Array.length answers) in
    Array.iteri
      (fun v answer ->
        let key =
          View_tree.canonical_key
            (View_tree.of_graph t.graph v ~depth:t.params.k)
        in
        match Hashtbl.find_opt tbl key with
        | None -> Hashtbl.add tbl key answer
        | Some existing ->
            (* Class-constancy: a depth-k algorithm cannot answer
               differently at nodes with equal views. *)
            if
              not
                (Task.answer_equal
                   (fun a b -> a = b)
                   existing answer)
            then
              invalid_arg
                "Jclass.cppe_scheme: assignment not constant on view \
                 classes"
      )
      answers;
    (* canonical key order: the advice encoding must not depend on the
       table's unspecified hash order *)
    encode_table ~k:t.params.k
      (List.sort
         (fun (a, _) (b, _) -> String.compare a b)
         (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []))
  in
  {
    Scheme.name = "J-class CPPE (Lemma 4.8)";
    oracle;
    rounds_of = (fun ~advice ~degree:_ -> (plan_of advice).k);
    decide =
      (fun ~advice view ->
        let plan = plan_of advice in
        match Hashtbl.find_opt plan.table (View_tree.canonical_key view) with
        | Some answer -> answer
        | None -> Task.Follower [] (* unknown view: invalid output *));
  }
