module Port_graph = Shades_graph.Port_graph
module Paths = Shades_graph.Paths
module View_tree = Shades_views.View_tree
module Task = Shades_election.Task
module Scheme = Shades_election.Scheme

type vertex = Port_graph.vertex

type params = { delta : int; k : int }

let check { delta; k } =
  if delta < 4 || k < 1 then
    invalid_arg "Uclass: need delta >= 4 and k >= 1"

let num_trees p =
  check p;
  let z = Blocks.z ~delta:p.delta ~k:p.k in
  let base = p.delta - 1 in
  let rec go acc e =
    if e = 0 then Some acc
    else if acc > max_int / base then None
    else go (acc * base) (e - 1)
  in
  go 1 z

let num_graphs_log2 p =
  match num_trees p with
  | Some y -> float_of_int y *. (log (float_of_int (p.delta - 1)) /. log 2.0)
  | None -> infinity

type t = {
  params : params;
  sigma : int array;
  graph : Port_graph.t;
  cycle_roots : vertex array array;
  heavy : vertex array array;
}

let uniform_sigma p s =
  check p;
  match num_trees p with
  | Some y ->
      if s < 1 || s > p.delta - 1 then invalid_arg "Uclass.uniform_sigma";
      Array.make y s
  | None -> invalid_arg "Uclass.uniform_sigma: class too large"

let build ({ delta; k } as params) ~sigma =
  check params;
  let y =
    match num_trees params with
    | Some y -> y
    | None -> invalid_arg "Uclass.build: class too large to instantiate"
  in
  if Array.length sigma <> y then invalid_arg "Uclass.build: |sigma| <> y";
  Array.iter
    (fun s ->
      if s < 1 || s > delta - 1 then
        invalid_arg "Uclass.build: sigma entry out of range")
    sigma;
  let proto = Proto.create () in
  (* Trees T_{j,b} whose roots form the cycle. *)
  let cycle_roots =
    Array.init y (fun j0 ->
        let x = Blocks.sequence_of_index ~delta ~k (j0 + 1) in
        Array.init 2 (fun b0 ->
            Blocks.add_t_x_b proto ~delta ~k ~x ~variant:(b0 + 1)))
  in
  (* The cycle r_{1,1}, r_{1,2}, r_{2,1}, ..., r_{y,2}: each root's port
     ∆+1 leads to the next root and ∆−1 to the previous. *)
  let ring = Array.init (2 * y) (fun i -> cycle_roots.(i / 2).(i mod 2)) in
  Array.iteri
    (fun i r ->
      Proto.link proto (r, delta + 1) (ring.((i + 1) mod (2 * y)), delta - 1))
    ring;
  (* Heavy copies T_{j,1,1}, T_{j,1,2} (copies of T_{j,1}); the σ_j port
     swap is applied directly: the connecting path towards the cycle
     lands on port ∆−1+σ_j instead of ∆−1, and the decoy path that would
     have used ∆−1+σ_j takes ∆−1. *)
  let heavy =
    Array.init y (fun j0 ->
        let x = Blocks.sequence_of_index ~delta ~k (j0 + 1) in
        Array.init 2 (fun _ ->
            Blocks.add_t_x_b proto ~delta ~k ~x ~variant:1))
  in
  let swap j0 p =
    let s = sigma.(j0) in
    if p = delta - 1 then delta - 1 + s
    else if p = delta - 1 + s then delta - 1
    else p
  in
  for j0 = 0 to y - 1 do
    for c0 = 0 to 1 do
      let r = cycle_roots.(j0).(c0) and h = heavy.(j0).(c0) in
      (* Connecting path of length k+1: port ∆ at r_{j,b}, (swapped)
         port ∆−1 at r_{j,1,b}; interior ports 1 towards the cycle, 0
         towards the heavy node. *)
      let q = Proto.fresh_many proto k in
      Proto.link proto (r, delta) (q.(0), 1);
      for i = 0 to k - 2 do
        Proto.link proto (q.(i), 0) (q.(i + 1), 1)
      done;
      Proto.link proto (q.(k - 1), 0) (h, swap j0 (delta - 1));
      (* ∆−1 decoy paths of length k+1 on (swapped) ports ∆..2∆−2;
         interior ports 0 towards the heavy node, 1 outwards. *)
      for d = 0 to delta - 2 do
        let w = Proto.fresh_many proto (k + 1) in
        Proto.link proto (h, swap j0 (delta + d)) (w.(0), 0);
        for i = 0 to k - 1 do
          Proto.link proto (w.(i), 1) (w.(i + 1), 0)
        done
      done
    done
  done;
  { params; sigma; graph = Proto.build proto; cycle_roots; heavy }

let rmin t =
  let k = t.params.k in
  let best = ref None in
  Array.iter
    (fun pair ->
      Array.iter
        (fun r ->
          let view = View_tree.of_graph t.graph r ~depth:k in
          match !best with
          | Some (_, bv) when View_tree.compare bv view <= 0 -> ()
          | _ -> best := Some (r, view))
        pair)
    t.cycle_roots;
  fst (Option.get !best)

(* --- The Lemma 3.9 algorithm, advice = the full map. --- *)

type plan = {
  delta : int;
  k : int;
  rmin_key : string; (* encoded B^k of the elected cycle node *)
  heavy_port : (string, int) Hashtbl.t; (* encoded heavy view -> port *)
}

let view_key v = Shades_bits.Bitstring.to_string (View_tree.encode v)

(* First port of a BFS shortest path from [w] to the nearest vertex
   satisfying [target]. *)
let first_port_towards g w ~target =
  let n = Port_graph.order g in
  let parent_port = Array.make n (-1) in
  let first = Array.make n (-1) in
  let queue = Queue.create () in
  let found = ref None in
  parent_port.(w) <- 0;
  Queue.add w queue;
  while !found = None && not (Queue.is_empty queue) do
    let x = Queue.take queue in
    for p = 0 to Port_graph.degree g x - 1 do
      if !found = None then begin
        let u = Port_graph.neighbor_vertex g x p in
        if parent_port.(u) < 0 then begin
          parent_port.(u) <- p;
          first.(u) <- (if x = w then p else first.(x));
          Queue.add u queue;
          if target u then found := Some u
        end
      end
    done
  done;
  match !found with
  | Some u -> first.(u)
  | None -> invalid_arg "Uclass.first_port_towards: no target"

let compute_plan advice =
  let map = Port_graph.decode advice in
  let maxdeg = Port_graph.max_degree map in
  let delta = (maxdeg + 1) / 2 in
  let is_cycle v = Port_graph.degree map v = delta + 2 in
  let heavies =
    List.filter
      (fun v -> Port_graph.degree map v = (2 * delta) - 1)
      (Port_graph.vertices map)
  in
  let k =
    let h = List.hd heavies in
    let dist = Paths.bfs_distances map h in
    let best = ref max_int in
    List.iter
      (fun v -> if is_cycle v && dist.(v) < !best then best := dist.(v))
      (Port_graph.vertices map);
    !best - 1
  in
  let rmin_key =
    let best = ref None in
    List.iter
      (fun v ->
        if is_cycle v then begin
          let view = View_tree.of_graph map v ~depth:k in
          match !best with
          | Some bv when View_tree.compare bv view <= 0 -> ()
          | _ -> best := Some view
        end)
      (Port_graph.vertices map);
    view_key (Option.get !best)
  in
  let heavy_port = Hashtbl.create 64 in
  List.iter
    (fun h ->
      let key = view_key (View_tree.of_graph map h ~depth:k) in
      let port = first_port_towards map h ~target:is_cycle in
      match Hashtbl.find_opt heavy_port key with
      | None -> Hashtbl.add heavy_port key port
      | Some p -> assert (p = port) (* Claim 1: twins answer alike *))
    heavies;
  { delta; k; rmin_key; heavy_port }

(* The same advice value is passed to every node, so a single-slot cache
   keyed by physical equality makes the n identical map analyses cost
   one.  Domain-local so concurrent sweeps (Shades_runtime.Pool) never
   race or thrash each other's slot. *)
let plan_cache = Domain.DLS.new_key (fun () -> None)

let plan_of advice =
  match Domain.DLS.get plan_cache with
  | Some (a, p) when a == advice -> p
  | _ ->
      let p = compute_plan advice in
      Domain.DLS.set plan_cache (Some (advice, p));
      p

let pe_scheme =
  {
    Scheme.name = "U-class PE (Lemma 3.9)";
    oracle = Port_graph.encode;
    rounds_of = (fun ~advice ~degree:_ -> (plan_of advice).k);
    decide =
      (fun ~advice view ->
        let plan = plan_of advice in
        let d = view.View_tree.degree in
        if d = 1 then Task.Follower 0
        else if d = plan.delta + 2 then
          if String.equal (view_key view) plan.rmin_key then Task.Leader
          else Task.Follower (plan.delta + 1)
        else if d = (2 * plan.delta) - 1 then
          Task.Follower (Hashtbl.find plan.heavy_port (view_key view))
        else begin
          match View_tree.port_towards_degree view (plan.delta + 2) with
          | Some p -> Task.Follower p
          | None -> (
              match
                View_tree.port_towards_degree view ((2 * plan.delta) - 1)
              with
              | Some p -> Task.Follower p
              | None ->
                  invalid_arg
                    "Uclass.pe_scheme: light node sees no anchor node")
        end);
  }
