(** Hypothesis-driven corruption campaigns.

    A {!scenario} names a hypothesis, an instance, the shades under
    attack, and a deterministic mutation grid; {!run} fans the mutants
    onto the domain pool and produces a {!report}; the report persists
    three ways — a sharded results store for the regression gate
    ({!save} / {!gate}), a JSON document, and a markdown write-up in the
    experiment-log discipline (hypothesis, exact command, full
    classification table, continue/stop decision) for committing under
    [experiments/].

    Determinism contract: scenarios draw no ambient randomness and
    record no wall-clock, so two runs of the same scenario produce
    byte-identical stores and reports — which is what lets {!gate}
    fail on {e any} classification drift from the blessed baseline. *)

type scenario = {
  label : string;
  hypothesis : string;
  command : string;  (** how to reproduce, for the markdown log *)
  graph_label : string;
  graph : Shades_graph.Port_graph.t;
  shades : Corrupt.shade list;
  ops : bits:int -> n:int -> Corrupt.op list;
      (** mutation grid, given the honest advice length and the order *)
  require_fooling : bool;
      (** whether the verdict demands at least one fooling corruption
          per feasible shade — the smoke gate's acceptance criterion;
          the wide campaign drops it because its hypothesis predicts
          fooling only where the renumbering moves the leader *)
}

type cell = {
  task : Shades_election.Task.kind;
  graph : string;
  op : string;
  classification : Corrupt.classification;
}

type shade_summary = {
  task : Shades_election.Task.kind;
  feasible : bool;
      (** the honest oracle accepted the instance; infeasible shades
          are reported with zero tallies, not silently dropped *)
  reference_leader : int;
  reference_rounds : int;
  advice_bits : int;
  detected : int;
  harmless : int;
  fooling : int;
}

type report = {
  label : string;
  hypothesis : string;
  command : string;
  graph_label : string;
  require_fooling : bool;  (** copied from the scenario *)
  cells : cell list;
  summaries : shade_summary list;
}

val smoke : unit -> scenario
(** The committed CI gate: all four map-advice shades on [path:4] —
    the smallest instance where every shade is feasible with at least
    two candidate leaders — under evenly spaced flips, bursts,
    truncations, and the reversal renumber-swap. *)

val wide : unit -> scenario list
(** The nightly, non-gating extension: the same hypothesis over more
    instances and a denser mutation grid. *)

val run : ?domains:int -> scenario -> report
(** Reference runs per shade (sequential), then every mutant classified
    on the domain pool ([domains] as {!Shades_pool.map}).  Results are
    input-ordered, hence deterministic at every domain count. *)

val verdict : ?require_fooling:bool -> report -> (unit, string list) result
(** The acceptance contract: every feasible shade shows at least one
    fooling corruption (when demanded — see below), and every accepted
    mutant agrees with its own classification (a "harmless" cell whose
    leader moved, or a "fooling" cell whose leader did not, would be an
    undetected corruption).  [require_fooling] overrides the report's
    own flag; by default the report decides — the smoke campaign
    demands fooling, the wide one only consistency, because its
    hypothesis predicts the renumber swap fools {e exactly} the shades
    whose leader is not fixed by the renumbering (on a star, the
    degree-unique center survives any renumbering for S/PE/PPE). *)

val to_store : report -> Shades_runtime.Store.t
(** One record per reference run and per mutant; params
    [family/task/graph/op/class/reason/leader] key the regression
    diff. *)

val slice : Shades_runtime.Store.record -> (string * Shades_runtime.Store.Json.t) list
(** Shard key: (family, task) — one shard per shade. *)

val save : dir:string -> report -> unit
(** {!to_store} written as a sharded store under [dir] ({!slice}
    sharding) — the blessable baseline. *)

val gate : baseline_dir:string -> report -> (unit, string list) result
(** The [make check] gate: {!verdict} must pass and the report's store
    must match the blessed baseline exactly (streamed shard-by-shard
    via manifest digests).  [Error] lists every problem. *)

val json_of_report : report -> Shades_runtime.Store.Json.t
val markdown_of_report : report -> string
