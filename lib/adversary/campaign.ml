module Port_graph = Shades_graph.Port_graph
module Gen = Shades_graph.Gen
module Task = Shades_election.Task
module Pool = Shades_pool
module Store = Shades_runtime.Store
module Json = Shades_json.Json

type scenario = {
  label : string;
  hypothesis : string;
  command : string;
  graph_label : string;
  graph : Port_graph.t;
  shades : Corrupt.shade list;
  ops : bits:int -> n:int -> Corrupt.op list;
  require_fooling : bool;
}

type cell = {
  task : Task.kind;
  graph : string;
  op : string;
  classification : Corrupt.classification;
}

type shade_summary = {
  task : Task.kind;
  feasible : bool;
  reference_leader : int;
  reference_rounds : int;
  advice_bits : int;
  detected : int;
  harmless : int;
  fooling : int;
}

type report = {
  label : string;
  hypothesis : string;
  command : string;
  graph_label : string;
  require_fooling : bool;
  cells : cell list;
  summaries : shade_summary list;
}

let default_ops ~bits ~n =
  Corrupt.flips ~bits ~count:8
  @ Corrupt.bursts ~bits ~len:8 ~count:3
  @ Corrupt.truncations ~bits ~count:3
  @ [ Corrupt.(renumber_swap ~label:"reversal") (Gen.path n) (Corrupt.reversal n) ]

(* The committed CI gate: the smallest instance where every shade is
   feasible with at least two candidate leaders, so the reversal swap
   provably moves the election (the map-vertex-order argument —
   {!Corrupt}).  On path:4 all four vertices are view-singletons at
   depth 1 and the reversal exchanges the elected endpoint. *)
let smoke () =
  let n = 4 in
  {
    label = "adversary-smoke";
    hypothesis =
      "H-ADV-1: bit-level damage to map advice is detected (codec / \
       view-lookup / verifier / round budget), while advice honestly \
       computed for an isomorphic renumbering fools every shade — valid \
       outputs, wrong leader — because the decision procedure elects the \
       first feasible singleton in map vertex order.";
    command = "shades adversary campaign --smoke --out <dir>";
    graph_label = Printf.sprintf "path:%d" n;
    graph = Gen.path n;
    shades = Corrupt.map_shades;
    ops = default_ops;
    require_fooling = true;
  }

(* Nightly, non-gating: same hypothesis over more instances and a
   denser mutation grid. *)
let wide () =
  let scenario ~graph_label ~graph =
    {
      label = "adversary-wide-" ^ graph_label;
      hypothesis =
        "H-ADV-2: the smoke classification generalizes across instances \
         — no bit-level mutation fools any shade, and reversal swaps \
         fool exactly the shades whose leader is not fixed by the \
         renumbering.";
      command =
        Printf.sprintf "shades adversary campaign --wide --out <dir> (%s)"
          graph_label;
      graph_label;
      graph;
      shades = Corrupt.map_shades;
      ops =
        (fun ~bits ~n ->
          Corrupt.flips ~bits ~count:24
          @ Corrupt.bursts ~bits ~len:16 ~count:6
          @ Corrupt.truncations ~bits ~count:6
          @ [
              Corrupt.(renumber_swap ~label:"reversal") graph
                (Corrupt.reversal n);
            ]);
      (* H-ADV-2 predicts fooling only where the renumbering moves the
         leader — on a star the degree-unique center survives it — so
         the wide verdict checks consistency, not fooling presence *)
      require_fooling = false;
    }
  in
  [
    scenario ~graph_label:"path:4" ~graph:(Gen.path 4);
    scenario ~graph_label:"path:5" ~graph:(Gen.path 5);
    scenario ~graph_label:"path:6" ~graph:(Gen.path 6);
    scenario ~graph_label:"star:4" ~graph:(Gen.star 4);
  ]

let tally cells task =
  List.fold_left
    (fun (d, h, f) (c : cell) ->
      if c.task <> task then (d, h, f)
      else
        match c.classification with
        | Corrupt.Detected _ -> (d + 1, h, f)
        | Corrupt.Harmless _ -> (d, h + 1, f)
        | Corrupt.Fooling _ -> (d, h, f + 1))
    (0, 0, 0) cells

let run ?domains (scenario : scenario) =
  let n = Port_graph.order scenario.graph in
  (* Reference runs are sequential (one per shade); mutants fan out on
     the pool.  An infeasible shade (the honest oracle itself rejects
     the instance) is reported, not hidden. *)
  let prepared =
    List.map
      (fun shade ->
        match Corrupt.prepare shade scenario.graph with
        | p -> (shade, Some p)
        | exception Invalid_argument _ -> (shade, None))
      scenario.shades
  in
  let jobs =
    List.concat_map
      (fun (shade, p) ->
        match p with
        | None -> []
        | Some p ->
            List.map
              (fun op -> (Corrupt.task_of shade, p, op))
              (scenario.ops ~bits:p.Corrupt.advice_bits ~n))
      prepared
  in
  let classified =
    Pool.map ?domains
      (fun (task, p, op) ->
        ( task,
          Corrupt.op_label op,
          (p.Corrupt.classify op
           : Corrupt.classification) ))
      (Array.of_list jobs)
  in
  let cells =
    Array.to_list classified
    |> List.map (fun (task, op, classification) ->
           { task; graph = scenario.graph_label; op; classification })
  in
  let summaries =
    List.map
      (fun (shade, p) ->
        let task = Corrupt.task_of shade in
        match p with
        | None ->
            {
              task;
              feasible = false;
              reference_leader = -1;
              reference_rounds = 0;
              advice_bits = 0;
              detected = 0;
              harmless = 0;
              fooling = 0;
            }
        | Some p ->
            let detected, harmless, fooling = tally cells task in
            {
              task;
              feasible = true;
              reference_leader = p.Corrupt.reference_leader;
              reference_rounds = p.Corrupt.reference_rounds;
              advice_bits = p.Corrupt.advice_bits;
              detected;
              harmless;
              fooling;
            })
      prepared
  in
  {
    label = scenario.label;
    hypothesis = scenario.hypothesis;
    command = scenario.command;
    graph_label = scenario.graph_label;
    require_fooling = scenario.require_fooling;
    cells;
    summaries;
  }

let verdict ?require_fooling report =
  let require_fooling =
    Option.value require_fooling ~default:report.require_fooling
  in
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun s ->
      if s.feasible then begin
        if require_fooling && s.fooling < 1 then
          fail "%s: no fooling corruption found" (Task.kind_to_string s.task);
        (* the consistency cross-check: an accepted mutant must agree
           with its own classification — a "harmless" wrong leader or a
           "fooling" same leader would be an undetected corruption *)
        List.iter
          (fun (c : cell) ->
            if c.task = s.task then
              match c.classification with
              | Corrupt.Harmless { leader; _ }
                when leader <> s.reference_leader ->
                  fail "%s/%s: classified harmless but leader moved"
                    (Task.kind_to_string s.task) c.op
              | Corrupt.Fooling { leader; reference; _ }
                when leader = reference ->
                  fail "%s/%s: classified fooling but leader unchanged"
                    (Task.kind_to_string s.task) c.op
              | _ -> ())
          report.cells
      end)
    report.summaries;
  match List.rev !problems with [] -> Ok () | ps -> Error ps

(* --- persistence: results store + markdown + JSON report --- *)

let record_of_cell c =
  let class_ = Corrupt.class_label c.classification in
  let reason, rounds, leader =
    match c.classification with
    | Corrupt.Detected { reason } -> (reason, 0, -1)
    | Corrupt.Harmless { leader; rounds } -> ("", rounds, leader)
    | Corrupt.Fooling { leader; rounds; _ } -> ("", rounds, leader)
  in
  {
    Store.params =
      [
        ("family", Json.String "adversary");
        ("task", Json.String (Task.kind_to_string c.task));
        ("graph", Json.String c.graph);
        ("op", Json.String c.op);
        ("class", Json.String class_);
        ("reason", Json.String reason);
        ("leader", Json.Int leader);
      ];
    rounds;
    messages = 0;
    advice_bits = 0;
    wall_ns = 0;
    metrics = [];
  }

let record_of_summary (s : shade_summary) graph =
  {
    Store.params =
      [
        ("family", Json.String "adversary");
        ("task", Json.String (Task.kind_to_string s.task));
        ("graph", Json.String graph);
        ("op", Json.String "reference");
        ( "class",
          Json.String (if s.feasible then "reference" else "infeasible") );
        ("reason", Json.String "");
        ("leader", Json.Int s.reference_leader);
      ];
    rounds = s.reference_rounds;
    messages = 0;
    advice_bits = s.advice_bits;
    wall_ns = 0;
    metrics = [];
  }

let to_store report =
  Store.make ~label:report.label
    (List.map (fun s -> record_of_summary s report.graph_label)
       report.summaries
    @ List.map record_of_cell report.cells)

(* One shard per task: re-running a campaign for one shade replaces one
   shard; the manifest digests drive the gate's skip-unchanged diff. *)
let slice r =
  List.filter (fun (k, _) -> k = "family" || k = "task") r.Store.params

let save ~dir report = ignore (Store.Sharded.save ~slice ~dir (to_store report))

let gate ~baseline_dir report =
  match verdict report with
  | Error ps -> Error (List.map (fun p -> "verdict: " ^ p) ps)
  | Ok () -> (
      match Store.Sharded.diff ~slice ~baseline_dir (to_store report) with
      | Error e -> Error [ "baseline: " ^ e ]
      | Ok [] -> Ok ()
      | Ok changes ->
          Error
            (List.map
               (fun (file, ch) -> file ^ ": " ^ Store.pp_change ch)
               changes))

let json_of_report report =
  Json.Obj
    [
      ("label", Json.String report.label);
      ("hypothesis", Json.String report.hypothesis);
      ("command", Json.String report.command);
      ("graph", Json.String report.graph_label);
      ("require_fooling", Json.Bool report.require_fooling);
      ( "summaries",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("task", Json.String (Task.kind_to_string s.task));
                   ("feasible", Json.Bool s.feasible);
                   ("reference_leader", Json.Int s.reference_leader);
                   ("reference_rounds", Json.Int s.reference_rounds);
                   ("advice_bits", Json.Int s.advice_bits);
                   ("detected", Json.Int s.detected);
                   ("harmless", Json.Int s.harmless);
                   ("fooling", Json.Int s.fooling);
                 ])
             report.summaries) );
      ( "cells",
        Json.List
          (List.map
             (fun (c : cell) ->
               Json.Obj
                 [
                   ("task", Json.String (Task.kind_to_string c.task));
                   ("graph", Json.String c.graph);
                   ("op", Json.String c.op);
                   ("class", Json.String (Corrupt.class_label c.classification));
                   ( "detail",
                     Json.String
                       (match c.classification with
                       | Corrupt.Detected { reason } -> reason
                       | Corrupt.Harmless { leader; _ } ->
                           Printf.sprintf "leader %d" leader
                       | Corrupt.Fooling { leader; reference; _ } ->
                           Printf.sprintf "leader %d instead of %d" leader
                             reference) );
                 ])
             report.cells) );
      ( "verdict",
        match verdict report with
        | Ok () -> Json.String "pass"
        | Error ps -> Json.List (List.map (fun p -> Json.String p) ps) );
    ]

let markdown_of_report report =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# Campaign: %s" report.label;
  line "";
  line "## Hypothesis";
  line "";
  line "%s" report.hypothesis;
  line "";
  line "## Command";
  line "";
  line "```";
  line "%s" report.command;
  line "```";
  line "";
  line "Instance: `%s`." report.graph_label;
  line "";
  line "## Per-shade tallies";
  line "";
  line "| Task | Feasible | Ref. leader | Ref. rounds | Advice bits | Detected | Harmless | Fooling |";
  line "|------|----------|-------------|-------------|-------------|----------|----------|---------|";
  List.iter
    (fun s ->
      line "| %s | %b | %d | %d | %d | %d | %d | %d |"
        (Task.kind_to_string s.task)
        s.feasible s.reference_leader s.reference_rounds s.advice_bits
        s.detected s.harmless s.fooling)
    report.summaries;
  line "";
  line "## Classifications";
  line "";
  line "| Task | Op | Class | Detail |";
  line "|------|----|-------|--------|";
  List.iter
    (fun (c : cell) ->
      let class_, detail =
        match c.classification with
        | Corrupt.Detected { reason } -> ("detected", reason)
        | Corrupt.Harmless { leader; _ } ->
            ("harmless", Printf.sprintf "leader %d" leader)
        | Corrupt.Fooling { leader; reference; _ } ->
            ( "fooling",
              Printf.sprintf "leader %d instead of %d" leader reference )
      in
      line "| %s | `%s` | %s | %s |" (Task.kind_to_string c.task) c.op class_
        detail)
    report.cells;
  line "";
  line "## Verdict and decision";
  line "";
  (match verdict report with
  | Ok () ->
      if report.require_fooling then
        line
          "**Pass**: every shade has at least one fooling corruption and \
           every accepted mutant agrees with its classification.  Decision: \
           continue — the smoke instance is gated in `make check`; widen \
           via the nightly campaign."
      else
        line
          "**Pass**: every accepted mutant agrees with its classification \
           (fooling presence not demanded on this instance — the \
           renumbering need not move the leader).  Decision: continue.";
  | Error ps ->
      line "**Fail**:";
      line "";
      List.iter (fun p -> line "- %s" p) ps);
  Buffer.contents b
