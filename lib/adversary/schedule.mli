(** Adversarial α-synchronizer schedules: explicit delay plans and a
    deterministic search for slow ones.

    The paper's asynchrony remark (Section 1) is unconditional: {e any}
    delay assignment yields the synchronous outputs and round count,
    because a node advances only on a full set of round-[r] wires.  The
    adversary therefore cannot change {e what} is computed — only
    {e when}.  This module makes that concrete: a {!plan} assigns a
    fixed positive delay to every directed edge, and {!search} looks for
    the plan maximizing the {e makespan} (virtual completion time,
    {!Shades_localsim.Async_engine.run_plan}) — the quantity asynchrony
    does surrender to the adversary.  Everything here is deterministic;
    randomness enters only through explicit seeds ({!of_seed},
    {!sweep_seeds}). *)

type plan = { delays : float array array }
(** [delays.(v).(p)]: virtual-time delay of every wire sent on port [p]
    of vertex [v].  Per directed edge, constant across rounds — a "slow
    link" adversary.  All entries are finite and positive. *)

val make :
  Shades_graph.Port_graph.t -> (v:int -> port:int -> float) -> plan
(** Build a plan from a per-directed-edge assignment.
    @raise Invalid_argument on a non-finite or non-positive delay. *)

val uniform : Shades_graph.Port_graph.t -> float -> plan
(** Every directed edge delayed by the same amount. *)

val of_seed : Shades_graph.Port_graph.t -> seed:int -> plan
(** Per-edge delays drawn in deterministic (vertex, port) order from a
    PRNG seeded with [seed] — the plan-space counterpart of the seeded
    async engine (which redraws per wire; this draws once per edge). *)

val delay_fn : plan -> round:int -> v:int -> port:int -> float
(** The plan as {!Shades_localsim.Async_engine.run_plan} consumes it
    (the [round] argument is ignored — plans are round-independent). *)

val set : plan -> v:int -> port:int -> float -> plan
(** Functional single-edge update (the search's move operator).
    @raise Invalid_argument on a non-finite or non-positive delay. *)

val makespan :
  'o Shades_election.Scheme.t -> Shades_graph.Port_graph.t -> plan -> float
(** Run the scheme asynchronously under the plan and report the virtual
    completion time ({!Shades_election.Scheme.run_plan}). *)

val sweep_seeds :
  'o Shades_election.Scheme.t ->
  Shades_graph.Port_graph.t ->
  seeds:int list ->
  (int * float) list
(** Per-seed makespans of {!of_seed} plans — the delay {e distribution}
    over swept seeds, for campaign baselines. *)

type search_result = {
  plan : plan;
  makespan : float;
  evaluations : int;  (** scheme executions spent by the search *)
}

val default_menu : float list
(** Candidate delays the search branches over: [0.05; 0.25; 0.5; 1.0]. *)

val search :
  ?beam:int ->
  ?menu:float list ->
  ?passes:int ->
  'o Shades_election.Scheme.t ->
  Shades_graph.Port_graph.t ->
  init:plan ->
  search_result
(** Beam-searched coordinate ascent maximizing {!makespan}: directed
    edges in deterministic (vertex, port) order, each beam member
    branching over [menu] (default {!default_menu}), the [beam]
    (default 1 = greedy) best plans surviving under a stable ranking;
    up to [passes] (default 2) full sweeps with early exit when a pass
    stops improving.  Fully deterministic for fixed arguments.  Each
    move costs one full scheme execution, so keep graphs small.
    @raise Invalid_argument on [beam < 1], an empty menu, or a
    non-positive menu entry. *)
