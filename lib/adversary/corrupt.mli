(** Advice-corruption campaigns: mutate an oracle's output, run the
    scheme on the corrupted string, and classify what happened.

    Advice is the trusted channel of the paper's framework — the oracle
    is honest by definition.  This module asks the systems question
    instead: what does a scheme do on a string the oracle did {e not}
    produce?  Three answers are possible, and the taxonomy is the point:

    - {!Detected}: the run failed (decode error, view not found in the
      map, round budget exhausted) or the verifier rejected the outputs.
      The corruption was caught — by the algorithm or by the referee.
    - {!Harmless}: valid outputs, same leader as the honest run.
    - {!Fooling}: valid outputs, {e different} leader — every node's
      answer passes the referee, yet the corrupted string moved the
      election.  This is the pigeonhole mechanism of Theorems 2.9 /
      3.11 / 4.11 made executable.

    The guaranteed fooling channel is the {e cross-instance swap}
    ({!renumber_swap}): map advice honestly computed for an
    isomorphically renumbered copy of the same network.  Every view
    still matches the map — anonymity means no node can tell the two
    numberings apart — but the decision procedure elects the first
    feasible singleton class {e in map vertex order}
    ({!Shades_election.Index}), so re-numbering moves the leader while
    keeping every path valid.  Bit-level damage (flips, bursts,
    truncations), by contrast, almost always lands in {!Detected}: the
    map codec and the view-lookup are fragile by construction. *)

type op =
  | Flip of int  (** flip one bit *)
  | Burst of { pos : int; len : int }  (** flip [len] bits from [pos] *)
  | Truncate of int  (** keep only the first [i] bits *)
  | Swap of { label : string; donor : Shades_graph.Port_graph.t }
      (** replace the advice by the same oracle's honest output on
          [donor] — a cross-instance swap *)

val op_label : op -> string
(** Stable label, e.g. ["flip:17"], ["swap:renumber-reversal"] — the
    campaign store key. *)

val mutate :
  oracle:(Shades_graph.Port_graph.t -> Shades_bits.Bitstring.t) ->
  Shades_graph.Port_graph.t ->
  op ->
  Shades_bits.Bitstring.t
(** The corrupted advice for [g].
    @raise Invalid_argument on an out-of-range position. *)

(** One shade packed with its referee, existentially over the output
    type — campaigns iterate uniformly over all four. *)
type shade =
  | Shade : {
      task : Shades_election.Task.kind;
      scheme : 'o Shades_election.Scheme.t;
      verify :
        Shades_graph.Port_graph.t ->
        'o array ->
        (Shades_graph.Port_graph.vertex, string) result;
    }
      -> shade

val task_of : shade -> Shades_election.Task.kind

val map_shades : shade list
(** The four map-advice schemes ({!Shades_election.Map_advice}) with
    their {!Shades_election.Verify} referees, in S, PE, PPE, CPPE
    order — the campaign's default targets. *)

type classification =
  | Detected of { reason : string }
  | Harmless of { leader : int; rounds : int }
  | Fooling of { leader : int; reference : int; rounds : int }

val class_label : classification -> string
(** ["detected"] / ["harmless"] / ["fooling"]. *)

type prepared = {
  classify : op -> classification;
  reference_leader : int;
  reference_rounds : int;
  advice_bits : int;  (** honest advice length *)
}

val prepare : ?slack:int -> shade -> Shades_graph.Port_graph.t -> prepared
(** Run the honest reference once (its leader and round count anchor
    every classification), then classify mutants against it.  Mutant
    runs are capped at [reference_rounds + slack] (default 2) rounds —
    corrupted advice demanding a huge view depth is {!Detected} by
    budget, never allowed to exchange exponentially growing views.
    [Out_of_memory] and [Stack_overflow] are never swallowed.
    @raise Invalid_argument if the {e honest} run fails its own
    verifier (an infeasible instance). *)

(** {1 Mutation generators}

    Deterministic op lists — campaigns never draw ambient randomness. *)

val reversal : int -> int array
(** The order-reversing permutation of [0 .. n-1] — the canonical
    nontrivial renumbering. *)

val renumber_swap :
  ?label:string -> Shades_graph.Port_graph.t -> int array -> op
(** [Swap] whose donor is [Port_graph.renumber g perm] (label default
    ["renumber"]). *)

val flips : bits:int -> count:int -> op list
(** [count] single-bit flips at evenly spaced distinct positions. *)

val bursts : bits:int -> len:int -> count:int -> op list
(** Bursts of [len] (clipped at the end) at evenly spaced positions.
    @raise Invalid_argument if [len < 1]. *)

val truncations : bits:int -> count:int -> op list
(** Truncations to evenly spaced keep-lengths (including 0 — empty
    advice — when [count > 0]). *)
