module Port_graph = Shades_graph.Port_graph
module Scheme = Shades_election.Scheme

(* delays.(v).(p): the fixed virtual-time delay of every wire pushed on
   port [p] of sender [v].  Round-independent by design: the
   α-synchronizer makes rounds plan-invariant, so a richer per-round
   plan buys the adversary nothing the per-edge assignment cannot. *)
type plan = { delays : float array array }

let check_positive d =
  if not (Float.is_finite d) || d <= 0.0 then
    invalid_arg "Schedule: delays must be finite and positive"

let make g f =
  {
    delays =
      Array.init (Port_graph.order g) (fun v ->
          Array.init (Port_graph.degree g v) (fun p ->
              let d = f ~v ~port:p in
              check_positive d;
              d));
  }

let uniform g d =
  check_positive d;
  make g (fun ~v:_ ~port:_ -> d)

(* Seeded per-edge draws in deterministic (v, p) order — the plan-space
   analogue of {!Async_engine.run}'s per-push draws.  The two differ:
   here a directed edge keeps one delay for the whole run (a "slow
   link"), there every wire redraws (a "jittery link"). *)
let of_seed g ~seed =
  let rng = Random.State.make [| seed; 0xad5e |] in
  make g (fun ~v:_ ~port:_ -> 0.01 +. Random.State.float rng 1.0)

let delay_fn plan ~round:_ ~v ~port = plan.delays.(v).(port)

let set plan ~v ~port d =
  check_positive d;
  let delays = Array.map Array.copy plan.delays in
  delays.(v).(port) <- d;
  { delays }

let makespan scheme g plan =
  snd (Scheme.run_plan ~delay:(delay_fn plan) scheme g)

let sweep_seeds scheme g ~seeds =
  List.map (fun seed -> (seed, makespan scheme g (of_seed g ~seed))) seeds

type search_result = {
  plan : plan;
  makespan : float;
  evaluations : int;  (** scheme executions spent by the search *)
}

let default_menu = [ 0.05; 0.25; 0.5; 1.0 ]

(* Beam-searched coordinate ascent.  Directed edges are visited in
   deterministic (v, p) order; at each edge every beam member branches
   over the delay menu, and the [beam] highest-makespan plans survive
   (makespan desc, then insertion order — fully deterministic, no
   ambient randomness).  [passes] full sweeps, early exit when a pass
   improves nothing. *)
let search ?(beam = 1) ?(menu = default_menu) ?(passes = 2) scheme g ~init =
  if beam < 1 then invalid_arg "Schedule.search: beam must be >= 1";
  if menu = [] then invalid_arg "Schedule.search: empty menu";
  List.iter check_positive menu;
  let evaluations = ref 0 in
  let eval plan =
    incr evaluations;
    makespan scheme g plan
  in
  let front = ref [ (init, eval init) ] in
  let best () =
    List.fold_left
      (fun (bp, bm) (p, m) -> if m > bm then (p, m) else (bp, bm))
      (List.hd !front) (List.tl !front)
  in
  let improved = ref true in
  let pass = ref 0 in
  while !improved && !pass < passes do
    incr pass;
    let _, before = best () in
    for v = 0 to Port_graph.order g - 1 do
      for p = 0 to Port_graph.degree g v - 1 do
        let candidates =
          List.concat_map
            (fun (plan, m) ->
              (plan, m)
              :: List.filter_map
                   (fun d ->
                     if plan.delays.(v).(p) = d then None
                     else
                       let plan' = set plan ~v ~port:p d in
                       Some (plan', eval plan'))
                   menu)
            !front
        in
        (* stable sort: ties keep insertion (parent-before-branch)
           order, so the beam is deterministic *)
        let ranked =
          List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) candidates
        in
        front := List.filteri (fun i _ -> i < beam) ranked
      done
    done;
    let _, after = best () in
    improved := after > before
  done;
  let plan, makespan = best () in
  { plan; makespan; evaluations = !evaluations }
