module Bitstring = Shades_bits.Bitstring
module Port_graph = Shades_graph.Port_graph
module Engine = Shades_localsim.Engine
module Task = Shades_election.Task
module Scheme = Shades_election.Scheme
module Map_advice = Shades_election.Map_advice
module Verify = Shades_election.Verify

type op =
  | Flip of int
  | Burst of { pos : int; len : int }
  | Truncate of int
  | Swap of { label : string; donor : Port_graph.t }

let op_label = function
  | Flip i -> Printf.sprintf "flip:%d" i
  | Burst { pos; len } -> Printf.sprintf "burst:%d+%d" pos len
  | Truncate keep -> Printf.sprintf "truncate:%d" keep
  | Swap { label; _ } -> Printf.sprintf "swap:%s" label

let flip_range advice ~pos ~len =
  Bitstring.of_bools
    (List.mapi
       (fun j b -> if j >= pos && j < pos + len then not b else b)
       (Bitstring.to_bools advice))

let mutate ~oracle g op =
  let advice = oracle g in
  let bits = Bitstring.length advice in
  match op with
  | Flip i ->
      if i < 0 || i >= bits then invalid_arg "Corrupt.mutate: flip out of range";
      flip_range advice ~pos:i ~len:1
  | Burst { pos; len } ->
      if pos < 0 || len < 1 || pos + len > bits then
        invalid_arg "Corrupt.mutate: burst out of range";
      flip_range advice ~pos ~len
  | Truncate keep ->
      if keep < 0 || keep > bits then
        invalid_arg "Corrupt.mutate: truncation out of range";
      Bitstring.sub advice 0 keep
  | Swap { donor; _ } -> oracle donor

type shade =
  | Shade : {
      task : Task.kind;
      scheme : 'o Scheme.t;
      verify :
        Port_graph.t -> 'o array -> (Port_graph.vertex, string) result;
    }
      -> shade

let task_of (Shade { task; _ }) = task

let map_shades =
  [
    Shade
      { task = Task.S; scheme = Map_advice.selection; verify = Verify.selection };
    Shade
      {
        task = Task.PE;
        scheme = Map_advice.port_election;
        verify = Verify.port_election;
      };
    Shade
      {
        task = Task.PPE;
        scheme = Map_advice.port_path_election;
        verify = Verify.port_path_election;
      };
    Shade
      {
        task = Task.CPPE;
        scheme = Map_advice.complete_port_path_election;
        verify = Verify.complete_port_path_election;
      };
  ]

type classification =
  | Detected of { reason : string }
  | Harmless of { leader : int; rounds : int }
  | Fooling of { leader : int; reference : int; rounds : int }

let class_label = function
  | Detected _ -> "detected"
  | Harmless _ -> "harmless"
  | Fooling _ -> "fooling"

type prepared = {
  classify : op -> classification;
  reference_leader : int;
  reference_rounds : int;
  advice_bits : int;
}

let prepare ?(slack = 2) (Shade { scheme; verify; _ }) g =
  let reference = Scheme.run scheme g in
  let reference_leader =
    match verify g reference.Scheme.outputs with
    | Ok l -> l
    | Error e -> invalid_arg ("Corrupt.prepare: reference run invalid: " ^ e)
  in
  (* Cap the mutant's round budget just above the reference: corrupted
     advice can decode to a map demanding an absurd view depth, and
     views grow exponentially with rounds — over-budget is Detected,
     not a stuck process. *)
  let max_rounds = reference.Scheme.rounds + slack in
  let classify op =
    let advice = mutate ~oracle:scheme.Scheme.oracle g op in
    match Scheme.run_with_advice ~max_rounds scheme g ~advice with
    | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
    | exception Engine.Did_not_terminate r ->
        Detected
          { reason = Printf.sprintf "round budget exhausted after %d rounds" r }
    | exception e -> Detected { reason = Printexc.to_string e }
    | run -> (
        match verify g run.Scheme.outputs with
        | Error reason -> Detected { reason = "verifier: " ^ reason }
        | Ok leader when leader = reference_leader ->
            Harmless { leader; rounds = run.Scheme.rounds }
        | Ok leader ->
            Fooling
              { leader; reference = reference_leader; rounds = run.Scheme.rounds })
  in
  {
    classify;
    reference_leader;
    reference_rounds = reference.Scheme.rounds;
    advice_bits = reference.Scheme.advice_bits;
  }

let reversal n = Array.init n (fun i -> n - 1 - i)

let renumber_swap ?(label = "renumber") g perm =
  Swap { label; donor = Port_graph.renumber g perm }

(* [count] evenly spaced distinct positions in [0 .. bits-1]. *)
let spread ~bits ~count =
  if bits <= 0 || count <= 0 then []
  else
    List.init count (fun i -> i * bits / count)
    |> List.sort_uniq Int.compare

let flips ~bits ~count = List.map (fun i -> Flip i) (spread ~bits ~count)

let bursts ~bits ~len ~count =
  if len < 1 then invalid_arg "Corrupt.bursts: len must be >= 1";
  List.map
    (fun pos -> Burst { pos; len = min len (bits - pos) })
    (spread ~bits ~count)

let truncations ~bits ~count =
  List.map (fun keep -> Truncate keep) (spread ~bits ~count)
