(** Crash-stop fault campaigns against election schemes.

    The engines execute any fault plan exactly
    ({!Shades_localsim.Engine.run_with_faults}, byte-identical under
    sharding); this module runs a {e scheme} under a plan and names what
    happened.  The paper's algorithms are full-information protocols
    with no fault tolerance whatsoever — a crashed neighbour starves a
    live node's view exchange — so the expected outcome on any
    crash-during-execution plan is an honest {!Aborted}, not a wrong
    answer.  Plans whose victims crash after every live node decided
    (or on nodes that decide at round 0) can still {!Survived}. *)

type outcome =
  | Survived of { rounds : int; decided : int; crashed : int }
      (** every live node decided; [decided] counts them, [crashed] the
          nodes that actually went down before deciding (a victim whose
          crash round falls after its decision never does) *)
  | Stalled of { rounds : int }
      (** {!Shades_localsim.Engine.Did_not_terminate}: live nodes still
          undecided at the round budget *)
  | Aborted of { reason : string }
      (** the algorithm itself failed — for view-exchange schemes, the
          inbox-completeness assertion of a starved live node *)

val normalize :
  n:int -> Shades_localsim.Engine.crash list -> Shades_localsim.Engine.crash list
(** Canonical plan: one entry per victim (earliest crash wins, rounds
    clamped to [>= 0]), victims ascending — what
    {!Shades_localsim.Engine.crash_schedule} effectively executes.
    @raise Invalid_argument on a victim outside [0 .. n-1]. *)

val run :
  ?max_rounds:int ->
  'o Shades_election.Scheme.t ->
  Shades_graph.Port_graph.t ->
  faults:Shades_localsim.Engine.crash list ->
  outcome
(** Execute the scheme under the plan and classify.  [Out_of_memory]
    and [Stack_overflow] are never swallowed. *)

val describe : outcome -> string
(** One human-readable line. *)
