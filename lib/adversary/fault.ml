module Port_graph = Shades_graph.Port_graph
module Engine = Shades_localsim.Engine
module Full_info = Shades_localsim.Full_info
module Scheme = Shades_election.Scheme

type outcome =
  | Survived of { rounds : int; decided : int; crashed : int }
  | Stalled of { rounds : int }
  | Aborted of { reason : string }

let normalize ~n faults =
  let crash_at = Engine.crash_schedule ~n faults in
  let plan = ref [] in
  for v = n - 1 downto 0 do
    if crash_at.(v) < max_int then
      plan := { Engine.victim = v; at_round = crash_at.(v) } :: !plan
  done;
  !plan

let run ?max_rounds (scheme : _ Scheme.t) g ~faults =
  let n = Port_graph.order g in
  let faults = normalize ~n faults in
  let advice = scheme.Scheme.oracle g in
  match
    Full_info.run_adaptive_with_faults ?max_rounds g ~advice
      ~rounds_of:scheme.Scheme.rounds_of ~decide:scheme.Scheme.decide ~faults
  with
  | outputs, rounds ->
      let decided =
        Array.fold_left
          (fun acc o -> if Option.is_some o then acc + 1 else acc)
          0 outputs
      in
      (* a victim scheduled after its own decision never goes down, so
         count the nodes that actually ended without an output *)
      Survived { rounds; decided; crashed = n - decided }
  | exception Engine.Did_not_terminate rounds -> Stalled { rounds }
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception Assert_failure _ ->
      (* the view-exchange step's inbox-completeness assertion: a live
         node missed a crashed neighbour's message — the honest failure
         mode of the paper's non-fault-tolerant protocol *)
      Aborted { reason = "view exchange incomplete: neighbour crashed" }
  | exception e -> Aborted { reason = Printexc.to_string e }

let describe = function
  | Survived { rounds; decided; crashed } ->
      Printf.sprintf "survived: %d live nodes decided in %d rounds (%d crashed)"
        decided rounds crashed
  | Stalled { rounds } ->
      Printf.sprintf "stalled: live nodes undecided at round budget %d" rounds
  | Aborted { reason } -> Printf.sprintf "aborted: %s" reason
