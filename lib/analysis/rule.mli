(** The rule interface and the typed-AST walking toolkit rules share.

    A rule is a named check over one compilation unit.  Rules match
    identifier {e paths} from the typed AST — already resolved by the
    compiler, so aliases like [module PG = Shades_graph.Port_graph] and
    dune's [Lib__Module] name mangling are normalized away before
    matching. *)

type t = {
  name : string;  (** registry name, as given to [--rules] *)
  severity : Finding.severity;
  doc : string;  (** one line, rendered into the [--rules] help text *)
  check : Cmt_load.unit_info -> Finding.t list;
}

val finding :
  rule:t -> unit:Cmt_load.unit_info -> loc:Location.t -> string -> Finding.t
(** Build a finding for [rule] at [loc] in [unit]. *)

val normalize : Path.t -> string
(** A resolved path as a stable dotted name: dune wrapper prefixes
    ([Shades_graph__Port_graph] → [Port_graph]) and the [Stdlib] head
    segment are stripped, so [Hashtbl.fold] matches however the stdlib
    was reached. *)

val matches : string -> string list -> bool
(** [matches name patterns] — [name] equals a pattern or ends with
    [. ^ pattern] (a module-qualified suffix match: local module
    aliases keep matching; accidental substring hits do not). *)

val head_path : Typedtree.expression -> Path.t option
(** The resolved path heading an expression: the identifier itself, or
    the function identifier of a (possibly nested) application. *)

val in_dir : Cmt_load.unit_info -> string -> bool
(** Does the unit's recorded source path contain the directory
    [segment] (e.g. ["lib/election"])? *)

val iter_idents :
  Typedtree.structure -> f:(sorted:bool -> Path.t -> Location.t -> unit) -> unit
(** Visit every value identifier of the unit.  [sorted] is true when
    the identifier sits under an application of a canonical sort
    ([List.sort] / [List.sort_uniq] / [List.stable_sort] /
    [Array.sort] / …), including through a [|>] or [@@] pipeline —
    the escape hatch the hashtbl-order rule recognises. *)
