type t = {
  name : string;
  severity : Finding.severity;
  doc : string;
  check : Cmt_load.unit_info -> Finding.t list;
}

let finding ~rule ~unit ~(loc : Location.t) message =
  (* Location.none (whole-unit findings like missing-mli) carries a
     dummy 0:-1 position; clamp to the conventional 1:0. *)
  {
    Finding.rule = rule.name;
    severity = rule.severity;
    file = unit.Cmt_load.source;
    line = max 1 loc.Location.loc_start.Lexing.pos_lnum;
    col =
      max 0
        (loc.Location.loc_start.Lexing.pos_cnum
        - loc.Location.loc_start.Lexing.pos_bol);
    message;
  }

(* "Shades_graph__Port_graph" -> "Port_graph": dune wraps library
   modules under a Lib__Module alias; the part after the last "__" is
   the name the source spells. *)
let strip_wrap seg =
  let n = String.length seg in
  let rec last_sep i best =
    if i + 1 >= n then best
    else if seg.[i] = '_' && seg.[i + 1] = '_' then last_sep (i + 1) (Some (i + 2))
    else last_sep (i + 1) best
  in
  match last_sep 0 None with
  | Some i when i < n -> String.sub seg i (n - i)
  | _ -> seg

let normalize path =
  let segs = String.split_on_char '.' (Path.name path) in
  let segs = List.map strip_wrap segs in
  let segs = match segs with "Stdlib" :: (_ :: _ as rest) -> rest | s -> s in
  String.concat "." segs

let matches name patterns =
  List.exists
    (fun p ->
      name = p
      ||
      let sp = "." ^ p in
      let n = String.length name and np = String.length sp in
      n > np && String.sub name (n - np) np = sp)
    patterns

let in_dir unit segment =
  let source = unit.Cmt_load.source in
  let needle = segment ^ "/" in
  let n = String.length source and nn = String.length needle in
  let rec go i =
    i + nn <= n && (String.sub source i nn = needle || go (i + 1))
  in
  go 0

let sort_heads =
  [
    "List.sort"; "List.stable_sort"; "List.sort_uniq"; "List.fast_sort";
    "ListLabels.sort"; "ListLabels.stable_sort"; "ListLabels.sort_uniq";
    "Array.sort"; "Array.stable_sort"; "Array.fast_sort";
  ]

let rec head_path (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (p, _, _) -> Some p
  | Typedtree.Texp_apply (f, _) -> head_path f
  | _ -> None

let is_sorting e =
  match head_path e with
  | Some p -> matches (normalize p) sort_heads
  | None -> false

(* An expression under which hashtable iteration order cannot escape:
   an application of a canonical sort, or a |>/@@ pipeline one of whose
   stages is a sort. *)
let establishes_sorted (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_apply (f, args) -> (
      is_sorting f
      ||
      match head_path f with
      | Some p when matches (normalize p) [ "|>"; "@@" ] ->
          List.exists
            (function _, Some arg -> is_sorting arg | _, None -> false)
            args
      | _ -> false)
  | _ -> false

let iter_idents str ~f =
  let sorted = ref 0 in
  let expr sub (e : Typedtree.expression) =
    (match e.Typedtree.exp_desc with
    | Typedtree.Texp_ident (p, lid, _) ->
        f ~sorted:(!sorted > 0) p lid.Location.loc
    | _ -> ());
    let enters = establishes_sorted e in
    if enters then incr sorted;
    Tast_iterator.default_iterator.Tast_iterator.expr sub e;
    if enters then decr sorted
  in
  let iterator = { Tast_iterator.default_iterator with Tast_iterator.expr } in
  iterator.Tast_iterator.structure iterator str
