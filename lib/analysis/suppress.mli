(** Inline suppression comments.

    A finding can be silenced at the source line that triggers it, with
    a comment naming the rule (and ideally a justification):

    {v
    (* shadescheck: allow <rule>[,<rule>...] [-- reason] *)
    (* shadescheck: allow-file <rule>[,<rule>...] [-- reason] *)
    v}

    [allow] scopes to the comment's own line and the next line, so it
    works both trailing the offending expression and on the line above
    it.  [allow-file] scopes to the whole file — for modules that are
    exempt from a rule by design (e.g. an offline verifier and the
    locality rule).  The rule list also accepts [all].

    Suppressions are scanned textually from the source file recorded in
    the [.cmt], so they need no ppx and survive any build mode. *)

type t
(** The suppression table of one source file. *)

val scan : string -> t
(** [scan source_text] collects every suppression comment.  Lines are
    1-based, matching {!Finding.t}. *)

val empty : t
(** No suppressions — used when the source file cannot be read. *)

val allows : t -> rule:string -> line:int -> bool
(** Is a finding of [rule] at [line] suppressed (by a line-scoped
    [allow] on this or the preceding line, or a file-scoped
    [allow-file])? *)

val count : t -> int
(** Number of suppression comments scanned (reported, so a tree full of
    silenced findings is visible in the summary). *)
