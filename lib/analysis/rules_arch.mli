(** Architecture rules: interface discipline (every public module ships
    an [.mli]) and the LOCAL-model locality boundary (election modules
    must not read graph adjacency directly — nodes learn topology only
    through the views/engine message API). *)

val rules : Rule.t list
