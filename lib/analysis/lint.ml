let rules =
  Rules_det.rules @ Rules_conc.rules @ Rules_version.rules @ Rules_arch.rules

let rule_names = List.map (fun r -> r.Rule.name) rules

let describe () = List.map (fun r -> (r.Rule.name, r.Rule.doc)) rules

let select = function
  | None -> Ok rules
  | Some names -> (
      let unknown =
        List.filter (fun n -> not (List.mem n rule_names)) names
      in
      match unknown with
      | [] -> Ok (List.filter (fun r -> List.mem r.Rule.name names) rules)
      | u ->
          Error
            (Printf.sprintf "unknown rule%s: %s (known: %s)"
               (if List.length u = 1 then "" else "s")
               (String.concat ", " u)
               (String.concat ", " rule_names)))

let lint_unit selected unit =
  let raw = List.concat_map (fun r -> r.Rule.check unit) selected in
  let suppressions =
    match Cmt_load.read_source unit with
    | Some text -> Suppress.scan text
    | None -> Suppress.empty
  in
  List.partition
    (fun f ->
      not
        (Suppress.allows suppressions ~rule:f.Finding.rule
           ~line:f.Finding.line))
    raw

let run ?rules:selection ~root ~paths () =
  match select selection with
  | Error _ as e -> e
  | Ok selected -> (
      match Cmt_load.discover ~root ~paths with
      | Error _ as e -> e
      | Ok units ->
          let findings, suppressed =
            List.fold_left
              (fun (fs, n) unit ->
                let kept, dropped = lint_unit selected unit in
                (kept @ fs, n + List.length dropped))
              ([], 0) units
          in
          Ok
            {
              Report.findings = List.sort Finding.compare findings;
              suppressed;
              units = List.length units;
            })

let exit_code = function
  | Error _ -> 2
  | Ok report -> if Report.clean report then 0 else 1
