(** Determinism rules: sources of run-to-run nondeterminism that would
    poison blessed baselines — unordered hashtable iteration escaping,
    ambient (unseeded) randomness, wall-clock reads in measured paths,
    and raw stdout printing from library code. *)

val rules : Rule.t list
