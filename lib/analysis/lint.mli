(** The lint driver: rule registry, selection, and the exit contract.

    [shadescheck] loads the project's [.cmt] typed ASTs (see
    [Cmt_load]), runs the selected rules over every unit, filters
    findings through the unit's suppression comments ([Suppress]), and
    returns a [Report.t].

    The exit contract matches the trace gate's: 0 when the tree is
    clean, 1 when unsuppressed error findings remain, 2 when the
    [.cmt]s cannot be discovered or decoded (an infrastructure failure,
    never to be confused with a clean run). *)

val rules : Rule.t list
(** The full registry: determinism rules, domain-safety capture rules,
    the version-stamp pass, then architecture rules. *)

val select : string list option -> (Rule.t list, string) result
(** Resolve a [--rules] selection against the registry: [None] is the
    full registry; an unknown name is an [Error] naming the known
    vocabulary. *)

val rule_names : string list
(** Registry names in registry order — the [--rules] vocabulary.  Help
    text is generated from this list so it can never drift from the
    registry. *)

val describe : unit -> (string * string) list
(** [(name, one-line doc)] per registered rule, for help text. *)

val run :
  ?rules:string list ->
  root:string ->
  paths:string list ->
  unit ->
  (Report.t, string) result
(** [run ~root ~paths ()] lints every compilation unit found under
    [paths] (relative to [root], preferring its [_build/default]
    mirror).  [?rules] restricts to a subset of {!rule_names};
    an unknown name is an [Error].  Findings come back sorted by
    [(file, line, col, rule)]. *)

val exit_code : (Report.t, string) result -> int
(** The exit contract: [Error _] → 2, unsuppressed error findings → 1,
    clean → 0. *)
