(** Reporters for a lint run: human-readable text and the machine
    [shades] JSON dialect ([Shades_json]) shared with the results store
    and the trace gate — one dialect, three gates. *)

type t = {
  findings : Finding.t list;  (** unsuppressed, in canonical order *)
  suppressed : int;  (** findings silenced by suppression comments *)
  units : int;  (** compilation units analysed *)
}

val clean : t -> bool
(** No unsuppressed finding of severity [Error]. *)

val pp : Format.formatter -> t -> unit
(** One line per finding followed by a one-line summary. *)

val to_json : t -> Shades_json.Json.t
(** [{"version"; "clean"; "units"; "suppressed"; "counts"; "findings"}]
    — [counts] maps each firing rule to its finding count. *)

val write_json : path:string -> t -> unit
(** [to_json] rendered to [path] (newline-terminated). *)
