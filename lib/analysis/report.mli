(** Reporters for a lint run: human-readable text and the machine
    [shades] JSON dialect ([Shades_json]) shared with the results store
    and the trace gate — one dialect, three gates. *)

type t = {
  findings : Finding.t list;  (** unsuppressed, in canonical order *)
  suppressed : int;  (** findings silenced by suppression comments *)
  units : int;  (** compilation units analysed *)
}

val clean : t -> bool
(** No unsuppressed finding of severity [Error]. *)

val pp : Format.formatter -> t -> unit
(** One line per finding followed by a one-line summary. *)

val to_json : t -> Shades_json.Json.t
(** [{"version"; "clean"; "units"; "suppressed"; "counts"; "findings"}]
    — [counts] maps each firing rule to its finding count. *)

val write_json : path:string -> t -> unit
(** [to_json] rendered to [path] (newline-terminated). *)

val to_sarif : rules:Rule.t list -> t -> Shades_json.Json.t
(** The run as a SARIF 2.1.0 log: one run, driver [shadescheck],
    [rules] (the registry the run selected) as the driver's rule
    metadata, each finding a [result] with a 1-based physical
    location.  The dialect GitHub code scanning ingests. *)

val write_sarif : path:string -> rules:Rule.t list -> t -> unit
(** [to_sarif] rendered to [path] (newline-terminated). *)
