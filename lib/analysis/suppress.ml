type directive = { line : int; file_wide : bool; rules : string list }

type t = directive list

let empty = []

let marker = "shadescheck:"

(* find [needle] in [hay] starting at [from], or None *)
let find_sub hay needle from =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go from

let is_sep c = c = ' ' || c = '\t' || c = ','

let tokens_until_close s =
  (* split on spaces/commas, stopping at "--" (reason) or "*)" *)
  let rec go acc toks =
    match toks with
    | [] -> List.rev acc
    | t :: rest ->
        if t = "--" || t = "*)" then List.rev acc
        else if t = "" then go acc rest
        else
          (* a token glued to the comment close, e.g. "foo*)" *)
          let t =
            match find_sub t "*)" 0 with
            | Some i -> String.sub t 0 i
            | None -> t
          in
          if t = "" then List.rev acc else go (t :: acc) rest
  in
  go []
    (String.split_on_char ' '
       (String.map (fun c -> if is_sep c then ' ' else c) s))

let parse_line line_no line =
  match find_sub line marker 0 with
  | None -> None
  | Some i -> (
      let rest = String.sub line (i + String.length marker)
                   (String.length line - i - String.length marker) in
      match tokens_until_close rest with
      | "allow" :: rules when rules <> [] ->
          Some { line = line_no; file_wide = false; rules }
      | "allow-file" :: rules when rules <> [] ->
          Some { line = line_no; file_wide = true; rules }
      | _ -> None)

let scan text =
  let lines = String.split_on_char '\n' text in
  List.rev
    (snd
       (List.fold_left
          (fun (no, acc) line ->
            ( no + 1,
              match parse_line no line with
              | Some d -> d :: acc
              | None -> acc ))
          (1, []) lines))

let names_rule d rule =
  List.exists (fun r -> r = rule || r = "all") d.rules

let allows t ~rule ~line =
  List.exists
    (fun d ->
      names_rule d rule
      && (d.file_wide || d.line = line || d.line = line - 1))
    t

let count t = List.length t
