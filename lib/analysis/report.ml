module Json = Shades_json.Json

type t = { findings : Finding.t list; suppressed : int; units : int }

let version = Shades_versions.Versions.lint_report

let clean t =
  not
    (List.exists (fun f -> f.Finding.severity = Finding.Error) t.findings)

let pp fmt t =
  List.iter (fun f -> Format.fprintf fmt "%a@." Finding.pp f) t.findings;
  Format.fprintf fmt
    "shadescheck: %d finding%s (%d suppressed) across %d unit%s@."
    (List.length t.findings)
    (if List.length t.findings = 1 then "" else "s")
    t.suppressed t.units
    (if t.units = 1 then "" else "s")

let counts t =
  let tally =
    List.fold_left
      (fun acc f ->
        let rule = f.Finding.rule in
        match List.assoc_opt rule acc with
        | Some n -> (rule, n + 1) :: List.remove_assoc rule acc
        | None -> (rule, 1) :: acc)
      [] t.findings
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) tally

let to_json t =
  Json.Obj
    [
      ("version", Json.Int version);
      ("clean", Json.Bool (clean t));
      ("units", Json.Int t.units);
      ("suppressed", Json.Int t.suppressed);
      ( "counts",
        Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) (counts t)) );
      ("findings", Json.List (List.map Finding.to_json t.findings));
    ]

let write_json ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

(* --- SARIF 2.1.0 ---

   The static-analysis interchange format GitHub code scanning
   ingests: one run, one driver (shadescheck), the rule registry as
   [tool.driver.rules] and each finding as a [result] with a physical
   location.  Columns are 1-based in SARIF where findings carry the
   compiler's 0-based column. *)

let sarif_level = function
  | Finding.Error -> "error"
  | Finding.Warning -> "warning"

let to_sarif ~rules t =
  let rule_meta (r : Rule.t) =
    Json.Obj
      [
        ("id", Json.String r.Rule.name);
        ("shortDescription", Json.Obj [ ("text", Json.String r.Rule.doc) ]);
        ( "defaultConfiguration",
          Json.Obj [ ("level", Json.String (sarif_level r.Rule.severity)) ] );
      ]
  in
  let result (f : Finding.t) =
    Json.Obj
      [
        ("ruleId", Json.String f.Finding.rule);
        ("level", Json.String (sarif_level f.Finding.severity));
        ("message", Json.Obj [ ("text", Json.String f.Finding.message) ]);
        ( "locations",
          Json.List
            [
              Json.Obj
                [
                  ( "physicalLocation",
                    Json.Obj
                      [
                        ( "artifactLocation",
                          Json.Obj
                            [
                              ("uri", Json.String f.Finding.file);
                              ("uriBaseId", Json.String "%SRCROOT%");
                            ] );
                        ( "region",
                          Json.Obj
                            [
                              ("startLine", Json.Int (max 1 f.Finding.line));
                              ( "startColumn",
                                Json.Int (max 1 (f.Finding.col + 1)) );
                            ] );
                      ] );
                ];
            ] );
      ]
  in
  Json.Obj
    [
      ( "$schema",
        Json.String
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "shadescheck");
                            ( "version",
                              Json.String (string_of_int version) );
                            ("rules", Json.List (List.map rule_meta rules));
                          ] );
                    ] );
                ("results", Json.List (List.map result t.findings));
              ];
          ] );
    ]

let write_sarif ~path ~rules t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_sarif ~rules t));
      output_char oc '\n')
