module Json = Shades_json.Json

type t = { findings : Finding.t list; suppressed : int; units : int }

let version = 1

let clean t =
  not
    (List.exists (fun f -> f.Finding.severity = Finding.Error) t.findings)

let pp fmt t =
  List.iter (fun f -> Format.fprintf fmt "%a@." Finding.pp f) t.findings;
  Format.fprintf fmt
    "shadescheck: %d finding%s (%d suppressed) across %d unit%s@."
    (List.length t.findings)
    (if List.length t.findings = 1 then "" else "s")
    t.suppressed t.units
    (if t.units = 1 then "" else "s")

let counts t =
  let tally =
    List.fold_left
      (fun acc f ->
        let rule = f.Finding.rule in
        match List.assoc_opt rule acc with
        | Some n -> (rule, n + 1) :: List.remove_assoc rule acc
        | None -> (rule, 1) :: acc)
      [] t.findings
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) tally

let to_json t =
  Json.Obj
    [
      ("version", Json.Int version);
      ("clean", Json.Bool (clean t));
      ("units", Json.Int t.units);
      ("suppressed", Json.Int t.suppressed);
      ( "counts",
        Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) (counts t)) );
      ("findings", Json.List (List.map Finding.to_json t.findings));
    ]

let write_json ~path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')
