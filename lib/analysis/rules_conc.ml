(* Domain-safety capture analysis (DESIGN §9, "shadescheck v2").

   The repo's determinism story survives OCaml 5 parallelism only if
   nothing a crew domain runs races the spawning context.  This rule
   family finds the closures that cross a domain boundary — arguments
   of [Crew.submit]/[Crew.run_all], [Pool.map]/[map_list] and
   [Domain.spawn] — and walks them for accesses to mutable state that
   is *captured* (reachable from the spawning context: a local ident
   bound outside the closure, or any module-level path).

   The lattice, deliberately simple and convention-shaped:

   - an access mediated by [Mutex.protect], or lexically after a
     [Mutex.lock] statement in the same sequence (until the matching
     [Mutex.unlock]), is guarded;
   - [Atomic.*]/[Mutex.*]/[Condition.*]/[Semaphore.*] operations are
     mediation, never findings;
   - a value allocated inside the closure (any ident bound within it,
     parameters and local lets included) is closure-local;
   - an array/bytes write whose index is not a constant is the blessed
     disjoint-slot idiom (the batch reply array, the sharded engine's
     per-shard telemetry) and is allowed — slot disjointness is the
     caller's proof obligation, the barrier between phases its usual
     discharge;
   - named local functions referenced from a crew-bound closure are
     inlined (their bodies walked in the same context), so the sharded
     engine's [send_phase]/[deliver_phase] and the pool's [worker] are
     analyzed even though the submitted expression is only a partial
     application.

   Unguarded shared *writes* are [race-risk] (error); unguarded shared
   *reads* of mutable state are [race-smell] (warning) — a read is
   only wrong if someone writes, which may live in another unit the
   per-unit analysis cannot see.  Cross-module calls are not inlined:
   state that only ever crosses the boundary behind another module's
   mutex (the Cache, the Metrics registry) is that module's contract,
   not this rule's. *)

let starts_with prefix s =
  let np = String.length prefix in
  String.length s >= np && String.sub s 0 np = prefix

(* Entry points whose closure arguments run on another domain.  The
   bare [run_all]/[submit] spellings catch indirect hooks (the
   daemon's [Service.set_parallel] hands a crew's [run_all] around as
   a plain function value). *)
let crew_heads =
  [
    "Crew.submit"; "Crew.run_all"; "Pool.map"; "Pool.map_list";
    "Shades_pool.map"; "Shades_pool.map_list"; "Domain.spawn";
    "run_all"; "submit";
  ]

let ref_writers = [ ":="; "incr"; "decr" ]

(* index-addressed writes: allowed when the index is not a constant
   (the disjoint-slot idiom), a risk when it is *)
let slot_writers = [ "Array.set"; "Array.unsafe_set"; "Bytes.set"; "Bytes.unsafe_set" ]

(* In-place mutators, with the positional index(es) of the argument(s)
   they mutate — the stdlib is not uniform: [Hashtbl.replace tbl k v]
   mutates argument 0, [Queue.push x q] argument 1, [Array.blit src
   spos dst dpos len] argument 2. *)
let mutators =
  [
    ("Hashtbl.add", [ 0 ]); ("Hashtbl.replace", [ 0 ]);
    ("Hashtbl.remove", [ 0 ]); ("Hashtbl.reset", [ 0 ]);
    ("Hashtbl.clear", [ 0 ]); ("Hashtbl.filter_map_inplace", [ 1 ]);
    ("Queue.push", [ 1 ]); ("Queue.add", [ 1 ]); ("Queue.pop", [ 0 ]);
    ("Queue.take", [ 0 ]); ("Queue.take_opt", [ 0 ]); ("Queue.clear", [ 0 ]);
    ("Queue.transfer", [ 0; 1 ]);
    ("Stack.push", [ 1 ]); ("Stack.pop", [ 0 ]); ("Stack.pop_opt", [ 0 ]);
    ("Stack.clear", [ 0 ]);
    ("Buffer.add_char", [ 0 ]); ("Buffer.add_string", [ 0 ]);
    ("Buffer.add_bytes", [ 0 ]); ("Buffer.add_substring", [ 0 ]);
    ("Buffer.add_buffer", [ 0 ]); ("Buffer.clear", [ 0 ]);
    ("Buffer.reset", [ 0 ]); ("Buffer.truncate", [ 0 ]);
    ("Array.fill", [ 0 ]); ("Array.blit", [ 2 ]);
    ("Bytes.fill", [ 0 ]); ("Bytes.blit", [ 2 ]); ("Bytes.blit_string", [ 2 ]);
  ]

(* [mutator_targets h] — the mutated argument positions, if [h] names
   a known in-place mutator (module-qualified suffix match, so local
   aliases keep matching). *)
let mutator_targets h =
  List.fold_left
    (fun acc (name, targets) ->
      match acc with
      | Some _ -> acc
      | None -> if Rule.matches h [ name ] then Some targets else None)
    None mutators

let lock_calls = [ "Mutex.lock" ]
let unlock_calls = [ "Mutex.unlock" ]
let protect_calls = [ "Mutex.protect" ]

(* operations that *are* the mediation; also keeps the bare "incr"
   pattern from matching "Atomic.incr" *)
let mediated_prefixes = [ "Atomic."; "Mutex."; "Condition."; "Semaphore." ]

(* Types whose shared unguarded *read* is already a smell.  Arrays and
   the values behind them are deliberately absent: arrays are the
   repo's blessed slot medium, and their writes are policed above. *)
let mutable_containers =
  [ "ref"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t"; "Bytes.t"; "bytes"; "Dynarray.t" ]

type access = {
  kind : [ `Write | `Read ];
  name : string;
  op : string;
  loc : Location.t;
}

let head_name e =
  match Rule.head_path e with Some p -> Some (Rule.normalize p) | None -> None

let type_head_name ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (Rule.normalize p)
  | _ -> None

let is_container ty =
  match type_head_name ty with
  | Some n -> Rule.matches n mutable_containers
  | None -> false

let is_function ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, _, _, _) -> true
  | _ -> false

let rec root_of (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_field (subj, _, _) -> root_of subj
  | _ -> e

(* The root of an access path, when it denotes a value reachable from
   the spawning context: a local ident not bound inside the closure,
   or any module-level path. *)
let shared_root bound (e : Typedtree.expression) =
  match e.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) ->
      if Hashtbl.mem bound (Ident.unique_name id) then None
      else Some (Ident.name id)
  | Typedtree.Texp_ident (p, _, _) -> Some (Rule.normalize p)
  | _ -> None

(* every ident any pattern under [e] binds, into [bound] *)
let collect_pats bound e =
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit
      =
   fun sub p ->
    List.iter
      (fun id -> Hashtbl.replace bound (Ident.unique_name id) ())
      (Typedtree.pat_bound_idents p);
    Tast_iterator.default_iterator.Tast_iterator.pat sub p
  in
  let it = { Tast_iterator.default_iterator with Tast_iterator.pat } in
  it.Tast_iterator.expr it e

let positional args = List.filter_map snd args

(* Walk one crew-bound argument expression, recording unguarded shared
   accesses.  [bindings] maps unit-local value bindings (by unique
   ident) to their expressions, for inlining named helpers. *)
let analyze ~bindings ~acc root_expr =
  let bound = Hashtbl.create 64 in
  let visited = Hashtbl.create 16 in
  let locked = ref false in
  collect_pats bound root_expr;
  let record kind name op loc = acc := { kind; name; op; loc } :: !acc in
  let rec walk e = iterator.Tast_iterator.expr iterator e
  and walk_locked e =
    let saved = !locked in
    locked := true;
    walk e;
    locked := saved
  and flag_write op (e : Typedtree.expression) =
    match shared_root bound (root_of e) with
    | Some name when not !locked -> record `Write name op e.Typedtree.exp_loc
    | _ -> ()
  and inline id =
    let key = Ident.unique_name id in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.add visited key ();
      match Hashtbl.find_opt bindings key with
      | Some bexpr ->
          collect_pats bound bexpr;
          walk bexpr
      | None -> ()
    end
  and handle_apply f args =
    let h = match head_name f with Some h -> h | None -> "" in
    if Rule.matches h protect_calls then begin
      walk f;
      List.iter walk_locked (positional args)
    end
    else if List.exists (fun p -> starts_with p h) mediated_prefixes then begin
      walk f;
      List.iter walk (positional args)
    end
    else if Rule.matches h ref_writers then begin
      match positional args with
      | target :: rest ->
          flag_write h target;
          List.iter walk rest
      | [] -> walk f
    end
    else if Rule.matches h slot_writers then begin
      match positional args with
      | target :: index :: rest ->
          (match index.Typedtree.exp_desc with
          | Typedtree.Texp_constant _ -> flag_write (h ^ " at a constant index") target
          | _ -> () (* the disjoint-slot idiom *));
          walk target;
          walk index;
          List.iter walk rest
      | args ->
          walk f;
          List.iter walk args
    end
    else begin
      match mutator_targets h with
      | Some targets ->
          List.iteri
            (fun i a ->
              if List.mem i targets then flag_write h a else walk a)
            (positional args)
      | None -> default_apply f args
    end
  and default_apply f args = begin
      walk f;
      List.iter walk (positional args)
    end
  and expr_hook sub (e : Typedtree.expression) =
    match e.Typedtree.exp_desc with
    | Typedtree.Texp_sequence (e1, e2) ->
        walk e1;
        let saved = !locked in
        (match head_name e1 with
        | Some h when Rule.matches h lock_calls -> locked := true
        | Some h when Rule.matches h unlock_calls -> locked := false
        | _ -> ());
        walk e2;
        locked := saved
    | Typedtree.Texp_apply (f, args) -> handle_apply f args
    | Typedtree.Texp_setfield (subj, _, lbl, v) ->
        flag_write ("<- on field " ^ lbl.Types.lbl_name) subj;
        walk subj;
        walk v
    | Typedtree.Texp_field (subj, _, lbl) ->
        (match lbl.Types.lbl_mut with
        | Asttypes.Mutable -> (
            match shared_root bound (root_of subj) with
            | Some name when not !locked ->
                record `Read
                  (name ^ "." ^ lbl.Types.lbl_name)
                  "mutable field read" e.Typedtree.exp_loc
            | _ -> ())
        | Asttypes.Immutable -> ());
        walk subj
    | Typedtree.Texp_ident (Path.Pident id, _, _) ->
        (* container check before inlining: a unit-level [let tbl =
           Hashtbl.create 8] is in the binding table too, and inlining
           its defining expression would swallow the shared read *)
        if not (Hashtbl.mem bound (Ident.unique_name id)) then begin
          if is_container e.Typedtree.exp_type then begin
            if not !locked then
              record `Read (Ident.name id) "shared read" e.Typedtree.exp_loc
          end
          else if
            (* only function-valued bindings run *on* the crew; the
               defining expression of a plain value ([let round =
               !rounds in ...]) evaluates in the spawning context and
               must not be walked as crew code *)
            is_function e.Typedtree.exp_type
            && Hashtbl.mem bindings (Ident.unique_name id)
          then inline id
        end
    | Typedtree.Texp_ident (p, _, _) ->
        if is_container e.Typedtree.exp_type && not !locked then
          record `Read (Rule.normalize p) "shared read" e.Typedtree.exp_loc
    | _ -> Tast_iterator.default_iterator.Tast_iterator.expr sub e
  and iterator =
    { Tast_iterator.default_iterator with Tast_iterator.expr = expr_hook }
  in
  (* the argument may be a bare name for the work to run ([run_all
     thunks], [Domain.spawn worker]): follow it whatever its type *)
  (match root_expr.Typedtree.exp_desc with
  | Typedtree.Texp_ident (Path.Pident id, _, _) -> inline id
  | _ -> ());
  walk root_expr

(* the unit's local value bindings, one ident to one expression *)
let unit_bindings str =
  let bindings = Hashtbl.create 64 in
  let value_binding sub (vb : Typedtree.value_binding) =
    (match Typedtree.pat_bound_idents vb.Typedtree.vb_pat with
    | [ id ] -> Hashtbl.replace bindings (Ident.unique_name id) vb.Typedtree.vb_expr
    | _ -> ());
    Tast_iterator.default_iterator.Tast_iterator.value_binding sub vb
  in
  let it =
    { Tast_iterator.default_iterator with Tast_iterator.value_binding }
  in
  it.Tast_iterator.structure it str;
  bindings

let accesses unit =
  match unit.Cmt_load.structure with
  | None -> []
  | Some str ->
      let bindings = unit_bindings str in
      let acc = ref [] in
      let expr_hook sub (e : Typedtree.expression) =
        (match e.Typedtree.exp_desc with
        | Typedtree.Texp_apply (_, args) -> (
            match head_name e with
            | Some h when Rule.matches h crew_heads ->
                List.iter (analyze ~bindings ~acc) (positional args)
            | _ -> ())
        | _ -> ());
        Tast_iterator.default_iterator.Tast_iterator.expr sub e
      in
      let it = { Tast_iterator.default_iterator with Tast_iterator.expr = expr_hook } in
      it.Tast_iterator.structure it str;
      (* two crew calls can inline the same helper: report each access
         site once *)
      List.sort_uniq compare (List.rev !acc)

let over_accesses rule unit ~f =
  List.filter_map
    (fun a ->
      match f a with
      | Some message -> Some (Rule.finding ~rule ~unit ~loc:a.loc message)
      | None -> None)
    (accesses unit)

(* --- race-risk --- *)

let rec race_risk =
  lazy
    {
      Rule.name = "race-risk";
      severity = Finding.Error;
      doc =
        "unguarded write to mutable state captured by a crew-bound closure \
         (Crew.submit/run_all, Pool.map, Domain.spawn)";
      check =
        (fun unit ->
          over_accesses (Lazy.force race_risk) unit ~f:(fun a ->
              match a.kind with
              | `Write ->
                  Some
                    (Printf.sprintf
                       "%s lives in the spawning context but a crew-bound \
                        closure mutates it (%s) without Mutex/Atomic \
                        mediation; guard it, make it closure-local, or write \
                        through a disjoint per-task slot (variable index)"
                       a.name a.op)
              | `Read -> None));
    }

(* --- race-smell --- *)

let rec race_smell =
  lazy
    {
      Rule.name = "race-smell";
      severity = Finding.Warning;
      doc =
        "unguarded read of shared mutable state inside a crew-bound closure \
         — racy if any context writes it";
      check =
        (fun unit ->
          over_accesses (Lazy.force race_smell) unit ~f:(fun a ->
              match a.kind with
              | `Read ->
                  Some
                    (Printf.sprintf
                       "%s is mutable, lives in the spawning context, and a \
                        crew-bound closure reads it (%s) without Mutex/Atomic \
                        mediation; a concurrent writer would race this read"
                       a.name a.op)
              | `Write -> None));
    }

let rules = [ Lazy.force race_risk; Lazy.force race_smell ]
