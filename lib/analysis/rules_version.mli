(** Version-stamp consistency pass.

    [version-drift] (error): a value binding named [version]/[*_version]
    or [magic]/[*_magic] bound to a bare constant, or a string literal
    spelling one of the cache-key/frame-header markers ("/v%d",
    "/elect-", "/verify-", "SHTR"), anywhere outside the
    [lib/versions] registry.  Stamps must be declared once in
    [Shades_versions.Versions] and aliased; keys must be derived via
    [Versions.advice_key]/[elect_key]/[verify_key]. *)

val rules : Rule.t list
