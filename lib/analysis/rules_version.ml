(* Version-stamp consistency (DESIGN §9, "shadescheck v2").

   Every on-disk or on-wire artifact the project emits is stamped:
   the SHTR trace codec, the results-store schema, the wire protocol,
   the advice/result cache generations, the lint report itself.  A
   stamp that drifts — bumped in one spelling of a cache key but not
   another — silently corrupts cache correctness: two incompatible
   payloads land under the same key, or compatible ones stop hitting.

   The registry [lib/versions] (Shades_versions.Versions) is therefore
   the one module allowed to spell a stamp as a literal or derive a
   cache key.  This rule polices that invariant in two passes:

   - typed pass: a value binding named [version]/[*_version] or
     [magic]/[*_magic] whose body is a bare constant pins a stamp
     outside the registry.  The blessed spelling is an alias of the
     registry ([let version = Shades_versions.Versions.wire_protocol]),
     which is an ident, not a constant, and stays quiet.
   - text pass: a string literal spelling one of the key-derivation
     markers ("/v%d", "/elect-", "/verify-", "SHTR") rebuilds a cache
     key or frame header by hand instead of going through
     [Versions.advice_key]/[elect_key]/[verify_key].  This pass works
     on source text because the typechecker lowers format strings into
     CamlinternalFormatBasics constructions — the literal never
     surfaces in the typed AST.

   Everything under lib/versions is exempt: that is where the literals
   are supposed to live. *)

(* shadescheck: allow-file version-drift -- this rule's own marker
   table must spell the markers it polices *)

let registry_dir = "versions"

let ends_with suffix s =
  let ns = String.length suffix and n = String.length s in
  n >= ns && String.sub s (n - ns) ns = suffix

let stampish name =
  name = "version" || name = "magic"
  || ends_with "_version" name
  || ends_with "_magic" name

(* Markers that only appear when a cache key or frame header is being
   derived by hand.  "/v%d" catches sprintf-style key builders;
   "/elect-" and "/verify-" the task-scoped key families; "SHTR" the
   trace frame magic. *)
let markers = [ "/v%d"; "/elect-"; "/verify-"; "SHTR" ]

(* [inside_string line i] — crude but effective: an odd number of
   double quotes before position [i] means position [i] sits inside a
   string literal.  Escaped quotes inside literals would fool it; the
   repo spells none, and a stray false positive is suppressible. *)
let inside_string line i =
  let quotes = ref 0 in
  for j = 0 to i - 1 do
    if line.[j] = '"' then incr quotes
  done;
  !quotes land 1 = 1

let find_all line needle =
  let nn = String.length needle and n = String.length line in
  let rec go i acc =
    if i + nn > n then List.rev acc
    else if String.sub line i nn = needle then go (i + nn) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []

let text_findings rule unit =
  match Cmt_load.read_source unit with
  | None -> []
  | Some text ->
      let findings = ref [] in
      List.iteri
        (fun idx line ->
          List.iter
            (fun marker ->
              List.iter
                (fun col ->
                  if inside_string line col then
                    findings :=
                      {
                        Finding.rule = rule.Rule.name;
                        severity = rule.Rule.severity;
                        file = unit.Cmt_load.source;
                        line = idx + 1;
                        col;
                        message =
                          Printf.sprintf
                            "string literal spells the versioned key/header \
                             marker %S outside lib/versions; derive it via \
                             Shades_versions.Versions (advice_key, elect_key, \
                             verify_key, shtr_magic)"
                            marker;
                      }
                      :: !findings)
                (find_all line marker))
            markers)
        (String.split_on_char '\n' text);
      List.rev !findings

let typed_findings rule unit =
  match unit.Cmt_load.structure with
  | None -> []
  | Some str ->
      let findings = ref [] in
      let value_binding sub (vb : Typedtree.value_binding) =
        (match Typedtree.pat_bound_idents vb.Typedtree.vb_pat with
        | [ id ] when stampish (Ident.name id) -> (
            match vb.Typedtree.vb_expr.Typedtree.exp_desc with
            | Typedtree.Texp_constant _ ->
                findings :=
                  Rule.finding ~rule ~unit ~loc:vb.Typedtree.vb_loc
                    (Printf.sprintf
                       "%s pins a format/version stamp with a literal outside \
                        the registry; declare the stamp in \
                        Shades_versions.Versions and alias it here"
                       (Ident.name id))
                  :: !findings
            | _ -> ())
        | _ -> ());
        Tast_iterator.default_iterator.Tast_iterator.value_binding sub vb
      in
      let it =
        { Tast_iterator.default_iterator with Tast_iterator.value_binding }
      in
      it.Tast_iterator.structure it str;
      List.rev !findings

let rec version_drift =
  lazy
    {
      Rule.name = "version-drift";
      severity = Finding.Error;
      doc =
        "format/version stamp pinned, or cache-key/frame-header derivation \
         spelled, outside the lib/versions registry";
      check =
        (fun unit ->
          if Rule.in_dir unit registry_dir then []
          else
            let rule = Lazy.force version_drift in
            typed_findings rule unit @ text_findings rule unit);
    }

let rules = [ Lazy.force version_drift ]
