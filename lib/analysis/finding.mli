(** A single lint finding: one rule firing at one source location.

    Findings are value-comparable and carry everything both reporters
    need — the rule name, its severity, the source position as recorded
    in the [.cmt] file (a path relative to the build root, so output is
    stable across machines), and a human-readable message. *)

type severity = Error | Warning

type t = {
  rule : string;  (** registry name of the rule that fired *)
  severity : severity;
  file : string;  (** source path as recorded in the [.cmt] (relative) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based column, matching compiler diagnostics *)
  message : string;
}

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Order by [(file, line, col, rule)] — the canonical report order. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: [severity/rule] message] — one line per finding. *)

val to_json : t -> Shades_json.Json.t
(** One finding as an object in the [shades] JSON dialect:
    [{"rule", "severity", "file", "line", "col", "message"}]. *)
