(** Domain-safety capture analysis over crew-bound closures.

    Arguments of [Crew.submit]/[Crew.run_all], [Pool.map]/[map_list]
    and [Domain.spawn] run on another domain.  These rules walk such
    closures (inlining unit-local named helpers they reference) and
    flag accesses to mutable state reachable from the spawning
    context, unless mediated by [Mutex.protect]/[Mutex.lock] scope or
    [Atomic.*], allocated inside the closure, or written through the
    disjoint-slot idiom (array/bytes write at a non-constant index).

    - [race-risk] (error): unguarded shared write.
    - [race-smell] (warning): unguarded shared read of mutable state. *)

val rules : Rule.t list
