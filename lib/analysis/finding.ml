type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let severity_to_string = function Error -> "error" | Warning -> "warning"

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s/%s] %s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message

let to_json f =
  Shades_json.Json.Obj
    [
      ("rule", Shades_json.Json.String f.rule);
      ("severity", Shades_json.Json.String (severity_to_string f.severity));
      ("file", Shades_json.Json.String f.file);
      ("line", Shades_json.Json.Int f.line);
      ("col", Shades_json.Json.Int f.col);
      ("message", Shades_json.Json.String f.message);
    ]
