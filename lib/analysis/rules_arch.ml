(* --- missing-mli --- *)

let rec missing_mli =
  lazy
    {
      Rule.name = "missing-mli";
      severity = Finding.Error;
      doc = "public library module in lib/ without an .mli interface";
      check =
        (fun unit ->
          if not (Rule.in_dir unit "lib") then []
          else
            match unit.Cmt_load.source_abs with
            | None -> [] (* source not on disk: nothing to check against *)
            | Some src ->
                if Sys.file_exists (src ^ "i") then []
                else
                  [
                    Rule.finding ~rule:(Lazy.force missing_mli) ~unit
                      ~loc:Location.none
                      (Printf.sprintf
                         "module %s has no interface; every public module \
                          carries an .mli (and its odoc comments feed the \
                          documented API surface)"
                         (String.capitalize_ascii
                            (Filename.remove_extension
                               (Filename.basename src))));
                  ]);
    }

(* --- locality --- *)

(* The adjacency oracles a LOCAL-model node must never consult
   directly: anything revealing neighbours or whole-graph structure.
   Port-local facts (a node's own degree, the graph order carried by
   advice) are not in this list; neither are the Paths algorithms when
   run on a map a node reconstructed from its own view/advice. *)
let adjacency_reads =
  [
    "Port_graph.neighbor"; "Port_graph.neighbor_vertex";
    "Port_graph.port_to"; "Port_graph.edges"; "Port_graph.vertices";
    "Paths.connected_avoiding";
  ]

let rec locality =
  lazy
    {
      Rule.name = "locality";
      severity = Finding.Error;
      doc =
        "lib/election code reading graph adjacency directly instead of the \
         views/engine message API";
      check =
        (fun unit ->
          if not (Rule.in_dir unit "lib/election") then []
          else
            match unit.Cmt_load.structure with
            | None -> []
            | Some str ->
                let acc = ref [] in
                Rule.iter_idents str ~f:(fun ~sorted:_ p loc ->
                    let name = Rule.normalize p in
                    if Rule.matches name adjacency_reads then
                      acc :=
                        Rule.finding ~rule:(Lazy.force locality) ~unit ~loc
                          (name
                          ^ " reads graph adjacency from election code; a \
                             node may act only on its view (lib/views) and \
                             received messages (the engine API).  Offline \
                             oracle/verifier modules carry a file-level \
                             suppression naming why they are exempt")
                        :: !acc);
                List.rev !acc);
    }

let rules = [ Lazy.force missing_mli; Lazy.force locality ]
