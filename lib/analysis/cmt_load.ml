type unit_info = {
  cmt_path : string;
  source : string;
  source_abs : string option;
  structure : Typedtree.structure option;
}

let ( // ) = Filename.concat

let rec walk dir acc =
  match Sys.readdir dir with
  | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let path = dir // entry in
          if Sys.is_directory path then walk path acc
          else if Filename.check_suffix entry ".cmt" then path :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

let read_unit ~base cmt_path =
  match Cmt_format.read_cmt cmt_path with
  | exception e ->
      Error
        (Printf.sprintf "%s: cannot decode cmt (%s)" cmt_path
           (Printexc.to_string e))
  | infos -> (
      match infos.Cmt_format.cmt_sourcefile with
      | Some source when Filename.check_suffix source ".ml" ->
          let source_abs =
            let candidates =
              [ base // source; Filename.dirname cmt_path // Filename.basename source ]
            in
            List.find_opt Sys.file_exists candidates
          in
          let structure =
            match infos.Cmt_format.cmt_annots with
            | Cmt_format.Implementation str -> Some str
            | _ -> None
          in
          Ok (Some { cmt_path; source; source_abs; structure })
      | _ -> Ok None (* interface, pack, or a generated wrapper module *))

let discover ~root ~paths =
  let build_mirror = root // "_build" // "default" in
  let scan path =
    let base = if Sys.file_exists (build_mirror // path) then build_mirror else root in
    let dir = base // path in
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      Error (Printf.sprintf "%s: no such directory (run `dune build` first?)" dir)
    else
      let cmts = walk dir [] in
      if cmts = [] then
        Error
          (Printf.sprintf "%s: no .cmt files found (run `dune build` first?)" dir)
      else
        let rec load acc = function
          | [] -> Ok acc
          | cmt :: rest -> (
              match read_unit ~base cmt with
              | Error _ as e -> e
              | Ok None -> load acc rest
              | Ok (Some u) -> load (u :: acc) rest)
        in
        load [] cmts
  in
  let rec over acc = function
    | [] -> Ok acc
    | p :: rest -> (
        match scan p with
        | Error _ as e -> e
        | Ok units -> over (units @ acc) rest)
  in
  match over [] paths with
  | Error _ as e -> e
  | Ok units ->
      (* one unit per source: the same module can surface through
         several scan paths *)
      let units =
        List.sort_uniq (fun a b -> String.compare a.source b.source) units
      in
      Ok units

let read_source u =
  match u.source_abs with
  | None -> None
  | Some path -> (
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> Some text
      | exception Sys_error _ -> None)
