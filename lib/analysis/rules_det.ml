(* Each rule closes over itself through [Lazy] so [Rule.finding] can
   carry the rule's own name/severity without forward references. *)

let over_idents rule unit ~f =
  match unit.Cmt_load.structure with
  | None -> []
  | Some str ->
      let acc = ref [] in
      Rule.iter_idents str ~f:(fun ~sorted p loc ->
          match f ~sorted (Rule.normalize p) with
          | Some message ->
              acc := Rule.finding ~rule ~unit ~loc message :: !acc
          | None -> ());
      List.rev !acc

let starts_with prefix s =
  let np = String.length prefix in
  String.length s >= np && String.sub s 0 np = prefix

(* --- hashtbl-order --- *)

let hashtbl_iterators = [ "Hashtbl.fold"; "Hashtbl.iter" ]

let rec hashtbl_order =
  lazy
    {
      Rule.name = "hashtbl-order";
      severity = Finding.Error;
      doc =
        "Hashtbl.fold/iter whose result can escape without a canonical \
         sort (iteration order is unspecified)";
      check =
        (fun unit ->
          over_idents (Lazy.force hashtbl_order) unit ~f:(fun ~sorted name ->
              if (not sorted) && Rule.matches name hashtbl_iterators then
                Some
                  (name
                  ^ " iterates in unspecified hash order; sort the result \
                     canonically (List.sort under the application or via |>) \
                     or suppress with a justification that order cannot \
                     escape")
              else None));
    }

(* --- ambient-randomness --- *)

let rec ambient_randomness =
  lazy
    {
      Rule.name = "ambient-randomness";
      severity = Finding.Error;
      doc =
        "global Random.* state (incl. Random.self_init) outside an \
         explicitly seeded Random.State";
      check =
        (fun unit ->
          over_idents (Lazy.force ambient_randomness) unit
            ~f:(fun ~sorted:_ name ->
              if starts_with "Random." name
                 && not (starts_with "Random.State." name)
              then
                Some
                  (name
                  ^ " draws from the ambient global generator; thread an \
                     explicitly seeded Random.State through the caller \
                     instead (cf. Async_engine's seeded delays)")
              else None));
    }

(* --- wall-clock-in-measured-path --- *)

let clock_reads = [ "Unix.gettimeofday"; "Unix.time"; "Unix.times"; "Sys.time" ]

let rec wall_clock =
  lazy
    {
      Rule.name = "wall-clock-in-measured-path";
      severity = Finding.Error;
      doc =
        "wall-clock reads (Unix.gettimeofday/Sys.time/...) in lib/ outside \
         the sanctioned Metrics.now_ns";
      check =
        (fun unit ->
          if not (Rule.in_dir unit "lib") then []
          else
            over_idents (Lazy.force wall_clock) unit ~f:(fun ~sorted:_ name ->
                if Rule.matches name clock_reads then
                  Some
                    (name
                    ^ " reads the wall clock in library code; route timing \
                       through Metrics.now_ns so measured paths stay \
                       deterministic modulo the one sanctioned clock")
                else None));
    }

(* --- direct-stdout --- *)

let stdout_writers =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_bytes"; "print_int"; "print_float"; "Printf.printf";
    "Format.printf"; "Format.print_string"; "Format.print_newline";
    "Format.print_flush";
  ]

let rec direct_stdout =
  lazy
    {
      Rule.name = "direct-stdout-in-lib";
      severity = Finding.Error;
      doc =
        "print_*/Printf.printf in lib/ — library code must write through \
         a formatter the caller supplies";
      check =
        (fun unit ->
          if not (Rule.in_dir unit "lib") then []
          else
            over_idents (Lazy.force direct_stdout) unit
              ~f:(fun ~sorted:_ name ->
                if Rule.matches name stdout_writers then
                  Some
                    (name
                    ^ " writes straight to stdout from library code; take a \
                       Format.formatter (or return the text) so the CLI owns \
                       the channel")
                else None));
    }

let rules =
  [
    Lazy.force hashtbl_order;
    Lazy.force ambient_randomness;
    Lazy.force wall_clock;
    Lazy.force direct_stdout;
  ]
