module Json = Shades_json.Json

let schema_version = Shades_versions.Versions.store_schema

type record = {
  params : (string * Json.t) list;
  rounds : int;
  messages : int;
  advice_bits : int;
  wall_ns : int;
  metrics : (string * Metrics.value) list;
}

type t = { version : int; label : string; records : record list }

let make ?(label = "sweep") records = { version = schema_version; label; records }

let metric r name = List.assoc_opt name r.metrics

(* --- encoding --- *)

let json_of_metric = function
  | Metrics.Counter n -> Json.Obj [ ("kind", String "counter"); ("value", Int n) ]
  | Metrics.Gauge g -> Json.Obj [ ("kind", String "gauge"); ("value", Float g) ]
  | Metrics.Histogram h ->
      Json.Obj
        [
          ("kind", String "histogram");
          ("count", Int h.Metrics.count);
          ("sum", Float h.Metrics.sum);
          ("min", Float h.Metrics.min);
          ("max", Float h.Metrics.max);
          ("p50", Float h.Metrics.p50);
          ("p90", Float h.Metrics.p90);
          ("p99", Float h.Metrics.p99);
        ]
  | Metrics.Timing { count; total_ns } ->
      Json.Obj
        [
          ("kind", String "timing"); ("count", Int count);
          ("total_ns", Int total_ns);
        ]

let json_of_record r =
  Json.Obj
    [
      ("params", Json.Obj r.params);
      ("rounds", Int r.rounds);
      ("messages", Int r.messages);
      ("advice_bits", Int r.advice_bits);
      ("wall_ns", Int r.wall_ns);
      ("metrics", Json.Obj (List.map (fun (n, v) -> (n, json_of_metric v)) r.metrics));
    ]

let encode t =
  (* one record per line so diffs of the raw file stay readable *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\"schema\":%d,\"label\":%s,\"records\":[" t.version
       (Json.to_string (String t.label)));
  List.iteri
    (fun i r ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf (Json.to_string (json_of_record r)))
    t.records;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* --- decoding --- *)

let ( let* ) = Result.bind

let need what = function
  | Some v -> Ok v
  | None -> Error ("store: missing " ^ what)

let as_int what = function
  | Json.Int i -> Ok i
  | _ -> Error ("store: " ^ what ^ " is not an integer")

let as_float what = function
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error ("store: " ^ what ^ " is not a number")

let as_string what = function
  | Json.String s -> Ok s
  | _ -> Error ("store: " ^ what ^ " is not a string")

let int_member what j =
  let* v = need what (Json.member what j) in
  as_int what v

let float_member what j =
  let* v = need what (Json.member what j) in
  as_float what v

let metric_of_json name j =
  let* kind = need "metric kind" (Json.member "kind" j) in
  let* kind = as_string "metric kind" kind in
  match kind with
  | "counter" ->
      let* v = int_member "value" j in
      Ok (Metrics.Counter v)
  | "gauge" ->
      let* v = float_member "value" j in
      Ok (Metrics.Gauge v)
  | "histogram" ->
      let* count = int_member "count" j in
      let* sum = float_member "sum" j in
      let* min = float_member "min" j in
      let* max = float_member "max" j in
      let* p50 = float_member "p50" j in
      let* p90 = float_member "p90" j in
      let* p99 = float_member "p99" j in
      Ok (Metrics.Histogram { Metrics.count; sum; min; max; p50; p90; p99 })
  | "timing" ->
      let* count = int_member "count" j in
      let* total_ns = int_member "total_ns" j in
      Ok (Metrics.Timing { count; total_ns })
  | k -> Error ("store: unknown metric kind " ^ name ^ ":" ^ k)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let record_of_json j =
  let* params = need "params" (Json.member "params" j) in
  let* params =
    match params with
    | Json.Obj members -> Ok members
    | _ -> Error "store: params is not an object"
  in
  let* rounds = int_member "rounds" j in
  let* messages = int_member "messages" j in
  let* advice_bits = int_member "advice_bits" j in
  let* wall_ns = int_member "wall_ns" j in
  let* metrics = need "metrics" (Json.member "metrics" j) in
  let* metrics =
    match metrics with
    | Json.Obj members ->
        map_result
          (fun (name, mj) ->
            let* v = metric_of_json name mj in
            Ok (name, v))
          members
    | _ -> Error "store: metrics is not an object"
  in
  Ok { params; rounds; messages; advice_bits; wall_ns; metrics }

let decode text =
  let* j = Json.of_string text in
  let* version = int_member "schema" j in
  if version <> schema_version then
    Error
      (Printf.sprintf
         "store: unsupported schema version %d (this build reads version %d)"
         version schema_version)
  else
    let* label = need "label" (Json.member "label" j) in
    let* label = as_string "label" label in
    let* records = need "records" (Json.member "records" j) in
    let* records =
      match records with
      | Json.List items -> map_result record_of_json items
      | _ -> Error "store: records is not a list"
    in
    Ok { version; label; records }

let write_file path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> Ok text
  | exception Sys_error msg -> Error ("store: " ^ msg)

let save ~path t = write_file path (encode t)

let load ~path =
  let* text = read_file path in
  decode text

(* --- comparison --- *)

let strip_timing t =
  {
    t with
    records =
      List.map
        (fun r ->
          {
            r with
            wall_ns = 0;
            metrics =
              List.filter (fun (_, v) -> not (Metrics.is_timing v)) r.metrics;
          })
        t.records;
  }

let params_key params =
  Json.to_string (Json.Obj params)

let pp_params params =
  String.concat " "
    (List.map
       (fun (name, v) ->
         name ^ "="
         ^ match v with Json.String s -> s | v -> Json.to_string v)
       params)

type change =
  | Added of record
  | Removed of record
  | Changed of record * string list

let is_changed = function Changed _ -> true | _ -> false

let pp_change = function
  | Added r -> Printf.sprintf "added   %s" (pp_params r.params)
  | Removed r -> Printf.sprintf "removed %s" (pp_params r.params)
  | Changed (r, fields) ->
      Printf.sprintf "changed %s: %s" (pp_params r.params)
        (String.concat "; " fields)

let diff_changes ~baseline ~current =
  let baseline = strip_timing baseline and current = strip_timing current in
  let index store =
    List.map (fun r -> (params_key r.params, r)) store.records
  in
  let base_idx = index baseline and cur_idx = index current in
  let changes =
    List.filter_map
      (fun (key, cur) ->
        match List.assoc_opt key base_idx with
        | None -> Some (Added cur)
        | Some base ->
            let fields =
              List.filter_map
                (fun (name, was, is) ->
                  if was = is then None
                  else Some (Printf.sprintf "%s %d -> %d" name was is))
                [
                  ("rounds", base.rounds, cur.rounds);
                  ("messages", base.messages, cur.messages);
                  ("advice_bits", base.advice_bits, cur.advice_bits);
                ]
            in
            let fields =
              if base.metrics = cur.metrics then fields
              else fields @ [ "metrics changed" ]
            in
            if fields = [] then None else Some (Changed (cur, fields)))
      cur_idx
  in
  let removed =
    List.filter_map
      (fun (key, base) ->
        if List.mem_assoc key cur_idx then None else Some (Removed base))
      base_idx
  in
  changes @ removed

let diff ~baseline ~current =
  List.map pp_change (diff_changes ~baseline ~current)

(* --- sharded layout --- *)

module Sharded = struct
  type shard = {
    file : string;
    slice : (string * Json.t) list;
    digest : string;
    records : int;
  }

  type manifest = { version : int; label : string; shards : shard list }

  let manifest_file = "manifest.json"

  let default_slice r =
    List.filter (fun (name, _) -> name = "family" || name = "delta") r.params

  let slice_label slice = if slice = [] then "all" else pp_params slice

  (* digests are taken over the canonical (timing-stripped) encoding, so
     a shard's digest is independent of the domain count and of the
     wall-clock values stored in the file *)
  let digest_of_store st = Digest.to_hex (Digest.string (encode (strip_timing st)))

  let shard_file_name =
    let sanitize s =
      String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' | '=' -> c
          | _ -> ',')
        s
    in
    fun slice -> "shard-" ^ sanitize (slice_label slice) ^ ".json"

  (* partition records by slice, shards in first-appearance order,
     records in store order within each shard *)
  let partition slice_of (t : t) =
    let tbl = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun r ->
        let slice = slice_of r in
        let key = params_key slice in
        match Hashtbl.find_opt tbl key with
        | None ->
            Hashtbl.add tbl key (slice, ref [ r ]);
            order := key :: !order
        | Some (_, rs) -> rs := r :: !rs)
      t.records;
    List.rev_map
      (fun key ->
        let slice, rs = Hashtbl.find tbl key in
        (slice, List.rev !rs))
      !order

  let shard ?(slice = default_slice) t =
    List.map
      (fun (slice, records) ->
        let st = { version = schema_version; label = slice_label slice; records } in
        ( {
            file = shard_file_name slice;
            slice;
            digest = digest_of_store st;
            records = List.length records;
          },
          st ))
      (partition slice t)

  (* manifest codec, same one-entry-per-line discipline as the store *)

  let json_of_shard s =
    Json.Obj
      [
        ("file", String s.file);
        ("slice", Obj s.slice);
        ("digest", String s.digest);
        ("records", Int s.records);
      ]

  let encode_manifest m =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "{\"schema\":%d,\"label\":%s,\"shards\":[" m.version
         (Json.to_string (String m.label)));
    List.iteri
      (fun i s ->
        Buffer.add_string buf (if i = 0 then "\n" else ",\n");
        Buffer.add_string buf (Json.to_string (json_of_shard s)))
      m.shards;
    Buffer.add_string buf "\n]}\n";
    Buffer.contents buf

  let shard_of_json j =
    let* file = need "file" (Json.member "file" j) in
    let* file = as_string "file" file in
    let* slice = need "slice" (Json.member "slice" j) in
    let* slice =
      match slice with
      | Json.Obj members -> Ok members
      | _ -> Error "store: shard slice is not an object"
    in
    let* digest = need "digest" (Json.member "digest" j) in
    let* digest = as_string "digest" digest in
    let* records = int_member "records" j in
    Ok { file; slice; digest; records }

  let decode_manifest text =
    let* j = Json.of_string text in
    let* version = int_member "schema" j in
    if version <> schema_version then
      Error
        (Printf.sprintf
           "store: unsupported manifest schema version %d (this build reads \
            version %d)"
           version schema_version)
    else
      let* label = need "label" (Json.member "label" j) in
      let* label = as_string "label" label in
      let* shards = need "shards" (Json.member "shards" j) in
      let* shards =
        match shards with
        | Json.List items -> map_result shard_of_json items
        | _ -> Error "store: shards is not a list"
      in
      Ok { version; label; shards }

  let load_manifest ~dir =
    let* text = read_file (Filename.concat dir manifest_file) in
    decode_manifest text

  let load_shard ~dir s =
    let* text = read_file (Filename.concat dir s.file) in
    let* st = decode text in
    let got = digest_of_store st in
    if got <> s.digest then
      Error
        (Printf.sprintf
           "store: shard %s digest mismatch (manifest %s, file %s)" s.file
           s.digest got)
    else Ok st

  let save ?slice ~dir t =
    let shards = shard ?slice t in
    (* a shard whose digest the previous manifest already lists is left
       untouched on disk: partial re-runs replace only what changed *)
    let previous =
      match load_manifest ~dir with Ok m -> m.shards | Error _ -> []
    in
    let prev_digests = List.map (fun s -> (s.file, s.digest)) previous in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (info, st) ->
        let unchanged =
          List.assoc_opt info.file prev_digests = Some info.digest
        in
        if not unchanged then
          write_file (Filename.concat dir info.file) (encode st))
      shards;
    List.iter
      (fun old ->
        if not (List.exists (fun (info, _) -> info.file = old.file) shards)
        then try Sys.remove (Filename.concat dir old.file) with Sys_error _ -> ())
      previous;
    let m =
      { version = schema_version; label = t.label; shards = List.map fst shards }
    in
    write_file (Filename.concat dir manifest_file) (encode_manifest m);
    m

  let load ~dir =
    let* m = load_manifest ~dir in
    let* stores = map_result (load_shard ~dir) m.shards in
    Ok
      {
        version = m.version;
        label = m.label;
        records = List.concat_map (fun (st : t) -> st.records) stores;
      }

  let diff ?slice ~baseline_dir current =
    let* m = load_manifest ~dir:baseline_dir in
    let cur_shards = shard ?slice current in
    let base_by_key = List.map (fun s -> (params_key s.slice, s)) m.shards in
    let cur_keys =
      List.map (fun (info, _) -> params_key info.slice) cur_shards
    in
    let* per_shard =
      map_result
        (fun (info, st) ->
          match List.assoc_opt (params_key info.slice) base_by_key with
          | Some base when base.digest = info.digest ->
              Ok [] (* unchanged: skipped without decoding the baseline *)
          | Some base ->
              let* base_store = load_shard ~dir:baseline_dir base in
              Ok
                (List.map
                   (fun c -> (info.file, c))
                   (diff_changes ~baseline:base_store ~current:st))
          | None -> Ok (List.map (fun r -> (info.file, Added r)) st.records))
        cur_shards
    in
    let* removed =
      map_result
        (fun base ->
          if List.mem (params_key base.slice) cur_keys then Ok []
          else
            let* st = load_shard ~dir:baseline_dir base in
            Ok (List.map (fun r -> (base.file, Removed r)) st.records))
        m.shards
    in
    Ok (List.concat per_shard @ List.concat removed)
end
