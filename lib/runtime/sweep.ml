module Port_graph = Shades_graph.Port_graph
module Scheme = Shades_election.Scheme
module Verify = Shades_election.Verify
module Select_by_view = Shades_election.Select_by_view
module Gclass = Shades_families.Gclass
module Uclass = Shades_families.Uclass

type point = (string * int) list

type axis = { name : string; values : int list }

let axis name values = { name; values }

let range ?(step = 1) name ~lo ~hi =
  if step <= 0 then invalid_arg "Sweep.range: step must be positive";
  let rec collect v = if v > hi then [] else v :: collect (v + step) in
  { name; values = collect lo }

let cross axes =
  List.fold_right
    (fun { name; values } tails ->
      List.concat_map
        (fun v -> List.map (fun tail -> (name, v) :: tail) tails)
        values)
    axes [ [] ]

type outcome = {
  rounds : int;
  messages : int;
  advice_bits : int;
  graph_order : int;
  verified : bool;
}

type job = { family : string; params : point; exec : Metrics.t -> outcome }

let value point name = List.assoc_opt name point

let with_default point name default =
  match value point name with
  | Some _ -> point
  | None -> point @ [ (name, default) ]

(* Run [scheme] on [g] through the simulator, collecting the engine's
   per-round telemetry into [metrics]. *)
let elect metrics scheme verify g =
  let messages = ref 0 in
  let on_round ~round:_ ~messages:m =
    messages := m;
    Metrics.incr metrics "engine_rounds"
  in
  let r = Metrics.time metrics "elect" (fun () -> Scheme.run ~on_round scheme g) in
  let verified =
    Metrics.time metrics "verify" (fun () ->
        Result.is_ok (verify g r.Scheme.outputs))
  in
  {
    rounds = r.Scheme.rounds;
    messages = !messages;
    advice_bits = r.Scheme.advice_bits;
    graph_order = Port_graph.order g;
    verified;
  }

let gclass_job point =
  match (value point "delta", value point "k") with
  | Some delta, Some k when delta >= 3 && k >= 1 ->
      let point = with_default point "i" 2 in
      let i = Option.get (value point "i") in
      let p = { Gclass.delta; k } in
      let within_class =
        i >= 1
        &&
        match Gclass.num_graphs p with Some c -> i <= c | None -> true
      in
      if not within_class then None
      else
        Some
          {
            family = "g";
            params = point;
            exec =
              (fun metrics ->
                let t = Metrics.time metrics "build" (fun () -> Gclass.build p ~i) in
                elect metrics Select_by_view.scheme Verify.selection
                  t.Gclass.graph);
          }
  | _ -> None

let uclass_job point =
  match (value point "delta", value point "k") with
  | Some delta, Some k when delta >= 4 && k >= 1 ->
      let point = with_default point "sigma" 1 in
      let sigma = Option.get (value point "sigma") in
      let p = { Uclass.delta; k } in
      (* y trees ≈ n/4 nodes each of size Θ(∆k): refuse instances that
         could not be built in memory (u(4,2)'s 19683 trees / 86k nodes
         is the largest instance the repo exercises) *)
      let buildable =
        match Uclass.num_trees p with
        | Some y -> y <= 50_000
        | None -> false
      in
      if sigma < 1 || sigma > delta - 1 || not buildable then None
      else
        Some
          {
            family = "u";
            params = point;
            exec =
              (fun metrics ->
                let t =
                  Metrics.time metrics "build" (fun () ->
                      Uclass.build p ~sigma:(Uclass.uniform_sigma p sigma))
                in
                elect metrics Uclass.pe_scheme Verify.port_election
                  t.Uclass.graph);
          }
  | _ -> None

let gclass_jobs points = List.filter_map gclass_job points
let uclass_jobs points = List.filter_map uclass_job points

(* The smallest honest grid — shared by `sweep --tiny`, `make check`
   and the test suite, so the CI gate exercises exactly this grid. *)
let tiny_points =
  cross [ range "delta" ~lo:3 ~hi:4; range "k" ~lo:1 ~hi:1; axis "i" [ 2 ] ]

let tiny_jobs () = gclass_jobs tiny_points

let record_of_job job =
  let metrics = Metrics.create () in
  let t0 = Metrics.now_ns () in
  let outcome = job.exec metrics in
  let wall_ns = Metrics.now_ns () - t0 in
  Metrics.incr ~by:outcome.graph_order metrics "graph_order";
  Metrics.incr ~by:(if outcome.verified then 1 else 0) metrics "verified";
  Metrics.incr ~by:outcome.messages metrics "engine_messages";
  {
    Store.params =
      ("family", Store.Json.String job.family)
      :: List.map (fun (n, v) -> (n, Store.Json.Int v)) job.params;
    rounds = outcome.rounds;
    messages = outcome.messages;
    advice_bits = outcome.advice_bits;
    wall_ns;
    metrics = Metrics.snapshot metrics;
  }

let run ?domains jobs = Pool.map_list ?domains record_of_job jobs
