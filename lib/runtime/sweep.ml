module Port_graph = Shades_graph.Port_graph
module Scheme = Shades_election.Scheme
module Verify = Shades_election.Verify
module Select_by_view = Shades_election.Select_by_view
module Gclass = Shades_families.Gclass
module Uclass = Shades_families.Uclass
module Jclass = Shades_families.Jclass
module Component = Shades_families.Component
module Trace = Shades_trace.Trace

type point = (string * int) list

type axis = { name : string; values : int list }

let axis name values = { name; values }

let range ?(step = 1) name ~lo ~hi =
  if step <= 0 then invalid_arg "Sweep.range: step must be positive";
  let rec collect v = if v > hi then [] else v :: collect (v + step) in
  { name; values = collect lo }

let cross axes =
  List.fold_right
    (fun { name; values } tails ->
      List.concat_map
        (fun v -> List.map (fun tail -> (name, v) :: tail) tails)
        values)
    axes [ [] ]

type outcome = {
  rounds : int;
  messages : int;
  advice_bits : int;
  graph_order : int;
  verified : bool;
}

type job = {
  family : string;
  params : point;
  cost : int;
  engine : Trace.engine;
  exec : tracer:(Shades_trace.Event.t -> unit) option -> Metrics.t -> outcome;
}

let value point name = List.assoc_opt name point

let with_default point name default =
  match value point name with
  | Some _ -> point
  | None -> point @ [ (name, default) ]

let ipow base exp =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  if exp < 0 then invalid_arg "Sweep.ipow" else go 1 exp

(* Run [scheme] on [g] through the simulator, collecting the engine's
   per-round telemetry into [metrics].  The [round_messages] histogram
   (messages sent per engine round) is always recorded, tracer or not,
   so traced and untraced runs of the same job produce byte-identical
   store records. *)
let elect_with ?tracer metrics ~run ~verify g =
  let messages = ref 0 in
  let on_round ~round:_ ~messages:m =
    Metrics.observe metrics "round_messages" (float_of_int (m - !messages));
    messages := m;
    Metrics.incr metrics "engine_rounds"
  in
  let r = Metrics.time metrics "elect" (fun () -> run ~on_round ~tracer g) in
  let verified =
    Metrics.time metrics "verify" (fun () ->
        Result.is_ok (verify g r.Scheme.outputs))
  in
  {
    rounds = r.Scheme.rounds;
    messages = !messages;
    advice_bits = r.Scheme.advice_bits;
    graph_order = Port_graph.order g;
    verified;
  }

(* How the synchronous engine executes a job: sequentially, or vertex-
   sharded across worker domains.  A strategy is invisible in results,
   metrics and traces — it never appears in job params, labels or trace
   metadata, so blessed baselines gate every strategy unchanged. *)
type strategy = Sequential | Sharded of { domains : int option }

let strategy_run strategy scheme ~on_round ?tracer g =
  match strategy with
  | Sequential -> Scheme.run ~on_round ?tracer scheme g
  | Sharded { domains } ->
      Scheme.run_sharded ?domains ~on_round ?tracer scheme g

let elect ?(strategy = Sequential) ?tracer metrics scheme verify g =
  elect_with ?tracer metrics ~verify g ~run:(fun ~on_round ~tracer g ->
      strategy_run strategy scheme ~on_round ?tracer g)

(* The α-synchronizer variant: identical telemetry discipline, delays
   drawn from the engine's own PRNG seeded with [seed] — so the run
   (and its trace) is a pure function of (graph, scheme, seed).  The
   [messages] telemetry is the count at the last round start, as for
   the synchronous engine. *)
let elect_async ?tracer ~seed metrics scheme verify g =
  elect_with ?tracer metrics ~verify g ~run:(fun ~on_round ~tracer g ->
      Scheme.run_async ~seed ~on_round ?tracer scheme g)

(* Projected node counts, used only to order jobs largest-first (the
   classic longest-processing-time heuristic): they must be cheap and
   deterministic, not exact.  G_i of G_{∆,k} has (4i−1) blocks of one
   tree (z leaves, plus internal nodes ≈ z + k) each; the U-class
   estimate was calibrated against built instances (u(4,1): 468
   projected vs 450 actual). *)
let gclass_cost ~delta ~k ~i =
  let z = (delta - 2) * ipow (delta - 1) (k - 1) in
  ((4 * i) - 1) * ((3 * z) + k + 2)

let uclass_cost ~delta ~k ~y =
  let z = (delta - 2) * ipow (delta - 1) (k - 1) in
  y * ((4 * ((3 * z) + k + 2)) + (2 * (k + 1)) + (2 * (delta - 1) * (k + 1)))

(* Exact, cheap: 2^{z_eff} gadgets, each 4 components sharing ρ. *)
let jclass_order ~mu ~k ~z_eff =
  ipow 2 z_eff * ((4 * (Component.size ~mu ~k - 1)) + 1)

let gclass_job ?strategy point =
  match (value point "delta", value point "k") with
  | Some delta, Some k when delta >= 3 && k >= 1 ->
      let point = with_default point "i" 2 in
      let i = Option.get (value point "i") in
      let p = { Gclass.delta; k } in
      let within_class =
        i >= 1
        &&
        match Gclass.num_graphs p with Some c -> i <= c | None -> true
      in
      if not within_class then None
      else
        Some
          {
            family = "g";
            params = point;
            cost = gclass_cost ~delta ~k ~i;
            engine = Trace.Sync;
            exec =
              (fun ~tracer metrics ->
                let t = Metrics.time metrics "build" (fun () -> Gclass.build p ~i) in
                elect ?strategy ?tracer metrics Select_by_view.scheme
                  Verify.selection t.Gclass.graph);
          }
  | _ -> None

let uclass_job ?strategy point =
  match (value point "delta", value point "k") with
  | Some delta, Some k when delta >= 4 && k >= 1 ->
      let point = with_default point "sigma" 1 in
      let sigma = Option.get (value point "sigma") in
      let p = { Uclass.delta; k } in
      (* y trees ≈ n/4 nodes each of size Θ(∆k): refuse instances that
         could not be built in memory (u(4,2)'s 19683 trees / 86k nodes
         is the largest instance the repo exercises) *)
      let trees =
        match Uclass.num_trees p with
        | Some y when y <= 50_000 -> Some y
        | _ -> None
      in
      if sigma < 1 || sigma > delta - 1 then None
      else
        Option.map
          (fun y ->
            {
              family = "u";
              params = point;
              cost = uclass_cost ~delta ~k ~y;
              engine = Trace.Sync;
              exec =
                (fun ~tracer metrics ->
                  let t =
                    Metrics.time metrics "build" (fun () ->
                        Uclass.build p ~sigma:(Uclass.uniform_sigma p sigma))
                  in
                  elect ?strategy ?tracer metrics Uclass.pe_scheme
                    Verify.port_election t.Uclass.graph);
            })
          trees
  | _ -> None

let default_max_order = 20_000

let jclass_job ?strategy ?(max_order = default_max_order) ~metrics point =
  match (value point "mu", value point "k") with
  | Some mu, Some k when mu >= 3 && k >= 4 ->
      let point = with_default point "z_eff" 1 in
      let z_eff = Option.get (value point "z_eff") in
      if z_eff < 1 || z_eff > Jclass.z ~mu ~k then None
      else begin
        let order = jclass_order ~mu ~k ~z_eff in
        if order > max_order then begin
          (* Never skip silently: the chain doubles per z_eff, so a
             grid routinely strays over budget and the gap must show
             up in telemetry. *)
          Metrics.incr metrics "jclass_skipped_max_order";
          None
        end
        else
          let p = { Jclass.mu; k; z_eff } in
          Some
            {
              family = "j";
              params = point;
              cost = order;
              engine = Trace.Sync;
              exec =
                (fun ~tracer metrics ->
                  let t =
                    Metrics.time metrics "build" (fun () ->
                        Jclass.build p ~y:(Jclass.y_zero p))
                  in
                  elect ?strategy ?tracer metrics (Jclass.cppe_scheme t)
                    Verify.complete_port_path_election t.Jclass.graph);
            }
      end
  | _ -> None

(* Same G-class instances, driven through the α-synchronizer with
   seeded adversarial delays.  The outputs and round count must equal
   the synchronous run (the scheme is oblivious to timing); what the
   async family pins down in baselines is the *trace*: delay draws,
   sync markers and message interleaving as a function of the seed. *)
let gclass_async_job point =
  match gclass_job point with
  | None -> None
  | Some job ->
      let point = with_default job.params "seed" 0 in
      let seed = Option.get (value point "seed") in
      let delta = Option.get (value point "delta")
      and k = Option.get (value point "k")
      and i = Option.get (value point "i") in
      let p = { Gclass.delta; k } in
      Some
        {
          job with
          family = "g-async";
          params = point;
          engine = Trace.Async { seed };
          exec =
            (fun ~tracer metrics ->
              let t = Metrics.time metrics "build" (fun () -> Gclass.build p ~i) in
              elect_async ?tracer ~seed metrics Select_by_view.scheme
                Verify.selection t.Gclass.graph);
        }

let gclass_jobs ?strategy points =
  List.filter_map (gclass_job ?strategy) points

let gclass_async_jobs points = List.filter_map gclass_async_job points

let uclass_jobs ?strategy points =
  List.filter_map (uclass_job ?strategy) points

let jclass_jobs ?strategy ?max_order ~metrics points =
  List.filter_map (jclass_job ?strategy ?max_order ~metrics) points

(* The smallest honest grid — shared by `sweep --tiny`, `make check`
   and the test suite, so the CI gate exercises exactly this grid. *)
let tiny_points =
  cross [ range "delta" ~lo:3 ~hi:4; range "k" ~lo:1 ~hi:1; axis "i" [ 2 ] ]

(* One async point rides along so the gates (store compare and trace
   forensics alike) pin the seeded α-synchronizer schedule, not just
   the synchronous engine. *)
let tiny_async_points =
  cross
    [
      range "delta" ~lo:3 ~hi:3; range "k" ~lo:1 ~hi:1; axis "i" [ 2 ];
      axis "seed" [ 0 ];
    ]

(* One J-class point rides along so the tiny gates also pin the CPPE
   task (Section 4).  mu = 3, k = 4 is the smallest legal corner; at
   z_eff = 1 the scaled template has 402 nodes — well inside the
   default order budget and fast enough for `make check`. *)
let tiny_jclass_points =
  cross [ axis "mu" [ 3 ]; axis "k" [ 4 ]; axis "z_eff" [ 1 ] ]

(* The async rider always runs sequentially: the α-synchronizer has no
   sharded variant (its event loop is inherently serial), and the rider
   exists to pin the seeded schedule, not to go fast. *)
let tiny_jobs ?strategy () =
  gclass_jobs ?strategy tiny_points
  @ gclass_async_jobs tiny_async_points
  @ jclass_jobs ?strategy ~metrics:(Metrics.create ()) tiny_jclass_points

let record_of_job ?tracer job =
  let metrics = Metrics.create () in
  let t0 = Metrics.now_ns () in
  let outcome = job.exec ~tracer metrics in
  let wall_ns = Metrics.now_ns () - t0 in
  Metrics.incr ~by:outcome.graph_order metrics "graph_order";
  Metrics.incr ~by:(if outcome.verified then 1 else 0) metrics "verified";
  Metrics.incr ~by:outcome.messages metrics "engine_messages";
  ( {
      Store.params =
        ("family", Store.Json.String job.family)
        :: List.map (fun (n, v) -> (n, Store.Json.Int v)) job.params;
      rounds = outcome.rounds;
      messages = outcome.messages;
      advice_bits = outcome.advice_bits;
      wall_ns;
      metrics = Metrics.snapshot metrics;
    },
    outcome )

(* Schedule largest-first (by projected cost) so the big instance is
   never the straggler picked up last, then put the results back in
   job-list order — determinism is untouched because Pool.map is
   input-order-stable and the permutation depends only on the costs. *)
let schedule_order jobs =
  let jobs = Array.of_list jobs in
  let order = Array.init (Array.length jobs) Fun.id in
  Array.sort
    (fun a b ->
      match Int.compare jobs.(b).cost jobs.(a).cost with
      | 0 -> Int.compare a b
      | c -> c)
    order;
  Array.to_list order

let run_ordered ?domains f jobs =
  let order = Array.of_list (schedule_order jobs) in
  let jobs = Array.of_list jobs in
  let results = Pool.map ?domains (fun i -> (i, f jobs.(i))) order in
  let out = Array.make (Array.length jobs) None in
  Array.iter (fun (i, r) -> out.(i) <- Some r) results;
  Array.to_list (Array.map Option.get out)

let run ?domains jobs =
  run_ordered ?domains (fun job -> fst (record_of_job job)) jobs

let label_of_job job =
  String.concat ","
    (job.family :: List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) job.params)

let key_of_job job = Shades_trace.Baseline.key_of_label (label_of_job job)

let run_traced ?domains ?capacity ?baseline jobs =
  let traced =
    run_ordered ?domains
      (fun job ->
        let r = Trace.recorder ?capacity () in
        let record, outcome = record_of_job ~tracer:(Trace.emit r) job in
        let meta =
          {
            Trace.engine = job.engine;
            graph_order = outcome.graph_order;
            advice_bits = outcome.advice_bits;
            label = label_of_job job;
          }
        in
        (record, Trace.capture r meta))
      jobs
  in
  let report =
    Option.map
      (fun dir ->
        Shades_trace.Baseline.gate ~dir
          (List.map2 (fun job (_, tr) -> (key_of_job job, tr)) jobs traced))
      baseline
  in
  (traced, report)
