(* The pool implementation lives in [Shades_pool] so that libraries
   underneath the runtime (notably [Shades_localsim.Sharded_engine])
   can share the same crews without a dependency cycle; this alias
   keeps the historical [Shades_runtime.Pool] path working. *)
include Shades_pool
