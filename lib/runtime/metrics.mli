(** Telemetry registry: named counters, gauges, histograms and timers.

    A registry is a mutex-guarded bag of named instruments, safe to
    share across {!Pool} domains (the sweep engine instead gives every
    job its own registry so snapshots stay per-point and deterministic).
    Snapshots are name-sorted, so two registries fed the same
    observations in any order render identically — the property the
    byte-identical-store tests rely on.

    Timings are a separate kind (not a histogram of nanoseconds) so
    that {!Store.strip_timing} can drop every wall-clock-dependent
    entry without guessing from names. *)

type t

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;  (** nearest-rank quantiles over all observations *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_stats
  | Timing of { count : int; total_ns : int }

val create : unit -> t
(** A fresh empty registry. *)

val incr : ?by:int -> t -> string -> unit
(** Bump counter [name] by [by] (default 1), creating it at 0. *)

val set_gauge : t -> string -> float -> unit
(** Set gauge [name] (last write wins). *)

val observe : t -> string -> float -> unit
(** Add one observation to histogram [name]. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, add its wall-clock duration to timing [name], and
    return its result (the timing is recorded even if it raises). *)

val add_ns : t -> string -> int -> unit
(** Add a pre-measured duration (in nanoseconds) to timing [name]. *)

val quantile : t -> string -> float -> float option
(** [quantile t name q] with [q] in [0..1]: the nearest-rank [q]-th
    quantile of histogram [name]; [None] if absent or empty. *)

val snapshot : t -> (string * value) list
(** All instruments, sorted by name. *)

val is_timing : value -> bool
(** [true] exactly on [Timing _] — the entries {!Store.strip_timing}
    removes. *)

val now_ns : unit -> int
(** Wall clock in nanoseconds (the clock {!time} uses). *)
