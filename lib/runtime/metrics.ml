type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram_stats
  | Timing of { count : int; total_ns : int }

(* Histograms keep the raw observations (sweep points are small); stats
   are derived at snapshot time. *)
type instrument =
  | ICounter of int ref
  | IGauge of float ref
  | IHist of float list ref
  | ITiming of { n : int ref; total : int ref }

type t = { mutex : Mutex.t; table : (string, instrument) Hashtbl.t }

let create () = { mutex = Mutex.create (); table = Hashtbl.create 16 }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t name make use =
  let i =
    match Hashtbl.find_opt t.table name with
    | Some i -> i
    | None ->
        let i = make () in
        Hashtbl.add t.table name i;
        i
  in
  use i

let incr ?(by = 1) t name =
  locked t (fun () ->
      find t name
        (fun () -> ICounter (ref 0))
        (function
          | ICounter r -> r := !r + by
          | _ -> invalid_arg ("Metrics.incr: " ^ name ^ " is not a counter")))

let set_gauge t name v =
  locked t (fun () ->
      find t name
        (fun () -> IGauge (ref v))
        (function
          | IGauge r -> r := v
          | _ -> invalid_arg ("Metrics.set_gauge: " ^ name ^ " is not a gauge")))

let observe t name v =
  locked t (fun () ->
      find t name
        (fun () -> IHist (ref []))
        (function
          | IHist r -> r := v :: !r
          | _ ->
              invalid_arg ("Metrics.observe: " ^ name ^ " is not a histogram")))

let add_ns t name ns =
  locked t (fun () ->
      find t name
        (fun () -> ITiming { n = ref 0; total = ref 0 })
        (function
          | ITiming { n; total } ->
              Stdlib.incr n;
              total := !total + ns
          | _ -> invalid_arg ("Metrics.add_ns: " ^ name ^ " is not a timing")))

(* The one sanctioned clock: every wall_ns measurement in the repo
   flows through here, and timing fields are excluded from store
   digests and diffs.
   shadescheck: allow wall-clock-in-measured-path *)
let now_ns () = Int64.to_int (Int64.of_float (Unix.gettimeofday () *. 1e9))

let time t name f =
  let t0 = now_ns () in
  Fun.protect ~finally:(fun () -> add_ns t name (now_ns () - t0)) f

(* Nearest-rank quantile: the smallest observation with at least a [q]
   fraction of the data at or below it. *)
let nearest_rank sorted q =
  let count = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int count)) in
  sorted.(max 0 (min (count - 1) (rank - 1)))

let hist_stats obs =
  let sorted = Array.of_list obs in
  Array.sort Float.compare sorted;
  let count = Array.length sorted in
  {
    count;
    sum = Array.fold_left ( +. ) 0. sorted;
    min = sorted.(0);
    max = sorted.(count - 1);
    p50 = nearest_rank sorted 0.50;
    p90 = nearest_rank sorted 0.90;
    p99 = nearest_rank sorted 0.99;
  }

let quantile t name q =
  locked t (fun () ->
      match Hashtbl.find_opt t.table name with
      | Some (IHist { contents = _ :: _ as obs }) ->
          let sorted = Array.of_list obs in
          Array.sort Float.compare sorted;
          Some (nearest_rank sorted q)
      | _ -> None)

let snapshot t =
  locked t (fun () ->
      Hashtbl.fold
        (fun name i acc ->
          let value =
            match i with
            | ICounter r -> Some (Counter !r)
            | IGauge r -> Some (Gauge !r)
            | IHist { contents = [] } -> None (* no observations yet *)
            | IHist { contents = obs } -> Some (Histogram (hist_stats obs))
            | ITiming { n; total } ->
                Some (Timing { count = !n; total_ns = !total })
          in
          match value with Some v -> (name, v) :: acc | None -> acc)
        t.table []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b))

let is_timing = function Timing _ -> true | _ -> false
