(** Alias of {!Shades_pool}, the domain worker pool.

    The implementation moved to its own library so the LOCAL simulator
    (which the runtime depends on) can reuse [Crew] workers and
    barriers; every existing [Shades_runtime.Pool] caller keeps
    compiling unchanged. *)

include module type of Shades_pool
