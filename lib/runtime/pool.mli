(** Domain-based worker pool with deterministic, input-ordered results.

    A fixed team of OCaml 5 domains drains a work queue (guarded by a
    [Mutex.t]/[Condition.t] pair); each job's result is written into a
    slot chosen by the job's input position, so the output order never
    depends on scheduling.  Two runs of [map f jobs] with any two domain
    counts return equal arrays whenever [f] is deterministic — the
    property the sweep determinism tests pin down. *)

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core to
    the coordinating domain. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ?domains f jobs] applies [f] to every element of [jobs] and
    returns the results in input order.

    [domains] defaults to {!default_domains}; values [<= 1] (or a
    single-element input) run sequentially in the calling domain — no
    domain is spawned, which doubles as the reference execution for
    determinism checks.  At most [Array.length jobs] domains are
    spawned.

    If one or more jobs raise, the exception of the smallest failing
    input index is re-raised after all workers have been joined (the
    others are discarded).  [f] must be safe to call from multiple
    domains at once. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)
