(** Grid sweeps: compose the paper's graph families with their election
    schemes into job lists for {!Pool}, producing {!Store} records.

    A sweep point is a named integer assignment (e.g.
    [delta=4 k=1 i=2]); {!range} and {!cross} build grids of points;
    the [*_jobs] builders turn points into runnable jobs — each job
    builds its family instance, runs the minimum-time scheme through
    the LOCAL simulator (with {!Metrics} telemetry fed by the engine's
    [on_round] hook), and verifies the outputs with the referee-grade
    checker.  {!run} fans the jobs across domains (scheduling the
    largest projected instances first) and returns records in grid
    order, independent of the domain count. *)

type point = (string * int) list
(** One sweep point: parameter name → value, in axis order. *)

type axis

val axis : string -> int list -> axis
(** An explicit list of values. *)

val range : ?step:int -> string -> lo:int -> hi:int -> axis
(** Inclusive integer range, [step] (default 1) must be positive. *)

val cross : axis list -> point list
(** Cartesian product, row-major: the last axis varies fastest.  The
    result order is the record order of {!run}. *)

type outcome = {
  rounds : int;
  messages : int;  (** from the engine's [on_round] telemetry *)
  advice_bits : int;
  graph_order : int;
  verified : bool;  (** the task verifier accepted the outputs *)
}

type job = {
  family : string;
      (** "g", "g-async", "u" or "j" — recorded as the [family] param *)
  params : point;
  cost : int;
      (** projected node count of the instance — the scheduling weight
          {!run} sorts by (largest first); a cheap deterministic
          estimate, not a promise *)
  engine : Shades_trace.Trace.engine;
      (** which simulator drives [exec] — [Sync] for the round-driven
          engine, [Async {seed}] for the α-synchronizer; stamped into
          the captured trace's metadata by {!run_traced} *)
  exec : tracer:(Shades_trace.Event.t -> unit) option -> Metrics.t -> outcome;
      (** runs the job; [tracer] (if any) receives the engine's event
          stream and must not change the metrics the job records —
          {!run} passes [None], {!run_traced} a recorder *)
}

type strategy =
  | Sequential  (** {!Shades_election.Scheme.run} — one domain *)
  | Sharded of { domains : int option }
      (** {!Shades_election.Scheme.run_sharded} — the vertex-sharded
          parallel engine on [domains] worker domains ([None] =
          {!Shades_localsim.Sharded_engine.default_domains}) *)
(** How the synchronous engine executes a job.  A strategy is an
    execution detail, not a model change: it is invisible in results,
    metrics, job params, labels, and trace metadata (the trace [engine]
    stays [Sync]), so records and blessed baselines are identical
    across strategies and domain counts.  Contrast with the
    ["g-async"] family, which is a {e semantic} variant (different
    event stream) and therefore a separate family with its own
    baselines.  The [*_jobs] builders below default to [Sequential];
    the async rider always runs sequentially (the α-synchronizer's
    event loop is inherently serial). *)

val gclass_job : ?strategy:strategy -> point -> job option
(** Selection (Theorem 2.2 scheme) on [G_i] of [G_{∆,k}].  Point keys:
    [delta] (≥ 3), [k] (≥ 1), optional [i] (default 2 — the smallest
    index with all lemma guarantees).  [None] if the point is outside
    the class (e.g. [i] exceeds the class size). *)

val uclass_job : ?strategy:strategy -> point -> job option
(** Port Election (Lemma 3.9 scheme) on [G_σ] of [U_{∆,k}] with
    uniform σ.  Point keys: [delta] (≥ 4), [k] (≥ 1), optional [sigma]
    (default 1, must be in [1..∆−1]).  [None] outside the class, and
    also for instances with more than 50 000 trees (|U| grows doubly
    exponentially; those graphs cannot be built in memory). *)

val default_max_order : int
(** Node budget for {!jclass_job} when [max_order] is omitted
    (20 000 — J(3,4) fits up to [z_eff = 4]). *)

val jclass_job :
  ?strategy:strategy -> ?max_order:int -> metrics:Metrics.t -> point ->
  job option
(** Complete Port-Position Election (Lemma 4.8 scheme) on the scaled
    template [J_{Y=0}] of [J_{µ,k}].  Point keys: [mu] (≥ 3), [k]
    (≥ 4), optional [z_eff] (default 1, must be in [1..z(µ,k)]).
    [None] outside the class — and also when the exact instance order
    [2^{z_eff}·(4(|H|−1)+1)] exceeds [max_order], because the chain
    doubles per [z_eff]; that skip is never silent: it bumps the
    [jclass_skipped_max_order] counter of [metrics] (a
    {e sweep-level} registry, distinct from the per-job registries
    {!run} creates). *)

val gclass_async_job : point -> job option
(** The {!gclass_job} instance driven through the α-synchronizer
    ({!Shades_election.Scheme.run_async}) instead of the synchronous
    engine: family ["g-async"], extra point key [seed] (default 0)
    feeding the engine's delay PRNG.  Outputs, rounds and verification
    must match the synchronous run (the scheme is timing-oblivious);
    what this family pins down in blessed baselines is the seeded
    schedule itself — delay draws, [Sync_marker]s and message
    interleaving as a function of [(point, seed)]. *)

val gclass_jobs : ?strategy:strategy -> point list -> job list
val gclass_async_jobs : point list -> job list
val uclass_jobs : ?strategy:strategy -> point list -> job list
(** Valid jobs for every point of a grid, in grid order (invalid
    points are dropped). *)

val jclass_jobs :
  ?strategy:strategy -> ?max_order:int -> metrics:Metrics.t -> point list ->
  job list
(** {!jclass_job} over a grid; over-budget skips are tallied in
    [metrics] as for {!jclass_job}. *)

val tiny_points : point list
(** The smallest honest grid (Selection on G, ∆ ∈ 3..4, k = 1, i = 2)
    — the smoke grid behind [sweep --tiny], the [make check] regression
    gate, and the committed [BENCH_tiny/] baseline. *)

val tiny_async_points : point list
(** The async rider on the tiny grid: the ∆ = 3 point with [seed = 0],
    run as a ["g-async"] job so both gates also pin the seeded
    α-synchronizer schedule. *)

val tiny_jclass_points : point list
(** The CPPE rider on the tiny grid: the smallest legal J-class corner
    (μ = 3, k = 4) at [z_eff = 1] (402 nodes), so the gates pin all
    four shades rather than Selection alone. *)

val tiny_jobs : ?strategy:strategy -> unit -> job list
(** The G-class grid, the async rider, and the J-class rider, in that
    order — exactly what [sweep --tiny], [make check] and the committed
    [BENCH_tiny/] baseline run.  [strategy] applies to the synchronous
    jobs; the async rider always runs sequentially. *)

val schedule_order : job list -> int list
(** The pickup order {!run} hands jobs to the pool: indexes into the
    job list, largest projected [cost] first, ties by list position
    (the longest-processing-time heuristic).  Exposed so [sweep
    --dry-run] can print exactly the schedule a real run would use. *)

val run : ?domains:int -> job list -> Store.record list
(** Execute the jobs on a {!Pool} ([domains] as in {!Pool.map}) and
    return one record per job, in job-list order.  Jobs are handed to
    the pool largest-[cost]-first (longest-processing-time heuristic)
    so a big instance never trails as the last pickup; the returned
    order and every record are unchanged by the scheduling.  Each job
    gets a fresh {!Metrics} registry; its snapshot, the measured
    rounds/messages/advice bits, [graph_order] and [verified] counters,
    and the job wall-time land in the record.  Records are identical
    across domain counts except for timing fields
    ({!Store.strip_timing}). *)

val label_of_job : job -> string
(** Human-readable job identity, e.g. ["g,delta=3,k=1,i=2"] — the
    family followed by the point's parameters in axis order.  Stored as
    each captured trace's [label]. *)

val key_of_job : job -> string
(** {!label_of_job} passed through
    {!Shades_trace.Baseline.key_of_label}: the stable key under which
    the job's blessed baseline trace is filed.  [trace bless], [trace
    gate] and {!run_traced}'s [~baseline] mode all derive keys through
    this one function, so they agree across processes and PRs. *)

val run_traced :
  ?domains:int ->
  ?capacity:int ->
  ?baseline:string ->
  job list ->
  (Store.record * Shades_trace.Trace.t) list
  * (Shades_trace.Baseline.report, string) result option
(** Like {!run}, but each job additionally records its event stream
    through a {!Shades_trace.Trace.recorder} of [capacity] (default
    {!Shades_trace.Trace.default_capacity}) and returns the captured
    trace next to its record.  Tracing is metrics-neutral: the records
    are byte-identical to {!run}'s (timing aside), so the regression
    gate can trace its runs without forking the baseline.

    @param baseline compare mode: a blessed-trace store directory (see
    {!Shades_trace.Baseline}).  When given, every captured trace is
    gated against it under the job's {!key_of_job} and the second
    component carries the outcome: [Some (Ok report)] with the per-job
    verdicts (first divergent [(round, vertex, event)] for each
    drifted job), or [Some (Error _)] when the baseline manifest
    itself is unreadable.  Without [~baseline] it is [None]. *)
