(** Grid sweeps: compose the paper's graph families with their election
    schemes into job lists for {!Pool}, producing {!Store} records.

    A sweep point is a named integer assignment (e.g.
    [delta=4 k=1 i=2]); {!range} and {!cross} build grids of points;
    the [*_jobs] builders turn points into runnable jobs — each job
    builds its family instance, runs the minimum-time scheme through
    the LOCAL simulator (with {!Metrics} telemetry fed by the engine's
    [on_round] hook), and verifies the outputs with the referee-grade
    checker.  {!run} fans the jobs across domains and returns records
    in grid order, independent of the domain count. *)

type point = (string * int) list
(** One sweep point: parameter name → value, in axis order. *)

type axis

val axis : string -> int list -> axis
(** An explicit list of values. *)

val range : ?step:int -> string -> lo:int -> hi:int -> axis
(** Inclusive integer range, [step] (default 1) must be positive. *)

val cross : axis list -> point list
(** Cartesian product, row-major: the last axis varies fastest.  The
    result order is the record order of {!run}. *)

type outcome = {
  rounds : int;
  messages : int;  (** from the engine's [on_round] telemetry *)
  advice_bits : int;
  graph_order : int;
  verified : bool;  (** the task verifier accepted the outputs *)
}

type job = {
  family : string;  (** "g" or "u" — recorded as the [family] param *)
  params : point;
  exec : Metrics.t -> outcome;
}

val gclass_job : point -> job option
(** Selection (Theorem 2.2 scheme) on [G_i] of [G_{∆,k}].  Point keys:
    [delta] (≥ 3), [k] (≥ 1), optional [i] (default 2 — the smallest
    index with all lemma guarantees).  [None] if the point is outside
    the class (e.g. [i] exceeds the class size). *)

val uclass_job : point -> job option
(** Port Election (Lemma 3.9 scheme) on [G_σ] of [U_{∆,k}] with
    uniform σ.  Point keys: [delta] (≥ 4), [k] (≥ 1), optional [sigma]
    (default 1, must be in [1..∆−1]).  [None] outside the class, and
    also for instances with more than 50 000 trees (|U| grows doubly
    exponentially; those graphs cannot be built in memory). *)

val gclass_jobs : point list -> job list
val uclass_jobs : point list -> job list
(** Valid jobs for every point of a grid, in grid order (invalid
    points are dropped). *)

val tiny_points : point list
(** The smallest honest grid (Selection on G, ∆ ∈ 3..4, k = 1, i = 2)
    — the smoke grid behind [sweep --tiny], the [make check] regression
    gate, and the committed [BENCH_tiny/] baseline. *)

val tiny_jobs : unit -> job list
(** [gclass_jobs tiny_points]. *)

val run : ?domains:int -> job list -> Store.record list
(** Execute the jobs on a {!Pool} ([domains] as in {!Pool.map}) and
    return one record per job, in job-list order.  Each job gets a
    fresh {!Metrics} registry; its snapshot, the measured
    rounds/messages/advice bits, [graph_order] and [verified] counters,
    and the job wall-time land in the record.  Records are identical
    across domain counts except for timing fields
    ({!Store.strip_timing}). *)
