(** Schema-versioned results store for sweep runs.

    One {!record} per sweep point: the point's parameters, the measured
    rounds / messages / advice bits, the wall-clock time, and a
    {!Metrics} snapshot.  A store serializes to JSON (hand-rolled codec
    — no external dependency) with an explicit [schema] field; decoding
    a file whose version differs from {!schema_version} fails, so a
    record layout change can never be misread silently — bump the
    version instead.

    Timing fields ([wall_ns] and [Metrics.Timing] entries) are the only
    nondeterministic content; {!strip_timing} removes them, after which
    two encodings of the same sweep are byte-identical regardless of
    the domain count that produced them. *)

module Json = Shades_json.Json
(** The shared JSON substrate ({!Shades_json.Json}), re-exported under
    its historical path — every store, manifest and report codec in the
    repository speaks this one dialect. *)

val schema_version : int
(** Current record-layout version (bump on any layout change). *)

type record = {
  params : (string * Json.t) list;  (** the sweep point, e.g. delta/k *)
  rounds : int;
  messages : int;
  advice_bits : int;
  wall_ns : int;  (** wall-clock for the point; 0 after strip_timing *)
  metrics : (string * Metrics.value) list;  (** name-sorted snapshot *)
}

type t = { version : int; label : string; records : record list }

val make : ?label:string -> record list -> t
(** A store at {!schema_version}. *)

val metric : record -> string -> Metrics.value option

val json_of_metric : Metrics.value -> Json.t
(** One instrument as a tagged JSON object ([{"kind": "counter", ...}]
    etc.) — the encoding records use, shared with the daemon's [stats]
    endpoint so metric snapshots render identically everywhere. *)

val encode : t -> string
(** Render to JSON text (one record per line, stable layout). *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; rejects any [version <> schema_version] and
    any malformed record. *)

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

val strip_timing : t -> t
(** Zero every [wall_ns] and drop every [Metrics.Timing] entry — the
    canonical form for cross-run and cross-domain-count comparison. *)

type change =
  | Added of record  (** point present in current only *)
  | Removed of record  (** point present in baseline only *)
  | Changed of record * string list
      (** same point, different non-timing measurements; the strings
          name the drifted fields ("rounds 1 -> 2") *)

val is_changed : change -> bool
(** [true] exactly for {!Changed} — a measured value drifted, as
    opposed to a grid-shape difference. *)

val pp_change : change -> string
(** One human-readable line ("added …" / "removed …" / "changed …"). *)

val diff_changes : baseline:t -> current:t -> change list
(** Every sweep point whose non-timing measurements differ between two
    stores (records are matched by [params]); includes points present
    on one side only.  Empty means the runs agree. *)

val diff : baseline:t -> current:t -> string list
(** [diff_changes] rendered through {!pp_change}. *)

module Sharded : sig
  (** Sharded on-disk layout: one shard file per parameter slice plus a
      [manifest.json] naming each shard, its slice key, and a content
      digest.  Grids beyond ~10^4 points can replace one slice without
      rewriting the rest, and {!diff} streams shard-by-shard — a shard
      whose digest matches the baseline manifest is skipped without
      decoding.

      Digests are MD5 over the canonical ({!strip_timing}) encoding, so
      they are stable across domain counts and wall-clock noise; shard
      files themselves keep their timing fields.  Both the manifest and
      every shard file carry {!schema_version} and are rejected on
      mismatch. *)

  type shard = {
    file : string;  (** file name inside the store directory *)
    slice : (string * Json.t) list;  (** the slice key, e.g. family+delta *)
    digest : string;  (** hex MD5 of the canonical shard encoding *)
    records : int;
  }

  type manifest = { version : int; label : string; shards : shard list }

  val manifest_file : string
  (** ["manifest.json"]. *)

  val default_slice : record -> (string * Json.t) list
  (** The [family] and [delta] params of the record (those present). *)

  val digest_of_store : t -> string
  (** Hex MD5 of [encode (strip_timing store)]. *)

  val shard : ?slice:(record -> (string * Json.t) list) -> t -> (shard * t) list
  (** Partition a store by [slice] (default {!default_slice}):
      shards in first-appearance order, records in store order within
      each shard, so a store whose records are grouped by slice — as
      sweep grid order is — reassembles identically. *)

  val save : ?slice:(record -> (string * Json.t) list) -> dir:string -> t -> manifest
  (** Write shard files and the manifest under [dir] (created if
      missing).  A shard whose digest the existing manifest already
      lists is left untouched on disk; shard files from a previous
      layout that no longer exist are removed. *)

  val load_manifest : dir:string -> (manifest, string) result

  val load_shard : dir:string -> shard -> (t, string) result
  (** Decode one shard file and verify its digest against the
      manifest entry. *)

  val load : dir:string -> (t, string) result
  (** Reassemble the full store, shards in manifest order. *)

  val diff :
    ?slice:(record -> (string * Json.t) list) ->
    baseline_dir:string ->
    t ->
    ((string * change) list, string) result
  (** Stream the given current store shard-by-shard against the baseline manifest:
      slices with matching digests are skipped without decoding the
      baseline shard; drifting slices are decoded and diffed, each
      {!change} tagged with the shard file it lives in. *)
end
