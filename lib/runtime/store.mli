(** Schema-versioned results store for sweep runs.

    One {!record} per sweep point: the point's parameters, the measured
    rounds / messages / advice bits, the wall-clock time, and a
    {!Metrics} snapshot.  A store serializes to JSON (hand-rolled codec
    — no external dependency) with an explicit [schema] field; decoding
    a file whose version differs from {!schema_version} fails, so a
    record layout change can never be misread silently — bump the
    version instead.

    Timing fields ([wall_ns] and [Metrics.Timing] entries) are the only
    nondeterministic content; {!strip_timing} removes them, after which
    two encodings of the same sweep are byte-identical regardless of
    the domain count that produced them. *)

module Json : sig
  (** Minimal JSON tree with a deterministic printer and a strict
      parser — exactly what the store format needs, nothing more. *)

  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list  (** member order is preserved *)

  val to_string : t -> string
  (** Compact rendering; object members keep their given order, so
      equal trees render byte-identically. *)

  val of_string : string -> (t, string) result
  (** Parse one JSON value ([Error] carries a position message).
      Numbers without [./e/E] decode as [Int], others as [Float]. *)

  val member : string -> t -> t option
  (** Object member lookup ([None] on absent key or non-object). *)
end

val schema_version : int
(** Current record-layout version (bump on any layout change). *)

type record = {
  params : (string * Json.t) list;  (** the sweep point, e.g. delta/k *)
  rounds : int;
  messages : int;
  advice_bits : int;
  wall_ns : int;  (** wall-clock for the point; 0 after strip_timing *)
  metrics : (string * Metrics.value) list;  (** name-sorted snapshot *)
}

type t = { version : int; label : string; records : record list }

val make : ?label:string -> record list -> t
(** A store at {!schema_version}. *)

val metric : record -> string -> Metrics.value option

val encode : t -> string
(** Render to JSON text (one record per line, stable layout). *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; rejects any [version <> schema_version] and
    any malformed record. *)

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

val strip_timing : t -> t
(** Zero every [wall_ns] and drop every [Metrics.Timing] entry — the
    canonical form for cross-run and cross-domain-count comparison. *)

val diff : baseline:t -> current:t -> string list
(** Human-readable lines describing every sweep point whose
    non-timing measurements changed between two stores (records are
    matched by [params]); includes points present on one side only.
    Empty means the runs agree. *)
