(** Domain-based worker pool with deterministic, input-ordered results.

    A fixed team of OCaml 5 domains drains a work queue (guarded by a
    [Mutex.t]/[Condition.t] pair); each job's result is written into a
    slot chosen by the job's input position, so the output order never
    depends on scheduling.  Two runs of [map f jobs] with any two domain
    counts return equal arrays whenever [f] is deterministic — the
    property the sweep determinism tests pin down. *)

val default_domains : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core to
    the coordinating domain. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ?domains f jobs] applies [f] to every element of [jobs] and
    returns the results in input order.

    [domains] defaults to {!default_domains}; values [<= 1] (or a
    single-element input) run sequentially in the calling domain — no
    domain is spawned, which doubles as the reference execution for
    determinism checks.  At most [Array.length jobs] domains are
    spawned.

    If one or more jobs raise, the exception of the smallest failing
    input index is re-raised after all workers have been joined (the
    others are discarded).  [f] must be safe to call from multiple
    domains at once. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists. *)

(** A persistent work crew: the queue discipline of {!map}, but the
    queue stays open until {!Crew.shutdown}, so work can arrive from
    outside (a daemon's accepted connections) rather than as one batch.
    Results, if any, are the tasks' own business — a task is just a
    thunk run once on some crew domain. *)
module Crew : sig
  type t

  val create : ?domains:int -> ?on_error:(exn -> unit) -> unit -> t
  (** Spawn a team of [domains] (default {!default_domains}, values
      [< 1] clamped to 1) worker domains parked on an empty queue.  A
      task that raises does not kill its worker: the exception is
      passed to [on_error] (default: ignored) and the worker returns to
      the queue. *)

  val size : t -> int
  (** Number of worker domains. *)

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue one task; some idle worker picks it up.
      @raise Invalid_argument after {!shutdown}. *)

  val shutdown : t -> unit
  (** Close the queue, let the workers drain it, and join them.
      Blocks until every already-submitted task has finished;
      idempotent. *)

  val run_all : t -> (unit -> unit) array -> unit
  (** [run_all crew thunks] submits every thunk and blocks until all of
      them have finished — a fork-join barrier on the crew (the
      per-round synchronisation point of the sharded LOCAL engine).
      Memory ordering: writes made by a thunk before it finishes are
      visible to the caller when [run_all] returns, and writes the
      caller made before [run_all] are visible to every thunk.

      If thunks raise, the exception of the {e smallest} thunk index is
      re-raised after all have finished (matching the order a
      sequential execution would have failed in); [on_error] is not
      consulted.  Concurrent [run_all] calls on one crew are safe —
      each caller waits for exactly its own thunks.
      @raise Invalid_argument after {!shutdown}. *)
end
