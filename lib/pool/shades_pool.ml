let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* The queue holds input indexes; results land in a slot per index, so
   completion order (which depends on scheduling) never leaks into the
   output.  Workers park on [nonempty] until the coordinator has pushed
   the jobs and flipped [closed]. *)
let map_parallel workers f inputs =
  let n = Array.length inputs in
  let queue = Queue.create () in
  let mutex = Mutex.create () in
  let nonempty = Condition.create () in
  let closed = ref false in
  let results = Array.make n None in
  let rec next_job () =
    if not (Queue.is_empty queue) then Some (Queue.pop queue)
    else if !closed then None
    else begin
      Condition.wait nonempty mutex;
      next_job ()
    end
  in
  let rec worker () =
    Mutex.lock mutex;
    let job = next_job () in
    Mutex.unlock mutex;
    match job with
    | None -> ()
    | Some i ->
        let r = match f inputs.(i) with v -> Ok v | exception e -> Error e in
        Mutex.lock mutex;
        results.(i) <- Some r;
        Mutex.unlock mutex;
        worker ()
  in
  let team = Array.init workers (fun _ -> Domain.spawn worker) in
  Mutex.lock mutex;
  for i = 0 to n - 1 do
    Queue.push i queue
  done;
  closed := true;
  Condition.broadcast nonempty;
  Mutex.unlock mutex;
  Array.iter Domain.join team;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false (* every index was queued and joined *))
    results

let map ?domains f inputs =
  let n = Array.length inputs in
  let domains =
    match domains with Some d -> max 1 d | None -> default_domains ()
  in
  (* the OCaml runtime supports at most ~128 live domains *)
  let workers = min (min domains n) 120 in
  if workers <= 1 then Array.map f inputs else map_parallel workers f inputs

let map_list ?domains f inputs =
  Array.to_list (map ?domains f (Array.of_list inputs))

(* A persistent work crew: the same queue discipline as [map_parallel],
   but the queue stays open until [shutdown] — the shape a long-lived
   daemon needs, where work arrives from outside (accepted connections)
   rather than as one batch. *)
module Crew = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable closed : bool;
    mutable team : unit Domain.t array;
    on_error : exn -> unit;
  }

  let worker t =
    let rec next_task () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.closed then None
      else begin
        Condition.wait t.nonempty t.mutex;
        next_task ()
      end
    in
    let rec loop () =
      Mutex.lock t.mutex;
      let task = next_task () in
      Mutex.unlock t.mutex;
      match task with
      | None -> ()
      | Some task ->
          (try task () with e -> t.on_error e);
          loop ()
    in
    loop ()

  let create ?domains ?(on_error = fun _ -> ()) () =
    let domains =
      match domains with Some d -> max 1 d | None -> default_domains ()
    in
    let t =
      {
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        closed = false;
        team = [||];
        on_error;
      }
    in
    (* at most ~128 live domains, as in [map] *)
    t.team <- Array.init (min domains 120) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let size t = Array.length t.team

  let submit t task =
    Mutex.lock t.mutex;
    let accepted = not t.closed in
    if accepted then begin
      Queue.push task t.queue;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.mutex;
    if not accepted then invalid_arg "Pool.Crew.submit: crew is shut down"

  let shutdown t =
    Mutex.lock t.mutex;
    let already = t.closed in
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    if not already then Array.iter Domain.join t.team

  (* Fork-join barrier: every call owns its own latch, so concurrent
     [run_all]s on one crew never interfere — each caller blocks until
     exactly its own thunks have finished.  The latch mutex also
     carries the memory ordering: writes a thunk made before its
     [decr] are visible to the coordinator after the final wait, and
     writes the coordinator made before [submit] are visible to the
     thunks (the crew queue is mutex-guarded). *)
  let run_all t thunks =
    let n = Array.length thunks in
    if n > 0 then begin
      let mutex = Mutex.create () in
      let all_done = Condition.create () in
      let remaining = ref n in
      let failures = Array.make n None in
      Array.iteri
        (fun i thunk ->
          submit t (fun () ->
              (try thunk () with e -> failures.(i) <- Some e);
              Mutex.lock mutex;
              decr remaining;
              if !remaining = 0 then Condition.signal all_done;
              Mutex.unlock mutex))
        thunks;
      Mutex.lock mutex;
      while !remaining > 0 do
        Condition.wait all_done mutex
      done;
      Mutex.unlock mutex;
      (* deterministic choice among failures: the smallest index wins,
         matching the sequential execution order of the thunks *)
      Array.iter (function Some e -> raise e | None -> ()) failures
    end
end
