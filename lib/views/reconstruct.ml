module Port_graph = Shades_graph.Port_graph

let rounds_needed ~n = 2 * (n - 1)

(* Vertices are identified with the ids of their depth-(n−1) truncated
   views; every vertex occurs within depth n−1 of the root, and every
   edge has an endpoint at depth <= n−2 (two vertices at distance
   exactly n−1 from the root would leave some intermediate BFS level
   empty), so a level-by-level sweep down to depth n−2 sees every edge
   with full signatures on both sides. *)
let graph_of_cview ctx view ~n =
  if n < 1 then invalid_arg "Reconstruct: n < 1";
  if n = 1 then (Port_graph.of_edges 1 [], 0)
  else begin
    let d = n - 1 in
    if view.Cview.height < rounds_needed ~n then
      invalid_arg "Reconstruct: view too shallow for claimed n";
    let sig_of node = (Cview.truncate ctx node ~depth:d).Cview.id in
    let dense = Hashtbl.create 32 in
    let fresh = ref 0 in
    let vertex_of node =
      let s = sig_of node in
      match Hashtbl.find_opt dense s with
      | Some v -> v
      | None ->
          let v = !fresh in
          incr fresh;
          Hashtbl.add dense s v;
          v
    in
    let port_map = Hashtbl.create 64 in
    let filled = ref 0 in
    let expected = ref 0 in
    let record (v, p) (u, q) =
      match Hashtbl.find_opt port_map (v, p) with
      | Some (u', q') ->
          if u' <> u || q' <> q then
            invalid_arg
              "Reconstruct: inconsistent edges (wrong n or infeasible graph)"
      | None ->
          Hashtbl.add port_map (v, p) (u, q);
          incr filled
    in
    let vertex_of node =
      let before = !fresh in
      let v = vertex_of node in
      if !fresh > before then expected := !expected + node.Cview.degree;
      v
    in
    let root_vertex = vertex_of view in
    (* Level-by-level sweep, deduplicating shared DAG nodes per level.
       Depths 0..d−1 always suffice: two adjacent vertices both at
       distance exactly d = n−1 from the root would leave an
       intermediate BFS level empty; a node at depth d−1 has subtree
       height d+1, so its children's depth-d signatures are still
       available.  In practice everything is complete after roughly the
       diameter, so stop as soon as all n vertices and all their ports
       (counted in both directions) have been seen. *)
    let level = ref [ view ] in
    let depth = ref 0 in
    let complete () = !fresh = n && !filled = !expected in
    while !depth <= d - 1 && not (complete ()) do
      let next = Hashtbl.create 32 in
      List.iter
        (fun (node : Cview.t) ->
          let v = vertex_of node in
          Array.iteri
            (fun p (q, child) ->
              let u = vertex_of child in
              record (v, p) (u, q);
              record (u, q) (v, p);
              if not (Hashtbl.mem next child.Cview.id) then
                Hashtbl.add next child.Cview.id child)
            node.Cview.children)
        !level;
      (* canonical order: vertex numbering follows cview ids, not the
         table's unspecified hash order *)
      level :=
        List.sort
          (fun (a : Cview.t) (b : Cview.t) -> Int.compare a.Cview.id b.Cview.id)
          (Hashtbl.fold (fun _ node acc -> node :: acc) next []);
      incr depth
    done;
    if !fresh <> n then
      invalid_arg
        (Printf.sprintf
           "Reconstruct: found %d distinct vertices, expected %d" !fresh n);
    let edges =
      List.sort compare
        (Hashtbl.fold
           (fun (v, p) (u, q) acc ->
             if (v, p) < (u, q) then ((v, p), (u, q)) :: acc else acc)
           port_map [])
    in
    (Port_graph.of_edges n edges, root_vertex)
  end

let graph_of_view tree ~n =
  let ctx = Cview.create_ctx () in
  fst (graph_of_cview ctx (Cview.of_tree ctx tree) ~n)
