module View_tree = Shades_views.View_tree

type state = {
  target : int; (* rounds of view exchange still to perform *)
  view : View_tree.t; (* B^r after r executed rounds *)
}

(* Messages carry the sending port: the receiver on its port [p] needs
   the far-end port [q] of that edge to extend its view, and the engine
   only reports arrival ports. *)
type msg = { from_port : int; view : View_tree.t }

(* One round: send (my port, B^r) on every port; B^{r+1} is rebuilt from
   my degree and the received (far port, neighbour's B^r) pairs. *)
let algorithm ~rounds_of ~decide =
  {
    Engine.init =
      (fun ~degree ~advice ->
        {
          target = rounds_of ~advice ~degree;
          view = { View_tree.degree; children = [||] };
        });
    send =
      (fun st ~port ->
        if st.target = 0 then None
        else Some { from_port = port; view = st.view });
    step =
      (fun st inbox ->
        if st.target = 0 then st
        else begin
          let degree = st.view.View_tree.degree in
          assert (List.length inbox = degree);
          let children = Array.make degree (0, st.view) in
          List.iter
            (fun (p, m) -> children.(p) <- (m.from_port, m.view))
            inbox;
          { target = st.target - 1; view = { View_tree.degree; children } }
        end);
    output =
      (fun st -> if st.target = 0 then Some (decide st.view) else None);
  }

(* The traced size of a view-exchange message: the node count of the
   carried view — a pure function of the message, as replay requires. *)
let msg_size m = View_tree.node_count m.view

let run_adaptive ?max_rounds ?on_round ?tracer g ~advice ~rounds_of ~decide =
  let decided = ref None in
  let rounds_of ~advice ~degree =
    let r = rounds_of ~advice ~degree in
    (match !decided with
    | None -> decided := Some r
    | Some r' -> assert (r = r'));
    r
  in
  let result =
    Engine.run ?max_rounds ?on_round ?tracer ~msg_size g ~advice
      (algorithm ~rounds_of ~decide:(fun view -> decide ~advice view))
  in
  (result.Engine.outputs, result.Engine.rounds)

let run_adaptive_sharded ?domains ?on_round ?tracer g ~advice ~rounds_of
    ~decide =
  let decided = ref None in
  (* Safe under sharding: [rounds_of] is only called from [init], which
     Sharded_engine runs sequentially in the calling domain. *)
  let rounds_of ~advice ~degree =
    let r = rounds_of ~advice ~degree in
    (match !decided with
    | None -> decided := Some r
    | Some r' -> assert (r = r'));
    r
  in
  let result =
    Sharded_engine.run ?domains ?on_round ?tracer ~msg_size g ~advice
      (algorithm ~rounds_of ~decide:(fun view -> decide ~advice view))
  in
  (result.Engine.outputs, result.Engine.rounds)

let run_adaptive_async ?seed ?on_round ?tracer g ~advice ~rounds_of ~decide =
  let decided = ref None in
  let rounds_of ~advice ~degree =
    let r = rounds_of ~advice ~degree in
    (match !decided with
    | None -> decided := Some r
    | Some r' -> assert (r = r'));
    r
  in
  let result =
    Async_engine.run ?seed ?on_round ?tracer ~msg_size g ~advice
      (algorithm ~rounds_of ~decide:(fun view -> decide ~advice view))
  in
  (result.Engine.outputs, result.Engine.rounds)

let run_adaptive_plan ~delay ?on_round ?tracer g ~advice ~rounds_of ~decide =
  let decided = ref None in
  let rounds_of ~advice ~degree =
    let r = rounds_of ~advice ~degree in
    (match !decided with
    | None -> decided := Some r
    | Some r' -> assert (r = r'));
    r
  in
  let result, makespan =
    Async_engine.run_plan ~delay ?on_round ?tracer ~msg_size g ~advice
      (algorithm ~rounds_of ~decide:(fun view -> decide ~advice view))
  in
  (result.Engine.outputs, result.Engine.rounds, makespan)

let run_adaptive_with_faults ?max_rounds ?on_round ?tracer g ~advice
    ~rounds_of ~decide ~faults =
  let decided = ref None in
  let rounds_of ~advice ~degree =
    let r = rounds_of ~advice ~degree in
    (match !decided with
    | None -> decided := Some r
    | Some r' -> assert (r = r'));
    r
  in
  let result =
    Engine.run_with_faults ?max_rounds ?on_round ?tracer ~msg_size g ~advice
      ~faults
      (algorithm ~rounds_of ~decide:(fun view -> decide ~advice view))
  in
  (result.Engine.outputs, result.Engine.rounds)

let run g ~rounds ~advice ~decide =
  if rounds < 0 then invalid_arg "Full_info.run";
  let outputs, used =
    run_adaptive g ~advice ~rounds_of:(fun ~advice:_ ~degree:_ -> rounds)
      ~decide
  in
  assert (used = rounds);
  outputs
