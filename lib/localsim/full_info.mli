(** The full-information protocol on top of {!Engine}.

    In the LOCAL model with unbounded messages, the optimal strategy is
    for every node to forward everything it knows each round; after [r]
    rounds a node's knowledge is exactly its augmented truncated view
    [B^r] (paper, Section 1).  This module implements that protocol
    honestly — nodes exchange view trees over the simulated network —
    so every minimum-time algorithm can be phrased as
    "gather [B^r], then decide". *)

(** [run g ~rounds ~advice ~decide] executes the view-exchange protocol
    for exactly [rounds] rounds at every node and applies
    [decide ~advice view] to each node's [B^rounds].  Returns the
    decisions (vertex-indexed) — the engine guarantees [rounds] rounds
    were used (0 allowed). *)
val run :
  Shades_graph.Port_graph.t ->
  rounds:int ->
  advice:Shades_bits.Bitstring.t ->
  decide:(advice:Shades_bits.Bitstring.t -> Shades_views.View_tree.t -> 'o) ->
  'o array

(** Like {!run} but the number of rounds is computed per-node from the
    advice and the node's degree before communication starts (all paper
    algorithms derive a common round count from the advice, so the
    values coincide across nodes; this is asserted). Returns decisions
    and the common round count.  [on_round] and [tracer] are forwarded
    to {!Engine.run} — per-round telemetry and event tracing for the
    sweep runtime; traced message sizes are view-tree node counts.
    [max_rounds] is forwarded to {!Engine.run} — corruption campaigns
    cap it near the reference round count so a corrupted advice string
    demanding an absurd view depth aborts cheaply with
    {!Engine.Did_not_terminate} instead of exchanging exponentially
    growing views. *)
val run_adaptive :
  ?max_rounds:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  rounds_of:(advice:Shades_bits.Bitstring.t -> degree:int -> int) ->
  decide:(advice:Shades_bits.Bitstring.t -> Shades_views.View_tree.t -> 'o) ->
  'o array * int

(** {!run_adaptive} under a crash-stop fault plan
    ({!Engine.run_with_faults}); crashed nodes have [None] outputs.
    Honest caveat: the view-exchange protocol {e assumes} a message on
    every port each round (the paper's algorithms are not
    fault-tolerant), so a live neighbour of a crashed node raises
    [Assert_failure] at its first post-crash step — callers classify
    that abort rather than hide it ({!Shades_adversary.Fault}). *)
val run_adaptive_with_faults :
  ?max_rounds:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  rounds_of:(advice:Shades_bits.Bitstring.t -> degree:int -> int) ->
  decide:(advice:Shades_bits.Bitstring.t -> Shades_views.View_tree.t -> 'o) ->
  faults:Engine.crash list ->
  'o option array * int

(** Like {!run_adaptive} but executed through {!Sharded_engine}:
    vertices are partitioned across [domains] worker domains (default
    {!Sharded_engine.default_domains}).  Outputs, round count, per-round
    telemetry, and the trace stream are identical to {!run_adaptive} for
    every domain count — sharding is an execution strategy, not a model
    change.  [decide] runs on worker domains and must tolerate
    concurrent calls on distinct views (all decision procedures in this
    repository only read immutable oracle-built tables). *)
val run_adaptive_sharded :
  ?domains:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  rounds_of:(advice:Shades_bits.Bitstring.t -> degree:int -> int) ->
  decide:(advice:Shades_bits.Bitstring.t -> Shades_views.View_tree.t -> 'o) ->
  'o array * int

(** Like {!run_adaptive} but executed through {!Async_engine}: messages
    suffer (seeded) adversarial delays and the α-synchronizer recovers
    round structure from time-stamps.  Outputs and the reported round
    count coincide with the synchronous run. *)
val run_adaptive_async :
  ?seed:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  rounds_of:(advice:Shades_bits.Bitstring.t -> degree:int -> int) ->
  decide:(advice:Shades_bits.Bitstring.t -> Shades_views.View_tree.t -> 'o) ->
  'o array * int

(** Like {!run_adaptive_async} but with an explicit delay plan
    ({!Async_engine.run_plan}); additionally returns the makespan —
    the quantity {!Shades_adversary.Schedule} searches over.  Outputs
    and round count remain plan-invariant. *)
val run_adaptive_plan :
  delay:(round:int -> v:int -> port:int -> float) ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  rounds_of:(advice:Shades_bits.Bitstring.t -> degree:int -> int) ->
  decide:(advice:Shades_bits.Bitstring.t -> Shades_views.View_tree.t -> 'o) ->
  'o array * int * float
