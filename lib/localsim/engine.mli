(** Synchronous message-passing engine for the LOCAL model.

    All nodes start simultaneously and proceed in synchronous rounds.  In
    each round every node may send one (arbitrary) message per port; all
    messages are delivered before the next round.  Nodes are anonymous:
    an algorithm sees only its degree, the common advice string, its
    ports, and the arrival ports of incoming messages — never a vertex
    index. *)

type ('state, 'msg, 'output) algorithm = {
  init : degree:int -> advice:Shades_bits.Bitstring.t -> 'state;
      (** Initial state; a node initially knows only its own degree and
          the advice (the same string at every node). *)
  send : 'state -> port:int -> 'msg option;
      (** Message to emit on [port] this round, if any. *)
  step : 'state -> (int * 'msg) list -> 'state;
      (** Advance one round. The inbox lists [(p, m)] for each message
          [m] that arrived on the node's own port [p], in increasing
          port order. *)
  output : 'state -> 'output option;
      (** [Some o] once the node has decided; polled after [init]
          (round 0) and after every [step].  A decided node has halted:
          from the next round on it sends nothing, its [step] is never
          called again (its state is frozen), and messages addressed to
          it are discarded.  In particular a node decided at round 0
          never communicates at all — the same short-circuit whether
          some or all nodes decide at initialization. *)
}

type 'output result = {
  outputs : 'output array;  (** indexed by vertex (oracle-side view) *)
  rounds : int;  (** rounds executed until every node had decided *)
  messages : int;
      (** total messages sent (one per port per round where [send]
          returned [Some]) — the classical message-complexity measure *)
}

exception Did_not_terminate of int
(** Raised by {!run} when some node is still undecided after the round
    bound. *)

(** [run g ~advice alg] executes [alg] at every node of [g] with the
    same [advice].  Terminates at the first round where all nodes have
    an output.  [max_rounds] bounds the number of rounds executed and
    defaults to [4 * order g + 16] — linear in the order with slack, a
    budget no minimum-time scheme in this repository approaches.

    [on_round] is a telemetry hook: it is invoked once per executed
    round, after delivery, with the (1-based) round number and the
    cumulative message count — the feed for [Shades_runtime.Metrics]
    counters without touching the result type.

    [tracer] receives one {!Shades_trace.Event.t} per observable action,
    in a deterministic order: per node [Advice_read] (then [Decide] +
    [Halt] for round-0 deciders), then per round [Round_start], every
    [Send] (vertex- then port-ascending), and per undecided node its
    [Deliver]s in arrival-port order followed by [Decide]/[Halt] when
    its output appears.  Re-running the same algorithm on the same
    graph and advice reproduces the stream exactly — the contract
    {!Shades_trace.Replay} checks.  [msg_size] measures messages for
    the [Send]/[Deliver] events' [size] field (default [fun _ -> 0];
    it must be a pure function of the message for traces to replay). *)
val run :
  ?max_rounds:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  ?msg_size:('msg -> int) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  ('state, 'msg, 'output) algorithm ->
  'output result
