(** Synchronous message-passing engine for the LOCAL model.

    All nodes start simultaneously and proceed in synchronous rounds.  In
    each round every node may send one (arbitrary) message per port; all
    messages are delivered before the next round.  Nodes are anonymous:
    an algorithm sees only its degree, the common advice string, its
    ports, and the arrival ports of incoming messages — never a vertex
    index. *)

type ('state, 'msg, 'output) algorithm = {
  init : degree:int -> advice:Shades_bits.Bitstring.t -> 'state;
      (** Initial state; a node initially knows only its own degree and
          the advice (the same string at every node). *)
  send : 'state -> port:int -> 'msg option;
      (** Message to emit on [port] this round, if any. *)
  step : 'state -> (int * 'msg) list -> 'state;
      (** Advance one round. The inbox lists [(p, m)] for each message
          [m] that arrived on the node's own port [p], in increasing
          port order. *)
  output : 'state -> 'output option;
      (** [Some o] once the node has decided; polled after [init]
          (round 0) and after every [step].  A decided node has halted:
          from the next round on it sends nothing, its [step] is never
          called again (its state is frozen), and messages addressed to
          it are discarded.  In particular a node decided at round 0
          never communicates at all — the same short-circuit whether
          some or all nodes decide at initialization. *)
}

type 'output result = {
  outputs : 'output array;  (** indexed by vertex (oracle-side view) *)
  rounds : int;  (** rounds executed until every node had decided *)
  messages : int;
      (** total messages sent (one per port per round where [send]
          returned [Some]) — the classical message-complexity measure *)
}

type crash = { victim : int; at_round : int }
(** One crash-stop fault: [victim] halts at the start of round
    [at_round] — from that round on it sends nothing, its [step] is
    never called, it never decides, and messages addressed to it are
    discarded; peers observe only silence (they are never told).
    [at_round <= 0] means the node is dead from initialization: it
    never sends and its init-time decision, if any, is void —
    equivalent, for every other node, to deleting the victim's outgoing
    messages entirely. *)

type 'output faulty = {
  outputs : 'output option array;
      (** per-vertex decisions; [None] for crashed (or undecided at the
          bound — impossible on normal return) nodes *)
  rounds : int;  (** rounds executed until every live node had decided *)
  messages : int;
}
(** Result of a faulty run: crashed nodes have no output, so the array
    is option-valued — the fault-free {!result} stays total. *)

exception Did_not_terminate of int
(** Raised by {!run} when some node — some {e live} node, under a fault
    plan — is still undecided after the round bound. *)

val crash_schedule : n:int -> crash list -> int array
(** The normalized per-vertex crash round ([max_int] = never): duplicate
    victims collapse to their earliest crash, negative rounds clamp
    to 0.  Exposed for engine implementations and tests; {!run_with_faults}
    applies it internally.
    @raise Invalid_argument on a victim outside [0 .. n-1]. *)

(** [run g ~advice alg] executes [alg] at every node of [g] with the
    same [advice].  Terminates at the first round where all nodes have
    an output.  [max_rounds] bounds the number of rounds executed and
    defaults to [4 * order g + 16] — linear in the order with slack, a
    budget no minimum-time scheme in this repository approaches.

    [on_round] is a telemetry hook: it is invoked once per executed
    round, after delivery, with the (1-based) round number and the
    cumulative message count — the feed for [Shades_runtime.Metrics]
    counters without touching the result type.

    [tracer] receives one {!Shades_trace.Event.t} per observable action,
    in a deterministic order: per node [Advice_read] (then [Decide] +
    [Halt] for round-0 deciders), then per round [Round_start], every
    [Send] (vertex- then port-ascending), and per undecided node its
    [Deliver]s in arrival-port order followed by [Decide]/[Halt] when
    its output appears.  Re-running the same algorithm on the same
    graph and advice reproduces the stream exactly — the contract
    {!Shades_trace.Replay} checks.  [msg_size] measures messages for
    the [Send]/[Deliver] events' [size] field (default [fun _ -> 0];
    it must be a pure function of the message for traces to replay). *)
val run :
  ?max_rounds:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  ?msg_size:('msg -> int) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  ('state, 'msg, 'output) algorithm ->
  'output result

(** [run_with_faults g ~advice ~faults alg] is {!run} under a
    crash-stop fault plan.  Semantics per {!crash}: at the start of
    round [at_round] the victim goes permanently silent.  Termination:
    the run ends at the first round where every {e live} node has
    decided (crashed nodes can never decide and do not block
    termination); {!Did_not_terminate} is raised only when live nodes
    remain undecided at [max_rounds].

    Tracing: each effective crash is recorded as [Event.Crash] — for
    [at_round >= 1], directly after that round's [Round_start] (before
    any [Send]), victims in vertex order; for [at_round <= 0], after
    the [Advice_read] block and before any round-0 [Decide].  A crash
    scheduled for a node that already decided (halted) earlier is a
    no-op and is not recorded.  With [faults = []] the event stream,
    outputs, rounds and messages are exactly {!run}'s.

    {!Sharded_engine.run_with_faults} produces a byte-identical event
    stream for the same plan at every domain count — the determinism
    contract extends to faulty runs unchanged. *)
val run_with_faults :
  ?max_rounds:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  ?msg_size:('msg -> int) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  faults:crash list ->
  ('state, 'msg, 'output) algorithm ->
  'output faulty
