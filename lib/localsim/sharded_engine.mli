(** Vertex-sharded parallel engine for the LOCAL model.

    Executes the same synchronous semantics as {!Engine.run}, but
    partitions the vertices into contiguous shards assigned to a fixed
    crew of domains ({!Shades_pool.Crew}).  Each round is a fork-join
    pipeline: every shard computes its nodes' sends into per-destination
    outboxes, a barrier, every shard drains the outboxes addressed to it
    and steps its nodes, a barrier.  Because message delivery in the
    LOCAL model is synchronous anyway — all round-[r] messages arrive
    before any round-[r+1] computation — the sharded execution is
    {e exact}, not approximate: outputs, round count, and message count
    are identical to the sequential engine for every algorithm, graph,
    advice string, and domain count.

    The [tracer] stream is also byte-identical: each shard buffers its
    events and the coordinator flushes the buffers in shard order after
    each phase, which — shards being contiguous ascending vertex ranges
    — reproduces the sequential engine's canonical vertex-ascending
    order exactly.  Trace baselines blessed against {!Engine.run}
    therefore gate sharded runs unchanged.

    [init] (and the round-0 [output] probes) run sequentially in the
    calling domain, so algorithm constructors may close over non-
    domain-safe setup state; [send]/[step]/[output] during rounds run on
    worker domains and must be safe for {e disjoint-vertex} parallelism
    (pure functions of the node's own state, plus reads of shared
    immutable data — true of every algorithm in this repository). *)

(** Default domain count, [Shades_pool.default_domains ()]. *)
val default_domains : unit -> int

(** [run ?domains g ~advice alg] — same contract, arguments, result,
    and {!Engine.Did_not_terminate} behaviour as {!Engine.run}, executed
    on [min domains (order g)] worker domains ([domains] defaults to
    {!default_domains}; [1] is a valid choice and still exercises the
    sharded code path).  [on_round] and [tracer] are invoked only from
    the calling domain, between barriers. *)
val run :
  ?max_rounds:int ->
  ?domains:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  ?msg_size:('msg -> int) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  ('state, 'msg, 'output) Engine.algorithm ->
  'output Engine.result

(** [run_with_faults ?domains g ~advice ~faults alg] — same crash-stop
    semantics, tracing positions, and termination rule as
    {!Engine.run_with_faults}, executed sharded.  Crash events are
    emitted by the coordinator (directly after [Round_start], before
    the send barrier; round-0 crashes in the init block), so the event
    stream is byte-identical to the sequential engine's at every domain
    count — the exactness contract extends to faulty runs unchanged. *)
val run_with_faults :
  ?max_rounds:int ->
  ?domains:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  ?msg_size:('msg -> int) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  faults:Engine.crash list ->
  ('state, 'msg, 'output) Engine.algorithm ->
  'output Engine.faulty
