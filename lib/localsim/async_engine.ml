module Port_graph = Shades_graph.Port_graph
module Event = Shades_trace.Event

(* A wire message: the sender's round plus the payload the algorithm
   chose to send.  A [None] payload still travels — it is the
   end-of-round marker the synchronizer needs on every port.  The
   payload carries the receiver's port so delivery needs no lookup. *)
type 'msg wire = { round : int; payload : (int * 'msg) option }

let run_internal ?max_rounds ~delay ?on_round ?tracer
    ?(msg_size = fun _ -> 0) g ~advice alg =
  let n = Port_graph.order g in
  let max_rounds =
    match max_rounds with Some m -> m | None -> (4 * n) + 16
  in
  let emit = match tracer with Some f -> f | None -> fun _ -> () in
  (* Delivery queue ordered by (time, sequence); the sequence number
     makes simultaneous deliveries deterministic. *)
  let module M = Map.Make (struct
    type t = float * int

    let compare = compare
  end) in
  let queue = ref M.empty in
  let seq = ref 0 in
  let clock = ref 0.0 in
  let push_event ~round ~v ~port dest wire_msg =
    (* Non-positive plan delays are clamped: virtual time must advance
       for the (time, seq) queue order to stay causal. *)
    let d = Float.max 1e-6 (delay ~round ~v ~port) in
    incr seq;
    queue := M.add (!clock +. d, !seq) (dest, wire_msg) !queue
  in
  let messages = ref 0 in
  let states =
    Array.init n (fun v ->
        alg.Engine.init ~degree:(Port_graph.degree g v) ~advice)
  in
  let outputs = Array.map alg.Engine.output states in
  (match tracer with
  | None -> ()
  | Some _ ->
      let bits = Shades_bits.Bitstring.length advice in
      for v = 0 to n - 1 do
        emit (Event.Advice_read { v; bits })
      done;
      for v = 0 to n - 1 do
        if Option.is_some outputs.(v) then begin
          emit (Event.Decide { v; round = 0 });
          emit (Event.Halt { v; round = 0 })
        end
      done);
  let rounds = Array.make n 0 in
  let decided_round =
    Array.map (fun o -> if Option.is_some o then Some 0 else None) outputs
  in
  (* inboxes.(v) buffers received wires per pending round. *)
  let inboxes : (int, 'a wire list) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 4)
  in
  (* A decided node has halted: it emits only the bare end-of-round
     markers its neighbours' synchronizers are waiting for — never a
     payload — mirroring the synchronous engine's short-circuit.
     Markers are traced as [Sync_marker], never [Send]: they are
     synchronizer scaffolding with no synchronous counterpart. *)
  let send_round v =
    let halted = Option.is_some outputs.(v) in
    for p = 0 to Port_graph.degree g v - 1 do
      let u, q = Port_graph.neighbor g v p in
      let round = rounds.(v) + 1 in
      let payload =
        if halted then None
        else
          match alg.Engine.send states.(v) ~port:p with
          | Some m ->
              incr messages;
              emit (Event.Send { round; v; port = p; size = msg_size m });
              Some (q, m)
          | None -> None
      in
      if payload = None then emit (Event.Sync_marker { round; v; port = p });
      push_event ~round ~v ~port:p u { round; payload }
    done
  in
  (* Telemetry: a synchronizer round counts as executed the first time
     an {e undecided} node steps it — exactly the rounds the synchronous
     engine executes.  Decided nodes keep completing marker-only rounds
     to feed their neighbours' synchronizers; those never fire the hook
     (and never emit [Round_start]), so the reported rounds are 1..R
     with R the synchronous round count, each reported once, in
     increasing order, with monotone cumulative message counts. *)
  let reported = ref 0 in
  let stepped_round r =
    if r > !reported then begin
      reported := r;
      emit (Event.Round_start { round = r });
      match on_round with
      | Some f -> f ~round:r ~messages:!messages
      | None -> ()
    end
  in
  let all_decided () = Array.for_all Option.is_some outputs in
  if not (all_decided ()) then
    for v = 0 to n - 1 do
      send_round v
    done;
  let stop = ref (all_decided ()) in
  while (not !stop) && not (M.is_empty !queue) do
    let ((t, _) as key), (v, wire) = M.min_binding !queue in
    queue := M.remove key !queue;
    clock := t;
    Hashtbl.replace inboxes.(v) wire.round
      (wire
      :: Option.value ~default:[] (Hashtbl.find_opt inboxes.(v) wire.round));
    (* Advance v while its next round is fully delivered. *)
    let progressing = ref true in
    while !progressing do
      let next = rounds.(v) + 1 in
      match Hashtbl.find_opt inboxes.(v) next with
      | Some wires when List.length wires = Port_graph.degree g v ->
          Hashtbl.remove inboxes.(v) next;
          if Option.is_none outputs.(v) then begin
            stepped_round next;
            let inbox =
              List.filter_map (fun w -> w.payload) wires
              |> List.sort (fun (p, _) (q, _) -> Int.compare p q)
            in
            (match tracer with
            | None -> ()
            | Some _ ->
                List.iter
                  (fun (p, m) ->
                    emit
                      (Event.Deliver
                         { round = next; v; port = p; size = msg_size m }))
                  inbox);
            states.(v) <- alg.Engine.step states.(v) inbox;
            outputs.(v) <- alg.Engine.output states.(v);
            if Option.is_some outputs.(v) && decided_round.(v) = None then begin
              decided_round.(v) <- Some next;
              emit (Event.Decide { v; round = next });
              emit (Event.Halt { v; round = next })
            end
          end;
          rounds.(v) <- next;
          if next > max_rounds || all_decided () then begin
            progressing := false;
            stop := true
          end
          else send_round v
      | _ -> progressing := false
    done
  done;
  if not (all_decided ()) then
    raise (Engine.Did_not_terminate (Array.fold_left max 0 rounds));
  ( ({
      Engine.outputs = Array.map Option.get outputs;
      (* The synchronous round count is the latest first-decision
         round. *)
      rounds =
        Array.fold_left
          (fun acc d -> max acc (Option.value ~default:0 d))
          0 decided_round;
      messages = !messages;
    } : _ Engine.result),
    (* Makespan: the virtual time of the last delivery processed — how
       long the adversary's delay assignment stretched the execution. *)
    !clock )

let run ?max_rounds ?(seed = 0) ?on_round ?tracer ?msg_size g ~advice alg =
  let rng = Random.State.make [| seed; 0x5eed |] in
  (* The draw happens once per pushed wire, in push order — exactly the
     pre-plan behaviour, so seeded runs (and their traces) are
     bit-identical to before the [delay] generalization. *)
  let delay ~round:_ ~v:_ ~port:_ = 0.01 +. Random.State.float rng 1.0 in
  fst (run_internal ?max_rounds ~delay ?on_round ?tracer ?msg_size g ~advice alg)

let run_plan ?max_rounds ~delay ?on_round ?tracer ?msg_size g ~advice alg =
  run_internal ?max_rounds ~delay ?on_round ?tracer ?msg_size g ~advice alg
