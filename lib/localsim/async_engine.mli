(** Asynchronous execution of LOCAL algorithms via time-stamps.

    The paper notes that "the synchronous process of the LOCAL model can
    be simulated in an asynchronous network using time-stamps"
    (Section 1).  This module realizes that remark: messages suffer
    arbitrary (adversarially random, seeded) delays, every node tags its
    traffic with its round number and additionally emits an explicit
    end-of-round marker on every port, and a node advances to round
    [r+1] only after collecting the round-[r] traffic of all its
    neighbours — the classical α-synchronizer.

    Running any {!Engine.algorithm} through this executor produces
    exactly the outputs of the synchronous {!Engine.run}; a property
    test enforces this for every delay schedule tried. *)

(** [run ?max_rounds ?seed g ~advice alg] executes [alg] asynchronously;
    message delays are drawn from a PRNG seeded with [seed] (default 0),
    so runs are reproducible.  The reported [rounds] is the number of
    synchronizer rounds executed — identical to the synchronous round
    count.

    [max_rounds] bounds the synchronizer rounds any node executes and
    defaults to [4 * order g + 16], the same budget as {!Engine.run}.

    Decided nodes halt exactly as in {!Engine.run}: they keep emitting
    the bare end-of-round markers the α-synchronizer requires of every
    port, but never a payload, and their state is frozen — so a node
    decided at round 0 never contributes a message, matching the
    synchronous short-circuit.

    [on_round] fires the first time each synchronizer round number is
    completed by some node (the advancing frontier), with the
    cumulative message count at that moment.
    @raise Engine.Did_not_terminate like {!Engine.run}. *)
val run :
  ?max_rounds:int ->
  ?seed:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  ('state, 'msg, 'output) Engine.algorithm ->
  'output Engine.result
