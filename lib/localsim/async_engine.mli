(** Asynchronous execution of LOCAL algorithms via time-stamps.

    The paper notes that "the synchronous process of the LOCAL model can
    be simulated in an asynchronous network using time-stamps"
    (Section 1).  This module realizes that remark: messages suffer
    arbitrary (adversarially random, seeded) delays, every node tags its
    traffic with its round number and additionally emits an explicit
    end-of-round marker on every port, and a node advances to round
    [r+1] only after collecting the round-[r] traffic of all its
    neighbours — the classical α-synchronizer.

    Running any {!Engine.algorithm} through this executor produces
    exactly the outputs of the synchronous {!Engine.run}; a property
    test enforces this for every delay schedule tried. *)

(** [run ?max_rounds ?seed g ~advice alg] executes [alg] asynchronously;
    message delays are drawn from a PRNG seeded with [seed] (default 0),
    so runs are reproducible.  The reported [rounds] is the number of
    synchronizer rounds executed — identical to the synchronous round
    count.

    [max_rounds] bounds the synchronizer rounds any node executes and
    defaults to [4 * order g + 16], the same budget as {!Engine.run}.

    Decided nodes halt exactly as in {!Engine.run}: they keep emitting
    the bare end-of-round markers the α-synchronizer requires of every
    port, but never a payload, and their state is frozen — so a node
    decided at round 0 never contributes a message, matching the
    synchronous short-circuit.

    [on_round] fires the first time each synchronizer round number is
    {e stepped} by an undecided node (the advancing frontier), with the
    cumulative message count at that moment.  Decided nodes also keep
    completing rounds — marker-only, to feed their neighbours'
    synchronizers — but those never fire the hook, so the reported
    round numbers are exactly the synchronous engine's 1..R (no
    overshoot), each reported once, strictly increasing, and the
    cumulative message counts are monotone.  (The counts at a given
    round differ from the synchronous engine's: delivery interleaving
    decides how many sends precede the first step of a round.)

    [tracer] and [msg_size] are as in {!Engine.run}, with one extra
    event kind: every end-of-round marker — a port where the algorithm
    sent nothing, or any port of a halted node — is traced as
    [Sync_marker], never [Send].  Modulo those markers (and event
    order, which delivery timing permutes), the traced events coincide
    with the synchronous run's — {!Shades_trace.Diff.normalize} makes
    the comparison exact, and a same-seed re-execution reproduces the
    stream verbatim for {!Shades_trace.Replay}.
    @raise Engine.Did_not_terminate like {!Engine.run}. *)
val run :
  ?max_rounds:int ->
  ?seed:int ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  ?msg_size:('msg -> int) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  ('state, 'msg, 'output) Engine.algorithm ->
  'output Engine.result

(** [run_plan ~delay g ~advice alg] is {!run} with an {e explicit} delay
    assignment instead of a seeded PRNG: each wire pushed on [port] of
    sender [v] during synchronizer round [round] (payload or
    end-of-round marker alike) is delayed by [delay ~round ~v ~port]
    virtual time units (non-positive values clamp to a small epsilon).
    This is the adversary's interface — {!Shades_adversary.Schedule}
    searches over such plans.

    Returns the result paired with the {e makespan}: the virtual time of
    the last delivery processed.  By the α-synchronizer argument the
    outputs and round count are invariant under the plan; the makespan
    is what an adversarial assignment can stretch.  [run ~seed] is
    exactly [run_plan] with the per-push PRNG draw as [delay]. *)
val run_plan :
  ?max_rounds:int ->
  delay:(round:int -> v:int -> port:int -> float) ->
  ?on_round:(round:int -> messages:int -> unit) ->
  ?tracer:(Shades_trace.Event.t -> unit) ->
  ?msg_size:('msg -> int) ->
  Shades_graph.Port_graph.t ->
  advice:Shades_bits.Bitstring.t ->
  ('state, 'msg, 'output) Engine.algorithm ->
  'output Engine.result * float
